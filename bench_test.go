// Benchmarks regenerating every figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// figure benchmark runs the corresponding experiment at a reduced trial
// count and workload scale (benchmarks measure harness cost and verify
// the pipeline end-to-end; use cmd/pagebench for paper-methodology runs
// with 25 trials at full scale) and reports a headline shape metric from
// the result.
package mglrusim_test

import (
	"fmt"
	"sync"
	"testing"

	"mglrusim"
	"mglrusim/internal/experiments"
	"mglrusim/internal/workload/filescan"
)

// newFileScan builds the file-I/O-heavy synthetic workload used by the
// tier/PID ablation.
func newFileScan() mglrusim.Workload {
	cfg := filescan.DefaultConfig()
	cfg.Rounds = 4
	return filescan.New(cfg)
}

// benchOpts are the reduced-methodology options shared by the figure
// benchmarks. One shared runner caches series across benchmarks, as the
// harness does across figures.
var (
	runnerOnce sync.Once
	benchRun   *mglrusim.Runner
)

func benchRunner() *mglrusim.Runner {
	runnerOnce.Do(func() {
		benchRun = mglrusim.NewRunner(experiments.Options{
			Trials: 3,
			Scale:  0.5,
			Seed:   0xBE7C4,
		})
	})
	return benchRun
}

// runFigure executes figure id b.N times and returns the last result.
func runFigure(b *testing.B, id string) mglrusim.FigureResult {
	b.Helper()
	r := benchRunner()
	var res mglrusim.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = mglrusim.Figures[id](r)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Render() == "" {
		b.Fatal("empty rendering")
	}
	return res
}

// BenchmarkFig1MeanPerformanceSSD50 regenerates Figure 1: mean runtime
// and faults, MG-LRU vs Clock, normalized to Clock (SSD, 50% ratio).
func BenchmarkFig1MeanPerformanceSSD50(b *testing.B) {
	res := runFigure(b, "fig1")
	f1 := res.(*experiments.Fig1Result)
	var ratio float64
	for _, row := range f1.Rows {
		ratio += row.MGLRUPerfNorm
	}
	b.ReportMetric(ratio/float64(len(f1.Rows)), "mglru/clock-perf")
}

// BenchmarkFig2JointDistributions regenerates Figure 2: joint
// (runtime, faults) distributions for TPC-H and PageRank.
func BenchmarkFig2JointDistributions(b *testing.B) {
	res := runFigure(b, "fig2")
	f2 := res.(*experiments.Fig2Result)
	for _, s := range f2.Series {
		if s.Workload == "tpch" && s.Policy == "clock" {
			b.ReportMetric(s.Fit.R2, "tpch-clock-r2")
		}
	}
}

// BenchmarkFig3TailLatencySSD regenerates Figure 3: YCSB read/write tail
// latencies under SSD swap.
func BenchmarkFig3TailLatencySSD(b *testing.B) {
	res := runFigure(b, "fig3")
	t := res.(*experiments.TailResult)
	b.ReportMetric(float64(len(t.Rows)), "tail-rows")
}

// BenchmarkFig4VariantMeans regenerates Figure 4: MG-LRU variant means
// normalized to the default configuration.
func BenchmarkFig4VariantMeans(b *testing.B) {
	res := runFigure(b, "fig4")
	m := res.(*experiments.NormMatrix)
	b.ReportMetric(m.Perf["tpch"]["scan-all"], "tpch-scanall-perf")
	b.ReportMetric(m.Perf["tpch"]["scan-none"], "tpch-scannone-perf")
}

// BenchmarkFig5VariantJoint regenerates Figure 5: joint distributions for
// the MG-LRU variants.
func BenchmarkFig5VariantJoint(b *testing.B) {
	res := runFigure(b, "fig5")
	f5 := res.(*experiments.Fig5Result)
	b.ReportMetric(float64(len(f5.Series)), "series")
}

// BenchmarkFig6CapacitySweep regenerates Figure 6: mean performance at
// 75% and 90% capacity-to-footprint ratios.
func BenchmarkFig6CapacitySweep(b *testing.B) {
	res := runFigure(b, "fig6")
	b.ReportMetric(float64(len(res.(*experiments.MultiResult).Parts)), "ratios")
}

// BenchmarkFig7FaultDistributions regenerates Figure 7: fault
// distributions (five-number summaries) at higher capacities.
func BenchmarkFig7FaultDistributions(b *testing.B) {
	res := runFigure(b, "fig7")
	f7 := res.(*experiments.Fig7Result)
	worst := 0.0
	for _, row := range f7.Rows {
		if row.Summary.Max > worst {
			worst = row.Summary.Max
		}
	}
	b.ReportMetric(worst, "max-normalized-faults")
}

// BenchmarkFig8TailByCapacity regenerates Figure 8: tail latencies at 75%
// and 90% capacity.
func BenchmarkFig8TailByCapacity(b *testing.B) {
	runFigure(b, "fig8")
}

// BenchmarkFig9ZramMeans regenerates Figure 9: mean performance with ZRAM
// swap.
func BenchmarkFig9ZramMeans(b *testing.B) {
	res := runFigure(b, "fig9")
	m := res.(*experiments.NormMatrix)
	b.ReportMetric(m.Perf["pagerank"]["clock"], "pagerank-clock-perf")
}

// BenchmarkFig10ZramFaults regenerates Figure 10: mean faults with ZRAM
// swap.
func BenchmarkFig10ZramFaults(b *testing.B) {
	runFigure(b, "fig10")
}

// BenchmarkFig11ZramVsSSD regenerates Figure 11: runtime and fault deltas
// between ZRAM and SSD swap.
func BenchmarkFig11ZramVsSSD(b *testing.B) {
	res := runFigure(b, "fig11")
	f11 := res.(*experiments.Fig11Result)
	for _, row := range f11.Rows {
		if row.Workload == "pagerank" && row.Policy == "mglru" {
			b.ReportMetric(row.RuntimeRatio, "pagerank-rt-ratio")
			b.ReportMetric(row.FaultRatio, "pagerank-fault-ratio")
		}
	}
}

// BenchmarkFig12ZramTails regenerates Figure 12: tail latencies with ZRAM
// swap.
func BenchmarkFig12ZramTails(b *testing.B) {
	runFigure(b, "fig12")
}

// --- ablation benches: design-choice probes beyond the paper ---

// ablationTrial runs TPC-H once under a given MG-LRU configuration and
// returns runtime seconds and faults.
func ablationTrial(b *testing.B, cfg mglrusim.MGLRUConfig, seed uint64) (float64, float64) {
	b.Helper()
	tc := mglrusim.TPCHDefaults()
	tc.LineitemPages /= 2
	tc.OrdersPages /= 2
	tc.HashPages /= 2
	tc.Queries = 3
	w := mglrusim.NewTPCH(tc)
	m, err := mglrusim.RunTrial(w,
		func() mglrusim.Policy { return mglrusim.NewMGLRUWith(cfg) },
		mglrusim.DefaultSystemConfig(), 42, seed)
	if err != nil {
		b.Fatal(err)
	}
	return m.RuntimeSeconds(), m.Faults()
}

// BenchmarkAblationSpatialScan measures the eviction-side spatial scan's
// contribution (§III-C): surrounding-PTE scans on vs off.
func BenchmarkAblationSpatialScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := mglrusim.MGLRUDefault()
		off := mglrusim.MGLRUDefault()
		off.SpatialScan = false
		rtOn, _ := ablationTrial(b, on, uint64(i)+1)
		rtOff, _ := ablationTrial(b, off, uint64(i)+1)
		b.ReportMetric(rtOff/rtOn, "off/on-runtime")
	}
}

// BenchmarkAblationBloomDensity sweeps the bloom-filter density rule that
// decides which regions the aging walk revisits.
func BenchmarkAblationBloomDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loose := mglrusim.MGLRUDefault()
		loose.BloomDensityNum, loose.BloomDensityDen = 1, 64
		tight := mglrusim.MGLRUDefault()
		tight.BloomDensityNum, tight.BloomDensityDen = 1, 4
		rtLoose, _ := ablationTrial(b, loose, uint64(i)+1)
		rtTight, _ := ablationTrial(b, tight, uint64(i)+1)
		b.ReportMetric(rtTight/rtLoose, "tight/loose-runtime")
	}
}

// BenchmarkAblationScanRandProbability sweeps Scan-Rand's per-region scan
// probability (the paper fixes it at 0.5 and asks whether principled
// randomness could do better).
func BenchmarkAblationScanRandProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []float64{0.25, 0.5, 0.75} {
			rt, _ := ablationTrial(b, mglrusim.MGLRUScanRand(p), uint64(i)+1)
			b.ReportMetric(rt, "rt-p"+fmtProb(p))
		}
	}
}

func fmtProb(p float64) string {
	switch p {
	case 0.25:
		return "25"
	case 0.5:
		return "50"
	default:
		return "75"
	}
}

// BenchmarkAblationTierPID exercises the PID-controlled tier protection
// (§III-D) under a file-I/O-heavy synthetic workload — the scenario the
// paper leaves to future work. It compares protection on vs off.
func BenchmarkAblationTierPID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(protect bool) float64 {
			cfg := mglrusim.MGLRUDefault()
			cfg.TierProtection = protect
			m, err := mglrusim.RunTrial(newFileScan(),
				func() mglrusim.Policy { return mglrusim.NewMGLRUWith(cfg) },
				mglrusim.DefaultSystemConfig(), 42, uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			return m.RuntimeSeconds()
		}
		b.ReportMetric(run(false)/run(true), "off/on-runtime")
	}
}

// BenchmarkAblationGenerationCount sweeps MaxGens between the kernel
// default (4) and Gen-14 (2^14) through an intermediate point.
func BenchmarkAblationGenerationCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, gens := range []int{4, 64, 1 << 14} {
			cfg := mglrusim.MGLRUDefault()
			cfg.MaxGens = gens
			_, faults := ablationTrial(b, cfg, uint64(i)+1)
			switch gens {
			case 4:
				b.ReportMetric(faults, "faults-gen4")
			case 64:
				b.ReportMetric(faults, "faults-gen64")
			default:
				b.ReportMetric(faults, "faults-gen14")
			}
		}
	}
}

// auditGuardTrial is the fixed small trial both audit-guard benchmarks
// run; only the Audit flag differs.
func auditGuardTrial(b *testing.B, audit bool) {
	b.Helper()
	tc := mglrusim.TPCHDefaults()
	tc.LineitemPages /= 2
	tc.OrdersPages /= 2
	tc.HashPages /= 2
	tc.Queries = 2
	w := mglrusim.NewTPCH(tc)
	sys := mglrusim.DefaultSystemConfig()
	sys.VMM.Audit = audit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mglrusim.RunTrial(w, mglrusim.NewMGLRU, sys, 42, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditGuardDisabled is the zero-cost-when-off guard for the
// invariant auditor: with Audit false every checkpoint is a single nil
// check, so this must stay indistinguishable from the pre-auditor
// baseline. Compare against BenchmarkAuditGuardEnabled to see the price
// of turning auditing on.
func BenchmarkAuditGuardDisabled(b *testing.B) { auditGuardTrial(b, false) }

// BenchmarkAuditGuardEnabled runs the identical trial with the invariant
// auditor on (per-event checks plus periodic full-state scans).
func BenchmarkAuditGuardEnabled(b *testing.B) { auditGuardTrial(b, true) }

// BenchmarkTrialThroughput measures raw simulator speed: one TPC-H trial
// per iteration.
func BenchmarkTrialThroughput(b *testing.B) {
	tc := mglrusim.TPCHDefaults()
	tc.Queries = 2
	w := mglrusim.NewTPCH(tc)
	sys := mglrusim.DefaultSystemConfig()
	b.ResetTimer()
	var faults float64
	for i := 0; i < b.N; i++ {
		m, err := mglrusim.RunTrial(w, mglrusim.NewMGLRU, sys, 42, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		faults = m.Faults()
	}
	b.ReportMetric(faults, "faults/trial")
}

// BenchmarkAblationSwapLatencySweep probes the paper's §V-D/§VI-B claim
// that the ordering of Clock vs MG-LRU depends on how fast the swap
// medium is relative to scanning: it sweeps the SSD latency across two
// orders of magnitude and reports the Clock/MG-LRU runtime ratio at each
// point.
func BenchmarkAblationSwapLatencySweep(b *testing.B) {
	tc := mglrusim.TPCHDefaults()
	tc.LineitemPages /= 2
	tc.OrdersPages /= 2
	tc.HashPages /= 2
	tc.Queries = 3
	w := mglrusim.NewTPCH(tc)
	for i := 0; i < b.N; i++ {
		for _, lat := range []mglrusim.Duration{
			100 * mglrusim.Microsecond,
			1 * mglrusim.Millisecond,
			7500 * mglrusim.Microsecond,
		} {
			sys := mglrusim.DefaultSystemConfig()
			sys.SSD.ReadLatency = lat
			sys.SSD.WriteLatency = lat
			run := func(mk mglrusim.PolicyFactory) float64 {
				m, err := mglrusim.RunTrial(w, mk, sys, 42, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				return m.RuntimeSeconds()
			}
			ratio := run(mglrusim.NewClock) / run(mglrusim.NewMGLRU)
			b.ReportMetric(ratio, fmt.Sprintf("clock/mglru-%dus", lat/mglrusim.Microsecond))
		}
	}
}

// BenchmarkTieringPolicies compares page-migration policies over a
// two-tier memory (the paper's §II-C landscape): static placement,
// AutoNUMA-style sampling without demotion, and Clock-based TPP.
func BenchmarkTieringPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"static", "autonuma", "tpp"} {
			res, err := mglrusim.RunTieringTrial(mglrusim.TieringTrialConfig{
				Policy:    name,
				Footprint: 2048,
				FastPages: 512,
				SlowPages: 1664,
				Touches:   100000,
				Seed:      uint64(i) + 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.FastHitRatio, "fasthit-"+name)
		}
	}
}
