// Command pagebench regenerates the paper's figures on the simulator and
// runs the benchmark-regression suite.
//
// Usage:
//
//	pagebench -figure fig1            # one figure
//	pagebench -figure fig1,fig2      # several
//	pagebench -figure all            # the whole evaluation
//	pagebench -trials 25 -scale 1.0  # methodology knobs
//
//	pagebench -bench full -benchjson BENCH_PR2.json            # measure
//	pagebench -bench smoke -baseline BENCH_PR2.json            # regression check
//	pagebench -figure all -cpuprofile cpu.pb.gz                # profile
//
// Each figure prints a plain-text table whose rows correspond to the
// series plotted in the paper. Bench mode runs named micro/macro
// benchmarks plus a timed figure sweep, writes machine-readable JSON, and
// (with -baseline) exits non-zero if any result regressed past the
// tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mglrusim/internal/bench"
	"mglrusim/internal/experiments"
)

func main() { os.Exit(realMain()) }

// realMain returns the exit code so deferred profile writers run before
// the process exits.
func realMain() int {
	var (
		figure   = flag.String("figure", "all", "figure id (fig1..fig12), comma list, or 'all'")
		trials   = flag.Int("trials", 25, "trials per configuration (paper: 25)")
		scale    = flag.Float64("scale", 1.0, "workload footprint scale factor")
		seed     = flag.Uint64("seed", 0x5EED, "base seed")
		parallel = flag.Int("parallel", 0, "concurrent trials (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-series progress")
		audit    = flag.Bool("audit", false, "run every trial with the kernel invariant auditor enabled (slower; fails on any bookkeeping violation)")
		csvDir   = flag.String("csv", "", "also write each figure's data points as CSV into this directory")

		benchSize = flag.String("bench", "", "run the benchmark suite instead of figures: 'full' or 'smoke'")
		benchJSON = flag.String("benchjson", "", "write the benchmark report as JSON to this path")
		baseline  = flag.String("baseline", "", "compare the benchmark report against this committed baseline JSON")
		tolerance = flag.Float64("tolerance", 0.25, "allowed relative slowdown vs the baseline (0.25 = 25%)")
		preSecs   = flag.Float64("prebaseline", 0, "pre-optimization figure-run seconds to record in the report")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("create %s: %v", *cpuProfile, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("start cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("create %s: %v", *memProfile, err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("write heap profile: %v", err)
		}
	}()

	if *benchSize != "" {
		return runBench(*benchSize, *benchJSON, *baseline, *tolerance, *preSecs, *verbose)
	}
	runFigures(*figure, *trials, *scale, *seed, *parallel, *verbose, *audit, *csvDir)
	return 0
}

func runBench(sizeName, jsonPath, baselinePath string, tolerance, preSecs float64, verbose bool) int {
	var size bench.Size
	switch sizeName {
	case "full":
		size = bench.Full()
	case "smoke":
		size = bench.Smoke()
	default:
		fatalf("unknown bench size %q (known: full, smoke)", sizeName)
	}

	cfg := bench.Config{Size: size, PrePR2FigureRunSeconds: preSecs}
	if verbose {
		cfg.Progress = os.Stderr
	}

	var base *bench.Report
	if baselinePath != "" {
		var err error
		base, err = bench.LoadReport(baselinePath)
		if err != nil {
			fatalf("%v", err)
		}
		// Carry the pre-optimization reference forward unless overridden —
		// only between reports of the same size, since the figure sweep
		// differs across sizes.
		if cfg.PrePR2FigureRunSeconds == 0 && base.Size.Name == size.Name {
			cfg.PrePR2FigureRunSeconds = base.PrePR2FigureRunSeconds
		}
	}

	rep, err := bench.RunReport(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-20s %14.0f ns/op %12.1f allocs/op %14.0f B/op  (%d ops)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Ops)
	}
	fmt.Printf("%-20s %14.2f s (figures: %s, trials=%d, scale=%g)\n",
		"figure-run", rep.FigureRunSeconds, strings.Join(rep.Size.Figures, ","), rep.Size.Trials, rep.Size.Scale)
	if rep.Speedup > 0 {
		fmt.Printf("%-20s %14.2fx vs pre-PR2 %.2fs\n", "speedup", rep.Speedup, rep.PrePR2FigureRunSeconds)
	}

	if jsonPath != "" {
		if err := rep.WriteFile(jsonPath); err != nil {
			fatalf("%v", err)
		}
	}
	if base != nil {
		regs := bench.Compare(base, rep, tolerance)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "pagebench: REGRESSION %s\n", r)
		}
		if len(regs) > 0 {
			return 1
		}
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", baselinePath, tolerance*100)
	}
	return 0
}

func runFigures(figure string, trials int, scale float64, seed uint64, parallel int, verbose, audit bool, csvDir string) {
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	opts := experiments.Options{
		Trials:      trials,
		Scale:       scale,
		Seed:        seed,
		Parallelism: parallel,
		Audit:       audit,
	}
	if verbose {
		opts.Progress = os.Stderr
	}
	runner := experiments.NewRunner(opts)

	var ids []string
	if figure == "all" {
		ids = experiments.FigureIDs()
	} else {
		for _, id := range strings.Split(figure, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments.Figures[id]; !ok {
				fmt.Fprintf(os.Stderr, "pagebench: unknown figure %q (known: %s)\n",
					id, strings.Join(experiments.FigureIDs(), ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	start := time.Now()
	for _, id := range ids {
		figStart := time.Now()
		res, err := experiments.Figures[id](runner)
		if err != nil {
			fatalf("%s failed: %v", id, err)
		}
		fmt.Println(res.Render())
		if csvDir != "" {
			if c, ok := res.(experiments.CSVer); ok {
				path := filepath.Join(csvDir, id+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fatalf("write %s: %v", path, err)
				}
			}
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(figStart).Round(time.Millisecond))
		}
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pagebench: "+format+"\n", args...)
	os.Exit(1)
}
