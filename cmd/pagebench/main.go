// Command pagebench regenerates the paper's figures on the simulator.
//
// Usage:
//
//	pagebench -figure fig1            # one figure
//	pagebench -figure fig1,fig2      # several
//	pagebench -figure all            # the whole evaluation
//	pagebench -trials 25 -scale 1.0  # methodology knobs
//
// Each figure prints a plain-text table whose rows correspond to the
// series plotted in the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mglrusim/internal/experiments"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure id (fig1..fig12), comma list, or 'all'")
		trials   = flag.Int("trials", 25, "trials per configuration (paper: 25)")
		scale    = flag.Float64("scale", 1.0, "workload footprint scale factor")
		seed     = flag.Uint64("seed", 0x5EED, "base seed")
		parallel = flag.Int("parallel", 0, "concurrent trials (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-series progress")
		audit    = flag.Bool("audit", false, "run every trial with the kernel invariant auditor enabled (slower; fails on any bookkeeping violation)")
		csvDir   = flag.String("csv", "", "also write each figure's data points as CSV into this directory")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pagebench: %v\n", err)
			os.Exit(1)
		}
	}

	opts := experiments.Options{
		Trials:      *trials,
		Scale:       *scale,
		Seed:        *seed,
		Parallelism: *parallel,
		Audit:       *audit,
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	runner := experiments.NewRunner(opts)

	var ids []string
	if *figure == "all" {
		ids = experiments.FigureIDs()
	} else {
		for _, id := range strings.Split(*figure, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments.Figures[id]; !ok {
				fmt.Fprintf(os.Stderr, "pagebench: unknown figure %q (known: %s)\n",
					id, strings.Join(experiments.FigureIDs(), ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	start := time.Now()
	for _, id := range ids {
		figStart := time.Now()
		res, err := experiments.Figures[id](runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pagebench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *csvDir != "" {
			if c, ok := res.(experiments.CSVer); ok {
				path := filepath.Join(*csvDir, id+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "pagebench: write %s: %v\n", path, err)
					os.Exit(1)
				}
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(figStart).Round(time.Millisecond))
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
	}
}
