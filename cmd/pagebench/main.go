// Command pagebench regenerates the paper's figures on the simulator and
// runs the benchmark-regression suite.
//
// Usage:
//
//	pagebench -figure fig1            # one figure
//	pagebench -figure fig1,fig2      # several
//	pagebench -figure all            # the whole evaluation
//	pagebench -figure ext1           # extension: degraded-device sweep
//	pagebench -trials 25 -scale 1.0  # methodology knobs
//
//	pagebench -figure all -checkpoint ckpt/                    # crash-safe runs
//	pagebench -figure all -faults severe -watchdog 60s...      # fault injection
//
//	pagebench -bench full -benchjson BENCH_PR2.json            # measure
//	pagebench -bench smoke -baseline BENCH_PR2.json            # regression check
//	pagebench -figure all -cpuprofile cpu.pb.gz                # profile
//
// Each figure prints a plain-text table whose rows correspond to the
// series plotted in the paper. Bench mode runs named micro/macro
// benchmarks plus a timed figure sweep, writes machine-readable JSON, and
// (with -baseline) exits non-zero if any result regressed past the
// tolerance.
//
// With -checkpoint, every completed series is persisted to the given
// directory; an interrupted run (SIGINT or SIGKILL) resumed with the same
// flags re-executes only unfinished series and produces byte-identical
// figures. SIGINT flushes the profile writers before exiting with code
// 130.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"mglrusim/internal/bench"
	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/fault"
	"mglrusim/internal/sim"
)

// exitInterrupted is the distinct exit code for a SIGINT-terminated run
// (128 + SIGINT, the shell convention).
const exitInterrupted = 130

func main() { os.Exit(realMain()) }

// flusher collects cleanup work — profile writers, output flushes — that
// must run exactly once whether the process exits normally or on SIGINT.
type flusher struct {
	mu   sync.Mutex
	fns  []func()
	done bool
}

func (f *flusher) add(fn func()) {
	f.mu.Lock()
	f.fns = append(f.fns, fn)
	f.mu.Unlock()
}

func (f *flusher) run() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.done = true
	// LIFO, like defers: StopCPUProfile before the file close it depends on.
	for i := len(f.fns) - 1; i >= 0; i-- {
		f.fns[i]()
	}
}

// realMain returns the exit code so the cleanup registry runs before the
// process exits.
func realMain() int {
	var (
		figure   = flag.String("figure", "all", "figure id (fig1..fig12, ext1...), comma list, or 'all'")
		trials   = flag.Int("trials", 25, "trials per configuration (paper: 25)")
		scale    = flag.Float64("scale", 1.0, "workload footprint scale factor")
		seed     = flag.Uint64("seed", 0x5EED, "base seed")
		parallel = flag.Int("parallel", 0, "concurrent trials (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-series progress")
		audit    = flag.Bool("audit", false, "run every trial with the kernel invariant auditor enabled (slower; fails on any bookkeeping violation)")
		csvDir   = flag.String("csv", "", "also write each figure's data points as CSV into this directory")

		ckptDir  = flag.String("checkpoint", "", "persist completed series into this directory and resume from it")
		faults   = flag.String("faults", "", "fault-injection preset applied to every series: off, mild, severe")
		watchdog = flag.Duration("watchdog", 0, "virtual-time progress watchdog window (e.g. 60s of simulated time; 0 = off)")
		retries  = flag.Int("retries", 0, "per-trial retries of transient fault-injected failures")

		traceDir        = flag.String("trace", "", "write per-trial telemetry (Chrome trace JSON, counter CSV, flight dumps) into this directory")
		metricsInterval = flag.Duration("metrics-interval", 0, "virtual-time cadence of counter snapshots in traced runs (simulated time; 0 = 10ms)")

		benchSize = flag.String("bench", "", "run the benchmark suite instead of figures: 'full' or 'smoke'")
		benchJSON = flag.String("benchjson", "", "write the benchmark report as JSON to this path")
		baseline  = flag.String("baseline", "", "compare the benchmark report against this committed baseline JSON")
		tolerance = flag.Float64("tolerance", 0.25, "allowed relative slowdown vs the baseline (0.25 = 25%)")
		preSecs   = flag.Float64("prebaseline", 0, "pre-optimization figure-run seconds to record in the report")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	fl := &flusher{}
	defer fl.run()

	// SIGINT: flush everything registered (profiles; checkpoint writes are
	// already atomic per series) and exit with a distinct code. A second
	// SIGINT during cleanup falls back to the default handler.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		signal.Stop(sigc)
		fmt.Fprintln(os.Stderr, "pagebench: interrupted — flushing profiles and exiting (completed series are checkpointed)")
		fl.run()
		os.Exit(exitInterrupted)
	}()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("create %s: %v", *cpuProfile, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("start cpu profile: %v", err)
		}
		fl.add(func() { f.Close() })
		fl.add(pprof.StopCPUProfile)
	}
	if *memProfile != "" {
		path := *memProfile
		fl.add(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pagebench: create %s: %v\n", path, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pagebench: write heap profile: %v\n", err)
			}
		})
	}

	if *benchSize != "" {
		return runBench(*benchSize, *benchJSON, *baseline, *tolerance, *preSecs, *verbose)
	}

	plan, ok := fault.Preset(*faults)
	if !ok {
		fatalf("unknown fault preset %q (known: off, mild, severe)", *faults)
	}
	runFigures(figureConfig{
		figure:          *figure,
		trials:          *trials,
		scale:           *scale,
		seed:            *seed,
		parallel:        *parallel,
		verbose:         *verbose,
		audit:           *audit,
		csvDir:          *csvDir,
		ckptDir:         *ckptDir,
		plan:            plan,
		watchdog:        sim.Duration(watchdog.Nanoseconds()),
		retries:         *retries,
		traceDir:        *traceDir,
		metricsInterval: sim.Duration(metricsInterval.Nanoseconds()),
	})
	return 0
}

func runBench(sizeName, jsonPath, baselinePath string, tolerance, preSecs float64, verbose bool) int {
	var size bench.Size
	switch sizeName {
	case "full":
		size = bench.Full()
	case "smoke":
		size = bench.Smoke()
	default:
		fatalf("unknown bench size %q (known: full, smoke)", sizeName)
	}

	cfg := bench.Config{Size: size, PrePR2FigureRunSeconds: preSecs}
	if verbose {
		cfg.Progress = os.Stderr
	}

	var base *bench.Report
	if baselinePath != "" {
		var err error
		base, err = bench.LoadReport(baselinePath)
		if err != nil {
			fatalf("%v", err)
		}
		// Carry the pre-optimization reference forward unless overridden —
		// only between reports of the same size, since the figure sweep
		// differs across sizes.
		if cfg.PrePR2FigureRunSeconds == 0 && base.Size.Name == size.Name {
			cfg.PrePR2FigureRunSeconds = base.PrePR2FigureRunSeconds
		}
	}

	rep, err := bench.RunReport(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-20s %14.0f ns/op %12.1f allocs/op %14.0f B/op  (%d ops)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Ops)
	}
	fmt.Printf("%-20s %14.2f s (figures: %s, trials=%d, scale=%g)\n",
		"figure-run", rep.FigureRunSeconds, strings.Join(rep.Size.Figures, ","), rep.Size.Trials, rep.Size.Scale)
	if rep.Speedup > 0 {
		fmt.Printf("%-20s %14.2fx vs pre-PR2 %.2fs\n", "speedup", rep.Speedup, rep.PrePR2FigureRunSeconds)
	}

	if jsonPath != "" {
		if err := rep.WriteFile(jsonPath); err != nil {
			fatalf("%v", err)
		}
	}
	if base != nil {
		regs := bench.Compare(base, rep, tolerance)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "pagebench: REGRESSION %s\n", r)
		}
		if len(regs) > 0 {
			return 1
		}
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", baselinePath, tolerance*100)
	}
	return 0
}

type figureConfig struct {
	figure          string
	trials          int
	scale           float64
	seed            uint64
	parallel        int
	verbose         bool
	audit           bool
	csvDir          string
	ckptDir         string
	plan            fault.Plan
	watchdog        sim.Duration
	retries         int
	traceDir        string
	metricsInterval sim.Duration
}

// figureFn resolves a figure or extension-experiment ID.
func figureFn(id string) (experiments.FigureFunc, bool) {
	if fn, ok := experiments.Figures[id]; ok {
		return fn, true
	}
	fn, ok := experiments.Extensions[id]
	return fn, ok
}

func knownFigures() string {
	return strings.Join(append(experiments.FigureIDs(), experiments.ExtensionIDs()...), ", ")
}

func runFigures(cfg figureConfig) {
	if cfg.csvDir != "" {
		if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	opts := experiments.Options{
		Trials:          cfg.trials,
		Scale:           cfg.scale,
		Seed:            cfg.seed,
		Parallelism:     cfg.parallel,
		Audit:           cfg.audit,
		Fault:           cfg.plan,
		Watchdog:        cfg.watchdog,
		Retries:         cfg.retries,
		TraceDir:        cfg.traceDir,
		MetricsInterval: cfg.metricsInterval,
	}
	if cfg.ckptDir != "" {
		store, err := checkpoint.Open(cfg.ckptDir)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Checkpoint = store
		if cfg.verbose && store.Len() > 0 {
			fmt.Fprintf(os.Stderr, "pagebench: resuming with %d checkpointed series in %s\n", store.Len(), store.Dir())
		}
	}
	if cfg.verbose {
		opts.Progress = os.Stderr
	}
	runner := experiments.NewRunner(opts)

	var ids []string
	if cfg.figure == "all" {
		// "all" is the paper's evaluation: the twelve figures. Extension
		// experiments run only when named explicitly.
		ids = experiments.FigureIDs()
	} else {
		for _, id := range strings.Split(cfg.figure, ",") {
			id = strings.TrimSpace(id)
			if _, ok := figureFn(id); !ok {
				fmt.Fprintf(os.Stderr, "pagebench: unknown figure %q (known: %s)\n", id, knownFigures())
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	start := time.Now()
	for _, id := range ids {
		figStart := time.Now()
		fn, _ := figureFn(id)
		res, err := fn(runner)
		if err != nil {
			fatalf("%s failed: %v", id, err)
		}
		fmt.Println(res.Render())
		if cfg.csvDir != "" {
			if c, ok := res.(experiments.CSVer); ok {
				path := filepath.Join(cfg.csvDir, id+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fatalf("write %s: %v", path, err)
				}
			}
		}
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(figStart).Round(time.Millisecond))
		}
	}
	if cfg.verbose {
		fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pagebench: "+format+"\n", args...)
	os.Exit(1)
}
