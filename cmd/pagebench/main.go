// Command pagebench regenerates the paper's figures on the simulator and
// runs the benchmark-regression suite.
//
// Usage:
//
//	pagebench -figure fig1            # one figure
//	pagebench -figure fig1,fig2      # several
//	pagebench -figure all            # the whole evaluation
//	pagebench -figure ext1           # extension: degraded-device sweep
//	pagebench -figure ext3           # extension: degraded FILE device (page cache)
//	pagebench -trials 25 -scale 1.0  # methodology knobs
//	pagebench -size fullscale -figure fig1   # native 3-4M-page footprints, 512-PTE regions
//	pagebench -layout legacy         # force the AoS page-table layout
//
//	pagebench -figure all -checkpoint ckpt/                    # crash-safe runs
//	pagebench -figure all -checkpoint ckpt/ -workers 4         # multi-process scale-out
//	pagebench -figure all -faults severe -watchdog 60s...      # fault injection
//
//	pagebench -bench full -benchjson BENCH_PR5.json            # measure
//	pagebench -bench smoke -baseline BENCH_PR5.json            # regression check
//	pagebench -figure all -cpuprofile cpu.pb.gz                # profile
//
// Each figure prints a plain-text table whose rows correspond to the
// series plotted in the paper. Bench mode runs named micro/macro
// benchmarks plus a timed figure sweep, writes machine-readable JSON, and
// (with -baseline) exits non-zero if any result regressed past the
// tolerance.
//
// With -checkpoint, every completed series is persisted to the given
// directory; an interrupted run (SIGINT or SIGKILL) resumed with the same
// flags re-executes only unfinished series and produces byte-identical
// figures. SIGINT flushes the profile writers before exiting with code
// 130.
//
// With -workers N (requires -checkpoint), pagebench becomes a shard
// coordinator: it re-invokes itself N times in -worker mode, and the
// workers self-schedule the figure cells through on-disk leases under
// <checkpoint>/shard, surviving worker crashes and SIGKILL. SIGINT
// drains the fleet — each worker finishes its in-flight cell and
// checkpoints it — and the run resumes with the same flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mglrusim/internal/bench"
	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/fault"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/shard"
	"mglrusim/internal/sim"
	"mglrusim/internal/telemetry"
)

// exitInterrupted is the distinct exit code for a SIGINT-terminated run
// (128 + SIGINT, the shell convention).
const exitInterrupted = 130

// interruptHook, when set, takes over SIGINT/SIGTERM handling: the shard
// modes install a drain function here so an interrupt finishes in-flight
// cells and checkpoints them instead of exiting mid-cell.
var interruptHook atomic.Pointer[func()]

func main() { os.Exit(realMain()) }

// flusher collects cleanup work — profile writers, output flushes — that
// must run exactly once whether the process exits normally or on SIGINT.
type flusher struct {
	mu   sync.Mutex
	fns  []func()
	done bool
}

func (f *flusher) add(fn func()) {
	f.mu.Lock()
	f.fns = append(f.fns, fn)
	f.mu.Unlock()
}

func (f *flusher) run() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.done = true
	// LIFO, like defers: StopCPUProfile before the file close it depends on.
	for i := len(f.fns) - 1; i >= 0; i-- {
		f.fns[i]()
	}
}

// realMain returns the exit code so the cleanup registry runs before the
// process exits.
func realMain() int {
	var (
		figure   = flag.String("figure", "all", "figure id (fig1..fig12, ext1...), comma list, or 'all'")
		trials   = flag.Int("trials", 25, "trials per configuration (paper: 25)")
		scale    = flag.Float64("scale", 1.0, "workload footprint scale factor")
		size     = flag.String("size", "scaled", "run profile: 'scaled' (calibrated 1/1000 footprints) or 'fullscale' (native 3-4M-page footprints, 512-PTE regions, 3 trials; explicit -scale/-region/-trials still win)")
		region   = flag.Int("region", 0, "page-table region fanout in PTEs (0 = profile default; kernel PMDs are 512)")
		layout   = flag.String("layout", "auto", "page-table storage layout: auto, legacy, packed")
		seed     = flag.Uint64("seed", 0x5EED, "base seed")
		parallel = flag.Int("parallel", 0, "concurrent trials (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "print per-series progress")
		audit    = flag.Bool("audit", false, "run every trial with the kernel invariant auditor enabled (slower; fails on any bookkeeping violation)")
		csvDir   = flag.String("csv", "", "also write each figure's data points as CSV into this directory")

		ckptDir = flag.String("checkpoint", "", "persist completed series into this directory and resume from it")

		workers       = flag.Int("workers", 0, "run figure cells across N supervised worker processes sharing -checkpoint (0 = in-process)")
		workerMode    = flag.Bool("worker", false, "run as one shard worker over the -checkpoint queue (spawned by -workers; exits when the queue is resolved)")
		leaseTTL      = flag.Duration("lease-ttl", 10*time.Second, "shard lease time-to-live; bounds how long a crashed worker's cell stays claimed")
		shardAttempts = flag.Int("shard-attempts", 5, "per-cell execution budget before a failing cell is quarantined")
		maxSkew       = flag.Duration("max-skew", 0, "clock-skew grace before stealing an expired lease; set when workers span machines over a shared filesystem (NFS)")
		owner         = flag.String("owner", "", "lease-owner identity for this worker (default: host/pid/nonce, enabling same-host dead-worker fast reclaim)")
		faults        = flag.String("faults", "", "fault-injection preset applied to every series: off, mild, severe, file-mild, file-severe")
		watchdog      = flag.Duration("watchdog", 0, "virtual-time progress watchdog window (e.g. 60s of simulated time; 0 = off)")
		retries       = flag.Int("retries", 0, "per-trial retries of transient fault-injected failures")

		traceDir        = flag.String("trace", "", "write per-trial telemetry (Chrome trace JSON, counter CSV, flight dumps) into this directory")
		metricsInterval = flag.Duration("metrics-interval", 0, "virtual-time cadence of counter snapshots in traced runs (simulated time; 0 = 10ms)")

		benchSize = flag.String("bench", "", "run the benchmark suite instead of figures: 'full' or 'smoke'")
		benchJSON = flag.String("benchjson", "", "write the benchmark report as JSON to this path")
		baseline  = flag.String("baseline", "", "compare the benchmark report against this committed baseline JSON")
		tolerance = flag.Float64("tolerance", 0.25, "allowed relative slowdown vs the baseline (0.25 = 25%)")
		preSecs   = flag.Float64("prebaseline", 0, "pre-optimization figure-run seconds to record in the report")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	fl := &flusher{}
	defer fl.run()

	// SIGINT: flush everything registered (profiles; checkpoint writes are
	// already atomic per series) and exit with a distinct code. A second
	// SIGINT during cleanup falls back to the default handler.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		signal.Stop(sigc)
		if h := interruptHook.Load(); h != nil {
			// Shard mode: drain instead of exiting — the mode's main path
			// observes the drain, flushes, and chooses the exit code. A
			// second interrupt falls through to default termination.
			(*h)()
			return
		}
		fmt.Fprintln(os.Stderr, "pagebench: interrupted — flushing profiles and exiting (completed series are checkpointed)")
		fl.run()
		os.Exit(exitInterrupted)
	}()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("create %s: %v", *cpuProfile, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("start cpu profile: %v", err)
		}
		fl.add(func() { f.Close() })
		fl.add(pprof.StopCPUProfile)
	}
	if *memProfile != "" {
		path := *memProfile
		fl.add(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pagebench: create %s: %v\n", path, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pagebench: write heap profile: %v\n", err)
			}
		})
	}

	if *benchSize != "" {
		return runBench(*benchSize, *benchJSON, *baseline, *tolerance, *preSecs, *verbose)
	}

	// Resolve the run profile before anything consumes the methodology
	// knobs (including worker argv): -size picks the defaults, explicitly
	// set flags override them.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch *size {
	case "scaled":
	case "fullscale":
		fs := experiments.FullScaleOptions()
		if !explicit["scale"] {
			*scale = fs.Scale
		}
		if !explicit["region"] {
			*region = fs.RegionPTEs
		}
		if !explicit["trials"] {
			*trials = fs.Trials
		}
	default:
		fatalf("unknown run profile %q (known: scaled, fullscale)", *size)
	}
	lay, ok := pagetable.ParseLayout(*layout)
	if !ok {
		fatalf("unknown page-table layout %q (known: auto, legacy, packed)", *layout)
	}

	plan, ok := fault.Preset(*faults)
	if !ok {
		fatalf("unknown fault preset %q (known: off, mild, severe, file-mild, file-severe)", *faults)
	}
	if *workerMode && *workers > 0 {
		fatalf("-worker and -workers are mutually exclusive (-worker is the spawned side)")
	}
	if (*workerMode || *workers > 0) && *ckptDir == "" {
		fatalf("shard execution requires -checkpoint (the store the fleet shares)")
	}

	// The coordinator re-invokes this binary per worker with the identical
	// methodology flags, so the cells workers enumerate — and the keys they
	// file results under — are exactly the coordinator's.
	var workerArgs []string
	if *workers > 0 {
		perWorker := *parallel
		if perWorker == 0 {
			// Split the machine across the fleet instead of letting every
			// worker default to GOMAXPROCS.
			if perWorker = runtime.NumCPU() / *workers; perWorker < 1 {
				perWorker = 1
			}
		}
		workerArgs = []string{
			"-worker",
			"-figure", *figure,
			"-trials", strconv.Itoa(*trials),
			"-scale", strconv.FormatFloat(*scale, 'g', -1, 64),
			"-region", strconv.Itoa(*region),
			"-layout", lay.String(),
			"-seed", strconv.FormatUint(*seed, 10),
			"-parallel", strconv.Itoa(perWorker),
			"-checkpoint", *ckptDir,
			"-lease-ttl", leaseTTL.String(),
			"-shard-attempts", strconv.Itoa(*shardAttempts),
			"-max-skew", maxSkew.String(),
			"-retries", strconv.Itoa(*retries),
		}
		// -owner is deliberately NOT forwarded: each worker must mint its
		// own host/pid/nonce identity or fast reclaim would misfire.
		if *faults != "" {
			workerArgs = append(workerArgs, "-faults", *faults)
		}
		if *watchdog != 0 {
			workerArgs = append(workerArgs, "-watchdog", watchdog.String())
		}
		if *audit {
			workerArgs = append(workerArgs, "-audit")
		}
		if *traceDir != "" {
			workerArgs = append(workerArgs, "-trace", *traceDir)
		}
		if *metricsInterval != 0 {
			workerArgs = append(workerArgs, "-metrics-interval", metricsInterval.String())
		}
		if *verbose {
			workerArgs = append(workerArgs, "-v")
		}
	}

	return runFigures(figureConfig{
		figure:          *figure,
		trials:          *trials,
		scale:           *scale,
		region:          *region,
		layout:          lay,
		seed:            *seed,
		parallel:        *parallel,
		verbose:         *verbose,
		audit:           *audit,
		csvDir:          *csvDir,
		ckptDir:         *ckptDir,
		plan:            plan,
		watchdog:        sim.Duration(watchdog.Nanoseconds()),
		retries:         *retries,
		traceDir:        *traceDir,
		metricsInterval: sim.Duration(metricsInterval.Nanoseconds()),
		workers:         *workers,
		workerMode:      *workerMode,
		leaseTTL:        *leaseTTL,
		shardAttempts:   *shardAttempts,
		maxSkew:         *maxSkew,
		owner:           *owner,
		workerArgs:      workerArgs,
	})
}

func runBench(sizeName, jsonPath, baselinePath string, tolerance, preSecs float64, verbose bool) int {
	var size bench.Size
	switch sizeName {
	case "full":
		size = bench.Full()
	case "smoke":
		size = bench.Smoke()
	default:
		fatalf("unknown bench size %q (known: full, smoke)", sizeName)
	}

	cfg := bench.Config{Size: size, PrePR2FigureRunSeconds: preSecs}
	if verbose {
		cfg.Progress = os.Stderr
	}

	var base *bench.Report
	if baselinePath != "" {
		var err error
		base, err = bench.LoadReport(baselinePath)
		if err != nil {
			fatalf("%v", err)
		}
		// Carry the pre-optimization reference forward unless overridden —
		// only between reports of the same size, since the figure sweep
		// differs across sizes.
		if cfg.PrePR2FigureRunSeconds == 0 && base.Size.Name == size.Name {
			cfg.PrePR2FigureRunSeconds = base.PrePR2FigureRunSeconds
		}
	}

	rep, err := bench.RunReport(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-20s %14.0f ns/op %12.1f allocs/op %14.0f B/op  (%d ops)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Ops)
	}
	fmt.Printf("%-20s %14.2f s (figures: %s, trials=%d, scale=%g)\n",
		"figure-run", rep.FigureRunSeconds, strings.Join(rep.Size.Figures, ","), rep.Size.Trials, rep.Size.Scale)
	if rep.Speedup > 0 {
		fmt.Printf("%-20s %14.2fx vs pre-PR2 %.2fs\n", "speedup", rep.Speedup, rep.PrePR2FigureRunSeconds)
	}

	if jsonPath != "" {
		if err := rep.WriteFile(jsonPath); err != nil {
			fatalf("%v", err)
		}
	}
	if base != nil {
		regs := bench.Compare(base, rep, tolerance)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "pagebench: REGRESSION %s\n", r)
		}
		if len(regs) > 0 {
			return 1
		}
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", baselinePath, tolerance*100)
	}
	return 0
}

type figureConfig struct {
	figure          string
	trials          int
	scale           float64
	region          int
	layout          pagetable.Layout
	seed            uint64
	parallel        int
	verbose         bool
	audit           bool
	csvDir          string
	ckptDir         string
	plan            fault.Plan
	watchdog        sim.Duration
	retries         int
	traceDir        string
	metricsInterval sim.Duration

	workers       int
	workerMode    bool
	leaseTTL      time.Duration
	shardAttempts int
	maxSkew       time.Duration
	owner         string
	// workerArgs is the argv the coordinator spawns each -worker with.
	workerArgs []string
}

// shardDir is the lease/queue directory, colocated with the store so the
// whole coordination state lives (and is cleaned up) together.
func (c figureConfig) shardDir() string { return filepath.Join(c.ckptDir, "shard") }

func (c figureConfig) shardConfig(store *checkpoint.Store, counters *telemetry.CounterSet) shard.Config {
	var prog io.Writer
	if c.verbose {
		prog = os.Stderr
	}
	return shard.Config{
		Dir:      c.shardDir(),
		Store:    store,
		TTL:      c.leaseTTL,
		Attempts: c.shardAttempts,
		MaxSkew:  c.maxSkew,
		Counters: counters,
		Progress: prog,
	}
}

// figureFn resolves a figure or extension-experiment ID.
func figureFn(id string) (experiments.FigureFunc, bool) {
	if fn, ok := experiments.Figures[id]; ok {
		return fn, true
	}
	fn, ok := experiments.Extensions[id]
	return fn, ok
}

func knownFigures() string {
	return strings.Join(append(experiments.FigureIDs(), experiments.ExtensionIDs()...), ", ")
}

func runFigures(cfg figureConfig) int {
	if cfg.csvDir != "" && !cfg.workerMode {
		if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	opts := experiments.Options{
		Trials:          cfg.trials,
		Scale:           cfg.scale,
		RegionPTEs:      cfg.region,
		Layout:          cfg.layout,
		Seed:            cfg.seed,
		Parallelism:     cfg.parallel,
		Audit:           cfg.audit,
		Fault:           cfg.plan,
		Watchdog:        cfg.watchdog,
		Retries:         cfg.retries,
		TraceDir:        cfg.traceDir,
		MetricsInterval: cfg.metricsInterval,
	}
	var store *checkpoint.Store
	if cfg.ckptDir != "" {
		var err error
		store, err = checkpoint.Open(cfg.ckptDir)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Checkpoint = store
		if cfg.verbose && store.Len() > 0 {
			fmt.Fprintf(os.Stderr, "pagebench: resuming with %d checkpointed series in %s\n", store.Len(), store.Dir())
		}
	}
	if cfg.verbose {
		opts.Progress = os.Stderr
	}

	var ids []string
	if cfg.figure == "all" {
		// "all" is the paper's evaluation: the twelve figures. Extension
		// experiments run only when named explicitly.
		ids = experiments.FigureIDs()
	} else {
		for _, id := range strings.Split(cfg.figure, ",") {
			id = strings.TrimSpace(id)
			if _, ok := figureFn(id); !ok {
				fmt.Fprintf(os.Stderr, "pagebench: unknown figure %q (known: %s)\n", id, knownFigures())
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	fns := make([]experiments.FigureFunc, len(ids))
	for i, id := range ids {
		fns[i], _ = figureFn(id)
	}

	if cfg.workerMode {
		return runShardWorker(cfg, opts, store, fns)
	}
	sharded := cfg.workers > 0
	if sharded {
		if code, ok := runShardCoordinator(cfg, opts, store, fns); !ok {
			return code
		}
		// The fleet resolved every cell; sweep the figures from the store,
		// failing quarantined cells through the veto instead of re-running
		// them (and instead of aborting the remaining figures).
		opts.Veto = shard.Veto(cfg.shardDir())
	}
	runner := experiments.NewRunner(opts)

	exit := 0
	start := time.Now()
	for _, id := range ids {
		figStart := time.Now()
		fn, _ := figureFn(id)
		res, err := fn(runner)
		if err != nil {
			if sharded {
				fmt.Fprintf(os.Stderr, "pagebench: %s failed: %v\n", id, err)
				exit = 1
				continue
			}
			fatalf("%s failed: %v", id, err)
		}
		fmt.Println(res.Render())
		if cfg.csvDir != "" {
			if c, ok := res.(experiments.CSVer); ok {
				path := filepath.Join(cfg.csvDir, id+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fatalf("write %s: %v", path, err)
				}
			}
		}
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(figStart).Round(time.Millisecond))
		}
	}
	if cfg.verbose {
		fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
	}
	return exit
}

// runShardWorker is the body of a spawned `-worker` process: enumerate
// the same cells from the same flags, join the on-disk queue, drain on
// SIGINT/SIGTERM, and exit 0 once the queue is resolved (or drained) —
// the coordinator treats any other exit as a crash and respawns.
func runShardWorker(cfg figureConfig, opts experiments.Options, store *checkpoint.Store, fns []experiments.FigureFunc) int {
	cells, err := experiments.CellsFor(opts, fns...)
	if err != nil {
		fatalf("%v", err)
	}
	counters := telemetry.NewCounterSet()
	q, err := shard.NewQueue(cfg.shardConfig(store, counters), cells)
	if err != nil {
		fatalf("%v", err)
	}
	var drain atomic.Bool
	hook := func() { drain.Store(true) }
	interruptHook.Store(&hook)
	if err := q.RunWorker(shard.WorkerConfig{
		Owner:  cfg.owner,
		Runner: experiments.NewRunner(opts),
		Drain:  &drain,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "pagebench: worker: %v\n", err)
		return 1
	}
	if cfg.verbose {
		counters.WriteText(os.Stderr)
	}
	return 0
}

// runShardCoordinator supervises the worker fleet until every cell is
// terminal. ok=false means the figure sweep must not run (drained or
// unresolved) and code is the process exit code.
func runShardCoordinator(cfg figureConfig, opts experiments.Options, store *checkpoint.Store, fns []experiments.FigureFunc) (code int, ok bool) {
	cells, err := experiments.CellsFor(opts, fns...)
	if err != nil {
		fatalf("%v", err)
	}
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	counters := telemetry.NewCounterSet()
	co := &shard.Coordinator{
		Cfg:     cfg.shardConfig(store, counters),
		Cells:   cells,
		Workers: cfg.workers,
		Spawn:   shard.CmdSpawner(exe, cfg.workerArgs, os.Stderr),
	}
	if cfg.verbose {
		fmt.Fprintf(os.Stderr, "pagebench: sharding %d cells across %d workers (lease TTL %v)\n",
			len(cells), cfg.workers, cfg.leaseTTL)
	}

	var drained atomic.Bool
	hook := func() {
		drained.Store(true)
		fmt.Fprintln(os.Stderr, "pagebench: interrupted — draining workers (in-flight cells finish and checkpoint; resume with the same flags)")
		co.Drain()
	}
	interruptHook.Store(&hook)
	rep, err := co.Run()
	interruptHook.Store(nil)

	for _, p := range rep.Poisoned {
		fmt.Fprintf(os.Stderr, "pagebench: quarantined %s after %d attempt(s): %s\n", p.SeedKey, p.Attempts, p.Err)
		for _, a := range p.Artifacts {
			fmt.Fprintf(os.Stderr, "pagebench:   artifact: %s\n", a)
		}
	}
	if drained.Load() {
		fmt.Fprintf(os.Stderr, "pagebench: drained with %d/%d cells done (%d quarantined)\n",
			rep.Progress.Done, rep.Progress.Total, rep.Progress.Poisoned)
		return exitInterrupted, false
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pagebench: %v\n", err)
		return 1, false
	}
	if cfg.verbose {
		fmt.Fprintf(os.Stderr, "pagebench: shard run resolved: %d done, %d quarantined, %d worker restarts\n",
			rep.Progress.Done, rep.Progress.Poisoned, rep.Restarts)
		counters.WriteText(os.Stderr)
	}
	return 0, true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pagebench: "+format+"\n", args...)
	os.Exit(1)
}
