// Command pagesim-server runs the sweep daemon: simulation-as-a-service
// over the content-addressed checkpoint store and the shard executor.
//
// Usage:
//
//	pagesim-server -data ckpt/                 # serve on :8080
//	pagesim-server -data ckpt/ -addr :9000 -workers 8
//
// Clients POST sweep specifications to /v1/sweeps and get back a
// content-addressed job id; cells whose artifacts already exist in the
// store are reported "cached" immediately and only cold cells execute.
// GET /v1/sweeps/{id} reports per-cell state, /v1/sweeps/{id}/events
// streams progress as SSE, and /v1/results/{cachekey} serves the stored
// metrics artifacts.
//
// SIGTERM/SIGINT drains gracefully: in-flight cells finish and
// checkpoint, new submissions get 503, and a restarted server over the
// same -data directory resumes exactly where this one stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/server"
	"mglrusim/internal/telemetry"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "", "data directory: artifacts under <data>/store, queue state under <data>/queue (required)")
		workers  = flag.Int("workers", 4, "in-process simulation workers")
		seed     = flag.Uint64("seed", 0x5EED, "base seed baked into every cache key")
		bound    = flag.Int("queue-bound", 256, "max outstanding cold cells before submissions get 429")
		maxCells = flag.Int("max-cells", 0, "max cells per sweep (0 = server default)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request handling timeout (non-streaming endpoints)")
		maxSkew  = flag.Duration("max-skew", 0, "clock-skew grace before stealing another machine's expired lease (set on NFS fleets)")
		readOnly = flag.Bool("readonly", false, "degraded mode: serve cached artifacts and fully-cached sweeps only (also entered automatically when -data is not writable)")
		verbose  = flag.Bool("v", false, "log job and cell progress")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "pagesim-server: -data is required")
		flag.Usage()
		return 2
	}

	store, err := checkpoint.Open(filepath.Join(*data, "store"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pagesim-server: %v\n", err)
		return 1
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	srv, err := server.New(server.Config{
		Store:          store,
		Dir:            filepath.Join(*data, "queue"),
		Workers:        *workers,
		Seed:           *seed,
		QueueBound:     *bound,
		Limits:         server.Limits{MaxCells: *maxCells},
		RequestTimeout: *timeout,
		MaxSkew:        *maxSkew,
		ReadOnly:       *readOnly,
		Counters:       telemetry.NewCounterSet(),
		Progress:       progress,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pagesim-server: %v\n", err)
		return 1
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "pagesim-server: %v: draining (in-flight cells will checkpoint)\n", sig)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "pagesim-server: serving on %s (store %s, %d workers)\n",
		*addr, filepath.Join(*data, "store"), *workers)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pagesim-server: %v\n", err)
		return 1
	}
	<-done
	fmt.Fprintln(os.Stderr, "pagesim-server: drained, store consistent")
	return 0
}
