// Command policyviz runs one trial and renders an ASCII timeline of the
// replacement policy's internal state: generation occupancy for MG-LRU,
// active/inactive balance for Clock, alongside resident/free memory and
// the cumulative fault count. It makes the policies' dynamics — gen
// rotation, list churn, reclaim pressure — visible at a glance.
//
// Usage:
//
//	policyviz -workload pagerank -policy mglru -interval 250ms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/policy/simple"
	"mglrusim/internal/sim"
	"mglrusim/internal/vmm"
)

func main() {
	var (
		wname    = flag.String("workload", "tpch", "workload: tpch, pagerank, ycsb-a/b/c")
		pname    = flag.String("policy", "mglru", "policy: clock, mglru, gen14, scan-all, scan-none, scan-rand")
		ratio    = flag.Float64("ratio", 0.5, "capacity-to-footprint ratio")
		zramSwap = flag.Bool("zram", false, "use ZRAM instead of SSD swap")
		scale    = flag.Float64("scale", 1.0, "workload scale")
		seed     = flag.Uint64("seed", 1, "system seed")
		interval = flag.Duration("interval", 250*time.Millisecond, "virtual sampling interval")
	)
	flag.Parse()

	spec := experiments.WorkloadByName(*wname, *scale)
	pol := experiments.PolicyByName(*pname)
	kind := core.SwapSSD
	if *zramSwap {
		kind = core.SwapZRAM
	}
	sys := experiments.SystemAt(*ratio, kind)

	fmt.Printf("policyviz: %s under %s (%.0f%% ratio, %s swap)\n",
		spec.Name, pol.Name, *ratio*100, kind)
	fmt.Printf("%-9s %-8s %-8s %-9s %s\n", "time", "resident", "faults", "window", "occupancy")

	obs := func(now sim.Time, p policy.Policy, mgr *vmm.Manager) {
		var state, window string
		switch pp := p.(type) {
		case *mglru.MGLRU:
			window = fmt.Sprintf("[%d,%d]", pp.MinSeq(), pp.MaxSeq())
			var parts []string
			for seq := pp.MinSeq(); seq <= pp.MaxSeq(); seq++ {
				parts = append(parts, bar(pp.GenLen(seq), mgr.Mem().Size()))
			}
			state = strings.Join(parts, "|")
		case *clock.Clock:
			window = "act/inact"
			state = bar(pp.ActiveLen(), mgr.Mem().Size()) + "|" + bar(pp.InactiveLen(), mgr.Mem().Size())
		case *simple.FIFO:
			window = "queue"
			state = bar(pp.QueueLen(), mgr.Mem().Size())
		default:
			state = "(opaque policy)"
		}
		fmt.Printf("%-9s %-8d %-8d %-9s %s\n",
			now.String(), mgr.ResidentPages(), mgr.Counters().TotalFaults(), window, state)
	}

	m, err := core.RunTrialObserved(spec.Make(), pol.Make, sys, 42, *seed,
		sim.Duration(interval.Nanoseconds()), obs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "policyviz: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ndone: runtime=%.2fs faults=%d swapouts=%d readahead=%d (hits %d)\n",
		m.RuntimeSeconds(), m.Counters.TotalFaults(), m.Counters.SwapOuts,
		m.Counters.ReadaheadIn, m.Counters.ReadaheadHits)
}

// bar renders n as a proportional mini-bar against total memory.
func bar(n, total int) string {
	const width = 10
	if total <= 0 {
		total = 1
	}
	fill := n * width / total
	if fill > width {
		fill = width
	}
	if n > 0 && fill == 0 {
		return "."
	}
	return strings.Repeat("#", fill)
}
