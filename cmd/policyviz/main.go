// Command policyviz runs one trial and renders an ASCII timeline of the
// replacement policy's internal state: generation occupancy for MG-LRU,
// active/inactive balance for Clock, alongside resident memory and the
// cumulative fault count. It makes the policies' dynamics — gen rotation,
// list churn, reclaim pressure — visible at a glance.
//
// The timeline is rendered from the telemetry plane's counter samples
// (internal/telemetry): the trial runs with a Tracer attached, and the
// table below is exactly the gauge time-series every traced pagebench run
// writes as CSV. -trace additionally saves the full span trace as Chrome
// trace-event JSON (load it in Perfetto / chrome://tracing).
//
// Usage:
//
//	policyviz -workload pagerank -policy mglru -interval 250ms
//	policyviz -workload tpch -policy mglru -trace tpch.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
	"mglrusim/internal/sim"
	"mglrusim/internal/telemetry"
)

func main() {
	var (
		wname    = flag.String("workload", "tpch", "workload: tpch, pagerank, ycsb-a/b/c")
		pname    = flag.String("policy", "mglru", "policy: clock, mglru, gen14, scan-all, scan-none, scan-rand")
		ratio    = flag.Float64("ratio", 0.5, "capacity-to-footprint ratio")
		zramSwap = flag.Bool("zram", false, "use ZRAM instead of SSD swap")
		scale    = flag.Float64("scale", 1.0, "workload scale")
		seed     = flag.Uint64("seed", 1, "system seed")
		interval = flag.Duration("interval", 250*time.Millisecond, "virtual sampling interval")
		traceOut = flag.String("trace", "", "also write the span trace as Chrome trace-event JSON to this file")
	)
	flag.Parse()

	spec := experiments.WorkloadByName(*wname, *scale)
	pol := experiments.PolicyByName(*pname)
	kind := core.SwapSSD
	if *zramSwap {
		kind = core.SwapZRAM
	}
	sys := experiments.SystemAt(*ratio, kind)

	fmt.Printf("policyviz: %s under %s (%.0f%% ratio, %s swap)\n",
		spec.Name, pol.Name, *ratio*100, kind)

	tr := telemetry.New(telemetry.Config{
		MetricsInterval: sim.Duration(interval.Nanoseconds()),
	})
	m, err := core.RunTrialOpts(spec.Make(), pol.Make, sys, 42, *seed,
		core.TrialOptions{Telemetry: tr})
	if err != nil {
		fmt.Fprintf(os.Stderr, "policyviz: %v\n", err)
		os.Exit(1)
	}

	render(os.Stdout, tr)

	if *traceOut != "" {
		if err := writeTrace(*traceOut, tr); err != nil {
			fmt.Fprintf(os.Stderr, "policyviz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %s (%d events)\n", *traceOut, tr.EventCount())
	}

	fmt.Printf("\ndone: runtime=%.2fs faults=%d swapouts=%d readahead=%d (hits %d)\n",
		m.RuntimeSeconds(), m.Counters.TotalFaults(), m.Counters.SwapOuts,
		m.Counters.ReadaheadIn, m.Counters.ReadaheadHits)
}

// render prints the counter time-series as the policy-state timeline.
// Everything shown is reconstructed purely from named gauges, so the same
// view can be rebuilt offline from a traced run's counters.csv.
func render(w *os.File, tr *telemetry.Tracer) {
	cols := columnIndex(tr.CounterNames())
	times, rows := tr.CounterSeries()

	resident := cols["vmm.resident_pages"]
	free := cols["vmm.free_pages"]
	major := cols["vmm.major_faults"]
	minor := cols["vmm.minor_faults"]
	minSeq, hasMGLRU := cols["mglru.min_seq"]
	maxSeq := cols["mglru.max_seq"]
	active, hasClock := cols["clock.active.len"]
	inactive := cols["clock.inactive.len"]
	gens := genColumns(tr.CounterNames(), cols)

	fmt.Fprintf(w, "%-9s %-8s %-8s %-9s %s\n", "time", "resident", "faults", "window", "occupancy")
	for i, row := range rows {
		// Frames are conserved: resident + free is the memory size, which
		// gives the bar scale without reaching into the manager.
		memPages := int(row[resident] + row[free])
		var state, window string
		switch {
		case hasMGLRU && len(gens) > 0:
			lo, hi := row[minSeq], row[maxSeq]
			window = fmt.Sprintf("[%d,%d]", lo, hi)
			var parts []string
			for seq := lo; seq <= hi; seq++ {
				parts = append(parts, bar(int(row[gens[int(seq)%len(gens)]]), memPages))
			}
			state = strings.Join(parts, "|")
		case hasClock:
			window = "act/inact"
			state = bar(int(row[active]), memPages) + "|" + bar(int(row[inactive]), memPages)
		default:
			state = "(opaque policy)"
		}
		fmt.Fprintf(w, "%-9s %-8d %-8d %-9s %s\n",
			times[i].String(), row[resident], row[major]+row[minor], window, state)
	}
}

// columnIndex maps gauge name to its column in the sample rows.
func columnIndex(names []string) map[string]int {
	m := make(map[string]int, len(names))
	for i, n := range names {
		m[n] = i
	}
	return m
}

// genColumns returns the columns of the per-generation occupancy gauges
// ("mglru.gen<i>.len") ordered by ring-slot index, so a generation seq
// maps to gens[seq % len(gens)].
func genColumns(names []string, cols map[string]int) []int {
	type slot struct{ idx, col int }
	var slots []slot
	for _, n := range names {
		var i int
		if _, err := fmt.Sscanf(n, "mglru.gen%d.len", &i); err == nil {
			slots = append(slots, slot{i, cols[n]})
		}
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a].idx < slots[b].idx })
	out := make([]int, len(slots))
	for i, s := range slots {
		out[i] = s.col
	}
	return out
}

func writeTrace(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// bar renders n as a proportional mini-bar against total memory.
func bar(n, total int) string {
	const width = 10
	if total <= 0 {
		total = 1
	}
	fill := n * width / total
	if fill > width {
		fill = width
	}
	if n > 0 && fill == 0 {
		return "."
	}
	return strings.Repeat("#", fill)
}
