// Command tracecheck validates Chrome trace-event JSON files produced by
// the telemetry plane (internal/telemetry). It is the CI gate behind the
// trace-smoke job: every event must carry the fields Perfetto and
// chrome://tracing require, with a known phase.
//
// Usage:
//
//	tracecheck trace-dir/*.trace.json
//
// Exit status is 0 when every file validates, 1 otherwise.
package main

import (
	"fmt"
	"os"

	"mglrusim/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err == nil {
			err = telemetry.ValidateTrace(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("tracecheck: %s: ok\n", path)
	}
	if bad > 0 {
		os.Exit(1)
	}
}
