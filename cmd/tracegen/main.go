// Command tracegen dumps a workload's page-access trace as CSV for
// offline analysis, or analyzes it in place.
//
// Usage:
//
//	tracegen -workload tpch -limit 100000 > trace.csv
//	tracegen -workload pagerank -analyze
//
// CSV columns: thread, seq, kind, vpn, write, cpu_ns. Barriers and
// request markers are included so phase structure is recoverable.
//
// With -analyze, instead of dumping, the trace is fed through the exact
// LRU stack-distance analyzer: it prints the miss-ratio curve (the
// lower bound any LRU-family policy can hope for), Denning working-set
// sizes, and reuse-distance percentiles — useful context for judging how
// close Clock/MG-LRU get to ideal LRU on each workload.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mglrusim/internal/experiments"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/trace"
	"mglrusim/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "tpch", "workload: tpch, pagerank, ycsb-a, ycsb-b, ycsb-c")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		planSeed = flag.Uint64("seed", 42, "workload plan seed")
		trial    = flag.Uint64("trial", 1, "trial (scheduling) seed")
		limit    = flag.Int("limit", 0, "max ops per thread (0 = unlimited)")
		analyze  = flag.Bool("analyze", false, "run LRU stack-distance analysis instead of dumping CSV")
	)
	flag.Parse()

	spec := experiments.WorkloadByName(*name, *scale)
	w := spec.Make()
	streams := w.Threads(sim.NewRNG(*planSeed), sim.NewRNG(*trial))

	if *analyze {
		analyzeTrace(w, streams, *limit)
		return
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "thread,seq,kind,vpn,write,cpu_ns")
	var op workload.Op
	for tid, s := range streams {
		seq := 0
		for s.Next(&op) {
			if *limit > 0 && seq >= *limit {
				break
			}
			kind := [...]string{"access", "compute", "barrier", "reqstart", "reqend"}[op.Kind]
			wr := 0
			if op.Write {
				wr = 1
			}
			fmt.Fprintf(out, "%d,%d,%s,%d,%d,%d\n", tid, seq, kind, op.VPN, wr, op.CPU)
			seq++
		}
	}
}

// analyzeTrace interleaves the thread streams round-robin (an idealized
// schedule) and prints reuse statistics.
func analyzeTrace(w workload.Workload, streams []workload.Stream, limit int) {
	a := trace.NewAnalyzer(1 << 16)
	counts := map[pagetable.VPN]int{}
	var op workload.Op
	live := make([]bool, len(streams))
	for i := range live {
		live[i] = true
	}
	emitted := 0
	for remaining := len(streams); remaining > 0; {
		for i, s := range streams {
			if !live[i] {
				continue
			}
			if !s.Next(&op) {
				live[i] = false
				remaining--
				continue
			}
			if op.Kind != workload.OpAccess {
				continue
			}
			a.Add(op.VPN)
			counts[op.VPN]++
			emitted++
			if limit > 0 && emitted >= limit*len(streams) {
				remaining = 0
				break
			}
		}
	}

	footprint := w.FootprintPages()
	fmt.Printf("workload: %s\n", w.Name())
	fmt.Printf("accesses: %d over %d distinct pages (footprint %d)\n",
		a.Accesses(), a.Unique(), footprint)
	fmt.Printf("cold misses: %d (%.1f%%)\n", a.ColdMisses(),
		100*float64(a.ColdMisses())/float64(a.Accesses()))

	fmt.Println("\nideal-LRU miss ratio by cache capacity (fraction of footprint):")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		c := int(frac * float64(footprint))
		fmt.Printf("  %4.0f%% (%5d pages): %.4f\n", frac*100, c, a.MissRatio(c))
	}

	fmt.Println("\nDenning working set (window in accesses):")
	for _, wdw := range []int{1000, 10000, 100000} {
		fmt.Printf("  W(%6d) = %.0f pages\n", wdw, a.WorkingSet(wdw))
	}

	fmt.Println("\nreuse-distance percentiles (pages):")
	for _, p := range []float64{0.5, 0.9, 0.99} {
		fmt.Printf("  p%02.0f = %d\n", p*100, a.DistancePercentile(p))
	}

	fmt.Println("\nhottest pages:")
	for _, h := range a.HotPages(8, counts) {
		fmt.Printf("  vpn %6d: %d accesses\n", h.VPN, h.Count)
	}
}
