// Custompolicy: implement a new replacement policy against the public
// Policy interface and benchmark it with the same harness as the
// built-ins. The policy here is plain FIFO — no accessed-bit scanning, no
// reverse-map walks, evict in arrival order. The paper (§V-B) notes that
// LRU approximations are known to be suboptimal for zipfian key-value
// caches and that production caches often use FIFO variants; this example
// tests that observation on YCSB-C.
package main

import (
	"fmt"
	"log"

	"mglrusim"
)

// fifo evicts pages in fault-in order. It never scans accessed bits, so
// its reclaim path costs no reverse-map walks at all.
type fifo struct {
	k     mglrusim.Kernel
	queue *mglrusim.List
	stats mglrusim.PolicyStats
}

// Name implements mglrusim.Policy.
func (f *fifo) Name() string { return "fifo" }

// Attach implements mglrusim.Policy.
func (f *fifo) Attach(k mglrusim.Kernel) {
	f.k = k
	f.queue = mglrusim.NewList(k.Mem(), 0)
}

// PageIn implements mglrusim.Policy: newest pages at the head.
func (f *fifo) PageIn(v *mglrusim.Env, fr mglrusim.FrameID, sh *mglrusim.Shadow) {
	if sh != nil {
		f.stats.Refaults++
	}
	f.queue.PushHead(fr)
}

// Reclaim implements mglrusim.Policy: evict strictly from the tail.
func (f *fifo) Reclaim(v *mglrusim.Env, target int) int {
	evicted := 0
	for evicted < target {
		fr := f.queue.PopTail()
		if fr == mglrusim.NilFrame {
			break
		}
		f.stats.Evicted++
		f.k.EvictPage(v, fr, mglrusim.Shadow{EvictedAt: v.Now()})
		evicted++
	}
	return evicted
}

// Age implements mglrusim.Policy: FIFO has no background work.
func (f *fifo) Age(v *mglrusim.Env) bool { return false }

// NeedsAging implements mglrusim.Policy.
func (f *fifo) NeedsAging() bool { return false }

// Stats implements mglrusim.Policy.
func (f *fifo) Stats() mglrusim.PolicyStats { return f.stats }

func main() {
	w := mglrusim.NewYCSB(mglrusim.YCSBDefaults(mglrusim.YCSBC))
	sys := mglrusim.DefaultSystemConfig()

	fmt.Println("YCSB-C (read-only, zipfian) at 50% capacity, SSD swap")
	fmt.Printf("%-8s %12s %10s %14s %14s\n", "policy", "mean-req", "faults", "p99", "p99.99")

	policies := []struct {
		name string
		mk   mglrusim.PolicyFactory
	}{
		{"clock", mglrusim.NewClock},
		{"mglru", mglrusim.NewMGLRU},
		{"fifo", func() mglrusim.Policy { return &fifo{} }},
	}
	for _, p := range policies {
		m, err := mglrusim.RunTrial(w, p.mk, sys, 42, 5)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("%-8s %10.2fµs %10d %12.2fms %12.2fms\n",
			p.name, m.ReadLat.Mean()/1e3, m.Counters.TotalFaults(),
			m.ReadLat.Percentile(99)/1e6, m.ReadLat.Percentile(99.99)/1e6)
	}
	fmt.Println("\nFIFO pays zero scanning cost; whether that beats LRU-style")
	fmt.Println("policies depends on how much their accessed-bit signal is worth")
	fmt.Println("under a zipfian request stream (paper §V-B).")
}
