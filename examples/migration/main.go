// Migration: the paper's related-work landscape (§II-C) concerns page
// *migration* between memory tiers, not just swapping. This example runs
// a zipfian workload over a two-tier memory (fast DRAM + slow CXL-like
// tier) under three migration policies:
//
//   - static:   never migrate (cold-start placement forever)
//   - autonuma: hint-fault sampling promotion, but no demotion — the
//     limitation the paper calls out ("it lacks mechanisms to
//     demote pages")
//   - tpp:      Clock-based demotion plus second-touch promotion
//     (Maruf et al., the policy the paper describes as built
//     directly on Clock's data structures)
//
// and reports fast-tier hit ratios and migration traffic.
package main

import (
	"fmt"
	"log"

	"mglrusim"
)

func main() {
	const (
		footprint = 4096 // pages
		fastTier  = 1024 // 25% of footprint in DRAM
		slowTier  = 3328 // remainder + migration headroom
		touches   = 400000
	)

	fmt.Printf("two-tier memory: %d fast + %d slow pages, footprint %d, zipfian(0.9) accesses\n\n",
		fastTier, slowTier, footprint)
	fmt.Printf("%-9s %10s %12s %12s %12s %10s\n",
		"policy", "fast-hit%", "promotions", "demotions", "denied", "runtime")

	for _, name := range []string{"static", "autonuma", "tpp"} {
		res, err := mglrusim.RunTieringTrial(mglrusim.TieringTrialConfig{
			Policy:    name,
			Footprint: footprint,
			FastPages: fastTier,
			SlowPages: slowTier,
			Touches:   touches,
			Seed:      7,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-9s %9.1f%% %12d %12d %12d %9.2fs\n",
			name, res.FastHitRatio*100, res.Promotions, res.Demotions,
			res.PromotionsDenied, res.Runtime.Seconds())
	}

	fmt.Println("\nautonuma stalls once the fast tier fills (promotions denied, no")
	fmt.Println("demotions) — the exact limitation the paper notes in §II-C; TPP's")
	fmt.Println("Clock-based demotion keeps the fast tier serving the hot set.")
}
