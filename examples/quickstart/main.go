// Quickstart: run the TPC-H workload under Clock-LRU and MG-LRU on the
// paper's default system (12 CPUs, 50% capacity-to-footprint ratio, SSD
// swap) and compare runtime and fault counts — a single-trial taste of
// the paper's Figure 1.
package main

import (
	"fmt"
	"log"

	"mglrusim"
)

func main() {
	w := mglrusim.NewTPCH(mglrusim.TPCHDefaults())
	sys := mglrusim.DefaultSystemConfig()

	const (
		workloadSeed = 42 // fixes the executed queries
		systemSeed   = 7  // varies scheduling/device/hashing
	)

	fmt.Printf("TPC-H, %d pages footprint, %.0f%% capacity, %s swap\n\n",
		w.FootprintPages(), sys.Ratio*100, sys.Swap)
	fmt.Printf("%-8s %10s %10s %10s %12s\n", "policy", "runtime", "faults", "swapouts", "scan-cpu")

	var clockTime float64
	for _, p := range []struct {
		name string
		mk   mglrusim.PolicyFactory
	}{
		{"clock", mglrusim.NewClock},
		{"mglru", mglrusim.NewMGLRU},
	} {
		m, err := mglrusim.RunTrial(w, p.mk, sys, workloadSeed, systemSeed)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("%-8s %9.2fs %10d %10d %11.1fms\n",
			p.name, m.RuntimeSeconds(), m.Counters.TotalFaults(),
			m.Counters.SwapOuts, float64(m.Policy.ScanCPU)/1e6)
		if p.name == "clock" {
			clockTime = m.RuntimeSeconds()
		} else {
			fmt.Printf("\nMG-LRU / Clock runtime ratio: %.2f\n", m.RuntimeSeconds()/clockTime)
		}
	}
}
