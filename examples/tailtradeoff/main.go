// Tailtradeoff: reproduce the paper's key serving-workload insight
// (Figs. 3 and 12) — choosing a replacement policy is not just about
// throughput. Under SSD swap, MG-LRU trades worse read tails for better
// write tails; under ZRAM swap Clock strictly wins the tails. This
// example runs YCSB-A under both policies on both media and prints the
// latency distributions side by side.
package main

import (
	"fmt"
	"log"

	"mglrusim"
)

func main() {
	w := mglrusim.NewYCSB(mglrusim.YCSBDefaults(mglrusim.YCSBA))

	for _, medium := range []mglrusim.SwapKind{mglrusim.SwapSSD, mglrusim.SwapZRAM} {
		sys := mglrusim.SystemAt(0.5, medium)
		fmt.Printf("=== YCSB-A, 50%% capacity, %s swap ===\n", medium)

		type result struct {
			name       string
			read, wrte *mglrusim.LatencyRecorder
		}
		var results []result
		for _, p := range []struct {
			name string
			mk   mglrusim.PolicyFactory
		}{
			{"clock", mglrusim.NewClock},
			{"mglru", mglrusim.NewMGLRU},
		} {
			m, err := mglrusim.RunTrial(w, p.mk, sys, 42, 9)
			if err != nil {
				log.Fatalf("%s/%s: %v", medium, p.name, err)
			}
			results = append(results, result{p.name, m.ReadLat, m.WriteLat})
		}

		for _, class := range []string{"read", "write"} {
			fmt.Printf("\n%s latency        clock        mglru   mglru/clock\n", class)
			for _, p := range mglrusim.TailPoints {
				var a, b float64
				if class == "read" {
					a, b = results[0].read.Percentile(p), results[1].read.Percentile(p)
				} else {
					a, b = results[0].wrte.Percentile(p), results[1].wrte.Percentile(p)
				}
				fmt.Printf("  p%-7g %10.2fms %10.2fms %10.2f\n", p, a/1e6, b/1e6, ratio(b, a))
			}
		}
		fmt.Println()
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
