// Tieredmemory: use the ZRAM device as a proxy for a fast far-memory
// tier (remote/CXL/disaggregated memory, as the paper does in §V-D) and
// quantify the paper's Figure 11 finding: moving from SSD to a swap
// medium two orders of magnitude faster makes runs much faster but can
// *increase* the number of faults, because page-table scanning no longer
// keeps up with the application.
package main

import (
	"fmt"
	"log"

	"mglrusim"
)

func main() {
	workloads := []struct {
		name string
		w    mglrusim.Workload
	}{
		{"tpch", mglrusim.NewTPCH(mglrusim.TPCHDefaults())},
		{"pagerank", mglrusim.NewPageRank(mglrusim.PageRankDefaults())},
		{"ycsb-a", mglrusim.NewYCSB(mglrusim.YCSBDefaults(mglrusim.YCSBA))},
	}

	fmt.Println("MG-LRU, 50% capacity: SSD swap vs ZRAM (fast-tier proxy)")
	fmt.Printf("%-10s %12s %12s %12s %12s %10s\n",
		"workload", "rt-ssd", "rt-zram", "speedup", "fault-ratio", "zram-cr")

	for _, wl := range workloads {
		ssd, err := mglrusim.RunTrial(wl.w, mglrusim.NewMGLRU, mglrusim.SystemAt(0.5, mglrusim.SwapSSD), 42, 3)
		if err != nil {
			log.Fatal(err)
		}
		zr, err := mglrusim.RunTrial(wl.w, mglrusim.NewMGLRU, mglrusim.SystemAt(0.5, mglrusim.SwapZRAM), 42, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %11.2fs %11.2fs %11.1fx %12.2f %9.1fx\n",
			wl.name,
			ssd.RuntimeSeconds(), zr.RuntimeSeconds(),
			ssd.RuntimeSeconds()/zr.RuntimeSeconds(),
			zr.Faults()/ssd.Faults(),
			zr.Device.LifetimeCompressRatio)
	}
	fmt.Println("\nfault-ratio > 1 means the faster tier *increased* faults —")
	fmt.Println("scans lag the application when swap costs collapse (paper §V-D/§VI-B).")
}
