module mglrusim

go 1.22
