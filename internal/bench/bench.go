// Package bench is the repository's benchmark-regression harness: a set
// of named micro/macro benchmarks over the simulator's hot paths, a
// machine-readable report (BENCH_PR5.json), and a comparator that fails
// loudly when a result regresses past a committed baseline.
//
// It deliberately does not depend on `go test -bench`: the suite must be
// runnable from cmd/pagebench (so CI can produce an artifact with one
// command) and results must be structured, not scraped from text.
package bench

import (
	"runtime"
	"time"
)

// Benchmark is one named measurement. Func must perform the operation n
// times; construction cost inside Func amortizes as calibration grows n.
type Benchmark struct {
	Name string
	// Macro marks whole-series benchmarks whose per-op cost depends on
	// the suite size; the comparator skips them when baseline and
	// current reports were produced at different sizes.
	Macro bool
	// Fixed, when non-zero, runs exactly that many ops once instead of
	// calibrating up to MinTime (used for expensive macro benchmarks).
	Fixed int
	Func  func(n int)
}

// Result is the measurement of one benchmark.
type Result struct {
	Name        string  `json:"name"`
	Macro       bool    `json:"macro,omitempty"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Measure runs b, growing the iteration count until the timed run lasts
// at least minTime (testing.B-style calibration), and returns the final
// run's figures.
func Measure(b Benchmark, minTime time.Duration) Result {
	if b.Fixed > 0 {
		return runOnce(b, b.Fixed)
	}
	n := 1
	for {
		r := runOnce(b, n)
		elapsed := time.Duration(r.NsPerOp * float64(r.Ops))
		if elapsed >= minTime || n >= 1_000_000_000 {
			return r
		}
		// Predict the n that lands past minTime, bounded to 100x growth
		// (same guard rails as the testing package).
		next := n * 100
		if r.NsPerOp > 0 {
			predicted := int(1.2 * float64(minTime) / r.NsPerOp)
			if predicted < next {
				next = predicted
			}
		}
		if next <= n {
			next = n + 1
		}
		n = next
	}
}

func runOnce(b Benchmark, n int) Result {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	b.Func(n)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{
		Name:        b.Name,
		Macro:       b.Macro,
		Ops:         n,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}
}
