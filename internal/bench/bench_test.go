package bench

import (
	"path/filepath"
	"testing"
	"time"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy/mglru"
	policytestutil "mglrusim/internal/policy/policytest"
	"mglrusim/internal/sim"
)

// tinySize keeps suite tests fast: minimal calibration, one cheap figure.
func tinySize() Size {
	return Size{Name: "tiny", Scale: 0.1, Trials: 1, MinTime: 5 * time.Millisecond,
		Figures: []string{"fig1"}}
}

func TestMeasureCalibrates(t *testing.T) {
	calls := 0
	r := Measure(Benchmark{Name: "spin", Func: func(n int) {
		calls++
		x := 0
		for i := 0; i < n*1000; i++ {
			x += i
		}
		_ = x
	}}, 5*time.Millisecond)
	if r.Ops < 2 {
		t.Fatalf("calibration did not grow n: ops=%d", r.Ops)
	}
	if calls < 2 {
		t.Fatalf("expected several calibration rounds, got %d", calls)
	}
	if r.NsPerOp <= 0 {
		t.Fatalf("ns/op = %v", r.NsPerOp)
	}
}

func TestMeasureFixedRunsOnce(t *testing.T) {
	calls := 0
	r := Measure(Benchmark{Name: "fixed", Fixed: 3, Func: func(n int) {
		calls++
		if n != 3 {
			t.Fatalf("fixed n = %d", n)
		}
	}}, time.Second)
	if calls != 1 || r.Ops != 3 {
		t.Fatalf("fixed benchmark ran %d times with ops=%d", calls, r.Ops)
	}
}

func TestAllocCounting(t *testing.T) {
	r := Measure(Benchmark{Name: "alloc", Fixed: 1000, Func: func(n int) {
		sink := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			sink = append(sink, make([]byte, 64))
		}
		_ = sink
	}}, time.Second)
	if r.AllocsPerOp < 1 {
		t.Fatalf("allocs/op = %v, expected at least 1", r.AllocsPerOp)
	}
}

// TestSuiteRunsTiny executes every named benchmark once at minimal size.
func TestSuiteRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs the benchmark suite")
	}
	size := tinySize()
	for _, b := range Suite(size) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Fixed == 0 {
				b.Fixed = 16 // skip calibration, one short run
			}
			r := Measure(b, size.MinTime)
			if r.NsPerOp <= 0 {
				t.Fatalf("%s: ns/op = %v", b.Name, r.NsPerOp)
			}
		})
	}
}

// TestBloomSkipRatio pins the property the bloom-skip-walk benchmark
// leans on: with every region resident but only 2 of 64 ever
// re-accessed, the bloom-gated aging walk scans well under half the
// regions Scan-All does over the identical access pattern.
func TestBloomSkipRatio(t *testing.T) {
	run := func(cfg mglru.Config) uint64 {
		const regions = 64
		perRegion := benchFrames / regions
		k := policytestutil.New(benchFrames, regions, 7)
		p := mglru.New(cfg)
		p.Attach(k)
		policytestutil.Run(func(v *sim.Env) {
			for r := 0; r < regions; r++ {
				base := pagetable.VPN(r * pagetable.PTEsPerRegion)
				for i := 0; i < perRegion; i++ {
					k.FaultIn(v, p, base+pagetable.VPN(i), false, false)
				}
			}
			hot := []pagetable.VPN{0, pagetable.VPN(32 * pagetable.PTEsPerRegion)}
			for i := 0; i < 32; i++ {
				for _, base := range hot {
					for j := 0; j < perRegion; j++ {
						k.Touch(base+pagetable.VPN(j), false)
					}
				}
				p.Age(v)
			}
		})
		return p.Stats().RegionsScanned
	}
	bloom := run(mglru.Default())
	all := run(mglru.ScanAll())
	if all == 0 {
		t.Fatal("scan-all walked no regions; the scenario exercises nothing")
	}
	if bloom*2 >= all {
		t.Fatalf("bloom-gated walk scanned %d regions vs scan-all's %d; expected under half", bloom, all)
	}
	t.Logf("bloom-skip ratio: %d/%d regions scanned (%.0f%% skipped)",
		bloom, all, 100*(1-float64(bloom)/float64(all)))
}

// TestReportRoundTrip writes a report and reads it back.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Size:             tinySize(),
		GoMaxProcs:       1,
		FigureRunSeconds: 1.5,
		Results: []Result{
			{Name: "fault-path", Ops: 100, NsPerOp: 1000, AllocsPerOp: 2, BytesPerOp: 64},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FigureRunSeconds != rep.FigureRunSeconds || len(got.Results) != 1 ||
		got.Results[0].NsPerOp != 1000 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestComparatorCatchesSlowdown is the regression-check acceptance test: a
// deliberate slowdown must trip the comparator; results within tolerance
// must not.
func TestComparatorCatchesSlowdown(t *testing.T) {
	size := tinySize()
	baseline := &Report{Size: size, FigureRunSeconds: 10, Results: []Result{
		{Name: "fault-path", NsPerOp: 1000},
		{Name: "clock-scan", NsPerOp: 2000},
		{Name: "fig1-series", NsPerOp: 5_000_000, Macro: true},
	}}

	// Within tolerance: no findings.
	ok := &Report{Size: size, FigureRunSeconds: 11, Results: []Result{
		{Name: "fault-path", NsPerOp: 1100},
		{Name: "clock-scan", NsPerOp: 1900},
		{Name: "fig1-series", NsPerOp: 5_100_000, Macro: true},
	}}
	if regs := Compare(baseline, ok, 0.25); len(regs) != 0 {
		t.Fatalf("false positives: %v", regs)
	}

	// Deliberate 2x slowdown on one micro bench and the figure run.
	slow := &Report{Size: size, FigureRunSeconds: 25, Results: []Result{
		{Name: "fault-path", NsPerOp: 2000},
		{Name: "clock-scan", NsPerOp: 2000},
		{Name: "fig1-series", NsPerOp: 5_000_000, Macro: true},
	}}
	regs := Compare(baseline, slow, 0.25)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want fault-path and figure-run", regs)
	}
	names := map[string]bool{}
	for _, r := range regs {
		names[r.Name] = true
		if r.Current <= r.Limit {
			t.Fatalf("reported regression within limit: %+v", r)
		}
	}
	if !names["fault-path"] || !names["figure-run"] {
		t.Fatalf("wrong regressions: %v", regs)
	}
}

// TestComparatorSkipsMacroAcrossSizes: macro numbers from different suite
// sizes are incomparable and must not trip the check.
func TestComparatorSkipsMacroAcrossSizes(t *testing.T) {
	full := &Report{Size: Full(), FigureRunSeconds: 10, Results: []Result{
		{Name: "fig1-series", NsPerOp: 1_000_000, Macro: true},
		{Name: "fault-path", NsPerOp: 1000},
	}}
	smoke := &Report{Size: Smoke(), FigureRunSeconds: 100, Results: []Result{
		{Name: "fig1-series", NsPerOp: 9_000_000, Macro: true},
		{Name: "fault-path", NsPerOp: 1000},
	}}
	if regs := Compare(full, smoke, 0.25); len(regs) != 0 {
		t.Fatalf("cross-size macro comparison should be skipped: %v", regs)
	}
	// But a micro regression still trips across sizes.
	smoke.Results[1].NsPerOp = 5000
	if regs := Compare(full, smoke, 0.25); len(regs) != 1 || regs[0].Name != "fault-path" {
		t.Fatalf("micro regression missed across sizes: %v", regs)
	}
}
