package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// Report is the machine-readable output of one suite run (BENCH_PR5.json).
type Report struct {
	// Size records the suite configuration the numbers were produced at.
	Size Size `json:"size"`
	// GoMaxProcs captures the parallelism the run had available.
	GoMaxProcs int `json:"gomaxprocs"`
	// FigureRunSeconds is the wall time of the Size.Figures sweep.
	FigureRunSeconds float64 `json:"figure_run_seconds"`
	// PrePR2FigureRunSeconds is the same sweep measured on the pre-PR2
	// tree (the optimization baseline this PR is judged against). Carried
	// forward from the baseline report when not measured directly.
	PrePR2FigureRunSeconds float64 `json:"pre_pr2_figure_run_seconds,omitempty"`
	// Speedup is PrePR2FigureRunSeconds / FigureRunSeconds when both are
	// known.
	Speedup float64 `json:"speedup,omitempty"`
	Results []Result `json:"results"`
}

// Config parameterizes RunReport.
type Config struct {
	Size Size
	// PrePR2FigureRunSeconds, when non-zero, is recorded in the report
	// (used when regenerating the committed baseline).
	PrePR2FigureRunSeconds float64
	// Progress, when non-nil, receives one line per benchmark.
	Progress io.Writer
}

// RunReport executes the full suite plus the figure-run measurement.
func RunReport(cfg Config) (*Report, error) {
	rep := &Report{Size: cfg.Size, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, b := range Suite(cfg.Size) {
		r := Measure(b, cfg.Size.MinTime)
		rep.Results = append(rep.Results, r)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "bench %-20s %12.0f ns/op %10.1f allocs/op %12.0f B/op (%d ops)\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Ops)
		}
	}
	secs, err := timeFigureRun(cfg.Size, nil)
	if err != nil {
		return nil, err
	}
	rep.FigureRunSeconds = secs
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, "bench %-20s %12.2f s\n", "figure-run", secs)
	}
	if cfg.PrePR2FigureRunSeconds > 0 {
		rep.PrePR2FigureRunSeconds = cfg.PrePR2FigureRunSeconds
		rep.Speedup = rep.PrePR2FigureRunSeconds / rep.FigureRunSeconds
	}
	return rep, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a report written by WriteFile.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one comparator finding: a result slower than the baseline
// allows.
type Regression struct {
	Name     string
	Baseline float64 // baseline ns/op (or seconds for figure-run)
	Current  float64
	Limit    float64 // baseline * (1 + tolerance)
}

func (r Regression) String() string {
	return fmt.Sprintf("%s regressed: %.0f -> %.0f (limit %.0f)", r.Name, r.Baseline, r.Current, r.Limit)
}

// Compare checks current against baseline with a relative tolerance
// (0.25 = 25% slower allowed) and returns every regression found.
//
// Macro results and the figure-run time are only compared when the two
// reports were produced at the same suite size; micro ns/op are per
// operation and compare across sizes.
func Compare(baseline, current *Report, tolerance float64) []Regression {
	var regs []Regression
	sameSize := baseline.Size.Name == current.Size.Name
	base := map[string]Result{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	for _, cur := range current.Results {
		b, ok := base[cur.Name]
		if !ok || (cur.Macro && !sameSize) {
			continue
		}
		limit := b.NsPerOp * (1 + tolerance)
		if cur.NsPerOp > limit {
			regs = append(regs, Regression{Name: cur.Name, Baseline: b.NsPerOp, Current: cur.NsPerOp, Limit: limit})
		}
	}
	if sameSize && baseline.FigureRunSeconds > 0 {
		limit := baseline.FigureRunSeconds * (1 + tolerance)
		if current.FigureRunSeconds > limit {
			regs = append(regs, Regression{Name: "figure-run",
				Baseline: baseline.FigureRunSeconds, Current: current.FigureRunSeconds, Limit: limit})
		}
	}
	return regs
}

