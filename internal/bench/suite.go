package bench

import (
	"fmt"
	"io"
	"time"

	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
	"mglrusim/internal/mem"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/pagetable"
	policypkg "mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/policy/mglru"
	policytestutil "mglrusim/internal/policy/policytest"
	"mglrusim/internal/policy/simple"
	"mglrusim/internal/rmap"
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
	"mglrusim/internal/telemetry"
)

// Size selects how much work the suite does. Micro benchmark ns/op are
// size-independent (per operation); macro results and the figure run are
// only comparable between reports of the same size.
type Size struct {
	Name    string        `json:"name"`
	Scale   float64       `json:"scale"`
	Trials  int           `json:"trials"`
	MinTime time.Duration `json:"-"`
	// Figures lists the figure IDs timed for the figure-run measurement.
	Figures []string `json:"figures"`
}

// Full is the size the committed BENCH_PR5.json baseline was produced at:
// the default byte-identity workload (all 12 figures, trials=2,
// scale=0.2).
func Full() Size {
	return Size{Name: "full", Scale: 0.2, Trials: 2, MinTime: 500 * time.Millisecond,
		Figures: experiments.FigureIDs()}
}

// Smoke is the reduced size CI runs on every push.
func Smoke() Size {
	return Size{Name: "smoke", Scale: 0.1, Trials: 1, MinTime: 50 * time.Millisecond,
		Figures: []string{"fig1"}}
}

// Suite returns the named benchmarks over the simulator's hot paths.
func Suite(size Size) []Benchmark {
	return []Benchmark{
		{Name: "fault-path", Func: benchFaultPath},
		{Name: "mglru-aging-walk", Func: benchAgingWalk},
		{Name: "aging-walk-dense", Func: benchAgingWalkDense},
		{Name: "bloom-skip-walk", Func: benchBloomSkipWalk},
		{Name: "clock-scan", Func: benchClockScan},
		{Name: "rmap-chase", Func: benchRMapChase},
		{Name: "file-fault-path", Func: benchFileFaultPath},
		{Name: "writeback-cluster", Func: benchWritebackCluster},
		{Name: "refault-shadow-lookup", Func: benchRefaultShadowLookup},
		{Name: "telemetry-span", Func: benchTelemetrySpan},
		{Name: "fullscale-fault-path", Macro: true, Fixed: 20000, Func: benchFullScaleFaultPath},
		{Name: "fig1-series", Macro: true, Fixed: 1, Func: func(n int) { benchFig1Series(n, size) }},
	}
}

const (
	benchFrames  = 256
	benchRegions = 1 // 512 mapped pages: a 2x over-commit against benchFrames
)

// benchFaultPath drives the fault/evict cycle with the scan-free FIFO
// policy: every op is one page fault including the reclaim that makes
// room for it. Isolates PageIn/Reclaim/EvictPage plus table bookkeeping.
func benchFaultPath(n int) {
	k := policytestutil.New(benchFrames, benchRegions, 7)
	p := simple.NewFIFO()
	p.Attach(k)
	pages := pagetable.VPN(k.T.Pages())
	policytestutil.Run(func(v *sim.Env) {
		for i := 0; i < n; i++ {
			vpn := pagetable.VPN(i) % pages
			if k.Touch(vpn, i%3 == 0) {
				continue
			}
			for k.M.FreePages() == 0 {
				if p.Reclaim(v, 1) == 0 {
					p.Age(v)
				}
			}
			k.FaultIn(v, p, vpn, false, false)
		}
	})
}

// benchAgingWalk measures one MG-LRU aging pass over a populated table
// (ModeAll: every region is scanned, the paper's Scan-All variant). Each
// op re-touches a working set then walks, matching steady-state aging.
func benchAgingWalk(n int) {
	k := policytestutil.New(benchFrames, 4, 7)
	p := mglru.New(mglru.ScanAll())
	p.Attach(k)
	policytestutil.Run(func(v *sim.Env) {
		// Populate: one resident page per free frame, spread over regions.
		stride := pagetable.VPN(k.T.Pages() / benchFrames)
		for i := 0; i < benchFrames; i++ {
			k.FaultIn(v, p, pagetable.VPN(i)*stride, false, false)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < 64; j++ {
				k.Touch(pagetable.VPN((i*31+j)%benchFrames)*stride, false)
			}
			p.Age(v)
		}
	})
}

// benchAgingWalkDense measures the aging walk's best case for the packed
// layout: full-fanout (512-PTE) regions with every PTE resident, so
// HarvestRegion runs whole 64-bit present∩accessed words instead of
// skipping holes. Each op re-touches a spread working set then walks.
func benchAgingWalkDense(n int) {
	const regions = 4
	frames := regions * pagetable.PTEsPerRegion
	k := policytestutil.New(frames, regions, 7)
	p := mglru.New(mglru.ScanAll())
	p.Attach(k)
	policytestutil.Run(func(v *sim.Env) {
		for i := 0; i < frames; i++ {
			k.FaultIn(v, p, pagetable.VPN(i), false, false)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < 256; j++ {
				k.Touch(pagetable.VPN((i*97+j*17)%frames), false)
			}
			p.Age(v)
		}
	})
}

// benchBloomSkipWalk measures the bloom-gated aging walk (the kernel
// default) over a table where every region holds resident pages but only
// two are ever re-accessed: after the cold-start walk the filter admits
// just the dense regions, so ns/op tracks the cost of gating past
// resident-but-idle regions, not of scanning them. The companion
// TestBloomSkipRatio asserts the skip ratio itself.
func benchBloomSkipWalk(n int) {
	const regions = 64
	perRegion := benchFrames / regions // thin residency everywhere
	k := policytestutil.New(benchFrames, regions, 7)
	p := mglru.New(mglru.Default())
	p.Attach(k)
	policytestutil.Run(func(v *sim.Env) {
		for r := 0; r < regions; r++ {
			base := pagetable.VPN(r * pagetable.PTEsPerRegion)
			for i := 0; i < perRegion; i++ {
				k.FaultIn(v, p, base+pagetable.VPN(i), false, false)
			}
		}
		hot := []pagetable.VPN{0, pagetable.VPN(32 * pagetable.PTEsPerRegion)}
		for i := 0; i < n; i++ {
			for _, base := range hot {
				for j := 0; j < perRegion; j++ {
					k.Touch(base+pagetable.VPN(j), false)
				}
			}
			p.Age(v)
		}
	})
}

// benchClockScan is the fault cycle under Clock: each op's reclaim runs
// the two-list second-chance scan with its rmap resolutions.
func benchClockScan(n int) {
	k := policytestutil.New(benchFrames, benchRegions, 7)
	p := clock.New(clock.DefaultConfig())
	p.Attach(k)
	pages := pagetable.VPN(k.T.Pages())
	policytestutil.Run(func(v *sim.Env) {
		for i := 0; i < n; i++ {
			vpn := pagetable.VPN(i) % pages
			if k.Touch(vpn, false) {
				continue
			}
			for k.M.FreePages() == 0 {
				if p.Reclaim(v, 1) == 0 {
					p.Age(v)
				}
			}
			k.FaultIn(v, p, vpn, false, false)
		}
	})
}

// benchRMapChase measures raw reverse-map resolutions with the default
// (jittered) cost model — the pointer-chase Clock pays per scanned page.
func benchRMapChase(n int) {
	k := policytestutil.New(benchFrames, benchRegions, 7)
	p := simple.NewFIFO()
	p.Attach(k)
	r := rmap.New(k.M, rmap.DefaultCostModel(), sim.NewRNG(11))
	policytestutil.Run(func(v *sim.Env) {
		for i := 0; i < benchFrames; i++ {
			k.FaultIn(v, p, pagetable.VPN(i), false, false)
		}
		for i := 0; i < n; i++ {
			r.Walk(mem.FrameID(i % benchFrames))
		}
	})
}

// benchCache builds a page cache spanning the kernel double's whole
// table, flusher off (Enabled false skips the daemon; the writeback
// machinery still works when called directly), so benches measure the
// cache's bookkeeping without background scheduling noise.
func benchCache(k *policytestutil.Kernel, eng *sim.Engine) *pagecache.Cache {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	dev := swap.NewSSD(swap.DefaultSSDConfig(), eng, sim.NewRNG(11))
	spans := []pagecache.FileSpan{{Name: "f0", Base: 0, Pages: k.T.Pages()}}
	return pagecache.New(cfg, eng, k.T, k.M, dev, spans)
}

// benchFileFaultPath is benchFaultPath with every page file-backed under
// default MG-LRU: each miss pays the cache's demand-read service and
// shadow handoff, each eviction records a shadow and pages out if dirty —
// the full file major-fault cycle the ext2 figures spend their time in.
func benchFileFaultPath(n int) {
	k := policytestutil.New(benchFrames, benchRegions, 7)
	p := mglru.New(mglru.Default())
	p.Attach(k)
	eng := sim.NewEngine(4)
	c := benchCache(k, eng)
	k.OnEvict = func(v *sim.Env, vpn pagetable.VPN, sh policypkg.Shadow) {
		c.RecordEviction(vpn, sh)
		if c.ClearDirty(vpn) {
			c.PageOut(v, vpn)
		}
	}
	pages := pagetable.VPN(k.T.Pages())
	eng.Spawn("bench", false, func(v *sim.Env) {
		for i := 0; i < n; i++ {
			vpn := pagetable.VPN(i) % pages
			if k.Touch(vpn, i%8 == 0) {
				if i%8 == 0 {
					c.MarkDirty(vpn)
				}
				continue
			}
			for k.M.FreePages() == 0 {
				if p.Reclaim(v, 1) == 0 {
					p.Age(v)
				}
			}
			c.TakeShadow(vpn)
			c.ReadPage(v, vpn)
			c.NoteResident(vpn)
			k.FaultIn(v, p, vpn, false, true)
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
}

// benchWritebackCluster measures one flusher pass's clustering: each op
// dirties strided runs across the file mapping (adjacent dirty pages the
// flusher must merge into extents, gaps it must split on) and drains them
// with FlushAll.
func benchWritebackCluster(n int) {
	k := policytestutil.New(benchFrames, benchRegions, 7)
	eng := sim.NewEngine(4)
	c := benchCache(k, eng)
	pages := k.T.Pages()
	eng.Spawn("bench", false, func(v *sim.Env) {
		for i := 0; i < n; i++ {
			for run := 0; run < 8; run++ {
				base := (i*67 + run*61) % (pages - 16)
				for j := 0; j < 16; j++ {
					c.MarkDirty(pagetable.VPN(base + j))
				}
			}
			c.FlushAll(v)
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
}

// benchRefaultShadowLookup measures the shadow-entry arena: each op is
// one HasShadow probe plus a TakeShadow consume and a RecordEviction
// refill, over a fully populated shadow set — the per-fault overhead
// refault classification adds to every file page-in.
func benchRefaultShadowLookup(n int) {
	k := policytestutil.New(benchFrames, benchRegions, 7)
	eng := sim.NewEngine(4)
	c := benchCache(k, eng)
	pages := k.T.Pages()
	for i := 0; i < pages; i++ {
		c.RecordEviction(pagetable.VPN(i), policypkg.Shadow{Gen: uint64(i), Tier: uint8(i % 4)})
	}
	for i := 0; i < n; i++ {
		vpn := pagetable.VPN((i * 31) % pages)
		if !c.HasShadow(vpn) {
			panic("bench: shadow set should stay fully populated")
		}
		sh := c.TakeShadow(vpn)
		c.RecordEviction(vpn, *sh)
	}
}

// benchTelemetrySpan measures one recorded span (Begin + EndArg) on a
// live tracer — the marginal cost a traced run pays per instrumented
// event. The nil-tracer (tracing off) cost is guarded by the unchanged
// fault-path/clock-scan numbers against the committed baseline.
func benchTelemetrySpan(n int) {
	tr := telemetry.New(telemetry.Config{MaxEvents: n})
	var now sim.Time
	tr.Bind(func() sim.Time { return now })
	track := tr.Track("bench")
	for i := 0; i < n; i++ {
		now = sim.Time(i)
		sp := tr.Begin(track, "op")
		now++
		sp.EndArg(int64(i))
	}
}

// benchFullScaleFaultPath drives the fault/evict cycle against a
// full-scale table: 8192 regions of 512 PTEs — 4.19M mapped pages, the
// paper's native footprint band — over a small physical memory, with
// faults striding across the whole span. Bounds the per-fault cost of
// the packed layout's bookkeeping at the geometry full-scale runs use;
// the table and frame arena construction amortizes over the fixed op
// count (and is itself part of what the benchmark guards: construction
// is O(regions), not O(pages)).
func benchFullScaleFaultPath(n int) {
	const regions = 8192
	k := policytestutil.New(4096, regions, 7)
	p := simple.NewFIFO()
	p.Attach(k)
	pages := uint64(k.T.Pages())
	policytestutil.Run(func(v *sim.Env) {
		const stride = 524287 // prime ≈ pages/8: consecutive faults land in distant regions
		for i := 0; i < n; i++ {
			vpn := pagetable.VPN(uint64(i) * stride % pages)
			if k.Touch(vpn, false) {
				continue
			}
			for k.M.FreePages() == 0 {
				if p.Reclaim(v, 1) == 0 {
					p.Age(v)
				}
			}
			k.FaultIn(v, p, vpn, false, false)
		}
	})
}

// benchFig1Series runs one complete Fig-1 series (tpch under MG-LRU at
// the paper's 50% ratio) through the experiment harness — trials, seeding,
// metrics harvest and all. A fresh Runner per op defeats the series cache.
func benchFig1Series(n int, size Size) {
	for i := 0; i < n; i++ {
		r := experiments.NewRunner(experiments.Options{
			Trials: size.Trials, Scale: size.Scale, Seed: 0x5EED,
		})
		w := experiments.WorkloadByName("tpch", size.Scale)
		p := experiments.PolicyByName(experiments.PolMGLRU)
		if _, err := r.Run(w, p, experiments.SystemAt(0.5, core.SwapSSD)); err != nil {
			panic(fmt.Sprintf("bench: fig1 series failed: %v", err))
		}
	}
}

// timeFigureRun executes the size's figure list once and returns the wall
// time — the suite's headline macro number.
func timeFigureRun(size Size, progress io.Writer) (float64, error) {
	r := experiments.NewRunner(experiments.Options{
		Trials: size.Trials, Scale: size.Scale, Seed: 0x5EED, Progress: progress,
	})
	start := time.Now()
	for _, id := range size.Figures {
		if _, err := experiments.Figures[id](r); err != nil {
			return 0, fmt.Errorf("bench: figure %s: %w", id, err)
		}
	}
	return time.Since(start).Seconds(), nil
}
