// Package bloom implements the split bloom filter MG-LRU uses to decide
// which page-table regions the aging scan should visit. The kernel keeps
// two filters per lruvec — the one consulted for the current aging walk
// and the one being populated for the next — and swaps them each
// generation; package policy/mglru owns that double-buffering, this
// package provides the filter itself.
//
// Filters are seeded: two simulator trials with different system seeds
// hash region numbers differently, so collision patterns — and therefore
// which cold regions get scanned by accident — vary across trials. This is
// one of the seed-dependent mechanisms behind MG-LRU's run-to-run
// variance in the paper.
package bloom

// Filter is a fixed-size bloom filter over uint64 keys.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
	salt1 uint64
	salt2 uint64
	adds  int
}

// New creates a filter with nbits bits (rounded up to a multiple of 64)
// and k hash functions, salted from seed.
func New(nbits int, k int, seed uint64) *Filter {
	if nbits <= 0 || k <= 0 {
		panic("bloom: nbits and k must be positive")
	}
	words := (nbits + 63) / 64
	return &Filter{
		bits:  make([]uint64, words),
		nbits: uint64(words * 64),
		k:     k,
		salt1: mix(seed ^ 0x9e3779b97f4a7c15),
		salt2: mix(seed ^ 0xc2b2ae3d27d4eb4f),
	}
}

// NewForItems sizes a filter for n expected items at roughly 1% false
// positive rate (about 10 bits per item, 3 hashes — matching the kernel's
// small fixed filters in spirit).
func NewForItems(n int, seed uint64) *Filter {
	if n < 16 {
		n = 16
	}
	return New(n*10, 3, seed)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// indexes derives the k bit positions for key by double hashing.
func (f *Filter) index(key uint64, i int) uint64 {
	h1 := mix(key ^ f.salt1)
	h2 := mix(key^f.salt2) | 1 // odd stride
	return (h1 + uint64(i)*h2) % f.nbits
}

// Add inserts key.
func (f *Filter) Add(key uint64) {
	for i := 0; i < f.k; i++ {
		b := f.index(key, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
	f.adds++
}

// MayContain reports whether key might have been added. False positives
// are possible; false negatives are not.
func (f *Filter) MayContain(key uint64) bool {
	for i := 0; i < f.k; i++ {
		b := f.index(key, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the filter, retaining its sizing and salts.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.adds = 0
}

// Adds reports how many keys have been inserted since the last Clear.
func (f *Filter) Adds() int { return f.adds }

// Bits reports the filter capacity in bits.
func (f *Filter) Bits() int { return int(f.nbits) }
