package bloom

import (
	"encoding/binary"
	"testing"
)

// FuzzNoFalseNegatives feeds the filter arbitrary key batches and
// asserts the one property a bloom filter must never break: every added
// key is reported as possibly present — across sizes, hash counts,
// seeds, and after Clear/re-Add cycles.
func FuzzNoFalseNegatives(f *testing.F) {
	f.Add(64, 3, uint64(1), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(1, 1, uint64(0), []byte{0xff})
	f.Add(640, 7, uint64(42), []byte("spatially adjacent regions"))
	f.Add(10_000, 3, uint64(0x5EED), make([]byte, 256))

	f.Fuzz(func(t *testing.T, nbits, k int, seed uint64, data []byte) {
		if nbits <= 0 || nbits > 1<<20 || k <= 0 || k > 16 {
			t.Skip()
		}
		fl := New(nbits, k, seed)

		// Decode data into keys, 8 bytes each (short tail zero-padded).
		keys := make([]uint64, 0, len(data)/8+1)
		for i := 0; i < len(data); i += 8 {
			var buf [8]byte
			copy(buf[:], data[i:])
			keys = append(keys, binary.LittleEndian.Uint64(buf[:]))
		}

		for _, key := range keys {
			fl.Add(key)
		}
		for _, key := range keys {
			if !fl.MayContain(key) {
				t.Fatalf("false negative: key %#x added but not found (nbits=%d k=%d seed=%#x)", key, nbits, k, seed)
			}
		}
		if fl.Adds() != len(keys) {
			t.Fatalf("Adds() = %d, want %d", fl.Adds(), len(keys))
		}

		// Clear must forget everything...
		fl.Clear()
		if fl.Adds() != 0 {
			t.Fatalf("Adds() = %d after Clear, want 0", fl.Adds())
		}
		for _, key := range keys {
			if fl.MayContain(key) {
				// A cleared filter has no set bits, so even false
				// positives are impossible.
				t.Fatalf("key %#x still present after Clear", key)
			}
		}
		// ...and re-adding must restore the guarantee.
		for _, key := range keys {
			fl.Add(key)
		}
		for _, key := range keys {
			if !fl.MayContain(key) {
				t.Fatalf("false negative after Clear/re-Add: key %#x", key)
			}
		}
	})
}
