package bloom

import (
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 3, 42)
	for k := uint64(0); k < 60; k++ {
		f.Add(k * 7)
	}
	for k := uint64(0); k < 60; k++ {
		if !f.MayContain(k * 7) {
			t.Fatalf("false negative for key %d", k*7)
		}
	}
}

// Property: anything added is always found, regardless of seed and sizing.
func TestNoFalseNegativesProperty(t *testing.T) {
	fn := func(seed uint64, keys []uint64) bool {
		f := NewForItems(len(keys)+1, seed)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := NewForItems(1000, 7)
	for k := uint64(0); k < 1000; k++ {
		f.Add(k)
	}
	fp := 0
	const probes = 10000
	for k := uint64(1 << 32); k < 1<<32+probes; k++ {
		if f.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestClear(t *testing.T) {
	f := New(256, 3, 1)
	f.Add(123)
	if f.Adds() != 1 {
		t.Fatal("adds counter")
	}
	f.Clear()
	if f.MayContain(123) {
		t.Fatal("cleared filter should not contain key")
	}
	if f.Adds() != 0 {
		t.Fatal("adds not reset")
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(512, 4, 9)
	for k := uint64(0); k < 100; k++ {
		if f.MayContain(k) {
			t.Fatalf("empty filter claims to contain %d", k)
		}
	}
}

func TestSeedsChangeCollisionPattern(t *testing.T) {
	// Two filters with different seeds should disagree on at least some
	// non-member probes once loaded.
	a := New(512, 2, 1)
	b := New(512, 2, 2)
	for k := uint64(0); k < 200; k++ {
		a.Add(k)
		b.Add(k)
	}
	diff := 0
	for k := uint64(10000); k < 11000; k++ {
		if a.MayContain(k) != b.MayContain(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical false-positive patterns")
	}
}

func TestBitsRounding(t *testing.T) {
	f := New(65, 1, 0)
	if f.Bits() != 128 {
		t.Fatalf("bits = %d, want 128", f.Bits())
	}
}
