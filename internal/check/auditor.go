// Package check is the simulator's correctness-tooling subsystem. It has
// three layers:
//
//   - Auditor: an invariant checker the memory manager hooks at fault-in,
//     eviction, and aging checkpoints. Off by default; when disabled the
//     only cost anywhere is a nil check per checkpoint. When enabled it
//     asserts frame conservation and ownership, policy-list membership
//     versus residency, shadow-entry discipline, LRU-lock discipline
//     across list mutations, and MG-LRU generation monotonicity.
//
//   - Replay/Differential (replay.go): a trace-replay harness that runs
//     every replacement policy — including the oracle policies of
//     internal/policy/oracle — over identical recorded workload traces at
//     a fixed capacity, and asserts the ordering bounds: no policy incurs
//     fewer faults than Belady-OPT, and exact-LRU's fault count equals
//     the Mattson stack-distance prediction of internal/trace exactly.
//
//   - The determinism suite (determinism_test.go): same seed ⇒
//     byte-identical metrics across repeated runs and across harness
//     parallelism settings.
//
// Every figure the simulator reproduces derives from which pages policies
// scan and evict; this package is what makes silent bookkeeping bugs in
// that machinery loud.
package check

import (
	"fmt"
	"strings"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
)

// Violation is one detected invariant breach.
type Violation struct {
	// At is the virtual time of detection.
	At sim.Time
	// Checkpoint identifies the hook that detected it ("fault-in",
	// "evict", "aging", "scan", "lock", "final").
	Checkpoint string
	// Msg describes the breach.
	Msg string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%v %s] %s", v.At, v.Checkpoint, v.Msg)
}

// generational is implemented by policies with a generation window
// (MG-LRU); the auditor checks its monotonicity.
type generational interface {
	MinSeq() uint64
	MaxSeq() uint64
}

// Auditor asserts memory-manager/policy bookkeeping invariants at
// checkpoints. It never charges CPU or blocks, so enabling it cannot
// perturb simulated time — audited and unaudited runs of the same seed
// produce identical metrics.
type Auditor struct {
	eng    *sim.Engine
	memory *mem.Memory
	table  *pagetable.Table
	pol    policy.Policy

	// Every is the full-state scan cadence: one O(pages) sweep per Every
	// checkpoints (cheap per-event checks always run). Default 32.
	Every int
	// MaxViolations caps recording; once reached, checking stops.
	// Default 16.
	MaxViolations int

	// extra holds registered subsystem-specific invariants (e.g. the
	// memory manager's swap-slot ownership check), run on each full scan.
	extra []func() error

	// evicted tracks pages with a live shadow entry: added when the
	// shadow is recorded at eviction, removed when it is consumed (or
	// deliberately dropped by readahead) at fault-in. Divergence from
	// the manager's view is a lost or duplicated shadow.
	evicted map[pagetable.VPN]bool

	// fileEvicted is the same ledger for file-backed pages under
	// page-cache mode. They live in a separate set because the swap-slot
	// expectation inverts: an evicted anon page must hold a slot, an
	// evicted file page must not (its backing location is the file).
	fileEvicted map[pagetable.VPN]bool

	// fileResident mirrors the page cache's resident set page by page:
	// added at file fault-in/prefetch-in, removed at file eviction. The
	// cache itself keeps only a counter, so this ledger is what lets the
	// auditor reconcile it at every file event (not just full scans) and
	// name the offending pages when a sweep disagrees.
	fileResident map[pagetable.VPN]bool

	// fc, when set, is the page cache whose shadow entries and resident
	// count the full scan cross-checks.
	fc FileCache

	genSeen          bool
	lastMin, lastMax uint64

	checkpoints uint64
	violations  []Violation

	// reporter, when set, receives each violation at detection time. It is
	// the auditor→telemetry hook: the vmm wires it to the trial's flight
	// recorder so the invariant diff reaches flight.txt immediately, not
	// only through the end-of-trial error path (which a panic can bypass).
	reporter func(Violation)

	// scratch buffers reused across full scans.
	freeSet  []bool
	frameOwn []int64
}

// FileCache is the page-cache view the auditor cross-checks under
// page-cache mode: file-page conservation (resident count versus a full
// PTE scan) and shadow-entry consistency (the cache's shadow set versus
// the auditor's file-eviction ledger).
type FileCache interface {
	ResidentFilePages() int
	ShadowCount() int
	HasShadow(vpn pagetable.VPN) bool
}

// NewAuditor creates an auditor over one trial's memory, table, and
// policy. Call WatchLists to additionally enforce lock discipline.
func NewAuditor(eng *sim.Engine, memory *mem.Memory, table *pagetable.Table, pol policy.Policy) *Auditor {
	return &Auditor{
		eng:           eng,
		memory:        memory,
		table:         table,
		pol:           pol,
		Every:         32,
		MaxViolations: 16,
		evicted:       make(map[pagetable.VPN]bool),
		fileEvicted:   make(map[pagetable.VPN]bool),
		fileResident:  make(map[pagetable.VPN]bool),
		freeSet:       make([]bool, memory.Size()),
		frameOwn:      make([]int64, memory.Size()),
	}
}

// SetFileCache attaches the page cache for the file-page invariants; the
// full scan then cross-checks its resident count and shadow set.
func (a *Auditor) SetFileCache(fc FileCache) { a.fc = fc }

// WatchLists installs the list-mutation hook: every LRU-list insert or
// remove must happen with the policy's lruvec lock held by the acting
// proc. No-op for policies that do not expose their lock.
func (a *Auditor) WatchLists() {
	ld, ok := a.pol.(policy.LockDebugger)
	if !ok {
		return
	}
	lock := ld.DebugLock()
	a.memory.SetMutationHook(func(listID int16, f mem.FrameID) {
		cur := a.eng.Current()
		if cur == nil {
			return // engine context (setup/shutdown), no lock discipline
		}
		if lock.DebugOwner() != cur {
			a.violate(a.eng.Now(), "lock", fmt.Sprintf(
				"list %d mutated for frame %d by proc %q without holding the LRU lock",
				listID, f, cur.Name()))
		}
	})
}

// AddInvariant registers an extra check run on every full-state scan; a
// non-nil error is recorded as a violation.
func (a *Auditor) AddInvariant(fn func() error) { a.extra = append(a.extra, fn) }

// disabled reports whether the violation cap has been reached.
func (a *Auditor) disabled() bool { return len(a.violations) >= a.MaxViolations }

func (a *Auditor) violate(at sim.Time, checkpoint, msg string) {
	if a.disabled() {
		return
	}
	v := Violation{At: at, Checkpoint: checkpoint, Msg: msg}
	a.violations = append(a.violations, v)
	if a.reporter != nil {
		a.reporter(v)
	}
}

// SetReporter installs a sink invoked for each violation as it is
// detected (bounded by MaxViolations, like recording itself).
func (a *Auditor) SetReporter(fn func(Violation)) { a.reporter = fn }

// FaultIn is the fault-path checkpoint, called after the PTE is installed
// (and any shadow consumed) but before the policy's PageIn.
func (a *Auditor) FaultIn(v *sim.Env, vpn pagetable.VPN, hadShadow bool) {
	if a.disabled() {
		return
	}
	a.noteReturn(v.Now(), "fault-in", vpn, hadShadow, a.evicted)
	a.checkpoint(v.Now(), "fault-in")
}

// PrefetchIn is the readahead checkpoint: the page became resident
// speculatively and its shadow, if any, was deliberately dropped.
func (a *Auditor) PrefetchIn(v *sim.Env, vpn pagetable.VPN, hadShadow bool) {
	if a.disabled() {
		return
	}
	a.noteReturn(v.Now(), "prefetch-in", vpn, hadShadow, a.evicted)
	a.checkpoint(v.Now(), "prefetch-in")
}

// FileFaultIn is the file-fault checkpoint: a file page became resident
// through the page cache, consuming its cache shadow entry if one
// existed.
func (a *Auditor) FileFaultIn(v *sim.Env, vpn pagetable.VPN, hadShadow bool) {
	if a.disabled() {
		return
	}
	a.noteReturn(v.Now(), "file-fault-in", vpn, hadShadow, a.fileEvicted)
	a.noteFileResident(v.Now(), "file-fault-in", vpn)
	a.checkpoint(v.Now(), "file-fault-in")
}

// FilePrefetchIn is the file-readahead checkpoint: the page became
// resident speculatively and its cache shadow, if any, was deliberately
// dropped.
func (a *Auditor) FilePrefetchIn(v *sim.Env, vpn pagetable.VPN, hadShadow bool) {
	if a.disabled() {
		return
	}
	a.noteReturn(v.Now(), "file-prefetch-in", vpn, hadShadow, a.fileEvicted)
	a.noteFileResident(v.Now(), "file-prefetch-in", vpn)
	a.checkpoint(v.Now(), "file-prefetch-in")
}

// FilePrefetchAbandoned undoes a FilePrefetchIn whose speculative read
// failed: the page was torn back out untouched, leaving no shadow entry
// (speculation failing is not an eviction).
func (a *Auditor) FilePrefetchAbandoned(v *sim.Env, vpn pagetable.VPN) {
	if a.disabled() {
		return
	}
	now := v.Now()
	if !a.fileResident[vpn] {
		a.violate(now, "file-prefetch-abandon", fmt.Sprintf("file vpn %d prefetch abandoned but the auditor never saw it become resident", vpn))
	}
	delete(a.fileResident, vpn)
	if a.fc != nil && a.fc.ResidentFilePages() != len(a.fileResident) {
		a.violate(now, "file-prefetch-abandon", fmt.Sprintf("after abandoning file vpn %d the cache counts %d resident file pages, the auditor ledger %d", vpn, a.fc.ResidentFilePages(), len(a.fileResident)))
	}
	if pte := a.table.PTE(vpn); pte.Present() {
		a.violate(now, "file-prefetch-abandon", fmt.Sprintf("file vpn %d still present after its prefetch was abandoned", vpn))
	}
	a.checkpoint(now, "file-prefetch-abandon")
}

// noteFileResident reconciles the page cache's resident count with the
// auditor's own page-by-page ledger at the moment a file page is
// installed. Checking at every file event — not only at full scans —
// pins a drifting counter to the exact install or evict that broke it.
func (a *Auditor) noteFileResident(now sim.Time, kind string, vpn pagetable.VPN) {
	if a.fileResident[vpn] {
		a.violate(now, kind, fmt.Sprintf("file vpn %d became resident twice without an intervening eviction", vpn))
	}
	a.fileResident[vpn] = true
	if a.fc != nil && a.fc.ResidentFilePages() != len(a.fileResident) {
		a.violate(now, kind, fmt.Sprintf("after installing file vpn %d the cache counts %d resident file pages, the auditor ledger %d", vpn, a.fc.ResidentFilePages(), len(a.fileResident)))
	}
}

// noteReturn reconciles the given shadow ledger with a page becoming
// resident and spot-checks the new mapping.
func (a *Auditor) noteReturn(now sim.Time, kind string, vpn pagetable.VPN, hadShadow bool, set map[pagetable.VPN]bool) {
	if hadShadow && !set[vpn] {
		a.violate(now, kind, fmt.Sprintf("vpn %d returned with a shadow the auditor never saw recorded (duplicated shadow)", vpn))
	}
	if !hadShadow && set[vpn] {
		a.violate(now, kind, fmt.Sprintf("vpn %d refaulted without its shadow (lost shadow entry)", vpn))
	}
	delete(set, vpn)

	pte := a.table.PTE(vpn)
	if !pte.Present() {
		a.violate(now, kind, fmt.Sprintf("vpn %d not present immediately after insert", vpn))
		return
	}
	if fr := a.memory.Frame(pte.Frame); fr.VPN != int64(vpn) {
		a.violate(now, kind, fmt.Sprintf("vpn %d installed in frame %d but frame back-reference says vpn %d", vpn, pte.Frame, fr.VPN))
	}
}

// Evicted is the eviction checkpoint, called the moment the shadow entry
// is recorded (PTE already cleared, before eviction I/O).
func (a *Auditor) Evicted(v *sim.Env, vpn pagetable.VPN) {
	if a.disabled() {
		return
	}
	now := v.Now()
	if a.evicted[vpn] {
		a.violate(now, "evict", fmt.Sprintf("vpn %d evicted twice without an intervening fault-in (shadow overwritten)", vpn))
	}
	a.evicted[vpn] = true
	pte := a.table.PTE(vpn)
	if pte.Present() {
		a.violate(now, "evict", fmt.Sprintf("vpn %d still present after eviction", vpn))
	}
	if pte.Swap == pagetable.NilSwap {
		a.violate(now, "evict", fmt.Sprintf("vpn %d evicted without a swap slot", vpn))
	}
	a.checkpoint(now, "evict")
}

// EvictedFile is the file-page eviction checkpoint, called the moment
// the page cache records the shadow entry. The swap-slot assertion is
// the inverse of Evicted's: file pages are backed by their file, so an
// evicted file page must NOT hold a swap slot.
func (a *Auditor) EvictedFile(v *sim.Env, vpn pagetable.VPN) {
	if a.disabled() {
		return
	}
	now := v.Now()
	if a.fileEvicted[vpn] {
		a.violate(now, "evict-file", fmt.Sprintf("file vpn %d evicted twice without an intervening fault-in (shadow overwritten)", vpn))
	}
	a.fileEvicted[vpn] = true
	if !a.fileResident[vpn] {
		a.violate(now, "evict-file", fmt.Sprintf("file vpn %d evicted but the auditor never saw it become resident", vpn))
	}
	delete(a.fileResident, vpn)
	if a.fc != nil && a.fc.ResidentFilePages() != len(a.fileResident) {
		a.violate(now, "evict-file", fmt.Sprintf("after evicting file vpn %d the cache counts %d resident file pages, the auditor ledger %d", vpn, a.fc.ResidentFilePages(), len(a.fileResident)))
	}
	pte := a.table.PTE(vpn)
	if pte.Present() {
		a.violate(now, "evict-file", fmt.Sprintf("file vpn %d still present after eviction", vpn))
	}
	if pte.Swap != pagetable.NilSwap {
		a.violate(now, "evict-file", fmt.Sprintf("file vpn %d evicted holding swap slot %d; file pages write back to their file, never to swap", vpn, pte.Swap))
	}
	a.checkpoint(now, "evict-file")
}

// Reaped tells the auditor that vpn's swap copy and shadow entry were
// discarded by the OOM reaper: the page may legitimately refault later
// without a shadow, so it leaves the evicted set.
func (a *Auditor) Reaped(vpn pagetable.VPN) { delete(a.evicted, vpn) }

// AgingPass is the aging checkpoint, called after each background aging
// run.
func (a *Auditor) AgingPass(v *sim.Env) {
	if a.disabled() {
		return
	}
	a.checkGenerations(v.Now(), "aging")
	a.checkpoint(v.Now(), "aging")
}

// checkGenerations asserts the MG-LRU generation window only moves
// forward and stays ordered.
func (a *Auditor) checkGenerations(now sim.Time, kind string) {
	g, ok := a.pol.(generational)
	if !ok {
		return
	}
	minSeq, maxSeq := g.MinSeq(), g.MaxSeq()
	if minSeq > maxSeq {
		a.violate(now, kind, fmt.Sprintf("generation window inverted: min %d > max %d", minSeq, maxSeq))
	}
	if a.genSeen {
		if minSeq < a.lastMin {
			a.violate(now, kind, fmt.Sprintf("min generation moved backwards: %d -> %d", a.lastMin, minSeq))
		}
		if maxSeq < a.lastMax {
			a.violate(now, kind, fmt.Sprintf("max generation moved backwards: %d -> %d", a.lastMax, maxSeq))
		}
	}
	a.genSeen, a.lastMin, a.lastMax = true, minSeq, maxSeq
}

// checkpoint counts events and runs the periodic full-state scan.
func (a *Auditor) checkpoint(now sim.Time, kind string) {
	a.checkpoints++
	if a.Every > 0 && a.checkpoints%uint64(a.Every) == 0 {
		a.Scan(now)
	}
}

// Scan performs one full-state sweep: frame conservation and ownership,
// list membership versus residency, shadow-set consistency, and all
// registered extra invariants. It is O(frames + pages).
func (a *Auditor) Scan(now sim.Time) {
	if a.disabled() {
		return
	}
	// Free-list view: free frames must be fully reset.
	for i := range a.freeSet {
		a.freeSet[i] = false
	}
	a.memory.EachFree(func(f mem.FrameID) {
		if a.freeSet[f] {
			a.violate(now, "scan", fmt.Sprintf("frame %d appears twice on the free list (double free)", f))
		}
		a.freeSet[f] = true
		fr := a.memory.Frame(f)
		if fr.VPN != -1 {
			a.violate(now, "scan", fmt.Sprintf("free frame %d still claims vpn %d", f, fr.VPN))
		}
		if fr.ListID != mem.ListNone {
			a.violate(now, "scan", fmt.Sprintf("free frame %d still on policy list %d", f, fr.ListID))
		}
	})

	// Table walk: each present PTE owns exactly one frame, which points
	// back at it and is not free.
	for i := range a.frameOwn {
		a.frameOwn[i] = -1
	}
	present, presentFile := 0, 0
	pages := a.table.Pages()
	for i := 0; i < pages; i++ {
		vpn := pagetable.VPN(i)
		pte := a.table.PTE(vpn)
		if !pte.Present() {
			continue
		}
		present++
		if pte.File() {
			presentFile++
		}
		f := pte.Frame
		if f < 0 || int(f) >= a.memory.Size() {
			a.violate(now, "scan", fmt.Sprintf("vpn %d maps out-of-range frame %d", vpn, f))
			continue
		}
		if a.freeSet[f] {
			a.violate(now, "scan", fmt.Sprintf("vpn %d maps frame %d which is on the free list (use after free)", vpn, f))
		}
		if prev := a.frameOwn[f]; prev >= 0 {
			a.violate(now, "scan", fmt.Sprintf("frame %d owned by two VPNs: %d and %d", f, prev, vpn))
		}
		a.frameOwn[f] = int64(vpn)
		if fr := a.memory.Frame(f); fr.VPN != int64(vpn) {
			a.violate(now, "scan", fmt.Sprintf("vpn %d maps frame %d whose back-reference says vpn %d", vpn, f, fr.VPN))
		}
	}
	if present != a.table.PresentPages() {
		a.violate(now, "scan", fmt.Sprintf("present-page counter drift: counted %d, table says %d", present, a.table.PresentPages()))
	}

	// Frame sweep: conservation and list membership. Frames are free,
	// owned by a present PTE, or in flight (allocated mid-fault, or
	// isolated mid-eviction); anything else is a leak or a stale link.
	inflight := 0
	size := a.memory.Size()
	for i := 0; i < size; i++ {
		f := mem.FrameID(i)
		if a.freeSet[f] {
			continue
		}
		fr := a.memory.Frame(f)
		claimed := a.frameOwn[f] >= 0
		if !claimed {
			inflight++
			if fr.ListID != mem.ListNone {
				a.violate(now, "scan", fmt.Sprintf("frame %d (vpn %d) on policy list %d but not resident in the page table", f, fr.VPN, fr.ListID))
			}
		} else if fr.VPN != a.frameOwn[f] {
			a.violate(now, "scan", fmt.Sprintf("frame %d claims vpn %d but is mapped by vpn %d", f, fr.VPN, a.frameOwn[f]))
		}
	}
	if got := present + inflight + a.memory.FreePages(); got != size {
		a.violate(now, "scan", fmt.Sprintf("frame conservation broken: present %d + in-flight %d + free %d != total %d",
			present, inflight, a.memory.FreePages(), size))
	}

	// Shadow set: every page the auditor believes is evicted must be
	// non-resident with a swap slot assigned.
	for vpn := range a.evicted {
		pte := a.table.PTE(vpn)
		if pte.Present() {
			a.violate(now, "scan", fmt.Sprintf("vpn %d resident but auditor saw no fault-in since its eviction (missed checkpoint or lost shadow)", vpn))
		} else if pte.Swap == pagetable.NilSwap {
			a.violate(now, "scan", fmt.Sprintf("evicted vpn %d has no swap slot", vpn))
		}
	}

	// File shadow set: evicted file pages must be non-resident and
	// slot-free, and the page cache's shadow store must agree with the
	// ledger entry for entry.
	//
	// The cache-wide counts below catch the converse (shadows or
	// residents the ledger never saw).
	for vpn := range a.fileEvicted {
		pte := a.table.PTE(vpn)
		if pte.Present() {
			a.violate(now, "scan", fmt.Sprintf("file vpn %d resident but auditor saw no file fault-in since its eviction", vpn))
		} else if pte.Swap != pagetable.NilSwap {
			a.violate(now, "scan", fmt.Sprintf("evicted file vpn %d holds swap slot %d", vpn, pte.Swap))
		}
		if a.fc != nil && !a.fc.HasShadow(vpn) {
			a.violate(now, "scan", fmt.Sprintf("evicted file vpn %d has no shadow entry in the page cache", vpn))
		}
	}
	if a.fc != nil {
		if got := a.fc.ShadowCount(); got != len(a.fileEvicted) {
			a.violate(now, "scan", fmt.Sprintf("page-cache shadow count %d != auditor file-eviction ledger %d", got, len(a.fileEvicted)))
		}
		// File-page conservation: the cache's resident count must match
		// a full PTE sweep.
		if got := a.fc.ResidentFilePages(); got != presentFile {
			// Name the pages the cache never saw become resident — the
			// usual culprit is an install path that missed NoteResident.
			var phantom []pagetable.VPN
			for i := 0; i < pages; i++ {
				vpn := pagetable.VPN(i)
				if p := a.table.PTE(vpn); p.Present() && p.File() && !a.fileResident[vpn] {
					phantom = append(phantom, vpn)
				}
			}
			a.violate(now, "scan", fmt.Sprintf("page cache claims %d resident file pages, table sweep found %d (never-noted vpns: %v)", got, presentFile, phantom))
		}
	}

	a.checkGenerations(now, "scan")
	for _, fn := range a.extra {
		if err := fn(); err != nil {
			a.violate(now, "scan", err.Error())
		}
	}
}

// Final runs a last full-state scan (call when the trial ends).
func (a *Auditor) Final(now sim.Time) {
	a.Scan(now)
}

// Checkpoints reports how many checkpoint events the auditor has seen.
func (a *Auditor) Checkpoints() uint64 { return a.checkpoints }

// Violations returns everything detected so far.
func (a *Auditor) Violations() []Violation { return a.violations }

// Err returns nil when no invariant was breached, else an error
// summarizing the violations.
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s):", len(a.violations))
	for i, v := range a.violations {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(a.violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return fmt.Errorf("%s", b.String())
}
