package check

import (
	"strings"
	"testing"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/oracle"
	"mglrusim/internal/policy/policytest"
	"mglrusim/internal/sim"
)

// newHarness builds a tiny kernel double with an attached exact-LRU
// policy and an auditor over the pair.
func newHarness(t *testing.T, frames int) (*policytest.Kernel, *oracle.ExactLRU, *Auditor) {
	t.Helper()
	k := policytest.New(frames, 1, 1)
	pol := oracle.NewExactLRU()
	pol.Attach(k)
	aud := NewAuditor(sim.NewEngine(1), k.M, k.T, pol)
	return k, pol, aud
}

// violated reports whether any recorded violation message contains want.
func violated(aud *Auditor, want string) bool {
	for _, v := range aud.Violations() {
		if strings.Contains(v.Msg, want) {
			return true
		}
	}
	return false
}

// TestAuditorCleanState is the baseline: a consistent resident set passes
// a full scan with no violations.
func TestAuditorCleanState(t *testing.T) {
	k, pol, aud := newHarness(t, 8)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 8; vpn++ {
			k.FaultIn(v, pol, vpn, false, false)
		}
	})
	aud.Scan(0)
	if err := aud.Err(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
}

// TestAuditorCatchesDoubleOwner injects the classic double-mapping bug:
// two PTEs pointing at one frame.
func TestAuditorCatchesDoubleOwner(t *testing.T) {
	k, pol, aud := newHarness(t, 8)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, pol, 0, false, false)
	})
	// Corrupt: alias vpn 1 onto vpn 0's frame without allocating.
	k.T.Insert(1, k.T.PTE(0).Frame, false)
	aud.Scan(0)
	if !violated(aud, "owned by two VPNs") {
		t.Fatalf("double-mapped frame not detected; violations: %v", aud.Violations())
	}
}

// TestAuditorCatchesUseAfterFree injects a freed-but-still-mapped frame:
// the frame goes back to the allocator while vpn 0's PTE still points at
// it.
func TestAuditorCatchesUseAfterFree(t *testing.T) {
	k, pol, aud := newHarness(t, 8)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, pol, 0, false, false)
	})
	f := k.T.PTE(0).Frame
	fr := k.M.Frame(f)
	fr.ListID = mem.ListNone // fake a legal-looking isolation
	fr.VPN = -1
	k.M.Free(f)
	aud.Scan(0)
	if !violated(aud, "use after free") {
		t.Fatalf("freed-but-mapped frame not detected; violations: %v", aud.Violations())
	}
}

// TestAuditorCatchesStaleListLink injects a lost-isolation bug: the PTE
// is evicted but the frame stays allocated and linked on a policy list.
func TestAuditorCatchesStaleListLink(t *testing.T) {
	k, pol, aud := newHarness(t, 8)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, pol, 0, false, false)
	})
	k.T.Evict(0, 7)
	aud.Scan(0)
	if !violated(aud, "on policy list") {
		t.Fatalf("stale list link not detected; violations: %v", aud.Violations())
	}
	_ = pol
}

// TestAuditorCatchesLostShadow exercises the eviction/fault-in shadow
// protocol: a page that refaults without the shadow the auditor saw
// recorded is a lost shadow entry.
func TestAuditorCatchesLostShadow(t *testing.T) {
	k, pol, aud := newHarness(t, 8)
	k.OnEvict = func(v *sim.Env, vpn pagetable.VPN, sh policy.Shadow) {
		aud.Evicted(v, vpn)
	}
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, pol, 0, false, false)
		pol.Reclaim(v, 1) // evicts vpn 0, records its shadow
		// Inject the bug: the shadow entry vanishes.
		delete(k.Shadows, 0)
		k.FaultIn(v, pol, 0, false, false)
		aud.FaultIn(v, 0, false)
	})
	if !violated(aud, "lost shadow") {
		t.Fatalf("lost shadow not detected; violations: %v", aud.Violations())
	}
}

// TestAuditorCatchesDoubleEvict: two Evicted checkpoints without an
// intervening fault-in means a shadow was silently overwritten.
func TestAuditorCatchesDoubleEvict(t *testing.T) {
	k, pol, aud := newHarness(t, 8)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, pol, 0, false, false)
		pol.Reclaim(v, 1)
		aud.Evicted(v, 0)
		aud.Evicted(v, 0) // injected duplicate
	})
	if !violated(aud, "evicted twice") {
		t.Fatalf("double evict not detected; violations: %v", aud.Violations())
	}
}

// TestAuditorCleanProtocol is the positive control for the shadow
// protocol: full evict/refault cycles through the checkpoints raise
// nothing, and the periodic scan engages.
func TestAuditorCleanProtocol(t *testing.T) {
	k, pol, aud := newHarness(t, 4)
	aud.Every = 8
	k.OnEvict = func(v *sim.Env, vpn pagetable.VPN, sh policy.Shadow) {
		aud.Evicted(v, vpn)
	}
	policytest.Run(func(v *sim.Env) {
		for round := 0; round < 3; round++ {
			for vpn := pagetable.VPN(0); vpn < 8; vpn++ {
				if _, ok := k.T.Walk(vpn, false); ok {
					continue
				}
				if k.M.FreePages() == 0 {
					pol.Reclaim(v, 1)
				}
				_, hadShadow := k.Shadows[vpn]
				k.FaultIn(v, pol, vpn, false, false)
				aud.FaultIn(v, vpn, hadShadow)
			}
		}
	})
	aud.Final(0)
	if err := aud.Err(); err != nil {
		t.Fatalf("clean protocol flagged: %v", err)
	}
	if aud.Checkpoints() == 0 {
		t.Fatal("auditor saw no checkpoints")
	}
}

// unlockedPolicy mutates its list without ever taking the LRU lock — the
// bug class WatchLists exists to catch.
type unlockedPolicy struct {
	oracle.ExactLRU
	list *mem.List
	lock policy.LRULock
}

func (u *unlockedPolicy) Attach(k policy.Kernel) {
	u.list = mem.NewList(k.Mem(), 0)
}

func (u *unlockedPolicy) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	u.list.PushHead(f) // no lock held: violation
}

func (u *unlockedPolicy) DebugLock() *policy.LRULock { return &u.lock }

// TestAuditorCatchesUnlockedMutation: list mutation without the lruvec
// lock held by the acting proc is flagged.
func TestAuditorCatchesUnlockedMutation(t *testing.T) {
	k := policytest.New(8, 1, 1)
	pol := &unlockedPolicy{}
	pol.Attach(k)

	eng := sim.NewEngine(1)
	aud := NewAuditor(eng, k.M, k.T, pol)
	aud.WatchLists()

	eng.Spawn("mutator", false, func(v *sim.Env) {
		k.FaultIn(v, pol, 0, false, false)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !violated(aud, "without holding the LRU lock") {
		t.Fatalf("unlocked list mutation not detected; violations: %v", aud.Violations())
	}
}

// TestAuditorLockedMutationClean is the positive control: the same
// mutation under the lock passes.
func TestAuditorLockedMutationClean(t *testing.T) {
	k := policytest.New(8, 1, 1)
	pol := oracle.NewExactLRU()
	pol.Attach(k)

	eng := sim.NewEngine(1)
	aud := NewAuditor(eng, k.M, k.T, pol)
	aud.WatchLists()

	eng.Spawn("mutator", false, func(v *sim.Env) {
		k.FaultIn(v, pol, 0, false, false)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("locked mutation flagged: %v", err)
	}
}

// fakeGen simulates a policy whose generation window moves backwards.
type fakeGen struct {
	oracle.ExactLRU
	min, max uint64
}

func (g *fakeGen) MinSeq() uint64 { return g.min }
func (g *fakeGen) MaxSeq() uint64 { return g.max }

// TestAuditorCatchesGenerationRegression: max_seq moving backwards
// between aging passes is flagged.
func TestAuditorCatchesGenerationRegression(t *testing.T) {
	k := policytest.New(8, 1, 1)
	g := &fakeGen{min: 2, max: 5}
	g.Attach(k)
	eng := sim.NewEngine(1)
	aud := NewAuditor(eng, k.M, k.T, g)

	eng.Spawn("aging", false, func(v *sim.Env) {
		aud.AgingPass(v)
		g.max = 4 // injected regression
		aud.AgingPass(v)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !violated(aud, "moved backwards") {
		t.Fatalf("generation regression not detected; violations: %v", aud.Violations())
	}
}

// TestAuditorExtraInvariant: registered invariants run on full scans and
// their errors are recorded.
func TestAuditorExtraInvariant(t *testing.T) {
	_, _, aud := newHarness(t, 4)
	called := 0
	aud.AddInvariant(func() error {
		called++
		return nil
	})
	aud.Scan(0)
	if called != 1 {
		t.Fatalf("extra invariant ran %d times, want 1", called)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("nil-returning invariant flagged: %v", err)
	}
}

// TestAuditorViolationCap: recording stops at MaxViolations.
func TestAuditorViolationCap(t *testing.T) {
	_, _, aud := newHarness(t, 8)
	aud.MaxViolations = 3
	policytest.Run(func(v *sim.Env) {
		for i := 0; i < 10; i++ {
			aud.Evicted(v, 0) // vpn 0 was never faulted in: every call violates
		}
	})
	if got := len(aud.Violations()); got != 3 {
		t.Fatalf("violations = %d, want capped at 3", got)
	}
}
