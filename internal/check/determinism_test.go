package check_test

import (
	"reflect"
	"testing"

	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
)

// detSystem is the shared configuration for the determinism suite: enough
// memory pressure that reclaim, readahead, and aging all engage.
func detSystem() core.SystemConfig {
	return experiments.SystemAt(0.7, core.SwapSSD)
}

// TestTrialDeterminism: the same (workload seed, system seed) pair must
// produce byte-identical metrics on repeated runs — the property every
// golden figure and every differential comparison in this package rests
// on.
func TestTrialDeterminism(t *testing.T) {
	for _, pname := range []string{"clock", "mglru", "fifo"} {
		pname := pname
		t.Run(pname, func(t *testing.T) {
			t.Parallel()
			p := experiments.PolicyByName(pname)
			spec := experiments.Workloads(0.1)[0]
			var ref core.Metrics
			for i := 0; i < 3; i++ {
				m, err := core.RunTrial(spec.Make(), p.Make, detSystem(), 0xABCD, 99)
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				if i == 0 {
					ref = m
					continue
				}
				if !reflect.DeepEqual(ref, m) {
					t.Fatalf("run %d diverged from run 0:\nrun0: %+v\nrun%d: %+v", i, ref, i, m)
				}
			}
		})
	}
}

// TestRunnerParallelismDeterminism: harness parallelism is a host-side
// concern only — trial i's metrics must be identical whether trials run
// one at a time or all at once.
func TestRunnerParallelismDeterminism(t *testing.T) {
	w := experiments.Workloads(0.1)[0]
	p := experiments.PolicyByName("mglru")
	sys := detSystem()

	series := func(parallelism int) []core.Metrics {
		r := experiments.NewRunner(experiments.Options{
			Trials: 4, Scale: 0.1, Seed: 0x5EED, Parallelism: parallelism,
		})
		s, err := r.Run(w, p, sys)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return s.Trials
	}

	serial := series(1)
	for _, par := range []int{2, 4} {
		got := series(par)
		for i := range serial {
			if !reflect.DeepEqual(serial[i], got[i]) {
				t.Fatalf("trial %d differs between parallelism 1 and %d:\nserial: %+v\npar:    %+v",
					i, par, serial[i], got[i])
			}
		}
	}
}

// TestAuditDoesNotPerturb: the auditor never charges simulated CPU, so an
// audited trial must produce metrics identical to the unaudited run of
// the same seeds.
func TestAuditDoesNotPerturb(t *testing.T) {
	p := experiments.PolicyByName("mglru")
	spec := experiments.Workloads(0.1)[0]

	plain, err := core.RunTrial(spec.Make(), p.Make, detSystem(), 0xABCD, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := detSystem()
	sys.VMM.Audit = true
	audited, err := core.RunTrial(spec.Make(), p.Make, sys, 0xABCD, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, audited) {
		t.Fatalf("auditing changed metrics:\nplain:   %+v\naudited: %+v", plain, audited)
	}
}
