package check_test

import (
	"testing"

	"mglrusim/internal/check"
	"mglrusim/internal/experiments"
	"mglrusim/internal/policy"
)

// diffWorkloads are the traces the differential harness verifies every
// policy against: one per workload family (warehouse scan/join, graph
// traversal, zipfian key-value).
var diffWorkloads = []string{"tpch", "pagerank", "ycsb-a"}

// diffPolicies is every registered real policy.
var diffPolicies = []string{"clock", "mglru", "gen14", "scan-all", "scan-none", "scan-rand", "fifo", "random"}

// TestDifferentialAllPolicies replays every registered policy plus the
// oracles over recorded traces of three workloads, with full invariant
// auditing, asserting the ordering bounds (OPT is the floor, exact-LRU
// matches Mattson bit-for-bit).
func TestDifferentialAllPolicies(t *testing.T) {
	const (
		maxOps = 12000
		scale  = 0.05
	)
	policies := make(map[string]func() policy.Policy, len(diffPolicies))
	for _, name := range diffPolicies {
		policies[name] = experiments.PolicyByName(name).Make
	}

	for _, spec := range experiments.Workloads(scale) {
		found := false
		for _, want := range diffWorkloads {
			if spec.Name == want {
				found = true
			}
		}
		if !found {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			w := spec.Make()
			tr := check.RecordTrace(w, 0xABCD, 42, maxOps)
			if len(tr) < 1000 {
				t.Fatalf("trace too short: %d accesses", len(tr))
			}
			// Half the touched working set: enough pressure that every
			// policy must evict, small enough that OPT still hits.
			unique := map[int64]bool{}
			for _, vpn := range tr {
				unique[int64(vpn)] = true
			}
			capacity := len(unique) / 2
			if capacity < 32 {
				capacity = 32
			}
			rep, err := check.RunDifferential(tr, check.TableFor(w), capacity, policies, true)
			if err != nil {
				t.Fatalf("differential failed:\n%s\nreport: %s", err, rep)
			}
			t.Logf("%s", rep)
			if rep.OPTFaults <= 0 || rep.OPTFaults >= rep.Accesses {
				t.Fatalf("implausible OPT fault count %d of %d accesses", rep.OPTFaults, rep.Accesses)
			}
			if rep.Faults["exact-lru"] != rep.MattsonLRUMisses {
				t.Fatalf("exact-lru %d != mattson %d", rep.Faults["exact-lru"], rep.MattsonLRUMisses)
			}
			for name, f := range rep.Faults {
				if f < rep.OPTFaults {
					t.Errorf("%s beat OPT: %d < %d", name, f, rep.OPTFaults)
				}
			}
		})
	}
}

// TestDifferentialFileServeCell replays one ext2 cell — the serve
// workload's mixed file+anon trace at the starved cache ratio — under the
// ext2 policy arm (Clock, MG-LRU, PID-ablated MG-LRU) plus the oracles,
// with file pages faulting in file-backed so MG-LRU's file shield and
// refault activation run under the Belady bound: however aggressively the
// gain controller steers eviction pressure between the types, it must
// never under-count faults past clairvoyance.
func TestDifferentialFileServeCell(t *testing.T) {
	const maxOps = 12000
	spec := experiments.WorkloadByName("serve", 0.05)
	w := spec.Make()
	tr := check.RecordTrace(w, 0xABCD, 42, maxOps)
	if len(tr) < 1000 {
		t.Fatalf("trace too short: %d accesses", len(tr))
	}
	isFile := check.FileVPNs(w)
	if isFile == nil {
		t.Fatal("serve maps no file segment — the ext2 cell premise is gone")
	}
	fileAcc := 0
	for _, vpn := range tr {
		if isFile(vpn) {
			fileAcc++
		}
	}
	if fileAcc == 0 || fileAcc == len(tr) {
		t.Fatalf("trace not mixed: %d of %d accesses file-backed", fileAcc, len(tr))
	}

	// The ext2 ladder's starved rung: capacity at 35% of the footprint.
	capacity := int(0.35 * float64(w.FootprintPages()))
	if capacity < 32 {
		capacity = 32
	}
	policies := map[string]func() policy.Policy{}
	for _, name := range []string{"clock", "mglru", "mglru-nopid"} {
		policies[name] = experiments.PolicyByName(name).Make
	}
	rep, err := check.RunDifferentialMixed(tr, check.TableFor(w), capacity, policies, true, isFile)
	if err != nil {
		t.Fatalf("differential failed:\n%s\nreport: %s", err, rep)
	}
	t.Logf("%d/%d file accesses\n%s", fileAcc, len(tr), rep)
	if rep.OPTFaults <= 0 || rep.OPTFaults >= rep.Accesses {
		t.Fatalf("implausible OPT fault count %d of %d accesses", rep.OPTFaults, rep.Accesses)
	}
	for name, f := range rep.Faults {
		if f < rep.OPTFaults {
			t.Errorf("%s beat OPT: %d < %d", name, f, rep.OPTFaults)
		}
	}
}

// TestDifferentialDetectsBrokenPolicy is the harness's own negative
// control: a policy that under-reports misses by silently double-mapping
// would beat OPT; simulate the symptom with a policy wrapper whose fault
// count the harness would see as impossibly low. Here we verify the
// simpler contract directly: a capacity of the full working set means no
// policy faults more than cold misses, and the bounds still hold.
func TestDifferentialFullCapacity(t *testing.T) {
	spec := experiments.Workloads(0.05)[0]
	w := spec.Make()
	tr := check.RecordTrace(w, 0xABCD, 42, 4000)
	unique := map[int64]bool{}
	for _, vpn := range tr {
		unique[int64(vpn)] = true
	}
	capacity := len(unique) + 16 // nothing ever needs evicting
	rep, err := check.RunDifferential(tr, check.TableFor(w), capacity,
		map[string]func() policy.Policy{"clock": experiments.PolicyByName("clock").Make}, true)
	if err != nil {
		t.Fatalf("differential failed: %v", err)
	}
	cold := len(unique)
	for name, f := range rep.Faults {
		if f != cold {
			t.Errorf("%s: %d faults at full capacity, want exactly the %d cold misses", name, f, cold)
		}
	}
}
