package check_test

import (
	"reflect"
	"testing"

	"mglrusim/internal/check"
	"mglrusim/internal/experiments"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
)

// TestDifferentialBothLayouts replays the full differential harness —
// every scan-based policy plus the exact-LRU and Belady-OPT oracles,
// with invariant auditing on — over one recorded trace per workload
// family, once with the table pinned to the legacy AoS layout and once
// pinned to the packed SoA bit planes. The storage layout is pure
// representation, so the two reports must agree fault-for-fault; the
// oracle bounds (OPT floor, exact-LRU == Mattson) must hold under both.
func TestDifferentialBothLayouts(t *testing.T) {
	const (
		maxOps = 8000
		scale  = 0.05
	)
	layouts := []pagetable.Layout{pagetable.LayoutLegacy, pagetable.LayoutPacked}
	policies := map[string]func() policy.Policy{}
	for _, name := range []string{"clock", "mglru", "gen14", "scan-all", "fifo"} {
		policies[name] = experiments.PolicyByName(name).Make
	}

	for _, name := range []string{"tpch", "ycsb-a"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := experiments.WorkloadByName(name, scale)
			w := spec.Make()
			tr := check.RecordTrace(w, 0xABCD, 42, maxOps)
			if len(tr) < 1000 {
				t.Fatalf("trace too short: %d accesses", len(tr))
			}
			unique := map[int64]bool{}
			for _, vpn := range tr {
				unique[int64(vpn)] = true
			}
			capacity := len(unique) / 2
			if capacity < 32 {
				capacity = 32
			}

			reports := make(map[pagetable.Layout]*check.DiffReport, len(layouts))
			for _, layout := range layouts {
				rep, err := check.RunDifferential(tr, check.TableForLayout(w, layout), capacity, policies, true)
				if err != nil {
					t.Fatalf("%s layout differential failed:\n%v\nreport: %s", layout, err, rep)
				}
				if rep.Faults["exact-lru"] != rep.MattsonLRUMisses {
					t.Fatalf("%s layout: exact-lru %d != mattson %d", layout, rep.Faults["exact-lru"], rep.MattsonLRUMisses)
				}
				reports[layout] = rep
			}

			legacy, packed := reports[pagetable.LayoutLegacy], reports[pagetable.LayoutPacked]
			if !reflect.DeepEqual(legacy.Faults, packed.Faults) {
				t.Fatalf("fault counts diverge between layouts:\nlegacy: %s\npacked: %s", legacy, packed)
			}
			t.Logf("layouts agree: %s", packed)
		})
	}
}
