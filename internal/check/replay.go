package check

import (
	"fmt"
	"sort"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/oracle"
	"mglrusim/internal/policy/policytest"
	"mglrusim/internal/sim"
	"mglrusim/internal/trace"
	"mglrusim/internal/workload"
)

// RecordTrace materializes a workload's page-access sequence by draining
// its thread streams round-robin (the canonical interleaving), up to
// maxOps accesses. The recorded order is what the differential harness
// replays under every policy, so all policies — oracles included — see
// the identical access sequence.
func RecordTrace(w workload.Workload, planSeed, trialSeed uint64, maxOps int) []pagetable.VPN {
	streams := w.Threads(sim.NewRNG(planSeed), sim.NewRNG(trialSeed))
	out := make([]pagetable.VPN, 0, maxOps)
	var op workload.Op
	live := len(streams)
	for live > 0 && len(out) < maxOps {
		live = 0
		for _, s := range streams {
			if s == nil {
				continue
			}
			if !s.Next(&op) {
				continue
			}
			live++
			if op.Kind == workload.OpAccess {
				out = append(out, op.VPN)
				if len(out) >= maxOps {
					return out
				}
			}
		}
	}
	return out
}

// TableFor builds a fresh page table laid out for w — Replay needs a new
// table per policy run, so callers pass this as a constructor.
func TableFor(w workload.Workload) func() *pagetable.Table {
	return TableForLayout(w, pagetable.LayoutAuto)
}

// TableForLayout is TableFor with an explicit page-table storage layout,
// so differential runs can pin the legacy AoS and packed SoA layouts
// against each other.
func TableForLayout(w workload.Workload, layout pagetable.Layout) func() *pagetable.Table {
	return func() *pagetable.Table {
		t := pagetable.NewWithLayout(w.TableRegions(), w.RegionPTEs(), layout)
		w.Layout(t)
		return t
	}
}

// FileVPNs returns a classifier reporting whether a VPN lies in one of
// w's file-backed segments, for replaying mixed file+anon traces. It
// returns nil — every page anonymous — when w exposes no segment layout
// or maps no file segment, so callers can pass the result straight to
// ReplayMixed either way.
func FileVPNs(w workload.Workload) func(pagetable.VPN) bool {
	seg, ok := w.(workload.Segmented)
	if !ok {
		return nil
	}
	var files []workload.Segment
	for _, s := range seg.Segments() {
		if s.File {
			files = append(files, s)
		}
	}
	if len(files) == 0 {
		return nil
	}
	return func(vpn pagetable.VPN) bool {
		for _, s := range files {
			if s.Contains(vpn) {
				return true
			}
		}
		return false
	}
}

// Replay runs one policy over a recorded trace under strict demand paging
// at a fixed capacity: a hit touches the page (setting its accessed bit),
// a miss reclaims exactly as many pages as needed to free one frame and
// faults the page in. The returned count is the number of faults
// (including cold misses). Policies implementing oracle.AccessObserver are
// additionally shown every access in order, before it is processed.
//
// With audit set, a full invariant Auditor runs against the replay kernel
// and any violation is returned as an error.
func Replay(pol policy.Policy, tr []pagetable.VPN, mkTable func() *pagetable.Table, capacity int, audit bool) (int, error) {
	return ReplayMixed(pol, tr, mkTable, capacity, audit, nil)
}

// ReplayMixed is Replay over a mixed file+anon address space: pages for
// which isFile reports true fault in file-backed, so type-aware policies
// (MG-LRU's file shield) exercise their file paths under the same strict
// demand paging. A nil isFile replays everything anonymous, which is
// exactly Replay.
func ReplayMixed(pol policy.Policy, tr []pagetable.VPN, mkTable func() *pagetable.Table, capacity int, audit bool, isFile func(pagetable.VPN) bool) (int, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("check: replay capacity must be positive, got %d", capacity)
	}
	k := policytest.NewWithTable(capacity, mkTable(), 1)
	pol.Attach(k)
	obs, _ := pol.(oracle.AccessObserver)

	eng := sim.NewEngine(4)
	var aud *Auditor
	if audit {
		aud = NewAuditor(eng, k.M, k.T, pol)
		// Replay tables can span hundreds of thousands of PTEs; thin the
		// O(pages) full scans so the audited replay stays fast.
		aud.Every = 1024
		aud.WatchLists()
	}
	k.OnEvict = func(v *sim.Env, vpn pagetable.VPN, sh policy.Shadow) {
		if aud != nil {
			aud.Evicted(v, vpn)
		}
	}

	faults := 0
	var replayErr error
	eng.Spawn("replay", false, func(v *sim.Env) {
		maxStalls := 10*capacity + 1000
		for pos, vpn := range tr {
			if obs != nil {
				obs.Observe(v, pos, vpn)
			}
			if _, ok := k.T.Walk(vpn, false); ok {
				continue // hit: accessed bit now set
			}
			faults++
			stalls := 0
			for k.M.FreePages() == 0 {
				if pol.Reclaim(v, 1) == 0 {
					stalls++
					if stalls > maxStalls {
						replayErr = fmt.Errorf("check: policy %q made no reclaim progress after %d attempts at access %d (vpn %d)",
							pol.Name(), stalls, pos, vpn)
						return
					}
				}
			}
			hadShadow := false
			if _, ok := k.Shadows[vpn]; ok {
				hadShadow = true
			}
			k.FaultIn(v, pol, vpn, false, isFile != nil && isFile(vpn))
			if aud != nil {
				aud.FaultIn(v, vpn, hadShadow)
			}
		}
	})
	if err := eng.Run(); err != nil {
		return faults, fmt.Errorf("check: replay engine: %w", err)
	}
	if replayErr != nil {
		return faults, replayErr
	}
	if aud != nil {
		aud.Final(eng.Now())
		if err := aud.Err(); err != nil {
			return faults, fmt.Errorf("check: replay of %q: %w", pol.Name(), err)
		}
	}
	return faults, nil
}

// DiffReport is the outcome of one differential run: every policy's fault
// count over the same trace at the same capacity, bracketed by the
// oracles.
type DiffReport struct {
	// Capacity is the frame count replayed at.
	Capacity int
	// Accesses is the trace length.
	Accesses int
	// MattsonLRUMisses is the stack-distance prediction for exact LRU.
	MattsonLRUMisses int
	// OPTFaults is Belady-OPT's fault count — the floor for every policy.
	OPTFaults int
	// Faults maps policy name to fault count (oracles included).
	Faults map[string]int
}

// String renders the report as a small table, worst policy first.
func (r *DiffReport) String() string {
	names := make([]string, 0, len(r.Faults))
	for n := range r.Faults {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if r.Faults[names[i]] != r.Faults[names[j]] {
			return r.Faults[names[i]] > r.Faults[names[j]]
		}
		return names[i] < names[j]
	})
	s := fmt.Sprintf("capacity %d, %d accesses, mattson-lru %d:", r.Capacity, r.Accesses, r.MattsonLRUMisses)
	for _, n := range names {
		s += fmt.Sprintf("\n  %-10s %d", n, r.Faults[n])
	}
	return s
}

// RunDifferential replays every supplied policy constructor — plus the
// exact-LRU and Belady-OPT oracles — over one recorded trace at a fixed
// capacity, and asserts the two ordering bounds that make the harness a
// correctness oracle:
//
//   - no policy incurs fewer faults than OPT (a policy beating
//     clairvoyance has broken bookkeeping, e.g. it double-maps frames or
//     under-counts faults), and
//   - exact-LRU's fault count equals the Mattson stack-distance
//     prediction from internal/trace bit-for-bit (tying the replay
//     machinery to an independently-computed analytical result).
//
// Policies are replayed with full invariant auditing when audit is set.
func RunDifferential(tr []pagetable.VPN, mkTable func() *pagetable.Table, capacity int, policies map[string]func() policy.Policy, audit bool) (*DiffReport, error) {
	return RunDifferentialMixed(tr, mkTable, capacity, policies, audit, nil)
}

// RunDifferentialMixed is RunDifferential over a mixed file+anon address
// space (see ReplayMixed). The ordering bounds hold regardless of page
// type — Belady clairvoyance is type-blind, so a type-aware policy that
// beats OPT has still broken its bookkeeping.
func RunDifferentialMixed(tr []pagetable.VPN, mkTable func() *pagetable.Table, capacity int, policies map[string]func() policy.Policy, audit bool, isFile func(pagetable.VPN) bool) (*DiffReport, error) {
	an := trace.NewAnalyzer(len(tr))
	for _, vpn := range tr {
		an.Add(vpn)
	}
	rep := &DiffReport{
		Capacity:         capacity,
		Accesses:         len(tr),
		MattsonLRUMisses: an.Misses(capacity),
		Faults:           make(map[string]int, len(policies)+2),
	}

	all := make(map[string]func() policy.Policy, len(policies)+2)
	for name, mk := range policies {
		all[name] = mk
	}
	all["exact-lru"] = func() policy.Policy { return oracle.NewExactLRU() }
	all["opt"] = func() policy.Policy { return oracle.NewOPT(tr) }

	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		faults, err := ReplayMixed(all[name](), tr, mkTable, capacity, audit, isFile)
		if err != nil {
			return rep, err
		}
		rep.Faults[name] = faults
	}
	rep.OPTFaults = rep.Faults["opt"]

	if lru := rep.Faults["exact-lru"]; lru != rep.MattsonLRUMisses {
		return rep, fmt.Errorf("check: exact-LRU replay disagrees with Mattson stack-distance analysis: replay %d faults, mattson %d (capacity %d, %d accesses)",
			lru, rep.MattsonLRUMisses, capacity, len(tr))
	}
	for _, name := range names {
		if f := rep.Faults[name]; f < rep.OPTFaults {
			return rep, fmt.Errorf("check: policy %q beat Belady-OPT (%d < %d faults) — bookkeeping must be wrong",
				name, f, rep.OPTFaults)
		}
	}
	return rep, nil
}
