// Package checkpoint is a small content-addressed blob store the
// experiment harness uses to persist completed series across crashes and
// SIGINT/SIGKILL. Each entry is one file named by the SHA-256 of its
// logical key, written atomically (tmp + rename), so a store is never
// observed half-written: a killed run leaves either the complete previous
// state or the complete new state, and resume simply skips entries that
// are present and valid.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Store persists keyed blobs under one directory.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a logical key — arbitrary length, arbitrary bytes — to a
// fixed-size filesystem-safe name.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the blob stored for key, or ok=false when absent or
// unreadable (an unreadable entry is indistinguishable from a missing one
// on purpose: resume re-executes and overwrites it).
func (s *Store) Get(key string) (data []byte, ok bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}

// Put stores data for key atomically: the blob is written to a temp file
// in the same directory and renamed into place, so a crash mid-Put never
// corrupts an existing entry.
func (s *Store) Put(key string, data []byte) error {
	dst := s.path(key)
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("checkpoint: put: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: put: %w", err)
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: put: %w", err)
	}
	return nil
}

// Len counts stored entries (completed series), for resume reporting.
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}
