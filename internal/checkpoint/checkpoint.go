// Package checkpoint is a small content-addressed blob store the
// experiment harness uses to persist completed series across crashes and
// SIGINT/SIGKILL. Each entry is one file named by the SHA-256 of its
// logical key, written atomically (tmp + rename) and durably (the temp
// file is fsynced before the rename and the parent directory after it),
// so a store is never observed half-written even across power loss: a
// killed run leaves either the complete previous state or the complete
// new state, and resume simply skips entries that are present and valid.
//
// The store doubles as the coordination substrate for the multi-process
// shard executor (internal/shard): an entry's existence is the "cell
// done" marker every worker agrees on, KeyHash is the shared naming
// scheme sidecar files (leases, poison records) derive from, and
// PutVerify turns at-least-once execution into exactly-once results by
// verifying that duplicate completions carry byte-identical payloads.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// Store persists keyed blobs under one directory.
type Store struct {
	dir string
	io  atomic.Pointer[ioPolicy]
}

// SetIO installs a transient-failure retry policy and an optional fault
// hook over the store's filesystem operations — the same treatment the
// lease layer gets, so an NFS blip during publication retries instead of
// failing a completed cell. Safe to call while the store is shared
// across goroutines (stores are long-lived and passed between servers
// and executors).
func (s *Store) SetIO(retry RetryPolicy, hook FaultHook) {
	s.io.Store(&ioPolicy{retry: retry, hook: hook})
}

func (s *Store) iop() ioPolicy {
	if p := s.io.Load(); p != nil {
		return *p
	}
	return ioPolicy{}
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// KeyHash maps a logical key — arbitrary length, arbitrary bytes — to the
// fixed-size filesystem-safe name the store files it under. It is
// exported because every sidecar that must agree on a cell's identity
// across processes (shard leases, poison records) derives its filename
// from the same hash.
func KeyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, KeyHash(key)+".json")
}

// EntryPath reports the file a key's blob is (or would be) stored at.
func (s *Store) EntryPath(key string) string { return s.path(key) }

// Get returns the blob stored for key, or ok=false when absent or
// unreadable (an unreadable entry is indistinguishable from a missing one
// on purpose: resume re-executes and overwrites it).
func (s *Store) Get(key string) (data []byte, ok bool) {
	path := s.path(key)
	err := s.iop().do("store.read", path, func() error {
		var rerr error
		data, rerr = os.ReadFile(path)
		return rerr
	})
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}

// ValidHash reports whether h has the shape of a KeyHash output (64 hex
// characters) — the gate API layers apply before touching the filesystem
// with a caller-supplied entry name.
func ValidHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// GetHash returns the blob stored under an entry hash — the fixed-size
// name KeyHash files entries under, and the identity the serving layer
// exposes in result URLs. Hashes that do not look like KeyHash output are
// rejected outright (never turned into paths).
func (s *Store) GetHash(hash string) (data []byte, ok bool) {
	if !ValidHash(hash) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.dir, hash+".json"))
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}

// Hashes lists the entry hashes currently stored, sorted — the read-side
// enumeration for result listings. Sidecar files (.conflict, temp files)
// are excluded.
func (s *Store) Hashes() []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		h := strings.TrimSuffix(name, ".json")
		if h != name && ValidHash(h) {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// Has reports whether a non-empty entry exists for key without reading
// it — the shard executor's cheap "cell done" probe.
func (s *Store) Has(key string) bool {
	fi, err := os.Stat(s.path(key))
	return err == nil && fi.Size() > 0
}

// Put stores data for key atomically and durably.
func (s *Store) Put(key string, data []byte) error {
	path := s.path(key)
	err := s.iop().do("store.put", path, func() error { return WriteFileDurable(path, data) })
	if err != nil {
		return fmt.Errorf("checkpoint: put: %w", err)
	}
	return nil
}

// ConflictError reports a PutVerify that found an existing entry with
// different bytes: two executions of the same content-addressed key
// disagreed, which for byte-deterministic trials means a determinism
// violation. Both payloads are preserved on disk for diffing.
type ConflictError struct {
	Key  string // logical key
	Path string // existing entry (first writer's bytes)
	// ConflictPath holds the rejected second payload, written next to the
	// entry as <hash>.conflict.
	ConflictPath string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("checkpoint: entry for key %q already holds different bytes (have %s, rejected payload preserved at %s)",
		e.Key, e.Path, e.ConflictPath)
}

// PutVerify stores data for key unless an entry already exists. An
// existing byte-identical entry is a no-op (the at-least-once duplicate
// completion case); an existing different entry leaves the store
// untouched, preserves the rejected payload at <hash>.conflict, and
// returns a *ConflictError.
//
// Concurrent PutVerify calls for the same key are safe: the commit is a
// link(2) of the synced temp file into place, which — unlike Put's rename
// — fails when an entry already exists instead of silently replacing it.
// Exactly one of N concurrent divergent writers wins; every loser observes
// the winner's complete bytes and reports a conflict. Readers (Get,
// GetHash) racing an in-flight PutVerify see either nothing or the
// complete committed entry, never a partial write, because data only
// becomes visible under the entry name at the link.
func (s *Store) PutVerify(key string, data []byte) error {
	return s.PutVerifyFenced(key, data, nil)
}

// PutVerifyFenced is PutVerify with a fencing check: fence (typically a
// closure over Lease.Verify for the claim that authorized this write) is
// re-evaluated at the top of every commit attempt, and any error it
// returns — a *FencedError for a superseded epoch — aborts the write with
// the store untouched. The fence runs BEFORE the byte-identical fast
// path, so a zombie writer resumed after its lease was stolen is rejected
// deterministically rather than slipping through whenever its bytes
// happen to match: a fenced duplicate is a protocol event worth counting,
// and a fenced divergence must never be recorded as a determinism
// conflict against the legitimate writer.
func (s *Store) PutVerifyFenced(key string, data []byte, fence func() error) error {
	path := s.path(key)
	for attempt := 0; attempt < 4; attempt++ {
		if fence != nil {
			if err := fence(); err != nil {
				return err
			}
		}
		if have, err := os.ReadFile(path); err == nil && len(have) > 0 {
			if bytes.Equal(have, data) {
				return nil
			}
			conflict := path + ".conflict"
			if werr := WriteFileDurable(conflict, data); werr != nil {
				conflict = "(preserve failed: " + werr.Error() + ")"
			}
			return &ConflictError{Key: key, Path: path, ConflictPath: conflict}
		} else if err == nil {
			// Zero-length entry: corrupt leftover, documented as
			// indistinguishable from missing. Clear the name so the link
			// commit below can claim it.
			os.Remove(path)
		}
		switch err := s.iop().do("store.put-verify", path, func() error { return createIfAbsent(path, data) }); {
		case err == nil:
			return nil
		case errors.Is(err, fs.ErrExist):
			// Lost the commit race to a competing writer: loop to read its
			// entry and verify our bytes against it.
		default:
			return fmt.Errorf("checkpoint: put-verify: %w", err)
		}
	}
	return fmt.Errorf("checkpoint: put-verify: entry for key %q kept vanishing between commit attempts", key)
}

// createIfAbsent durably commits data to path only if no entry exists
// there, using link(2) as the atomic test-and-commit. Returns fs.ErrExist
// (wrapped) when a competing entry holds the name.
func createIfAbsent(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	defer os.Remove(name)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Link(name, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// crashPoint, when non-nil, fires at named stages of the durable write
// protocol so tests can simulate a kill at any point (by panicking) and
// assert the store is still consistent. Always nil outside tests.
var crashPoint func(stage string)

func crash(stage string) {
	if crashPoint != nil {
		crashPoint(stage)
	}
}

// WriteFileDurable writes data to path atomically AND durably: temp file
// in the same directory, write, fsync the file, rename over path, fsync
// the parent directory. The final dirsync is what makes the rename itself
// survive a crash — without it a kill between rename and the next journal
// flush can leave the directory entry unrecorded, orphaning the write
// (and, for shard claims, the claim it represents).
func WriteFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	crash("create")
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	crash("write")
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	crash("sync-file")
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	crash("rename")
	if err := syncDir(dir); err != nil {
		return err
	}
	crash("sync-dir")
	return nil
}

// syncDir fsyncs a directory so a preceding rename/create/remove in it is
// durable. Best-effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}

// Len counts stored entries (completed series), for resume reporting.
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}
