package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on empty store succeeded")
	}
	if err := s.Put("series|a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("series|b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("series|a"); !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Overwrite replaces, not duplicates.
	if err := s.Put("series|a", []byte("alpha2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("series|a"); !bytes.Equal(got, []byte("alpha2")) {
		t.Fatalf("overwrite lost: %q", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after overwrite = %d", s.Len())
	}
}

// TestKeysAreHashNamed: arbitrary keys — long, with path separators —
// must map to flat fixed-size file names, and no temp files may linger
// after a Put.
func TestKeysAreHashNamed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "w|p|" + string(make([]byte, 4096)) + "/../../evil"
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir holds %d entries, want 1 (no temp leftovers)", len(entries))
	}
	name := entries[0].Name()
	if filepath.Ext(name) != ".json" || len(name) != 64+len(".json") {
		t.Fatalf("entry name %q is not a sha256 hex name", name)
	}
	if got, ok := s.Get(key); !ok || string(got) != "x" {
		t.Fatalf("round-trip through hashed name failed: %q, %v", got, ok)
	}
}

// TestReopenSeesPriorState: a new Store over the same directory (a
// resumed process) serves what the previous one wrote.
func TestReopenSeesPriorState(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("reopened store lost data: %q, %v", got, ok)
	}
}
