package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// crashAt arranges for the durable-write protocol to panic at the named
// stage, runs fn, and recovers — simulating a process killed at exactly
// that point. Returns whether the simulated kill fired.
func crashAt(t *testing.T, stage string, fn func()) (killed bool) {
	t.Helper()
	crashPoint = func(s string) {
		if s == stage {
			panic("simulated kill at " + s)
		}
	}
	defer func() { crashPoint = nil }()
	defer func() {
		if r := recover(); r != nil {
			killed = true
		}
	}()
	fn()
	return false
}

// TestDurableWriteStageOrder pins the protocol order the crash-consistency
// argument rests on: the temp file is fully written and fsynced BEFORE the
// rename, and the parent directory is fsynced AFTER it. A reordering (the
// PR-3 store renamed without any fsync) would reintroduce the window where
// a kill orphans the entry — or, for shard claims, the claim.
func TestDurableWriteStageOrder(t *testing.T) {
	var got []string
	crashPoint = func(s string) { got = append(got, s) }
	defer func() { crashPoint = nil }()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	want := []string{"create", "write", "sync-file", "rename", "sync-dir"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("durable write stages = %v, want %v", got, want)
	}
}

// TestCrashSimulationStoreConsistent kills a Put at every protocol stage
// and asserts the store invariant: Get returns either the complete old
// value or the complete new value, never a torn mix, and a reopened store
// can always complete a fresh Put.
func TestCrashSimulationStoreConsistent(t *testing.T) {
	for _, stage := range []string{"create", "write", "sync-file", "rename", "sync-dir"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k", []byte("old")); err != nil {
				t.Fatal(err)
			}
			if !crashAt(t, stage, func() { _ = s.Put("k", []byte("new")) }) {
				t.Fatalf("simulated kill at %s did not fire", stage)
			}
			got, ok := s.Get("k")
			if !ok {
				t.Fatalf("entry vanished after kill at %s", stage)
			}
			if !bytes.Equal(got, []byte("old")) && !bytes.Equal(got, []byte("new")) {
				t.Fatalf("torn entry after kill at %s: %q", stage, got)
			}
			// Stages at or after the rename must already expose the new
			// value: rename is the commit point, the trailing dirsync only
			// makes it durable.
			if (stage == "rename" || stage == "sync-dir") && !bytes.Equal(got, []byte("new")) {
				t.Fatalf("kill at %s lost committed value: %q", stage, got)
			}
			// Recovery: a fresh process over the same directory works.
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.Put("k", []byte("recovered")); err != nil {
				t.Fatal(err)
			}
			if got, _ := s2.Get("k"); !bytes.Equal(got, []byte("recovered")) {
				t.Fatalf("recovery Put lost: %q", got)
			}
			// Leftover temp files from the kill must be invisible to Len.
			if s2.Len() != 1 {
				t.Fatalf("Len after crash+recovery = %d, want 1", s2.Len())
			}
		})
	}
}

// TestCrashDuringClaimLeavesClaimRecoverable kills a lease renewal at
// every stage and asserts the lease file is never torn in a way that
// wedges the queue: the claim is either the old record, the new record,
// or treated as expired (stealable) — never permanently stuck.
func TestCrashDuringClaimLeavesClaimRecoverable(t *testing.T) {
	for _, stage := range []string{"write", "rename", "sync-dir"} {
		t.Run(stage, func(t *testing.T) {
			c, err := OpenClaims(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			l, ok, err := c.TryClaim("cell", "w1", time.Hour)
			if err != nil || !ok {
				t.Fatalf("TryClaim = %v, %v", ok, err)
			}
			crashAt(t, stage, func() { _ = l.Renew(time.Hour) })
			// Whatever state the kill left, another worker must eventually
			// make progress: either the lease reads as live (held by w1, it
			// will expire) or it is immediately claimable/stealable.
			owner, live, present := c.Holder("cell")
			if present && live && owner != "w1" {
				t.Fatalf("lease owned by stranger %q after crash", owner)
			}
			if !present {
				if _, ok, err := c.TryClaim("cell", "w2", time.Hour); err != nil || !ok {
					t.Fatalf("vanished lease not reclaimable: %v, %v", ok, err)
				}
			}
		})
	}
}

func TestPutVerify(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutVerify("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Duplicate completion with identical bytes: silent success.
	if err := s.PutVerify("k", []byte("v")); err != nil {
		t.Fatalf("identical PutVerify = %v", err)
	}
	// Divergent bytes: conflict, original preserved, rejected payload kept.
	err = s.PutVerify("k", []byte("DIFFERENT"))
	ce, ok := err.(*ConflictError)
	if !ok {
		t.Fatalf("divergent PutVerify = %v, want *ConflictError", err)
	}
	if got, _ := s.Get("k"); string(got) != "v" {
		t.Fatalf("conflict clobbered entry: %q", got)
	}
	kept, rerr := os.ReadFile(ce.ConflictPath)
	if rerr != nil || string(kept) != "DIFFERENT" {
		t.Fatalf("rejected payload not preserved: %q, %v", kept, rerr)
	}
	if s.Len() != 1 {
		t.Fatalf("Len counts conflict sidecar: %d", s.Len())
	}
}

func TestHasAndEntryPath(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.Has("k") {
		t.Fatal("Has on empty store")
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("k") {
		t.Fatal("Has after Put = false")
	}
	if filepath.Base(s.EntryPath("k")) != KeyHash("k")+".json" {
		t.Fatalf("EntryPath = %q", s.EntryPath("k"))
	}
}

func TestTryClaimExclusive(t *testing.T) {
	c, err := OpenClaims(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l1, ok, err := c.TryClaim("cell", "w1", time.Hour)
	if err != nil || !ok {
		t.Fatalf("first claim = %v, %v", ok, err)
	}
	if _, ok, err := c.TryClaim("cell", "w2", time.Hour); err != nil || ok {
		t.Fatalf("second claim on live lease = %v, %v (want refused)", ok, err)
	}
	owner, live, present := c.Holder("cell")
	if !present || !live || owner != "w1" {
		t.Fatalf("Holder = %q, %v, %v", owner, live, present)
	}
	l1.Release()
	if _, _, present := c.Holder("cell"); present {
		t.Fatal("lease survives Release")
	}
	if _, ok, err := c.TryClaim("cell", "w2", time.Hour); err != nil || !ok {
		t.Fatalf("claim after release = %v, %v", ok, err)
	}
}

func TestExpiredLeaseIsStolenByExactlyOneContender(t *testing.T) {
	c, err := OpenClaims(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.TryClaim("cell", "dead", time.Nanosecond); err != nil || !ok {
		t.Fatalf("seed claim = %v, %v", ok, err)
	}
	time.Sleep(2 * time.Millisecond) // let the lease expire
	const contenders = 8
	var wg sync.WaitGroup
	winners := make(chan string, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			owner := fmt.Sprintf("w%d", id)
			if _, ok, err := c.TryClaim("cell", owner, time.Hour); err == nil && ok {
				winners <- owner
			}
		}(i)
	}
	wg.Wait()
	close(winners)
	var won []string
	for w := range winners {
		won = append(won, w)
	}
	if len(won) != 1 {
		t.Fatalf("%d contenders won the steal (%v), want exactly 1", len(won), won)
	}
	owner, live, present := c.Holder("cell")
	if !present || !live || owner != won[0] {
		t.Fatalf("post-steal Holder = %q, %v, %v (winner %s)", owner, live, present, won[0])
	}
}

func TestRenewDetectsSteal(t *testing.T) {
	c, err := OpenClaims(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := c.TryClaim("cell", "w1", time.Nanosecond)
	if err != nil || !ok {
		t.Fatalf("claim = %v, %v", ok, err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, ok, err := c.TryClaim("cell", "thief", time.Hour); err != nil || !ok {
		t.Fatalf("steal = %v, %v", ok, err)
	}
	if err := l.Renew(time.Hour); err != ErrLeaseLost {
		t.Fatalf("Renew after steal = %v, want ErrLeaseLost", err)
	}
	// The stale holder's Release must not tear down the thief's lease.
	l.Release()
	if owner, _, present := c.Holder("cell"); !present || owner != "thief" {
		t.Fatalf("stale Release removed thief's lease: %q, %v", owner, present)
	}
}
