package checkpoint

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// ClaimDir hands out mutually-exclusive wall-clock leases over named
// resources using nothing but a shared directory — no network, no
// daemon, no flock (which silently degrades on some shared filesystems).
// The protocol is built from the two atomic primitives every POSIX
// filesystem (local or NFS) provides:
//
//   - link(2) is an atomic create-if-absent: claiming a free resource is
//     a link of a fully-written temp record into the lease name, so the
//     name never exists with partial contents and exactly one of N
//     concurrent claimants wins.
//   - rename(2) atomically removes a name: stealing an expired lease is
//     a rename of the stale file to a tombstone — exactly one contender
//     wins the rename, and everyone else observes the name gone.
//
// On top of those, three rules make the protocol safe for a fleet of
// machines with skewed clocks and arbitrarily-stalled processes:
//
//   - Lease records are immutable and carry a monotonic fencing epoch.
//     A record is written exactly once, at claim time; it is never
//     rewritten. Renewal writes an epoch-scoped heartbeat sidecar
//     (<name>.hb-<epoch>) instead, whose sole legitimate writer is the
//     claim that owns that epoch — so a stalled holder resuming after a
//     steal cannot resurrect or extend a lease it no longer holds, only
//     touch an inert file nobody reads. Lease.Verify / the store's
//     PutVerifyFenced compare epochs to fence such zombies at
//     publication.
//   - Epochs stay monotonic across release via a per-resource floor file
//     (<name>.epoch), bumped durably to the new epoch BEFORE the claim
//     record is linked in. The invariant "every live lease's epoch <= the
//     floor" means a fresh claim after a release always picks a strictly
//     newer epoch than anything that came before. (The floor bump is
//     read-skip-if-newer rather than a true atomic max; a writer stalled
//     between its floor read and write across two full claim/release
//     cycles could briefly regress the cached floor. The live-record
//     epoch comparison — the path every in-flight zombie actually hits —
//     does not depend on the floor, and byte-verified publication backs
//     the rest.)
//   - Expiry honors a configurable skew grace: a lease is only stealable
//     once the claimant's clock reads deadline+MaxSkew, so a holder whose
//     clock runs up to MaxSkew behind the fleet still gets its full TTL.
//     The one exception is same-host fast reclaim: when the holder's
//     owner identity parses, names this host, and its pid is provably
//     dead (kill(pid,0) == ESRCH), waiting out the deadline serves
//     nothing and the lease is reclaimed immediately.
type ClaimDir struct {
	dir     string
	opts    ClaimOptions
	io      ioPolicy
	tombSeq atomic.Uint64
}

// ClaimOptions configure clocking, skew tolerance, fault handling, and
// observability for a ClaimDir. The zero value is production defaults:
// real clock, zero skew grace, single-attempt I/O, pid-probe fast
// reclaim.
type ClaimOptions struct {
	// Clock supplies the time for deadlines and expiry checks. Nil means
	// time.Now. Tests inject a fake to step through expiry and skew
	// deterministically.
	Clock func() time.Time
	// MaxSkew is the grace added to a lease deadline before it may be
	// stolen: tolerate holders whose clocks run up to MaxSkew behind
	// ours. Zero (the default) preserves single-machine semantics.
	MaxSkew time.Duration
	// Retry bounds retries of transient I/O failures (ESTALE/EINTR/EIO)
	// on every lease operation. Zero value: no retries.
	Retry RetryPolicy
	// Hook, when non-nil, intercepts every lease filesystem operation for
	// deterministic fault injection. See FaultHook.
	Hook FaultHook
	// Observe, when non-nil, receives coordination events (EvClaim,
	// EvSteal, ...) for telemetry counters.
	Observe func(event string)
	// IsDead, when non-nil, overrides the liveness probe used for
	// same-host fast reclaim. Nil means: same hostname, pid not ours, and
	// kill(pid, 0) returns ESRCH.
	IsDead func(o Owner) bool
}

// Owner identifies a lease holder precisely enough to reason about its
// liveness: which host, which pid, and a per-process boot nonce so a
// recycled pid is never mistaken for the original claimant.
type Owner struct {
	Host  string
	PID   int
	Nonce string
}

// NewOwner builds this process's owner identity.
func NewOwner() Owner {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown-host"
	}
	return Owner{Host: host, PID: os.Getpid(), Nonce: newNonce()}
}

func newNonce() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not worth failing a claim over; fall back
		// to a time-derived tag (uniqueness, not secrecy, is the goal).
		return strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(b[:])
}

// String renders the identity as "host/pid/nonce" — the wire format
// stored in lease records.
func (o Owner) String() string {
	return fmt.Sprintf("%s/%d/%s", o.Host, o.PID, o.Nonce)
}

// ParseOwner decodes a "host/pid/nonce" owner string. ok=false for
// free-form owner names (tests, legacy callers), which simply opt out of
// fast reclaim.
func ParseOwner(s string) (Owner, bool) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Owner{}, false
	}
	nonce := s[i+1:]
	rest := s[:i]
	j := strings.LastIndexByte(rest, '/')
	if j < 0 {
		return Owner{}, false
	}
	pid, err := strconv.Atoi(rest[j+1:])
	if err != nil || pid <= 0 || rest[:j] == "" || nonce == "" {
		return Owner{}, false
	}
	return Owner{Host: rest[:j], PID: pid, Nonce: nonce}, true
}

// pidProbablyDead is the default fast-reclaim probe: true only when the
// owner names this host and its pid provably no longer exists. A SIGSTOPped
// process reads as alive (correct: it may resume), a recycled pid reads
// as alive (safe: just means waiting out the deadline), EPERM reads as
// alive.
func pidProbablyDead(o Owner) bool {
	if o.PID <= 0 || o.Host == "" || o.PID == os.Getpid() {
		return false
	}
	host, err := os.Hostname()
	if err != nil || host != o.Host {
		return false
	}
	return errors.Is(syscall.Kill(o.PID, 0), syscall.ESRCH)
}

// OpenClaims creates (if needed) and opens a claim directory with default
// options — the single-machine configuration every pre-fleet caller gets.
func OpenClaims(dir string) (*ClaimDir, error) {
	return OpenClaimsWith(dir, ClaimOptions{})
}

// OpenClaimsWith creates (if needed) and opens a claim directory with
// explicit fleet options.
func OpenClaimsWith(dir string, opts ClaimOptions) (*ClaimDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open claims %s: %w", dir, err)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.IsDead == nil {
		opts.IsDead = pidProbablyDead
	}
	return &ClaimDir{
		dir:  dir,
		opts: opts,
		io:   ioPolicy{retry: opts.Retry, hook: opts.Hook, observe: opts.Observe},
	}, nil
}

// Dir reports the claim directory root.
func (c *ClaimDir) Dir() string { return c.dir }

func (c *ClaimDir) leasePath(name string) string {
	return filepath.Join(c.dir, name+".lease")
}

func (c *ClaimDir) floorPath(name string) string {
	return filepath.Join(c.dir, name+".epoch")
}

func (c *ClaimDir) hbPath(name string, epoch uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s.hb-%d", name, epoch))
}

func (c *ClaimDir) now() int64 { return c.opts.Clock().UnixNano() }

func (c *ClaimDir) note(event string) {
	if c.opts.Observe != nil {
		c.opts.Observe(event)
	}
}

// leaseRecord is the on-disk lease body — written once per claim, never
// rewritten (renewals go to the heartbeat sidecar).
type leaseRecord struct {
	Owner    string `json:"owner"`
	Deadline int64  `json:"deadline_unix_ns"`
	Epoch    uint64 `json:"epoch"`
}

// hbRecord is the heartbeat sidecar body: the extended deadline for one
// claim epoch.
type hbRecord struct {
	Deadline int64 `json:"deadline_unix_ns"`
}

// errCorruptLease marks a lease file that exists but does not decode —
// a torn write from a crashed pre-durable-protocol writer, or bad media.
var errCorruptLease = errors.New("checkpoint: corrupt lease record")

// readLease decodes the lease at path under the I/O policy. Returns
// errCorruptLease (wrapped) for present-but-undecodable records, the
// raw error otherwise.
func (c *ClaimDir) readLease(op, path string) (leaseRecord, error) {
	var rec leaseRecord
	err := c.io.do(op, path, func() error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(data) == 0 || json.Unmarshal(data, &rec) != nil {
			return errCorruptLease
		}
		return nil
	})
	return rec, err
}

// readFloor reads the epoch floor for name: 0 when absent or
// undecodable (the floor is a monotonicity accelerator; live lease
// records carry the authoritative epoch).
func (c *ClaimDir) readFloor(name string) (uint64, error) {
	path := c.floorPath(name)
	var floor uint64
	err := c.io.do("lease.floor-read", path, func() error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		v, perr := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
		if perr == nil {
			floor = v
		}
		return nil
	})
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	return floor, nil
}

// bumpFloor durably raises name's epoch floor to at least epoch,
// skipping the write when the floor is already there or beyond.
func (c *ClaimDir) bumpFloor(name string, epoch uint64) error {
	cur, err := c.readFloor(name)
	if err != nil {
		return err
	}
	if cur >= epoch {
		return nil
	}
	path := c.floorPath(name)
	return c.io.do("lease.floor-write", path, func() error {
		return WriteFileDurable(path, []byte(strconv.FormatUint(epoch, 10)))
	})
}

// effectiveDeadline is the record deadline extended by the claim's
// heartbeat sidecar, when one exists for the record's epoch. Heartbeats
// only ever extend — a missing or unreadable sidecar falls back to the
// claim-time deadline.
func (c *ClaimDir) effectiveDeadline(name string, rec leaseRecord) int64 {
	deadline := rec.Deadline
	path := c.hbPath(name, rec.Epoch)
	_ = c.io.do("lease.hb-read", path, func() error {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil // no heartbeat yet: not an error
		}
		var hb hbRecord
		if json.Unmarshal(data, &hb) == nil && hb.Deadline > deadline {
			deadline = hb.Deadline
		}
		return nil
	})
	return deadline
}

// Lease is a held claim at a specific fencing epoch. It is valid until
// its (heartbeat-extended) deadline passes; Renew extends it, Release
// gives it up, Verify checks it has not been superseded.
type Lease struct {
	c     *ClaimDir
	name  string
	owner string
	epoch uint64
}

// Name reports the resource the lease covers.
func (l *Lease) Name() string { return l.name }

// Owner reports the holder identity the lease was claimed with.
func (l *Lease) Owner() string { return l.owner }

// Epoch reports the lease's fencing epoch — the token publication-side
// fence checks compare against the resource's current claim.
func (l *Lease) Epoch() uint64 { return l.epoch }

// ErrLeaseLost reports a Renew that found the lease no longer held by its
// owner at its epoch — it expired and another process stole it, or its
// record vanished. The holder must stop extending and assume a competitor
// owns the work; its publications will be rejected by the fence.
var ErrLeaseLost = fmt.Errorf("checkpoint: lease lost (expired and stolen)")

// TryClaim attempts to acquire the lease on name for owner with the given
// ttl. It returns (lease, true, nil) on success, (nil, false, nil) when
// another live holder has it, and an error only on I/O failure. An
// expired lease — deadline + MaxSkew in the past, or held by a provably
// dead same-host pid — is stolen atomically: exactly one contender wins
// the rename to a tombstone, and the fresh claim carries a strictly
// greater epoch. Unreadable lease records are quarantined to
// <lease>.corrupt-<ts>-<seq> rather than silently treated as expired.
func (c *ClaimDir) TryClaim(name, owner string, ttl time.Duration) (*Lease, bool, error) {
	path := c.leasePath(name)
	for attempt := 0; attempt < 16; attempt++ {
		rec, err := c.readLease("lease.read", path)
		switch {
		case err == nil:
			// Name held: live, dead-holder, or expired.
			deadline := c.effectiveDeadline(name, rec)
			event := EvSteal
			if c.now() < deadline+int64(c.opts.MaxSkew) {
				o, pok := ParseOwner(rec.Owner)
				if !pok || !c.opts.IsDead(o) {
					return nil, false, nil
				}
				event = EvFastReclaim
			}
			won, serr := c.removeStale(name, path, rec)
			if serr != nil {
				return nil, false, serr
			}
			if won {
				c.note(event)
			}
			continue
		case os.IsNotExist(err):
			// Name free: contend for a fresh claim. The floor is bumped
			// BEFORE the link so a crash between the two only burns an
			// epoch number, never creates a lease above the floor.
			floor, ferr := c.readFloor(name)
			if ferr != nil {
				return nil, false, ferr
			}
			epoch := floor + 1
			if berr := c.bumpFloor(name, epoch); berr != nil {
				return nil, false, berr
			}
			ok, cerr := c.createExcl(path, owner, ttl, epoch)
			if cerr != nil {
				return nil, false, cerr
			}
			if ok {
				c.note(EvClaim)
				return &Lease{c: c, name: name, owner: owner, epoch: epoch}, true, nil
			}
			continue // lost the link race; re-read the winner's record
		case errors.Is(err, errCorruptLease):
			if qerr := c.quarantine(name, path); qerr != nil {
				return nil, false, qerr
			}
			continue
		default:
			return nil, false, fmt.Errorf("checkpoint: claim %s: %w", name, err)
		}
	}
	// Pathological churn: behave as "held elsewhere" and let the caller's
	// next scan retry.
	return nil, false, nil
}

// removeStale atomically removes an expired lease record via a unique
// tombstone rename. Exactly one contender wins; won=false means someone
// else removed (or replaced) it first. The tombstone is read back after
// the rename: if the record moved is not the one we judged expired — a
// competitor stole it and a fresh live claim landed in the window — the
// live record is restored via link(2) and the steal is retried from
// scratch.
func (c *ClaimDir) removeStale(name, path string, rec leaseRecord) (won bool, err error) {
	tomb := fmt.Sprintf("%s.stale-%d-%d", path, os.Getpid(), c.tombSeq.Add(1))
	err = c.io.do("lease.steal", path, func() error { return os.Rename(path, tomb) })
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // lost the steal race
		}
		return false, fmt.Errorf("checkpoint: steal lease %s: %w", name, err)
	}
	moved, rerr := c.readLease("lease.steal-verify", tomb)
	if rerr == nil && (moved.Epoch != rec.Epoch || moved.Owner != rec.Owner) {
		// We renamed a live successor lease, not the stale record. Put it
		// back; EEXIST means yet another claim already holds the name, in
		// which case the displaced holder is fenced by epoch at its next
		// Renew/Verify rather than silently losing work.
		if lerr := os.Link(tomb, path); lerr != nil && !os.IsExist(lerr) {
			return false, fmt.Errorf("checkpoint: restore displaced lease %s: %w", name, lerr)
		}
		os.Remove(tomb)
		return false, nil
	}
	os.Remove(tomb)
	os.Remove(c.hbPath(name, rec.Epoch))
	syncDir(c.dir)
	return true, nil
}

// quarantine renames an undecodable lease record to a .corrupt-* sidecar
// so torn-media events stay observable post-mortem instead of silently
// reading as expired.
func (c *ClaimDir) quarantine(name, path string) error {
	dst := fmt.Sprintf("%s.corrupt-%d-%d", path, c.now(), c.tombSeq.Add(1))
	err := c.io.do("lease.quarantine", path, func() error { return os.Rename(path, dst) })
	if err != nil {
		if os.IsNotExist(err) {
			return nil // another contender quarantined or claimed it first
		}
		return fmt.Errorf("checkpoint: quarantine corrupt lease %s: %w", name, err)
	}
	syncDir(c.dir)
	c.note(EvCorrupt)
	return nil
}

// createExcl atomically creates the lease file, failing (ok=false) if it
// already exists. The record is staged in a temp file and link(2)ed into
// place, so the lease name never exists with incomplete contents — a
// contender that raced an O_CREATE-then-write here could read the
// empty in-progress file, deem it corrupt, quarantine it, and leave two
// workers each believing they hold the cell. The link is fsynced into
// the directory so a claim survives a crash — an unrecorded claim would
// likewise let two workers share a cell after recovery.
func (c *ClaimDir) createExcl(path, owner string, ttl time.Duration, epoch uint64) (ok bool, err error) {
	data, _ := json.Marshal(leaseRecord{
		Owner:    owner,
		Deadline: c.opts.Clock().Add(ttl).UnixNano(),
		Epoch:    epoch,
	})
	err = c.io.do("lease.create", path, func() error {
		f, err := os.CreateTemp(c.dir, ".claim-*")
		if err != nil {
			return err
		}
		tmp := f.Name()
		defer os.Remove(tmp)
		if _, err := f.Write(data); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.Link(tmp, path); err != nil {
			if os.IsExist(err) {
				ok = false
				return nil
			}
			return err
		}
		if err := syncDir(filepath.Dir(path)); err != nil {
			return err
		}
		ok = true
		return nil
	})
	if err != nil {
		return false, fmt.Errorf("checkpoint: claim %s: %w", path, err)
	}
	return ok, nil
}

// Renew extends the lease by ttl from now. The claim record is immutable;
// the extension is written to the epoch-scoped heartbeat sidecar, whose
// only legitimate writer is this claim — so a renew that lost the epoch
// race returns ErrLeaseLost without writing anything, and a stalled
// holder can never resurrect a stolen lease (its sidecar is inert
// garbage keyed to a dead epoch).
func (l *Lease) Renew(ttl time.Duration) error {
	c := l.c
	path := c.leasePath(l.name)
	rec, err := c.readLease("lease.renew-read", path)
	switch {
	case err == nil:
		if rec.Owner != l.owner || rec.Epoch != l.epoch {
			return ErrLeaseLost
		}
	case os.IsNotExist(err), errors.Is(err, errCorruptLease):
		return ErrLeaseLost
	default:
		return fmt.Errorf("checkpoint: renew lease %s: %w", l.name, err)
	}
	hb, _ := json.Marshal(hbRecord{Deadline: c.opts.Clock().Add(ttl).UnixNano()})
	hbp := c.hbPath(l.name, l.epoch)
	err = c.io.do("lease.hb-write", hbp, func() error { return WriteFileDurable(hbp, hb) })
	if err != nil {
		return fmt.Errorf("checkpoint: renew lease %s: %w", l.name, err)
	}
	return nil
}

// Verify reports whether this lease is still the resource's current
// claim. nil means publications fenced on it may proceed; a *FencedError
// (matching ErrFenced) means a newer epoch superseded it. Corrupt
// records read as fenced (conservative: requeue beats double-publish);
// transient I/O failure after retries is returned as-is.
func (l *Lease) Verify() error {
	c := l.c
	path := c.leasePath(l.name)
	rec, err := c.readLease("lease.verify", path)
	switch {
	case err == nil:
		if rec.Owner == l.owner && rec.Epoch == l.epoch {
			return nil
		}
		return &FencedError{Name: l.name, Epoch: l.epoch, NewerEpoch: rec.Epoch, Holder: rec.Owner}
	case os.IsNotExist(err):
		// No record: fenced only if the floor proves a newer claim
		// existed. (A thief bumps the floor before linking its record, so
		// floor <= our epoch guarantees no steal ever started.)
		floor, ferr := c.readFloor(l.name)
		if ferr != nil {
			return ferr
		}
		if floor > l.epoch {
			return &FencedError{Name: l.name, Epoch: l.epoch, NewerEpoch: floor}
		}
		return nil
	case errors.Is(err, errCorruptLease):
		return &FencedError{Name: l.name, Epoch: l.epoch}
	default:
		return fmt.Errorf("checkpoint: verify lease %s: %w", l.name, err)
	}
}

// Release gives the lease up. The removal is atomic with respect to
// ownership: the record is renamed to a unique tombstone and read back,
// so releasing a lease that was already stolen can never tear down the
// thief's claim — a displaced successor record is restored via link(2)
// and the release becomes a no-op.
func (l *Lease) Release() {
	c := l.c
	path := c.leasePath(l.name)
	rec, err := c.readLease("lease.release-read", path)
	if err != nil || rec.Owner != l.owner || rec.Epoch != l.epoch {
		c.note(EvReleaseLost)
		return
	}
	tomb := fmt.Sprintf("%s.rel-%d-%d", path, os.Getpid(), c.tombSeq.Add(1))
	if err := c.io.do("lease.release-rename", path, func() error { return os.Rename(path, tomb) }); err != nil {
		c.note(EvReleaseLost)
		return // record vanished (stolen+released) or I/O failed; nothing held
	}
	moved, rerr := c.readLease("lease.release-verify", tomb)
	if rerr == nil && (moved.Owner != l.owner || moved.Epoch != l.epoch) {
		// A thief stole our expired claim and linked a fresh record in the
		// window between our ownership read and the rename; we displaced
		// the thief's live lease. Restore it (EEXIST: an even newer claim
		// already took the name — the displaced thief gets fenced at its
		// next Renew/Verify).
		if lerr := os.Link(tomb, path); lerr == nil || os.IsExist(lerr) {
			os.Remove(tomb)
		}
		c.note(EvReleaseLost)
		return
	}
	os.Remove(tomb)
	os.Remove(c.hbPath(l.name, l.epoch))
	syncDir(c.dir)
}

// Holder reports the current owner of name's lease and whether the lease
// is still live (heartbeat-extended deadline in the future, no skew
// grace — this is observational, not a steal decision). ok=false means
// unclaimed.
func (c *ClaimDir) Holder(name string) (owner string, live bool, ok bool) {
	rec, err := c.readLease("lease.holder", c.leasePath(name))
	if err != nil {
		return "", false, false
	}
	return rec.Owner, c.now() < c.effectiveDeadline(name, rec), true
}
