package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ClaimDir hands out mutually-exclusive wall-clock leases over named
// resources using nothing but a shared directory: claiming is an
// O_CREATE|O_EXCL file creation (atomic on every POSIX filesystem, local
// or NFS), expiry is a deadline stamped inside the file, and stealing an
// expired lease is a rename to a tombstone name — the filesystem
// guarantees exactly one contender wins each of those races. No network,
// no daemon, no flock (which silently degrades on some shared
// filesystems).
type ClaimDir struct {
	dir string
}

// OpenClaims creates (if needed) and opens a claim directory.
func OpenClaims(dir string) (*ClaimDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open claims %s: %w", dir, err)
	}
	return &ClaimDir{dir: dir}, nil
}

// Dir reports the claim directory root.
func (c *ClaimDir) Dir() string { return c.dir }

func (c *ClaimDir) leasePath(name string) string {
	return filepath.Join(c.dir, name+".lease")
}

// leaseRecord is the on-disk lease body.
type leaseRecord struct {
	Owner    string `json:"owner"`
	Deadline int64  `json:"deadline_unix_ns"`
}

// Lease is a held claim. It is valid until its deadline passes; Renew
// extends it, Release gives it up.
type Lease struct {
	c     *ClaimDir
	name  string
	owner string
}

// Name reports the resource the lease covers.
func (l *Lease) Name() string { return l.name }

// Owner reports the holder identity the lease was claimed with.
func (l *Lease) Owner() string { return l.owner }

// ErrLeaseLost reports a Renew that found the lease no longer held by its
// owner — it expired and another process stole it. The holder must assume
// a competitor is executing the same work (safe here: results are
// content-addressed and verified byte-identical on duplicate completion).
var ErrLeaseLost = fmt.Errorf("checkpoint: lease lost (expired and stolen)")

// TryClaim attempts to acquire the lease on name for owner with the given
// ttl. It returns (lease, true, nil) on success, (nil, false, nil) when
// another live holder has it, and an error only on I/O failure. An
// expired lease is stolen atomically: the stale file is renamed to a
// tombstone (exactly one contender wins the rename) and a fresh claim is
// attempted.
func (c *ClaimDir) TryClaim(name, owner string, ttl time.Duration) (*Lease, bool, error) {
	path := c.leasePath(name)
	for attempt := 0; attempt < 16; attempt++ {
		ok, err := c.createExcl(path, owner, ttl)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return &Lease{c: c, name: name, owner: owner}, true, nil
		}
		rec, err := readLease(path)
		if os.IsNotExist(err) {
			continue // holder released between our create and read; re-contend
		}
		// An unreadable or corrupt lease (crash mid-write predating the
		// durable-write protocol, or torn media) is treated as expired.
		if err == nil && time.Now().UnixNano() < rec.Deadline {
			return nil, false, nil
		}
		tomb := path + ".stale"
		if err := os.Rename(path, tomb); err != nil {
			if os.IsNotExist(err) {
				continue // lost the steal race; re-contend for the fresh lease
			}
			return nil, false, fmt.Errorf("checkpoint: steal lease %s: %w", name, err)
		}
		os.Remove(tomb)
	}
	// Pathological churn: behave as "held elsewhere" and let the caller's
	// next scan retry.
	return nil, false, nil
}

// createExcl atomically creates the lease file, failing (ok=false) if it
// already exists. The record is staged in a temp file and link(2)ed into
// place, so the lease name never exists with incomplete contents — a
// contender that raced an O_CREATE-then-write here could read the
// empty in-progress file, deem it corrupt/expired, steal it by rename,
// and leave two workers each believing they hold the cell. The link is
// fsynced into the directory so a claim survives a crash — an
// unrecorded claim would likewise let two workers share a cell after
// recovery.
func (c *ClaimDir) createExcl(path, owner string, ttl time.Duration) (ok bool, err error) {
	data, _ := json.Marshal(leaseRecord{Owner: owner, Deadline: time.Now().Add(ttl).UnixNano()})
	f, err := os.CreateTemp(c.dir, ".claim-*")
	if err != nil {
		return false, fmt.Errorf("checkpoint: claim %s: %w", path, err)
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	if _, err := f.Write(data); err != nil {
		f.Close()
		return false, fmt.Errorf("checkpoint: claim %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("checkpoint: claim %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("checkpoint: claim %s: %w", path, err)
	}
	if err := os.Link(tmp, path); err != nil {
		if os.IsExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("checkpoint: claim %s: %w", path, err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return false, fmt.Errorf("checkpoint: claim %s: %w", path, err)
	}
	return true, nil
}

func readLease(path string) (leaseRecord, error) {
	var rec leaseRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, err
	}
	return rec, nil
}

// Renew extends the lease by ttl from now. It verifies ownership first
// and returns ErrLeaseLost when the lease has been stolen. (A stalled
// holder can in principle renew in the window between the verify and the
// write; that race is benign here because duplicate completions are
// verified byte-identical by the content-addressed store.)
func (l *Lease) Renew(ttl time.Duration) error {
	path := l.c.leasePath(l.name)
	rec, err := readLease(path)
	if err != nil || rec.Owner != l.owner {
		return ErrLeaseLost
	}
	data, _ := json.Marshal(leaseRecord{Owner: l.owner, Deadline: time.Now().Add(ttl).UnixNano()})
	if err := WriteFileDurable(path, data); err != nil {
		return fmt.Errorf("checkpoint: renew lease %s: %w", l.name, err)
	}
	return nil
}

// Release gives the lease up. Releasing a lease that was already stolen
// is a no-op for the current holder's file (the thief's lease has the
// same path, so ownership is re-verified before removal).
func (l *Lease) Release() {
	path := l.c.leasePath(l.name)
	if rec, err := readLease(path); err != nil || rec.Owner != l.owner {
		return
	}
	os.Remove(path)
	syncDir(l.c.dir)
}

// Holder reports the current owner of name's lease and whether the lease
// is still live (deadline in the future). ok=false means unclaimed.
func (c *ClaimDir) Holder(name string) (owner string, live bool, ok bool) {
	rec, err := readLease(c.leasePath(name))
	if err != nil {
		return "", false, false
	}
	return rec.Owner, time.Now().UnixNano() < rec.Deadline, true
}
