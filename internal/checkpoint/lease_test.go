package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// fakeClock is a settable clock shared by every ClaimDir in a test, so
// expiry and skew are stepped deterministically instead of slept for.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// eventLog is a race-safe ClaimOptions.Observe sink.
type eventLog struct {
	mu sync.Mutex
	m  map[string]int
}

func newEventLog() *eventLog { return &eventLog{m: map[string]int{}} }

func (e *eventLog) note(ev string) {
	e.mu.Lock()
	e.m[ev]++
	e.mu.Unlock()
}

func (e *eventLog) count(ev string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.m[ev]
}

func TestOwnerRoundtrip(t *testing.T) {
	o := NewOwner()
	if o.Host == "" || o.PID != os.Getpid() || o.Nonce == "" {
		t.Fatalf("NewOwner = %+v", o)
	}
	back, ok := ParseOwner(o.String())
	if !ok || back != o {
		t.Fatalf("ParseOwner(%q) = %+v, %v", o.String(), back, ok)
	}
	for _, bad := range []string{"", "w1", "host/abc/nonce", "host/0/nonce", "/1/n", "host/1/"} {
		if _, ok := ParseOwner(bad); ok {
			t.Errorf("ParseOwner(%q) accepted", bad)
		}
	}
	// Hosts joined back out of multi-slash strings must survive: only the
	// last two segments are pid/nonce.
	withSlash := Owner{Host: "rack1/node7", PID: 42, Nonce: "abc"}
	back, ok = ParseOwner(withSlash.String())
	if !ok || back != withSlash {
		t.Fatalf("ParseOwner(slash host) = %+v, %v", back, ok)
	}
}

// TestReleaseRaceDoesNotRemoveThiefLease is the regression test for the
// read-then-remove race: a steal landing between Release's ownership
// read and its removal must not tear down the thief's live lease. The
// fault hook opens exactly that window deterministically.
func TestReleaseRaceDoesNotRemoveThiefLease(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	events := newEventLog()
	thiefDir, err := OpenClaimsWith(dir, ClaimOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	victimDir, err := OpenClaimsWith(dir, ClaimOptions{
		Clock:   clk.Now,
		Observe: events.note,
		Hook: func(op, path string) error {
			if op == "lease.release-rename" {
				once.Do(func() {
					// The victim has read its own record and is about to
					// remove it. Expire the lease and let the thief claim.
					clk.Advance(time.Hour)
					if _, ok, err := thiefDir.TryClaim("cell", "thief", time.Hour); err != nil || !ok {
						t.Errorf("thief steal inside window = %v, %v", ok, err)
					}
				})
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := victimDir.TryClaim("cell", "victim", time.Minute)
	if err != nil || !ok {
		t.Fatalf("victim claim = %v, %v", ok, err)
	}
	l.Release()
	owner, live, present := thiefDir.Holder("cell")
	if !present || !live || owner != "thief" {
		t.Fatalf("thief's lease after victim Release = %q live=%v present=%v, want live thief", owner, live, present)
	}
	if events.count(EvReleaseLost) == 0 {
		t.Fatal("displaced Release not observed as EvReleaseLost")
	}
}

// TestRenewCannotResurrectStolenLease closes the verify-then-write
// window: even when the steal lands after Renew's ownership check
// passes, the stale holder's heartbeat goes to its own epoch's sidecar
// and cannot extend or resurrect the thief's claim.
func TestRenewCannotResurrectStolenLease(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	thiefDir, err := OpenClaimsWith(dir, ClaimOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	victimDir, err := OpenClaimsWith(dir, ClaimOptions{
		Clock: clk.Now,
		Hook: func(op, path string) error {
			if op == "lease.hb-write" {
				once.Do(func() {
					clk.Advance(time.Hour)
					if _, ok, err := thiefDir.TryClaim("cell", "thief", time.Minute); err != nil || !ok {
						t.Errorf("thief steal inside renew window = %v, %v", ok, err)
					}
				})
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := victimDir.TryClaim("cell", "victim", time.Minute)
	if err != nil || !ok {
		t.Fatalf("victim claim = %v, %v", ok, err)
	}
	// The ownership check passes (steal happens after it), the heartbeat
	// write lands — in the dead epoch's sidecar.
	renewErr := l.Renew(24 * time.Hour)
	owner, live, present := thiefDir.Holder("cell")
	if !present || owner != "thief" {
		t.Fatalf("thief lease gone after stale renew: %q present=%v", owner, present)
	}
	if live {
		// The thief claimed for one minute and the clock then stood still;
		// after the victim's 24h renewal attempt the thief's deadline must
		// be untouched — advance past it and confirm it expires on the
		// thief's own schedule.
		clk.Advance(2 * time.Minute)
		if _, stillLive, _ := thiefDir.Holder("cell"); stillLive {
			t.Fatal("stale holder's renewal extended the thief's lease")
		}
	}
	// And the plain post-steal renew (check fails) must report the loss.
	if renewErr == nil {
		if err := l.Renew(time.Hour); err != ErrLeaseLost {
			t.Fatalf("renew after steal = %v, want ErrLeaseLost", err)
		}
	}
}

// TestRenewAfterStealReturnsErrLeaseLost pins the simple epoch-check
// path: once stolen, Renew reports ErrLeaseLost and writes nothing.
func TestRenewAfterStealReturnsErrLeaseLost(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c, err := OpenClaimsWith(dir, ClaimOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := c.TryClaim("cell", "victim", time.Minute)
	if err != nil || !ok {
		t.Fatalf("claim = %v, %v", ok, err)
	}
	clk.Advance(time.Hour)
	thief, ok, err := c.TryClaim("cell", "thief", time.Minute)
	if err != nil || !ok {
		t.Fatalf("steal = %v, %v", ok, err)
	}
	if err := l.Renew(time.Hour); err != ErrLeaseLost {
		t.Fatalf("Renew after steal = %v, want ErrLeaseLost", err)
	}
	if _, err := os.Stat(c.hbPath("cell", l.Epoch())); !os.IsNotExist(err) {
		t.Fatalf("stale Renew left a heartbeat for the dead epoch: %v", err)
	}
	if thief.Epoch() <= l.Epoch() {
		t.Fatalf("thief epoch %d not above victim epoch %d", thief.Epoch(), l.Epoch())
	}
}

// TestSkewGrace pins the steal deadline arithmetic: a contender whose
// clock runs ahead steals prematurely at MaxSkew=0 (the hazard), and is
// held off by a MaxSkew covering the divergence.
func TestSkewGrace(t *testing.T) {
	for _, tc := range []struct {
		name    string
		maxSkew time.Duration
		ahead   time.Duration
		stolen  bool
	}{
		{"zero-skew-ahead-clock-steals", 0, 90 * time.Second, true},
		{"grace-covers-skew", 2 * time.Minute, 90 * time.Second, false},
		{"grace-expired-steals", 2 * time.Minute, 4 * time.Minute, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			holderClk := newFakeClock()
			holderDir, err := OpenClaimsWith(dir, ClaimOptions{Clock: holderClk.Now})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok, err := holderDir.TryClaim("cell", "holder", time.Minute); err != nil || !ok {
				t.Fatalf("claim = %v, %v", ok, err)
			}
			aheadClk := newFakeClock()
			aheadClk.Advance(tc.ahead) // contender clock runs ahead of the holder's
			events := newEventLog()
			contenderDir, err := OpenClaimsWith(dir, ClaimOptions{
				Clock:   aheadClk.Now,
				MaxSkew: tc.maxSkew,
				Observe: events.note,
			})
			if err != nil {
				t.Fatal(err)
			}
			_, got, err := contenderDir.TryClaim("cell", "contender", time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.stolen {
				t.Fatalf("steal with clock +%v, skew %v: got %v, want %v", tc.ahead, tc.maxSkew, got, tc.stolen)
			}
			if wantSteals := 0; tc.stolen {
				wantSteals = 1
				if events.count(EvSteal) != wantSteals {
					t.Fatalf("EvSteal = %d, want %d", events.count(EvSteal), wantSteals)
				}
			}
		})
	}
}

// TestHeartbeatExtendsLease: a renewed lease stays unstealable past its
// original deadline, via the heartbeat sidecar rather than a record
// rewrite.
func TestHeartbeatExtendsLease(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c, err := OpenClaimsWith(dir, ClaimOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := c.TryClaim("cell", "holder", time.Minute)
	if err != nil || !ok {
		t.Fatalf("claim = %v, %v", ok, err)
	}
	clk.Advance(50 * time.Second)
	if err := l.Renew(time.Minute); err != nil {
		t.Fatalf("renew = %v", err)
	}
	clk.Advance(30 * time.Second) // past the original deadline, inside the renewal
	if _, ok, err := c.TryClaim("cell", "contender", time.Minute); err != nil || ok {
		t.Fatalf("renewed lease stolen at +80s = %v, %v", ok, err)
	}
	if _, live, present := c.Holder("cell"); !present || !live {
		t.Fatal("renewed lease not live per Holder")
	}
	clk.Advance(time.Minute) // now past the renewal too
	if _, ok, err := c.TryClaim("cell", "contender", time.Minute); err != nil || !ok {
		t.Fatalf("expired renewed lease not stealable = %v, %v", ok, err)
	}
}

func TestPidProbablyDead(t *testing.T) {
	host, _ := os.Hostname()
	if pidProbablyDead(Owner{Host: host, PID: os.Getpid(), Nonce: "x"}) {
		t.Fatal("own pid reported dead")
	}
	if pidProbablyDead(Owner{Host: "some-other-host", PID: 1, Nonce: "x"}) {
		t.Fatal("foreign host reported dead")
	}
	cmd := exec.Command("/bin/true")
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot spawn probe process: %v", err)
	}
	pid := cmd.Process.Pid
	if err := cmd.Wait(); err != nil {
		t.Fatal(err)
	}
	if !pidProbablyDead(Owner{Host: host, PID: pid, Nonce: "x"}) {
		t.Fatalf("exited pid %d not reported dead", pid)
	}
}

// TestFastReclaimDeadHolder: a lease held by a provably dead same-host
// pid is reclaimed immediately, hours before its deadline.
func TestFastReclaimDeadHolder(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	events := newEventLog()
	c, err := OpenClaimsWith(dir, ClaimOptions{Clock: clk.Now, Observe: events.note})
	if err != nil {
		t.Fatal(err)
	}
	host, _ := os.Hostname()
	cmd := exec.Command("/bin/true")
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot spawn probe process: %v", err)
	}
	deadPid := cmd.Process.Pid
	cmd.Wait()
	deadOwner := Owner{Host: host, PID: deadPid, Nonce: "boot1"}
	if _, ok, err := c.TryClaim("cell", deadOwner.String(), 10*time.Hour); err != nil || !ok {
		t.Fatalf("seed claim = %v, %v", ok, err)
	}
	l, ok, err := c.TryClaim("cell", NewOwner().String(), time.Minute)
	if err != nil || !ok {
		t.Fatalf("fast reclaim of dead holder = %v, %v", ok, err)
	}
	if events.count(EvFastReclaim) != 1 {
		t.Fatalf("EvFastReclaim = %d, want 1", events.count(EvFastReclaim))
	}
	if l.Epoch() != 2 {
		t.Fatalf("reclaimed epoch = %d, want 2", l.Epoch())
	}
	// A live same-host holder (this test process) must NOT be reclaimed.
	dir2 := t.TempDir()
	c2, err := OpenClaimsWith(dir2, ClaimOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c2.TryClaim("cell", NewOwner().String(), time.Hour); err != nil || !ok {
		t.Fatalf("claim = %v, %v", ok, err)
	}
	if _, ok, err := c2.TryClaim("cell", "contender", time.Hour); err != nil || ok {
		t.Fatalf("live same-host holder reclaimed = %v, %v", ok, err)
	}
}

// TestCorruptLeaseQuarantined: torn lease records are renamed to
// .corrupt-* sidecars (observable post-mortem) rather than silently
// treated as expired, and the claim still proceeds.
func TestCorruptLeaseQuarantined(t *testing.T) {
	dir := t.TempDir()
	events := newEventLog()
	c, err := OpenClaimsWith(dir, ClaimOptions{Observe: events.note})
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte("{torn json")
	if err := os.WriteFile(c.leasePath("cell"), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	l, ok, err := c.TryClaim("cell", "w1", time.Hour)
	if err != nil || !ok {
		t.Fatalf("claim over corrupt lease = %v, %v", ok, err)
	}
	if events.count(EvCorrupt) != 1 {
		t.Fatalf("EvCorrupt = %d, want 1", events.count(EvCorrupt))
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "cell.lease.corrupt-*"))
	if len(matches) != 1 {
		t.Fatalf("quarantine sidecars = %v, want exactly 1", matches)
	}
	kept, err := os.ReadFile(matches[0])
	if err != nil || string(kept) != string(garbage) {
		t.Fatalf("quarantined bytes = %q, %v", kept, err)
	}
	l.Release()
	// An empty (zero-byte) record is torn media too.
	if err := os.WriteFile(c.leasePath("cell"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.TryClaim("cell", "w1", time.Hour); err != nil || !ok {
		t.Fatalf("claim over empty lease = %v, %v", ok, err)
	}
	if events.count(EvCorrupt) != 2 {
		t.Fatalf("EvCorrupt after empty record = %d, want 2", events.count(EvCorrupt))
	}
}

// TestPathologicalChurnExit pins the 16-attempt bound: a name whose
// record perpetually reads as vanished while the file exists (so every
// create loses) makes TryClaim give up with (false, nil) — "held
// elsewhere", not an error and not a hang.
func TestPathologicalChurnExit(t *testing.T) {
	dir := t.TempDir()
	var reads int
	c, err := OpenClaimsWith(dir, ClaimOptions{
		Hook: func(op, path string) error {
			if op == "lease.read" {
				reads++
				return os.ErrNotExist
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A real record occupies the name, so every fresh create loses the
	// link race while every read reports it vanished — maximal churn.
	blocker, err := OpenClaims(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := blocker.TryClaim("cell", "blocker", time.Hour); err != nil || !ok {
		t.Fatalf("blocker claim = %v, %v", ok, err)
	}
	l, ok, err := c.TryClaim("cell", "churner", time.Hour)
	if err != nil || ok || l != nil {
		t.Fatalf("pathological churn = %v, %v, %v; want (nil, false, nil)", l, ok, err)
	}
	if reads != 16 {
		t.Fatalf("attempts = %d, want 16", reads)
	}
}

// TestTransientIORetry: seeded fault injection of NFS-style blips
// (ESTALE, EIO) on lease reads is absorbed by the bounded retry policy.
func TestTransientIORetry(t *testing.T) {
	dir := t.TempDir()
	events := newEventLog()
	var mu sync.Mutex
	blips := map[string]int{}
	hook := func(op, path string) error {
		if op != "lease.read" && op != "lease.create" {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		blips[op]++
		if blips[op] <= 2 {
			if blips[op] == 1 {
				return syscall.ESTALE
			}
			return syscall.EIO
		}
		return nil
	}
	c, err := OpenClaimsWith(dir, ClaimOptions{
		Hook:    hook,
		Observe: events.note,
		Retry:   RetryPolicy{Attempts: 4, Backoff: time.Nanosecond, Seed: 7, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := c.TryClaim("cell", "w1", time.Hour)
	if err != nil || !ok {
		t.Fatalf("claim through blips = %v, %v", ok, err)
	}
	if got := events.count(EvIORetry); got < 3 {
		t.Fatalf("EvIORetry = %d, want >= 3", got)
	}
	l.Release()
	// Exhausted budget surfaces the error instead of spinning.
	c2, err := OpenClaimsWith(dir, ClaimOptions{
		Hook:  func(op, path string) error { return syscall.ESTALE },
		Retry: RetryPolicy{Attempts: 3, Backoff: time.Nanosecond, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.TryClaim("cell", "w1", time.Hour); !errors.Is(err, syscall.ESTALE) {
		t.Fatalf("exhausted retries = %v, want ESTALE", err)
	}
}

// TestVerifyFencing pins Lease.Verify across the lease lifecycle: live
// claim verifies, stolen claim fences, and — via the epoch floor — a
// claim superseded by a steal+release chain still fences even with no
// lease record on disk.
func TestVerifyFencing(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c, err := OpenClaimsWith(dir, ClaimOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	victim, ok, err := c.TryClaim("cell", "victim", time.Minute)
	if err != nil || !ok {
		t.Fatalf("claim = %v, %v", ok, err)
	}
	if err := victim.Verify(); err != nil {
		t.Fatalf("live Verify = %v", err)
	}
	clk.Advance(time.Hour)
	thief, ok, err := c.TryClaim("cell", "thief", time.Minute)
	if err != nil || !ok {
		t.Fatalf("steal = %v, %v", ok, err)
	}
	verr := victim.Verify()
	if !errors.Is(verr, ErrFenced) {
		t.Fatalf("stolen Verify = %v, want ErrFenced", verr)
	}
	var fe *FencedError
	if !errors.As(verr, &fe) || fe.NewerEpoch != thief.Epoch() || fe.Holder != "thief" {
		t.Fatalf("FencedError detail = %+v", fe)
	}
	if err := thief.Verify(); err != nil {
		t.Fatalf("thief Verify = %v", err)
	}
	// Thief completes and releases: no lease record remains, but the
	// floor still fences the zombie.
	thief.Release()
	if err := victim.Verify(); !errors.Is(err, ErrFenced) {
		t.Fatalf("Verify after steal+release = %v, want ErrFenced", err)
	}
	// The thief itself, post-release, still verifies clean (floor == its
	// epoch): release does not fence the releaser.
	if err := thief.Verify(); err != nil {
		t.Fatalf("thief Verify after own release = %v", err)
	}
}

// TestEpochMonotonicAcrossRelease: epochs strictly increase through
// claim/release/claim/steal chains — the property fencing rests on.
func TestEpochMonotonicAcrossRelease(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c, err := OpenClaimsWith(dir, ClaimOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		l, ok, err := c.TryClaim("cell", fmt.Sprintf("w%d", i), time.Minute)
		if err != nil || !ok {
			t.Fatalf("claim %d = %v, %v", i, ok, err)
		}
		if l.Epoch() <= last {
			t.Fatalf("epoch %d after %d: not monotonic", l.Epoch(), last)
		}
		last = l.Epoch()
		if i%2 == 0 {
			l.Release()
		} else {
			clk.Advance(time.Hour) // leave it to be stolen next iteration
		}
	}
}

// TestPutVerifyFenced: a fenced writer is rejected before the
// byte-verify path — a divergent zombie payload becomes a FencedError,
// not a determinism ConflictError, and leaves no .conflict sidecar.
func TestPutVerifyFenced(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutVerify("k", []byte("legit")); err != nil {
		t.Fatal(err)
	}
	fence := func() error { return &FencedError{Name: "k", Epoch: 1, NewerEpoch: 2, Holder: "thief"} }
	err = s.PutVerifyFenced("k", []byte("ZOMBIE-DIVERGENT"), fence)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced divergent put = %v, want ErrFenced", err)
	}
	var ce *ConflictError
	if errors.As(err, &ce) {
		t.Fatal("fenced put misclassified as determinism conflict")
	}
	if got, _ := s.Get("k"); string(got) != "legit" {
		t.Fatalf("store clobbered: %q", got)
	}
	if matches, _ := filepath.Glob(filepath.Join(s.Dir(), "*.conflict")); len(matches) != 0 {
		t.Fatalf("fenced put left conflict sidecars: %v", matches)
	}
	// Identical bytes are fenced just as hard: the fence outranks the
	// byte-identical fast path, so double-publish is observable.
	if err := s.PutVerifyFenced("k", []byte("legit"), fence); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced identical put = %v, want ErrFenced", err)
	}
	// A clean fence passes through to normal PutVerify semantics.
	if err := s.PutVerifyFenced("k2", []byte("v"), func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("k2"); string(got) != "v" {
		t.Fatalf("clean fenced put lost: %q", got)
	}
}

// TestHolderUnderChurn hammers Holder while claims, steals, renews, and
// releases churn concurrently: it must only ever report a coherent
// owner from the contender set, never an error-state tear (run under
// -race in CI).
func TestHolderUnderChurn(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenClaims(dir)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	const workers = 4
	for i := 0; i < workers; i++ {
		valid[fmt.Sprintf("churn-w%d", i)] = true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			owner := fmt.Sprintf("churn-w%d", id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				l, ok, err := c.TryClaim("cell", owner, time.Millisecond)
				if err != nil {
					t.Errorf("churn claim: %v", err)
					return
				}
				if !ok {
					continue
				}
				_ = l.Renew(time.Millisecond)
				if id%2 == 0 {
					l.Release()
				} // odd workers abandon: the lease expires and is stolen
			}
		}(i)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		owner, _, present := c.Holder("cell")
		if present && !valid[owner] && !strings.HasPrefix(owner, "churn-w") {
			t.Fatalf("Holder reported stranger %q", owner)
		}
	}
	close(stop)
	wg.Wait()
	// The directory must hold no stranded tombstones or quarantine files
	// after churn — only the lease/heartbeat/floor working set.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		n := e.Name()
		if strings.Contains(n, ".stale-") || strings.Contains(n, ".rel-") || strings.Contains(n, ".corrupt-") {
			t.Fatalf("stranded sidecar after churn: %s", n)
		}
	}
}
