package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPutVerifyConcurrentDivergent hammers N writers racing divergent
// payloads at the same key and requires exactly-one-winner semantics:
// one writer succeeds, every other writer reports *ConflictError, and the
// committed entry holds the winner's bytes unchanged forever after. The
// old check-then-act implementation (Get, compare, rename) let two
// divergent writers both "succeed" with the last rename silently winning,
// which destroyed the determinism-violation signal PutVerify exists for.
func TestPutVerifyConcurrentDivergent(t *testing.T) {
	for round := 0; round < 20; round++ {
		t.Run(fmt.Sprintf("round-%d", round), func(t *testing.T) {
			t.Parallel()
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			const writers = 8
			payload := func(i int) []byte { return []byte(fmt.Sprintf("payload-from-writer-%d", i)) }

			errs := make([]error, writers)
			var start, done sync.WaitGroup
			start.Add(1)
			done.Add(writers)
			for i := 0; i < writers; i++ {
				go func(i int) {
					defer done.Done()
					start.Wait()
					errs[i] = s.PutVerify("k", payload(i))
				}(i)
			}
			start.Done()
			done.Wait()

			var winners []int
			for i, err := range errs {
				if err == nil {
					winners = append(winners, i)
					continue
				}
				var ce *ConflictError
				if !errors.As(err, &ce) {
					t.Fatalf("writer %d: err = %v, want nil or *ConflictError", i, err)
				}
			}
			if len(winners) != 1 {
				t.Fatalf("winners = %v, want exactly one", winners)
			}
			got, ok := s.Get("k")
			if !ok || !bytes.Equal(got, payload(winners[0])) {
				t.Fatalf("entry = %q ok=%v, want winner %d's bytes", got, ok, winners[0])
			}
		})
	}
}

// TestPutVerifyEntryNeverChangesAfterCommit interleaves one committed
// entry with a stream of divergent PutVerify attempts and concurrent
// readers: once any writer has succeeded, every read must return the
// winner's exact bytes — no torn, partial, or replaced content.
func TestPutVerifyEntryNeverChangesAfterCommit(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("the-committed-artifact")
	if err := s.PutVerify("k", want); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := s.PutVerify("k", []byte(fmt.Sprintf("divergent-%d", i)))
				var ce *ConflictError
				if !errors.As(err, &ce) {
					t.Errorf("divergent PutVerify = %v, want *ConflictError", err)
					return
				}
			}
		}(i)
	}
	hash := KeyHash("k")
	for i := 0; i < 500; i++ {
		if got, ok := s.Get("k"); !ok || !bytes.Equal(got, want) {
			t.Fatalf("read %d: Get = %q ok=%v, want committed bytes", i, got, ok)
		}
		if got, ok := s.GetHash(hash); !ok || !bytes.Equal(got, want) {
			t.Fatalf("read %d: GetHash = %q ok=%v, want committed bytes", i, got, ok)
		}
	}
	close(stop)
	wg.Wait()
}

// TestReadersSeeNothingOrComplete races readers against first-commit
// writers across many fresh keys: every Get/GetHash observation must be
// a clean miss or the complete artifact — the no-torn-reads contract the
// serving layer's GET /v1/results/{cachekey} depends on.
func TestReadersSeeNothingOrComplete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 64
	blob := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB, big enough to tear

	var wg sync.WaitGroup
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := s.PutVerify(key, blob); err != nil {
				t.Errorf("PutVerify(%s) = %v", key, err)
			}
		}()
		go func() {
			defer wg.Done()
			hash := KeyHash(key)
			for {
				if got, ok := s.GetHash(hash); ok {
					if !bytes.Equal(got, blob) {
						t.Errorf("GetHash(%s): torn read, %d bytes", key, len(got))
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := s.Len(); n != keys {
		t.Fatalf("Len = %d, want %d", n, keys)
	}
}

// TestGetHashRejectsNonHashNames pins the traversal gate: only 64-char
// lowercase-hex names ever reach the filesystem.
func TestGetHashRejectsNonHashNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"",
		"..",
		"../../etc/passwd",
		"short",
		strings.Repeat("g", 64),       // right length, not hex
		strings.ToUpper(KeyHash("k")), // uppercase rejected: names are lowercase
		KeyHash("k") + "x",            // too long
		strings.Repeat("a", 63) + string(rune(0)), // embedded NUL
	} {
		if _, ok := s.GetHash(bad); ok {
			t.Errorf("GetHash(%q) = ok, want miss", bad)
		}
	}
	if got, ok := s.GetHash(KeyHash("k")); !ok || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("GetHash(valid) = %q ok=%v", got, ok)
	}
}

// TestHashesListsEntriesOnly: sidecars (.conflict, temp files) and
// foreign files never appear in the read-side listing, and the listing is
// sorted.
func TestHashesListsEntriesOnly(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Hashes(); len(got) != 0 {
		t.Fatalf("empty store Hashes = %v", got)
	}
	keys := []string{"a", "b", "c"}
	want := map[string]bool{}
	for _, k := range keys {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
		want[KeyHash(k)] = true
	}
	// A divergent PutVerify leaves a .conflict sidecar.
	err = s.PutVerify("a", []byte("DIFFERENT"))
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("divergent PutVerify = %v", err)
	}
	got := s.Hashes()
	if len(got) != len(keys) {
		t.Fatalf("Hashes = %v, want %d entries", got, len(keys))
	}
	for i, h := range got {
		if !want[h] {
			t.Errorf("unexpected hash %s", h)
		}
		if i > 0 && got[i-1] >= h {
			t.Errorf("Hashes not sorted: %v", got)
		}
	}
}

// TestTryClaimContendedMutualExclusion hammers live-lease claims from
// many goroutines and requires at most one holder at any instant. The
// old createExcl made the lease name visible empty between O_CREATE and
// the record write; a contender reading that window deemed the lease
// corrupt ("treated as expired"), stole it by rename, and claimed —
// leaving two workers each holding the same cell. Staging the record in
// a temp file and link(2)ing it into place closes the window: the name
// either does not exist or holds a complete record.
func TestTryClaimContendedMutualExclusion(t *testing.T) {
	c, err := OpenClaims(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var holders atomic.Int32
	var violations atomic.Int32
	var claims atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := fmt.Sprintf("w%d", w)
			for i := 0; i < 200; i++ {
				l, ok, err := c.TryClaim("cell", owner, time.Hour)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					continue
				}
				claims.Add(1)
				if n := holders.Add(1); n != 1 {
					violations.Add(1)
				}
				holders.Add(-1)
				l.Release()
			}
		}(w)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d instants with two concurrent lease holders", v)
	}
	if claims.Load() == 0 {
		t.Fatal("no goroutine ever won the claim; test exercised nothing")
	}
}
