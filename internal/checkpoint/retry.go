package checkpoint

import (
	"errors"
	"fmt"
	"syscall"
	"time"
)

// Shared filesystems fail differently from local disks: NFS handles go
// stale (ESTALE), server hiccups surface as EIO, and signals interrupt
// slow RPC-backed syscalls (EINTR) — all without the underlying file
// being gone or the mount being dead. This file gives the coordination
// layer one vocabulary for those blips: a typed transient-error
// classifier, a bounded exponential-backoff retry policy with seeded
// jitter, and an injectable fault hook so tests drive the exact same
// code paths a flaky NFS server would, deterministically.

// IsTransientIO reports whether err looks like a transient shared-
// filesystem blip worth retrying: stale NFS handles, interrupted
// syscalls, I/O errors, and temporary resource exhaustion. Permanent
// outcomes (ENOENT, EEXIST, permission errors) are never transient —
// they are protocol states the lease/store machinery decides on.
func IsTransientIO(err error) bool {
	if err == nil {
		return false
	}
	for _, errno := range []syscall.Errno{
		syscall.ESTALE, syscall.EINTR, syscall.EIO, syscall.EAGAIN, syscall.EBUSY,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// FaultHook intercepts a logical filesystem operation before it runs, for
// deterministic fault injection in tests (the internal/fault philosophy
// applied to the coordination layer: everything seeded, nothing
// time-dependent). op names the operation ("lease.read", "store.put",
// ...), path its target. A non-nil return makes the operation fail with
// that error without touching the filesystem; returning a transient errno
// exercises the retry path exactly as a real NFS blip would. Hooks must
// be safe for concurrent use.
type FaultHook func(op, path string) error

// RetryPolicy bounds retries of transient I/O failures: Attempts total
// tries, Backoff doubling per retry with deterministic jitter derived
// from Seed (never wall-clock randomness, so test schedules replay).
type RetryPolicy struct {
	// Attempts is the total try budget per operation (<=0: 1, i.e. no
	// retry).
	Attempts int
	// Backoff is the delay before the first retry, doubled per attempt
	// and capped at 32x. <=0 with Attempts>1 defaults to 5ms.
	Backoff time.Duration
	// Seed feeds the jitter hash; two policies with the same seed retry
	// on identical schedules.
	Seed uint64
	// Sleep overrides time.Sleep (tests pass a no-op or a virtual clock).
	Sleep func(time.Duration)
	// OnRetry, when non-nil, observes every retry (telemetry counters).
	OnRetry func(op string, attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	if p.Backoff <= 0 {
		p.Backoff = 5 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// jitter derives a deterministic delay perturbation in [0, base/2) from
// (seed, op, attempt) via a splitmix64 round — stateless, so concurrent
// retriers never contend on an RNG.
func jitter(seed uint64, op string, attempt int, base time.Duration) time.Duration {
	x := seed ^ uint64(attempt)*0x9E3779B97F4A7C15
	for i := 0; i < len(op); i++ {
		x = (x ^ uint64(op[i])) * 0xBF58476D1CE4E5B9
	}
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if base <= 1 {
		return 0
	}
	return time.Duration(x % uint64(base/2+1))
}

// ioPolicy is the retry+hook bundle every ClaimDir/Store filesystem
// operation routes through.
type ioPolicy struct {
	retry   RetryPolicy
	hook    FaultHook
	observe func(event string)
}

func (io ioPolicy) note(event string) {
	if io.observe != nil {
		io.observe(event)
	}
}

// do runs fn as logical operation op on path under the policy: the fault
// hook fires before each try, transient failures back off and retry
// within the attempt budget, and anything else returns immediately.
func (io ioPolicy) do(op, path string, fn func() error) error {
	p := io.retry.withDefaults()
	delay := p.Backoff
	var err error
	for attempt := 1; ; attempt++ {
		err = nil
		if io.hook != nil {
			err = io.hook(op, path)
		}
		if err == nil {
			err = fn()
		}
		if err == nil || !IsTransientIO(err) || attempt >= p.Attempts {
			return err
		}
		io.note(EvIORetry)
		if p.OnRetry != nil {
			p.OnRetry(op, attempt, err)
		}
		p.Sleep(delay + jitter(p.Seed, op, attempt, delay))
		if delay < 32*p.Backoff {
			delay *= 2
		}
	}
}

// Observable coordination events, emitted via ClaimOptions.Observe (the
// shard executor maps them onto telemetry counters).
const (
	// EvClaim: a lease was acquired (fresh claim or successful steal).
	EvClaim = "lease.claim"
	// EvSteal: an expired lease was stolen past its skew-grace deadline.
	EvSteal = "lease.steal"
	// EvFastReclaim: a same-host lease whose holder pid is provably dead
	// was reclaimed without waiting out the deadline.
	EvFastReclaim = "lease.fast-reclaim"
	// EvCorrupt: an unreadable/torn lease record was quarantined to a
	// .corrupt-* file instead of being silently treated as expired.
	EvCorrupt = "lease.corrupt"
	// EvReleaseLost: a Release found its claim already superseded (the
	// stale-holder no-op path).
	EvReleaseLost = "lease.release-lost"
	// EvIORetry: a transient I/O failure was retried.
	EvIORetry = "io.retry"
)

// ErrFenced is the sentinel all fencing rejections unwrap to: the writer
// holds a lease epoch that is no longer the resource's current claim, so
// its publication must not land. Test with errors.Is(err, ErrFenced).
var ErrFenced = errors.New("checkpoint: lease epoch fenced by a newer claim")

// FencedError reports a fenced write or a superseded lease in detail.
type FencedError struct {
	// Name is the leased resource (cell hash).
	Name string
	// Epoch is the writer's stale claim epoch.
	Epoch uint64
	// NewerEpoch is the epoch that fenced it (0 when only the floor
	// record proved supersession).
	NewerEpoch uint64
	// Holder is the superseding claim's owner, when known.
	Holder string
}

func (e *FencedError) Error() string {
	who := e.Holder
	if who == "" {
		who = "(released)"
	}
	return fmt.Sprintf("checkpoint: claim on %s at epoch %d fenced by epoch %d held by %s",
		e.Name, e.Epoch, e.NewerEpoch, who)
}

// Is makes errors.Is(err, ErrFenced) match every FencedError.
func (e *FencedError) Is(target error) bool { return target == ErrFenced }
