// Package core assembles complete simulated systems — engine, physical
// memory, page table, swap device, replacement policy, memory manager,
// workload threads — and runs single characterization trials. It is the
// heart of the reproduction: everything the experiment harness and the
// public API do goes through RunTrial.
package core

import (
	"fmt"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
	"mglrusim/internal/swap"
	"mglrusim/internal/vmm"
	"mglrusim/internal/workload"
)

// SwapKind selects the swap medium.
type SwapKind int

const (
	// SwapSSD is the paper's millisecond-class SSD.
	SwapSSD SwapKind = iota
	// SwapZRAM is the paper's compressed in-memory device, a proxy for
	// remote/disaggregated memory tiers.
	SwapZRAM
)

// String implements fmt.Stringer.
func (k SwapKind) String() string {
	if k == SwapZRAM {
		return "zram"
	}
	return "ssd"
}

// SystemConfig describes the machine surrounding the workload.
type SystemConfig struct {
	// CPUs is the number of hardware contexts (the paper's testbed
	// exposes 12).
	CPUs int
	// Ratio is memory capacity as a fraction of the workload footprint
	// (the paper sweeps 0.5, 0.75, 0.9).
	Ratio float64
	// Swap selects the medium.
	Swap SwapKind
	// SSD and ZRAM parameterize the respective devices.
	SSD swap.SSDConfig
	// ZRAM parameterizes the compressed device.
	ZRAM swap.ZRAMConfig
	// VMM tunes the memory manager.
	VMM vmm.Config
	// FlushCPU is the workload interpreter's CPU accumulation threshold:
	// accumulated per-access compute is charged to the engine in batches
	// of roughly this size.
	FlushCPU sim.Duration
}

// DefaultSystemConfig mirrors the paper's testbed at 50% capacity with
// SSD swap.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		CPUs:     12,
		Ratio:    0.5,
		Swap:     SwapSSD,
		SSD:      swap.DefaultSSDConfig(),
		ZRAM:     swap.DefaultZRAMConfig(),
		VMM:      vmm.DefaultConfig(),
		FlushCPU: 50 * sim.Microsecond,
	}
}

// PolicyFactory builds a fresh policy instance for one trial.
type PolicyFactory func() policy.Policy

// Metrics is everything measured in one trial.
type Metrics struct {
	// Runtime is the virtual wall-clock of the whole execution.
	Runtime sim.Time
	// AppCPU is total CPU work charged by workload threads.
	AppCPU sim.Duration
	// Counters are the memory manager's fault-path counters.
	Counters vmm.Counters
	// Policy are the replacement policy's counters.
	Policy policy.Stats
	// Device are the swap device's counters.
	Device swap.Stats
	// ReadLat / WriteLat hold per-request latencies (request-marking
	// workloads only).
	ReadLat, WriteLat *stats.LatencyRecorder
	// FootprintPages and CapacityPages record the memory geometry.
	FootprintPages, CapacityPages int
	// SegmentFaults attributes major faults to address-space segments
	// (populated when the workload implements workload.Segmented).
	SegmentFaults map[string]uint64
}

// Faults is the headline fault count the paper plots.
func (m Metrics) Faults() float64 { return float64(m.Counters.TotalFaults()) }

// RuntimeSeconds is the headline runtime the paper plots.
func (m Metrics) RuntimeSeconds() float64 { return m.Runtime.Seconds() }

// RunTrial executes one complete trial: a fresh system (the simulator
// analogue of the paper's reboot-per-execution), the full workload, and a
// metrics harvest. workloadSeed fixes the request/plan content (identical
// across trials of a configuration); systemSeed varies per trial and
// drives everything nondeterministic in the surrounding system —
// scheduling interleave, bloom hashing, device jitter.
func RunTrial(w workload.Workload, mk PolicyFactory, sys SystemConfig, workloadSeed, systemSeed uint64) (Metrics, error) {
	return RunTrialObserved(w, mk, sys, workloadSeed, systemSeed, 0, nil)
}

// Observer receives periodic samples of the live system during a trial;
// visualization tools use it to watch list/generation occupancy evolve.
type Observer func(now sim.Time, pol policy.Policy, mgr *vmm.Manager)

// RunTrialObserved is RunTrial with a sampling hook invoked every
// sampleEvery of virtual time (0 or nil observer disables sampling).
func RunTrialObserved(w workload.Workload, mk PolicyFactory, sys SystemConfig,
	workloadSeed, systemSeed uint64, sampleEvery sim.Duration, obs Observer) (Metrics, error) {
	if sys.CPUs <= 0 {
		return Metrics{}, fmt.Errorf("core: CPUs must be positive")
	}
	if sys.Ratio <= 0 || sys.Ratio > 1.5 {
		return Metrics{}, fmt.Errorf("core: implausible capacity ratio %v", sys.Ratio)
	}
	if sys.FlushCPU <= 0 {
		sys.FlushCPU = 50 * sim.Microsecond
	}

	eng := sim.NewEngine(sys.CPUs)
	sysRNG := sim.NewRNG(systemSeed)

	table := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(table)
	footprint := w.FootprintPages()
	capacity := int(float64(footprint) * sys.Ratio)
	if capacity < 16 {
		capacity = 16
	}
	memory := mem.New(capacity)

	var dev swap.Device
	switch sys.Swap {
	case SwapZRAM:
		dev = swap.NewZRAM(sys.ZRAM, sysRNG.Stream(1), w.ContentClass)
	default:
		dev = swap.NewSSD(sys.SSD, eng, sysRNG.Stream(1))
	}

	pol := mk()
	mgr := vmm.New(sys.VMM, eng, memory, table, dev, pol, sysRNG.Stream(2))

	// The plan RNG is fixed per configuration ("otherwise identical
	// executions"); the trial RNG drives dynamic task scheduling.
	streams := w.Threads(sim.NewRNG(workloadSeed), sysRNG.Stream(3))
	barrier := sim.NewBarrier(len(streams))
	readLat := stats.NewLatencyRecorder(1024)
	writeLat := stats.NewLatencyRecorder(1024)

	procs := make([]*sim.Proc, len(streams))
	for i, st := range streams {
		st := st
		procs[i] = eng.Spawn(fmt.Sprintf("app-%d", i), false, func(v *sim.Env) {
			runThread(v, st, mgr, barrier, sys.FlushCPU, readLat, writeLat)
		})
	}

	if obs != nil && sampleEvery > 0 {
		eng.Spawn("observer", true, func(v *sim.Env) {
			for {
				obs(v.Now(), pol, mgr)
				v.Sleep(sampleEvery)
			}
		})
	}

	if err := eng.Run(); err != nil {
		return Metrics{}, err
	}
	if err := mgr.AuditErr(); err != nil {
		return Metrics{}, err
	}

	m := Metrics{
		Runtime:        eng.Now(),
		Counters:       mgr.Counters(),
		Policy:         mgr.PolicyStats(),
		Device:         mgr.DeviceStats(),
		ReadLat:        readLat,
		WriteLat:       writeLat,
		FootprintPages: footprint,
		CapacityPages:  capacity,
	}
	for _, p := range procs {
		m.AppCPU += p.CPUTime()
	}
	if seg, ok := w.(workload.Segmented); ok {
		m.SegmentFaults = map[string]uint64{}
		for _, s := range seg.Segments() {
			var total uint64
			for i := 0; i < s.Pages; i++ {
				total += mgr.MajorFaultsAt(s.Page(i))
			}
			m.SegmentFaults[s.Name] = total
		}
	}
	return m, nil
}

// runThread interprets one workload op stream against the memory manager.
// Per-access CPU is accumulated and charged in batches so the hot path
// (resident accesses) touches the engine only at flush points — faults,
// barriers, request boundaries, or when the accumulator fills.
func runThread(v *sim.Env, st workload.Stream, mgr *vmm.Manager, barrier *sim.Barrier,
	flushAt sim.Duration, readLat, writeLat *stats.LatencyRecorder) {
	var acc sim.Duration
	var reqStart sim.Time
	var reqClass workload.ReqClass
	flush := func() {
		if acc > 0 {
			v.Charge(acc)
			acc = 0
		}
	}
	var op workload.Op
	for st.Next(&op) {
		switch op.Kind {
		case workload.OpAccess:
			acc += op.CPU
			if !mgr.TryTouch(op.VPN, op.Write) {
				flush()
				mgr.Fault(v, op.VPN, op.Write)
			} else if acc >= flushAt {
				flush()
			}
		case workload.OpCompute:
			acc += op.CPU
			if acc >= flushAt {
				flush()
			}
		case workload.OpBarrier:
			flush()
			barrier.Await(v)
		case workload.OpReqStart:
			flush()
			reqStart = v.Now()
			reqClass = op.Class
		case workload.OpReqEnd:
			flush()
			lat := int64(v.Now() - reqStart)
			if reqClass == workload.ReqRead {
				readLat.Record(lat)
			} else {
				writeLat.Record(lat)
			}
		}
	}
	flush()
}
