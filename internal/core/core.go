// Package core assembles complete simulated systems — engine, physical
// memory, page table, swap device, replacement policy, memory manager,
// workload threads — and runs single characterization trials. It is the
// heart of the reproduction: everything the experiment harness and the
// public API do goes through RunTrial.
package core

import (
	"fmt"

	"mglrusim/internal/fault"
	"mglrusim/internal/mem"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
	"mglrusim/internal/swap"
	"mglrusim/internal/telemetry"
	"mglrusim/internal/vmm"
	"mglrusim/internal/workload"
)

// SwapKind selects the swap medium.
type SwapKind int

const (
	// SwapSSD is the paper's millisecond-class SSD.
	SwapSSD SwapKind = iota
	// SwapZRAM is the paper's compressed in-memory device, a proxy for
	// remote/disaggregated memory tiers.
	SwapZRAM
)

// String implements fmt.Stringer.
func (k SwapKind) String() string {
	if k == SwapZRAM {
		return "zram"
	}
	return "ssd"
}

// SystemConfig describes the machine surrounding the workload.
type SystemConfig struct {
	// CPUs is the number of hardware contexts (the paper's testbed
	// exposes 12).
	CPUs int
	// Ratio is memory capacity as a fraction of the workload footprint
	// (the paper sweeps 0.5, 0.75, 0.9).
	Ratio float64
	// Swap selects the medium.
	Swap SwapKind
	// SSD and ZRAM parameterize the respective devices.
	SSD swap.SSDConfig
	// ZRAM parameterizes the compressed device.
	ZRAM swap.ZRAMConfig
	// VMM tunes the memory manager.
	VMM vmm.Config
	// FlushCPU is the workload interpreter's CPU accumulation threshold:
	// accumulated per-access compute is charged to the engine in batches
	// of roughly this size.
	FlushCPU sim.Duration
	// Fault is the fault-injection plan (internal/fault). The zero plan
	// installs no wrapper anywhere, keeping un-faulted runs byte-identical
	// to builds without the fault plane.
	Fault fault.Plan
	// Watchdog, when positive, spawns a virtual-time progress watchdog:
	// if the workload completes no accesses for a full window the trial
	// fails with a *LivelockError instead of spinning forever. Off by
	// default — the watchdog is an extra daemon and so perturbs event
	// ordering slightly; enable it when running with fault injection.
	Watchdog sim.Duration
	// RegionPTEs, when positive, is the page-table region fanout the
	// system expects — the one knob region geometry derives from. The
	// workload must have been laid out with the same fanout (the
	// experiment registry derives workload configs from this knob); a
	// mismatch is a configuration error, not a silent re-layout. Zero
	// accepts whatever fanout the workload was built with.
	RegionPTEs int
	// PageTable selects the page-table storage layout (auto, legacy AoS,
	// or packed SoA bit planes). The zero value LayoutAuto picks packed
	// whenever the fanout allows it.
	PageTable pagetable.Layout
	// PageCache, when Enabled, gives file-backed mappings a real page
	// cache: reads come from a dedicated file device instead of swap,
	// dirty pages write back through a clustered flusher daemon, and
	// evictions leave refault-tracking shadow entries. The zero value
	// (disabled) keeps the historical behaviour where file-backed PTEs
	// swap like anon memory.
	PageCache pagecache.Config
}

// DefaultSystemConfig mirrors the paper's testbed at 50% capacity with
// SSD swap.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		CPUs:     12,
		Ratio:    0.5,
		Swap:     SwapSSD,
		SSD:      swap.DefaultSSDConfig(),
		ZRAM:     swap.DefaultZRAMConfig(),
		VMM:      vmm.DefaultConfig(),
		FlushCPU: 50 * sim.Microsecond,
	}
}

// PolicyFactory builds a fresh policy instance for one trial.
type PolicyFactory func() policy.Policy

// Metrics is everything measured in one trial.
type Metrics struct {
	// Runtime is the virtual wall-clock of the whole execution.
	Runtime sim.Time
	// AppCPU is total CPU work charged by workload threads.
	AppCPU sim.Duration
	// Counters are the memory manager's fault-path counters.
	Counters vmm.Counters
	// Policy are the replacement policy's counters.
	Policy policy.Stats
	// Device are the swap device's counters.
	Device swap.Stats
	// ReadLat / WriteLat hold per-request latencies (request-marking
	// workloads only).
	ReadLat, WriteLat *stats.LatencyRecorder
	// FootprintPages and CapacityPages record the memory geometry.
	FootprintPages, CapacityPages int
	// SegmentFaults attributes major faults to address-space segments
	// (populated when the workload implements workload.Segmented).
	SegmentFaults map[string]uint64
	// FaultLat holds per-major-fault service times (trap to PTE install,
	// including device time and injected retries) — the fault-latency CDF
	// the degraded-device sweep plots.
	FaultLat *stats.LatencyRecorder
	// Injected counts what the fault plane injected at the swap device
	// (zero when the plan is disabled or targets only the file device).
	Injected fault.Stats
	// FileInjected counts what the fault plane injected at the file
	// backing device (zero unless a file-targeted plan ran in page-cache
	// mode).
	FileInjected fault.Stats
	// FileCache are the page cache's counters (zero unless page-cache
	// mode ran).
	FileCache pagecache.Stats
	// FileDevice are the file backing device's counters (zero unless
	// page-cache mode ran).
	FileDevice swap.Stats
}

// The page cache detects recoverable-I/O devices structurally (it cannot
// import the fault package); this pin keeps the wrapper satisfying that
// contract.
var _ pagecache.FallibleDevice = (*fault.Device)(nil)

// LivelockError reports a trial whose workload made no progress for a
// full watchdog window: the virtual system is livelocked (or stalled past
// any plausible I/O time) and would otherwise simulate forever. The
// watchdog daemon panics it; the engine surfaces it as the trial error,
// where the experiment harness classifies it as retryable.
type LivelockError struct {
	At     sim.Time
	Window sim.Duration
}

// Error implements error.
func (e *LivelockError) Error() string {
	return fmt.Sprintf("core: no workload progress for %v (livelock watchdog fired at %v)", sim.Time(e.Window), e.At)
}

// Faults is the headline fault count the paper plots.
func (m Metrics) Faults() float64 { return float64(m.Counters.TotalFaults()) }

// RuntimeSeconds is the headline runtime the paper plots.
func (m Metrics) RuntimeSeconds() float64 { return m.Runtime.Seconds() }

// RunTrial executes one complete trial: a fresh system (the simulator
// analogue of the paper's reboot-per-execution), the full workload, and a
// metrics harvest. workloadSeed fixes the request/plan content (identical
// across trials of a configuration); systemSeed varies per trial and
// drives everything nondeterministic in the surrounding system —
// scheduling interleave, bloom hashing, device jitter.
func RunTrial(w workload.Workload, mk PolicyFactory, sys SystemConfig, workloadSeed, systemSeed uint64) (Metrics, error) {
	return RunTrialObserved(w, mk, sys, workloadSeed, systemSeed, 0, nil)
}

// Observer receives periodic samples of the live system during a trial;
// visualization tools use it to watch list/generation occupancy evolve.
type Observer func(now sim.Time, pol policy.Policy, mgr *vmm.Manager)

// TrialOptions bundles the per-trial hooks that are not part of the
// system's identity: SystemConfig stays plain values (it is fingerprinted
// and persisted by the experiment harness), so anything carrying pointers
// or callbacks rides here instead.
type TrialOptions struct {
	// SampleEvery and Observer enable the legacy polling hook.
	SampleEvery sim.Duration
	Observer    Observer
	// Telemetry, when non-nil, is threaded through the whole stack: the
	// manager, policy, swap devices, and fault plane record spans on it, a
	// sampler daemon snapshots its gauges every Telemetry.MetricsInterval,
	// and workload request/barrier boundaries become events. Telemetry
	// never charges simulated CPU, but its daemon (like the watchdog) is
	// one more proc in the event order: traced runs are deterministic
	// against other traced runs, not byte-identical to untraced ones.
	Telemetry *telemetry.Tracer
}

// RunTrialObserved is RunTrial with a sampling hook invoked every
// sampleEvery of virtual time (0 or nil observer disables sampling).
func RunTrialObserved(w workload.Workload, mk PolicyFactory, sys SystemConfig,
	workloadSeed, systemSeed uint64, sampleEvery sim.Duration, obs Observer) (Metrics, error) {
	return RunTrialOpts(w, mk, sys, workloadSeed, systemSeed,
		TrialOptions{SampleEvery: sampleEvery, Observer: obs})
}

// FanoutMismatchError reports a system configured for one page-table
// region fanout driving a workload laid out with another — a
// configuration error (both derive from the same RegionPTEs knob), typed
// so validation layers can classify it as a client mistake rather than a
// harness failure.
type FanoutMismatchError struct {
	Want     int    // the system's RegionPTEs
	Have     int    // the workload's layout fanout
	Workload string // workload name
}

func (e *FanoutMismatchError) Error() string {
	return fmt.Sprintf("core: region fanout mismatch: system wants %d-PTE regions but workload %q was laid out with %d",
		e.Want, e.Workload, e.Have)
}

// RunTrialOpts is the fully-optioned trial entry point.
func RunTrialOpts(w workload.Workload, mk PolicyFactory, sys SystemConfig,
	workloadSeed, systemSeed uint64, opts TrialOptions) (Metrics, error) {
	sampleEvery, obs := opts.SampleEvery, opts.Observer
	if sys.CPUs <= 0 {
		return Metrics{}, fmt.Errorf("core: CPUs must be positive")
	}
	if sys.Ratio <= 0 || sys.Ratio > 1.5 {
		return Metrics{}, fmt.Errorf("core: implausible capacity ratio %v", sys.Ratio)
	}
	if sys.FlushCPU <= 0 {
		sys.FlushCPU = 50 * sim.Microsecond
	}

	if sys.RegionPTEs > 0 && sys.RegionPTEs != w.RegionPTEs() {
		return Metrics{}, &FanoutMismatchError{Want: sys.RegionPTEs, Have: w.RegionPTEs(), Workload: w.Name()}
	}

	eng := sim.NewEngine(sys.CPUs)
	sysRNG := sim.NewRNG(systemSeed)

	table := pagetable.NewWithLayout(w.TableRegions(), w.RegionPTEs(), sys.PageTable)
	w.Layout(table)
	footprint := w.FootprintPages()
	capacity := int(float64(footprint) * sys.Ratio)
	if capacity < 16 {
		capacity = 16
	}
	memory := mem.New(capacity)

	var dev swap.Device
	switch sys.Swap {
	case SwapZRAM:
		dev = swap.NewZRAM(sys.ZRAM, sysRNG.Stream(1), w.ContentClass)
	default:
		dev = swap.NewSSD(sys.SSD, eng, sysRNG.Stream(1))
	}

	// The fault wrapper and its RNG streams exist only when the plan
	// injects device faults at this device, so a disabled (or
	// elsewhere-targeted) plan leaves the un-faulted stream sequence —
	// and with it every metric — untouched.
	var fdev *fault.Device
	if sys.Fault.DeviceEnabled() && sys.Fault.TargetsSwap() {
		var backing swap.Device
		if sys.Fault.NeedsBacking() && sys.Swap == SwapZRAM {
			backing = swap.NewSSD(sys.SSD, eng, sysRNG.Stream(4))
		}
		fdev = fault.Wrap(dev, sys.Fault, backing, sysRNG.Stream(5))
		dev = fdev
	}
	if sys.Fault.SwapSlots > 0 {
		sys.VMM.SwapSlots = sys.Fault.SwapSlots
	}

	pol := mk()
	mgr := vmm.New(sys.VMM, eng, memory, table, dev, pol, sysRNG.Stream(2))

	// Page-cache mode: file-backed mappings (derived from the laid-out
	// table) get their own backing device and a writeback flusher. The
	// cache exists only when enabled AND the workload maps file pages, so
	// anon-only runs keep their exact historical event order. A
	// file-targeted fault plan wraps the backing device on its own RNG
	// stream; the cache detects the wrapper (FallibleDevice) and degrades
	// kernel-fashion instead of letting hard errors kill the trial.
	var fc *pagecache.Cache
	var ffdev *fault.Device
	if sys.PageCache.Enabled {
		if spans := fileSpans(table); len(spans) > 0 {
			var filedev swap.Device = swap.NewSSD(sys.PageCache.Backing, eng, sysRNG.Stream(6))
			// The wrapper installs whenever the plan targets the file
			// device, even with all-zero injection configs: an inert
			// wrapper draws no RNG and spawns no procs, so it is
			// byte-invisible (the zero-plan transparency tests pin this),
			// and gating on targeting alone keeps the install decision
			// independent of which knobs the plan happens to set.
			if sys.Fault.TargetsFile() {
				ffdev = fault.Wrap(filedev, sys.Fault, nil, sysRNG.Stream(7))
				filedev = ffdev
			}
			fc = pagecache.New(sys.PageCache, eng, table, memory, filedev, spans)
			mgr.AttachFileCache(fc)
		}
	}

	// Telemetry wiring. Order matters for byte-determinism of the output:
	// gauges and tracks are exported in registration order, so the sequence
	// below (manager, policy, system-level, device-level) is fixed.
	tr := opts.Telemetry
	if tr != nil {
		tr.Bind(eng.Now)
		mgr.SetTracer(tr)
		if reg, ok := pol.(telemetry.Registrant); ok {
			reg.RegisterTelemetry(tr)
		}
		tr.Gauge("policy.evicted", func() int64 { return int64(pol.Stats().Evicted) })
		tr.Gauge("policy.rotated", func() int64 { return int64(pol.Stats().Rotated) })
		tr.Gauge("policy.refaults", func() int64 { return int64(pol.Stats().Refaults) })
		tr.Gauge("policy.pte_scanned", func() int64 { return int64(pol.Stats().PTEScanned) })
		tr.Gauge("policy.regions_scanned", func() int64 { return int64(pol.Stats().RegionsScanned) })
		tr.Gauge("policy.rmap_walks", func() int64 { return int64(pol.Stats().RMapWalks) })
		tr.Gauge("policy.aging_runs", func() int64 { return int64(pol.Stats().AgingRuns) })
		tr.Gauge("policy.scan_cpu_ns", func() int64 { return int64(pol.Stats().ScanCPU) })
		tr.Gauge("dev.reads", func() int64 { return int64(mgr.DeviceStats().Reads) })
		tr.Gauge("dev.writes", func() int64 { return int64(mgr.DeviceStats().Writes) })
		tr.Gauge("dev.write_stalls", func() int64 { return int64(mgr.DeviceStats().WriteStalls) })
		tr.Gauge("dev.writeback_bytes", func() int64 { return int64(mgr.DeviceStats().Writes) * 4096 })
		tr.Gauge("dev.compressed_bytes", func() int64 { return mgr.DeviceStats().CompressedBytes })
		if ts, ok := dev.(swap.TracerSetter); ok {
			ts.SetTracer(tr)
		}
		if fc != nil {
			fc.RegisterTelemetry(tr)
		}
		if ffdev != nil {
			// The file fault wrapper's own lane; it forwards the tracer to
			// the wrapped backing SSD.
			ffdev.SetTracer(tr)
		}
	}

	// The plan RNG is fixed per configuration ("otherwise identical
	// executions"); the trial RNG drives dynamic task scheduling.
	streams := w.Threads(sim.NewRNG(workloadSeed), sysRNG.Stream(3))
	barrier := sim.NewBarrier(len(streams))
	readLat := stats.NewLatencyRecorder(1024)
	writeLat := stats.NewLatencyRecorder(1024)

	procs := make([]*sim.Proc, len(streams))
	for i, st := range streams {
		st := st
		procs[i] = eng.Spawn(fmt.Sprintf("app-%d", i), false, func(v *sim.Env) {
			runThread(v, st, mgr, barrier, sys.FlushCPU, readLat, writeLat, tr)
		})
	}

	if obs != nil && sampleEvery > 0 {
		eng.Spawn("observer", true, func(v *sim.Env) {
			for {
				obs(v.Now(), pol, mgr)
				v.Sleep(sampleEvery)
			}
		})
	}

	if iv := tr.MetricsInterval(); iv > 0 {
		// The counter sampler is a daemon like kswapd: it perturbs event
		// ordering deterministically and charges no CPU.
		eng.Spawn("telemetry", true, func(v *sim.Env) {
			for {
				tr.Sample()
				v.Sleep(iv)
			}
		})
	}

	if sys.Watchdog > 0 {
		window := sys.Watchdog
		eng.Spawn("watchdog", true, func(v *sim.Env) {
			var last uint64
			for {
				v.Sleep(window)
				// Accesses counts completed workload touches; it freezes
				// exactly when every app thread is stuck (reclaim livelock,
				// permanently stalled device). Daemon-only activity like
				// fruitless kswapd bursts deliberately does not count as
				// progress.
				cur := mgr.Counters().Accesses
				if cur == last {
					panic(&LivelockError{At: v.Now(), Window: window})
				}
				last = cur
			}
		})
	}

	if err := eng.Run(); err != nil {
		return Metrics{}, err
	}
	if err := mgr.AuditErr(); err != nil {
		return Metrics{}, err
	}

	m := Metrics{
		Runtime:        eng.Now(),
		Counters:       mgr.Counters(),
		Policy:         mgr.PolicyStats(),
		Device:         mgr.DeviceStats(),
		ReadLat:        readLat,
		WriteLat:       writeLat,
		FaultLat:       mgr.FaultLatencies(),
		FootprintPages: footprint,
		CapacityPages:  capacity,
	}
	if fdev != nil {
		m.Injected = fdev.FaultStats()
	}
	if ffdev != nil {
		m.FileInjected = ffdev.FaultStats()
	}
	if fc != nil {
		m.FileCache = fc.Stats()
		m.FileDevice = fc.DeviceStats()
	}
	for _, p := range procs {
		m.AppCPU += p.CPUTime()
	}
	if seg, ok := w.(workload.Segmented); ok {
		m.SegmentFaults = map[string]uint64{}
		for _, s := range seg.Segments() {
			var total uint64
			for i := 0; i < s.Pages; i++ {
				total += mgr.MajorFaultsAt(s.Page(i))
			}
			m.SegmentFaults[s.Name] = total
		}
	}
	return m, nil
}

// fileSpans derives the page cache's file mappings from the laid-out
// table: maximal contiguous runs of file-backed VPNs, one span per run.
func fileSpans(table *pagetable.Table) []pagecache.FileSpan {
	var spans []pagecache.FileSpan
	pages := table.Pages()
	for vpn := 0; vpn < pages; vpn++ {
		if !table.FileBacked(pagetable.VPN(vpn)) {
			continue
		}
		start := vpn
		for vpn < pages && table.FileBacked(pagetable.VPN(vpn)) {
			vpn++
		}
		spans = append(spans, pagecache.FileSpan{
			Name:  fmt.Sprintf("file-%d", len(spans)),
			Base:  pagetable.VPN(start),
			Pages: vpn - start,
		})
	}
	return spans
}

// runThread interprets one workload op stream against the memory manager.
// Per-access CPU is accumulated and charged in batches so the hot path
// (resident accesses) touches the engine only at flush points — faults,
// barriers, request boundaries, or when the accumulator fills.
func runThread(v *sim.Env, st workload.Stream, mgr *vmm.Manager, barrier *sim.Barrier,
	flushAt sim.Duration, readLat, writeLat *stats.LatencyRecorder, tr *telemetry.Tracer) {
	var acc sim.Duration
	var reqStart sim.Time
	var reqClass workload.ReqClass
	var track telemetry.TrackID
	if tr != nil {
		track = tr.Track(v.Proc().Name())
	}
	flush := func() {
		if acc > 0 {
			v.Charge(acc)
			acc = 0
		}
	}
	var op workload.Op
	for st.Next(&op) {
		switch op.Kind {
		case workload.OpAccess:
			acc += op.CPU
			if !mgr.TryTouch(op.VPN, op.Write) {
				flush()
				mgr.Fault(v, op.VPN, op.Write)
			} else if acc >= flushAt {
				flush()
			}
		case workload.OpCompute:
			acc += op.CPU
			if acc >= flushAt {
				flush()
			}
		case workload.OpBarrier:
			flush()
			if tr != nil {
				// Workload phase boundary: barriers separate the phases of
				// phase-structured workloads (pagerank iterations, tpch query
				// stages).
				tr.Instant(track, "barrier", 0)
			}
			barrier.Await(v)
		case workload.OpReqStart:
			flush()
			reqStart = v.Now()
			reqClass = op.Class
		case workload.OpReqEnd:
			flush()
			lat := int64(v.Now() - reqStart)
			if reqClass == workload.ReqRead {
				readLat.Record(lat)
			} else {
				writeLat.Record(lat)
			}
			if tr != nil {
				name := "req-write"
				if reqClass == workload.ReqRead {
					name = "req-read"
				}
				tr.Emit(track, name, reqStart, lat, lat)
			}
		}
	}
	flush()
}
