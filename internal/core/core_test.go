package core

import (
	"testing"

	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/policy/simple"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload/pagerank"
	"mglrusim/internal/workload/tpch"
	"mglrusim/internal/workload/ycsb"
)

func clockFactory() policy.Policy { return clock.New(clock.DefaultConfig()) }
func mglruFactory() policy.Policy { return mglru.New(mglru.Default()) }

// tinyTPCH keeps core tests fast.
func tinyTPCH() *tpch.TPCH {
	cfg := tpch.DefaultConfig()
	cfg.LineitemPages = 500
	cfg.OrdersPages = 120
	cfg.CustomerPages = 40
	cfg.HashPages = 150
	cfg.InputPages = 32
	cfg.Queries = 2
	return tpch.New(cfg)
}

func tinyYCSB(mix ycsb.Mix) *ycsb.YCSB {
	cfg := ycsb.DefaultConfig(mix)
	cfg.Items = 2000
	cfg.Requests = 8000
	return ycsb.New(cfg)
}

func fastSys() SystemConfig {
	sys := DefaultSystemConfig()
	// Faster device so tests complete quickly.
	sys.SSD.ReadLatency = 500 * sim.Microsecond
	sys.SSD.WriteLatency = 500 * sim.Microsecond
	return sys
}

func TestRunTrialBasics(t *testing.T) {
	m, err := RunTrial(tinyTPCH(), clockFactory, fastSys(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runtime <= 0 {
		t.Fatal("no runtime")
	}
	if m.Counters.TotalFaults() == 0 {
		t.Fatal("no faults at 50% capacity")
	}
	if m.AppCPU <= 0 {
		t.Fatal("no app CPU accounted")
	}
	if m.FootprintPages == 0 || m.CapacityPages >= m.FootprintPages {
		t.Fatalf("geometry wrong: %d/%d", m.CapacityPages, m.FootprintPages)
	}
}

func TestRunTrialDeterministicPerSeed(t *testing.T) {
	a, err := RunTrial(tinyTPCH(), mglruFactory, fastSys(), 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(tinyTPCH(), mglruFactory, fastSys(), 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || a.Counters != b.Counters {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.Runtime, a.Counters, b.Runtime, b.Counters)
	}
}

func TestSystemSeedChangesOutcome(t *testing.T) {
	a, _ := RunTrial(tinyTPCH(), mglruFactory, fastSys(), 5, 1)
	b, _ := RunTrial(tinyTPCH(), mglruFactory, fastSys(), 5, 2)
	if a.Runtime == b.Runtime && a.Counters == b.Counters {
		t.Fatal("system seed has no effect")
	}
}

func TestHigherCapacityFewerFaults(t *testing.T) {
	sys := fastSys()
	sys.Ratio = 0.5
	lo, err := RunTrial(tinyTPCH(), clockFactory, sys, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys.Ratio = 0.9
	hi, err := RunTrial(tinyTPCH(), clockFactory, sys, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Counters.TotalFaults() >= lo.Counters.TotalFaults() {
		t.Fatalf("faults did not drop with capacity: %d -> %d",
			lo.Counters.TotalFaults(), hi.Counters.TotalFaults())
	}
	if hi.Runtime >= lo.Runtime {
		t.Fatalf("runtime did not drop with capacity: %v -> %v", lo.Runtime, hi.Runtime)
	}
}

func TestZRAMFasterThanSSD(t *testing.T) {
	ssdSys := DefaultSystemConfig() // real 7.5ms SSD
	ssd, err := RunTrial(tinyTPCH(), mglruFactory, ssdSys, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	zramSys := DefaultSystemConfig()
	zramSys.Swap = SwapZRAM
	zr, err := RunTrial(tinyTPCH(), mglruFactory, zramSys, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if zr.Runtime >= ssd.Runtime {
		t.Fatalf("zram (%v) not faster than ssd (%v)", zr.Runtime, ssd.Runtime)
	}
	if zr.Device.LifetimeCompressRatio <= 1 {
		t.Fatalf("compress ratio = %v, want > 1", zr.Device.LifetimeCompressRatio)
	}
}

func TestYCSBRecordsLatencies(t *testing.T) {
	m, err := RunTrial(tinyYCSB(ycsb.MixA), clockFactory, fastSys(), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReadLat.Count() == 0 || m.WriteLat.Count() == 0 {
		t.Fatalf("latencies not recorded: r=%d w=%d", m.ReadLat.Count(), m.WriteLat.Count())
	}
	total := m.ReadLat.Count() + m.WriteLat.Count()
	if total != 8000 {
		t.Fatalf("recorded %d requests, want 8000", total)
	}
	if m.ReadLat.Percentile(99) < m.ReadLat.Percentile(50) {
		t.Fatal("tail ordering violated")
	}
}

func TestYCSBMixCNoWriteLatencies(t *testing.T) {
	m, err := RunTrial(tinyYCSB(ycsb.MixC), clockFactory, fastSys(), 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m.WriteLat.Count() != 0 {
		t.Fatalf("mix C recorded %d write requests", m.WriteLat.Count())
	}
}

func TestPageRankRuns(t *testing.T) {
	cfg := pagerank.DefaultConfig()
	cfg.Graph.Vertices = 2048
	cfg.Iterations = 2
	cfg.Threads = 4
	m, err := RunTrial(pagerank.New(cfg), mglruFactory, fastSys(), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.TotalFaults() == 0 {
		t.Fatal("no faults")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	sys := fastSys()
	sys.Ratio = 0
	if _, err := RunTrial(tinyTPCH(), clockFactory, sys, 1, 1); err == nil {
		t.Fatal("zero ratio accepted")
	}
	sys = fastSys()
	sys.CPUs = 0
	if _, err := RunTrial(tinyTPCH(), clockFactory, sys, 1, 1); err == nil {
		t.Fatal("zero CPUs accepted")
	}
}

func TestAllPolicyVariantsComplete(t *testing.T) {
	factories := []PolicyFactory{
		clockFactory,
		mglruFactory,
		func() policy.Policy { return mglru.New(mglru.Gen14()) },
		func() policy.Policy { return mglru.New(mglru.ScanAll()) },
		func() policy.Policy { return mglru.New(mglru.ScanNone()) },
		func() policy.Policy { return mglru.New(mglru.ScanRand(0.5)) },
	}
	w := tinyTPCH()
	for i, mk := range factories {
		if _, err := RunTrial(w, mk, fastSys(), 1, uint64(i)+10); err != nil {
			t.Fatalf("factory %d failed: %v", i, err)
		}
	}
}

func TestMGLRUBeatsFIFOOnSkewedReuse(t *testing.T) {
	// Quality check: on a zipfian-reuse workload, paying for accessed-bit
	// tracking must beat blind FIFO on fault count.
	w := tinyYCSB(ycsb.MixC)
	sys := fastSys()
	fifoM, err := RunTrial(w, func() policy.Policy { return simple.NewFIFO() }, sys, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	mgM, err := RunTrial(w, mglruFactory, sys, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mgM.Counters.TotalFaults() >= fifoM.Counters.TotalFaults() {
		t.Fatalf("mglru faults %d >= fifo faults %d on zipfian reuse",
			mgM.Counters.TotalFaults(), fifoM.Counters.TotalFaults())
	}
}

func TestScanAllRecordsLockContention(t *testing.T) {
	pol := mglru.New(mglru.ScanAll())
	_, err := RunTrial(tinyTPCH(), func() policy.Policy { return pol }, fastSys(), 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	acq, _, _ := pol.LockStats()
	if acq == 0 {
		t.Fatal("no lock activity recorded")
	}
}
