package experiments

import (
	"fmt"
	"sort"
	"sync"

	"mglrusim/internal/core"
	"mglrusim/internal/stats"
)

// CellSpec identifies one (workload, policy, system) series — the unit of
// work the shard executor schedules. Key is the runner's full cache key,
// which is also the checkpoint-store identity the finished series is
// filed under; SeedKey is the narrower human-readable identity trial
// seeds derive from. System is the post-fold configuration (runner-wide
// audit/fault/watchdog options already applied), so re-running the cell
// through any Runner with compatible options reproduces the same Key.
// Cost is the bin-packing estimate from the BENCH-calibrated cost model.
type CellSpec struct {
	Workload string
	Policy   string
	System   core.SystemConfig
	SeedKey  string
	Key      string
	Cost     float64
}

// cellCollector accumulates the distinct cells an enumeration-mode runner
// observes.
type cellCollector struct {
	mu    sync.Mutex
	seen  map[string]bool
	cells []CellSpec
}

func newCellCollector() *cellCollector {
	return &cellCollector{seen: map[string]bool{}}
}

func (c *cellCollector) add(cell CellSpec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[cell.Key] {
		return
	}
	c.seen[cell.Key] = true
	c.cells = append(c.cells, cell)
}

// syntheticSeries stands in for an executed series during enumeration:
// zero-valued trials with live (empty) recorders, enough for figure code
// to compute its (all-zero) statistics without executing — or even
// constructing — anything.
func syntheticSeries(w WorkloadSpec, p PolicySpec, sys core.SystemConfig, trials int) *Series {
	s := &Series{Workload: w.Name, Policy: p.Name, System: sys,
		Trials: make([]core.Metrics, trials)}
	for i := range s.Trials {
		s.Trials[i].ReadLat = stats.NewLatencyRecorder(0)
		s.Trials[i].WriteLat = stats.NewLatencyRecorder(0)
	}
	return s
}

// SortCells orders cells for claim scanning: estimated cost descending
// (longest-processing-time-first, the classic greedy bin-packing order,
// so the most expensive series start first and stragglers are short),
// with key ascending as the deterministic tiebreak every process agrees
// on.
func SortCells(cells []CellSpec) {
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Cost != cells[j].Cost {
			return cells[i].Cost > cells[j].Cost
		}
		return cells[i].Key < cells[j].Key
	})
}

// CellsFor enumerates, without executing a single trial, every distinct
// series the given figure functions would run under opts, returned in
// claim order (SortCells). Enumeration runs the real figure code against
// a collector-mode runner, so the returned set is exactly the execution
// set — there is no second source of truth to drift from the figures.
func CellsFor(opts Options, fns ...FigureFunc) ([]CellSpec, error) {
	opts.Checkpoint, opts.Progress, opts.TraceDir, opts.Veto = nil, nil, "", nil
	r := NewRunner(opts)
	r.collect = newCellCollector()
	for _, fn := range fns {
		if _, err := fn(r); err != nil {
			return nil, fmt.Errorf("experiments: enumerate cells: %w", err)
		}
	}
	cells := r.collect.cells
	SortCells(cells)
	return cells, nil
}

// MatrixCells enumerates the cells RunMatrix(ws, ps, sys) would execute
// under this runner's options, in claim order.
func (r *Runner) MatrixCells(ws []WorkloadSpec, ps []PolicySpec, sys core.SystemConfig) []CellSpec {
	opts := r.opts
	opts.Checkpoint, opts.Progress, opts.TraceDir, opts.Veto = nil, nil, "", nil
	er := NewRunner(opts)
	er.collect = newCellCollector()
	er.RunMatrix(ws, ps, sys) // collect mode cannot fail: nothing executes
	cells := er.collect.cells
	SortCells(cells)
	return cells
}

// Prefiller is the sharded execution strategy: it executes enumerated
// cells ahead of the in-process sweep — typically across worker processes
// sharing the runner's checkpoint store — so the sweep itself resumes
// every cell from disk. internal/shard provides the implementations.
type Prefiller interface {
	Prefill(cells []CellSpec) error
}

// RunMatrixSharded executes the matrix with the Sharded strategy: the
// cell set is enumerated, handed to the Prefiller to execute into the
// shared checkpoint store, and the matrix is then swept normally —
// completed cells resume from the store, quarantined (poison) cells fail
// through Options.Veto as per-cell errors without re-execution, and the
// result degrades gracefully exactly like RunMatrix.
func (r *Runner) RunMatrixSharded(pf Prefiller, ws []WorkloadSpec, ps []PolicySpec, sys core.SystemConfig) (*MatrixResult, error) {
	if r.opts.Checkpoint == nil {
		return nil, fmt.Errorf("experiments: sharded execution requires Options.Checkpoint (the store workers share)")
	}
	if err := pf.Prefill(r.MatrixCells(ws, ps, sys)); err != nil {
		return nil, fmt.Errorf("experiments: sharded prefill: %w", err)
	}
	return r.RunMatrix(ws, ps, sys)
}
