package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/core"
	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
)

// TestCellsForMatchesExecution is the load-bearing coupling test of the
// shard protocol: the keys CellsFor enumerates (what workers claim) must
// be exactly the keys a real run files its results under in the
// checkpoint store (what the final sweep resumes from). A drift between
// the two would make sharded prefill useless — every cell would silently
// re-execute serially.
func TestCellsForMatchesExecution(t *testing.T) {
	opts := Options{Trials: 1, Scale: 0.1, Seed: 0xABC}
	cells, err := CellsFor(opts, Figures["fig1"])
	if err != nil {
		t.Fatal(err)
	}
	// fig1: all 5 registry workloads x {clock, mglru}.
	if len(cells) != 10 {
		t.Fatalf("fig1 enumerates %d cells, want 10", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if cells[i-1].Cost < cells[i].Cost {
			t.Fatalf("cells not sorted cost-descending at %d: %v < %v", i, cells[i-1].Cost, cells[i].Cost)
		}
	}

	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	execOpts := opts
	execOpts.Checkpoint = store
	r := NewRunner(execOpts)
	if _, err := Figures["fig1"](r); err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(cells) {
		t.Fatalf("store holds %d entries after fig1, enumeration predicted %d", store.Len(), len(cells))
	}
	for _, c := range cells {
		if !store.Has(c.Key) {
			t.Fatalf("enumerated key for %s/%s not in store after execution:\n%s", c.Workload, c.Policy, c.Key)
		}
	}
}

// TestCellsForExecutesNothing: enumeration must not run trials or build
// workloads (it must be near-free even for the full figure set).
func TestCellsForExecutesNothing(t *testing.T) {
	opts := Options{Trials: 1, Scale: 0.1, Seed: 0xABC}
	built := false
	w := WorkloadByName("ycsb-c", 0.1)
	inner := w.Make
	w.Make = func() workload.Workload { built = true; return inner() }

	r := NewRunner(opts)
	r.collect = newCellCollector()
	if _, err := r.Run(w, PolicyByName(PolClock), SystemAt(0.5, core.SwapSSD)); err != nil {
		t.Fatal(err)
	}
	if built {
		t.Fatal("collect-mode Run constructed the workload")
	}
	if len(r.collect.cells) != 1 {
		t.Fatalf("collected %d cells, want 1", len(r.collect.cells))
	}
}

// TestVetoFailsSeriesWithoutExecution: a vetoed key errors immediately
// and runs nothing; RunMatrix records it as a per-cell failure and the
// rest of the matrix completes.
func TestVetoFailsSeriesWithoutExecution(t *testing.T) {
	opts := fastOpts()
	opts.Veto = func(key string) error {
		if strings.Contains(key, "|clock|") {
			return os.ErrPermission // stand-in for a quarantine record
		}
		return nil
	}
	r := NewRunner(opts)
	ws := []WorkloadSpec{WorkloadByName("ycsb-c", opts.Scale)}
	res, err := r.RunMatrix(ws, Policies(PolClock, PolFIFO), SystemAt(0.5, core.SwapSSD))
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() {
		t.Fatal("vetoed cell reported complete")
	}
	if len(res.Failed) != 1 || res.Failed[0].Policy != PolClock {
		t.Fatalf("Failed = %+v, want exactly the clock cell", res.Failed)
	}
	if res.Get("ycsb-c", PolFIFO) == nil {
		t.Fatal("non-vetoed cell missing")
	}
}

// corruptingPolicy aliases a second VPN onto a resident frame after a
// fixed number of page-ins — the double-mapping bug the auditor exists to
// catch — using only the public policy.Kernel surface.
type corruptingPolicy struct {
	policy.Policy
	k   policy.Kernel
	ins int
}

func (c *corruptingPolicy) Attach(k policy.Kernel) {
	c.k = k
	c.Policy.Attach(k)
}

func (c *corruptingPolicy) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	c.Policy.PageIn(v, f, sh)
	c.ins++
	if c.ins == 40 {
		tbl := c.k.Table()
		for i := 0; i < tbl.Pages(); i++ {
			pte := tbl.PTE(pagetable.VPN(i))
			if pte.Mapped() && !pte.Present() && pte.Swap == pagetable.NilSwap {
				tbl.Insert(pagetable.VPN(i), f, false)
				return
			}
		}
	}
}

// TestAuditFailureDumpsInvariantDiffToFlightFile is the end-to-end
// satellite contract: a trial failing its invariant audit must leave a
// flight.txt artifact whose contents include the invariant diff itself —
// via the auditor→telemetry Note hook — not just the generic ring.
func TestAuditFailureDumpsInvariantDiffToFlightFile(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Trials: 1, Scale: 0.1, Seed: 0xABC, Audit: true, TraceDir: dir}
	r := NewRunner(opts)
	base := PolicyByName(PolMGLRU)
	p := PolicySpec{Name: base.Name, Make: func() policy.Policy {
		return &corruptingPolicy{Policy: mglru.New(mglru.Default())}
	}}
	_, err := r.Run(WorkloadByName("ycsb-c", opts.Scale), p, SystemAt(0.5, core.SwapSSD))
	if err == nil {
		t.Fatal("corrupted trial passed its audit")
	}
	if !strings.Contains(err.Error(), "invariant violation") {
		t.Fatalf("trial failed for a different reason: %v", err)
	}
	flights, globErr := filepath.Glob(filepath.Join(dir, "*flight.txt"))
	if globErr != nil || len(flights) == 0 {
		t.Fatalf("no flight.txt artifact written (glob err %v)", globErr)
	}
	data, readErr := os.ReadFile(flights[0])
	if readErr != nil {
		t.Fatal(readErr)
	}
	dump := string(data)
	if !strings.Contains(dump, "invariant:") {
		t.Fatalf("flight.txt lacks the invariant diff notes:\n%s", dump)
	}
	if !strings.Contains(dump, "owned by two VPNs") {
		t.Fatalf("flight.txt lacks the specific violation:\n%s", dump)
	}
}
