package experiments

import (
	"encoding/json"

	"mglrusim/internal/core"
	"mglrusim/internal/fault"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
	"mglrusim/internal/swap"
	"mglrusim/internal/vmm"
)

// checkpointVersion guards the on-disk series format: a stored envelope
// from a different version is treated as absent and re-executed.
const checkpointVersion = 1

// seriesEnvelope is the persisted form of one completed Series. The full
// cache key is embedded so a hash-named file is self-verifying, and
// latency recorders are flattened to their raw samples — exact integer
// nanoseconds, so a resumed series reproduces every percentile (and with
// it every figure byte) identically. All numeric fields are integers or
// Go-JSON float64s, both of which round-trip exactly.
type seriesEnvelope struct {
	Version  int
	Key      string
	Workload string
	Policy   string
	System   core.SystemConfig
	Trials   []trialMetrics
}

// trialMetrics mirrors core.Metrics with recorders flattened.
type trialMetrics struct {
	Runtime        sim.Time
	AppCPU         sim.Duration
	Counters       vmm.Counters
	Policy         policy.Stats
	Device         swap.Stats
	ReadLat        []int64
	WriteLat       []int64
	FaultLat       []int64
	FootprintPages int
	CapacityPages  int
	SegmentFaults  map[string]uint64 `json:",omitempty"`
	Injected       fault.Stats
	FileInjected   fault.Stats
	FileCache      pagecache.Stats
	FileDevice     swap.Stats
}

func samplesOf(l *stats.LatencyRecorder) []int64 {
	if l == nil {
		return nil
	}
	return l.Samples()
}

func recorderOf(samples []int64) *stats.LatencyRecorder {
	l := stats.NewLatencyRecorder(len(samples))
	for _, s := range samples {
		l.Record(s)
	}
	return l
}

// encodeSeries serializes s for the checkpoint store under key.
func encodeSeries(key string, s *Series) ([]byte, error) {
	env := seriesEnvelope{
		Version:  checkpointVersion,
		Key:      key,
		Workload: s.Workload,
		Policy:   s.Policy,
		System:   s.System,
		Trials:   make([]trialMetrics, len(s.Trials)),
	}
	for i, m := range s.Trials {
		env.Trials[i] = trialMetrics{
			Runtime:        m.Runtime,
			AppCPU:         m.AppCPU,
			Counters:       m.Counters,
			Policy:         m.Policy,
			Device:         m.Device,
			ReadLat:        samplesOf(m.ReadLat),
			WriteLat:       samplesOf(m.WriteLat),
			FaultLat:       samplesOf(m.FaultLat),
			FootprintPages: m.FootprintPages,
			CapacityPages:  m.CapacityPages,
			SegmentFaults:  m.SegmentFaults,
			Injected:       m.Injected,
			FileInjected:   m.FileInjected,
			FileCache:      m.FileCache,
			FileDevice:     m.FileDevice,
		}
	}
	return json.Marshal(env)
}

// SeriesSummary is the compact telemetry digest of one stored series —
// what the sweep server streams per completed cell without shipping the
// full artifact (raw latency samples dominate the blob).
type SeriesSummary struct {
	Workload       string  `json:"workload"`
	Policy         string  `json:"policy"`
	Trials         int     `json:"trials"`
	MeanRuntimeSec float64 `json:"meanRuntimeSec"`
	MeanFaults     float64 `json:"meanFaults"`
	// MeanRequestNS is the mean request latency across trials in
	// nanoseconds; zero for batch (runtime-metric) workloads.
	MeanRequestNS float64 `json:"meanRequestNS,omitempty"`
}

// SummarizeSeriesBlob digests a checkpoint-store blob into a
// SeriesSummary. ok is false when the blob is not a valid series envelope
// of the current format version.
func SummarizeSeriesBlob(data []byte) (SeriesSummary, bool) {
	var env seriesEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Version != checkpointVersion {
		return SeriesSummary{}, false
	}
	s, ok := decodeSeries(env.Key, data)
	if !ok {
		return SeriesSummary{}, false
	}
	sum := SeriesSummary{
		Workload: s.Workload,
		Policy:   s.Policy,
		Trials:   len(s.Trials),
	}
	if len(s.Trials) > 0 {
		sum.MeanRuntimeSec = stats.Mean(s.Runtimes())
		sum.MeanFaults = stats.Mean(s.Faults())
		if req := s.MeanRequestNS(); len(req) > 0 {
			sum.MeanRequestNS = stats.Mean(req)
		}
	}
	return sum, true
}

// decodeSeries restores a persisted series. ok is false when the blob is
// unparsable, from a different format version, or stored under a
// different logical key (hash collision or stale file) — all of which
// mean "re-execute".
func decodeSeries(key string, data []byte) (*Series, bool) {
	var env seriesEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false
	}
	if env.Version != checkpointVersion || env.Key != key {
		return nil, false
	}
	s := &Series{
		Workload: env.Workload,
		Policy:   env.Policy,
		System:   env.System,
		Trials:   make([]core.Metrics, len(env.Trials)),
	}
	for i, t := range env.Trials {
		s.Trials[i] = core.Metrics{
			Runtime:        t.Runtime,
			AppCPU:         t.AppCPU,
			Counters:       t.Counters,
			Policy:         t.Policy,
			Device:         t.Device,
			ReadLat:        recorderOf(t.ReadLat),
			WriteLat:       recorderOf(t.WriteLat),
			FaultLat:       recorderOf(t.FaultLat),
			FootprintPages: t.FootprintPages,
			CapacityPages:  t.CapacityPages,
			SegmentFaults:  t.SegmentFaults,
			Injected:       t.Injected,
			FileInjected:   t.FileInjected,
			FileCache:      t.FileCache,
			FileDevice:     t.FileDevice,
		}
	}
	return s, true
}
