package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"mglrusim/internal/core"
	"mglrusim/internal/fault"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/stats"
	"mglrusim/internal/swap"
)

// TestTrialMetricsMirrorsCoreMetrics: every exported field of core.Metrics
// must have a same-named field in trialMetrics (latency recorders are
// flattened to their []int64 samples under the same name). A field added
// to core.Metrics but not to the mirror is silently zeroed whenever a
// series round-trips through the checkpoint store — the sharded and
// server paths — while in-process runs keep it, so figures diverge by
// execution mode instead of failing loudly.
func TestTrialMetricsMirrorsCoreMetrics(t *testing.T) {
	mirror := reflect.TypeOf(trialMetrics{})
	metrics := reflect.TypeOf(core.Metrics{})
	recorder := reflect.TypeOf(&stats.LatencyRecorder{})
	samples := reflect.TypeOf([]int64(nil))
	for i := 0; i < metrics.NumField(); i++ {
		f := metrics.Field(i)
		m, ok := mirror.FieldByName(f.Name)
		if !ok {
			t.Errorf("core.Metrics.%s has no trialMetrics mirror: checkpointed series drop it", f.Name)
			continue
		}
		want := f.Type
		if want == recorder {
			want = samples
		}
		if m.Type != want {
			t.Errorf("trialMetrics.%s is %v, want %v", f.Name, m.Type, want)
		}
	}
}

// TestCheckpointRoundTripPreservesFileCache: a series with page-cache
// counters must survive encode→decode→encode byte-identically — the
// regression behind the ext2 sharded run rendering zeroed refault and
// writeback columns.
func TestCheckpointRoundTripPreservesFileCache(t *testing.T) {
	s := &Series{
		Workload: "serve",
		Policy:   PolMGLRU,
		System:   SystemAt(0.5, core.SwapSSD),
		Trials: []core.Metrics{{
			Runtime:        12345,
			FootprintPages: 100,
			CapacityPages:  50,
			ReadLat:        recorderOf([]int64{10, 20}),
			WriteLat:       recorderOf(nil),
			FaultLat:       recorderOf([]int64{30}),
			FileCache: pagecache.Stats{
				Reads: 7, ReadaheadReads: 3, Dirtied: 5,
				FlushPasses: 2, Extents: 4, WritebackPages: 9,
				PageOuts: 1, Evictions: 6, Refaults: 8,
				FileIOErrors: 2, PoisonedFaults: 4, ReadaheadAborts: 1,
				WriteErrors: 3, DataAtRisk: 3,
				ThrottleStalls: 5, ThrottleStallTime: 777,
			},
			FileDevice: swap.Stats{Reads: 11, Writes: 13},
			FileInjected: fault.Stats{
				Storms: 2, StormDelay: 999, TransientReadErrors: 4,
				HardWriteErrors: 1, PrefetchErrors: 6,
			},
		}},
	}
	blob, err := encodeSeries("k", s)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decodeSeries("k", blob)
	if !ok {
		t.Fatal("decode rejected a freshly encoded envelope")
	}
	if got.Trials[0].FileCache != s.Trials[0].FileCache {
		t.Fatalf("FileCache dropped: %+v, want %+v", got.Trials[0].FileCache, s.Trials[0].FileCache)
	}
	if got.Trials[0].FileDevice != s.Trials[0].FileDevice {
		t.Fatalf("FileDevice dropped: %+v, want %+v", got.Trials[0].FileDevice, s.Trials[0].FileDevice)
	}
	if got.Trials[0].FileInjected != s.Trials[0].FileInjected {
		t.Fatalf("FileInjected dropped: %+v, want %+v", got.Trials[0].FileInjected, s.Trials[0].FileInjected)
	}
	blob2, err := encodeSeries("k", got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("round-trip not byte-stable")
	}
}
