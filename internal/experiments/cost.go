package experiments

import "mglrusim/internal/core"

// The cell cost model: a relative virtual-cost estimate for one series,
// used by the shard executor's longest-processing-time-first bin packing.
// Absolute accuracy does not matter — only the ordering does — so the
// weights are coarse ratios read off the BENCH macro measurements
// (fig1-series vs the whole figure run) and the per-policy micro
// benchmarks (clock-scan's rmap pointer-chase makes Clock reclaim ~1.6x
// an MG-LRU aging walk per reclaimed page; the scan-free simple policies
// skip both).
var (
	costByWorkload = map[string]float64{
		"tpch":     3.0, // largest footprint, scan-heavy batch phases
		"pagerank": 2.2, // graph chase, high fault density
		"filescan": 1.4,
		"ycsb-a":   1.0,
		"ycsb-b":   1.0,
		"ycsb-c":   0.9, // read-only: no dirty writeback on eviction
	}
	costByPolicy = map[string]float64{
		PolClock:    1.3, // rmap chase per scanned page
		PolMGLRU:    1.0,
		PolGen14:    1.0,
		PolScanAll:  1.4, // walks every region each aging pass
		PolScanNone: 0.9,
		PolScanRand: 1.1,
		PolFIFO:     0.7, // no scan at all
		PolRandom:   0.7,
	}
)

// estimateCost scores one cell for bin packing. Monotone in trial count
// and scale; over-commit pressure (lower Ratio) raises fault volume and
// therefore cost; ZRAM's sub-microsecond latencies drain device queues
// faster than SSD in virtual time but cost more host CPU per page
// (compression modeling), roughly a wash, so the medium factor is mild.
func estimateCost(w WorkloadSpec, p PolicySpec, sys core.SystemConfig, opts Options) float64 {
	wc, ok := costByWorkload[w.Name]
	if !ok {
		wc = 1.5
	}
	pc, ok := costByPolicy[p.Name]
	if !ok {
		pc = 1.0
	}
	pressure := 1.0 + (1.0 - sys.Ratio) // ratio 0.5 → 1.5x, ratio 0.9 → 1.1x
	medium := 1.0
	if sys.Swap == core.SwapZRAM {
		medium = 0.9
	}
	faults := 1.0
	if sys.Fault.Enabled() {
		faults = 1.25 // storms and retries stretch the simulated run
	}
	return wc * pc * pressure * medium * faults * float64(opts.Trials) * opts.Scale
}
