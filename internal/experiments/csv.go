package experiments

import (
	"fmt"
	"strings"

	"mglrusim/internal/stats"
)

// CSVer is implemented by figure results that can serialize their data
// points as CSV for external plotting.
type CSVer interface {
	CSV() string
}

type csvBuilder struct{ b strings.Builder }

func (c *csvBuilder) row(cells ...any) {
	for i, cell := range cells {
		if i > 0 {
			c.b.WriteByte(',')
		}
		fmt.Fprintf(&c.b, "%v", cell)
	}
	c.b.WriteByte('\n')
}

func (c *csvBuilder) String() string { return c.b.String() }

// CSV implements CSVer for Figure 1.
func (r *Fig1Result) CSV() string {
	var c csvBuilder
	c.row("workload", "mglru_perf_norm", "mglru_faults_norm", "clock_perf_cv", "mglru_perf_cv")
	for _, row := range r.Rows {
		c.row(row.Workload, row.MGLRUPerfNorm, row.MGLRUFaultsNorm, row.ClockPerfCV, row.MGLRUPerfCV)
	}
	return c.String()
}

func jointCSV(series []JointSeries) string {
	var c csvBuilder
	c.row("workload", "policy", "trial", "runtime_s", "faults")
	for _, s := range series {
		for i := range s.Runtimes {
			c.row(s.Workload, s.Policy, i, s.Runtimes[i], s.Faults[i])
		}
	}
	return c.String()
}

// CSV implements CSVer for Figure 2 (per-trial scatter points).
func (r *Fig2Result) CSV() string { return jointCSV(r.Series) }

// CSV implements CSVer for Figure 5 (per-trial scatter points).
func (r *Fig5Result) CSV() string { return jointCSV(r.Series) }

// CSV implements CSVer for tail-latency figures (3, 8, 12).
func (r *TailResult) CSV() string {
	var c csvBuilder
	c.row("workload", "class", "percentile", "clock_ns", "mglru_ns")
	for _, row := range r.Rows {
		for i, p := range stats.TailPoints {
			c.row(row.Workload, row.Class, p, row.Clock[i], row.MGLRU[i])
		}
	}
	return c.String()
}

// CSV implements CSVer for normalized matrices (Figures 4, 6, 9, 10).
func (m *NormMatrix) CSV() string {
	var c csvBuilder
	c.row("workload", "policy", "perf_norm", "faults_norm")
	for _, w := range m.Workloads {
		for _, p := range m.Policies {
			faults := ""
			if m.Faults != nil {
				faults = fmt.Sprintf("%v", m.Faults[w][p])
			}
			c.row(w, p, m.Perf[w][p], faults)
		}
	}
	return c.String()
}

// CSV implements CSVer for Figure 7 (fault five-number summaries).
func (r *Fig7Result) CSV() string {
	var c csvBuilder
	c.row("ratio", "workload", "policy", "min", "q1", "median", "q3", "max")
	for _, row := range r.Rows {
		s := row.Summary
		c.row(row.Ratio, row.Workload, row.Policy, s.Min, s.Q1, s.Median, s.Q3, s.Max)
	}
	return c.String()
}

// CSV implements CSVer for Figure 11 (medium deltas).
func (r *Fig11Result) CSV() string {
	var c csvBuilder
	c.row("workload", "policy", "runtime_zram_over_ssd", "faults_zram_over_ssd")
	for _, row := range r.Rows {
		c.row(row.Workload, row.Policy, row.RuntimeRatio, row.FaultRatio)
	}
	return c.String()
}

// CSV implements CSVer for multi-part results by concatenating parts
// that themselves support CSV, separated by blank lines.
func (m *MultiResult) CSV() string {
	var parts []string
	for _, p := range m.Parts {
		if c, ok := p.(CSVer); ok {
			parts = append(parts, c.CSV())
		}
	}
	return strings.Join(parts, "\n")
}
