package experiments

import (
	"strings"
	"testing"

	"mglrusim/internal/core"
)

// tinyOpts keep harness tests fast: few trials, small footprints.
func tinyOpts() Options {
	return Options{Trials: 2, Scale: 0.25, Seed: 0xABC}
}

func TestPolicyRegistryComplete(t *testing.T) {
	all := AllPolicies()
	if len(all) != 6 {
		t.Fatalf("policies = %d, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if p.Make == nil {
			t.Fatalf("policy %s has no factory", p.Name)
		}
		pol := p.Make()
		if pol == nil {
			t.Fatalf("policy %s factory returned nil", p.Name)
		}
		seen[p.Name] = true
	}
	for _, want := range []string{PolClock, PolMGLRU, PolGen14, PolScanAll, PolScanNone, PolScanRand} {
		if !seen[want] {
			t.Fatalf("missing policy %s", want)
		}
	}
}

func TestPolicyFactoriesAreFresh(t *testing.T) {
	spec := PolicyByName(PolMGLRU)
	if spec.Make() == spec.Make() {
		t.Fatal("factory must return fresh instances")
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PolicyByName("nope")
}

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads(0.25)
	if len(ws) != 5 {
		t.Fatalf("workloads = %d, want 5", len(ws))
	}
	for _, w := range ws {
		wl := w.Make()
		if wl.FootprintPages() <= 0 {
			t.Fatalf("%s has no footprint", w.Name)
		}
		if strings.HasPrefix(w.Name, "ycsb") != w.Latency {
			t.Fatalf("%s latency flag wrong", w.Name)
		}
	}
}

func TestWorkloadScaleShrinksFootprint(t *testing.T) {
	big := WorkloadByName("tpch", 1.0).Make().FootprintPages()
	small := WorkloadByName("tpch", 0.25).Make().FootprintPages()
	if small >= big {
		t.Fatalf("scale had no effect: %d vs %d", small, big)
	}
}

func TestRunnerCachesSeries(t *testing.T) {
	r := NewRunner(tinyOpts())
	w := WorkloadByName("ycsb-c", 0.25)
	p := PolicyByName(PolClock)
	sys := SystemAt(0.5, core.SwapSSD)
	a, err := r.Run(w, p, sys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(w, p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Run should return the cached series")
	}
	if len(a.Trials) != 2 {
		t.Fatalf("trials = %d", len(a.Trials))
	}
}

func TestSeriesAccessors(t *testing.T) {
	r := NewRunner(tinyOpts())
	s, err := r.Run(WorkloadByName("ycsb-c", 0.25), PolicyByName(PolClock), SystemAt(0.5, core.SwapSSD))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Runtimes()) != 2 || len(s.Faults()) != 2 {
		t.Fatal("per-trial slices wrong length")
	}
	for _, rt := range s.Runtimes() {
		if rt <= 0 {
			t.Fatal("non-positive runtime")
		}
	}
	lat := s.MeanRequestNS()
	for _, l := range lat {
		if l <= 0 {
			t.Fatal("non-positive latency for latency workload")
		}
	}
	tail := s.MergedReadTail()
	for i := 1; i < len(tail); i++ {
		if tail[i] < tail[i-1] {
			t.Fatal("tail not monotone")
		}
	}
	// Read-only: write tail all zeros.
	for _, v := range s.MergedWriteTail() {
		if v != 0 {
			t.Fatal("ycsb-c should have no write latencies")
		}
	}
}

func TestTrialSeedsDifferButAreStable(t *testing.T) {
	a := trialSeed(1, "k", 0)
	b := trialSeed(1, "k", 1)
	c := trialSeed(1, "other", 0)
	if a == b || a == c {
		t.Fatal("seeds collide")
	}
	if a != trialSeed(1, "k", 0) {
		t.Fatal("seed not stable")
	}
}

func TestFigureIDsOrdered(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 12 {
		t.Fatalf("figures = %d, want 12", len(ids))
	}
	if ids[0] != "fig1" || ids[11] != "fig12" {
		t.Fatalf("order wrong: %v", ids)
	}
}

// TestEveryFigureRunsTiny executes all 12 figures end-to-end at toy scale
// and checks every rendering is non-empty and mentions its data.
func TestEveryFigureRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs all figures")
	}
	r := NewRunner(tinyOpts())
	for _, id := range FigureIDs() {
		res, err := Figures[id](r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID() != id {
			t.Fatalf("%s: result reports id %s", id, res.ID())
		}
		out := res.Render()
		if len(out) < 40 {
			t.Fatalf("%s: render too short:\n%s", id, out)
		}
		if !strings.Contains(out, "tpch") && !strings.Contains(out, "ycsb") {
			t.Fatalf("%s: render mentions no workloads:\n%s", id, out)
		}
	}
}

func TestFig1ShapesAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(tinyOpts())
	res, err := Fig1(r)
	if err != nil {
		t.Fatal(err)
	}
	f1 := res.(*Fig1Result)
	if len(f1.Rows) != 5 {
		t.Fatalf("rows = %d", len(f1.Rows))
	}
	for _, row := range f1.Rows {
		if row.MGLRUPerfNorm <= 0 || row.MGLRUFaultsNorm <= 0 {
			t.Fatalf("non-positive normalized values: %+v", row)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("a", "bb")
	tb.row("1", "2")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Fatalf("table render: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
}

func TestSafeDiv(t *testing.T) {
	if safeDiv(4, 2) != 2 || safeDiv(1, 0) != 0 {
		t.Fatal("safeDiv wrong")
	}
}

func TestCSVExports(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(tinyOpts())
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig7", "fig11"} {
		res, err := Figures[id](r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		c, ok := res.(CSVer)
		if !ok {
			t.Fatalf("%s: no CSV support", id)
		}
		out := c.CSV()
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: CSV has no data rows:\n%s", id, out)
		}
		header := strings.Split(lines[0], ",")
		for i, line := range lines[1:] {
			if got := len(strings.Split(line, ",")); got != len(header) {
				t.Fatalf("%s: row %d has %d cells, header has %d", id, i, got, len(header))
			}
		}
	}
}
