package experiments

import (
	"strings"
	"testing"

	"mglrusim/internal/core"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/workload"
	"mglrusim/internal/workload/serve"
)

// TestExtFileServeTiny runs the ext2 page-cache sweep end-to-end at toy
// scale: full ladder × policy matrix, non-degenerate cache counters, and
// consistent render/CSV output.
func TestExtFileServeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs the ext2 matrix")
	}
	r := NewRunner(Options{Trials: 2, Scale: 0.2, Seed: 0xABC, Parallelism: 4})
	res, err := ExtFileServeSweep(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "ext2" {
		t.Fatalf("id = %s", res.ID())
	}
	fr := res.(*FileServeResult)
	want := len(extCacheRatios) * len(extFilePolicies())
	if len(fr.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(fr.Rows), want)
	}
	for _, row := range fr.Rows {
		if row.HitRatio <= 0 || row.HitRatio > 1 {
			t.Fatalf("degenerate hit ratio %v in %+v", row.HitRatio, row)
		}
		if row.WritebackPages <= 0 {
			t.Fatalf("no writeback recorded in %+v (WriteFrac should dirty file pages)", row)
		}
		if row.MeanRequestNS <= 0 {
			t.Fatalf("no request latency in %+v", row)
		}
	}
	// The starved rung must miss more than the roomy rung (same policy).
	for _, p := range extFilePolicies() {
		var starved, roomy float64
		for _, row := range fr.Rows {
			if row.Policy != p.Name {
				continue
			}
			if row.Ratio == extCacheRatios[0] {
				starved = row.HitRatio
			}
			if row.Ratio == extCacheRatios[len(extCacheRatios)-1] {
				roomy = row.HitRatio
			}
		}
		if starved >= roomy {
			t.Fatalf("%s: hit ratio did not improve with cache size (%.4f at %.2f vs %.4f at %.2f)",
				p.Name, starved, extCacheRatios[0], roomy, extCacheRatios[len(extCacheRatios)-1])
		}
	}
	out := res.Render()
	if !strings.Contains(out, "serve") || !strings.Contains(out, PolMGLRUNoPID) {
		t.Fatalf("render missing workload/policy labels:\n%s", out)
	}
	csv := res.(CSVer).CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != want+1 {
		t.Fatalf("CSV rows = %d, want %d", len(lines)-1, want+1)
	}
	header := strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Fatalf("ragged CSV row: %q", line)
		}
	}
}

// TestExt2DeterministicSharded is the acceptance gate: the ext2 family
// must render byte-identically whether trials run serially or across an
// 8-wide worker pool — scheduling must never leak into results.
func TestExt2DeterministicSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs ext2 twice")
	}
	run := func(parallelism int) (string, string) {
		r := NewRunner(Options{Trials: 3, Scale: 0.15, Seed: 0x5EED, Parallelism: parallelism})
		res, err := ExtFileServeSweep(r)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res.Render(), res.(CSVer).CSV()
	}
	serialOut, serialCSV := run(1)
	shardOut, shardCSV := run(8)
	if serialOut != shardOut {
		t.Fatalf("render diverges between serial and 8-wide sharded runs:\n--- serial ---\n%s\n--- sharded ---\n%s", serialOut, shardOut)
	}
	if serialCSV != shardCSV {
		t.Fatalf("CSV diverges between serial and 8-wide sharded runs")
	}
}

// imbalancedServe is the refault-imbalance stimulus the tier-gain
// controller exists for, stated as a workload: a near-uniform object
// catalog whose file working set overflows its share of memory (every
// premature file eviction refaults), served next to a session table whose
// steep skew leaves a long dead-cold anon tail (anon evictions are free).
// A type-blind evictor splits the pressure proportionally and pays file
// refaults; steering it onto the cold anon tail avoids them.
func imbalancedServe() WorkloadSpec {
	return WorkloadSpec{Name: "serve-imbalanced", Latency: true, Make: func() workload.Workload {
		cfg := serve.DefaultConfig()
		cfg.Objects = 2000
		cfg.ObjPages = 4
		cfg.Theta = 0.4
		cfg.WriteFrac = 0.05
		cfg.Requests = 20000
		cfg.Phases = 1
		cfg.BurstCount = 0
		cfg.Sessions = 20000
		cfg.SessionTheta = 1.1
		return serve.New(cfg)
	}}
}

// TestFileTierProtectionReducesRefaults is the tentpole regression: under
// refault-imbalanced serving traffic, MG-LRU with the file-vs-anon gain
// controller must evict the file tier less prematurely than the ablated
// build — fewer refaults per file touch with protection on than off.
func TestFileTierProtectionReducesRefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs serve under two policies")
	}
	r := NewRunner(Options{Trials: 3, Seed: 0xF11E, Parallelism: 4})
	w := imbalancedServe()
	sys := SystemAt(0.25, core.SwapSSD)
	sys.PageCache = pagecache.DefaultConfig()

	rate := func(policy string) float64 {
		s, err := r.Run(w, PolicyByName(policy), sys)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		var refaults, touches, fileProt uint64
		for _, m := range s.Trials {
			refaults += m.FileCache.Refaults
			touches += m.Counters.FileAccesses + m.Counters.FileFaults
			fileProt += m.Policy.FileProtected
		}
		if refaults == 0 {
			t.Fatalf("%s: no refaults — ratio too roomy for the regression to bite", policy)
		}
		if policy == PolMGLRU && fileProt == 0 {
			t.Fatalf("%s: gain controller never steered an eviction (FileProtected = 0)", policy)
		}
		return float64(refaults) / float64(touches)
	}

	protected := rate(PolMGLRU)
	ablated := rate(PolMGLRUNoPID)
	// The observed effect is ~35-40%; demand at least 10% so noise can't
	// sneak a regression past.
	if protected >= 0.9*ablated {
		t.Fatalf("file refault rate with tier protection (%.6f/touch) not clearly below ablated (%.6f/touch)", protected, ablated)
	}
}
