package experiments

import (
	"strings"
	"testing"

	"mglrusim/internal/fault"
)

// TestExtFileFaultTiny runs the ext3 degraded-file-device sweep
// end-to-end at toy scale: the acceptance gate that a severe file-device
// plan degrades the trial instead of killing it. Every cell must
// complete (no *HardError aborts); the severe rows must show the
// degradation machinery firing — poisoned faults, errseq entries,
// data-at-risk — while the none rows stay error-free.
func TestExtFileFaultTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs the ext3 matrix")
	}
	r := NewRunner(Options{Trials: 2, Scale: 0.2, Seed: 0xE3, Parallelism: 4})
	res, err := ExtDegradedFileSweep(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "ext3" {
		t.Fatalf("id = %s", res.ID())
	}
	dr := res.(*DegradedFileResult)
	want := len(extFileSeverities) * len(extFilePolicies())
	if len(dr.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(dr.Rows), want)
	}
	for _, row := range dr.Rows {
		if row.MeanRequestNS <= 0 || row.HitRatio <= 0 {
			t.Fatalf("degenerate cell %+v", row)
		}
		switch row.Severity {
		case "none":
			if row.IOErrors != 0 || row.PoisonedFaults != 0 || row.WriteErrors != 0 ||
				row.DataAtRisk != 0 || row.Injected != (fault.Stats{}) {
				t.Fatalf("clean device injected errors: %+v", row)
			}
		case "severe":
			if row.IOErrors == 0 || row.PoisonedFaults == 0 {
				t.Fatalf("severe plan produced no SIGBUS ledger: %+v", row)
			}
			if row.WriteErrors == 0 || row.DataAtRisk == 0 {
				t.Fatalf("severe plan produced no errseq ledger: %+v", row)
			}
			if row.Injected.Storms == 0 || row.Injected.HardReadErrors == 0 {
				t.Fatalf("severe plan injected nothing: %+v", row.Injected)
			}
		case "mild":
			// Mild's generous retry budget absorbs nearly everything into
			// retries; hard failures are possible but rare. The retries
			// themselves must be visible.
			if row.Injected.ReadRetries == 0 && row.Injected.WriteRetries == 0 {
				t.Fatalf("mild plan shows no retry activity: %+v", row.Injected)
			}
		}
	}
	// Degradation must cost latency: severe mean request latency above the
	// clean device's, per policy.
	for _, p := range extFilePolicies() {
		var clean, severe float64
		for _, row := range dr.Rows {
			if row.Policy != p.Name {
				continue
			}
			switch row.Severity {
			case "none":
				clean = row.MeanRequestNS
			case "severe":
				severe = row.MeanRequestNS
			}
		}
		if severe <= clean {
			t.Fatalf("%s: severe faults did not slow serving (%.0f ns vs clean %.0f ns)",
				p.Name, severe, clean)
		}
	}
	out := res.Render()
	for _, label := range []string{"severe", "sigbus", "at-risk", "throttle"} {
		if !strings.Contains(out, label) {
			t.Fatalf("render missing %q:\n%s", label, out)
		}
	}
	csv := res.(CSVer).CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != want+1 {
		t.Fatalf("CSV rows = %d, want %d", len(lines)-1, want)
	}
	header := strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Fatalf("ragged CSV row: %q", line)
		}
	}
}

// TestExt3DeterministicSharded: same-seed degraded runs must be
// byte-deterministic serial vs 8-wide — injected faults, poisonings, and
// throttle stalls all ride the per-trial seed, never the scheduler.
func TestExt3DeterministicSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs ext3 twice")
	}
	run := func(parallelism int) (string, string) {
		r := NewRunner(Options{Trials: 3, Scale: 0.15, Seed: 0xDE9, Parallelism: parallelism})
		res, err := ExtDegradedFileSweep(r)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res.Render(), res.(CSVer).CSV()
	}
	serialOut, serialCSV := run(1)
	shardOut, shardCSV := run(8)
	if serialOut != shardOut {
		t.Fatalf("render diverges between serial and 8-wide degraded runs:\n--- serial ---\n%s\n--- sharded ---\n%s", serialOut, shardOut)
	}
	if serialCSV != shardCSV {
		t.Fatalf("CSV diverges between serial and 8-wide degraded runs")
	}
}

// TestExt2InertFileWrapperByteIdentical is the zero-plan transparency
// gate at figure level: a file-device fault wrapper installed with an
// all-zero plan (Target: file, every injection config zero) must leave
// the full ext2 figure byte-identical to the unwrapped baseline — the
// wrapper draws no RNG, spawns no procs, and moves no event.
func TestExt2InertFileWrapperByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs ext2 twice")
	}
	run := func(plan fault.Plan) (string, string) {
		r := NewRunner(Options{Trials: 2, Scale: 0.15, Seed: 0x1E27, Parallelism: 4})
		res, err := extFileServeSweep(r, plan)
		if err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		return res.Render(), res.(CSVer).CSV()
	}
	inert := fault.Plan{Target: fault.TargetFile}
	if inert.Enabled() {
		t.Fatal("the inert plan must not count as enabled")
	}
	baseOut, baseCSV := run(fault.Plan{})
	wrapOut, wrapCSV := run(inert)
	if baseOut != wrapOut {
		t.Fatalf("inert wrapper moved the ext2 render:\n--- bare ---\n%s\n--- wrapped ---\n%s", baseOut, wrapOut)
	}
	if baseCSV != wrapCSV {
		t.Fatal("inert wrapper moved the ext2 CSV")
	}
}
