package experiments

import (
	"fmt"
	"sort"

	"mglrusim/internal/core"
	"mglrusim/internal/fault"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
)

// Extensions maps extension-experiment IDs to their functions. These go
// beyond the paper's twelve figures (which stay exactly twelve — the
// public Figures map is part of the API contract), and pagebench resolves
// -figure arguments against both maps.
var Extensions = map[string]FigureFunc{
	"ext1": ExtDegradedSweep,
}

// ExtensionIDs returns all extension IDs in order.
func ExtensionIDs() []string {
	ids := make([]string, 0, len(Extensions))
	for id := range Extensions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// extSeverities is the degraded-device sweep's fault-plan ladder.
var extSeverities = []struct {
	Name string
	Plan fault.Plan
}{
	{"none", fault.Plan{}},
	{"mild", fault.Mild()},
	{"severe", fault.Severe()},
}

// DegradedRow is one (severity, policy) cell of the sweep.
type DegradedRow struct {
	Severity, Policy string
	// MeanRequestNS is the headline YCSB metric under this plan.
	MeanRequestNS float64
	// MeanFaults is the mean total fault count.
	MeanFaults float64
	// FaultTail is the major-fault latency at stats.TailPoints, ns.
	FaultTail []float64
	// Injected sums the fault plane's counters across trials.
	Injected fault.Stats
}

// DegradedResult is the degraded-device sweep: Clock-LRU vs MG-LRU
// fault-latency CDFs as the swap medium degrades underneath them.
type DegradedResult struct {
	Workload string
	Rows     []DegradedRow
}

// ID implements Result.
func (r *DegradedResult) ID() string { return "ext1" }

// Render implements Result.
func (r *DegradedResult) Render() string {
	t := newTable("severity", "policy", "mean-req(ms)", "mean-faults", "p50", "p90", "p99", "p99.9", "p99.99", "storms", "retries", "stall-t")
	for _, row := range r.Rows {
		cells := []string{
			row.Severity, row.Policy,
			f2(row.MeanRequestNS / 1e6), f2(row.MeanFaults),
		}
		for _, v := range row.FaultTail {
			cells = append(cells, nsToMs(v))
		}
		cells = append(cells,
			fmt.Sprintf("%d", row.Injected.Storms),
			fmt.Sprintf("%d", row.Injected.ReadRetries),
			fmt.Sprintf("%v", sim.Time(row.Injected.StormDelay)))
		t.row(cells...)
	}
	return fmt.Sprintf("Ext 1: %s major-fault latency under device degradation (SSD, 50%% ratio)\n", r.Workload) + t.String()
}

// CSV implements CSVer.
func (r *DegradedResult) CSV() string {
	var c csvBuilder
	header := []any{"severity", "policy", "mean_req_ns", "mean_faults"}
	for _, p := range stats.TailPoints {
		header = append(header, fmt.Sprintf("fault_p%g_ns", p))
	}
	header = append(header, "storms", "stall_storms", "storm_delay_ns", "read_retries", "hard_errors")
	c.row(header...)
	for _, row := range r.Rows {
		cells := []any{row.Severity, row.Policy, row.MeanRequestNS, row.MeanFaults}
		for _, v := range row.FaultTail {
			cells = append(cells, v)
		}
		cells = append(cells, row.Injected.Storms, row.Injected.StallStorms,
			row.Injected.StormDelay, row.Injected.ReadRetries, row.Injected.HardReadErrors)
		c.row(cells...)
	}
	return c.String()
}

// ExtDegradedSweep runs the degraded-device sweep: ycsb-a (the paper's
// mixed read/write latency workload) on SSD swap at 50% capacity, under
// each fault-plan severity, comparing how Clock-LRU's and MG-LRU's
// fault-latency distributions absorb storms, stalls, and retries. Each
// severity folds its plan into the system config, so the "none" rows
// reuse the exact series the paper figures run (cache and checkpoint
// included) while faulted rows get their own seeded plans — the same
// trial seeds, since the seed key deliberately excludes the plan.
func ExtDegradedSweep(r *Runner) (Result, error) {
	w := r.workloadByName("ycsb-a")
	res := &DegradedResult{Workload: w.Name}
	for _, sev := range extSeverities {
		sys := SystemAt(0.5, core.SwapSSD)
		sys.Fault = sev.Plan
		for _, p := range BaselinePair() {
			s, err := r.Run(w, p, sys)
			if err != nil {
				return nil, fmt.Errorf("ext1 %s/%s: %w", sev.Name, p.Name, err)
			}
			res.Rows = append(res.Rows, DegradedRow{
				Severity:      sev.Name,
				Policy:        p.Name,
				MeanRequestNS: stats.Mean(s.MeanRequestNS()),
				MeanFaults:    stats.Mean(s.Faults()),
				FaultTail:     s.MergedFaultTail(),
				Injected:      s.InjectionTotals(),
			})
		}
	}
	return res, nil
}
