package experiments

import (
	"fmt"
	"sort"

	"mglrusim/internal/core"
	"mglrusim/internal/fault"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
)

// Extensions maps extension-experiment IDs to their functions. These go
// beyond the paper's twelve figures (which stay exactly twelve — the
// public Figures map is part of the API contract), and pagebench resolves
// -figure arguments against both maps.
var Extensions = map[string]FigureFunc{
	"ext1": ExtDegradedSweep,
	"ext2": ExtFileServeSweep,
	"ext3": ExtDegradedFileSweep,
}

// ExtensionIDs returns all extension IDs in order.
func ExtensionIDs() []string {
	ids := make([]string, 0, len(Extensions))
	for id := range Extensions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// extSeverities is the degraded-device sweep's fault-plan ladder.
var extSeverities = []struct {
	Name string
	Plan fault.Plan
}{
	{"none", fault.Plan{}},
	{"mild", fault.Mild()},
	{"severe", fault.Severe()},
}

// DegradedRow is one (severity, policy) cell of the sweep.
type DegradedRow struct {
	Severity, Policy string
	// MeanRequestNS is the headline YCSB metric under this plan.
	MeanRequestNS float64
	// MeanFaults is the mean total fault count.
	MeanFaults float64
	// FaultTail is the major-fault latency at stats.TailPoints, ns.
	FaultTail []float64
	// Injected sums the fault plane's counters across trials.
	Injected fault.Stats
}

// DegradedResult is the degraded-device sweep: Clock-LRU vs MG-LRU
// fault-latency CDFs as the swap medium degrades underneath them.
type DegradedResult struct {
	Workload string
	Rows     []DegradedRow
}

// ID implements Result.
func (r *DegradedResult) ID() string { return "ext1" }

// Render implements Result.
func (r *DegradedResult) Render() string {
	t := newTable("severity", "policy", "mean-req(ms)", "mean-faults", "p50", "p90", "p99", "p99.9", "p99.99", "storms", "retries", "stall-t")
	for _, row := range r.Rows {
		cells := []string{
			row.Severity, row.Policy,
			f2(row.MeanRequestNS / 1e6), f2(row.MeanFaults),
		}
		for _, v := range row.FaultTail {
			cells = append(cells, nsToMs(v))
		}
		cells = append(cells,
			fmt.Sprintf("%d", row.Injected.Storms),
			fmt.Sprintf("%d", row.Injected.ReadRetries),
			fmt.Sprintf("%v", sim.Time(row.Injected.StormDelay)))
		t.row(cells...)
	}
	return fmt.Sprintf("Ext 1: %s major-fault latency under device degradation (SSD, 50%% ratio)\n", r.Workload) + t.String()
}

// CSV implements CSVer.
func (r *DegradedResult) CSV() string {
	var c csvBuilder
	header := []any{"severity", "policy", "mean_req_ns", "mean_faults"}
	for _, p := range stats.TailPoints {
		header = append(header, fmt.Sprintf("fault_p%g_ns", p))
	}
	header = append(header, "storms", "stall_storms", "storm_delay_ns", "read_retries", "hard_errors")
	c.row(header...)
	for _, row := range r.Rows {
		cells := []any{row.Severity, row.Policy, row.MeanRequestNS, row.MeanFaults}
		for _, v := range row.FaultTail {
			cells = append(cells, v)
		}
		cells = append(cells, row.Injected.Storms, row.Injected.StallStorms,
			row.Injected.StormDelay, row.Injected.ReadRetries, row.Injected.HardReadErrors)
		c.row(cells...)
	}
	return c.String()
}

// ExtDegradedSweep runs the degraded-device sweep: ycsb-a (the paper's
// mixed read/write latency workload) on SSD swap at 50% capacity, under
// each fault-plan severity, comparing how Clock-LRU's and MG-LRU's
// fault-latency distributions absorb storms, stalls, and retries. Each
// severity folds its plan into the system config, so the "none" rows
// reuse the exact series the paper figures run (cache and checkpoint
// included) while faulted rows get their own seeded plans — the same
// trial seeds, since the seed key deliberately excludes the plan.
// extCacheRatios is the ext2 cache-size ladder: memory capacity as a
// fraction of the serve workload's footprint. The low rung starves the
// file tier hard enough that phase shifts refault; the high rung fits
// most of the hot set.
var extCacheRatios = []float64{0.35, 0.5, 0.7}

// extFilePolicies is the ext2 policy arm: the paper's Clock-vs-MGLRU
// baseline plus the PID-ablated MG-LRU, isolating how much of the
// file-tier protection comes from the tier-gain controller.
func extFilePolicies() []PolicySpec {
	return Policies(PolClock, PolMGLRU, PolMGLRUNoPID)
}

// FileServeRow is one (cache ratio, policy) cell of the page-cache sweep.
type FileServeRow struct {
	Ratio  float64
	Policy string
	// HitRatio is resident file-page touches over all file-page touches
	// (hits + file major faults), pooled across trials.
	HitRatio float64
	// RefaultRate is shadow-entry refaults per file-page touch (hits +
	// file major faults) — how often serving traffic lands on a page the
	// policy evicted prematurely. Normalizing by touches rather than by
	// evictions keeps the rate comparable across policies: type steering
	// shrinks the eviction count itself, which would deflate the
	// denominator and mask the benefit.
	RefaultRate float64
	// WritebackPages is the mean writeback volume per trial (flusher
	// extents plus synchronous eviction pageouts).
	WritebackPages float64
	// FlusherShare is the fraction of that volume the flusher wrote
	// asynchronously (the rest were reclaim-path pageouts).
	FlusherShare float64
	// MeanRequestNS is the headline serving latency.
	MeanRequestNS float64
	// FaultTail is the major-fault latency at stats.TailPoints, ns.
	FaultTail []float64
}

// FileServeResult is the ext2 figure family: file-vs-anon reclaim under
// production serving traffic, across a cache-size ladder.
type FileServeResult struct {
	Workload string
	Rows     []FileServeRow
}

// ID implements Result.
func (r *FileServeResult) ID() string { return "ext2" }

// Render implements Result.
func (r *FileServeResult) Render() string {
	t := newTable("ratio", "policy", "hit%", "refault-rate", "wb-pages", "flusher%", "mean-req(ms)", "p50", "p90", "p99", "p99.9", "p99.99")
	for _, row := range r.Rows {
		cells := []string{
			fmt.Sprintf("%.2f", row.Ratio), row.Policy,
			f2(row.HitRatio * 100), fmt.Sprintf("%.4f", row.RefaultRate),
			f2(row.WritebackPages), f2(row.FlusherShare * 100),
			f2(row.MeanRequestNS / 1e6),
		}
		for _, v := range row.FaultTail {
			cells = append(cells, nsToMs(v))
		}
		t.row(cells...)
	}
	return fmt.Sprintf("Ext 2: %s file-vs-anon reclaim across cache sizes (SSD, page cache on)\n", r.Workload) + t.String()
}

// CSV implements CSVer.
func (r *FileServeResult) CSV() string {
	var c csvBuilder
	header := []any{"ratio", "policy", "hit_ratio", "refault_rate", "writeback_pages", "flusher_share", "mean_req_ns"}
	for _, p := range stats.TailPoints {
		header = append(header, fmt.Sprintf("fault_p%g_ns", p))
	}
	c.row(header...)
	for _, row := range r.Rows {
		cells := []any{row.Ratio, row.Policy, row.HitRatio, row.RefaultRate,
			row.WritebackPages, row.FlusherShare, row.MeanRequestNS}
		for _, v := range row.FaultTail {
			cells = append(cells, v)
		}
		c.row(cells...)
	}
	return c.String()
}

// fileServeCell aggregates a series' page-cache counters into one row.
// Ratios pool raw counts across trials (a per-trial mean of ratios would
// overweight quiet trials); volumes are per-trial means.
func fileServeCell(ratio float64, policy string, s *Series) FileServeRow {
	var hits, faults, refaults, flushed, total uint64
	for _, m := range s.Trials {
		hits += m.Counters.FileAccesses
		faults += m.Counters.FileFaults
		refaults += m.FileCache.Refaults
		flushed += m.FileCache.WritebackPages
		total += m.FileCache.WrittenBack()
	}
	row := FileServeRow{
		Ratio:         ratio,
		Policy:        policy,
		MeanRequestNS: stats.Mean(s.MeanRequestNS()),
		FaultTail:     s.MergedFaultTail(),
	}
	if touches := hits + faults; touches > 0 {
		row.HitRatio = float64(hits) / float64(touches)
		row.RefaultRate = float64(refaults) / float64(touches)
	}
	if n := len(s.Trials); n > 0 {
		row.WritebackPages = float64(total) / float64(n)
	}
	if total > 0 {
		row.FlusherShare = float64(flushed) / float64(total)
	}
	return row
}

// ExtFileServeSweep runs the page-cache serving sweep: the serve workload
// (file-backed object store + anon index and scratch) on SSD swap with
// the page cache enabled, across the cache-size ladder, comparing Clock,
// MG-LRU, and PID-ablated MG-LRU on hit ratio, refault rate, writeback
// volume, and tail fault latency. The serve workload's phase shifts
// create the refault imbalance the tier-gain controller exists for, so
// the mglru vs mglru-nopid delta is the controller's measured effect.
func ExtFileServeSweep(r *Runner) (Result, error) {
	return extFileServeSweep(r, fault.Plan{})
}

// extFileServeSweep is ExtFileServeSweep with an explicit fault plan —
// the zero-plan transparency test injects an inert file-targeted plan
// here and asserts the figure stays byte-identical.
func extFileServeSweep(r *Runner, plan fault.Plan) (Result, error) {
	w := r.workloadByName("serve")
	res := &FileServeResult{Workload: w.Name}
	for _, ratio := range extCacheRatios {
		sys := SystemAt(ratio, core.SwapSSD)
		sys.PageCache = pagecache.DefaultConfig()
		sys.Fault = plan
		for _, p := range extFilePolicies() {
			s, err := r.Run(w, p, sys)
			if err != nil {
				return nil, fmt.Errorf("ext2 %.2f/%s: %w", ratio, p.Name, err)
			}
			res.Rows = append(res.Rows, fileServeCell(ratio, p.Name, s))
		}
	}
	return res, nil
}

// extFileSeverities is the ext3 fault-plan ladder for the file backing
// device. Unlike ext1's swap ladder these plans target the file device,
// so the anon/swap path stays pristine and every observed degradation is
// attributable to the page cache's error handling.
var extFileSeverities = []struct {
	Name string
	Plan fault.Plan
}{
	{"none", fault.Plan{}},
	{"mild", fault.MildFile()},
	{"severe", fault.SevereFile()},
}

// DegradedFileRow is one (severity, policy) cell of the ext3 sweep.
type DegradedFileRow struct {
	Severity, Policy string
	// MeanRequestNS is the headline serving latency under this plan.
	MeanRequestNS float64
	// HitRatio and RefaultRate are the ext2 cache-health metrics, here
	// tracking refault inflation as the device degrades.
	HitRatio, RefaultRate float64
	// IOErrors / PoisonedFaults are the SIGBUS ledger: demand reads that
	// exhausted retries (poisoning their page) and later fast-failed
	// faults on those pages.
	IOErrors, PoisonedFaults uint64
	// WriteErrors / DataAtRisk are the errseq ledger: writeback writes
	// past their retry budget and pages whose latest data never
	// persisted.
	WriteErrors, DataAtRisk uint64
	// ThrottleStalls / ThrottleStallMS account the hard dirty throttle.
	ThrottleStalls  uint64
	ThrottleStallMS float64
	// FaultTail is the major-fault latency at stats.TailPoints, ns.
	FaultTail []float64
	// Injected sums the file-device fault plane's counters across trials.
	Injected fault.Stats
}

// DegradedFileResult is the ext3 figure: the serve workload over a
// degrading file backing device — the page cache degrading
// kernel-fashion (SIGBUS, errseq, dirty throttle) instead of dying.
type DegradedFileResult struct {
	Workload string
	Rows     []DegradedFileRow
}

// ID implements Result.
func (r *DegradedFileResult) ID() string { return "ext3" }

// Render implements Result.
func (r *DegradedFileResult) Render() string {
	t := newTable("severity", "policy", "mean-req(ms)", "hit%", "refault-rate",
		"io-err", "sigbus", "wr-err", "at-risk", "throttles", "throttle-ms",
		"p50", "p99", "p99.99")
	for _, row := range r.Rows {
		cells := []string{
			row.Severity, row.Policy,
			f2(row.MeanRequestNS / 1e6),
			f2(row.HitRatio * 100), fmt.Sprintf("%.4f", row.RefaultRate),
			fmt.Sprintf("%d", row.IOErrors),
			fmt.Sprintf("%d", row.PoisonedFaults),
			fmt.Sprintf("%d", row.WriteErrors),
			fmt.Sprintf("%d", row.DataAtRisk),
			fmt.Sprintf("%d", row.ThrottleStalls),
			f2(row.ThrottleStallMS),
			nsToMs(row.FaultTail[0]), nsToMs(row.FaultTail[2]), nsToMs(row.FaultTail[4]),
		}
		t.row(cells...)
	}
	return fmt.Sprintf("Ext 3: %s serving over a degraded file device (SSD, page cache + dirty throttle)\n", r.Workload) + t.String()
}

// CSV implements CSVer.
func (r *DegradedFileResult) CSV() string {
	var c csvBuilder
	header := []any{"severity", "policy", "mean_req_ns", "hit_ratio", "refault_rate",
		"io_errors", "poisoned_faults", "write_errors", "data_at_risk",
		"throttle_stalls", "throttle_stall_ns"}
	for _, p := range stats.TailPoints {
		header = append(header, fmt.Sprintf("fault_p%g_ns", p))
	}
	header = append(header, "storms", "stall_storms", "storm_delay_ns",
		"read_retries", "write_retries", "prefetch_errors")
	c.row(header...)
	for _, row := range r.Rows {
		cells := []any{row.Severity, row.Policy, row.MeanRequestNS,
			row.HitRatio, row.RefaultRate,
			row.IOErrors, row.PoisonedFaults, row.WriteErrors, row.DataAtRisk,
			row.ThrottleStalls, row.ThrottleStallMS * 1e6}
		for _, v := range row.FaultTail {
			cells = append(cells, v)
		}
		cells = append(cells, row.Injected.Storms, row.Injected.StallStorms,
			row.Injected.StormDelay, row.Injected.ReadRetries,
			row.Injected.WriteRetries, row.Injected.PrefetchErrors)
		c.row(cells...)
	}
	return c.String()
}

// ExtDegradedFileSweep runs the degraded-file-device sweep: the serve
// workload at the middle cache ratio with the degraded page-cache
// profile (hard dirty throttle armed), under each file-device fault
// severity, comparing Clock, MG-LRU, and PID-ablated MG-LRU. The
// severity only swaps the fault plan — the system profile is otherwise
// identical across rows, and the seed key excludes the plan, so every
// row reruns the same seeded trials over a progressively sicker device.
// The "none" rows double as the zero-plan transparency baseline: no
// wrapper is installed and they execute the pristine event sequence.
func ExtDegradedFileSweep(r *Runner) (Result, error) {
	w := r.workloadByName("serve")
	res := &DegradedFileResult{Workload: w.Name}
	for _, sev := range extFileSeverities {
		sys := SystemAt(0.5, core.SwapSSD)
		sys.PageCache = pagecache.DegradedConfig()
		sys.Fault = sev.Plan
		for _, p := range extFilePolicies() {
			s, err := r.Run(w, p, sys)
			if err != nil {
				return nil, fmt.Errorf("ext3 %s/%s: %w", sev.Name, p.Name, err)
			}
			res.Rows = append(res.Rows, degradedFileCell(sev.Name, p.Name, s))
		}
	}
	return res, nil
}

// degradedFileCell aggregates a series into one ext3 row. Ratios pool
// raw counts across trials (as in ext2); error and throttle counters are
// trial totals — the figure's point is their growth down the ladder.
func degradedFileCell(severity, policy string, s *Series) DegradedFileRow {
	var hits, faults uint64
	for _, m := range s.Trials {
		hits += m.Counters.FileAccesses
		faults += m.Counters.FileFaults
	}
	fc := s.FileCacheTotals()
	row := DegradedFileRow{
		Severity:        severity,
		Policy:          policy,
		MeanRequestNS:   stats.Mean(s.MeanRequestNS()),
		IOErrors:        fc.FileIOErrors,
		PoisonedFaults:  fc.PoisonedFaults,
		WriteErrors:     fc.WriteErrors,
		DataAtRisk:      fc.DataAtRisk,
		ThrottleStalls:  fc.ThrottleStalls,
		ThrottleStallMS: float64(fc.ThrottleStallTime) / 1e6,
		FaultTail:       s.MergedFaultTail(),
		Injected:        s.FileInjectionTotals(),
	}
	if touches := hits + faults; touches > 0 {
		row.HitRatio = float64(hits) / float64(touches)
		row.RefaultRate = float64(fc.Refaults) / float64(touches)
	}
	return row
}

func ExtDegradedSweep(r *Runner) (Result, error) {
	w := r.workloadByName("ycsb-a")
	res := &DegradedResult{Workload: w.Name}
	for _, sev := range extSeverities {
		sys := SystemAt(0.5, core.SwapSSD)
		sys.Fault = sev.Plan
		for _, p := range BaselinePair() {
			s, err := r.Run(w, p, sys)
			if err != nil {
				return nil, fmt.Errorf("ext1 %s/%s: %w", sev.Name, p.Name, err)
			}
			res.Rows = append(res.Rows, DegradedRow{
				Severity:      sev.Name,
				Policy:        p.Name,
				MeanRequestNS: stats.Mean(s.MeanRequestNS()),
				MeanFaults:    stats.Mean(s.Faults()),
				FaultTail:     s.MergedFaultTail(),
				Injected:      s.InjectionTotals(),
			})
		}
	}
	return res, nil
}
