package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mglrusim/internal/core"
	"mglrusim/internal/stats"
)

// Result is a figure reproduction: typed data plus a text rendering.
type Result interface {
	// ID is the figure identifier ("fig1" ... "fig12").
	ID() string
	// Render produces the plain-text table(s) for the figure.
	Render() string
}

// FigureFunc reproduces one figure.
type FigureFunc func(*Runner) (Result, error)

// Figures maps figure IDs to their reproduction functions, in paper
// order.
var Figures = map[string]FigureFunc{
	"fig1":  Fig1,
	"fig2":  Fig2,
	"fig3":  Fig3,
	"fig4":  Fig4,
	"fig5":  Fig5,
	"fig6":  Fig6,
	"fig7":  Fig7,
	"fig8":  Fig8,
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
}

// FigureIDs returns all figure IDs in order.
func FigureIDs() []string {
	ids := make([]string, 0, len(Figures))
	for id := range Figures {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return figOrder(ids[i]) < figOrder(ids[j])
	})
	return ids
}

func figOrder(id string) int {
	var n int
	fmt.Sscanf(id, "fig%d", &n)
	return n
}

// --- Fig 1: mean runtime & faults, MG-LRU vs Clock, SSD @50% ---

// Fig1Row is one workload's normalized comparison.
type Fig1Row struct {
	Workload string
	// ClockPerf is the raw mean headline metric (seconds, or ns for
	// latency workloads); MGLRUNorm values are normalized to Clock.
	ClockPerf, ClockFaults   float64
	MGLRUPerfNorm            float64
	MGLRUFaultsNorm          float64
	ClockPerfCV, MGLRUPerfCV float64
}

// Fig1Result reproduces Figure 1.
type Fig1Result struct{ Rows []Fig1Row }

// ID implements Result.
func (r *Fig1Result) ID() string { return "fig1" }

// Render implements Result.
func (r *Fig1Result) Render() string {
	t := newTable("workload", "perf(mglru/clock)", "faults(mglru/clock)", "cv-clock", "cv-mglru")
	for _, row := range r.Rows {
		t.row(row.Workload, f3(row.MGLRUPerfNorm), f3(row.MGLRUFaultsNorm),
			f3(row.ClockPerfCV), f3(row.MGLRUPerfCV))
	}
	return "Fig 1: mean performance & faults normalized to Clock (SSD, 50% ratio)\n" + t.String()
}

// Fig1 runs the Figure 1 experiment.
func Fig1(r *Runner) (Result, error) {
	sys := SystemAt(0.5, core.SwapSSD)
	res := &Fig1Result{}
	for _, w := range r.workloads() {
		cs, err := r.Run(w, PolicyByName(PolClock), sys)
		if err != nil {
			return nil, err
		}
		ms, err := r.Run(w, PolicyByName(PolMGLRU), sys)
		if err != nil {
			return nil, err
		}
		cp := stats.Mean(cs.Performance(w.Latency))
		mp := stats.Mean(ms.Performance(w.Latency))
		cf := stats.Mean(cs.Faults())
		mf := stats.Mean(ms.Faults())
		res.Rows = append(res.Rows, Fig1Row{
			Workload:        w.Name,
			ClockPerf:       cp,
			ClockFaults:     cf,
			MGLRUPerfNorm:   safeDiv(mp, cp),
			MGLRUFaultsNorm: safeDiv(mf, cf),
			ClockPerfCV:     stats.CV(cs.Performance(w.Latency)),
			MGLRUPerfCV:     stats.CV(ms.Performance(w.Latency)),
		})
	}
	return res, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// --- Fig 2: joint (runtime, faults) distributions ---

// JointSeries is one (workload, policy) scatter with its linear fit.
type JointSeries struct {
	Workload, Policy string
	Runtimes         []float64 // seconds, per trial
	Faults           []float64 // per trial
	Fit              stats.Regression
	RuntimeSummary   stats.Summary
}

// Fig2Result reproduces Figure 2.
type Fig2Result struct{ Series []JointSeries }

// ID implements Result.
func (r *Fig2Result) ID() string { return "fig2" }

// Render implements Result.
func (r *Fig2Result) Render() string {
	t := newTable("workload", "policy", "mean-rt(s)", "rt-spread(max/min)", "rt-cv", "faults-cv", "r2(rt~faults)")
	for _, s := range r.Series {
		t.row(s.Workload, s.Policy, f2(s.RuntimeSummary.Mean), f2(s.RuntimeSummary.Spread()),
			f3(stats.CV(s.Runtimes)), f3(stats.CV(s.Faults)), f3(s.Fit.R2))
	}
	return "Fig 2: joint runtime/fault distributions (SSD, 50% ratio)\n" + t.String()
}

func jointSeries(r *Runner, ws []WorkloadSpec, ps []PolicySpec, sys core.SystemConfig) ([]JointSeries, error) {
	var out []JointSeries
	for _, w := range ws {
		for _, p := range ps {
			s, err := r.Run(w, p, sys)
			if err != nil {
				return nil, err
			}
			rt, fl := s.Runtimes(), s.Faults()
			out = append(out, JointSeries{
				Workload: w.Name, Policy: p.Name,
				Runtimes: rt, Faults: fl,
				Fit:            stats.LinearFit(fl, rt),
				RuntimeSummary: stats.Summarize(rt),
			})
		}
	}
	return out, nil
}

// Fig2 runs the Figure 2 experiment.
func Fig2(r *Runner) (Result, error) {
	series, err := jointSeries(r, r.batchWorkloads(), BaselinePair(), SystemAt(0.5, core.SwapSSD))
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Series: series}, nil
}

// --- Fig 3: YCSB tail latencies, SSD @50% ---

// TailRow is one workload's tail comparison between two policies.
type TailRow struct {
	Workload string
	Class    string // "read" or "write"
	// Points are the stats.TailPoints percentiles for each policy, ns.
	Clock, MGLRU []float64
}

// TailResult renders tail-latency comparisons (Figs. 3, 8, 12 share it).
type TailResult struct {
	FigID string
	Label string
	Rows  []TailRow
}

// ID implements Result.
func (r *TailResult) ID() string { return r.FigID }

// Render implements Result.
func (r *TailResult) Render() string {
	t := newTable("workload", "class", "pct", "clock", "mglru", "mglru/clock")
	for _, row := range r.Rows {
		for i, p := range stats.TailPoints {
			if row.Clock[i] == 0 && row.MGLRU[i] == 0 {
				continue
			}
			t.row(row.Workload, row.Class, fmt.Sprintf("p%g", p),
				nsToMs(row.Clock[i]), nsToMs(row.MGLRU[i]), f2(safeDiv(row.MGLRU[i], row.Clock[i])))
		}
	}
	return r.Label + "\n" + t.String()
}

func tailFigure(r *Runner, figID, label string, sys core.SystemConfig) (Result, error) {
	res := &TailResult{FigID: figID, Label: label}
	for _, w := range r.ycsbWorkloads() {
		cs, err := r.Run(w, PolicyByName(PolClock), sys)
		if err != nil {
			return nil, err
		}
		ms, err := r.Run(w, PolicyByName(PolMGLRU), sys)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TailRow{
			Workload: w.Name, Class: "read",
			Clock: cs.MergedReadTail(), MGLRU: ms.MergedReadTail(),
		})
		if w.Name != "ycsb-c" { // C is read-only; no write tail
			res.Rows = append(res.Rows, TailRow{
				Workload: w.Name, Class: "write",
				Clock: cs.MergedWriteTail(), MGLRU: ms.MergedWriteTail(),
			})
		}
	}
	return res, nil
}

// Fig3 runs the Figure 3 experiment.
func Fig3(r *Runner) (Result, error) {
	return tailFigure(r, "fig3", "Fig 3: YCSB tail latencies (SSD, 50% ratio)", SystemAt(0.5, core.SwapSSD))
}

// --- Fig 4: MG-LRU variant means normalized to default ---

// NormMatrix holds per-workload, per-policy values normalized to a base
// policy (Figs. 4, 6, 9, 10 share this shape).
type NormMatrix struct {
	FigID    string
	Label    string
	Base     string
	Policies []string
	// Perf[workload][policy] and Faults[workload][policy], normalized.
	Workloads []string
	Perf      map[string]map[string]float64
	Faults    map[string]map[string]float64
	// PValues[workload] is the Welch p-value for clock-vs-mglru means
	// when both are present (Fig 6's significance claims).
	PValues map[string]float64
}

// ID implements Result.
func (m *NormMatrix) ID() string { return m.FigID }

// Render implements Result.
func (m *NormMatrix) Render() string {
	cols := append([]string{"workload"}, m.Policies...)
	var b strings.Builder
	b.WriteString(m.Label + "\n")
	b.WriteString(fmt.Sprintf("(values normalized to %s; perf)\n", m.Base))
	t := newTable(cols...)
	for _, w := range m.Workloads {
		cells := []string{w}
		for _, p := range m.Policies {
			cells = append(cells, f3(m.Perf[w][p]))
		}
		t.row(cells...)
	}
	b.WriteString(t.String())
	if m.Faults != nil {
		b.WriteString("(faults)\n")
		t = newTable(cols...)
		for _, w := range m.Workloads {
			cells := []string{w}
			for _, p := range m.Policies {
				cells = append(cells, f3(m.Faults[w][p]))
			}
			t.row(cells...)
		}
		b.WriteString(t.String())
	}
	if len(m.PValues) > 0 {
		b.WriteString("(Welch p-values, clock vs mglru)\n")
		t = newTable("workload", "p")
		for _, w := range m.Workloads {
			if p, ok := m.PValues[w]; ok {
				t.row(w, fmt.Sprintf("%.4f", p))
			}
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func normMatrix(r *Runner, figID, label, base string, ws []WorkloadSpec, ps []PolicySpec,
	sys core.SystemConfig, withTTest bool) (*NormMatrix, error) {
	m := &NormMatrix{
		FigID: figID, Label: label, Base: base,
		Perf:    map[string]map[string]float64{},
		Faults:  map[string]map[string]float64{},
		PValues: map[string]float64{},
	}
	for _, p := range ps {
		m.Policies = append(m.Policies, p.Name)
	}
	for _, w := range ws {
		m.Workloads = append(m.Workloads, w.Name)
		bs, err := r.Run(w, PolicyByName(base), sys)
		if err != nil {
			return nil, err
		}
		basePerf := stats.Mean(bs.Performance(w.Latency))
		baseFaults := stats.Mean(bs.Faults())
		m.Perf[w.Name] = map[string]float64{}
		m.Faults[w.Name] = map[string]float64{}
		var clockPerf, mglruPerf []float64
		for _, p := range ps {
			s, err := r.Run(w, p, sys)
			if err != nil {
				return nil, err
			}
			perf := s.Performance(w.Latency)
			m.Perf[w.Name][p.Name] = safeDiv(stats.Mean(perf), basePerf)
			m.Faults[w.Name][p.Name] = safeDiv(stats.Mean(s.Faults()), baseFaults)
			switch p.Name {
			case PolClock:
				clockPerf = perf
			case PolMGLRU:
				mglruPerf = perf
			}
		}
		if withTTest && len(clockPerf) >= 2 && len(mglruPerf) >= 2 {
			m.PValues[w.Name] = stats.WelchTTest(clockPerf, mglruPerf).P
		}
	}
	return m, nil
}

// Fig4 runs the Figure 4 experiment.
func Fig4(r *Runner) (Result, error) {
	return normMatrix(r, "fig4",
		"Fig 4: MG-LRU variant means (SSD, 50% ratio)", PolMGLRU,
		r.workloads(), MGLRUVariants(), SystemAt(0.5, core.SwapSSD), false)
}

// --- Fig 5: joint distributions for variants ---

// Fig5Result reproduces Figure 5.
type Fig5Result struct{ Series []JointSeries }

// ID implements Result.
func (r *Fig5Result) ID() string { return "fig5" }

// Render implements Result.
func (r *Fig5Result) Render() string {
	t := newTable("workload", "policy", "mean-rt(s)", "mean-faults", "r2(rt~faults)", "slope(ms/fault)")
	for _, s := range r.Series {
		t.row(s.Workload, s.Policy, f2(s.RuntimeSummary.Mean), f2(stats.Mean(s.Faults)),
			f3(s.Fit.R2), f3(s.Fit.Slope*1000))
	}
	return "Fig 5: variant joint runtime/fault distributions (SSD, 50% ratio)\n" + t.String()
}

// Fig5 runs the Figure 5 experiment.
func Fig5(r *Runner) (Result, error) {
	series, err := jointSeries(r, r.batchWorkloads(), MGLRUVariants(), SystemAt(0.5, core.SwapSSD))
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Series: series}, nil
}

// --- Fig 6: capacity sweep ---

// MultiResult bundles sub-results (per capacity ratio / per medium).
type MultiResult struct {
	FigID string
	Parts []Result
}

// ID implements Result.
func (m *MultiResult) ID() string { return m.FigID }

// Render implements Result.
func (m *MultiResult) Render() string {
	parts := make([]string, len(m.Parts))
	for i, p := range m.Parts {
		parts[i] = p.Render()
	}
	return strings.Join(parts, "\n")
}

// Fig6 runs the Figure 6 experiment.
func Fig6(r *Runner) (Result, error) {
	out := &MultiResult{FigID: "fig6"}
	for _, ratio := range []float64{0.75, 0.9} {
		m, err := normMatrix(r, "fig6",
			fmt.Sprintf("Fig 6: mean performance at %.0f%% capacity-footprint ratio (SSD)", ratio*100),
			PolMGLRU, r.workloads(), AllPolicies(), SystemAt(ratio, core.SwapSSD), true)
		if err != nil {
			return nil, err
		}
		m.Faults = nil // Fig 6 plots performance only
		out.Parts = append(out.Parts, m)
	}
	return out, nil
}

// --- Fig 7: fault distributions at higher capacities ---

// Fig7Row is one (ratio, workload, policy) fault five-number summary,
// normalized to the default-MGLRU mean fault count.
type Fig7Row struct {
	Ratio            float64
	Workload, Policy string
	Summary          stats.Summary // normalized
}

// Fig7Result reproduces Figure 7.
type Fig7Result struct{ Rows []Fig7Row }

// ID implements Result.
func (r *Fig7Result) ID() string { return "fig7" }

// Render implements Result.
func (r *Fig7Result) Render() string {
	t := newTable("ratio", "workload", "policy", "min", "q1", "med", "q3", "max")
	for _, row := range r.Rows {
		s := row.Summary
		t.row(fmt.Sprintf("%.0f%%", row.Ratio*100), row.Workload, row.Policy,
			f2(s.Min), f2(s.Q1), f2(s.Median), f2(s.Q3), f2(s.Max))
	}
	return "Fig 7: fault distributions normalized to mean MG-LRU faults (SSD)\n" + t.String()
}

// Fig7 runs the Figure 7 experiment.
func Fig7(r *Runner) (Result, error) {
	res := &Fig7Result{}
	for _, ratio := range []float64{0.75, 0.9} {
		sys := SystemAt(ratio, core.SwapSSD)
		for _, w := range r.batchWorkloads() {
			base, err := r.Run(w, PolicyByName(PolMGLRU), sys)
			if err != nil {
				return nil, err
			}
			baseMean := stats.Mean(base.Faults())
			if baseMean == 0 {
				baseMean = 1
			}
			for _, p := range AllPolicies() {
				s, err := r.Run(w, p, sys)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Fig7Row{
					Ratio: ratio, Workload: w.Name, Policy: p.Name,
					Summary: stats.Summarize(stats.Normalize(s.Faults(), baseMean)),
				})
			}
		}
	}
	return res, nil
}

// Fig8 runs the Figure 8 experiment (tails at 75% and 90% capacity).
func Fig8(r *Runner) (Result, error) {
	out := &MultiResult{FigID: "fig8"}
	for _, ratio := range []float64{0.75, 0.9} {
		t, err := tailFigure(r, "fig8",
			fmt.Sprintf("Fig 8: YCSB tail latencies at %.0f%% capacity (SSD)", ratio*100),
			SystemAt(ratio, core.SwapSSD))
		if err != nil {
			return nil, err
		}
		out.Parts = append(out.Parts, t)
	}
	return out, nil
}

// Fig9 runs the Figure 9 experiment (ZRAM mean performance).
func Fig9(r *Runner) (Result, error) {
	m, err := normMatrix(r, "fig9", "Fig 9: mean performance with ZRAM swap (50% ratio)",
		PolMGLRU, r.workloads(), AllPolicies(), SystemAt(0.5, core.SwapZRAM), false)
	if err != nil {
		return nil, err
	}
	m.Faults = nil
	return m, nil
}

// Fig10 runs the Figure 10 experiment (ZRAM mean faults).
func Fig10(r *Runner) (Result, error) {
	m, err := normMatrix(r, "fig10", "Fig 10: mean faults with ZRAM swap (50% ratio)",
		PolMGLRU, r.workloads(), AllPolicies(), SystemAt(0.5, core.SwapZRAM), false)
	if err != nil {
		return nil, err
	}
	m.Perf, m.Faults = m.Faults, nil // render the fault matrix as the payload
	return m, nil
}

// --- Fig 11: ZRAM vs SSD deltas ---

// Fig11Row is one workload's medium comparison for one policy.
type Fig11Row struct {
	Workload, Policy     string
	RuntimeRatio         float64 // zram/ssd
	FaultRatio           float64 // zram/ssd
	SSDRuntime, ZRuntime float64 // seconds
}

// Fig11Result reproduces Figure 11.
type Fig11Result struct{ Rows []Fig11Row }

// ID implements Result.
func (r *Fig11Result) ID() string { return "fig11" }

// Render implements Result.
func (r *Fig11Result) Render() string {
	t := newTable("workload", "policy", "runtime(zram/ssd)", "faults(zram/ssd)", "rt-ssd(s)", "rt-zram(s)")
	for _, row := range r.Rows {
		t.row(row.Workload, row.Policy, f3(row.RuntimeRatio), f3(row.FaultRatio),
			f2(row.SSDRuntime), f2(row.ZRuntime))
	}
	return "Fig 11: change in runtime and faults, ZRAM vs SSD (50% ratio)\n" + t.String()
}

// Fig11 runs the Figure 11 experiment.
func Fig11(r *Runner) (Result, error) {
	res := &Fig11Result{}
	ssd := SystemAt(0.5, core.SwapSSD)
	zr := SystemAt(0.5, core.SwapZRAM)
	for _, w := range r.workloads() {
		for _, p := range BaselinePair() {
			ss, err := r.Run(w, p, ssd)
			if err != nil {
				return nil, err
			}
			zs, err := r.Run(w, p, zr)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig11Row{
				Workload: w.Name, Policy: p.Name,
				RuntimeRatio: safeDiv(stats.Mean(zs.Runtimes()), stats.Mean(ss.Runtimes())),
				FaultRatio:   safeDiv(stats.Mean(zs.Faults()), stats.Mean(ss.Faults())),
				SSDRuntime:   stats.Mean(ss.Runtimes()),
				ZRuntime:     stats.Mean(zs.Runtimes()),
			})
		}
	}
	return res, nil
}

// Fig12 runs the Figure 12 experiment (ZRAM tails).
func Fig12(r *Runner) (Result, error) {
	return tailFigure(r, "fig12", "Fig 12: YCSB tail latencies with ZRAM swap (50% ratio)",
		SystemAt(0.5, core.SwapZRAM))
}
