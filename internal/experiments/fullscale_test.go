package experiments

import (
	"reflect"
	"strings"
	"testing"

	"mglrusim/internal/core"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/mglru"
)

// fullScaleSmokeOptions is FullScaleOptions with the footprint capped for
// test time: the geometry under test — the kernel's 512-PTE PMD fanout,
// which auto-selects the packed SoA layout — is exactly what full-scale
// runs use, only the page count shrinks.
func fullScaleSmokeOptions(parallelism int) Options {
	o := FullScaleOptions()
	o.Scale = 5
	o.Trials = 2
	o.Parallelism = parallelism
	o.Audit = true
	return o
}

// TestFullScaleSmokeDeterminism runs the capped full-scale profile twice —
// serial and 8-wide — with the invariant auditor on, and requires the two
// series to agree metric-for-metric: host parallelism must stay invisible
// at the full-scale region geometry, and the audited packed-layout trials
// must raise zero violations.
func TestFullScaleSmokeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs audited trials at full-scale geometry")
	}
	run := func(parallelism int) []core.Metrics {
		r := NewRunner(fullScaleSmokeOptions(parallelism))
		w := r.workloadByName("tpch")
		if got := w.Make().RegionPTEs(); got != 512 {
			t.Fatalf("full-scale profile laid tpch out with %d-PTE regions, want 512", got)
		}
		s, err := r.Run(w, PolicyByName(PolMGLRU), SystemAt(0.5, core.SwapSSD))
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return s.Trials
	}
	serial := run(1)
	wide := run(8)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], wide[i]) {
			t.Fatalf("trial %d differs between parallelism 1 and 8:\nserial: %+v\nwide:   %+v",
				i, serial[i], wide[i])
		}
	}
}

// TestTrackRegionsAuditedFullScale runs the capped full-scale geometry
// under MG-LRU with the bitset-backed generation-region tracker enabled
// and the auditor cross-checking it against the intrusive lists at every
// sweep: a trial completing without error is the tracker passing audit.
func TestTrackRegionsAuditedFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: audited full-scale-geometry trial")
	}
	cfg := mglru.Default()
	cfg.TrackRegions = true
	sys := SystemAt(0.5, core.SwapSSD)
	sys.VMM.Audit = true
	sys.RegionPTEs = 512
	spec := WorkloadByNameAt("tpch", 5, 512)
	_, err := core.RunTrial(spec.Make(), func() policy.Policy { return mglru.New(cfg) }, sys, 0xABCD, 7)
	if err != nil {
		t.Fatalf("tracked + audited trial failed: %v", err)
	}
}

// TestRegionFanoutRegression is the coupling-knob regression test: the
// same workload laid out at the legacy 64-PTE fanout and the kernel's
// 512-PTE fanout must both complete audited trials (neither geometry may
// break an invariant), and a fanout disagreement between system config
// and workload layout must fail loudly instead of silently re-laying-out.
func TestRegionFanoutRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: audited trials at two fanouts")
	}
	for _, fanout := range []int{64, 512} {
		sys := SystemAt(0.5, core.SwapSSD)
		sys.VMM.Audit = true
		sys.RegionPTEs = fanout
		spec := WorkloadByNameAt("tpch", 0.5, fanout)
		if got := spec.Make().RegionPTEs(); got != fanout {
			t.Fatalf("workload laid out with %d-PTE regions, knob said %d", got, fanout)
		}
		if _, err := core.RunTrial(spec.Make(), PolicyByName(PolMGLRU).Make, sys, 0xABCD, 7); err != nil {
			t.Fatalf("fanout %d: audited trial failed: %v", fanout, err)
		}
	}

	sys := SystemAt(0.5, core.SwapSSD)
	sys.RegionPTEs = 512
	spec := WorkloadByNameAt("tpch", 0.5, 64)
	_, err := core.RunTrial(spec.Make(), PolicyByName(PolMGLRU).Make, sys, 0xABCD, 7)
	if err == nil {
		t.Fatal("fanout mismatch between system and workload must error, got nil")
	}
	if !strings.Contains(err.Error(), "fanout mismatch") {
		t.Fatalf("mismatch error does not name the problem: %v", err)
	}
}
