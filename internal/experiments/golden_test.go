package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden figure file with current output")

// TestGoldenFigures renders a deterministic reduced-trials figure set and
// diffs it against the checked-in golden file. The determinism suite
// (internal/check) guarantees identical seeds give identical metrics, so
// any diff here is a genuine behaviour change in the policies, the memory
// manager, or the harness — run with -update-golden after verifying the
// change is intended, and say why in the commit.
//
// The reduced parameters (2 trials, 0.2 scale) keep this at a couple of
// seconds; the full 25-trial output lives in testdata/figures_full.txt.
func TestGoldenFigures(t *testing.T) {
	r := NewRunner(Options{Trials: 2, Scale: 0.2, Seed: 0x5EED, Parallelism: 2})

	var b strings.Builder
	for _, id := range []string{"fig1", "fig2"} {
		res, err := Figures[id](r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b.WriteString(res.Render())
		b.WriteString("\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "golden_figures.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("figure output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intended, refresh with: go test ./internal/experiments -run TestGoldenFigures -update-golden", got, want)
	}
}
