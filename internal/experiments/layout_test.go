package experiments

import (
	"strings"
	"testing"

	"mglrusim/internal/pagetable"
)

// renderAllFigures runs the complete figure matrix under one page-table
// storage layout and concatenates every rendered table. Both layouts get
// a fresh Runner so neither can warm the other's series cache.
func renderAllFigures(t *testing.T, layout pagetable.Layout) string {
	t.Helper()
	r := NewRunner(Options{Trials: 2, Scale: 0.2, Seed: 0x5EED, Parallelism: 2, Layout: layout})
	var b strings.Builder
	for _, id := range FigureIDs() {
		res, err := Figures[id](r)
		if err != nil {
			t.Fatalf("%s under %s layout: %v", id, layout, err)
		}
		b.WriteString(res.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// TestLayoutDifferentialFigures is the layout-equivalence gauntlet: the
// ENTIRE figure matrix, rendered at the golden-test parameters, must be
// byte-identical under the legacy AoS page table and the packed SoA
// bit-plane layout. The packed layout is pure representation — any
// divergence here means a flag read or region counter disagrees between
// the two storage schemes on some path a figure exercises.
func TestLayoutDifferentialFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: renders the full figure matrix twice")
	}
	legacy := renderAllFigures(t, pagetable.LayoutLegacy)
	packed := renderAllFigures(t, pagetable.LayoutPacked)
	if legacy == packed {
		return
	}
	// Pin the first diverging line so the failure names the figure.
	ll, pl := strings.Split(legacy, "\n"), strings.Split(packed, "\n")
	for i := 0; i < len(ll) && i < len(pl); i++ {
		if ll[i] != pl[i] {
			t.Fatalf("figure output diverges between layouts at line %d:\n  legacy: %q\n  packed: %q", i+1, ll[i], pl[i])
		}
	}
	t.Fatalf("figure output diverges between layouts: legacy %d lines, packed %d lines", len(ll), len(pl))
}
