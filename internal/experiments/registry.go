// Package experiments is the characterization harness: it defines the
// policy and workload matrices the paper sweeps, runs multi-trial series
// (25 executions per configuration, fresh system per trial), and
// regenerates every figure of the evaluation as a typed result with a
// plain-text rendering.
package experiments

import (
	"fmt"

	"mglrusim/internal/core"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/policy/simple"
	"mglrusim/internal/workload"
	"mglrusim/internal/workload/pagerank"
	"mglrusim/internal/workload/serve"
	"mglrusim/internal/workload/tpch"
	"mglrusim/internal/workload/ycsb"
)

// PolicySpec names a replacement-policy configuration.
type PolicySpec struct {
	Name string
	Make core.PolicyFactory
}

// Canonical policy names, matching the paper's labels, plus the
// scan-free baselines (not part of the paper's matrix).
const (
	PolClock    = "clock"
	PolMGLRU    = "mglru"
	PolGen14    = "gen14"
	PolScanAll  = "scan-all"
	PolScanNone = "scan-none"
	PolScanRand = "scan-rand"
	PolFIFO     = "fifo"
	PolRandom   = "random"
	// PolMGLRUNoPID is default MG-LRU with PID tier protection switched
	// off — the ablation arm of the ext2 file-vs-anon figures.
	PolMGLRUNoPID = "mglru-nopid"
)

// Policies returns specs for the requested policy names.
func Policies(names ...string) []PolicySpec {
	out := make([]PolicySpec, 0, len(names))
	for _, n := range names {
		out = append(out, PolicyByName(n))
	}
	return out
}

// PolicyByName resolves one policy spec; it panics on unknown names.
func PolicyByName(name string) PolicySpec {
	switch name {
	case PolClock:
		return PolicySpec{Name: name, Make: func() policy.Policy { return clock.New(clock.DefaultConfig()) }}
	case PolMGLRU:
		return PolicySpec{Name: name, Make: func() policy.Policy { return mglru.New(mglru.Default()) }}
	case PolGen14:
		return PolicySpec{Name: name, Make: func() policy.Policy { return mglru.New(mglru.Gen14()) }}
	case PolScanAll:
		return PolicySpec{Name: name, Make: func() policy.Policy { return mglru.New(mglru.ScanAll()) }}
	case PolScanNone:
		return PolicySpec{Name: name, Make: func() policy.Policy { return mglru.New(mglru.ScanNone()) }}
	case PolScanRand:
		return PolicySpec{Name: name, Make: func() policy.Policy { return mglru.New(mglru.ScanRand(0.5)) }}
	case PolFIFO:
		return PolicySpec{Name: name, Make: func() policy.Policy { return simple.NewFIFO() }}
	case PolRandom:
		return PolicySpec{Name: name, Make: func() policy.Policy { return simple.NewRandom() }}
	case PolMGLRUNoPID:
		return PolicySpec{Name: name, Make: func() policy.Policy {
			cfg := mglru.Default()
			cfg.VariantName = PolMGLRUNoPID
			cfg.TierProtection = false
			return mglru.New(cfg)
		}}
	}
	panic(fmt.Sprintf("experiments: unknown policy %q", name))
}

// PolicyNames lists every registered policy name, in registry order —
// the validation vocabulary API layers resolve client-supplied names
// against (PolicyByName panics on unknown names; check membership here
// first).
func PolicyNames() []string {
	return []string{PolClock, PolMGLRU, PolGen14, PolScanAll, PolScanNone, PolScanRand, PolFIFO, PolRandom, PolMGLRUNoPID}
}

// BaselinePair is the Clock-vs-MGLRU comparison of §V-A.
func BaselinePair() []PolicySpec { return Policies(PolClock, PolMGLRU) }

// AllPolicies is the full §V-B matrix.
func AllPolicies() []PolicySpec {
	return Policies(PolClock, PolMGLRU, PolGen14, PolScanAll, PolScanNone, PolScanRand)
}

// MGLRUVariants is the §V-B parameter study (normalized to default MG-LRU).
func MGLRUVariants() []PolicySpec {
	return Policies(PolMGLRU, PolGen14, PolScanAll, PolScanNone, PolScanRand)
}

// WorkloadSpec names a workload configuration. Make must return a fresh
// (or reusable, stateless-across-trials) workload.
type WorkloadSpec struct {
	Name string
	// Latency reports whether the workload's headline metric is request
	// latency (YCSB) rather than runtime.
	Latency bool
	Make    func() workload.Workload
}

// Workloads returns the paper's five workloads, scaled by scale (1.0 =
// the calibrated default footprint; larger values grow tables, graphs,
// item counts, and request volumes proportionally), at the default
// region fanout.
func Workloads(scale float64) []WorkloadSpec { return WorkloadsAt(scale, 0) }

// WorkloadsAt is Workloads with an explicit page-table region fanout —
// the single knob every workload config's RegionPTEs derives from
// (0 = workload.DefaultRegionPTEs). Full-scale runs pass the kernel's
// 512-PTE PMD fanout here.
func WorkloadsAt(scale float64, regionPTEs int) []WorkloadSpec {
	if scale <= 0 {
		scale = 1
	}
	sc := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	return []WorkloadSpec{
		{Name: "tpch", Make: func() workload.Workload {
			cfg := tpch.DefaultConfig()
			cfg.LineitemPages = sc(cfg.LineitemPages)
			cfg.OrdersPages = sc(cfg.OrdersPages)
			cfg.CustomerPages = sc(cfg.CustomerPages)
			cfg.HashPages = sc(cfg.HashPages)
			cfg.InputPages = sc(cfg.InputPages)
			if regionPTEs > 0 {
				cfg.RegionPTEs = regionPTEs
			}
			return tpch.New(cfg)
		}},
		{Name: "pagerank", Make: func() workload.Workload {
			cfg := pagerank.DefaultConfig()
			cfg.Graph.Vertices = sc(cfg.Graph.Vertices)
			if regionPTEs > 0 {
				cfg.RegionPTEs = regionPTEs
			}
			return pagerank.New(cfg)
		}},
		{Name: "ycsb-a", Latency: true, Make: func() workload.Workload {
			cfg := ycsb.DefaultConfig(ycsb.MixA)
			cfg.Items = sc(cfg.Items)
			cfg.Requests = sc(cfg.Requests)
			if regionPTEs > 0 {
				cfg.RegionPTEs = regionPTEs
			}
			return ycsb.New(cfg)
		}},
		{Name: "ycsb-b", Latency: true, Make: func() workload.Workload {
			cfg := ycsb.DefaultConfig(ycsb.MixB)
			cfg.Items = sc(cfg.Items)
			cfg.Requests = sc(cfg.Requests)
			if regionPTEs > 0 {
				cfg.RegionPTEs = regionPTEs
			}
			return ycsb.New(cfg)
		}},
		{Name: "ycsb-c", Latency: true, Make: func() workload.Workload {
			cfg := ycsb.DefaultConfig(ycsb.MixC)
			cfg.Items = sc(cfg.Items)
			cfg.Requests = sc(cfg.Requests)
			if regionPTEs > 0 {
				cfg.RegionPTEs = regionPTEs
			}
			return ycsb.New(cfg)
		}},
	}
}

// ExtensionWorkloadsAt returns workloads added by extension figure
// families, beyond the paper's five. They resolve by name and sweep like
// any other workload but never enter WorkloadsAt, so the paper-figure
// matrix is unchanged.
func ExtensionWorkloadsAt(scale float64, regionPTEs int) []WorkloadSpec {
	if scale <= 0 {
		scale = 1
	}
	sc := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	return []WorkloadSpec{
		{Name: "serve", Latency: true, Make: func() workload.Workload {
			cfg := serve.DefaultConfig()
			cfg.Objects = sc(cfg.Objects)
			cfg.Requests = sc(cfg.Requests)
			cfg.Sessions = sc(cfg.Sessions)
			if regionPTEs > 0 {
				cfg.RegionPTEs = regionPTEs
			}
			return serve.New(cfg)
		}},
	}
}

// WorkloadNames lists every registered workload name — the paper's five
// then the extension workloads, in registry order — the validation
// vocabulary for client-supplied names (WorkloadByNameAt panics on
// unknown names; check membership here first). Enumerating the registry
// at scale 1 constructs nothing: WorkloadSpec.Make is lazy.
func WorkloadNames() []string {
	ws := WorkloadsAt(1, 0)
	ws = append(ws, ExtensionWorkloadsAt(1, 0)...)
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// WorkloadByName resolves a single workload spec at the given scale and
// the default region fanout.
func WorkloadByName(name string, scale float64) WorkloadSpec {
	return WorkloadByNameAt(name, scale, 0)
}

// WorkloadByNameAt resolves a single workload spec at the given scale
// and region fanout.
func WorkloadByNameAt(name string, scale float64, regionPTEs int) WorkloadSpec {
	for _, w := range WorkloadsAt(scale, regionPTEs) {
		if w.Name == name {
			return w
		}
	}
	for _, w := range ExtensionWorkloadsAt(scale, regionPTEs) {
		if w.Name == name {
			return w
		}
	}
	panic(fmt.Sprintf("experiments: unknown workload %q", name))
}

// batchWorkloads returns the non-latency (runtime-metric) workloads the
// joint-distribution figures use.
func batchWorkloads(scale float64, regionPTEs int) []WorkloadSpec {
	all := WorkloadsAt(scale, regionPTEs)
	return []WorkloadSpec{all[0], all[1]} // tpch, pagerank
}

// ycsbWorkloads returns the latency-metric workloads.
func ycsbWorkloads(scale float64, regionPTEs int) []WorkloadSpec {
	all := WorkloadsAt(scale, regionPTEs)
	return all[2:]
}
