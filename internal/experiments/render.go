package experiments

import (
	"fmt"
	"strings"
)

// table is a minimal fixed-width text table builder for figure renderings.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) rowf(format string, args ...any) {
	t.row(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the table with aligned columns.
func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// f2 formats a float at 2 decimals; f3 at 3.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// usToMs renders nanoseconds as milliseconds.
func nsToMs(ns float64) string { return fmt.Sprintf("%.2fms", ns/1e6) }
