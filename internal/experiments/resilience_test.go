package experiments

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/core"
	"mglrusim/internal/fault"
	"mglrusim/internal/mem"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/sim"
	"mglrusim/internal/vmm"
)

// aggressivePlan injects enough faults at tiny trial scales that every
// injection counter is exercised, without ever exhausting a retry budget.
func aggressivePlan() fault.Plan {
	return fault.Plan{
		Storms: fault.StormConfig{
			Rate: 50, MeanDuration: 10 * sim.Millisecond,
			ExtraLatency: 1 * sim.Millisecond, Jitter: 0.3, StallProb: 0.2,
		},
		ReadErrors: fault.ReadErrorConfig{Prob: 0.01, MaxRetries: 64, Backoff: 10 * sim.Microsecond},
	}
}

// encodeOrDie is the test shorthand for a series' canonical byte form.
func encodeOrDie(t *testing.T, key string, s *Series) []byte {
	t.Helper()
	data, err := encodeSeries(key, s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFaultInjectionDeterminism: two independent harness processes (two
// fresh runners — separate caches, separate RNG trees) with the same seed
// and plan must produce byte-identical series, injected-fault counters
// included.
func TestFaultInjectionDeterminism(t *testing.T) {
	opts := fastOpts()
	opts.Fault = aggressivePlan()
	w := WorkloadByName("ycsb-c", 0.1)
	p := PolicyByName(PolClock)
	sys := SystemAt(0.5, core.SwapSSD)

	run := func() *Series {
		s, err := NewRunner(opts).Run(w, p, sys)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if !bytes.Equal(encodeOrDie(t, "k", a), encodeOrDie(t, "k", b)) {
		t.Fatal("same-seed fault-injected runs diverged")
	}
	inj := a.InjectionTotals()
	if inj.Storms == 0 {
		t.Fatalf("plan injected nothing; determinism check is vacuous: %+v", inj)
	}

	// A different seed must actually change the injection schedule.
	opts2 := opts
	opts2.Seed = 0xD1FF
	c, err := NewRunner(opts2).Run(w, p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(encodeOrDie(t, "k", a), encodeOrDie(t, "k", c)) {
		t.Fatal("different seeds produced identical fault-injected series")
	}
}

// TestCheckpointResume: a second harness process sharing the store must
// serve the series from disk — zero trial executions — and reproduce the
// persisted bytes exactly, so resumed figure runs are byte-identical to
// uninterrupted ones.
func TestCheckpointResume(t *testing.T) {
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.Checkpoint = store
	w := WorkloadByName("ycsb-c", 0.1)
	sys := SystemAt(0.5, core.SwapSSD)

	var firstRuns atomic.Int64
	a, err := NewRunner(opts).Run(w, countingPolicy(PolClock, &firstRuns), sys)
	if err != nil {
		t.Fatal(err)
	}
	if firstRuns.Load() == 0 {
		t.Fatal("first run executed nothing")
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d series, want 1", store.Len())
	}

	var resumedRuns atomic.Int64
	b, err := NewRunner(opts).Run(w, countingPolicy(PolClock, &resumedRuns), sys)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumedRuns.Load(); got != 0 {
		t.Fatalf("resume re-executed %d trials, want 0", got)
	}
	if !bytes.Equal(encodeOrDie(t, "k", a), encodeOrDie(t, "k", b)) {
		t.Fatal("resumed series differs from the original")
	}

	// A different configuration must not be served from the same store.
	var otherRuns atomic.Int64
	if _, err := NewRunner(opts).Run(w, countingPolicy(PolFIFO, &otherRuns), SystemAt(0.75, core.SwapSSD)); err != nil {
		t.Fatal(err)
	}
	if otherRuns.Load() == 0 {
		t.Fatal("different config was wrongly served from checkpoint")
	}
}

// TestCheckpointRejectsCorruptEntry: a truncated or tampered blob is
// treated as absent — the series re-executes and overwrites it — rather
// than poisoning the resumed run.
func TestCheckpointRejectsCorruptEntry(t *testing.T) {
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.Checkpoint = store
	w := WorkloadByName("ycsb-c", 0.1)
	sys := SystemAt(0.5, core.SwapSSD)

	if _, err := NewRunner(opts).Run(w, PolicyByName(PolClock), sys); err != nil {
		t.Fatal(err)
	}
	// Corrupt every stored entry in place.
	r2 := NewRunner(opts)
	sysFolded := sys
	sysFolded.VMM.Audit = sysFolded.VMM.Audit || opts.Audit
	key := r2.cacheKey(seedKey(w, PolicyByName(PolClock), sysFolded), sysFolded)
	if err := store.Put(key, []byte(`{"Version":999}`)); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	if _, err := r2.Run(w, countingPolicy(PolClock, &runs), sys); err != nil {
		t.Fatal(err)
	}
	if runs.Load() == 0 {
		t.Fatal("corrupt checkpoint entry was trusted instead of re-executed")
	}
}

// hardFailOncePolicy panics a typed *fault.HardError on its first PageIn;
// instances after the first behave normally. It models a transient
// injected device failure that a retry with a perturbed seed absorbs.
type hardFailOncePolicy struct{ policy.Policy }

func (hardFailOncePolicy) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	panic(&fault.HardError{Device: "test", Slot: 0, Attempts: 3})
}

// TestRetryRecoversTransientFailure: with a retry budget, a trial that
// dies of a hard injected error re-executes and the series completes; the
// failure consumes exactly one extra attempt.
func TestRetryRecoversTransientFailure(t *testing.T) {
	var makes atomic.Int64
	base := PolicyByName(PolClock)
	p := PolicySpec{Name: base.Name, Make: func() policy.Policy {
		if makes.Add(1) == 1 {
			return hardFailOncePolicy{clock.New(clock.DefaultConfig())}
		}
		return base.Make()
	}}
	opts := Options{Trials: 1, Scale: 0.1, Seed: 0xABC, Parallelism: 1, Retries: 2}
	if _, err := NewRunner(opts).Run(WorkloadByName("ycsb-c", 0.1), p, SystemAt(0.5, core.SwapSSD)); err != nil {
		t.Fatalf("retry did not absorb the transient failure: %v", err)
	}
	if got := makes.Load(); got != 2 {
		t.Fatalf("policy built %d times, want 2 (original + one retry)", got)
	}

	// Without a budget the same failure surfaces, still carrying its type.
	makes.Store(0)
	opts.Retries = 0
	_, err := NewRunner(opts).Run(WorkloadByName("ycsb-c", 0.1), p, SystemAt(0.5, core.SwapSSD))
	var hard *fault.HardError
	if !errors.As(err, &hard) {
		t.Fatalf("error chain lost the typed cause: %v", err)
	}
}

// TestRetryableClassifier: only typed transient-injection failures are
// retryable; deterministic bugs must surface.
func TestRetryableClassifier(t *testing.T) {
	for _, err := range []error{
		&fault.HardError{Device: "ssd", Slot: 1, Attempts: 9},
		&core.LivelockError{At: 1, Window: 2},
		&vmm.OOMError{At: 1, VPN: 2, Used: 3},
	} {
		if !Retryable(err) {
			t.Fatalf("%T not classified retryable", err)
		}
		if !Retryable(errors.Join(errors.New("trial 3"), err)) {
			t.Fatalf("wrapped %T not classified retryable", err)
		}
	}
	if Retryable(errors.New("policy bug")) {
		t.Fatal("generic failure classified retryable")
	}
}

// stallPolicy wedges every fault-in forever: the canonical livelock.
type stallPolicy struct{ policy.Policy }

func (stallPolicy) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	for {
		v.Sleep(1 * sim.Second)
	}
}

// TestWatchdogDetectsLivelock: a trial making no workload progress fails
// with a typed LivelockError after the configured virtual-time window
// instead of simulating forever.
func TestWatchdogDetectsLivelock(t *testing.T) {
	base := PolicyByName(PolClock)
	p := PolicySpec{Name: base.Name, Make: func() policy.Policy {
		return stallPolicy{clock.New(clock.DefaultConfig())}
	}}
	opts := Options{Trials: 1, Scale: 0.1, Seed: 0xABC, Parallelism: 1, Watchdog: 100 * sim.Millisecond}
	_, err := NewRunner(opts).Run(WorkloadByName("ycsb-c", 0.1), p, SystemAt(0.5, core.SwapSSD))
	if err == nil {
		t.Fatal("livelocked trial did not fail")
	}
	var live *core.LivelockError
	if !errors.As(err, &live) {
		t.Fatalf("error chain lost the typed cause: %v", err)
	}
	if live.Window != 100*sim.Millisecond {
		t.Fatalf("window = %v", live.Window)
	}
}

// TestRunMatrixGracefulDegradation: one broken policy fails only its own
// cells; every other cell completes and is returned.
func TestRunMatrixGracefulDegradation(t *testing.T) {
	broken := PolicySpec{Name: "broken", Make: func() policy.Policy {
		return failingPolicy{clock.New(clock.DefaultConfig())}
	}}
	r := NewRunner(fastOpts())
	ws := []WorkloadSpec{WorkloadByName("ycsb-c", 0.1)}
	ps := []PolicySpec{PolicyByName(PolClock), broken, PolicyByName(PolFIFO)}

	res, err := r.RunMatrix(ws, ps, SystemAt(0.5, core.SwapSSD))
	if err != nil {
		t.Fatalf("partial failure must not fail the sweep: %v", err)
	}
	if res.Complete() {
		t.Fatal("broken cell not recorded")
	}
	if len(res.Failed) != 1 || res.Failed[0].Policy != "broken" {
		t.Fatalf("failed cells = %+v", res.Failed)
	}
	if res.Get("ycsb-c", PolClock) == nil || res.Get("ycsb-c", PolFIFO) == nil {
		t.Fatal("healthy cells missing from a degraded matrix")
	}
	if res.Get("ycsb-c", "broken") != nil {
		t.Fatal("failed cell present in results")
	}
	if res.Err() == nil {
		t.Fatal("Err() must summarize the failed cells")
	}

	// Only when nothing completes does the sweep itself error.
	res2, err := r.RunMatrix(ws, []PolicySpec{broken}, SystemAt(0.5, core.SwapSSD))
	if err == nil {
		t.Fatal("all-cells-failed sweep must return an error")
	}
	if res2 == nil || len(res2.Failed) != 1 {
		t.Fatal("annotations must survive a total failure")
	}
}

// TestExtensionRegistry: the paper's figure map stays exactly twelve
// entries; extensions live in their own registry and never collide.
func TestExtensionRegistry(t *testing.T) {
	if len(Figures) != 12 {
		t.Fatalf("Figures has %d entries, the paper has 12", len(Figures))
	}
	if len(Extensions) == 0 {
		t.Fatal("no extension experiments registered")
	}
	for id := range Extensions {
		if _, clash := Figures[id]; clash {
			t.Fatalf("extension id %q collides with a paper figure", id)
		}
	}
	ids := ExtensionIDs()
	if len(ids) != len(Extensions) {
		t.Fatalf("ExtensionIDs() = %v", ids)
	}
}
