package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"mglrusim/internal/core"
	"mglrusim/internal/stats"
)

// Series is the result of running one (workload, policy, system)
// configuration for N independent trials.
type Series struct {
	Workload string
	Policy   string
	System   core.SystemConfig
	Trials   []core.Metrics
}

// Runtimes returns per-trial runtimes in seconds.
func (s *Series) Runtimes() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		out[i] = m.RuntimeSeconds()
	}
	return out
}

// Faults returns per-trial total fault counts.
func (s *Series) Faults() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		out[i] = m.Faults()
	}
	return out
}

// MeanRequestNS returns per-trial mean request latencies (YCSB-style
// workloads), in nanoseconds.
func (s *Series) MeanRequestNS() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		n := m.ReadLat.Count() + m.WriteLat.Count()
		if n == 0 {
			continue
		}
		sum := m.ReadLat.Mean()*float64(m.ReadLat.Count()) + m.WriteLat.Mean()*float64(m.WriteLat.Count())
		out[i] = sum / float64(n)
	}
	return out
}

// Performance returns the workload's headline metric per trial: mean
// request latency for latency workloads, runtime otherwise.
func (s *Series) Performance(latency bool) []float64 {
	if latency {
		return s.MeanRequestNS()
	}
	return s.Runtimes()
}

// MergedReadTail aggregates all trials' read latencies at the paper's
// tail points.
func (s *Series) MergedReadTail() []float64 {
	agg := stats.NewLatencyRecorder(0)
	for _, m := range s.Trials {
		agg.Merge(m.ReadLat)
	}
	return agg.Tail()
}

// MergedWriteTail aggregates all trials' write latencies.
func (s *Series) MergedWriteTail() []float64 {
	agg := stats.NewLatencyRecorder(0)
	for _, m := range s.Trials {
		agg.Merge(m.WriteLat)
	}
	if agg.Count() == 0 {
		return make([]float64, len(stats.TailPoints))
	}
	return agg.Tail()
}

// Options configures a harness run.
type Options struct {
	// Trials per configuration (the paper uses 25).
	Trials int
	// Scale multiplies workload footprints (1.0 = calibrated default).
	Scale float64
	// Seed is the base seed; trial i of a series derives its system
	// seed from it. The workload seed is fixed so trials are "otherwise
	// identical executions".
	Seed uint64
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// Audit runs every trial with the invariant auditor enabled
	// (internal/check); any bookkeeping violation fails the series.
	Audit bool
	// Progress, when non-nil, receives one line per completed series.
	Progress io.Writer
}

// DefaultOptions mirrors the paper's methodology.
func DefaultOptions() Options {
	return Options{Trials: 25, Scale: 1.0, Seed: 0x5EED, Parallelism: 0}
}

func (o Options) normalized() Options {
	if o.Trials <= 0 {
		o.Trials = 25
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 0x5EED
	}
	return o
}

// Runner executes series with caching, so figures that share a
// configuration (for example Fig 1 and Fig 2) reuse trials within one
// harness invocation.
type Runner struct {
	opts  Options
	mu    sync.Mutex
	cache map[string]*Series
}

// NewRunner creates a Runner.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts.normalized(), cache: map[string]*Series{}}
}

// Options returns the normalized options.
func (r *Runner) Options() Options { return r.opts }

// sysKey captures the parts of a system config that identify a series.
func sysKey(sys core.SystemConfig) string {
	return fmt.Sprintf("cpus=%d ratio=%.3f swap=%s", sys.CPUs, sys.Ratio, sys.Swap)
}

// Run executes (or returns the cached) series for the triple.
func (r *Runner) Run(w WorkloadSpec, p PolicySpec, sys core.SystemConfig) (*Series, error) {
	key := w.Name + "|" + p.Name + "|" + sysKey(sys)
	r.mu.Lock()
	if s, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()

	s := &Series{Workload: w.Name, Policy: p.Name, System: sys,
		Trials: make([]core.Metrics, r.opts.Trials)}

	// The workload seed is fixed per configuration; the system seed
	// varies per trial. Workload construction can be expensive (graph
	// generation), so build once and share: workloads are stateless
	// across Threads calls.
	wl := w.Make()
	workloadSeed := r.opts.Seed ^ 0xABCD
	sys.VMM.Audit = sys.VMM.Audit || r.opts.Audit

	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		err   error
	)
	sem := make(chan struct{}, r.opts.Parallelism)
	for i := 0; i < r.opts.Trials; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			sysSeed := trialSeed(r.opts.Seed, key, i)
			m, e := core.RunTrial(wl, p.Make, sys, workloadSeed, sysSeed)
			if e != nil {
				errMu.Lock()
				if err == nil {
					err = fmt.Errorf("%s trial %d: %w", key, i, e)
				}
				errMu.Unlock()
				return
			}
			s.Trials[i] = m
		}()
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	r.cache[key] = s
	r.mu.Unlock()
	if r.opts.Progress != nil {
		mean := stats.Mean(s.Runtimes())
		fmt.Fprintf(r.opts.Progress, "series %-40s %d trials, mean runtime %.2fs\n", key, r.opts.Trials, mean)
	}
	return s, nil
}

// trialSeed derives a per-trial system seed that differs across series
// and trials but is stable for a given base seed.
func trialSeed(base uint64, key string, trial int) uint64 {
	h := base
	for _, c := range key {
		h = h*1099511628211 + uint64(c)
	}
	return h*2654435761 + uint64(trial)*0x9E3779B97F4A7C15 + 1
}

// RunMatrix executes every (workload, policy) combination under sys.
func (r *Runner) RunMatrix(ws []WorkloadSpec, ps []PolicySpec, sys core.SystemConfig) (map[string]map[string]*Series, error) {
	out := map[string]map[string]*Series{}
	for _, w := range ws {
		out[w.Name] = map[string]*Series{}
		for _, p := range ps {
			s, err := r.Run(w, p, sys)
			if err != nil {
				return nil, err
			}
			out[w.Name][p.Name] = s
		}
	}
	return out, nil
}

// SystemAt returns the default system with the given ratio and medium.
func SystemAt(ratio float64, swapKind core.SwapKind) core.SystemConfig {
	sys := core.DefaultSystemConfig()
	sys.Ratio = ratio
	sys.Swap = swapKind
	return sys
}
