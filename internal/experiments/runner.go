package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"mglrusim/internal/core"
	"mglrusim/internal/stats"
	"mglrusim/internal/workload"
)

// Series is the result of running one (workload, policy, system)
// configuration for N independent trials.
type Series struct {
	Workload string
	Policy   string
	System   core.SystemConfig
	Trials   []core.Metrics
}

// Runtimes returns per-trial runtimes in seconds.
func (s *Series) Runtimes() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		out[i] = m.RuntimeSeconds()
	}
	return out
}

// Faults returns per-trial total fault counts.
func (s *Series) Faults() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		out[i] = m.Faults()
	}
	return out
}

// MeanRequestNS returns per-trial mean request latencies (YCSB-style
// workloads), in nanoseconds.
func (s *Series) MeanRequestNS() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		n := m.ReadLat.Count() + m.WriteLat.Count()
		if n == 0 {
			continue
		}
		sum := m.ReadLat.Mean()*float64(m.ReadLat.Count()) + m.WriteLat.Mean()*float64(m.WriteLat.Count())
		out[i] = sum / float64(n)
	}
	return out
}

// Performance returns the workload's headline metric per trial: mean
// request latency for latency workloads, runtime otherwise.
func (s *Series) Performance(latency bool) []float64 {
	if latency {
		return s.MeanRequestNS()
	}
	return s.Runtimes()
}

// MergedReadTail aggregates all trials' read latencies at the paper's
// tail points.
func (s *Series) MergedReadTail() []float64 {
	agg := stats.NewLatencyRecorder(0)
	for _, m := range s.Trials {
		agg.Merge(m.ReadLat)
	}
	return agg.Tail()
}

// MergedWriteTail aggregates all trials' write latencies.
func (s *Series) MergedWriteTail() []float64 {
	agg := stats.NewLatencyRecorder(0)
	for _, m := range s.Trials {
		agg.Merge(m.WriteLat)
	}
	if agg.Count() == 0 {
		return make([]float64, len(stats.TailPoints))
	}
	return agg.Tail()
}

// Options configures a harness run.
type Options struct {
	// Trials per configuration (the paper uses 25).
	Trials int
	// Scale multiplies workload footprints (1.0 = calibrated default).
	Scale float64
	// Seed is the base seed; trial i of a series derives its system
	// seed from it. The workload seed is fixed so trials are "otherwise
	// identical executions".
	Seed uint64
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// Audit runs every trial with the invariant auditor enabled
	// (internal/check); any bookkeeping violation fails the series.
	Audit bool
	// Progress, when non-nil, receives one line per completed series.
	Progress io.Writer
}

// DefaultOptions mirrors the paper's methodology.
func DefaultOptions() Options {
	return Options{Trials: 25, Scale: 1.0, Seed: 0x5EED, Parallelism: 0}
}

func (o Options) normalized() Options {
	if o.Trials <= 0 {
		o.Trials = 25
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 0x5EED
	}
	return o
}

// Runner executes series with caching, so figures that share a
// configuration (for example Fig 1 and Fig 2) reuse trials within one
// harness invocation. Concurrent Run calls for the same configuration are
// deduplicated singleflight-style: exactly one goroutine executes the
// series, the rest wait for its result.
type Runner struct {
	opts  Options
	mu    sync.Mutex
	cache map[string]*seriesCall

	// wlMu guards workload memoization: construction (graph generation,
	// zipf tables) is expensive and workloads are stateless across
	// Threads calls, so one instance per spec name serves every series.
	wlMu sync.Mutex
	wls  map[string]workload.Workload
}

// seriesCall is one in-flight or completed series execution.
type seriesCall struct {
	done chan struct{} // closed when s/err are final
	s    *Series
	err  error
}

// NewRunner creates a Runner.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:  opts.normalized(),
		cache: map[string]*seriesCall{},
		wls:   map[string]workload.Workload{},
	}
}

// Options returns the normalized options.
func (r *Runner) Options() Options { return r.opts }

// seedKey captures the identity triple that trial seeds are derived from.
// Deliberately narrower than the cache key: two runs differing only in
// VMM knobs or device parameters draw identical seeds, keeping them
// "otherwise identical executions".
func seedKey(w WorkloadSpec, p PolicySpec, sys core.SystemConfig) string {
	return fmt.Sprintf("%s|%s|cpus=%d ratio=%.3f swap=%s", w.Name, p.Name, sys.CPUs, sys.Ratio, sys.Swap)
}

// cacheKey is the full configuration fingerprint a cached series is valid
// for: every SystemConfig field (VMM knobs, device parameters, FlushCPU —
// all plain values, so %+v covers them recursively) plus the run options
// that shape results. Earlier versions keyed only on (cpus, ratio, swap)
// and silently shared trials between configs differing in anything else.
func (r *Runner) cacheKey(sk string, sys core.SystemConfig) string {
	return fmt.Sprintf("%s|%+v|scale=%g trials=%d seed=%d", sk, sys, r.opts.Scale, r.opts.Trials, r.opts.Seed)
}

// workload returns the memoized workload instance for spec w.
func (r *Runner) workload(w WorkloadSpec) workload.Workload {
	r.wlMu.Lock()
	defer r.wlMu.Unlock()
	wl, ok := r.wls[w.Name]
	if !ok {
		wl = w.Make()
		r.wls[w.Name] = wl
	}
	return wl
}

// Run executes (or returns the cached) series for the triple.
func (r *Runner) Run(w WorkloadSpec, p PolicySpec, sys core.SystemConfig) (*Series, error) {
	// Fold the runner-wide audit option in before fingerprinting so a
	// cached non-audited series is never served to an audited run.
	sys.VMM.Audit = sys.VMM.Audit || r.opts.Audit
	sk := seedKey(w, p, sys)
	key := r.cacheKey(sk, sys)

	r.mu.Lock()
	if c, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-c.done
		return c.s, c.err
	}
	c := &seriesCall{done: make(chan struct{})}
	r.cache[key] = c
	r.mu.Unlock()

	c.s, c.err = r.runSeries(w, p, sys, sk)
	close(c.done)
	if c.err != nil {
		// Drop failed executions from the cache so a later call retries
		// instead of replaying the error forever.
		r.mu.Lock()
		if r.cache[key] == c {
			delete(r.cache, key)
		}
		r.mu.Unlock()
	}
	return c.s, c.err
}

// runSeries executes all trials of one series. The first trial failure
// closes cancel, which stops the launch loop and makes queued trials
// return without starting a simulation — in-flight siblings are not
// torn down mid-simulation (the engine is single-threaded per trial),
// but no further work begins after a failure.
func (r *Runner) runSeries(w WorkloadSpec, p PolicySpec, sys core.SystemConfig, sk string) (*Series, error) {
	s := &Series{Workload: w.Name, Policy: p.Name, System: sys,
		Trials: make([]core.Metrics, r.opts.Trials)}

	// The workload seed is fixed per configuration; the system seed
	// varies per trial.
	wl := r.workload(w)
	workloadSeed := r.opts.Seed ^ 0xABCD

	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		err    error
		cancel = make(chan struct{})
	)
	fail := func(e error) {
		errMu.Lock()
		if err == nil {
			err = e
			close(cancel)
		}
		errMu.Unlock()
	}
	sem := make(chan struct{}, r.opts.Parallelism)
launch:
	for i := 0; i < r.opts.Trials; i++ {
		i := i
		select {
		case <-cancel:
			break launch
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			select {
			case <-cancel:
				return // a sibling already failed; skip this trial
			default:
			}
			sysSeed := trialSeed(r.opts.Seed, sk, i)
			m, e := core.RunTrial(wl, p.Make, sys, workloadSeed, sysSeed)
			if e != nil {
				fail(fmt.Errorf("%s trial %d: %w", sk, i, e))
				return
			}
			s.Trials[i] = m
		}()
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}

	if r.opts.Progress != nil {
		mean := stats.Mean(s.Runtimes())
		fmt.Fprintf(r.opts.Progress, "series %-40s %d trials, mean runtime %.2fs\n", sk, r.opts.Trials, mean)
	}
	return s, nil
}

// trialSeed derives a per-trial system seed that differs across series
// and trials but is stable for a given base seed.
func trialSeed(base uint64, key string, trial int) uint64 {
	h := base
	for _, c := range key {
		h = h*1099511628211 + uint64(c)
	}
	return h*2654435761 + uint64(trial)*0x9E3779B97F4A7C15 + 1
}

// RunMatrix executes every (workload, policy) combination under sys.
func (r *Runner) RunMatrix(ws []WorkloadSpec, ps []PolicySpec, sys core.SystemConfig) (map[string]map[string]*Series, error) {
	out := map[string]map[string]*Series{}
	for _, w := range ws {
		out[w.Name] = map[string]*Series{}
		for _, p := range ps {
			s, err := r.Run(w, p, sys)
			if err != nil {
				return nil, err
			}
			out[w.Name][p.Name] = s
		}
	}
	return out, nil
}

// SystemAt returns the default system with the given ratio and medium.
func SystemAt(ratio float64, swapKind core.SwapKind) core.SystemConfig {
	sys := core.DefaultSystemConfig()
	sys.Ratio = ratio
	sys.Swap = swapKind
	return sys
}
