package experiments

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/core"
	"mglrusim/internal/fault"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
	"mglrusim/internal/telemetry"
	"mglrusim/internal/vmm"
	"mglrusim/internal/workload"
)

// Series is the result of running one (workload, policy, system)
// configuration for N independent trials.
type Series struct {
	Workload string
	Policy   string
	System   core.SystemConfig
	Trials   []core.Metrics
}

// Runtimes returns per-trial runtimes in seconds.
func (s *Series) Runtimes() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		out[i] = m.RuntimeSeconds()
	}
	return out
}

// Faults returns per-trial total fault counts.
func (s *Series) Faults() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		out[i] = m.Faults()
	}
	return out
}

// MeanRequestNS returns per-trial mean request latencies (YCSB-style
// workloads), in nanoseconds.
func (s *Series) MeanRequestNS() []float64 {
	out := make([]float64, len(s.Trials))
	for i, m := range s.Trials {
		n := m.ReadLat.Count() + m.WriteLat.Count()
		if n == 0 {
			continue
		}
		sum := m.ReadLat.Mean()*float64(m.ReadLat.Count()) + m.WriteLat.Mean()*float64(m.WriteLat.Count())
		out[i] = sum / float64(n)
	}
	return out
}

// Performance returns the workload's headline metric per trial: mean
// request latency for latency workloads, runtime otherwise.
func (s *Series) Performance(latency bool) []float64 {
	if latency {
		return s.MeanRequestNS()
	}
	return s.Runtimes()
}

// MergedReadTail aggregates all trials' read latencies at the paper's
// tail points.
func (s *Series) MergedReadTail() []float64 {
	agg := stats.NewLatencyRecorder(0)
	for _, m := range s.Trials {
		agg.Merge(m.ReadLat)
	}
	return agg.Tail()
}

// MergedWriteTail aggregates all trials' write latencies.
func (s *Series) MergedWriteTail() []float64 {
	agg := stats.NewLatencyRecorder(0)
	for _, m := range s.Trials {
		agg.Merge(m.WriteLat)
	}
	if agg.Count() == 0 {
		return make([]float64, len(stats.TailPoints))
	}
	return agg.Tail()
}

// MergedFaultTail aggregates all trials' major-fault service times at
// the paper's tail points (the fault-latency CDF of the degraded-device
// sweep). Trials without a recorder contribute nothing.
func (s *Series) MergedFaultTail() []float64 {
	agg := stats.NewLatencyRecorder(0)
	for _, m := range s.Trials {
		if m.FaultLat != nil {
			agg.Merge(m.FaultLat)
		}
	}
	if agg.Count() == 0 {
		return make([]float64, len(stats.TailPoints))
	}
	return agg.Tail()
}

// MeanFaultNS returns the mean major-fault service time across all
// trials, in nanoseconds.
func (s *Series) MeanFaultNS() float64 {
	agg := stats.NewLatencyRecorder(0)
	for _, m := range s.Trials {
		if m.FaultLat != nil {
			agg.Merge(m.FaultLat)
		}
	}
	return agg.Mean()
}

// InjectionTotals sums the fault plane's injection counters across all
// trials.
func (s *Series) InjectionTotals() fault.Stats {
	var t fault.Stats
	for _, m := range s.Trials {
		t.Add(m.Injected)
	}
	return t
}

// FileInjectionTotals sums the fault plane's file-device injection
// counters across all trials.
func (s *Series) FileInjectionTotals() fault.Stats {
	var t fault.Stats
	for _, m := range s.Trials {
		t.Add(m.FileInjected)
	}
	return t
}

// FileCacheTotals sums the page cache's counters across all trials.
func (s *Series) FileCacheTotals() pagecache.Stats {
	var t pagecache.Stats
	for _, m := range s.Trials {
		t.Add(m.FileCache)
	}
	return t
}

// Options configures a harness run.
type Options struct {
	// Trials per configuration (the paper uses 25).
	Trials int
	// Scale multiplies workload footprints (1.0 = calibrated default).
	Scale float64
	// RegionPTEs is the page-table region fanout every workload is laid
	// out with and every system is configured for — the single knob
	// region geometry derives from (0 = workload.DefaultRegionPTEs).
	// Full-scale runs set the kernel's 512-PTE PMD fanout.
	RegionPTEs int
	// Layout selects the page-table storage layout for every trial
	// (auto/legacy/packed; the zero value is auto).
	Layout pagetable.Layout
	// Seed is the base seed; trial i of a series derives its system
	// seed from it. The workload seed is fixed so trials are "otherwise
	// identical executions".
	Seed uint64
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// Audit runs every trial with the invariant auditor enabled
	// (internal/check); any bookkeeping violation fails the series.
	Audit bool
	// Fault applies a fault-injection plan (internal/fault) to every
	// system configuration that does not already carry its own plan. The
	// zero plan injects nothing.
	Fault fault.Plan
	// Watchdog enables the per-trial virtual-time progress watchdog for
	// configurations that do not set their own window: a trial making no
	// workload progress for this long fails with a typed LivelockError
	// instead of simulating forever. Zero disables.
	Watchdog sim.Duration
	// Retries bounds per-trial re-execution of transient, injection-
	// induced failures (hard device errors, livelocks, OOM with nothing
	// to reap). Each retry perturbs the trial's system seed; results are
	// still deterministic for a fixed (seed, plan, retry budget). Zero
	// disables retries.
	Retries int
	// Checkpoint, when non-nil, persists each completed series and
	// resumes from persisted ones, so a crashed or interrupted figure run
	// re-executes only what it had not finished.
	Checkpoint *checkpoint.Store
	// Progress, when non-nil, receives one line per completed series.
	Progress io.Writer
	// TraceDir, when non-empty, enables per-trial telemetry: every executed
	// trial writes a Chrome trace-event JSON and a counter CSV into the
	// directory, and failed or OOM-degraded trials additionally write a
	// flight-recorder dump. File names are deterministic functions of the
	// configuration and trial index, so same-seed runs produce identical
	// artifact sets regardless of Parallelism. Tracing does not change
	// metrics, seeds, or cache keys; note that series resumed from a
	// checkpoint skip execution and therefore write no artifacts.
	TraceDir string
	// MetricsInterval is the virtual-time cadence of counter snapshots in
	// traced runs. Zero defaults to 10 simulated milliseconds when TraceDir
	// is set.
	MetricsInterval sim.Duration
	// Veto, when non-nil, is consulted with each series' cache key before
	// execution; a non-nil return fails the series immediately with that
	// error. The shard executor uses it to fail quarantined (poison) cells
	// fast instead of re-executing a known-deterministic failure serially.
	// Consulted per Run call (not cached), so a quarantine that appears
	// mid-run takes effect.
	Veto func(key string) error
}

// DefaultOptions mirrors the paper's methodology.
func DefaultOptions() Options {
	return Options{Trials: 25, Scale: 1.0, Seed: 0x5EED, Parallelism: 0}
}

// FullScaleOptions is the full-scale run profile: workload footprints at
// the paper's native size rather than the calibrated 1/1000 miniature.
// At scale 1000 the tpch footprint is ≈3.9M pages (≈15.7 GB of simulated
// memory at 4 KB pages, inside the paper testbed's 12–16 GB band), laid
// out with the kernel's 512-PTE PMD fanout so region geometry matches
// real PMDs. Trials drop to 3 — full-scale runs characterize the memory
// layout and scan machinery, not the paper's 25-trial statistics.
func FullScaleOptions() Options {
	return Options{Trials: 3, Scale: 1000, Seed: 0x5EED, RegionPTEs: 512}
}

func (o Options) normalized() Options {
	if o.Trials <= 0 {
		o.Trials = 25
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 0x5EED
	}
	if o.TraceDir != "" && o.MetricsInterval <= 0 {
		o.MetricsInterval = 10 * sim.Millisecond
	}
	return o
}

// Runner executes series with caching, so figures that share a
// configuration (for example Fig 1 and Fig 2) reuse trials within one
// harness invocation. Concurrent Run calls for the same configuration are
// deduplicated singleflight-style: exactly one goroutine executes the
// series, the rest wait for its result.
type Runner struct {
	opts  Options
	mu    sync.Mutex
	cache map[string]*seriesCall

	// wlMu guards workload memoization: construction (graph generation,
	// zipf tables) is expensive and workloads are stateless across
	// Threads calls, so one instance per spec name serves every series.
	wlMu sync.Mutex
	wls  map[string]workload.Workload

	// collect, when non-nil, switches the runner into enumeration mode:
	// Run records the cell it WOULD execute and returns a synthetic series
	// without running (or even constructing) anything. See CellsFor.
	collect *cellCollector

	// fence, when set, guards checkpoint publication: it is re-evaluated
	// per commit attempt with the cell's cache key, and any error it
	// returns (typically a checkpoint.FencedError from a lost lease)
	// aborts the write and fails the series. See SetFence.
	fence atomic.Pointer[func(key string) error]
}

// seriesCall is one in-flight or completed series execution.
type seriesCall struct {
	done chan struct{} // closed when s/err are final
	s    *Series
	err  error
}

// NewRunner creates a Runner.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:  opts.normalized(),
		cache: map[string]*seriesCall{},
		wls:   map[string]workload.Workload{},
	}
}

// Options returns the normalized options.
func (r *Runner) Options() Options { return r.opts }

// seedKey captures the identity triple that trial seeds are derived from.
// Deliberately narrower than the cache key: two runs differing only in
// VMM knobs or device parameters draw identical seeds, keeping them
// "otherwise identical executions".
func seedKey(w WorkloadSpec, p PolicySpec, sys core.SystemConfig) string {
	return fmt.Sprintf("%s|%s|cpus=%d ratio=%.3f swap=%s", w.Name, p.Name, sys.CPUs, sys.Ratio, sys.Swap)
}

// cacheKey is the full configuration fingerprint a cached series is valid
// for: every SystemConfig field (VMM knobs, device parameters, FlushCPU —
// all plain values, so %+v covers them recursively) plus the run options
// that shape results. Earlier versions keyed only on (cpus, ratio, swap)
// and silently shared trials between configs differing in anything else.
func (r *Runner) cacheKey(sk string, sys core.SystemConfig) string {
	return fmt.Sprintf("%s|%+v|scale=%g trials=%d seed=%d", sk, sys, r.opts.Scale, r.opts.Trials, r.opts.Seed)
}

// workloads returns the full workload matrix at the runner's scale and
// region fanout; figure functions use these runner-scoped helpers so a
// runner's RegionPTEs knob reaches workload layout and system config
// from one place.
func (r *Runner) workloads() []WorkloadSpec {
	return WorkloadsAt(r.opts.Scale, r.opts.RegionPTEs)
}

// workloadByName resolves one workload at the runner's scale and fanout.
func (r *Runner) workloadByName(name string) WorkloadSpec {
	return WorkloadByNameAt(name, r.opts.Scale, r.opts.RegionPTEs)
}

// batchWorkloads returns the runtime-metric workloads at the runner's
// scale and fanout.
func (r *Runner) batchWorkloads() []WorkloadSpec {
	return batchWorkloads(r.opts.Scale, r.opts.RegionPTEs)
}

// ycsbWorkloads returns the latency-metric workloads at the runner's
// scale and fanout.
func (r *Runner) ycsbWorkloads() []WorkloadSpec {
	return ycsbWorkloads(r.opts.Scale, r.opts.RegionPTEs)
}

// workload returns the memoized workload instance for spec w.
func (r *Runner) workload(w WorkloadSpec) workload.Workload {
	r.wlMu.Lock()
	defer r.wlMu.Unlock()
	wl, ok := r.wls[w.Name]
	if !ok {
		wl = w.Make()
		r.wls[w.Name] = wl
	}
	return wl
}

// Run executes (or returns the cached) series for the triple.
func (r *Runner) Run(w WorkloadSpec, p PolicySpec, sys core.SystemConfig) (*Series, error) {
	// Fold the runner-wide options into the system config before
	// fingerprinting, so a cached (or checkpointed) series is never served
	// across a differing audit/fault/watchdog/layout setting. Configs
	// carrying their own plan, window, fanout, or layout win over the
	// runner-wide defaults.
	sys.VMM.Audit = sys.VMM.Audit || r.opts.Audit
	if sys.RegionPTEs == 0 {
		sys.RegionPTEs = r.opts.RegionPTEs
	}
	if sys.PageTable == pagetable.LayoutAuto {
		sys.PageTable = r.opts.Layout
	}
	if !sys.Fault.Enabled() && r.opts.Fault.Enabled() {
		sys.Fault = r.opts.Fault
	}
	if sys.Watchdog == 0 {
		sys.Watchdog = r.opts.Watchdog
	}
	sk := seedKey(w, p, sys)
	key := r.cacheKey(sk, sys)

	if r.collect != nil {
		r.collect.add(CellSpec{
			Workload: w.Name, Policy: p.Name, System: sys,
			SeedKey: sk, Key: key,
			Cost: estimateCost(w, p, sys, r.opts),
		})
		return syntheticSeries(w, p, sys, r.opts.Trials), nil
	}
	if r.opts.Veto != nil {
		if err := r.opts.Veto(key); err != nil {
			return nil, fmt.Errorf("series %s vetoed: %w", sk, err)
		}
	}

	r.mu.Lock()
	if c, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-c.done
		return c.s, c.err
	}
	c := &seriesCall{done: make(chan struct{})}
	r.cache[key] = c
	r.mu.Unlock()

	c.s, c.err = r.runSeriesCheckpointed(w, p, sys, sk, key)
	close(c.done)
	if c.err != nil {
		// Drop failed executions from the cache so a later call retries
		// instead of replaying the error forever.
		r.mu.Lock()
		if r.cache[key] == c {
			delete(r.cache, key)
		}
		r.mu.Unlock()
	}
	return c.s, c.err
}

// SetFence installs (or, with nil, clears) the publication fence: a
// callback invoked with the cell's cache key at every checkpoint commit
// attempt. A non-nil return aborts the publication and fails the series
// with that error — this is how the shard executor binds a series to its
// lease epoch, so a worker resumed after its lease was stolen is fenced
// at the store instead of double-publishing. Safe to swap concurrently
// with Run; callers that share a Runner across worker slots must scope
// the callback by key.
func (r *Runner) SetFence(fence func(key string) error) {
	if fence == nil {
		r.fence.Store(nil)
		return
	}
	r.fence.Store(&fence)
}

func (r *Runner) fenceFor(key string) func() error {
	f := r.fence.Load()
	if f == nil {
		return nil
	}
	return func() error { return (*f)(key) }
}

// runSeriesCheckpointed wraps runSeries with the persistent series store:
// a valid stored result short-circuits execution entirely (resume), and a
// fresh success is persisted before being returned. Store write failures
// degrade to a progress note — persistence is best-effort, the run's own
// results are never at risk. Two exceptions fail the series loudly:
// divergent duplicate bytes (a determinism violation) and a fenced
// publication (the authorizing lease was superseded — the result must
// not be trusted as the cell's outcome).
func (r *Runner) runSeriesCheckpointed(w WorkloadSpec, p PolicySpec, sys core.SystemConfig, sk, key string) (*Series, error) {
	invalidEntry := false
	if r.opts.Checkpoint != nil {
		if data, ok := r.opts.Checkpoint.Get(key); ok {
			if s, ok := decodeSeries(key, data); ok {
				if r.opts.Progress != nil {
					fmt.Fprintf(r.opts.Progress, "series %-40s resumed from checkpoint (%d trials)\n", sk, len(s.Trials))
				}
				return s, nil
			}
			invalidEntry = true
		}
	}
	s, err := r.runSeries(w, p, sys, sk, key)
	if err == nil && r.opts.Checkpoint != nil {
		fence := r.fenceFor(key)
		data, encErr := encodeSeries(key, s)
		if encErr == nil {
			if invalidEntry {
				// The stored entry failed validation (torn write, version
				// skew): overwrite it, per the store's resume contract —
				// but never past the fence.
				if fence != nil {
					encErr = fence()
				}
				if encErr == nil {
					encErr = r.opts.Checkpoint.Put(key, data)
				}
			} else {
				// PutVerifyFenced, not Put: under at-least-once sharded
				// execution two workers can complete the same cell;
				// byte-identical duplicates are fine, divergent bytes mean
				// the trials were not deterministic and must fail loudly
				// with both payloads kept on disk for diffing — and a
				// writer whose lease epoch was superseded is fenced before
				// either comparison, so a zombie can never publish at all.
				encErr = r.opts.Checkpoint.PutVerifyFenced(key, data, fence)
			}
		}
		var conflict *checkpoint.ConflictError
		if errors.As(encErr, &conflict) {
			return nil, fmt.Errorf("series %s: determinism violation: duplicate completion produced different bytes: %w", sk, conflict)
		}
		if errors.Is(encErr, checkpoint.ErrFenced) {
			return nil, fmt.Errorf("series %s: publication fenced: %w", sk, encErr)
		}
		if encErr != nil && r.opts.Progress != nil {
			fmt.Fprintf(r.opts.Progress, "series %-40s checkpoint write failed: %v\n", sk, encErr)
		}
	}
	return s, err
}

// runSeries executes all trials of one series. The first trial failure
// closes cancel, which stops the launch loop and makes queued trials
// return without starting a simulation — in-flight siblings are not
// torn down mid-simulation (the engine is single-threaded per trial),
// but no further work begins after a failure.
func (r *Runner) runSeries(w WorkloadSpec, p PolicySpec, sys core.SystemConfig, sk, key string) (*Series, error) {
	s := &Series{Workload: w.Name, Policy: p.Name, System: sys,
		Trials: make([]core.Metrics, r.opts.Trials)}
	traceBase := r.traceBase(sk, key)

	// The workload seed is fixed per configuration; the system seed
	// varies per trial.
	wl := r.workload(w)
	workloadSeed := r.opts.Seed ^ 0xABCD

	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		err    error
		cancel = make(chan struct{})
	)
	fail := func(e error) {
		errMu.Lock()
		if err == nil {
			err = e
			close(cancel)
		}
		errMu.Unlock()
	}
	sem := make(chan struct{}, r.opts.Parallelism)
launch:
	for i := 0; i < r.opts.Trials; i++ {
		i := i
		select {
		case <-cancel:
			break launch
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			select {
			case <-cancel:
				return // a sibling already failed; skip this trial
			default:
			}
			sysSeed := trialSeed(r.opts.Seed, sk, i)
			m, e := r.runTrialResilient(wl, p.Make, sys, workloadSeed, sysSeed, sk, traceBase, i)
			if e != nil {
				fail(fmt.Errorf("%s trial %d: %w", sk, i, e))
				return
			}
			s.Trials[i] = m
		}()
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}

	if r.opts.Progress != nil {
		mean := stats.Mean(s.Runtimes())
		fmt.Fprintf(r.opts.Progress, "series %-40s %d trials, mean runtime %.2fs\n", sk, r.opts.Trials, mean)
	}
	return s, nil
}

// runTrialResilient executes one trial with panic→error recovery and the
// configured retry budget. Attempt 0 uses sysSeed unchanged (so runs with
// Retries=0 are byte-identical to the pre-resilience harness); retryable
// failures re-execute with a deterministically perturbed seed, modeling
// "rerun the execution" the way an operator would after a hard device
// error.
func (r *Runner) runTrialResilient(wl workload.Workload, mk core.PolicyFactory, sys core.SystemConfig,
	workloadSeed, sysSeed uint64, sk, traceBase string, trial int) (core.Metrics, error) {
	for attempt := 0; ; attempt++ {
		tr := r.newTracer()
		m, err := safeRunTrial(wl, mk, sys, workloadSeed, sysSeed+uint64(attempt)*0xBF58476D1CE4E5B9, tr)
		if tr != nil {
			r.writeTrialArtifacts(traceBase, trial, attempt, tr, m, err)
		}
		if err == nil {
			return m, nil
		}
		if attempt >= r.opts.Retries || !Retryable(err) {
			return core.Metrics{}, err
		}
		if r.opts.Progress != nil {
			fmt.Fprintf(r.opts.Progress, "series %-40s trial %d attempt %d failed transiently, retrying: %v\n", sk, trial, attempt, err)
		}
	}
}

// safeRunTrial converts a panicking trial — a policy bug, a model
// violation — into an error, so one broken cell cannot take down the
// whole harness process.
func safeRunTrial(wl workload.Workload, mk core.PolicyFactory, sys core.SystemConfig,
	workloadSeed, sysSeed uint64, tr *telemetry.Tracer) (m core.Metrics, err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = fmt.Errorf("trial panicked: %w\n%s", e, debug.Stack())
			} else {
				err = fmt.Errorf("trial panicked: %v\n%s", p, debug.Stack())
			}
		}
	}()
	return core.RunTrialOpts(wl, mk, sys, workloadSeed, sysSeed, core.TrialOptions{Telemetry: tr})
}

// Retryable reports whether err is a transient, injection-induced trial
// failure worth re-executing with a perturbed seed: a hard injected
// device error, a watchdog-detected livelock, or an OOM with no reapable
// victim. Deterministic failures (policy panics, invariant violations)
// are not retryable — rerunning would only hide them.
func Retryable(err error) bool {
	var hard *fault.HardError
	var live *core.LivelockError
	var oom *vmm.OOMError
	return errors.As(err, &hard) || errors.As(err, &live) || errors.As(err, &oom)
}

// trialSeed derives a per-trial system seed that differs across series
// and trials but is stable for a given base seed.
func trialSeed(base uint64, key string, trial int) uint64 {
	h := base
	for _, c := range key {
		h = h*1099511628211 + uint64(c)
	}
	return h*2654435761 + uint64(trial)*0x9E3779B97F4A7C15 + 1
}

// MatrixCellError annotates one failed (workload, policy) cell of a
// matrix run.
type MatrixCellError struct {
	Workload, Policy string
	Err              error
}

// Error implements error.
func (e MatrixCellError) Error() string {
	return fmt.Sprintf("%s/%s: %v", e.Workload, e.Policy, e.Err)
}

// Unwrap exposes the underlying trial error for errors.As classification.
func (e MatrixCellError) Unwrap() error { return e.Err }

// MatrixResult is the outcome of RunMatrix: every completed cell plus
// per-cell failure annotations. A panicking or livelocked trial fails
// only its own cell; the rest of the matrix still runs and is returned.
type MatrixResult struct {
	// Series maps workload name → policy name → completed series.
	// Failed cells are absent.
	Series map[string]map[string]*Series
	// Failed lists the cells that did not complete, in sweep order.
	Failed []MatrixCellError
}

// Get returns the series for (workload, policy), or nil if that cell
// failed or was never run.
func (m *MatrixResult) Get(workload, policy string) *Series {
	return m.Series[workload][policy]
}

// Complete reports whether every cell succeeded.
func (m *MatrixResult) Complete() bool { return len(m.Failed) == 0 }

// Err summarizes the failed cells, or nil when the matrix is complete.
func (m *MatrixResult) Err() error {
	if len(m.Failed) == 0 {
		return nil
	}
	return fmt.Errorf("experiments: %d matrix cell(s) failed; first: %w", len(m.Failed), m.Failed[0])
}

// RunMatrix executes every (workload, policy) combination under sys,
// degrading gracefully: a failing cell is recorded in the result's Failed
// list and the sweep continues. The returned error is non-nil only when
// no cell completed at all (the result still carries the annotations).
func (r *Runner) RunMatrix(ws []WorkloadSpec, ps []PolicySpec, sys core.SystemConfig) (*MatrixResult, error) {
	out := &MatrixResult{Series: map[string]map[string]*Series{}}
	completed := 0
	for _, w := range ws {
		out.Series[w.Name] = map[string]*Series{}
		for _, p := range ps {
			s, err := r.Run(w, p, sys)
			if err != nil {
				out.Failed = append(out.Failed, MatrixCellError{Workload: w.Name, Policy: p.Name, Err: err})
				continue
			}
			out.Series[w.Name][p.Name] = s
			completed++
		}
	}
	if completed == 0 && len(out.Failed) > 0 {
		return out, fmt.Errorf("experiments: every matrix cell failed; first: %w", out.Failed[0])
	}
	return out, nil
}

// SystemAt returns the default system with the given ratio and medium.
func SystemAt(ratio float64, swapKind core.SwapKind) core.SystemConfig {
	sys := core.DefaultSystemConfig()
	sys.Ratio = ratio
	sys.Swap = swapKind
	return sys
}
