package experiments

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mglrusim/internal/core"
	"mglrusim/internal/mem"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
	"mglrusim/internal/workload"
)

// countingPolicy wraps a policy spec so tests can observe how many trials
// actually executed (Make is called exactly once per trial by RunTrial).
func countingPolicy(name string, n *atomic.Int64) PolicySpec {
	base := PolicyByName(name)
	return PolicySpec{Name: base.Name, Make: func() policy.Policy {
		n.Add(1)
		return base.Make()
	}}
}

// failingPolicy panics on the first PageIn, turning the trial's first
// fault into an engine error.
type failingPolicy struct{ policy.Policy }

func (failingPolicy) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	panic("injected trial failure")
}

func fastOpts() Options {
	return Options{Trials: 1, Scale: 0.1, Seed: 0xABC, Parallelism: 2}
}

// TestCacheMissOnVMMConfigChange covers the old sysKey bug: configs
// differing only in a VMM knob used to silently share cached trials.
func TestCacheMissOnVMMConfigChange(t *testing.T) {
	var runs atomic.Int64
	r := NewRunner(fastOpts())
	w := WorkloadByName("ycsb-c", 0.1)
	p := countingPolicy(PolClock, &runs)

	sys := SystemAt(0.5, core.SwapSSD)
	if _, err := r.Run(w, p, sys); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("first config ran %d trials, want 1", got)
	}

	tweaked := sys
	tweaked.VMM.MajorFaultOverhead *= 2
	if _, err := r.Run(w, p, tweaked); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("VMM-tweaked config must miss the cache: %d executions, want 2", got)
	}

	// Unchanged repeats still hit.
	if _, err := r.Run(w, p, tweaked); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("identical repeat must hit the cache: %d executions", got)
	}
}

// TestCacheKeyCoversFullConfig asserts the fingerprint separates configs
// the old (cpus, ratio, swap) key conflated.
func TestCacheKeyCoversFullConfig(t *testing.T) {
	w := WorkloadByName("ycsb-c", 0.1)
	p := PolicyByName(PolClock)
	base := SystemAt(0.5, core.SwapSSD)
	sk := seedKey(w, p, base)

	r := NewRunner(fastOpts())
	variants := []func(*core.SystemConfig){
		func(s *core.SystemConfig) { s.VMM.Audit = true },
		func(s *core.SystemConfig) { s.SSD.ReadLatency *= 2 },
		func(s *core.SystemConfig) { s.ZRAM.PageSize = 8192 },
		func(s *core.SystemConfig) { s.FlushCPU *= 2 },
	}
	for i, mod := range variants {
		sys := base
		mod(&sys)
		if seedKey(w, p, sys) != sk {
			t.Fatalf("variant %d: seed key must stay stable across non-identity knobs", i)
		}
		if r.cacheKey(sk, sys) == r.cacheKey(sk, base) {
			t.Fatalf("variant %d: cache key does not separate the configs", i)
		}
	}

	// Scale and trials are part of the fingerprint too.
	small := NewRunner(Options{Trials: 1, Scale: 0.1, Seed: 0xABC})
	big := NewRunner(Options{Trials: 2, Scale: 0.2, Seed: 0xABC})
	if small.cacheKey(sk, base) == big.cacheKey(sk, base) {
		t.Fatal("cache key must include scale and trial count")
	}
}

// TestFailedTrialCancelsSiblings injects a trial that fails on its first
// fault and asserts the series shuts down promptly instead of running the
// remaining trials.
func TestFailedTrialCancelsSiblings(t *testing.T) {
	var started atomic.Int64
	base := PolicyByName(PolClock)
	p := PolicySpec{Name: base.Name, Make: func() policy.Policy {
		started.Add(1)
		return failingPolicy{clock.New(clock.DefaultConfig())}
	}}
	r := NewRunner(Options{Trials: 8, Scale: 0.1, Seed: 0xABC, Parallelism: 1})

	_, err := r.Run(WorkloadByName("ycsb-c", 0.1), p, SystemAt(0.5, core.SwapSSD))
	if err == nil {
		t.Fatal("expected the injected failure to surface")
	}
	if !strings.Contains(err.Error(), "injected trial failure") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The failure closes the cancel channel before the failing trial
	// releases its parallelism slot, so with Parallelism=1 no later trial
	// may start a simulation.
	if got := started.Load(); got != 1 {
		t.Fatalf("%d trials started after a failure, want 1", got)
	}

	// A failed series must not be cached: the next call retries.
	var retried atomic.Int64
	ok := countingPolicy(PolClock, &retried)
	ok.Name = p.Name // same cache identity as the failed series
	if _, err := r.Run(WorkloadByName("ycsb-c", 0.1), ok, SystemAt(0.5, core.SwapSSD)); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if retried.Load() == 0 {
		t.Fatal("retry did not re-execute the series")
	}
}

// TestConcurrentRunsExecuteOnce hammers Run from concurrent goroutines on
// the same and different keys (run under -race in CI) and asserts exactly
// one execution per key.
func TestConcurrentRunsExecuteOnce(t *testing.T) {
	const goroutines = 8
	opts := fastOpts()
	opts.Trials = 2
	r := NewRunner(opts)
	w := WorkloadByName("ycsb-c", 0.1)

	var runsA, runsB atomic.Int64
	pA := countingPolicy(PolClock, &runsA)
	pB := countingPolicy(PolFIFO, &runsB)
	sysA := SystemAt(0.5, core.SwapSSD)
	sysB := SystemAt(0.75, core.SwapSSD)

	var wg sync.WaitGroup
	results := make([]*Series, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Even goroutines hit key A, odd ones key B.
			var s *Series
			var err error
			if g%2 == 0 {
				s, err = r.Run(w, pA, sysA)
			} else {
				s, err = r.Run(w, pB, sysB)
			}
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = s
		}()
	}
	wg.Wait()

	if got := runsA.Load(); got != int64(opts.Trials) {
		t.Fatalf("key A executed %d trials, want exactly %d (one series)", got, opts.Trials)
	}
	if got := runsB.Load(); got != int64(opts.Trials) {
		t.Fatalf("key B executed %d trials, want exactly %d (one series)", got, opts.Trials)
	}
	for g := 2; g < goroutines; g += 2 {
		if results[g] != results[0] {
			t.Fatal("same-key callers must share one Series")
		}
	}
	for g := 3; g < goroutines; g += 2 {
		if results[g] != results[1] {
			t.Fatal("same-key callers must share one Series")
		}
	}
}

// TestMergedWriteTailZeroCount covers Series.MergedWriteTail's zero-count
// path: trials with no write latencies must yield an all-zero tail of the
// right length, not a panic or a 1-element slice.
func TestMergedWriteTailZeroCount(t *testing.T) {
	s := &Series{Trials: []core.Metrics{
		{ReadLat: stats.NewLatencyRecorder(0), WriteLat: stats.NewLatencyRecorder(0)},
		{ReadLat: stats.NewLatencyRecorder(0), WriteLat: stats.NewLatencyRecorder(0)},
	}}
	tail := s.MergedWriteTail()
	if len(tail) != len(stats.TailPoints) {
		t.Fatalf("tail length %d, want %d", len(tail), len(stats.TailPoints))
	}
	for i, v := range tail {
		if v != 0 {
			t.Fatalf("tail[%d] = %v, want 0", i, v)
		}
	}
}

// TestWorkloadMemoized asserts one workload instance serves every series
// of a Runner (construction is expensive: graph generation, zipf tables).
func TestWorkloadMemoized(t *testing.T) {
	var makes atomic.Int64
	r := NewRunner(fastOpts())
	w := WorkloadByName("ycsb-c", 0.1)
	inner := w.Make
	w.Make = func() workload.Workload {
		makes.Add(1)
		return inner()
	}
	p := PolicyByName(PolClock)
	if _, err := r.Run(w, p, SystemAt(0.5, core.SwapSSD)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(w, p, SystemAt(0.75, core.SwapSSD)); err != nil {
		t.Fatal(err)
	}
	if got := makes.Load(); got != 1 {
		t.Fatalf("workload built %d times across series, want 1", got)
	}
}
