package experiments

import (
	"fmt"

	"mglrusim/internal/core"
)

// SweepSpec describes an axis-product sweep in experiment vocabulary:
// the cross product of workloads × policies × ratios × swap media, each
// cell run under Base with that point's ratio and medium substituted.
// This is the canonical form scenario submissions reduce to — the sweep
// server validates client JSON into one of these and enumerates it.
type SweepSpec struct {
	// Workloads and Policies are registry names (WorkloadNames,
	// PolicyNames).
	Workloads []string
	Policies  []string
	// Base is the system configuration every cell starts from. Its Ratio
	// and Swap act as the axis values when Ratios/Swaps are empty.
	Base core.SystemConfig
	// Ratios is the capacity-ratio ladder (the paper sweeps 0.5, 0.75,
	// 0.9). Empty means just Base.Ratio.
	Ratios []float64
	// Swaps is the swap-medium axis. Empty means just Base.Swap.
	Swaps []core.SwapKind
}

// Systems expands the spec's system axis: Base with each (ratio, swap)
// point substituted, ratios outermost.
func (sp SweepSpec) Systems() []core.SystemConfig {
	ratios := sp.Ratios
	if len(ratios) == 0 {
		ratios = []float64{sp.Base.Ratio}
	}
	swaps := sp.Swaps
	if len(swaps) == 0 {
		swaps = []core.SwapKind{sp.Base.Swap}
	}
	out := make([]core.SystemConfig, 0, len(ratios)*len(swaps))
	for _, ratio := range ratios {
		for _, kind := range swaps {
			sys := sp.Base
			sys.Ratio = ratio
			sys.Swap = kind
			out = append(out, sys)
		}
	}
	return out
}

// CellCount reports the number of cells the spec expands to, without
// enumerating: |workloads| × |policies| × |system points|.
func (sp SweepSpec) CellCount() int {
	return len(sp.Workloads) * len(sp.Policies) * len(sp.Systems())
}

// SweepCells enumerates, without executing a single trial, every distinct
// cell the spec expands to under opts, in claim order (SortCells) — the
// same collector-mode path CellsFor uses for figures, so sweep cells and
// figure cells share cache keys exactly. Unknown workload or policy names
// return an error (they panic in the resolution helpers, which serve
// trusted callers).
func SweepCells(opts Options, spec SweepSpec) ([]CellSpec, error) {
	known := map[string]bool{}
	for _, n := range WorkloadNames() {
		known[n] = true
	}
	for _, n := range spec.Workloads {
		if !known[n] {
			return nil, fmt.Errorf("experiments: unknown workload %q", n)
		}
	}
	known = map[string]bool{}
	for _, n := range PolicyNames() {
		known[n] = true
	}
	for _, n := range spec.Policies {
		if !known[n] {
			return nil, fmt.Errorf("experiments: unknown policy %q", n)
		}
	}
	return CellsFor(opts, func(r *Runner) (Result, error) {
		for _, sys := range spec.Systems() {
			for _, wn := range spec.Workloads {
				w := r.workloadByName(wn)
				for _, pn := range spec.Policies {
					if _, err := r.Run(w, PolicyByName(pn), sys); err != nil {
						return nil, err
					}
				}
			}
		}
		return nil, nil
	})
}
