package experiments

import (
	"strings"
	"testing"

	"mglrusim/internal/core"
	"mglrusim/internal/sim"
)

func sweepTestOpts() Options {
	return Options{Trials: 2, Scale: 0.1, Seed: 0xABC, Parallelism: 1}
}

// TestSweepCellsCount: the enumeration yields exactly the axis product,
// with unique keys, in claim order (cost non-increasing, key ascending
// within equal cost).
func TestSweepCellsCount(t *testing.T) {
	spec := SweepSpec{
		Workloads: []string{"ycsb-c", "tpch"},
		Policies:  []string{PolClock, PolMGLRU},
		Base:      core.DefaultSystemConfig(),
		Ratios:    []float64{0.5, 0.9},
	}
	cells, err := SweepCells(sweepTestOpts(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := spec.CellCount(); len(cells) != want || want != 8 {
		t.Fatalf("got %d cells, CellCount=%d, want 8", len(cells), want)
	}
	seen := map[string]bool{}
	for i, c := range cells {
		if seen[c.Key] {
			t.Fatalf("duplicate key %s", c.Key)
		}
		seen[c.Key] = true
		if i > 0 {
			prev := cells[i-1]
			if prev.Cost < c.Cost || (prev.Cost == c.Cost && prev.Key >= c.Key) {
				t.Fatalf("cells not in claim order at %d: (%g,%s) then (%g,%s)",
					i, prev.Cost, prev.Key, c.Cost, c.Key)
			}
		}
	}
}

// TestSweepCellsStable: same spec, same options → identical enumeration,
// the property content-addressed job identity depends on.
func TestSweepCellsStable(t *testing.T) {
	spec := SweepSpec{
		Workloads: []string{"ycsb-c"},
		Policies:  []string{PolFIFO, PolRandom},
		Base:      core.DefaultSystemConfig(),
		Swaps:     []core.SwapKind{core.SwapSSD, core.SwapZRAM},
	}
	a, err := SweepCells(sweepTestOpts(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepCells(sweepTestOpts(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("enumerations differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Cost != b[i].Cost {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSweepCellsUnknownNames: bad names error cleanly instead of
// panicking — the contract the server's validation layer leans on.
func TestSweepCellsUnknownNames(t *testing.T) {
	base := core.DefaultSystemConfig()
	for _, tc := range []struct {
		spec SweepSpec
		want string
	}{
		{SweepSpec{Workloads: []string{"no-such"}, Policies: []string{PolClock}, Base: base}, "unknown workload"},
		{SweepSpec{Workloads: []string{"tpch"}, Policies: []string{"belady-prime"}, Base: base}, "unknown policy"},
	} {
		_, err := SweepCells(sweepTestOpts(), tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("err = %v, want %q", err, tc.want)
		}
	}
}

// TestSweepCellsMatchFigureKeys: a sweep covering fig1's matrix
// enumerates the same cache keys CellsFor(Figure1) does — one identity
// shared between the serving path and the batch path.
func TestSweepCellsMatchFigureKeys(t *testing.T) {
	opts := sweepTestOpts()
	fig, err := CellsFor(opts, Fig1)
	if err != nil {
		t.Fatal(err)
	}
	paper := make([]string, 0, 5)
	for _, w := range Workloads(1) {
		paper = append(paper, w.Name)
	}
	spec := SweepSpec{
		Workloads: paper,
		Policies:  []string{PolClock, PolMGLRU},
		Base:      core.DefaultSystemConfig(),
	}
	sweep, err := SweepCells(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	figKeys := map[string]bool{}
	for _, c := range fig {
		figKeys[c.Key] = true
	}
	for _, c := range sweep {
		if !figKeys[c.Key] {
			t.Errorf("sweep cell %s/%s not in fig1 enumeration (key %s)", c.Workload, c.Policy, c.Key)
		}
	}
	if len(sweep) != len(fig) {
		t.Fatalf("sweep enumerated %d cells, fig1 %d", len(sweep), len(fig))
	}
}

// TestRegistryNames: the name listings resolve without panicking and
// cover the figure matrices.
func TestRegistryNames(t *testing.T) {
	for _, n := range PolicyNames() {
		if got := PolicyByName(n).Name; got != n {
			t.Errorf("PolicyByName(%q).Name = %q", n, got)
		}
	}
	for _, n := range WorkloadNames() {
		if got := WorkloadByName(n, 1).Name; got != n {
			t.Errorf("WorkloadByName(%q).Name = %q", n, got)
		}
	}
	if len(PolicyNames()) < 6 || len(WorkloadNames()) < 6 {
		t.Fatalf("registry vocabulary shrank: %d policies, %d workloads",
			len(PolicyNames()), len(WorkloadNames()))
	}
}

// TestSummarizeSeriesBlob: a stored envelope digests to the right
// summary; garbage and wrong-version blobs are rejected.
func TestSummarizeSeriesBlob(t *testing.T) {
	s := &Series{
		Workload: "tpch",
		Policy:   PolClock,
		System:   core.DefaultSystemConfig(),
		Trials:   make([]core.Metrics, 2),
	}
	s.Trials[0].Runtime = sim.Time(2 * sim.Second)
	s.Trials[1].Runtime = sim.Time(4 * sim.Second)
	blob, err := encodeSeries("some-key", s)
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := SummarizeSeriesBlob(blob)
	if !ok {
		t.Fatal("valid envelope rejected")
	}
	if sum.Workload != "tpch" || sum.Policy != PolClock || sum.Trials != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.MeanRuntimeSec != 3.0 {
		t.Fatalf("MeanRuntimeSec = %v, want 3.0", sum.MeanRuntimeSec)
	}
	if _, ok := SummarizeSeriesBlob([]byte("not json")); ok {
		t.Error("garbage blob accepted")
	}
	if _, ok := SummarizeSeriesBlob([]byte(`{"Version":999}`)); ok {
		t.Error("wrong-version blob accepted")
	}
}
