package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mglrusim/internal/core"
	"mglrusim/internal/telemetry"
)

// newTracer returns a fresh per-trial tracer, or nil when tracing is off.
// Each trial (and each retry attempt) gets its own tracer: the engine is
// single-threaded per trial, so per-trial recording is inherently
// parallelism-independent.
func (r *Runner) newTracer() *telemetry.Tracer {
	if r.opts.TraceDir == "" {
		return nil
	}
	return telemetry.New(telemetry.Config{MetricsInterval: r.opts.MetricsInterval})
}

// traceBase derives the deterministic artifact-name prefix for a series:
// a human-readable slug of the seed key plus a short hash of the full
// cache key, so two series sharing a seed key but differing in system
// knobs (which the seed key deliberately omits) cannot collide on disk.
// Returns "" when tracing is off.
func (r *Runner) traceBase(sk, key string) string {
	if r.opts.TraceDir == "" {
		return ""
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return fmt.Sprintf("%s-%08x", slugify(sk), h.Sum32())
}

// slugify maps a seed key to a filesystem-safe name: every run of
// characters outside [a-zA-Z0-9._] becomes one '-'.
func slugify(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	dash := false
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_':
			b.WriteRune(c)
			dash = false
		default:
			if !dash {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.Trim(b.String(), "-")
}

// writeTrialArtifacts persists one attempt's telemetry. Successful trials
// write the trace JSON and counter CSV; failed attempts write them under
// an attempt-suffixed name plus a flight-recorder dump; trials that
// completed but took OOM kills also dump the flight ring — that is the
// "degraded run became post-mortem-debuggable" contract. All writes are
// best-effort: telemetry must never fail a run that produced results.
func (r *Runner) writeTrialArtifacts(base string, trial, attempt int, tr *telemetry.Tracer, m core.Metrics, trialErr error) {
	name := fmt.Sprintf("%s-t%02d", base, trial)
	if trialErr != nil {
		// Keep every failed attempt: a retry overwriting its predecessor
		// would hide the evidence the dump exists to preserve.
		name = fmt.Sprintf("%s-a%d", name, attempt)
	}
	if err := os.MkdirAll(r.opts.TraceDir, 0o755); err != nil {
		r.traceWarn(err)
		return
	}
	write := func(suffix string, emit func(f io.Writer) error) {
		f, err := os.Create(filepath.Join(r.opts.TraceDir, name+suffix))
		if err == nil {
			err = emit(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			r.traceWarn(err)
		}
	}
	write(".trace.json", tr.WriteTrace)
	write(".counters.csv", tr.WriteCounters)
	switch {
	case trialErr != nil:
		reason, _, _ := strings.Cut(trialErr.Error(), "\n")
		write(".flight.txt", func(f io.Writer) error { return tr.WriteFlight(f, reason) })
	case m.Counters.OOMKills > 0:
		reason := fmt.Sprintf("completed degraded: %d oom kill(s), %d slot(s) reaped",
			m.Counters.OOMKills, m.Counters.OOMReapedSlots)
		write(".flight.txt", func(f io.Writer) error { return tr.WriteFlight(f, reason) })
	}
}

func (r *Runner) traceWarn(err error) {
	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, "telemetry: artifact write failed: %v\n", err)
	}
}
