package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mglrusim/internal/core"
	"mglrusim/internal/fault"
	"mglrusim/internal/telemetry"
)

// readDirFiles returns name→content for every regular file in dir.
func readDirFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(ents))
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestTraceParallelDeterminism: tracing is per-trial and the engine is
// single-threaded per trial, so the artifacts a traced run writes must be
// byte-identical whatever the harness parallelism — the trace of a run is
// part of its reproducible output, not a best-effort log.
func TestTraceParallelDeterminism(t *testing.T) {
	w := WorkloadByName("ycsb-c", 0.1)
	p := PolicyByName(PolMGLRU)
	sys := SystemAt(0.5, core.SwapSSD)

	run := func(parallelism int) (map[string][]byte, *Series) {
		dir := t.TempDir()
		opts := Options{Trials: 2, Scale: 0.1, Seed: 0x5EED,
			Parallelism: parallelism, TraceDir: dir}
		s, err := NewRunner(opts).Run(w, p, sys)
		if err != nil {
			t.Fatal(err)
		}
		return readDirFiles(t, dir), s
	}
	seq, sa := run(1)
	par, sb := run(8)

	if len(seq) == 0 {
		t.Fatal("traced run wrote no artifacts")
	}
	if !bytes.Equal(encodeOrDie(t, "k", sa), encodeOrDie(t, "k", sb)) {
		t.Fatal("traced series metrics diverged across parallelism")
	}
	if len(seq) != len(par) {
		t.Fatalf("artifact sets differ: %d files sequential vs %d parallel", len(seq), len(par))
	}
	var traces, counters int
	for name, data := range seq {
		other, ok := par[name]
		if !ok {
			t.Fatalf("artifact %s missing from parallel run", name)
		}
		if !bytes.Equal(data, other) {
			t.Fatalf("artifact %s differs between -parallel=1 and -parallel=8", name)
		}
		switch {
		case strings.HasSuffix(name, ".trace.json"):
			traces++
			if err := telemetry.ValidateTrace(data); err != nil {
				t.Fatalf("artifact %s is not a valid trace: %v", name, err)
			}
		case strings.HasSuffix(name, ".counters.csv"):
			counters++
			if !strings.HasPrefix(string(data), "time_ns,") {
				t.Fatalf("artifact %s missing counter header", name)
			}
		}
	}
	if traces != 2 || counters != 2 {
		t.Fatalf("want 2 traces and 2 counter CSVs for 2 trials, got %d/%d", traces, counters)
	}
}

// TestFlightRecorderDumpOnOOM: a severe fault plan with a starved swap
// area must leave a post-mortem — either the trial dies with an OOM error
// or completes degraded with kills — and in both cases a non-empty flight
// dump lands next to the trace.
func TestFlightRecorderDumpOnOOM(t *testing.T) {
	dir := t.TempDir()
	plan := fault.Severe()
	plan.SwapSlots = 16

	opts := Options{Trials: 1, Scale: 0.1, Seed: 0x00D, Parallelism: 1,
		TraceDir: dir, Fault: plan, Retries: 0}
	w := WorkloadByName("ycsb-c", 0.1)
	p := PolicyByName(PolClock)
	sys := SystemAt(0.5, core.SwapSSD)

	s, err := NewRunner(opts).Run(w, p, sys)
	if err == nil && s.Trials[0].Counters.OOMKills == 0 {
		t.Fatal("starved swap area produced no OOM kills; flight-dump test is vacuous")
	}

	files := readDirFiles(t, dir)
	var dumps int
	for name, data := range files {
		if !strings.HasSuffix(name, ".flight.txt") {
			continue
		}
		dumps++
		if len(data) == 0 {
			t.Fatalf("flight dump %s is empty", name)
		}
		body := string(data)
		if !strings.Contains(body, "oom") && !strings.Contains(body, "events ") {
			t.Fatalf("flight dump %s lacks both a reason and events:\n%s", name, body)
		}
	}
	if dumps == 0 {
		t.Fatalf("no flight dump written; artifacts: %v", keys(files))
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
