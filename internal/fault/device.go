package fault

import (
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
	"mglrusim/internal/telemetry"
)

// stormClock lazily materializes the seeded storm schedule. Storm windows
// are drawn in virtual-time order as device operations observe the clock,
// so the schedule is a pure function of (seed, plan) regardless of how
// many I/Os occur.
type stormClock struct {
	cfg   StormConfig
	rng   *sim.RNG
	next  sim.Time // start of the next not-yet-begun storm
	end   sim.Time // end of the most recent storm
	stall bool     // the most recent storm is a full stall
	init  bool
}

func (s *stormClock) gap() sim.Time {
	return sim.Time(s.rng.ExpFloat64() * float64(sim.Second) / s.cfg.Rate)
}

// at advances the schedule to now and reports whether a storm is active,
// whether it is a stall, and when it ends. began counts storms (and stall
// storms) that started at or before now since the last call.
func (s *stormClock) at(now sim.Time) (active, stall bool, end sim.Time, began, stallsBegan uint64) {
	if !s.init {
		s.init = true
		s.next = s.gap()
	}
	for now >= s.next {
		dur := sim.Time(s.rng.ExpFloat64() * float64(s.cfg.MeanDuration))
		if dur < 1 {
			dur = 1
		}
		s.end = s.next + dur
		s.stall = s.cfg.StallProb > 0 && s.rng.Bool(s.cfg.StallProb)
		began++
		if s.stall {
			stallsBegan++
		}
		// The next storm arrives a fresh exponential gap after this one
		// ends (storms never overlap).
		s.next = s.end + s.gap()
	}
	return now < s.end, s.stall, s.end, began, stallsBegan
}

// Device wraps a swap.Device and injects the plan's device-level faults.
// It implements swap.Device, so the memory manager is oblivious to it.
// All injection randomness comes from its own RNG stream, drawn in
// operation order — never from the wrapped device's stream — so enabling
// a sub-fault does not perturb the inner device's jitter sequence.
type Device struct {
	inner   swap.Device
	backing swap.Device // writeback target for pool pressure; may be nil
	plan    Plan
	rng     *sim.RNG
	storm   stormClock

	// writtenBack marks slots whose latest copy lives on the backing SSD
	// rather than in the wrapped device.
	writtenBack map[swap.Slot]struct{}

	maxBackoff  sim.Duration // read-retry backoff cap
	maxWBackoff sim.Duration // write-retry backoff cap
	stats       Stats

	tr      *telemetry.Tracer
	trTrack telemetry.TrackID // the fault plane's own lane
}

// SetTracer implements swap.TracerSetter: injected events (storm windows,
// read retries, pool pressure) land on a dedicated "fault-plane" track, and
// the tracer is forwarded to the wrapped and backing devices.
func (d *Device) SetTracer(tr *telemetry.Tracer) {
	d.tr = tr
	if tr != nil {
		d.trTrack = tr.Track("fault-plane")
	}
	if ts, ok := d.inner.(swap.TracerSetter); ok {
		ts.SetTracer(tr)
	}
	if ts, ok := d.backing.(swap.TracerSetter); ok {
		ts.SetTracer(tr)
	}
}

// Wrap applies plan to inner. backing is the writeback SSD for zram pool
// pressure; pass nil when the plan has no writeback. rng must be a
// dedicated stream.
func Wrap(inner swap.Device, plan Plan, backing swap.Device, rng *sim.RNG) *Device {
	d := &Device{
		inner:       inner,
		backing:     backing,
		plan:        plan,
		rng:         rng,
		storm:       stormClock{cfg: plan.Storms, rng: rng.Stream(1)},
		maxBackoff:  plan.ReadErrors.Backoff * 32,
		maxWBackoff: plan.WriteErrors.Backoff * 32,
	}
	if plan.NeedsBacking() && backing != nil {
		d.writtenBack = make(map[swap.Slot]struct{}, 256)
	}
	return d
}

// Name implements Device, passing the wrapped medium's name through (the
// wrapper is an overlay, not a medium).
func (d *Device) Name() string { return d.inner.Name() }

// stormDelay applies the active storm window to the calling proc: a full
// stall blocks until the storm ends; a latency storm sleeps a jittered
// extra delay.
func (d *Device) stormDelay(v *sim.Env) {
	if !d.plan.Storms.Enabled() {
		return
	}
	active, stall, end, began, stallsBegan := d.storm.at(v.Now())
	d.stats.Storms += began
	d.stats.StallStorms += stallsBegan
	if d.tr != nil && began > 0 {
		d.tr.Instant(d.trTrack, "storm-begin", int64(stallsBegan))
	}
	if !active {
		return
	}
	if stall {
		d.stats.StormDelay += int64(end - v.Now())
		if d.tr != nil {
			d.tr.Emit(d.trTrack, "storm-stall", v.Now(), int64(end-v.Now()), 0)
		}
		v.SleepUntil(end)
		return
	}
	extra := d.plan.Storms.ExtraLatency
	if d.plan.Storms.Jitter > 0 {
		extra = sim.Duration(float64(extra) * d.rng.LogNormal(0, d.plan.Storms.Jitter))
	}
	if extra < 1 {
		extra = 1
	}
	d.stats.StormDelay += extra
	v.Sleep(extra)
}

// readFrom routes a read to the backing SSD when the slot's latest copy
// was written back there.
func (d *Device) readFrom(v *sim.Env, slot swap.Slot, vpn int64, version uint32) {
	if _, ok := d.writtenBack[slot]; ok {
		d.stats.WritebackReads++
		d.backing.ReadPage(v, slot, vpn, version)
		return
	}
	d.inner.ReadPage(v, slot, vpn, version)
}

// ReadPage implements Device: storm delay, then the inner read, retried
// with exponential backoff on injected transient errors. Exhausting the
// retry budget panics a *HardError, failing the trial the way an
// uncorrectable media error fails a real swap-in. Consumers that can
// degrade instead (the page cache) call ReadPageErr.
func (d *Device) ReadPage(v *sim.Env, slot swap.Slot, vpn int64, version uint32) {
	if err := d.ReadPageErr(v, slot, vpn, version); err != nil {
		panic(err)
	}
}

// ReadPageErr performs the faulted read and returns the *HardError (as an
// error) when the retry budget is exhausted, instead of panicking. RNG
// draws and timing are identical to ReadPage up to the point of failure.
func (d *Device) ReadPageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error {
	d.stormDelay(v)
	cfg := d.plan.ReadErrors
	backoff := cfg.Backoff
	for attempt := 0; ; attempt++ {
		d.readFrom(v, slot, vpn, version)
		if !cfg.Enabled() || !d.rng.Bool(cfg.Prob) {
			return nil
		}
		d.stats.TransientReadErrors++
		if attempt >= cfg.MaxRetries {
			d.stats.HardReadErrors++
			if d.tr != nil {
				// Newest flight-recorder entry when the HardError unwinds
				// (or, on the degradation path, when the page is poisoned).
				d.tr.Instant(d.trTrack, "hard-read-error", int64(slot))
			}
			return &HardError{Device: d.inner.Name(), Op: "read", Slot: slot, Attempts: attempt + 1}
		}
		d.stats.ReadRetries++
		if d.tr != nil {
			d.tr.Instant(d.trTrack, "read-retry", int64(slot))
		}
		if backoff > 0 {
			v.Sleep(backoff)
			if backoff < d.maxBackoff {
				backoff *= 2
			}
		}
	}
}

// overLimit reports whether the wrapped device's compressed pool has
// reached the configured mem limit.
func (d *Device) overLimit() bool {
	cfg := d.plan.ZRAM
	return cfg.Enabled() && d.inner.Stats().CompressedBytes >= cfg.MemLimitBytes
}

// WritePage implements Device: storm delay, then either the inner write
// or — when the compressed pool is over its mem limit — a writeback to
// the backing SSD or a reclaim stall. Injected write errors past the
// retry budget panic a *HardError; consumers that can degrade instead
// (page-cache writeback into the error ledger) call WritePageErr.
func (d *Device) WritePage(v *sim.Env, slot swap.Slot, vpn int64, version uint32) {
	if err := d.WritePageErr(v, slot, vpn, version); err != nil {
		panic(err)
	}
}

// WritePageErr performs the faulted write and returns the *HardError (as
// an error) when the write-retry budget is exhausted, instead of
// panicking. With WriteErrors unconfigured no coins are flipped and the
// behaviour is byte-identical to the pre-write-error WritePage.
func (d *Device) WritePageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error {
	d.stormDelay(v)
	target := d.inner
	if d.overLimit() {
		if d.writtenBack != nil {
			d.stats.WritebackPages++
			d.writtenBack[slot] = struct{}{}
			if d.tr != nil {
				d.tr.Instant(d.trTrack, "pool-writeback", int64(slot))
			}
			target = d.backing
		} else {
			// No writeback target: the reclaiming thread stalls, as a real
			// zram allocation does under mem_limit pressure, then the write
			// proceeds (the pool over-commits rather than losing the page).
			d.stats.PoolStalls++
			if d.tr != nil {
				d.tr.Instant(d.trTrack, "pool-stall", int64(slot))
			}
			if d.plan.ZRAM.StallDelay > 0 {
				d.stats.PoolStallTime += d.plan.ZRAM.StallDelay
				v.Sleep(d.plan.ZRAM.StallDelay)
			}
		}
	}
	if target == d.inner && d.writtenBack != nil {
		// A fresh write into the pool supersedes any written-back copy.
		delete(d.writtenBack, slot)
	}
	cfg := d.plan.WriteErrors
	backoff := cfg.Backoff
	for attempt := 0; ; attempt++ {
		target.WritePage(v, slot, vpn, version)
		if !cfg.Enabled() || !d.rng.Bool(cfg.Prob) {
			return nil
		}
		d.stats.TransientWriteErrors++
		if attempt >= cfg.MaxRetries {
			d.stats.HardWriteErrors++
			if d.tr != nil {
				d.tr.Instant(d.trTrack, "hard-write-error", int64(slot))
			}
			return &HardError{Device: d.inner.Name(), Op: "write", Slot: slot, Attempts: attempt + 1}
		}
		d.stats.WriteRetries++
		if d.tr != nil {
			d.tr.Instant(d.trTrack, "write-retry", int64(slot))
		}
		if backoff > 0 {
			v.Sleep(backoff)
			if backoff < d.maxWBackoff {
				backoff *= 2
			}
		}
	}
}

// PrefetchPage implements Device. Readahead rides the anchoring demand
// read's I/O, which already paid the storm delay, so only routing
// applies: written-back slots decompress-free but pay the backing SSD's
// per-page completion cost.
func (d *Device) PrefetchPage(v *sim.Env, slot swap.Slot, vpn int64, version uint32) {
	if _, ok := d.writtenBack[slot]; ok {
		d.stats.WritebackReads++
		d.backing.PrefetchPage(v, slot, vpn, version)
		return
	}
	d.inner.PrefetchPage(v, slot, vpn, version)
}

// PrefetchPageErr is PrefetchPage plus a single transient-error coin:
// speculative I/O gets no retry budget (the kernel never retries
// readahead), so one failed flip abandons the prefetch. Callers must not
// treat the error as fatal — readahead failures fail nothing.
func (d *Device) PrefetchPageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error {
	d.PrefetchPage(v, slot, vpn, version)
	cfg := d.plan.ReadErrors
	if cfg.Enabled() && d.rng.Bool(cfg.Prob) {
		d.stats.PrefetchErrors++
		if d.tr != nil {
			d.tr.Instant(d.trTrack, "prefetch-error", int64(slot))
		}
		return &HardError{Device: d.inner.Name(), Op: "read", Slot: slot, Attempts: 1}
	}
	return nil
}

// FreeSlot implements Device.
func (d *Device) FreeSlot(slot swap.Slot) {
	if d.writtenBack != nil {
		delete(d.writtenBack, slot)
	}
	d.inner.FreeSlot(slot)
	if d.backing != nil {
		d.backing.FreeSlot(slot)
	}
}

// Drain implements Device.
func (d *Device) Drain(v *sim.Env) {
	d.inner.Drain(v)
	if d.backing != nil {
		d.backing.Drain(v)
	}
}

// Stats implements Device, merging inner and backing device activity.
func (d *Device) Stats() swap.Stats {
	s := d.inner.Stats()
	if d.backing != nil {
		b := d.backing.Stats()
		s.Reads += b.Reads
		s.Writes += b.Writes
		s.ReadTime += b.ReadTime
		s.WriteTime += b.WriteTime
		s.WriteStalls += b.WriteStalls
	}
	return s
}

// FaultStats reports what the wrapper injected.
func (d *Device) FaultStats() Stats { return d.stats }

var _ swap.Device = (*Device)(nil)
