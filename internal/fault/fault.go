// Package fault is the simulator's deterministic fault-injection plane.
// A Plan describes degraded-medium behaviour — SSD latency storms and
// whole-device stalls, transient read errors with kernel-style bounded
// retry + exponential backoff, zram pool mem-limit exhaustion with
// writeback-to-SSD fallback or reclaim stall, and swap-area exhaustion
// (which drives the OOM-killer model in internal/vmm) — and Wrap applies
// it to any swap.Device.
//
// Everything is seeded: storm arrival times, storm durations, per-I/O
// extra latency, and read-error coin flips all draw from one RNG stream in
// device-operation order, so two runs of the same seed and plan are
// byte-identical. With the zero Plan no wrapper is installed anywhere and
// execution is bit-for-bit the un-faulted simulation.
package fault

import (
	"fmt"

	"mglrusim/internal/sim"
)

// StormConfig parameterizes SSD latency storms: windows of degraded
// service modeled on flash garbage-collection pauses and thermal
// throttling. Storms arrive as a Poisson process and last an
// exponentially distributed duration; during a storm every I/O pays extra
// latency, and a configurable fraction of storms stall the device
// entirely until the storm ends.
type StormConfig struct {
	// Rate is the storm arrival rate in storms per simulated second
	// (Poisson). Zero disables storms.
	Rate float64
	// MeanDuration is the mean storm length (exponentially distributed).
	MeanDuration sim.Duration
	// ExtraLatency is the mean additional delay per I/O during a
	// (non-stall) storm, log-normal-jittered by Jitter.
	ExtraLatency sim.Duration
	// Jitter is the log-normal sigma on ExtraLatency.
	Jitter float64
	// StallProb is the fraction of storms that are full device stalls:
	// every I/O issued during the storm blocks until the storm ends.
	StallProb float64
}

// Enabled reports whether storms are configured.
func (c StormConfig) Enabled() bool { return c.Rate > 0 && c.MeanDuration > 0 }

// ReadErrorConfig parameterizes transient read failures. Each completed
// read flips a seeded coin; on failure the faulting thread backs off and
// reissues the read, doubling the backoff each attempt the way the kernel
// block layer retries transient media errors. Exhausting MaxRetries is a
// hard error (*HardError) that fails the trial.
type ReadErrorConfig struct {
	// Prob is the per-read transient failure probability. Zero disables.
	Prob float64
	// MaxRetries bounds reissues per logical read.
	MaxRetries int
	// Backoff is the initial retry delay; it doubles per attempt, capped
	// at 32x.
	Backoff sim.Duration
}

// Enabled reports whether read errors are configured.
func (c ReadErrorConfig) Enabled() bool { return c.Prob > 0 }

// WriteErrorConfig parameterizes transient write failures on the wrapped
// device. Each completed write flips a seeded coin; on failure the writer
// backs off and reissues, doubling the backoff per attempt. What happens
// when MaxRetries is exhausted depends on the caller: swap writeback
// treats it as a hard error, while page-cache writeback records the page
// in the per-file error ledger (errseq_t-style) and moves on.
type WriteErrorConfig struct {
	// Prob is the per-write transient failure probability. Zero disables.
	Prob float64
	// MaxRetries bounds reissues per logical write.
	MaxRetries int
	// Backoff is the initial retry delay; it doubles per attempt, capped
	// at 32x.
	Backoff sim.Duration
}

// Enabled reports whether write errors are configured.
func (c WriteErrorConfig) Enabled() bool { return c.Prob > 0 }

// DeviceTarget selects which backing device(s) a plan's device-level
// faults apply to. The zero value targets the swap device, preserving the
// meaning of every pre-existing plan.
type DeviceTarget int

const (
	// TargetSwap applies device faults to the swap device only (default).
	TargetSwap DeviceTarget = iota
	// TargetFile applies device faults to the file backing device only.
	TargetFile
	// TargetBoth applies device faults to both devices (each gets its own
	// wrapper and RNG stream).
	TargetBoth
)

// String implements fmt.Stringer so Plans render readably in %+v
// configuration fingerprints.
func (t DeviceTarget) String() string {
	switch t {
	case TargetSwap:
		return "swap"
	case TargetFile:
		return "file"
	case TargetBoth:
		return "both"
	}
	return fmt.Sprintf("DeviceTarget(%d)", int(t))
}

// ZRAMPressureConfig models zram pool mem-limit exhaustion (the kernel's
// zram mem_limit). Once the pool's compressed bytes reach the limit, new
// writes either spill to a backing SSD (zram writeback) or stall the
// reclaiming thread, mimicking allocation stalls under pool pressure.
type ZRAMPressureConfig struct {
	// MemLimitBytes caps the compressed pool; zero disables the limit.
	// Only meaningful when the wrapped device is zram.
	MemLimitBytes int64
	// Writeback spills over-limit writes to a backing SSD instead of
	// stalling (requires a backing device at Wrap time).
	Writeback bool
	// StallDelay is how long an over-limit write stalls when Writeback is
	// off (or no backing device exists).
	StallDelay sim.Duration
}

// Enabled reports whether pool pressure is configured.
func (c ZRAMPressureConfig) Enabled() bool { return c.MemLimitBytes > 0 }

// Plan is a complete fault-injection scenario. All fields are plain
// values, so a Plan embedded in core.SystemConfig participates in the
// experiment runner's %+v configuration fingerprint automatically. The
// zero Plan injects nothing.
type Plan struct {
	// Target selects which device(s) the device-level faults below apply
	// to. The zero value is TargetSwap, so pre-existing plans keep their
	// meaning; a Target set on an otherwise-zero plan installs nothing.
	Target DeviceTarget
	// Storms degrades device latency in seeded windows.
	Storms StormConfig
	// ReadErrors injects transient read failures with bounded retry.
	ReadErrors ReadErrorConfig
	// WriteErrors injects transient write failures with bounded retry.
	WriteErrors WriteErrorConfig
	// ZRAM injects compressed-pool exhaustion.
	ZRAM ZRAMPressureConfig
	// SwapSlots caps the swap area at this many slots (zero keeps the
	// default footprint+slack sizing), forcing the swap-exhaustion → OOM
	// path in internal/vmm under sustained reclaim.
	SwapSlots int
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool { return p.DeviceEnabled() || p.SwapSlots > 0 }

// DeviceEnabled reports whether the plan needs a device wrapper.
func (p Plan) DeviceEnabled() bool {
	return p.Storms.Enabled() || p.ReadErrors.Enabled() || p.WriteErrors.Enabled() || p.ZRAM.Enabled()
}

// TargetsSwap reports whether device faults apply to the swap device.
func (p Plan) TargetsSwap() bool { return p.Target == TargetSwap || p.Target == TargetBoth }

// TargetsFile reports whether device faults apply to the file backing
// device.
func (p Plan) TargetsFile() bool { return p.Target == TargetFile || p.Target == TargetBoth }

// NeedsBacking reports whether the plan wants a writeback SSD behind the
// wrapped device.
func (p Plan) NeedsBacking() bool { return p.ZRAM.Enabled() && p.ZRAM.Writeback }

// Stats counts injected faults and their cost in one trial.
type Stats struct {
	Storms      uint64       // storm windows that began
	StallStorms uint64       // of which were full device stalls
	StormDelay  sim.Duration // total extra latency injected by storms

	TransientReadErrors uint64 // injected read failures
	ReadRetries         uint64 // reissued reads
	HardReadErrors      uint64 // read retry budgets exhausted

	TransientWriteErrors uint64 // injected write failures
	WriteRetries         uint64 // reissued writes
	HardWriteErrors      uint64 // write retry budgets exhausted
	PrefetchErrors       uint64 // injected failures on speculative reads

	WritebackPages uint64 // over-limit writes spilled to the backing SSD
	WritebackReads uint64 // reads served from the backing SSD
	PoolStalls     uint64 // over-limit writes that stalled instead
	PoolStallTime  sim.Duration
}

// Add accumulates other into s (series-level aggregation). Every field of
// Stats must appear here; a reflection test enforces completeness.
func (s *Stats) Add(other Stats) {
	s.Storms += other.Storms
	s.StallStorms += other.StallStorms
	s.StormDelay += other.StormDelay
	s.TransientReadErrors += other.TransientReadErrors
	s.ReadRetries += other.ReadRetries
	s.HardReadErrors += other.HardReadErrors
	s.TransientWriteErrors += other.TransientWriteErrors
	s.WriteRetries += other.WriteRetries
	s.HardWriteErrors += other.HardWriteErrors
	s.PrefetchErrors += other.PrefetchErrors
	s.WritebackPages += other.WritebackPages
	s.WritebackReads += other.WritebackReads
	s.PoolStalls += other.PoolStalls
	s.PoolStallTime += other.PoolStallTime
}

// HardError is an unrecoverable injected device error: an I/O whose retry
// budget is exhausted. On the swap path it is panicked from the device
// model, surfaces as the trial error, and is classified as
// retryable-with-a-fresh-seed by the experiment harness. The page cache
// instead absorbs it into a kernel-faithful degradation path (poisoned
// page / error ledger) and the trial continues.
type HardError struct {
	Device   string
	Op       string // "read" or "write"; empty means "read" (legacy)
	Slot     int32
	Attempts int
}

// Error implements error.
func (e *HardError) Error() string {
	op := e.Op
	if op == "" {
		op = "read"
	}
	return fmt.Sprintf("fault: hard %s error on %s slot %d after %d attempts", op, e.Device, e.Slot, e.Attempts)
}

// Preset resolves a named fault plan for CLI use. Known names: "off",
// "mild", "severe", "file-mild", "file-severe".
func Preset(name string) (Plan, bool) {
	switch name {
	case "", "off", "none":
		return Plan{}, true
	case "mild":
		return Mild(), true
	case "severe":
		return Severe(), true
	case "file-mild":
		return MildFile(), true
	case "file-severe":
		return SevereFile(), true
	}
	return Plan{}, false
}

// Mild models occasional latency turbulence on an aging SSD: short
// storms adding a few milliseconds per I/O, and rare transient read
// errors that one or two retries absorb.
func Mild() Plan {
	return Plan{
		Storms: StormConfig{
			Rate:         0.5,
			MeanDuration: 200 * sim.Millisecond,
			ExtraLatency: 5 * sim.Millisecond,
			Jitter:       0.3,
		},
		ReadErrors: ReadErrorConfig{
			Prob:       0.0005,
			MaxRetries: 8,
			Backoff:    1 * sim.Millisecond,
		},
	}
}

// Severe models a failing device: frequent long storms, a quarter of
// them whole-device stalls, and 0.5% transient read errors.
func Severe() Plan {
	return Plan{
		Storms: StormConfig{
			Rate:         2,
			MeanDuration: 500 * sim.Millisecond,
			ExtraLatency: 15 * sim.Millisecond,
			Jitter:       0.5,
			StallProb:    0.25,
		},
		ReadErrors: ReadErrorConfig{
			Prob:       0.005,
			MaxRetries: 10,
			Backoff:    2 * sim.Millisecond,
		},
	}
}

// MildFile models an aging file-backing device: short latency storms and
// rare transient I/O errors on both directions, with retry budgets deep
// enough that almost everything is absorbed — degradation shows up as
// latency and retry counts, not poisoned pages.
func MildFile() Plan {
	return Plan{
		Target: TargetFile,
		Storms: StormConfig{
			Rate:         0.5,
			MeanDuration: 150 * sim.Millisecond,
			ExtraLatency: 3 * sim.Millisecond,
			Jitter:       0.3,
		},
		ReadErrors: ReadErrorConfig{
			Prob:       0.01,
			MaxRetries: 6,
			Backoff:    500 * sim.Microsecond,
		},
		WriteErrors: WriteErrorConfig{
			Prob:       0.01,
			MaxRetries: 6,
			Backoff:    500 * sim.Microsecond,
		},
	}
}

// SevereFile models a dying file-backing device: frequent stally storms
// and high transient error rates with shallow retry budgets, so a visible
// fraction of demand reads poison pages (SIGBUS analog) and writeback
// exhausts into the per-file error ledger (data at risk). Dirty pages
// pile up behind the slow, erroring device and push writers into the
// hard dirty throttle.
func SevereFile() Plan {
	return Plan{
		Target: TargetFile,
		Storms: StormConfig{
			Rate:         2,
			MeanDuration: 400 * sim.Millisecond,
			ExtraLatency: 10 * sim.Millisecond,
			Jitter:       0.5,
			StallProb:    0.3,
		},
		ReadErrors: ReadErrorConfig{
			Prob:       0.2,
			MaxRetries: 2,
			Backoff:    1 * sim.Millisecond,
		},
		WriteErrors: WriteErrorConfig{
			Prob:       0.2,
			MaxRetries: 2,
			Backoff:    1 * sim.Millisecond,
		},
	}
}
