package fault

import (
	"errors"
	"testing"

	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
)

func ssdCfg() swap.SSDConfig {
	return swap.SSDConfig{
		ReadLatency: 1 * sim.Millisecond, WriteLatency: 1 * sim.Millisecond,
		QueueDepth: 8, MaxDirtyWrites: 32,
	}
}

// stormScenario wraps an SSD in a storm plan and issues reads spread over
// virtual time, returning every completion instant and the injected
// stats — the full observable behaviour of one run.
func stormScenario(t *testing.T, seed uint64, plan Plan) ([]sim.Time, Stats) {
	t.Helper()
	e := sim.NewEngine(2)
	rng := sim.NewRNG(seed)
	d := Wrap(swap.NewSSD(ssdCfg(), e, rng.Stream(1)), plan, nil, rng.Stream(2))
	var ends []sim.Time
	e.Spawn("reader", false, func(v *sim.Env) {
		for i := 0; i < 200; i++ {
			d.ReadPage(v, swap.Slot(i%8), int64(i), 0)
			ends = append(ends, v.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return ends, d.FaultStats()
}

// TestStormDeterminism: same seed + same plan ⇒ byte-identical timing and
// injection counters. This is the fault plane's core contract.
func TestStormDeterminism(t *testing.T) {
	plan := Plan{Storms: StormConfig{
		Rate: 20, MeanDuration: 20 * sim.Millisecond,
		ExtraLatency: 3 * sim.Millisecond, Jitter: 0.4, StallProb: 0.3,
	}}
	endsA, statsA := stormScenario(t, 0x5EED, plan)
	endsB, statsB := stormScenario(t, 0x5EED, plan)
	if statsA != statsB {
		t.Fatalf("stats diverge across same-seed runs:\n%+v\n%+v", statsA, statsB)
	}
	if statsA.Storms == 0 {
		t.Fatal("scenario injected no storms; test is vacuous")
	}
	for i := range endsA {
		if endsA[i] != endsB[i] {
			t.Fatalf("read %d completed at %v vs %v across same-seed runs", i, endsA[i], endsB[i])
		}
	}
	// A different seed must produce a different schedule.
	endsC, _ := stormScenario(t, 0xC0FFEE, plan)
	same := true
	for i := range endsA {
		if endsA[i] != endsC[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical storm schedules")
	}
}

// TestStormInjectsLatency: with storms raging continuously, reads must be
// slower than on the clean device, and the delay must be accounted.
func TestStormInjectsLatency(t *testing.T) {
	clean, _ := stormScenario(t, 1, Plan{})
	stormy, stats := stormScenario(t, 1, Plan{Storms: StormConfig{
		Rate: 100, MeanDuration: 50 * sim.Millisecond, ExtraLatency: 2 * sim.Millisecond,
	}})
	if stats.Storms == 0 || stats.StormDelay == 0 {
		t.Fatalf("no storms injected: %+v", stats)
	}
	if stormy[len(stormy)-1] <= clean[len(clean)-1] {
		t.Fatalf("storms did not slow the run: %v vs clean %v", stormy[len(stormy)-1], clean[len(clean)-1])
	}
}

// TestStallStormBlocksDevice: StallProb 1 makes every storm a full stall;
// an I/O issued inside one must block until the storm window ends.
func TestStallStormBlocksDevice(t *testing.T) {
	_, stats := stormScenario(t, 2, Plan{Storms: StormConfig{
		Rate: 50, MeanDuration: 30 * sim.Millisecond, ExtraLatency: 1 * sim.Millisecond, StallProb: 1,
	}})
	if stats.StallStorms == 0 {
		t.Fatal("no stall storms despite StallProb=1")
	}
	if stats.StallStorms != stats.Storms {
		t.Fatalf("StallProb=1 but only %d/%d storms stalled", stats.StallStorms, stats.Storms)
	}
	if stats.StormDelay == 0 {
		t.Fatal("stalls injected no delay")
	}
}

// TestTransientReadErrorsRetry: a moderate error rate with a generous
// retry budget is absorbed — retries happen, no hard failure, the run
// completes.
func TestTransientReadErrorsRetry(t *testing.T) {
	_, stats := stormScenario(t, 3, Plan{ReadErrors: ReadErrorConfig{
		Prob: 0.2, MaxRetries: 50, Backoff: 100 * sim.Microsecond,
	}})
	if stats.TransientReadErrors == 0 || stats.ReadRetries == 0 {
		t.Fatalf("no transient errors injected: %+v", stats)
	}
	if stats.HardReadErrors != 0 {
		t.Fatalf("retry budget of 50 exhausted at prob 0.2: %+v", stats)
	}
}

// TestHardReadErrorFailsTrial: exhausting the retry budget panics a
// *HardError that surfaces as the engine's run error, preserving the
// typed cause through the wrap chain (the harness' retry classifier
// depends on errors.As finding it).
func TestHardReadErrorFailsTrial(t *testing.T) {
	e := sim.NewEngine(2)
	rng := sim.NewRNG(4)
	plan := Plan{ReadErrors: ReadErrorConfig{Prob: 1, MaxRetries: 2, Backoff: sim.Microsecond}}
	d := Wrap(swap.NewSSD(ssdCfg(), e, rng.Stream(1)), plan, nil, rng.Stream(2))
	e.Spawn("reader", false, func(v *sim.Env) {
		d.ReadPage(v, 0, 1, 0)
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected the hard read error to fail the run")
	}
	var hard *HardError
	if !errors.As(err, &hard) {
		t.Fatalf("error chain lost the typed cause: %v", err)
	}
	if hard.Attempts != 3 { // initial read + 2 retries
		t.Fatalf("attempts = %d, want 3", hard.Attempts)
	}
	if d.FaultStats().HardReadErrors != 1 {
		t.Fatalf("stats = %+v", d.FaultStats())
	}
}

// zramRig builds a zram device under pool pressure with an optional
// backing SSD.
func zramRig(e *sim.Engine, rng *sim.RNG, plan Plan, withBacking bool) *Device {
	z := swap.NewZRAM(swap.ZRAMConfig{
		ReadLatency: 20 * sim.Microsecond, WriteLatency: 35 * sim.Microsecond, PageSize: 4096,
	}, rng.Stream(1), nil)
	var backing swap.Device
	if withBacking {
		backing = swap.NewSSD(ssdCfg(), e, rng.Stream(2))
	}
	return Wrap(z, plan, backing, rng.Stream(3))
}

// TestZRAMWritebackFallback: once the compressed pool hits its mem limit,
// further writes spill to the backing SSD, and reads of spilled slots are
// served from it.
func TestZRAMWritebackFallback(t *testing.T) {
	e := sim.NewEngine(2)
	plan := Plan{ZRAM: ZRAMPressureConfig{MemLimitBytes: 4096, Writeback: true}}
	d := zramRig(e, sim.NewRNG(5), plan, true)
	e.Spawn("writer", false, func(v *sim.Env) {
		for i := 0; i < 16; i++ {
			d.WritePage(v, swap.Slot(i), int64(i), 0)
		}
		d.Drain(v)
		for i := 0; i < 16; i++ {
			d.ReadPage(v, swap.Slot(i), int64(i), 0)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.FaultStats()
	if st.WritebackPages == 0 {
		t.Fatalf("no pages written back despite a 1-page pool limit: %+v", st)
	}
	if st.WritebackReads == 0 {
		t.Fatalf("no reads served from the backing SSD: %+v", st)
	}
	if st.PoolStalls != 0 {
		t.Fatalf("writeback plan must not stall: %+v", st)
	}
	// A fresh write supersedes the written-back copy: rewriting slot 0
	// below the limit is impossible here (pool stays full), but freeing
	// must clear the spill mark so a recycled slot reads from zram again.
	if len(d.writtenBack) == 0 {
		t.Fatal("no slots marked written-back")
	}
	for s := range d.writtenBack {
		d.FreeSlot(s)
		if _, ok := d.writtenBack[s]; ok {
			t.Fatal("FreeSlot left the written-back mark in place")
		}
		break
	}
}

// TestZRAMPoolStall: with writeback off, over-limit writes stall the
// reclaiming thread for the configured delay and then proceed.
func TestZRAMPoolStall(t *testing.T) {
	e := sim.NewEngine(2)
	plan := Plan{ZRAM: ZRAMPressureConfig{MemLimitBytes: 4096, StallDelay: 5 * sim.Millisecond}}
	d := zramRig(e, sim.NewRNG(6), plan, false)
	var end sim.Time
	e.Spawn("writer", false, func(v *sim.Env) {
		for i := 0; i < 8; i++ {
			d.WritePage(v, swap.Slot(i), int64(i), 0)
		}
		end = v.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.FaultStats()
	if st.PoolStalls == 0 {
		t.Fatalf("no pool stalls despite a 1-page limit: %+v", st)
	}
	if st.WritebackPages != 0 {
		t.Fatalf("stall plan must not write back: %+v", st)
	}
	if end < sim.Time(st.PoolStallTime) {
		t.Fatalf("run finished at %v but stalls injected %v", end, sim.Time(st.PoolStallTime))
	}
}

// TestPresets: names resolve, zero plan injects nothing.
func TestPresets(t *testing.T) {
	for _, name := range []string{"", "off", "none"} {
		p, ok := Preset(name)
		if !ok || p.Enabled() {
			t.Fatalf("Preset(%q) = %+v, %v", name, p, ok)
		}
	}
	for _, name := range []string{"mild", "severe"} {
		p, ok := Preset(name)
		if !ok || !p.DeviceEnabled() {
			t.Fatalf("Preset(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := Preset("catastrophic"); ok {
		t.Fatal("unknown preset accepted")
	}
}
