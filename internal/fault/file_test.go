package fault

import (
	"errors"
	"reflect"
	"testing"

	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
)

// TestStatsAddComplete: every Stats field must participate in Add. The
// harness aggregates per-trial injection counters by summation; a field
// that Add forgets silently reports zero in every figure. Reflection
// fills each field with a distinct value and checks Add(zero, filled)
// round-trips all of them.
func TestStatsAddComplete(t *testing.T) {
	var filled Stats
	rv := reflect.ValueOf(&filled).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Int64: // sim.Duration
			f.SetInt(int64(i + 1))
		default:
			t.Fatalf("Stats.%s has kind %v; teach this test to fill it",
				rv.Type().Field(i).Name, f.Kind())
		}
	}
	var sum Stats
	sum.Add(filled)
	if sum != filled {
		for i := 0; i < rv.NumField(); i++ {
			name := rv.Type().Field(i).Name
			got := reflect.ValueOf(sum).Field(i).Interface()
			want := rv.Field(i).Interface()
			if got != want {
				t.Errorf("Stats.Add drops %s: got %v, want %v", name, got, want)
			}
		}
	}
	// Add must accumulate, not assign.
	sum.Add(filled)
	if sum == filled {
		t.Fatal("second Add did not accumulate")
	}
}

// writeScenario issues writes through a wrapped SSD and returns the
// completion instants, the injected stats, and the first hard error.
func writeScenario(t *testing.T, seed uint64, plan Plan, n int) ([]sim.Time, Stats, error) {
	t.Helper()
	e := sim.NewEngine(2)
	rng := sim.NewRNG(seed)
	d := Wrap(swap.NewSSD(ssdCfg(), e, rng.Stream(1)), plan, nil, rng.Stream(2))
	var ends []sim.Time
	var firstErr error
	e.Spawn("writer", false, func(v *sim.Env) {
		for i := 0; i < n; i++ {
			if err := d.WritePageErr(v, swap.Slot(i%8), int64(i), 0); err != nil && firstErr == nil {
				firstErr = err
			}
			ends = append(ends, v.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return ends, d.FaultStats(), firstErr
}

// TestTransientWriteErrorsRetry: a generous retry budget absorbs a
// moderate write-error rate — retries recorded, no hard failures, no
// error surfaced to the caller.
func TestTransientWriteErrorsRetry(t *testing.T) {
	_, stats, err := writeScenario(t, 7, Plan{WriteErrors: WriteErrorConfig{
		Prob: 0.2, MaxRetries: 50, Backoff: 100 * sim.Microsecond,
	}}, 200)
	if err != nil {
		t.Fatalf("retry budget of 50 leaked an error: %v", err)
	}
	if stats.TransientWriteErrors == 0 || stats.WriteRetries == 0 {
		t.Fatalf("no transient write errors injected: %+v", stats)
	}
	if stats.HardWriteErrors != 0 {
		t.Fatalf("retry budget exhausted at prob 0.2: %+v", stats)
	}
}

// TestHardWriteErrorReturned: WritePageErr must RETURN the typed hard
// error rather than panic — the page cache turns it into an errseq
// ledger entry, not a dead trial.
func TestHardWriteErrorReturned(t *testing.T) {
	_, stats, err := writeScenario(t, 8, Plan{WriteErrors: WriteErrorConfig{
		Prob: 1, MaxRetries: 2, Backoff: sim.Microsecond,
	}}, 1)
	if err == nil {
		t.Fatal("expected a hard write error")
	}
	var hard *HardError
	if !errors.As(err, &hard) {
		t.Fatalf("not a *HardError: %v", err)
	}
	if hard.Op != "write" || hard.Attempts != 3 {
		t.Fatalf("hard = %+v, want op=write attempts=3", hard)
	}
	if stats.HardWriteErrors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestPrefetchErrSilent: PrefetchPageErr flags the failure to the caller
// and counts it, but never retries and never panics — readahead is
// speculative, the kernel just abandons it.
func TestPrefetchErrSilent(t *testing.T) {
	e := sim.NewEngine(2)
	rng := sim.NewRNG(9)
	plan := Plan{ReadErrors: ReadErrorConfig{Prob: 1, MaxRetries: 10, Backoff: sim.Millisecond}}
	d := Wrap(swap.NewSSD(ssdCfg(), e, rng.Stream(1)), plan, nil, rng.Stream(2))
	var err error
	e.Spawn("ra", false, func(v *sim.Env) {
		err = d.PrefetchPageErr(v, 0, 1, 0)
	})
	if rerr := e.Run(); rerr != nil {
		t.Fatalf("prefetch error escalated to the engine: %v", rerr)
	}
	var hard *HardError
	if !errors.As(err, &hard) || hard.Attempts != 1 {
		t.Fatalf("err = %v, want single-attempt *HardError", err)
	}
	st := d.FaultStats()
	if st.PrefetchErrors != 1 || st.ReadRetries != 0 || st.HardReadErrors != 0 {
		t.Fatalf("prefetch failure must not enter the retry path: %+v", st)
	}
}

// TestZeroPlanTransparency: wrapping a device with an all-zero plan —
// regardless of target — must be byte-invisible: identical completion
// times to the bare device and zero injected stats. This is what lets
// the file-device wrapper ride every existing figure without moving a
// single event.
func TestZeroPlanTransparency(t *testing.T) {
	run := func(wrap bool, target DeviceTarget) []sim.Time {
		e := sim.NewEngine(2)
		rng := sim.NewRNG(0xFACADE)
		var dev swap.Device = swap.NewSSD(ssdCfg(), e, rng.Stream(1))
		var fd *Device
		if wrap {
			fd = Wrap(dev, Plan{Target: target}, nil, rng.Stream(2))
			dev = fd
		}
		var ends []sim.Time
		e.Spawn("mixed", false, func(v *sim.Env) {
			for i := 0; i < 100; i++ {
				dev.WritePage(v, swap.Slot(i%8), int64(i), 0)
				dev.ReadPage(v, swap.Slot(i%8), int64(i), 0)
				dev.PrefetchPage(v, swap.Slot((i+1)%8), int64(i+1), 0)
				ends = append(ends, v.Now())
			}
			dev.Drain(v)
			ends = append(ends, v.Now())
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if fd != nil {
			if st := (Stats{}); fd.FaultStats() != st {
				t.Fatalf("zero plan injected: %+v", fd.FaultStats())
			}
		}
		return ends
	}
	bare := run(false, TargetSwap)
	for _, target := range []DeviceTarget{TargetSwap, TargetFile, TargetBoth} {
		wrapped := run(true, target)
		if len(bare) != len(wrapped) {
			t.Fatalf("target %v: %d vs %d events", target, len(bare), len(wrapped))
		}
		for i := range bare {
			if bare[i] != wrapped[i] {
				t.Fatalf("target %v: op %d at %v wrapped vs %v bare", target, i, wrapped[i], bare[i])
			}
		}
	}
}

// TestErrVariantTimingParity: the Err-returning entry points must draw
// the same RNG sequence and charge the same latency as the panicking
// ones, so the page cache's adoption of them moves nothing.
func TestErrVariantTimingParity(t *testing.T) {
	plan := Plan{
		Storms:     StormConfig{Rate: 20, MeanDuration: 20 * sim.Millisecond, ExtraLatency: 2 * sim.Millisecond, Jitter: 0.4},
		ReadErrors: ReadErrorConfig{Prob: 0.1, MaxRetries: 20, Backoff: 100 * sim.Microsecond},
	}
	run := func(useErr bool) []sim.Time {
		e := sim.NewEngine(2)
		rng := sim.NewRNG(0xD15C)
		d := Wrap(swap.NewSSD(ssdCfg(), e, rng.Stream(1)), plan, nil, rng.Stream(2))
		var ends []sim.Time
		e.Spawn("reader", false, func(v *sim.Env) {
			for i := 0; i < 200; i++ {
				if useErr {
					if err := d.ReadPageErr(v, swap.Slot(i%8), int64(i), 0); err != nil {
						t.Errorf("unexpected hard error: %v", err)
					}
				} else {
					d.ReadPage(v, swap.Slot(i%8), int64(i), 0)
				}
				ends = append(ends, v.Now())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return ends
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: ReadPage at %v but ReadPageErr at %v", i, a[i], b[i])
		}
	}
}

// TestFilePresets: the file-device preset names resolve, target the
// file plane, and the plan targeting helpers partition correctly.
func TestFilePresets(t *testing.T) {
	for _, name := range []string{"file-mild", "file-severe"} {
		p, ok := Preset(name)
		if !ok || !p.DeviceEnabled() {
			t.Fatalf("Preset(%q) = %+v, %v", name, p, ok)
		}
		if !p.TargetsFile() || p.TargetsSwap() {
			t.Fatalf("Preset(%q) targets %v, want file only", name, p.Target)
		}
		if !p.WriteErrors.Enabled() {
			t.Fatalf("Preset(%q) has no write-error plan", name)
		}
	}
	// Legacy swap presets must keep targeting swap: Target's zero value.
	for _, name := range []string{"mild", "severe"} {
		p, _ := Preset(name)
		if !p.TargetsSwap() || p.TargetsFile() {
			t.Fatalf("Preset(%q) targets %v, want swap only", name, p.Target)
		}
	}
	both := Plan{Target: TargetBoth}
	if !both.TargetsSwap() || !both.TargetsFile() {
		t.Fatal("TargetBoth must hit both planes")
	}
	for want, target := range map[string]DeviceTarget{"swap": TargetSwap, "file": TargetFile, "both": TargetBoth} {
		if target.String() != want {
			t.Fatalf("DeviceTarget(%d).String() = %q, want %q", target, target.String(), want)
		}
	}
}
