// Package graph generates the synthetic power-law graphs backing the
// PageRank workload, stored in CSR form the way the GAP benchmark suite
// lays its graphs out. Degree skew is the property the paper's PageRank
// analysis depends on: per-thread work varies with the degree of owned
// vertices, so iteration barriers wait on hub-owning straggler threads.
package graph

import (
	"math"

	"mglrusim/internal/sim"
)

// CSR is a compressed sparse row adjacency structure.
type CSR struct {
	// N is the vertex count.
	N int
	// RowPtr has N+1 entries; vertex v's out-neighbours are
	// Col[RowPtr[v]:RowPtr[v+1]].
	RowPtr []int64
	// Col holds edge destinations.
	Col []int32
}

// Edges reports the edge count.
func (g *CSR) Edges() int { return len(g.Col) }

// Degree reports vertex v's out-degree.
func (g *CSR) Degree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// MaxDegree reports the largest out-degree.
func (g *CSR) MaxDegree() int {
	m := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// Validate checks CSR structural invariants.
func (g *CSR) Validate() bool {
	if len(g.RowPtr) != g.N+1 || g.RowPtr[0] != 0 {
		return false
	}
	for v := 0; v < g.N; v++ {
		if g.RowPtr[v+1] < g.RowPtr[v] {
			return false
		}
	}
	if g.RowPtr[g.N] != int64(len(g.Col)) {
		return false
	}
	for _, c := range g.Col {
		if c < 0 || int(c) >= g.N {
			return false
		}
	}
	return true
}

// Config parameterizes generation.
type Config struct {
	// Vertices is the vertex count.
	Vertices int
	// AvgDegree is the mean out-degree.
	AvgDegree int
	// Alpha is the power-law exponent of the degree weight w_i ∝ i^-Alpha
	// (Chung–Lu style); ~0.8 gives realistic web/social skew.
	Alpha float64
}

// DefaultConfig returns a small skewed graph suitable for simulation.
func DefaultConfig() Config {
	return Config{Vertices: 1 << 15, AvgDegree: 12, Alpha: 0.8}
}

// Generate builds a Chung–Lu style power-law graph: each edge endpoint is
// drawn from a zipf-weighted vertex distribution, and vertex IDs are
// scattered so hubs are spread across the ID space (and therefore across
// thread ranges). Deterministic for a given rng stream.
func Generate(cfg Config, rng *sim.RNG) *CSR {
	n := cfg.Vertices
	if n <= 1 {
		panic("graph: need at least two vertices")
	}
	e := n * cfg.AvgDegree

	// Cumulative zipf weights over ranks; rank r has weight (r+1)^-alpha.
	cum := make([]float64, n+1)
	for r := 0; r < n; r++ {
		cum[r+1] = cum[r] + math.Pow(float64(r+1), -cfg.Alpha)
	}
	total := cum[n]

	// Scatter ranks over vertex IDs so hub ownership by thread ranges is
	// seed-dependent rather than always thread 0.
	perm := rng.Perm(n)

	draw := func() int {
		x := rng.Float64() * total
		// Binary search the cumulative weights.
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return perm[lo]
	}

	// Out-degrees: source drawn from the skewed distribution too, giving
	// skewed out-degree (work) per vertex.
	deg := make([]int32, n)
	src := make([]int32, e)
	dst := make([]int32, e)
	for i := 0; i < e; i++ {
		s, d := draw(), draw()
		src[i] = int32(s)
		dst[i] = int32(d)
		deg[s]++
	}

	g := &CSR{N: n, RowPtr: make([]int64, n+1), Col: make([]int32, e)}
	for v := 0; v < n; v++ {
		g.RowPtr[v+1] = g.RowPtr[v] + int64(deg[v])
	}
	fill := make([]int64, n)
	copy(fill, g.RowPtr[:n])
	for i := 0; i < e; i++ {
		s := src[i]
		g.Col[fill[s]] = dst[i]
		fill[s]++
	}
	return g
}
