package graph

import (
	"testing"
	"testing/quick"

	"mglrusim/internal/sim"
)

func TestGenerateValidCSR(t *testing.T) {
	g := Generate(Config{Vertices: 1000, AvgDegree: 8, Alpha: 0.8}, sim.NewRNG(1))
	if !g.Validate() {
		t.Fatal("generated CSR invalid")
	}
	if g.N != 1000 || g.Edges() != 8000 {
		t.Fatalf("N=%d E=%d", g.N, g.Edges())
	}
}

func TestDegreeSkew(t *testing.T) {
	g := Generate(Config{Vertices: 4096, AvgDegree: 10, Alpha: 0.9}, sim.NewRNG(2))
	max := g.MaxDegree()
	avg := float64(g.Edges()) / float64(g.N)
	if float64(max) < 10*avg {
		t.Fatalf("max degree %d not hub-like vs avg %.1f", max, avg)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := Generate(DefaultConfig(), sim.NewRNG(7))
	b := Generate(DefaultConfig(), sim.NewRNG(7))
	if a.Edges() != b.Edges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatal("graphs differ for same seed")
		}
	}
	c := Generate(DefaultConfig(), sim.NewRNG(8))
	same := true
	for i := range a.Col {
		if a.Col[i] != c.Col[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestHubsScatteredAcrossIDSpace(t *testing.T) {
	g := Generate(Config{Vertices: 4096, AvgDegree: 10, Alpha: 0.9}, sim.NewRNG(3))
	// Find the top-degree vertex; over a few seeds it should not always
	// be in the first quartile of IDs.
	inFirstQuartile := 0
	for seed := uint64(0); seed < 8; seed++ {
		g = Generate(Config{Vertices: 4096, AvgDegree: 10, Alpha: 0.9}, sim.NewRNG(seed))
		best, bestDeg := 0, -1
		for v := 0; v < g.N; v++ {
			if d := g.Degree(v); d > bestDeg {
				best, bestDeg = v, d
			}
		}
		if best < g.N/4 {
			inFirstQuartile++
		}
	}
	if inFirstQuartile == 8 {
		t.Fatal("hubs always in first ID quartile; scattering broken")
	}
}

// Property: CSR validity holds across sizes and seeds.
func TestGenerateValidProperty(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw)%500 + 2
		d := int(dRaw)%8 + 1
		g := Generate(Config{Vertices: n, AvgDegree: d, Alpha: 0.7}, sim.NewRNG(seed))
		return g.Validate() && g.Edges() == n*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
