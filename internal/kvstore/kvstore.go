// Package kvstore models a memcached-like in-memory key-value cache at
// the page level: a bucketed hash index plus slab-allocated item storage.
// It answers the only question the simulator needs — which pages does a
// GET or SET touch — while preserving the structural properties that
// matter for replacement: the index is small and uniformly hot, the slab
// space is large with popularity-skewed access.
package kvstore

import (
	"mglrusim/internal/pagetable"
)

// Config sizes the store.
type Config struct {
	// Items is the number of cached items.
	Items int
	// ItemSize is the per-item byte footprint (key + value + header).
	ItemSize int
	// BucketsPerItem controls index density; memcached defaults to a
	// hash table sized near the item count.
	BucketsPerItem float64
	// BucketSize is the byte cost of one bucket (pointer + chain).
	BucketSize int
}

// DefaultConfig returns a memcached-like sizing with 1 KiB items.
func DefaultConfig(items int) Config {
	return Config{Items: items, ItemSize: 1024, BucketsPerItem: 1.0, BucketSize: 8}
}

// Store is the page-level model.
type Store struct {
	cfg           Config
	indexBase     pagetable.VPN
	indexPages    int
	slabBase      pagetable.VPN
	slabPages     int
	itemsPerPage  int
	bucketsPerPag int
	buckets       int
}

// New lays the store out starting at base and returns it. Layout order:
// hash index, then slabs.
func New(cfg Config, base pagetable.VPN) *Store {
	if cfg.Items <= 0 || cfg.ItemSize <= 0 {
		panic("kvstore: invalid config")
	}
	if cfg.ItemSize > pagetable.PageSize {
		panic("kvstore: items larger than a page are not modeled")
	}
	s := &Store{cfg: cfg}
	s.buckets = int(float64(cfg.Items) * cfg.BucketsPerItem)
	if s.buckets < 1 {
		s.buckets = 1
	}
	s.bucketsPerPag = pagetable.PageSize / cfg.BucketSize
	s.indexPages = (s.buckets + s.bucketsPerPag - 1) / s.bucketsPerPag
	s.itemsPerPage = pagetable.PageSize / cfg.ItemSize
	s.slabPages = (cfg.Items + s.itemsPerPage - 1) / s.itemsPerPage
	s.indexBase = base
	s.slabBase = base + pagetable.VPN(s.indexPages)
	return s
}

// Pages reports the total mapped footprint in pages.
func (s *Store) Pages() int { return s.indexPages + s.slabPages }

// IndexPages reports the hash-index page count.
func (s *Store) IndexPages() int { return s.indexPages }

// SlabPages reports the item-storage page count.
func (s *Store) SlabPages() int { return s.slabPages }

// End reports the first VPN after the store.
func (s *Store) End() pagetable.VPN { return s.slabBase + pagetable.VPN(s.slabPages) }

// hash mixes a key for bucket selection.
func hash(key int64) uint64 {
	z := uint64(key) * 0x9e3779b97f4a7c15
	z ^= z >> 29
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 32
	return z
}

// IndexPage returns the index page a key's bucket lives on.
func (s *Store) IndexPage(key int64) pagetable.VPN {
	b := int(hash(key) % uint64(s.buckets))
	return s.indexBase + pagetable.VPN(b/s.bucketsPerPag)
}

// ItemPage returns the slab page holding the item for key. Items are
// placed by insertion order hashing, so popular keys scatter uniformly
// over the slab space (as with memcached slab allocation).
func (s *Store) ItemPage(key int64) pagetable.VPN {
	slotIdx := int(hash(key^0x5bf03635) % uint64(s.cfg.Items))
	return s.slabBase + pagetable.VPN(slotIdx/s.itemsPerPage)
}

// PageAccess describes one page touch of a request.
type PageAccess struct {
	VPN   pagetable.VPN
	Write bool
}

// Get returns the page accesses of a GET: bucket lookup, then item read.
func (s *Store) Get(key int64) [2]PageAccess {
	return [2]PageAccess{
		{VPN: s.IndexPage(key)},
		{VPN: s.ItemPage(key)},
	}
}

// Set returns the page accesses of a SET/UPDATE: bucket lookup (read),
// then item write.
func (s *Store) Set(key int64) [2]PageAccess {
	return [2]PageAccess{
		{VPN: s.IndexPage(key)},
		{VPN: s.ItemPage(key), Write: true},
	}
}
