package kvstore

import (
	"testing"
	"testing/quick"

	"mglrusim/internal/pagetable"
)

func TestLayoutSizing(t *testing.T) {
	s := New(DefaultConfig(4096), 100)
	// 4096 items at 1 KiB, 4 per page -> 1024 slab pages.
	if s.SlabPages() != 1024 {
		t.Fatalf("slab pages = %d, want 1024", s.SlabPages())
	}
	// 4096 buckets at 8 B, 512 per page -> 8 index pages.
	if s.IndexPages() != 8 {
		t.Fatalf("index pages = %d, want 8", s.IndexPages())
	}
	if s.Pages() != 1032 {
		t.Fatalf("total = %d", s.Pages())
	}
	if s.End() != 100+1032 {
		t.Fatalf("end = %d", s.End())
	}
}

func TestGetTouchesIndexThenItem(t *testing.T) {
	s := New(DefaultConfig(1000), 0)
	acc := s.Get(42)
	if acc[0].Write || acc[1].Write {
		t.Fatal("GET must not write")
	}
	if acc[0].VPN >= pagetable.VPN(s.IndexPages()) {
		t.Fatalf("first access %d outside index", acc[0].VPN)
	}
	if acc[1].VPN < pagetable.VPN(s.IndexPages()) {
		t.Fatalf("second access %d inside index", acc[1].VPN)
	}
}

func TestSetWritesItemOnly(t *testing.T) {
	s := New(DefaultConfig(1000), 0)
	acc := s.Set(42)
	if acc[0].Write {
		t.Fatal("bucket lookup should be a read")
	}
	if !acc[1].Write {
		t.Fatal("item store should be a write")
	}
}

func TestSameKeySamePages(t *testing.T) {
	s := New(DefaultConfig(1000), 0)
	a, b := s.Get(7), s.Get(7)
	if a != b {
		t.Fatal("GET not deterministic per key")
	}
}

func TestKeysSpreadOverSlabs(t *testing.T) {
	s := New(DefaultConfig(10000), 0)
	pages := map[pagetable.VPN]bool{}
	for k := int64(0); k < 2000; k++ {
		pages[s.ItemPage(k)] = true
	}
	if len(pages) < s.SlabPages()/4 {
		t.Fatalf("keys concentrated on %d pages of %d", len(pages), s.SlabPages())
	}
}

func TestOversizeItemPanics(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.ItemSize = 8192
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversize items")
		}
	}()
	New(cfg, 0)
}

// Property: every access of every key stays inside the store's extent.
func TestAccessesInBoundsProperty(t *testing.T) {
	s := New(DefaultConfig(5000), 1234)
	f := func(key int64) bool {
		for _, acc := range [][2]PageAccess{s.Get(key), s.Set(key)} {
			for _, a := range acc {
				if a.VPN < 1234 || a.VPN >= s.End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
