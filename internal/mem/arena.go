package mem

// Arena is a chunked, lazily materialized array of T: a fixed logical
// length whose backing storage is allocated one chunk at a time, on first
// write access. Per-page metadata tables (shadow entries, content
// versions, fault counts) are indexed by virtual page number over the
// whole address-space span — holes included — so at full scale a dense
// slice would charge O(pages) allocation for state that is overwhelmingly
// never touched. An Arena charges O(chunks actually written).
//
// Chunks never move once materialized, so pointers returned by At stay
// valid for the Arena's lifetime, matching the aliasing guarantees the
// dense slices used to give.
type Arena[T any] struct {
	chunks [][]T
	n      int
	shift  uint
	mask   int
	def    T
	hasDef bool
	live   int // materialized chunks, for footprint accounting
}

// NewArena creates an arena of n elements in chunks of chunkSize (a power
// of two). Elements read as the zero value of T until written.
func NewArena[T any](n, chunkSize int) *Arena[T] {
	if n < 0 {
		panic("mem: arena length must be non-negative")
	}
	if chunkSize <= 0 || chunkSize&(chunkSize-1) != 0 {
		panic("mem: arena chunk size must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift < chunkSize {
		shift++
	}
	nchunks := (n + chunkSize - 1) / chunkSize
	return &Arena[T]{
		chunks: make([][]T, nchunks),
		n:      n,
		shift:  shift,
		mask:   chunkSize - 1,
	}
}

// SetDefault makes absent elements read as def instead of the zero value;
// newly materialized chunks are filled with it. Must be called before any
// chunk materializes.
func (a *Arena[T]) SetDefault(def T) {
	if a.live > 0 {
		panic("mem: arena default set after materialization")
	}
	a.def = def
	a.hasDef = true
}

// Len reports the logical length.
func (a *Arena[T]) Len() int { return a.n }

// LiveChunks reports how many chunks have been materialized.
func (a *Arena[T]) LiveChunks() int { return a.live }

// ChunkSize reports the chunk granularity in elements.
func (a *Arena[T]) ChunkSize() int { return a.mask + 1 }

func (a *Arena[T]) materialize(c int) []T {
	ch := make([]T, a.mask+1)
	if a.hasDef {
		for i := range ch {
			ch[i] = a.def
		}
	}
	a.chunks[c] = ch
	a.live++
	return ch
}

// At returns a pointer to element i, materializing its chunk if needed.
// The pointer stays valid for the Arena's lifetime.
func (a *Arena[T]) At(i int) *T {
	if i < 0 || i >= a.n {
		panic("mem: arena index out of range")
	}
	c := i >> a.shift
	ch := a.chunks[c]
	if ch == nil {
		ch = a.materialize(c)
	}
	return &ch[i&a.mask]
}

// Peek returns element i by value without materializing anything: absent
// elements read as the default (or zero) value.
func (a *Arena[T]) Peek(i int) T {
	if i < 0 || i >= a.n {
		panic("mem: arena index out of range")
	}
	if ch := a.chunks[i>>a.shift]; ch != nil {
		return ch[i&a.mask]
	}
	return a.def
}
