package mem

import "testing"

// FuzzArenaVsDense drives the chunked arena and a dense slice through the
// same write/read stream and requires identical reads, plus the lazy
// invariants the packed page table leans on: Peek never materializes, At
// pointers stay stable, LiveChunks only counts chunks actually written.
func FuzzArenaVsDense(f *testing.F) {
	f.Add([]byte{0, 10, 7, 1, 10, 0, 1, 200, 0})
	f.Add([]byte{0, 255, 1, 0, 0, 2, 1, 128, 0, 0, 129, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 300 // spans several 64-element chunks, with a ragged tail
		a := NewArena[int64](n, 64)
		a.SetDefault(-7)
		dense := make([]int64, n)
		for i := range dense {
			dense[i] = -7
		}
		var ptrs = map[int]*int64{}
		written := map[int]bool{}
		for i := 0; i+2 < len(data); i += 3 {
			op, idxb, val := data[i], data[i+1], data[i+2]
			idx := (int(idxb)*7 + i) % n
			switch op % 3 {
			case 0: // write through At
				p := a.At(idx)
				*p = int64(val)
				dense[idx] = int64(val)
				if old, ok := ptrs[idx]; ok && old != p {
					t.Fatalf("At(%d) moved: chunks must stay put once materialized", idx)
				}
				ptrs[idx] = p
				written[idx/64] = true
			case 1: // read through Peek (must not materialize)
				before := a.LiveChunks()
				if got := a.Peek(idx); got != dense[idx] {
					t.Fatalf("Peek(%d) = %d, dense model says %d", idx, got, dense[idx])
				}
				if a.LiveChunks() != before {
					t.Fatalf("Peek(%d) materialized a chunk", idx)
				}
			case 2: // read through At (materializes, default-filled)
				if got := *a.At(idx); got != dense[idx] {
					t.Fatalf("At(%d) = %d, dense model says %d", idx, got, dense[idx])
				}
			}
		}
		if a.LiveChunks() > (n+63)/64 {
			t.Fatalf("LiveChunks %d exceeds chunk count", a.LiveChunks())
		}
		if a.LiveChunks() < len(written) {
			t.Fatalf("LiveChunks %d under-counts: %d chunks were written", a.LiveChunks(), len(written))
		}
	})
}

// FuzzMemoryAllocFree drives the recycling allocator against a live-set
// model: no frame is handed out twice, freed frames come back fully
// Reset, FreePages always agrees with the model, and VPNOf reads through
// without materializing extra metadata chunks.
func FuzzMemoryAllocFree(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 0})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 1, 4, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		const size = 64
		m := New(size)
		live := map[FrameID]bool{}
		order := []FrameID{} // allocation order, for picking victims to free
		for i := 0; i+1 < len(data); i += 2 {
			op, pick := data[i], data[i+1]
			switch op % 2 {
			case 0: // alloc
				fid := m.Alloc()
				if len(live) == size {
					if fid != NilFrame {
						t.Fatalf("alloc succeeded with all %d frames live", size)
					}
					continue
				}
				if fid == NilFrame {
					t.Fatalf("alloc failed with %d/%d frames live", len(live), size)
				}
				if live[fid] {
					t.Fatalf("frame %d handed out twice", fid)
				}
				if fid < 0 || int(fid) >= size {
					t.Fatalf("frame %d out of range", fid)
				}
				fr := m.Frame(fid)
				if fr.VPN != -1 || fr.Flags != 0 || fr.ListID != ListNone {
					t.Fatalf("frame %d not reset on alloc: %+v", fid, *fr)
				}
				fr.VPN = int64(fid) * 100 // stamp so reuse without Reset is visible
				fr.Flags = FlagDirty
				live[fid] = true
				order = append(order, fid)
			case 1: // free a live frame
				if len(order) == 0 {
					continue
				}
				j := int(pick) % len(order)
				fid := order[j]
				order = append(order[:j], order[j+1:]...)
				m.Free(fid)
				delete(live, fid)
				if m.VPNOf(fid) != -1 {
					t.Fatalf("freed frame %d still has VPN %d", fid, m.VPNOf(fid))
				}
			}
			if got, want := m.FreePages(), size-len(live); got != want {
				t.Fatalf("FreePages = %d, model says %d", got, want)
			}
			if m.UsedPages() != len(live) {
				t.Fatalf("UsedPages = %d, model says %d", m.UsedPages(), len(live))
			}
		}
		// Every model-free frame must be reachable through EachFree, once.
		seen := map[FrameID]int{}
		m.EachFree(func(fid FrameID) { seen[fid]++ })
		if len(seen) != size-len(live) {
			t.Fatalf("EachFree visited %d frames, model says %d free", len(seen), size-len(live))
		}
		for fid, n := range seen {
			if n != 1 {
				t.Fatalf("EachFree visited frame %d %d times", fid, n)
			}
			if live[fid] {
				t.Fatalf("EachFree visited live frame %d", fid)
			}
		}
	})
}
