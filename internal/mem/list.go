package mem

// List is an intrusive doubly-linked list of frames, threaded through the
// Next/Prev fields of Frame metadata. All operations are O(1) except
// iteration. A frame may be on at most one list at a time; each List has an
// ID recorded in the frame so cross-list bugs fail fast.
//
// Orientation follows kernel convention: pages are added at the head
// (most recently classified) and reclaimed from the tail (least recently
// classified).
type List struct {
	mem  *Memory
	id   int16
	head FrameID
	tail FrameID
	n    int
}

// NewList creates a list with identity id over memory m. IDs must be
// non-negative and unique among lists that can share frames.
func NewList(m *Memory, id int16) *List {
	if id < 0 {
		panic("mem: list id must be non-negative")
	}
	return &List{mem: m, id: id, head: NilFrame, tail: NilFrame}
}

// ID reports the list identity.
func (l *List) ID() int16 { return l.id }

// Len reports the number of frames on the list.
func (l *List) Len() int { return l.n }

// Empty reports whether the list has no frames.
func (l *List) Empty() bool { return l.n == 0 }

// Head returns the most recently added frame, or NilFrame.
func (l *List) Head() FrameID { return l.head }

// Tail returns the oldest frame, or NilFrame.
func (l *List) Tail() FrameID { return l.tail }

// PushHead inserts f at the head. f must not be on any list.
func (l *List) PushHead(f FrameID) {
	fr := l.mem.Frame(f)
	if fr.ListID != ListNone {
		panic("mem: frame already on a list")
	}
	if l.mem.onListMutate != nil {
		l.mem.onListMutate(l.id, f)
	}
	fr.ListID = l.id
	fr.Prev = NilFrame
	fr.Next = l.head
	if l.head != NilFrame {
		l.mem.Frame(l.head).Prev = f
	}
	l.head = f
	if l.tail == NilFrame {
		l.tail = f
	}
	l.n++
}

// PushTail inserts f at the tail. f must not be on any list.
func (l *List) PushTail(f FrameID) {
	fr := l.mem.Frame(f)
	if fr.ListID != ListNone {
		panic("mem: frame already on a list")
	}
	if l.mem.onListMutate != nil {
		l.mem.onListMutate(l.id, f)
	}
	fr.ListID = l.id
	fr.Next = NilFrame
	fr.Prev = l.tail
	if l.tail != NilFrame {
		l.mem.Frame(l.tail).Next = f
	}
	l.tail = f
	if l.head == NilFrame {
		l.head = f
	}
	l.n++
}

// Remove unlinks f from this list. It panics if f is on a different list.
func (l *List) Remove(f FrameID) {
	fr := l.mem.Frame(f)
	if fr.ListID != l.id {
		panic("mem: removing frame from wrong list")
	}
	if l.mem.onListMutate != nil {
		l.mem.onListMutate(l.id, f)
	}
	if fr.Prev != NilFrame {
		l.mem.Frame(fr.Prev).Next = fr.Next
	} else {
		l.head = fr.Next
	}
	if fr.Next != NilFrame {
		l.mem.Frame(fr.Next).Prev = fr.Prev
	} else {
		l.tail = fr.Prev
	}
	fr.ListID = ListNone
	fr.Next, fr.Prev = NilFrame, NilFrame
	l.n--
}

// PopTail removes and returns the tail frame, or NilFrame when empty.
func (l *List) PopTail() FrameID {
	f := l.tail
	if f != NilFrame {
		l.Remove(f)
	}
	return f
}

// PopHead removes and returns the head frame, or NilFrame when empty.
func (l *List) PopHead() FrameID {
	f := l.head
	if f != NilFrame {
		l.Remove(f)
	}
	return f
}

// MoveToHead rotates f (already on this list) to the head.
func (l *List) MoveToHead(f FrameID) {
	l.Remove(f)
	l.PushHead(f)
}

// MoveTo removes f from this list and pushes it onto the head of dst.
func (l *List) MoveTo(f FrameID, dst *List) {
	l.Remove(f)
	dst.PushHead(f)
}

// Each calls fn for every frame from tail to head (reclaim order),
// stopping early if fn returns false. It is safe for fn to remember frames
// but not to mutate the list during iteration.
func (l *List) Each(fn func(FrameID) bool) {
	for f := l.tail; f != NilFrame; {
		fr := l.mem.Frame(f)
		next := fr.Prev
		if !fn(f) {
			return
		}
		f = next
	}
}

// Validate checks structural invariants (used by tests and the property
// suite): length agrees with links, no cycles, consistent back-pointers,
// and every member carries this list's ID.
func (l *List) Validate() bool {
	count := 0
	prev := NilFrame
	for f := l.head; f != NilFrame; f = l.mem.Frame(f).Next {
		fr := l.mem.Frame(f)
		if fr.ListID != l.id || fr.Prev != prev {
			return false
		}
		prev = f
		count++
		if count > l.mem.Size() {
			return false // cycle
		}
	}
	return count == l.n && prev == l.tail
}
