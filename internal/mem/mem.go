// Package mem models physical memory: a fixed array of page frames with
// per-frame metadata (the simulator's analogue of the kernel's struct
// page), a free list, and reclaim watermarks.
//
// Frame metadata includes intrusive doubly-linked list hooks so replacement
// policies can move pages between LRU lists in O(1), exactly as the kernel
// does — the paper notes that generation moves being O(1) is what makes
// large generation counts (Gen-14) viable.
package mem

// FrameID indexes a physical frame. NilFrame means "no frame".
type FrameID int32

// NilFrame is the absent-frame sentinel.
const NilFrame FrameID = -1

// PageFlags describe frame state relevant to replacement.
type PageFlags uint16

const (
	// FlagDirty marks content modified since load; eviction must write it
	// to swap rather than just dropping it.
	FlagDirty PageFlags = 1 << iota
	// FlagFile marks a page backed by a file descriptor (page cache), which
	// MG-LRU promotes by tier rather than to the youngest generation.
	FlagFile
	// FlagWorkingset marks a page that refaulted soon after eviction.
	FlagWorkingset
	// FlagPrefetch marks a page brought in speculatively by swap
	// readahead rather than by a demand fault; policies give such pages
	// less protection.
	FlagPrefetch
)

// Frame is the metadata for one physical page frame.
type Frame struct {
	// VPN is the virtual page mapped into this frame, or -1 when free.
	VPN int64
	// Flags holds replacement-relevant state bits.
	Flags PageFlags
	// Gen is the MG-LRU generation sequence number of the page.
	Gen uint64
	// Tier is the MG-LRU tier within the generation (log2 of references).
	Tier uint8
	// Refs counts accesses through file descriptors since the last
	// generation move; Tier = log2(Refs+1) capped at MaxTier.
	Refs uint8
	// ListID identifies which policy list the frame is on (policy-defined),
	// or ListNone.
	ListID int16
	// Next and Prev are intrusive list linkage, managed by List.
	Next, Prev FrameID
}

// ListNone marks a frame that is on no policy list.
const ListNone int16 = -1

// Reset returns the frame metadata to its freshly-freed state.
func (f *Frame) Reset() {
	f.VPN = -1
	f.Flags = 0
	f.Gen = 0
	f.Tier = 0
	f.Refs = 0
	f.ListID = ListNone
	f.Next, f.Prev = NilFrame, NilFrame
}

// frameChunk is the frame-metadata arena granularity: 4096 frames
// (~128 KB of metadata) per chunk keeps materialization coarse enough to
// be cheap and fine enough that small test memories stay small.
const frameChunk = 4096

// Memory is a physical memory of a fixed number of frames.
//
// Frame metadata lives in a chunked arena materialized on first touch,
// and the free list is a recycling stack over a never-allocated-yet
// watermark, so constructing a multi-million-frame Memory is O(1) in the
// frame count: full-scale capacities cost only the chunks the run
// actually dirties.
type Memory struct {
	frames *Arena[Frame]
	size   int
	// free is the stack of recycled frames; fresh is the low-water mark
	// of frames never handed out. Allocation pops recycled frames LIFO
	// first, then advances fresh — byte-for-byte the order the historical
	// pre-built descending free list produced.
	free  []FrameID
	fresh FrameID

	// onListMutate, when non-nil, observes every list mutation (see
	// SetMutationHook).
	onListMutate func(listID int16, f FrameID)

	// Watermarks, in pages. Reclaim is triggered when free pages drop
	// below Low, and background reclaim aims to restore High. Direct
	// reclaim (the faulting thread reclaims synchronously) kicks in
	// below Min.
	Min, Low, High int
}

// New creates a Memory with n frames, all free, with Linux-style default
// watermarks derived from capacity.
func New(n int) *Memory {
	if n <= 0 {
		panic("mem: capacity must be positive")
	}
	m := &Memory{
		frames: NewArena[Frame](n, frameChunk),
		size:   n,
	}
	m.frames.SetDefault(resetFrame())
	// Watermark defaults: min ~0.8%, low 1%, high 3% of capacity, with
	// floors so tiny test memories still behave.
	m.Min = maxInt(2, n*8/1000)
	m.Low = maxInt(4, n/100)
	m.High = maxInt(8, n*3/100)
	return m
}

// resetFrame is the freshly-freed frame value chunks are filled with.
func resetFrame() Frame {
	var f Frame
	f.Reset()
	return f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Size reports total frames.
func (m *Memory) Size() int { return m.size }

// FreePages reports how many frames are currently free.
func (m *Memory) FreePages() int { return len(m.free) + m.size - int(m.fresh) }

// UsedPages reports how many frames are allocated.
func (m *Memory) UsedPages() int { return m.size - m.FreePages() }

// Frame returns the metadata for frame f. The pointer stays valid for the
// lifetime of the Memory.
func (m *Memory) Frame(f FrameID) *Frame {
	return m.frames.At(int(f))
}

// VPNOf reports the virtual page mapped into frame f, or -1 when free —
// the flattened reverse-map resolve, one indexed load with no chunk
// materialization.
func (m *Memory) VPNOf(f FrameID) int64 {
	return m.frames.Peek(int(f)).VPN
}

// Alloc takes a free frame, or returns NilFrame when none is available.
// The returned frame's metadata has been Reset.
func (m *Memory) Alloc() FrameID {
	if n := len(m.free); n > 0 {
		f := m.free[n-1]
		m.free = m.free[:n-1]
		return f
	}
	if int(m.fresh) < m.size {
		f := m.fresh
		m.fresh++
		return f
	}
	return NilFrame
}

// Free returns frame f to the free list and clears its metadata.
// Freeing a frame that is still on a policy list is a bug and panics.
func (m *Memory) Free(f FrameID) {
	fr := m.frames.At(int(f))
	if fr.ListID != ListNone {
		panic("mem: freeing frame still on a policy list")
	}
	fr.Reset()
	m.free = append(m.free, f)
}

// BelowMin reports whether free memory is under the direct-reclaim
// watermark.
func (m *Memory) BelowMin() bool { return m.FreePages() < m.Min }

// BelowLow reports whether free memory is under the background-reclaim
// wakeup watermark.
func (m *Memory) BelowLow() bool { return m.FreePages() < m.Low }

// BelowHigh reports whether free memory is under the background-reclaim
// target watermark.
func (m *Memory) BelowHigh() bool { return m.FreePages() < m.High }

// EachFree calls fn for every frame currently free — the recycled stack
// plus every frame past the allocation watermark. Verification tooling
// uses it to cross-check frame ownership; fn must not allocate or free
// frames.
func (m *Memory) EachFree(fn func(FrameID)) {
	for _, f := range m.free {
		fn(f)
	}
	for f := m.fresh; int(f) < m.size; f++ {
		fn(f)
	}
}

// SetMutationHook installs fn to be called on every list insert/remove
// over this memory (nil uninstalls). The invariant auditor uses it to
// assert the LRU lock is held across list mutations; the hook must not
// mutate lists itself. Cost when uninstalled is a single nil check per
// list operation.
func (m *Memory) SetMutationHook(fn func(listID int16, f FrameID)) {
	m.onListMutate = fn
}
