package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	m := New(8)
	if m.FreePages() != 8 {
		t.Fatalf("free = %d, want 8", m.FreePages())
	}
	f := m.Alloc()
	if f == NilFrame {
		t.Fatal("alloc failed")
	}
	if m.FreePages() != 7 || m.UsedPages() != 1 {
		t.Fatalf("free = %d used = %d", m.FreePages(), m.UsedPages())
	}
	m.Frame(f).VPN = 42
	m.Frame(f).VPN = -1
	m.Free(f)
	if m.FreePages() != 8 {
		t.Fatalf("free after Free = %d", m.FreePages())
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := New(3)
	for i := 0; i < 3; i++ {
		if m.Alloc() == NilFrame {
			t.Fatal("premature exhaustion")
		}
	}
	if m.Alloc() != NilFrame {
		t.Fatal("alloc should fail when empty")
	}
}

func TestFreeResetsMetadata(t *testing.T) {
	m := New(2)
	f := m.Alloc()
	fr := m.Frame(f)
	fr.VPN = 7
	fr.Flags = FlagDirty | FlagFile
	fr.Gen = 9
	fr.Tier = 3
	m.Free(f)
	g := m.Alloc() // may be a different frame; alloc both to find f
	h := m.Alloc()
	for _, id := range []FrameID{g, h} {
		if id == f {
			fr := m.Frame(id)
			if fr.VPN != -1 || fr.Flags != 0 || fr.Gen != 0 || fr.Tier != 0 {
				t.Fatalf("metadata not reset: %+v", *fr)
			}
		}
	}
}

func TestFreeOnListPanics(t *testing.T) {
	m := New(2)
	l := NewList(m, 0)
	f := m.Alloc()
	l.PushHead(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when freeing listed frame")
		}
	}()
	m.Free(f)
}

func TestWatermarks(t *testing.T) {
	m := New(1000)
	if m.Min >= m.Low || m.Low >= m.High {
		t.Fatalf("watermark ordering violated: %d %d %d", m.Min, m.Low, m.High)
	}
	for m.FreePages() > m.High {
		m.Alloc()
	}
	if !m.BelowHigh() && m.FreePages() >= m.High {
		// boundary: below-high means strictly under
		t.Log("at high watermark boundary")
	}
	for m.FreePages() >= m.Low {
		m.Alloc()
	}
	if !m.BelowLow() {
		t.Fatal("BelowLow should be true")
	}
	for m.FreePages() >= m.Min {
		m.Alloc()
	}
	if !m.BelowMin() {
		t.Fatal("BelowMin should be true")
	}
}

func TestListPushPopOrder(t *testing.T) {
	m := New(10)
	l := NewList(m, 0)
	var fs []FrameID
	for i := 0; i < 4; i++ {
		f := m.Alloc()
		fs = append(fs, f)
		l.PushHead(f)
	}
	// Tail should be the first pushed (oldest).
	if got := l.PopTail(); got != fs[0] {
		t.Fatalf("PopTail = %d, want %d", got, fs[0])
	}
	if got := l.PopHead(); got != fs[3] {
		t.Fatalf("PopHead = %d, want %d", got, fs[3])
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	if !l.Validate() {
		t.Fatal("list invalid")
	}
}

func TestListMoveToHead(t *testing.T) {
	m := New(10)
	l := NewList(m, 0)
	a, b, c := m.Alloc(), m.Alloc(), m.Alloc()
	l.PushHead(a)
	l.PushHead(b)
	l.PushHead(c)
	l.MoveToHead(a)
	if l.Head() != a || l.Tail() != b {
		t.Fatalf("head=%d tail=%d, want head=%d tail=%d", l.Head(), l.Tail(), a, b)
	}
	if !l.Validate() {
		t.Fatal("list invalid after rotation")
	}
}

func TestListMoveBetweenLists(t *testing.T) {
	m := New(10)
	src := NewList(m, 0)
	dst := NewList(m, 1)
	f := m.Alloc()
	src.PushHead(f)
	src.MoveTo(f, dst)
	if src.Len() != 0 || dst.Len() != 1 {
		t.Fatalf("src=%d dst=%d", src.Len(), dst.Len())
	}
	if m.Frame(f).ListID != dst.ID() {
		t.Fatal("frame list id not updated")
	}
	if !src.Validate() || !dst.Validate() {
		t.Fatal("lists invalid")
	}
}

func TestListDoublePushPanics(t *testing.T) {
	m := New(4)
	l := NewList(m, 0)
	f := m.Alloc()
	l.PushHead(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double push")
		}
	}()
	l.PushTail(f)
}

func TestListRemoveFromWrongListPanics(t *testing.T) {
	m := New(4)
	a := NewList(m, 0)
	b := NewList(m, 1)
	f := m.Alloc()
	a.PushHead(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic removing from wrong list")
		}
	}()
	b.Remove(f)
}

func TestListEachVisitsTailToHead(t *testing.T) {
	m := New(10)
	l := NewList(m, 0)
	var fs []FrameID
	for i := 0; i < 5; i++ {
		f := m.Alloc()
		fs = append(fs, f)
		l.PushHead(f)
	}
	var visited []FrameID
	l.Each(func(f FrameID) bool {
		visited = append(visited, f)
		return true
	})
	for i, f := range visited {
		if f != fs[i] {
			t.Fatalf("visit order %v, want %v", visited, fs)
		}
	}
}

func TestListEachEarlyStop(t *testing.T) {
	m := New(10)
	l := NewList(m, 0)
	for i := 0; i < 5; i++ {
		l.PushHead(m.Alloc())
	}
	n := 0
	l.Each(func(FrameID) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("visited %d, want 2", n)
	}
}

// Property: a random sequence of list operations keeps every list valid
// and every frame on at most one list.
func TestListOperationsInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(32)
		lists := []*List{NewList(m, 0), NewList(m, 1), NewList(m, 2)}
		var owned []FrameID // allocated frames
		onList := map[FrameID]int{}
		for _, op := range ops {
			switch op % 5 {
			case 0: // alloc + push to random list
				fid := m.Alloc()
				if fid == NilFrame {
					continue
				}
				li := int(op/5) % 3
				lists[li].PushHead(fid)
				owned = append(owned, fid)
				onList[fid] = li
			case 1: // pop tail from a list and free
				li := int(op/5) % 3
				fid := lists[li].PopTail()
				if fid == NilFrame {
					continue
				}
				delete(onList, fid)
				m.Free(fid)
				for i, v := range owned {
					if v == fid {
						owned = append(owned[:i], owned[i+1:]...)
						break
					}
				}
			case 2: // rotate a list's tail to head
				li := int(op/5) % 3
				if tail := lists[li].Tail(); tail != NilFrame {
					lists[li].MoveToHead(tail)
				}
			case 3: // move tail to another list
				li := int(op/5) % 3
				dst := (li + 1) % 3
				if tail := lists[li].Tail(); tail != NilFrame {
					lists[li].MoveTo(tail, lists[dst])
					onList[tail] = dst
				}
			case 4: // push tail instead of head
				fid := m.Alloc()
				if fid == NilFrame {
					continue
				}
				li := int(op/5) % 3
				lists[li].PushTail(fid)
				owned = append(owned, fid)
				onList[fid] = li
			}
		}
		total := 0
		for li, l := range lists {
			if !l.Validate() {
				return false
			}
			total += l.Len()
			// every frame claiming membership must be mapped to this list
			count := 0
			l.Each(func(fid FrameID) bool {
				if onList[fid] != li {
					count = -1 << 30
					return false
				}
				count++
				return true
			})
			if count != l.Len() {
				return false
			}
		}
		return total == len(owned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
