package pagecache_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
)

// TestCacheStatsAddComplete: the series aggregators in the experiment
// harness sum pagecache.Stats with Add; a field missing from Add reads
// as a permanent zero in every figure. Reflection fills each field with
// a distinct value and checks the round trip.
func TestCacheStatsAddComplete(t *testing.T) {
	var filled pagecache.Stats
	rv := reflect.ValueOf(&filled).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Int64: // sim.Duration
			f.SetInt(int64(i + 1))
		default:
			t.Fatalf("Stats.%s has kind %v; teach this test to fill it",
				rv.Type().Field(i).Name, f.Kind())
		}
	}
	var sum pagecache.Stats
	sum.Add(filled)
	if sum != filled {
		for i := 0; i < rv.NumField(); i++ {
			name := rv.Type().Field(i).Name
			got := reflect.ValueOf(sum).Field(i).Interface()
			want := rv.Field(i).Interface()
			if got != want {
				t.Errorf("Stats.Add drops %s: got %v, want %v", name, got, want)
			}
		}
	}
	sum.Add(filled)
	if sum == filled {
		t.Fatal("second Add did not accumulate")
	}
}

// flakyDevice is a scripted FallibleDevice: reads/writes/prefetches fail
// by slot membership in the fail sets, with a fixed latency charge so
// tests stay deterministic without a real device model underneath.
type flakyDevice struct {
	failReads    map[swap.Slot]bool
	failWrites   map[swap.Slot]bool
	failPrefetch map[swap.Slot]bool
	panicWrites  map[swap.Slot]bool
	lat          sim.Duration
	stats        swap.Stats
}

func newFlaky() *flakyDevice {
	return &flakyDevice{
		failReads:    map[swap.Slot]bool{},
		failWrites:   map[swap.Slot]bool{},
		failPrefetch: map[swap.Slot]bool{},
		panicWrites:  map[swap.Slot]bool{},
		lat:          50 * sim.Microsecond,
	}
}

func (d *flakyDevice) Name() string { return "flaky" }

func (d *flakyDevice) ReadPage(v *sim.Env, slot swap.Slot, vpn int64, version uint32) {
	if err := d.ReadPageErr(v, slot, vpn, version); err != nil {
		panic(err)
	}
}

func (d *flakyDevice) WritePage(v *sim.Env, slot swap.Slot, vpn int64, version uint32) {
	if err := d.WritePageErr(v, slot, vpn, version); err != nil {
		panic(err)
	}
}

func (d *flakyDevice) PrefetchPage(v *sim.Env, slot swap.Slot, vpn int64, version uint32) {
	d.PrefetchPageErr(v, slot, vpn, version)
}

func (d *flakyDevice) ReadPageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error {
	d.stats.Reads++
	v.Sleep(d.lat)
	if d.failReads[slot] {
		return fmt.Errorf("flaky: scripted read error on slot %d", slot)
	}
	return nil
}

func (d *flakyDevice) WritePageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error {
	if d.panicWrites[slot] {
		panic(fmt.Errorf("flaky: scripted write panic on slot %d", slot))
	}
	d.stats.Writes++
	v.Sleep(d.lat)
	if d.failWrites[slot] {
		return fmt.Errorf("flaky: scripted write error on slot %d", slot)
	}
	return nil
}

func (d *flakyDevice) PrefetchPageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error {
	d.stats.Reads++
	v.Sleep(d.lat)
	if d.failPrefetch[slot] {
		return fmt.Errorf("flaky: scripted prefetch error on slot %d", slot)
	}
	return nil
}

func (d *flakyDevice) FreeSlot(slot swap.Slot) {}
func (d *flakyDevice) Drain(v *sim.Env)        {}
func (d *flakyDevice) Stats() swap.Stats       { return d.stats }

var _ pagecache.FallibleDevice = (*flakyDevice)(nil)

// flakyHarness builds a cache over the flaky device: 256 file pages in
// two spans, 100-frame memory.
func flakyHarness(t *testing.T, cfg pagecache.Config) (*harness, *flakyDevice) {
	t.Helper()
	eng := sim.NewEngine(4)
	table := pagetable.New(4)
	table.MapRange(0, 256, true)
	memry := mem.New(100)
	dev := newFlaky()
	c := pagecache.New(cfg, eng, table, memry, dev, []pagecache.FileSpan{
		{Name: "objects", Base: 0, Pages: 200},
		{Name: "index", Base: 200, Pages: 56},
	})
	return &harness{eng: eng, table: table, memry: memry, cache: c}, dev
}

// TestReadErrorPoisonsPage: a failed demand read poisons the page —
// the fault reports failure, later lookups see the poison, and repeat
// faults are accounted without touching the device again.
func TestReadErrorPoisonsPage(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h, dev := flakyHarness(t, cfg)
	dev.failReads[7] = true
	h.run(t, func(v *sim.Env) {
		if h.cache.ReadPage(v, 6) != true {
			t.Error("healthy slot failed")
		}
		if h.cache.ReadPage(v, 7) {
			t.Error("scripted read error did not surface")
		}
		if !h.cache.Poisoned(7) || h.cache.Poisoned(6) {
			t.Errorf("poison state wrong: 7=%v 6=%v", h.cache.Poisoned(7), h.cache.Poisoned(6))
		}
		if h.cache.PoisonedPages() != 1 {
			t.Errorf("PoisonedPages = %d, want 1", h.cache.PoisonedPages())
		}
		reads := dev.stats.Reads
		h.cache.NotePoisonedFault() // what vmm does on the fast path
		if dev.stats.Reads != reads {
			t.Error("poisoned fault touched the device")
		}
	})
	st := h.cache.Stats()
	if st.FileIOErrors != 1 || st.PoisonedFaults != 1 {
		t.Fatalf("stats = %+v, want FileIOErrors=1 PoisonedFaults=1", st)
	}
}

// TestWriteErrorLedger: failed writebacks advance the owning file's
// errseq ledger, count data-at-risk, and leave the page clean so the
// dirty set still drains — the kernel's lost-writeback semantics.
func TestWriteErrorLedger(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h, dev := flakyHarness(t, cfg)
	dev.failWrites[3] = true   // file "objects"
	dev.failWrites[201] = true // file "index" (slot 201 = vpn 201)
	h.run(t, func(v *sim.Env) {
		for _, vpn := range []pagetable.VPN{2, 3, 4, 201} {
			h.cache.MarkDirty(vpn)
		}
		h.cache.FlushAll(v)
		if d := h.cache.DirtyPages(); d != 0 {
			t.Errorf("dirty set after erroring flush = %d, want 0 (errors must not wedge writeback)", d)
		}
	})
	st := h.cache.Stats()
	if st.WriteErrors != 2 || st.DataAtRisk != 2 {
		t.Fatalf("stats = %+v, want WriteErrors=2 DataAtRisk=2", st)
	}
	ledger := h.cache.ErrorLedger()
	if len(ledger) != 2 {
		t.Fatalf("ledger has %d files, want 2", len(ledger))
	}
	if ledger[0].Name != "objects" || ledger[0].ErrSeq != 1 || ledger[0].DataAtRisk != 1 {
		t.Errorf("objects ledger = %+v, want ErrSeq=1 DataAtRisk=1", ledger[0])
	}
	if ledger[1].Name != "index" || ledger[1].ErrSeq != 1 || ledger[1].DataAtRisk != 1 {
		t.Errorf("index ledger = %+v, want ErrSeq=1 DataAtRisk=1", ledger[1])
	}
}

// TestPageOutError: an eviction-time writeback failure lands in the same
// ledger instead of failing reclaim.
func TestPageOutError(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h, dev := flakyHarness(t, cfg)
	dev.failWrites[9] = true
	h.run(t, func(v *sim.Env) {
		h.cache.PageOut(v, 9)
	})
	st := h.cache.Stats()
	if st.PageOuts != 1 || st.WriteErrors != 1 || st.DataAtRisk != 1 {
		t.Fatalf("stats = %+v, want PageOuts=1 WriteErrors=1 DataAtRisk=1", st)
	}
}

// TestHardDirtyThrottle: with the hard ratio set, a writer dirtying new
// pages past the wall stalls in ThrottleWriter until the flusher's
// collection drains the dirty set, and the stall is accounted. This is
// the unit-level proof of the vm.dirty_ratio analogue — at figure scale
// the serve workload's dirty production stays far below the wall, so the
// ext3 throttle column is expected ~0 there.
func TestHardDirtyThrottle(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.DirtyRatio = 0.10     // background trigger: 10 pages
	cfg.DirtyHardRatio = 0.20 // hard wall: 20 pages
	cfg.FlushInterval = 100 * sim.Millisecond
	h, _ := flakyHarness(t, cfg)
	if h.cache.HardDirtyThreshold() != 20 {
		t.Fatalf("HardDirtyThreshold = %d, want 20", h.cache.HardDirtyThreshold())
	}
	h.run(t, func(v *sim.Env) {
		// Dirty straight through the wall before the flusher's first poll
		// tick (25 ms) can run a pass.
		for vpn := pagetable.VPN(0); vpn < 20; vpn++ {
			h.cache.MarkDirty(vpn)
		}
		if !h.cache.OverHardLimit() {
			t.Fatal("20 dirty pages should sit at the wall")
		}
		// page_mkwrite semantics: a new page throttles, an already-dirty
		// page writes freely.
		if !h.cache.NeedsWriteThrottle(30) {
			t.Error("clean page over the wall must throttle")
		}
		if h.cache.NeedsWriteThrottle(5) {
			t.Error("already-dirty page must not throttle")
		}
		before := v.Now()
		h.cache.ThrottleWriter(v)
		if v.Now() == before {
			t.Error("ThrottleWriter returned without stalling over the wall")
		}
		if h.cache.OverHardLimit() {
			t.Error("writer released while still over the wall")
		}
		if h.cache.NeedsWriteThrottle(30) {
			t.Error("drained dirty set must not throttle")
		}
	})
	st := h.cache.Stats()
	if st.ThrottleStalls != 1 || st.ThrottleStallTime == 0 {
		t.Fatalf("stats = %+v, want one accounted stall", st)
	}
	if st.FlushPasses == 0 {
		t.Fatal("nothing flushed; the stall cannot have ended legitimately")
	}
}

// TestHardThrottleClampsAboveBackground: a hard ratio at or below the
// background ratio would throttle writers before the flusher wakes;
// New must clamp it above the background threshold.
func TestHardThrottleClampsAboveBackground(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.DirtyRatio = 0.10
	cfg.DirtyHardRatio = 0.05 // nonsense: below background
	h, _ := flakyHarness(t, cfg)
	if got, bg := h.cache.HardDirtyThreshold(), h.cache.DirtyThreshold(); got <= bg {
		t.Fatalf("hard threshold %d not clamped above background %d", got, bg)
	}
}

// TestThrottleOffByDefault: DefaultConfig leaves the hard wall down —
// NeedsWriteThrottle must be constant-false however dirty the cache
// gets, preserving historical behaviour byte-for-byte.
func TestThrottleOffByDefault(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h, _ := flakyHarness(t, cfg)
	if h.cache.HardDirtyThreshold() != 0 {
		t.Fatalf("DefaultConfig set a hard threshold: %d", h.cache.HardDirtyThreshold())
	}
	for vpn := pagetable.VPN(0); vpn < 256; vpn++ {
		h.cache.MarkDirty(vpn)
	}
	if h.cache.OverHardLimit() || h.cache.NeedsWriteThrottle(0) {
		t.Fatal("hard throttle engaged with DirtyHardRatio unset")
	}
}

// TestFlusherPanicClassified: a panic unwinding the flusher daemon must
// surface as a *FlusherError carrying the dirty-page count, with the
// original cause still reachable through the unwrap chain — that is what
// the experiment harness' retry classifier keys on.
func TestFlusherPanicClassified(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.FlushInterval = 10 * sim.Millisecond // poll tick: 2.5 ms
	h, dev := flakyHarness(t, cfg)
	// The flusher collects (and cleans) the whole dirty set host-side
	// before issuing device writes, so a panic on the first write would
	// see zero pages dirty. Panic on slot 40 — 2 ms into the pass at
	// 50 µs per write — after the writer has re-dirtied fresh pages, so
	// the error carries a live dirty-set snapshot.
	dev.panicWrites[40] = true
	h.eng.Spawn("writer", false, func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 64; vpn++ {
			h.cache.MarkDirty(vpn)
		}
		v.Sleep(3 * sim.Millisecond) // flusher pass is now mid-write
		for vpn := pagetable.VPN(100); vpn < 120; vpn++ {
			h.cache.MarkDirty(vpn)
		}
		v.Sleep(50 * sim.Millisecond) // let the flusher trip the panic
	})
	err := h.eng.Run()
	if err == nil {
		t.Fatal("flusher panic did not fail the run")
	}
	var fe *pagecache.FlusherError
	if !errors.As(err, &fe) {
		t.Fatalf("run error is not a *FlusherError: %v", err)
	}
	if fe.DirtyPages == 0 {
		t.Errorf("FlusherError lost the dirty-set context: %+v", fe)
	}
	if fe.Unwrap() == nil {
		t.Error("FlusherError lost its cause")
	}
}

// TestReadaheadAbandonAccounting: AbandonResident reverses NoteResident
// and counts the abort.
func TestReadaheadAbandonAccounting(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h, _ := flakyHarness(t, cfg)
	h.cache.NoteResident(11)
	h.cache.NoteResident(12)
	h.cache.AbandonResident(12)
	if got := h.cache.ResidentFilePages(); got != 1 {
		t.Fatalf("ResidentFilePages = %d, want 1", got)
	}
	if got := h.cache.Stats().ReadaheadAborts; got != 1 {
		t.Fatalf("ReadaheadAborts = %d, want 1", got)
	}
}
