// Package pagecache models file-backed memory as a first-class citizen
// beside anonymous memory: per-file address-space mappings over the
// shared page table, read/write-through against a backing block device
// on fault, dirty tracking with clustered writeback by a virtual-time
// flusher daemon, and shadow-entry refault tracking on eviction.
//
// The model follows the Linux page cache (and the page-cache simulation
// literature the ROADMAP cites): a file page's backing location is fixed
// — its offset within the file — so pages that are adjacent in a file
// are adjacent on the device, and the flusher can batch dirty runs into
// contiguous extents the way the kernel clusters writeback. Contrast
// the anonymous path in internal/vmm, where a page's swap slot is
// assigned at first eviction and adjacency is eviction-order luck.
//
// The cache never owns frames or PTEs; internal/vmm remains the only
// writer of both. It owns what the kernel's address_space owns: the
// file-offset mapping, the dirty set, the writeback schedule, and the
// shadow entries left behind by evicted file pages.
package pagecache

import (
	"fmt"
	"math/bits"
	"sort"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
	"mglrusim/internal/telemetry"
)

// Config tunes the page-cache model. It contains only plain values so it
// can sit inside core.SystemConfig and enter checkpoint fingerprints.
type Config struct {
	// Enabled turns the page-cache mode on: core constructs a backing
	// device and a Cache, and the vmm routes file-backed faults and
	// evictions through it. Off (the zero value), file-backed pages fall
	// back to the historical behaviour of swapping like anonymous ones,
	// and no flusher daemon is spawned — existing figures are
	// byte-identical.
	Enabled bool
	// Backing parameterizes the file backing store (an SSD model; reads
	// block, writes are asynchronous with writeback backpressure).
	Backing swap.SSDConfig
	// DirtyRatio is the fraction of physical memory that may be dirty
	// file pages before the flusher starts a writeback pass ahead of its
	// periodic schedule — the analogue of vm.dirty_background_ratio.
	DirtyRatio float64
	// FlushInterval is the periodic writeback cadence: dirty pages older
	// than roughly one interval are written back even below the ratio
	// threshold (vm.dirty_writeback_centisecs).
	FlushInterval sim.Duration
	// MaxExtent caps how many pages one clustered write extent may span.
	MaxExtent int
	// DirtyHardRatio is the fraction of physical memory at which writers
	// dirtying new file pages are throttled until the flusher catches up
	// — the analogue of vm.dirty_ratio. Zero (the default) disables hard
	// throttling entirely, keeping historical behaviour byte-identical;
	// when set it is clamped above DirtyRatio so the background flusher
	// always engages first.
	DirtyHardRatio float64
}

// DefaultConfig returns the enabled page-cache profile with calibrated
// defaults. Hard dirty throttling stays off so existing figures are
// unchanged; DegradedConfig turns it on.
func DefaultConfig() Config {
	return Config{
		Enabled:       true,
		Backing:       swap.DefaultSSDConfig(),
		DirtyRatio:    0.10,
		FlushInterval: 100 * sim.Millisecond,
		MaxExtent:     16,
	}
}

// DegradedConfig is DefaultConfig plus the hard dirty throttle — the
// profile for running against a faulted file backing device, where a
// stalled or erroring device lets dirty pages pile up unboundedly
// without vm.dirty_ratio-style backpressure.
func DegradedConfig() Config {
	cfg := DefaultConfig()
	cfg.DirtyHardRatio = 0.20
	return cfg
}

func (c Config) withDefaults() Config {
	if c.DirtyRatio <= 0 {
		c.DirtyRatio = 0.10
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * sim.Millisecond
	}
	if c.MaxExtent <= 0 {
		c.MaxExtent = 16
	}
	return c
}

// FileSpan names one file's mapping in the virtual address space.
type FileSpan struct {
	Name  string
	Base  pagetable.VPN
	Pages int
}

// Stats aggregates cache activity for a trial. Plain counters, so the
// struct can ride inside core.Metrics.
type Stats struct {
	// Reads counts demand reads from the backing file (file major
	// faults); ReadaheadReads counts speculative cluster reads.
	Reads, ReadaheadReads uint64
	// Dirtied counts clean→dirty transitions of cached pages.
	Dirtied uint64
	// FlushPasses, Extents, WritebackPages describe flusher activity:
	// passes run, contiguous extents issued, pages written back.
	FlushPasses, Extents, WritebackPages uint64
	// PageOuts counts dirty pages written back synchronously at
	// eviction (reclaim beat the flusher to them).
	PageOuts uint64
	// Evictions and Refaults are the shadow-entry ledger: file pages
	// evicted, and faults that found a shadow entry (the page came back
	// after eviction — the signal the pidctl balancer feeds on).
	Evictions, Refaults uint64
	// FileIOErrors counts demand reads that exhausted the device's retry
	// budget: the page is poisoned in the mapping and the fault fails
	// SIGBUS-style instead of aborting the trial.
	FileIOErrors uint64
	// PoisonedFaults counts later faults on already-poisoned pages — fast
	// SIGBUS deliveries that touch no I/O.
	PoisonedFaults uint64
	// ReadaheadAborts counts speculative reads abandoned on injected
	// error (the installed-but-unread page is torn back out; nothing
	// fails).
	ReadaheadAborts uint64
	// WriteErrors counts writeback writes that exhausted their retry
	// budget; each bumps the owning file's errseq-style ledger.
	WriteErrors uint64
	// DataAtRisk counts pages whose latest dirty data never reached the
	// backing device (the kernel's "lost writeback" — what fsync would
	// report via errseq_t).
	DataAtRisk uint64
	// ThrottleStalls and ThrottleStallTime account the hard dirty
	// throttle: writers stalled at the vm.dirty_ratio analogue, and the
	// total virtual time they lost.
	ThrottleStalls    uint64
	ThrottleStallTime sim.Duration
}

// WrittenBack is the total writeback volume in pages, however the write
// was scheduled.
func (s Stats) WrittenBack() uint64 { return s.WritebackPages + s.PageOuts }

// Add accumulates other into s (series-level aggregation). Every field of
// Stats must appear here; a reflection test enforces completeness.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.ReadaheadReads += other.ReadaheadReads
	s.Dirtied += other.Dirtied
	s.FlushPasses += other.FlushPasses
	s.Extents += other.Extents
	s.WritebackPages += other.WritebackPages
	s.PageOuts += other.PageOuts
	s.Evictions += other.Evictions
	s.Refaults += other.Refaults
	s.FileIOErrors += other.FileIOErrors
	s.PoisonedFaults += other.PoisonedFaults
	s.ReadaheadAborts += other.ReadaheadAborts
	s.WriteErrors += other.WriteErrors
	s.DataAtRisk += other.DataAtRisk
	s.ThrottleStalls += other.ThrottleStalls
	s.ThrottleStallTime += other.ThrottleStallTime
}

// FallibleDevice is a backing device whose I/O can fail recoverably —
// the fault plane's *fault.Device implements it (asserted in
// internal/core, which owns the wiring; this package stays free of a
// fault dependency). When New receives a device that satisfies it, the
// cache routes I/O through the Err variants and degrades the way the
// kernel does instead of letting a *HardError panic kill the trial.
type FallibleDevice interface {
	swap.Device
	ReadPageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error
	WritePageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error
	PrefetchPageErr(v *sim.Env, slot swap.Slot, vpn int64, version uint32) error
}

// FlusherError classifies a panic that unwound the flusher daemon: the
// trial fails with writeback context (how much was dirty) instead of a
// bare panic string, and the experiment harness can unwrap the cause for
// retry classification.
type FlusherError struct {
	Cause      error
	DirtyPages int
}

// Error implements error.
func (e *FlusherError) Error() string {
	return fmt.Sprintf("pagecache: flusher failed with %d pages dirty: %v", e.DirtyPages, e.Cause)
}

// Unwrap exposes the cause to errors.As/Is.
func (e *FlusherError) Unwrap() error { return e.Cause }

// FileErrors is one file's errseq_t-style writeback-error ledger: how
// many writeback failures the file has seen (what fsync would observe as
// an errseq advance) and how many pages' latest data never persisted.
type FileErrors struct {
	Name       string
	ErrSeq     uint64
	DataAtRisk uint64
}

type shadowEntry struct {
	sh    policy.Shadow
	valid bool
}

type mapping struct {
	FileSpan
	slotBase swap.Slot
}

// Cache is the page cache over one trial's file mappings.
type Cache struct {
	cfg   Config
	eng   *sim.Engine
	table *pagetable.Table
	memry *mem.Memory
	dev   swap.Device
	// fdev is dev when it supports recoverable I/O errors (a fault-plane
	// wrapper); nil otherwise. All degradation paths are gated on it.
	fdev FallibleDevice

	// files is sorted by Base; backing slots are assigned in the same
	// order, so slot order equals VPN order and both directions of the
	// translation binary-search the same slice.
	files      []mapping
	totalPages int

	// dirty is a bitmap over dense backing slots; dirtyCount mirrors the
	// set-bit population for the ratio trigger.
	dirty      []uint64
	dirtyCount int
	threshold  int
	// hardThreshold is the writer-throttle point (vm.dirty_ratio); zero
	// means throttling is off.
	hardThreshold int

	// poisoned marks slots whose demand read exhausted its retry budget:
	// hwpoison-style, later faults fail fast without touching the device.
	poisoned      []uint64
	poisonedCount int

	// fileErrs parallels files: the per-file errseq ledgers.
	fileErrs []FileErrors

	// shadows is indexed by backing slot (dense over file pages, unlike
	// the vmm's per-VPN arena over the whole VA span).
	shadows    *mem.Arena[shadowEntry]
	shadowLive int

	resident int

	stats Stats

	tr      *telemetry.Tracer
	trTrack telemetry.TrackID // the cache's own degradation-event lane
}

// New builds a Cache over the given file spans and spawns its flusher
// daemon on eng when the config enables it. The spans must not overlap;
// their backing slots are assigned in VPN order.
func New(cfg Config, eng *sim.Engine, table *pagetable.Table, memry *mem.Memory,
	dev swap.Device, files []FileSpan) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, eng: eng, table: table, memry: memry, dev: dev}
	spans := append([]FileSpan(nil), files...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Base < spans[j].Base })
	for i, s := range spans {
		if s.Pages <= 0 {
			panic(fmt.Sprintf("pagecache: file %q has non-positive span %d", s.Name, s.Pages))
		}
		if i > 0 {
			prev := spans[i-1]
			if s.Base < prev.Base+pagetable.VPN(prev.Pages) {
				panic(fmt.Sprintf("pagecache: file %q overlaps %q", s.Name, prev.Name))
			}
		}
		c.files = append(c.files, mapping{FileSpan: s, slotBase: swap.Slot(c.totalPages)})
		c.totalPages += s.Pages
	}
	c.dirty = make([]uint64, (c.totalPages+63)/64)
	c.shadows = mem.NewArena[shadowEntry](c.totalPages, 1024)
	c.threshold = int(cfg.DirtyRatio * float64(memry.Size()))
	if c.threshold < 1 {
		c.threshold = 1
	}
	if cfg.DirtyHardRatio > 0 {
		c.hardThreshold = int(cfg.DirtyHardRatio * float64(memry.Size()))
		// The hard wall must sit above the background trigger or writers
		// would throttle before the flusher even wakes.
		if c.hardThreshold <= c.threshold {
			c.hardThreshold = c.threshold + 1
		}
	}
	if fd, ok := dev.(FallibleDevice); ok {
		c.fdev = fd
		c.poisoned = make([]uint64, (c.totalPages+63)/64)
	}
	c.fileErrs = make([]FileErrors, len(c.files))
	for i, f := range c.files {
		c.fileErrs[i].Name = f.Name
	}
	if cfg.Enabled {
		eng.Spawn("flusher", true, c.flusher)
	}
	return c
}

// FilePages reports the total file-backed pages under management.
func (c *Cache) FilePages() int { return c.totalPages }

// SlotOf translates a VPN to its fixed backing slot. The second return
// is false for VPNs outside every registered file span.
func (c *Cache) SlotOf(vpn pagetable.VPN) (swap.Slot, bool) {
	i := sort.Search(len(c.files), func(i int) bool {
		f := c.files[i]
		return vpn < f.Base+pagetable.VPN(f.Pages)
	})
	if i == len(c.files) || vpn < c.files[i].Base {
		return swap.NilSlot, false
	}
	return c.files[i].slotBase + swap.Slot(vpn-c.files[i].Base), true
}

// vpnOf is the inverse translation; slot must be in range.
func (c *Cache) vpnOf(slot swap.Slot) pagetable.VPN {
	f := c.files[c.fileIndexOf(slot)]
	return f.Base + pagetable.VPN(slot-f.slotBase)
}

// fileIndexOf locates the file owning slot; slot must be in range.
func (c *Cache) fileIndexOf(slot swap.Slot) int {
	return sort.Search(len(c.files), func(i int) bool {
		f := c.files[i]
		return slot < f.slotBase+swap.Slot(f.Pages)
	})
}

// --- fault-path service ---

// ReadPage blocks the calling proc for the backing read of vpn — the
// file major-fault service. It reports whether the read succeeded: on a
// fallible device whose retry budget is exhausted the page is poisoned
// in the mapping (hwpoison-style) and the caller must fail the fault
// SIGBUS-fashion — skip the install, free the frame, keep running. On a
// plain device it always succeeds (a hard error panics, historical
// behaviour).
func (c *Cache) ReadPage(v *sim.Env, vpn pagetable.VPN) bool {
	slot := c.mustSlot(vpn)
	c.stats.Reads++
	if c.fdev == nil {
		c.dev.ReadPage(v, slot, int64(vpn), 0)
		return true
	}
	if err := c.fdev.ReadPageErr(v, slot, int64(vpn), 0); err != nil {
		c.poison(slot)
		c.stats.FileIOErrors++
		if c.tr != nil {
			c.tr.Instant(c.trTrack, "file-io-error", int64(vpn))
		}
		return false
	}
	return true
}

// PrefetchPage reads vpn as part of a readahead cluster anchored at a
// blocking demand read. It reports whether the speculative read
// succeeded; on failure the caller abandons the prefetch — speculative
// I/O never fails anything, matching the kernel, which silently drops
// failed readahead pages.
func (c *Cache) PrefetchPage(v *sim.Env, vpn pagetable.VPN) bool {
	slot := c.mustSlot(vpn)
	c.stats.ReadaheadReads++
	if c.fdev == nil {
		c.dev.PrefetchPage(v, slot, int64(vpn), 0)
		return true
	}
	return c.fdev.PrefetchPageErr(v, slot, int64(vpn), 0) == nil
}

func (c *Cache) poison(slot swap.Slot) {
	w, b := int(slot)/64, uint(slot)%64
	if c.poisoned[w]&(1<<b) == 0 {
		c.poisoned[w] |= 1 << b
		c.poisonedCount++
	}
}

// Poisoned reports whether vpn's backing read previously exhausted its
// retry budget. Faults on poisoned pages must fail fast without I/O.
func (c *Cache) Poisoned(vpn pagetable.VPN) bool {
	if c.poisonedCount == 0 {
		return false
	}
	slot, ok := c.SlotOf(vpn)
	if !ok {
		return false
	}
	return c.poisoned[int(slot)/64]&(1<<(uint(slot)%64)) != 0
}

// NotePoisonedFault accounts one fast SIGBUS delivery on an
// already-poisoned page.
func (c *Cache) NotePoisonedFault() { c.stats.PoisonedFaults++ }

// PoisonedPages reports how many distinct pages are poisoned.
func (c *Cache) PoisonedPages() int { return c.poisonedCount }

// NoteResident records that a file page was installed (demand fault or
// readahead).
func (c *Cache) NoteResident(vpn pagetable.VPN) { c.resident++ }

// AbandonResident undoes a NoteResident for a readahead page torn back
// out after its speculative read failed, and accounts the abort.
func (c *Cache) AbandonResident(vpn pagetable.VPN) {
	c.resident--
	c.stats.ReadaheadAborts++
}

// ResidentFilePages reports installed file pages — the auditor's
// conservation cross-check against a full PTE scan.
func (c *Cache) ResidentFilePages() int { return c.resident }

// --- dirty tracking ---

// MarkDirty records a write to a cached page. Idempotent; returns true
// on the clean→dirty transition.
func (c *Cache) MarkDirty(vpn pagetable.VPN) bool {
	slot := c.mustSlot(vpn)
	w, b := int(slot)/64, uint(slot)%64
	if c.dirty[w]&(1<<b) != 0 {
		return false
	}
	c.dirty[w] |= 1 << b
	c.dirtyCount++
	c.stats.Dirtied++
	return true
}

// ClearDirty removes vpn from the dirty set, reporting whether it was
// dirty.
func (c *Cache) ClearDirty(vpn pagetable.VPN) bool {
	slot, ok := c.SlotOf(vpn)
	if !ok {
		return false
	}
	w, b := int(slot)/64, uint(slot)%64
	if c.dirty[w]&(1<<b) == 0 {
		return false
	}
	c.dirty[w] &^= 1 << b
	c.dirtyCount--
	return true
}

// DirtyPages reports the current dirty-set size.
func (c *Cache) DirtyPages() int { return c.dirtyCount }

// DirtyThreshold reports the page count at which the ratio trigger
// starts a flush pass.
func (c *Cache) DirtyThreshold() int { return c.threshold }

// --- hard dirty throttle (vm.dirty_ratio analogue) ---

// HardDirtyThreshold reports the writer-throttle point; zero means hard
// throttling is off.
func (c *Cache) HardDirtyThreshold() int { return c.hardThreshold }

// OverHardLimit reports whether the dirty set has reached the hard
// throttle point.
func (c *Cache) OverHardLimit() bool {
	return c.hardThreshold > 0 && c.dirtyCount >= c.hardThreshold
}

// NeedsWriteThrottle reports whether a write to vpn must stall before it
// may dirty the page. Kernel-faithfully this is page_mkwrite-time
// backpressure: only the clean→dirty transition throttles — repeated
// writes to an already-dirty page add nothing to the dirty set and pass
// freely. With the hard ratio unset this is always false and the fast
// path is untouched.
func (c *Cache) NeedsWriteThrottle(vpn pagetable.VPN) bool {
	if !c.OverHardLimit() {
		return false
	}
	slot, ok := c.SlotOf(vpn)
	if !ok {
		return false
	}
	return c.dirty[int(slot)/64]&(1<<(uint(slot)%64)) == 0
}

// throttleQuantum is the balance_dirty_pages-style pause unit: writers
// sleep in small slices, rechecking the dirty set after each, so they
// resume promptly once a flush pass collects (and thereby cleans) pages.
const throttleQuantum = 500 * sim.Microsecond

// ThrottleWriter stalls the calling proc until the dirty set drops back
// under the hard threshold, accounting the stall. The flusher clears
// dirty bits at collection time (before the device I/O completes), so
// the loop terminates even while the device itself is storm-stalled.
func (c *Cache) ThrottleWriter(v *sim.Env) {
	if !c.OverHardLimit() {
		return
	}
	c.stats.ThrottleStalls++
	start := v.Now()
	for c.OverHardLimit() {
		v.Sleep(throttleQuantum)
	}
	stalled := sim.Duration(v.Now() - start)
	c.stats.ThrottleStallTime += stalled
	if c.tr != nil {
		c.tr.Emit(c.trTrack, "dirty-throttle", start, stalled, int64(c.dirtyCount))
	}
}

// --- eviction and refault ---

// RecordEviction stores the policy shadow for an evicted file page. The
// entry is consumed by the next TakeShadow on the same page; its
// presence there is what classifies that fault as a refault.
func (c *Cache) RecordEviction(vpn pagetable.VPN, sh policy.Shadow) {
	slot := c.mustSlot(vpn)
	e := c.shadows.At(int(slot))
	if !e.valid {
		c.shadowLive++
	}
	*e = shadowEntry{sh: sh, valid: true}
	c.stats.Evictions++
	c.resident--
}

// PageOut writes a dirty page back at eviction time (reclaim reached it
// before the flusher). The write is scheduled on the backing device with
// its usual asynchronous semantics; the calling proc may block on
// writeback backpressure. On a fallible device a write past its retry
// budget lands in the file's error ledger instead of failing reclaim.
func (c *Cache) PageOut(v *sim.Env, vpn pagetable.VPN) {
	slot := c.mustSlot(vpn)
	c.stats.PageOuts++
	c.writePage(v, slot, int64(vpn))
}

// writePage issues one writeback write, absorbing a hard injected write
// error into the owning file's errseq_t-style ledger: the error sequence
// advances and the page counts as data-at-risk — its latest bytes never
// reached the device, which is exactly what a later fsync on the file
// would report. The page stays logically clean (its dirty bit was
// already cleared by the caller), matching the kernel, which does not
// re-dirty pages after failed writeback — so the dirty set, and with it
// the hard throttle, still drains on an erroring device.
func (c *Cache) writePage(v *sim.Env, slot swap.Slot, vpn int64) {
	if c.fdev == nil {
		c.dev.WritePage(v, slot, vpn, 0)
		return
	}
	if err := c.fdev.WritePageErr(v, slot, vpn, 0); err != nil {
		c.stats.WriteErrors++
		c.stats.DataAtRisk++
		fe := &c.fileErrs[c.fileIndexOf(slot)]
		fe.ErrSeq++
		fe.DataAtRisk++
		if c.tr != nil {
			c.tr.Instant(c.trTrack, "writeback-error", vpn)
		}
	}
}

// TakeShadow consumes and returns vpn's shadow entry, or nil if the page
// has never been evicted (or its shadow was already consumed). A hit
// counts as a refault.
func (c *Cache) TakeShadow(vpn pagetable.VPN) *policy.Shadow {
	slot := c.mustSlot(vpn)
	if !c.shadows.Peek(int(slot)).valid {
		return nil
	}
	e := c.shadows.At(int(slot))
	e.valid = false
	c.shadowLive--
	c.stats.Refaults++
	sh := e.sh
	return &sh
}

// DropShadow discards vpn's shadow entry without counting a refault —
// the readahead path: a speculative read-in is not evidence the
// eviction was premature. Reports whether an entry was dropped.
func (c *Cache) DropShadow(vpn pagetable.VPN) bool {
	slot := c.mustSlot(vpn)
	if !c.shadows.Peek(int(slot)).valid {
		return false
	}
	e := c.shadows.At(int(slot))
	e.valid = false
	c.shadowLive--
	return true
}

// HasShadow reports whether vpn currently holds a shadow entry, without
// consuming it (auditor use).
func (c *Cache) HasShadow(vpn pagetable.VPN) bool {
	slot, ok := c.SlotOf(vpn)
	if !ok {
		return false
	}
	return c.shadows.Peek(int(slot)).valid
}

// ShadowCount reports live shadow entries (auditor use).
func (c *Cache) ShadowCount() int { return c.shadowLive }

func (c *Cache) mustSlot(vpn pagetable.VPN) swap.Slot {
	slot, ok := c.SlotOf(vpn)
	if !ok {
		panic(fmt.Sprintf("pagecache: vpn %d is not file-backed under any registered span", vpn))
	}
	return slot
}

// --- writeback ---

// flusher is the daemon entry point: the writeback loop wrapped in the
// same panic→classified-trial-error recovery the other daemons get. A
// bug (or an unabsorbed injected fault) in writeback surfaces as a
// *FlusherError carrying dirty-set context — recorded in the flight
// recorder, classified by the experiment harness — instead of an
// anonymous panic. Engine shutdown signals pass through untouched.
func (c *Cache) flusher(v *sim.Env) {
	defer func() {
		r := recover()
		if r == nil || sim.IsKillSignal(r) {
			if r != nil {
				panic(r)
			}
			return
		}
		cause, ok := r.(error)
		if !ok {
			cause = fmt.Errorf("pagecache: flusher panic: %v", r)
		}
		fe := &FlusherError{Cause: cause, DirtyPages: c.dirtyCount}
		if c.tr != nil {
			c.tr.Note(fe.Error())
		}
		// Re-panic the classified error; sim.Proc's own recovery turns it
		// into the trial error with %w wrapping, so errors.As still sees
		// both *FlusherError and the underlying cause.
		panic(fe)
	}()
	c.flushLoop(v)
}

// flushLoop is the background writeback daemon body: it polls at a
// fraction of the flush interval and starts a pass when the dirty set
// crosses the ratio threshold, or when a full interval has elapsed with
// anything dirty at all (age-based writeback).
func (c *Cache) flushLoop(v *sim.Env) {
	poll := c.cfg.FlushInterval / 4
	if poll < sim.Millisecond {
		poll = sim.Millisecond
	}
	last := v.Now()
	for {
		v.Sleep(poll)
		due := v.Now()-last >= sim.Time(c.cfg.FlushInterval)
		if c.dirtyCount >= c.threshold || (due && c.dirtyCount > 0) {
			c.flushPass(v)
			last = v.Now()
		} else if due {
			last = v.Now()
		}
	}
}

// flushPass writes the current dirty set back in contiguous extents. The
// extent list is collected host-side first — clearing both the cache
// dirty bit and the PTE dirty bit per page — and only then issued to the
// device, where each write may block on writeback backpressure. A page
// re-dirtied after collection is simply caught by a later pass; a page
// evicted after collection was already persisted by the write this pass
// issues (reclaim sees it clean and skips its own pageout).
func (c *Cache) flushPass(v *sim.Env) {
	c.stats.FlushPasses++
	type extent struct {
		start swap.Slot
		n     int
	}
	var extents []extent
	for s := 0; s < c.totalPages; {
		word := c.dirty[s/64] >> (uint(s) % 64)
		if word == 0 {
			s = (s/64 + 1) * 64
			continue
		}
		s += bits.TrailingZeros64(word)
		if s >= c.totalPages {
			break
		}
		// Grow the dirty run bit by bit (runs cross word boundaries); a
		// run longer than MaxExtent splits into back-to-back extents.
		start := s
		n := 0
		for s < c.totalPages && n < c.cfg.MaxExtent &&
			c.dirty[s/64]&(1<<(uint(s)%64)) != 0 {
			c.dirty[s/64] &^= 1 << (uint(s) % 64)
			c.dirtyCount--
			vpn := c.vpnOf(swap.Slot(s))
			if c.table.IsPresent(vpn) {
				c.table.TestAndClearDirty(vpn)
			}
			n++
			s++
		}
		extents = append(extents, extent{start: swap.Slot(start), n: n})
	}
	for _, e := range extents {
		c.stats.Extents++
		for i := 0; i < e.n; i++ {
			slot := e.start + swap.Slot(i)
			c.stats.WritebackPages++
			c.writePage(v, slot, int64(c.vpnOf(slot)))
		}
	}
}

// FlushAll synchronously runs flush passes until the dirty set is empty,
// then drains the backing device — the explicit fsync/unmount path, and
// what tests call to assert flush-on-drain.
func (c *Cache) FlushAll(v *sim.Env) {
	for c.dirtyCount > 0 {
		c.flushPass(v)
	}
	c.dev.Drain(v)
}

// --- accessors ---

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats { return c.stats }

// DeviceStats returns the backing device's counters.
func (c *Cache) DeviceStats() swap.Stats { return c.dev.Stats() }

// ErrorLedger returns a copy of the per-file errseq ledgers, in file
// Base order. All-zero entries mean the file never saw a writeback
// error.
func (c *Cache) ErrorLedger() []FileErrors {
	return append([]FileErrors(nil), c.fileErrs...)
}

// RegisterTelemetry implements telemetry.Registrant: the cache's state
// becomes named gauges in counters.csv and policyviz. Degradation events
// (poisonings, writeback errors, throttle spans) additionally land on a
// dedicated "pagecache" track.
func (c *Cache) RegisterTelemetry(tr *telemetry.Tracer) {
	c.tr = tr
	c.trTrack = tr.Track("pagecache")
	tr.Gauge("pagecache.resident", func() int64 { return int64(c.resident) })
	tr.Gauge("pagecache.dirty", func() int64 { return int64(c.dirtyCount) })
	tr.Gauge("pagecache.shadows", func() int64 { return int64(c.shadowLive) })
	tr.Gauge("pagecache.reads", func() int64 { return int64(c.stats.Reads) })
	tr.Gauge("pagecache.writeback_pages", func() int64 { return int64(c.stats.WritebackPages) })
	tr.Gauge("pagecache.extents", func() int64 { return int64(c.stats.Extents) })
	tr.Gauge("pagecache.pageouts", func() int64 { return int64(c.stats.PageOuts) })
	tr.Gauge("pagecache.evictions", func() int64 { return int64(c.stats.Evictions) })
	tr.Gauge("pagecache.refaults", func() int64 { return int64(c.stats.Refaults) })
	tr.Gauge("pagecache.io_errors", func() int64 { return int64(c.stats.FileIOErrors) })
	tr.Gauge("pagecache.poisoned", func() int64 { return int64(c.poisonedCount) })
	tr.Gauge("pagecache.write_errors", func() int64 { return int64(c.stats.WriteErrors) })
	tr.Gauge("pagecache.data_at_risk", func() int64 { return int64(c.stats.DataAtRisk) })
	tr.Gauge("pagecache.throttle_stalls", func() int64 { return int64(c.stats.ThrottleStalls) })
}

var _ telemetry.Registrant = (*Cache)(nil)
