package pagecache_test

import (
	"testing"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
)

// harness bundles one cache over a 256-page file mapping backed by a
// 100-frame memory (dirty threshold 10 at the default 10% ratio).
type harness struct {
	eng   *sim.Engine
	table *pagetable.Table
	memry *mem.Memory
	cache *pagecache.Cache
}

func newHarness(t *testing.T, cfg pagecache.Config) *harness {
	t.Helper()
	eng := sim.NewEngine(4)
	table := pagetable.New(4) // 4 regions × 64 PTEs = 256 pages
	table.MapRange(0, 256, true)
	memry := mem.New(100)
	dev := swap.NewSSD(swap.DefaultSSDConfig(), eng, sim.NewRNG(7))
	c := pagecache.New(cfg, eng, table, memry, dev,
		[]pagecache.FileSpan{{Name: "objects", Base: 0, Pages: 256}})
	return &harness{eng: eng, table: table, memry: memry, cache: c}
}

// run drives fn as the only non-daemon proc and runs the engine to
// completion.
func (h *harness) run(t *testing.T, fn func(v *sim.Env)) {
	t.Helper()
	h.eng.Spawn("driver", false, fn)
	if err := h.eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

func TestSlotTranslationAcrossSpans(t *testing.T) {
	eng := sim.NewEngine(1)
	table := pagetable.New(8)
	table.MapRange(0, 100, true)
	table.MapRange(300, 50, true)
	memry := mem.New(64)
	dev := swap.NewSSD(swap.DefaultSSDConfig(), eng, sim.NewRNG(1))
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	c := pagecache.New(cfg, eng, table, memry, dev, []pagecache.FileSpan{
		{Name: "b", Base: 300, Pages: 50},
		{Name: "a", Base: 0, Pages: 100},
	})
	if c.FilePages() != 150 {
		t.Fatalf("FilePages = %d, want 150", c.FilePages())
	}
	// Slots are dense and VPN-ordered: file offsets adjacent in a file
	// stay adjacent on the device even across the VA hole.
	if s, ok := c.SlotOf(0); !ok || s != 0 {
		t.Fatalf("SlotOf(0) = %d,%v", s, ok)
	}
	if s, ok := c.SlotOf(99); !ok || s != 99 {
		t.Fatalf("SlotOf(99) = %d,%v", s, ok)
	}
	if s, ok := c.SlotOf(300); !ok || s != 100 {
		t.Fatalf("SlotOf(300) = %d,%v", s, ok)
	}
	if s, ok := c.SlotOf(349); !ok || s != 149 {
		t.Fatalf("SlotOf(349) = %d,%v", s, ok)
	}
	// VPNs in the hole or past the end are not file pages.
	if _, ok := c.SlotOf(150); ok {
		t.Fatal("SlotOf(150) should miss: hole between spans")
	}
	if _, ok := c.SlotOf(350); ok {
		t.Fatal("SlotOf(350) should miss: past the last span")
	}
}

func TestOverlappingSpansPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on overlapping file spans")
		}
	}()
	eng := sim.NewEngine(1)
	table := pagetable.New(4)
	memry := mem.New(16)
	dev := swap.NewSSD(swap.DefaultSSDConfig(), eng, sim.NewRNG(1))
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	pagecache.New(cfg, eng, table, memry, dev, []pagecache.FileSpan{
		{Name: "a", Base: 0, Pages: 10},
		{Name: "b", Base: 5, Pages: 10},
	})
}

func TestMarkDirtyIdempotent(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h := newHarness(t, cfg)
	if !h.cache.MarkDirty(3) {
		t.Fatal("first MarkDirty should transition clean→dirty")
	}
	if h.cache.MarkDirty(3) {
		t.Fatal("second MarkDirty should be a no-op")
	}
	if got := h.cache.DirtyPages(); got != 1 {
		t.Fatalf("DirtyPages = %d, want 1", got)
	}
	if got := h.cache.Stats().Dirtied; got != 1 {
		t.Fatalf("Stats.Dirtied = %d, want 1", got)
	}
}

// The ratio trigger: below threshold and before the interval, nothing is
// written; crossing the threshold starts a pass at the next poll tick.
func TestDirtyRatioTriggersFlush(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.FlushInterval = 100 * sim.Millisecond // poll tick = 25 ms
	h := newHarness(t, cfg)
	if got := h.cache.DirtyThreshold(); got != 10 {
		t.Fatalf("DirtyThreshold = %d, want 10 (10%% of 100 frames)", got)
	}
	h.run(t, func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 9; vpn++ {
			h.cache.MarkDirty(vpn)
		}
		v.Sleep(30 * sim.Millisecond) // one poll tick passes
		if wb := h.cache.Stats().WritebackPages; wb != 0 {
			t.Errorf("below threshold before the interval: %d pages written, want 0", wb)
		}
		h.cache.MarkDirty(9) // crosses the threshold
		v.Sleep(30 * sim.Millisecond)
		if wb := h.cache.Stats().WritebackPages; wb != 10 {
			t.Errorf("after crossing threshold: %d pages written, want 10", wb)
		}
		if d := h.cache.DirtyPages(); d != 0 {
			t.Errorf("dirty set after flush = %d, want 0", d)
		}
	})
}

// Age-based writeback: a single dirty page far below the ratio threshold
// is still written once a full interval elapses.
func TestPeriodicFlushBelowThreshold(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.FlushInterval = 100 * sim.Millisecond
	h := newHarness(t, cfg)
	h.run(t, func(v *sim.Env) {
		h.cache.MarkDirty(42)
		v.Sleep(130 * sim.Millisecond)
		if wb := h.cache.Stats().WritebackPages; wb != 1 {
			t.Errorf("periodic flush wrote %d pages, want 1", wb)
		}
	})
}

// Contiguous dirty runs batch into extents capped at MaxExtent; disjoint
// runs become separate extents.
func TestExtentBatching(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false // drive flushing explicitly
	cfg.MaxExtent = 16
	h := newHarness(t, cfg)
	h.run(t, func(v *sim.Env) {
		// One 40-page run (splits 16+16+8) and one isolated page.
		for vpn := pagetable.VPN(0); vpn < 40; vpn++ {
			h.cache.MarkDirty(vpn)
		}
		h.cache.MarkDirty(200)
		h.cache.FlushAll(v)
		st := h.cache.Stats()
		if st.Extents != 4 {
			t.Errorf("Extents = %d, want 4 (16+16+8 + isolated)", st.Extents)
		}
		if st.WritebackPages != 41 {
			t.Errorf("WritebackPages = %d, want 41", st.WritebackPages)
		}
		if st.FlushPasses != 1 {
			t.Errorf("FlushPasses = %d, want 1", st.FlushPasses)
		}
	})
}

// FlushAll leaves no dirty page behind and drains the device: the
// flush-on-drain contract.
func TestFlushOnDrain(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h := newHarness(t, cfg)
	h.run(t, func(v *sim.Env) {
		for vpn := pagetable.VPN(10); vpn < 30; vpn++ {
			h.cache.MarkDirty(vpn)
		}
		h.cache.FlushAll(v)
		if d := h.cache.DirtyPages(); d != 0 {
			t.Errorf("DirtyPages after FlushAll = %d, want 0", d)
		}
		if w := h.cache.DeviceStats().Writes; w != 20 {
			t.Errorf("device writes = %d, want 20", w)
		}
	})
}

// Writeback marks the PTE clean (page_mkclean): a later eviction of a
// flushed page must not see it dirty again.
func TestFlushClearsPTEDirty(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h := newHarness(t, cfg)
	h.run(t, func(v *sim.Env) {
		f := h.memry.Alloc()
		h.table.Insert(7, f, true) // write fault: PTE dirty
		h.cache.MarkDirty(7)
		h.cache.FlushAll(v)
		if dirty := h.table.Evict(7, pagetable.NilSwap); dirty {
			t.Error("evict after flush reports dirty; writeback should have cleaned the PTE")
		}
	})
}

func TestShadowLifecycle(t *testing.T) {
	cfg := pagecache.DefaultConfig()
	cfg.Enabled = false
	h := newHarness(t, cfg)
	if sh := h.cache.TakeShadow(5); sh != nil {
		t.Fatal("TakeShadow on a never-evicted page should be nil")
	}
	h.cache.NoteResident(5)
	h.cache.RecordEviction(5, policy.Shadow{Gen: 3, Tier: 2})
	if !h.cache.HasShadow(5) || h.cache.ShadowCount() != 1 {
		t.Fatalf("shadow not recorded: has=%v count=%d", h.cache.HasShadow(5), h.cache.ShadowCount())
	}
	sh := h.cache.TakeShadow(5)
	if sh == nil || sh.Gen != 3 || sh.Tier != 2 {
		t.Fatalf("TakeShadow = %+v, want Gen 3 Tier 2", sh)
	}
	if h.cache.HasShadow(5) || h.cache.ShadowCount() != 0 {
		t.Fatal("shadow should be consumed")
	}
	if h.cache.TakeShadow(5) != nil {
		t.Fatal("second TakeShadow should be nil")
	}
	st := h.cache.Stats()
	if st.Evictions != 1 || st.Refaults != 1 {
		t.Fatalf("Evictions=%d Refaults=%d, want 1/1", st.Evictions, st.Refaults)
	}
	if got := h.cache.ResidentFilePages(); got != 0 {
		t.Fatalf("ResidentFilePages = %d, want 0", got)
	}
}
