// Package pagetable models a process page table at the granularity the
// replacement policies care about: PTEs carrying Present/Accessed/Dirty
// bits, grouped into PMD-sized regions of 512 entries (2 MB of virtual
// address space with 4 KB pages).
//
// Hardware behaviour is mimicked by Walk, which sets the Accessed (and
// Dirty) bits exactly as a page walk would; policies later harvest and
// clear those bits, either through the reverse map (Clock, MG-LRU
// eviction) or through linear region scans (MG-LRU aging).
//
// The table can contain holes — regions that are mapped into the address
// space layout but never populated. Those are what make naive linear scans
// wasteful and motivate MG-LRU's bloom filter.
//
// Two storage layouts implement the same semantics:
//
//   - LayoutLegacy keeps an array of 16-byte PTE structs, the layout the
//     simulator grew up with. Allocation is O(pages) over the whole VA
//     span, holes included.
//   - LayoutPacked is a struct-of-arrays form: the five PTE flag bits
//     live in per-region uint64 bit planes, and frame/swap words live in
//     per-region chunks materialized only for regions the layout actually
//     maps. Aging-walk harvesting becomes word-masked bit iteration, and a
//     4M-page table allocates O(regions), not O(pages).
//
// Every observable behaviour — scan order, counters, panics — is
// identical between the layouts; the layout-differential suite holds the
// figure pipeline to byte equality over both.
package pagetable

import (
	"math/bits"

	"mglrusim/internal/mem"
)

// VPN is a virtual page number within a process address space.
type VPN int64

// Layout constants (4 KB pages, x86-64-style PMD grouping).
const (
	// PTEsPerRegion is the real PMD fanout (512 PTEs = 2 MB regions) and
	// the default region size. Simulations with scaled-down footprints
	// pass a smaller region size to New so that region counts — and with
	// them the bloom-filter dynamics — stay in proportion.
	PTEsPerRegion = 512
	// PTEsPerCacheLine is how many 8-byte PTEs share a cache line; the
	// bloom-filter density rule is expressed in these units.
	PTEsPerCacheLine = 8
	// PageSize in bytes.
	PageSize = 4096
)

// PTE bit positions.
const (
	BitMapped   uint8 = 1 << iota // VA is valid (backed by the process layout)
	BitPresent                    // page resident in a frame
	BitAccessed                   // set by hardware walk since last clear
	BitDirty                      // written since load
	BitFile                       // backed by a file descriptor
)

// NilSwap marks a PTE with no swap slot assigned.
const NilSwap int32 = -1

// Layout selects the page-table storage representation.
type Layout uint8

const (
	// LayoutAuto picks LayoutPacked when the region fanout is a whole
	// number of 64-bit words (so regions own whole bit-plane words) and
	// LayoutLegacy otherwise.
	LayoutAuto Layout = iota
	// LayoutLegacy is the array-of-structs PTE layout.
	LayoutLegacy
	// LayoutPacked is the struct-of-arrays bitset layout.
	LayoutPacked
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutLegacy:
		return "legacy"
	case LayoutPacked:
		return "packed"
	default:
		return "auto"
	}
}

// ParseLayout maps a flag value to a Layout.
func ParseLayout(s string) (Layout, bool) {
	switch s {
	case "auto", "":
		return LayoutAuto, true
	case "legacy":
		return LayoutLegacy, true
	case "packed":
		return LayoutPacked, true
	}
	return LayoutAuto, false
}

// PTE is one page-table entry. On the legacy layout it is the stored
// representation; on the packed layout it is a snapshot synthesized from
// the bit planes.
type PTE struct {
	Frame mem.FrameID // valid when BitPresent
	Swap  int32       // swap slot when swapped out, else NilSwap
	Bits  uint8
}

// Present reports whether the PTE maps a resident page.
func (p PTE) Present() bool { return p.Bits&BitPresent != 0 }

// Mapped reports whether the VA is valid at all.
func (p PTE) Mapped() bool { return p.Bits&BitMapped != 0 }

// Accessed reports the A bit.
func (p PTE) Accessed() bool { return p.Bits&BitAccessed != 0 }

// Dirty reports the D bit.
func (p PTE) Dirty() bool { return p.Bits&BitDirty != 0 }

// File reports whether the page is file-backed.
func (p PTE) File() bool { return p.Bits&BitFile != 0 }

// Table is a process page table over a contiguous span of regions.
type Table struct {
	layout    Layout
	perRegion int
	regions   int

	// Legacy layout: dense PTE array. nil on the packed layout.
	ptes []PTE

	// Packed layout: one bit plane per PTE flag, region-aligned (wpr
	// whole words per region), plus per-region frame/swap chunks
	// materialized by MapRange only for regions the layout touches.
	wpr      int
	mapped   []uint64
	present  []uint64
	accessed []uint64
	dirty    []uint64
	file     []uint64
	frames   [][]mem.FrameID
	swaps    [][]int32

	regionPresent []int32 // resident pages per region
	regionSwapped []int32 // PTEs holding a swap slot per region
	presentN      int
	mappedN       int
}

// New creates a table spanning regions PMD regions of PTEsPerRegion
// entries each, all holes initially.
func New(regions int) *Table { return NewWithRegionSize(regions, PTEsPerRegion) }

// NewWithRegionSize creates a table with a custom region fanout, used by
// scaled-down simulations to keep region counts proportional.
func NewWithRegionSize(regions, perRegion int) *Table {
	return NewWithLayout(regions, perRegion, LayoutAuto)
}

// NewWithLayout creates a table with an explicit storage layout.
// LayoutPacked requires the region fanout to be a multiple of 64.
func NewWithLayout(regions, perRegion int, layout Layout) *Table {
	if regions <= 0 {
		panic("pagetable: need at least one region")
	}
	if perRegion < PTEsPerCacheLine {
		panic("pagetable: region smaller than a cache line")
	}
	if layout == LayoutAuto {
		if perRegion%64 == 0 {
			layout = LayoutPacked
		} else {
			layout = LayoutLegacy
		}
	}
	t := &Table{
		layout:        layout,
		perRegion:     perRegion,
		regions:       regions,
		regionPresent: make([]int32, regions),
		regionSwapped: make([]int32, regions),
	}
	switch layout {
	case LayoutLegacy:
		t.ptes = make([]PTE, regions*perRegion)
		for i := range t.ptes {
			t.ptes[i].Frame = mem.NilFrame
			t.ptes[i].Swap = NilSwap
		}
	case LayoutPacked:
		if perRegion%64 != 0 {
			panic("pagetable: packed layout needs a region fanout that is a multiple of 64")
		}
		t.wpr = perRegion / 64
		words := regions * t.wpr
		t.mapped = make([]uint64, words)
		t.present = make([]uint64, words)
		t.accessed = make([]uint64, words)
		t.dirty = make([]uint64, words)
		t.file = make([]uint64, words)
		t.frames = make([][]mem.FrameID, regions)
		t.swaps = make([][]int32, regions)
	default:
		panic("pagetable: unknown layout")
	}
	return t
}

// Layout reports the storage layout in use (never LayoutAuto).
func (t *Table) Layout() Layout { return t.layout }

// RegionPTEs reports the region fanout of this table.
func (t *Table) RegionPTEs() int { return t.perRegion }

// Regions reports the number of PMD regions.
func (t *Table) Regions() int { return t.regions }

// Pages reports the total VA span in pages (including holes).
func (t *Table) Pages() int { return t.regions * t.perRegion }

// PresentPages reports resident pages.
func (t *Table) PresentPages() int { return t.presentN }

// MappedPages reports valid (non-hole) pages.
func (t *Table) MappedPages() int { return t.mappedN }

// RegionOf returns the region index containing vpn.
func (t *Table) RegionOf(vpn VPN) int { return int(vpn) / t.perRegion }

// RegionStart returns the first VPN of region r.
func (t *Table) RegionStart(r int) VPN { return VPN(r * t.perRegion) }

// bitpos locates vpn in the bit planes (packed layout).
func bitpos(vpn VPN) (word int, mask uint64) {
	return int(vpn >> 6), 1 << (uint(vpn) & 63)
}

// chunkIdx locates vpn in its region's frame/swap chunk (packed layout).
func (t *Table) chunkIdx(vpn VPN) (region, idx int) {
	region = int(vpn) / t.perRegion
	return region, int(vpn) - region*t.perRegion
}

// ensureChunk materializes region r's frame/swap chunk (packed layout).
func (t *Table) ensureChunk(r int) {
	if t.frames[r] != nil {
		return
	}
	fr := make([]mem.FrameID, t.perRegion)
	sw := make([]int32, t.perRegion)
	for i := range fr {
		fr[i] = mem.NilFrame
		sw[i] = NilSwap
	}
	t.frames[r] = fr
	t.swaps[r] = sw
}

// PTE returns a snapshot of the entry for vpn. On the legacy layout this
// is a copy of the stored struct; on the packed layout it is synthesized
// from the bit planes. Callers must go through Table methods for state
// transitions — the snapshot does not write back.
func (t *Table) PTE(vpn VPN) PTE {
	if t.ptes != nil {
		return t.ptes[vpn]
	}
	w, b := bitpos(vpn)
	var pbits uint8
	if t.mapped[w]&b != 0 {
		pbits |= BitMapped
	}
	if t.present[w]&b != 0 {
		pbits |= BitPresent
	}
	if t.accessed[w]&b != 0 {
		pbits |= BitAccessed
	}
	if t.dirty[w]&b != 0 {
		pbits |= BitDirty
	}
	if t.file[w]&b != 0 {
		pbits |= BitFile
	}
	p := PTE{Frame: mem.NilFrame, Swap: NilSwap, Bits: pbits}
	if r, i := t.chunkIdx(vpn); t.frames[r] != nil {
		p.Frame = t.frames[r][i]
		p.Swap = t.swaps[r][i]
	}
	return p
}

// IsPresent reports residency for vpn without synthesizing a snapshot —
// the fault path's first question.
func (t *Table) IsPresent(vpn VPN) bool {
	if t.ptes != nil {
		return t.ptes[vpn].Bits&BitPresent != 0
	}
	w, b := bitpos(vpn)
	return t.present[w]&b != 0
}

// SwapOf reports the swap slot held by vpn, or NilSwap. Reads are live:
// callers that re-read after blocking observe concurrent reaping, exactly
// as the historical long-lived PTE pointer did.
func (t *Table) SwapOf(vpn VPN) int32 {
	if t.ptes != nil {
		return t.ptes[vpn].Swap
	}
	if r, i := t.chunkIdx(vpn); t.swaps[r] != nil {
		return t.swaps[r][i]
	}
	return NilSwap
}

// FileBacked reports whether vpn is file-backed.
func (t *Table) FileBacked(vpn VPN) bool {
	if t.ptes != nil {
		return t.ptes[vpn].Bits&BitFile != 0
	}
	w, b := bitpos(vpn)
	return t.file[w]&b != 0
}

// FrameOf reports the frame backing vpn, or mem.NilFrame.
func (t *Table) FrameOf(vpn VPN) mem.FrameID {
	if t.ptes != nil {
		return t.ptes[vpn].Frame
	}
	if r, i := t.chunkIdx(vpn); t.frames[r] != nil {
		return t.frames[r][i]
	}
	return mem.NilFrame
}

// MapRange marks n pages starting at start as valid addresses (anonymous
// by default); file marks them file-backed.
func (t *Table) MapRange(start VPN, n int, file bool) {
	if t.ptes != nil {
		for i := 0; i < n; i++ {
			p := &t.ptes[start+VPN(i)]
			if p.Bits&BitMapped == 0 {
				t.mappedN++
			}
			p.Bits |= BitMapped
			if file {
				p.Bits |= BitFile
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		vpn := start + VPN(i)
		w, b := bitpos(vpn)
		if t.mapped[w]&b == 0 {
			t.mappedN++
		}
		t.mapped[w] |= b
		if file {
			t.file[w] |= b
		}
		t.ensureChunk(int(vpn) / t.perRegion)
	}
}

// Walk simulates a hardware page walk for vpn: if the page is present it
// sets the Accessed bit (and Dirty on writes) and returns its frame with
// ok=true; otherwise it returns ok=false (a fault). Walking an unmapped
// address panics — that is a workload bug, not a simulated condition.
func (t *Table) Walk(vpn VPN, write bool) (f mem.FrameID, ok bool) {
	if t.ptes != nil {
		p := &t.ptes[vpn]
		if p.Bits&BitMapped == 0 {
			panic("pagetable: access to unmapped address")
		}
		if p.Bits&BitPresent == 0 {
			return mem.NilFrame, false
		}
		p.Bits |= BitAccessed
		if write {
			p.Bits |= BitDirty
		}
		return p.Frame, true
	}
	w, b := bitpos(vpn)
	if t.mapped[w]&b == 0 {
		panic("pagetable: access to unmapped address")
	}
	if t.present[w]&b == 0 {
		return mem.NilFrame, false
	}
	t.accessed[w] |= b
	if write {
		t.dirty[w] |= b
	}
	r, i := t.chunkIdx(vpn)
	return t.frames[r][i], true
}

// Insert makes vpn resident in frame f. Any swap-slot association is
// preserved (the swap-cache copy stays valid until the page is dirtied),
// so clean re-evictions need no writeback. The new PTE starts with the
// Accessed bit set (the faulting access) and Dirty if write.
func (t *Table) Insert(vpn VPN, f mem.FrameID, write bool) {
	if t.ptes != nil {
		p := &t.ptes[vpn]
		if p.Bits&BitMapped == 0 {
			panic("pagetable: inserting into unmapped address")
		}
		if p.Bits&BitPresent != 0 {
			panic("pagetable: double insert")
		}
		p.Frame = f
		p.Bits |= BitPresent | BitAccessed
		if write {
			p.Bits |= BitDirty
		}
	} else {
		w, b := bitpos(vpn)
		if t.mapped[w]&b == 0 {
			panic("pagetable: inserting into unmapped address")
		}
		if t.present[w]&b != 0 {
			panic("pagetable: double insert")
		}
		t.present[w] |= b
		t.accessed[w] |= b
		if write {
			t.dirty[w] |= b
		}
		r, i := t.chunkIdx(vpn)
		t.frames[r][i] = f
	}
	t.presentN++
	t.regionPresent[t.RegionOf(vpn)]++
}

// InsertPrefetch makes vpn resident without an access: the Accessed and
// Dirty bits stay clear, as for pages pulled in by swap readahead. The
// swap association is preserved (the swap copy remains valid).
func (t *Table) InsertPrefetch(vpn VPN, f mem.FrameID) {
	if t.ptes != nil {
		p := &t.ptes[vpn]
		if p.Bits&BitMapped == 0 {
			panic("pagetable: inserting into unmapped address")
		}
		if p.Bits&BitPresent != 0 {
			panic("pagetable: double insert")
		}
		p.Frame = f
		p.Bits |= BitPresent
	} else {
		w, b := bitpos(vpn)
		if t.mapped[w]&b == 0 {
			panic("pagetable: inserting into unmapped address")
		}
		if t.present[w]&b != 0 {
			panic("pagetable: double insert")
		}
		t.present[w] |= b
		r, i := t.chunkIdx(vpn)
		t.frames[r][i] = f
	}
	t.presentN++
	t.regionPresent[t.RegionOf(vpn)]++
}

// Evict clears residency for vpn, recording the swap slot it now lives in,
// and returns whether the page was dirty (needing a writeback).
func (t *Table) Evict(vpn VPN, swapSlot int32) (dirty bool) {
	var hadSlot bool
	if t.ptes != nil {
		p := &t.ptes[vpn]
		if p.Bits&BitPresent == 0 {
			panic("pagetable: evicting non-present page")
		}
		dirty = p.Bits&BitDirty != 0
		hadSlot = p.Swap != NilSwap
		p.Frame = mem.NilFrame
		p.Swap = swapSlot
		p.Bits &^= BitPresent | BitAccessed | BitDirty
	} else {
		w, b := bitpos(vpn)
		if t.present[w]&b == 0 {
			panic("pagetable: evicting non-present page")
		}
		dirty = t.dirty[w]&b != 0
		t.present[w] &^= b
		t.accessed[w] &^= b
		t.dirty[w] &^= b
		r, i := t.chunkIdx(vpn)
		hadSlot = t.swaps[r][i] != NilSwap
		t.frames[r][i] = mem.NilFrame
		t.swaps[r][i] = swapSlot
	}
	reg := t.RegionOf(vpn)
	if !hadSlot && swapSlot != NilSwap {
		t.regionSwapped[reg]++
	} else if hadSlot && swapSlot == NilSwap {
		t.regionSwapped[reg]--
	}
	t.presentN--
	t.regionPresent[reg]--
	return dirty
}

// TestAndClearAccessed clears the A bit for vpn and reports whether it was
// set — the primitive both policies' scans are built on.
func (t *Table) TestAndClearAccessed(vpn VPN) bool {
	if t.ptes != nil {
		p := &t.ptes[vpn]
		was := p.Bits&BitAccessed != 0
		p.Bits &^= BitAccessed
		return was
	}
	w, b := bitpos(vpn)
	was := t.accessed[w]&b != 0
	t.accessed[w] &^= b
	return was
}

// TestAndClearDirty clears the D bit for vpn and reports whether it was
// set — the flusher's page_mkclean: writeback marks the page clean so a
// later eviction need not write it again.
func (t *Table) TestAndClearDirty(vpn VPN) bool {
	if t.ptes != nil {
		p := &t.ptes[vpn]
		was := p.Bits&BitDirty != 0
		p.Bits &^= BitDirty
		return was
	}
	w, b := bitpos(vpn)
	was := t.dirty[w]&b != 0
	t.dirty[w] &^= b
	return was
}

// RegionPresent reports how many pages of region r are resident; linear
// scans use it to skip empty regions cheaply.
func (t *Table) RegionPresent(r int) int { return int(t.regionPresent[r]) }

// RegionSwapped reports how many PTEs of region r hold a swap slot — the
// OOM killer's swapents term, maintained incrementally so badness scoring
// is O(regions).
func (t *Table) RegionSwapped(r int) int { return int(t.regionSwapped[r]) }

// ScanRegion calls fn for every PTE in region r, passing the VPN and a
// snapshot of the entry. fn must not insert or evict pages.
func (t *Table) ScanRegion(r int, fn func(VPN, PTE)) {
	start := t.RegionStart(r)
	for i := 0; i < t.perRegion; i++ {
		fn(start+VPN(i), t.PTE(start+VPN(i)))
	}
}

// RegionSlice exposes region r's PTEs directly for hot linear scans that
// cannot afford a per-PTE indirect call. The slice aliases the table;
// callers may flip A/D bits in place but must go through Table methods for
// transitions that affect residency counters (Insert/Evict). Legacy
// layout only — packed callers use HarvestRegion and friends, which beat
// a PTE-at-a-time loop on either layout.
func (t *Table) RegionSlice(r int) (start VPN, ptes []PTE) {
	if t.ptes == nil {
		panic("pagetable: RegionSlice needs the legacy layout")
	}
	lo := r * t.perRegion
	return VPN(lo), t.ptes[lo : lo+t.perRegion]
}

// HarvestRegion clears the Accessed bit of every present-and-accessed PTE
// in region r, invoking fn for each such page in ascending VPN order with
// its backing frame — the aging walk's inner loop. It returns the
// region's present and accessed (harvested) counts. On the packed layout
// the scan is word-masked: hole-only and cold words cost one AND each.
func (t *Table) HarvestRegion(r int, fn func(VPN, mem.FrameID)) (present, accessed int) {
	present = int(t.regionPresent[r])
	if t.ptes != nil {
		start, ptes := t.RegionSlice(r)
		for i := range ptes {
			p := &ptes[i]
			if p.Bits&(BitPresent|BitAccessed) != BitPresent|BitAccessed {
				continue
			}
			accessed++
			p.Bits &^= BitAccessed
			fn(start+VPN(i), p.Frame)
		}
		return present, accessed
	}
	base := r * t.wpr
	frames := t.frames[r]
	for w := 0; w < t.wpr; w++ {
		// Walk only sets A on present pages and Evict clears A with
		// Present, so accessed ⊆ present; the intersection is defensive.
		hot := t.present[base+w] & t.accessed[base+w]
		if hot == 0 {
			continue
		}
		t.accessed[base+w] &^= hot
		accessed += bits.OnesCount64(hot)
		off := w * 64
		for hot != 0 {
			bit := bits.TrailingZeros64(hot)
			hot &= hot - 1
			i := off + bit
			fn(t.RegionStart(r)+VPN(i), frames[i])
		}
	}
	return present, accessed
}

// ReapRegion discards every swap-slot reference in region r, invoking fn
// for each dropped (vpn, slot) pair in ascending VPN order — the OOM
// reaper's bookkeeping loop. It returns the number of slots dropped.
func (t *Table) ReapRegion(r int, fn func(VPN, int32)) int {
	reaped := 0
	if t.ptes != nil {
		start, ptes := t.RegionSlice(r)
		for i := range ptes {
			p := &ptes[i]
			if p.Swap == NilSwap {
				continue
			}
			slot := p.Swap
			p.Swap = NilSwap
			reaped++
			fn(start+VPN(i), slot)
		}
	} else {
		sw := t.swaps[r]
		start := t.RegionStart(r)
		for i := range sw {
			if sw[i] == NilSwap {
				continue
			}
			slot := sw[i]
			sw[i] = NilSwap
			reaped++
			fn(start+VPN(i), slot)
		}
	}
	t.regionSwapped[r] -= int32(reaped)
	return reaped
}

// AccessedDensity scans region r counting present and accessed PTEs.
// Policies use it for the bloom-filter density rule ("at least one
// accessed PTE per cache line").
func (t *Table) AccessedDensity(r int) (present, accessed int) {
	if t.ptes != nil {
		_, ptes := t.RegionSlice(r)
		for i := range ptes {
			b := ptes[i].Bits
			if b&BitPresent != 0 {
				present++
				if b&BitAccessed != 0 {
					accessed++
				}
			}
		}
		return present, accessed
	}
	base := r * t.wpr
	for w := 0; w < t.wpr; w++ {
		present += bits.OnesCount64(t.present[base+w])
		accessed += bits.OnesCount64(t.present[base+w] & t.accessed[base+w])
	}
	return present, accessed
}
