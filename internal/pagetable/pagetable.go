// Package pagetable models a process page table at the granularity the
// replacement policies care about: PTEs carrying Present/Accessed/Dirty
// bits, grouped into PMD-sized regions of 512 entries (2 MB of virtual
// address space with 4 KB pages).
//
// Hardware behaviour is mimicked by Walk, which sets the Accessed (and
// Dirty) bits exactly as a page walk would; policies later harvest and
// clear those bits, either through the reverse map (Clock, MG-LRU
// eviction) or through linear region scans (MG-LRU aging).
//
// The table can contain holes — regions that are mapped into the address
// space layout but never populated. Those are what make naive linear scans
// wasteful and motivate MG-LRU's bloom filter.
package pagetable

import "mglrusim/internal/mem"

// VPN is a virtual page number within a process address space.
type VPN int64

// Layout constants (4 KB pages, x86-64-style PMD grouping).
const (
	// PTEsPerRegion is the real PMD fanout (512 PTEs = 2 MB regions) and
	// the default region size. Simulations with scaled-down footprints
	// pass a smaller region size to New so that region counts — and with
	// them the bloom-filter dynamics — stay in proportion.
	PTEsPerRegion = 512
	// PTEsPerCacheLine is how many 8-byte PTEs share a cache line; the
	// bloom-filter density rule is expressed in these units.
	PTEsPerCacheLine = 8
	// PageSize in bytes.
	PageSize = 4096
)

// PTE bit positions.
const (
	BitMapped   uint8 = 1 << iota // VA is valid (backed by the process layout)
	BitPresent                    // page resident in a frame
	BitAccessed                   // set by hardware walk since last clear
	BitDirty                      // written since load
	BitFile                       // backed by a file descriptor
)

// NilSwap marks a PTE with no swap slot assigned.
const NilSwap int32 = -1

// PTE is one page-table entry.
type PTE struct {
	Frame mem.FrameID // valid when BitPresent
	Swap  int32       // swap slot when swapped out, else NilSwap
	Bits  uint8
}

// Present reports whether the PTE maps a resident page.
func (p *PTE) Present() bool { return p.Bits&BitPresent != 0 }

// Mapped reports whether the VA is valid at all.
func (p *PTE) Mapped() bool { return p.Bits&BitMapped != 0 }

// Accessed reports the A bit.
func (p *PTE) Accessed() bool { return p.Bits&BitAccessed != 0 }

// Dirty reports the D bit.
func (p *PTE) Dirty() bool { return p.Bits&BitDirty != 0 }

// File reports whether the page is file-backed.
func (p *PTE) File() bool { return p.Bits&BitFile != 0 }

// Table is a process page table over a contiguous span of regions.
type Table struct {
	ptes          []PTE
	regionPresent []int32 // resident pages per region
	perRegion     int
	present       int
	mapped        int
}

// New creates a table spanning regions PMD regions of PTEsPerRegion
// entries each, all holes initially.
func New(regions int) *Table { return NewWithRegionSize(regions, PTEsPerRegion) }

// NewWithRegionSize creates a table with a custom region fanout, used by
// scaled-down simulations to keep region counts proportional.
func NewWithRegionSize(regions, perRegion int) *Table {
	if regions <= 0 {
		panic("pagetable: need at least one region")
	}
	if perRegion < PTEsPerCacheLine {
		panic("pagetable: region smaller than a cache line")
	}
	t := &Table{
		ptes:          make([]PTE, regions*perRegion),
		regionPresent: make([]int32, regions),
		perRegion:     perRegion,
	}
	for i := range t.ptes {
		t.ptes[i].Frame = mem.NilFrame
		t.ptes[i].Swap = NilSwap
	}
	return t
}

// RegionPTEs reports the region fanout of this table.
func (t *Table) RegionPTEs() int { return t.perRegion }

// Regions reports the number of PMD regions.
func (t *Table) Regions() int { return len(t.regionPresent) }

// Pages reports the total VA span in pages (including holes).
func (t *Table) Pages() int { return len(t.ptes) }

// PresentPages reports resident pages.
func (t *Table) PresentPages() int { return t.present }

// MappedPages reports valid (non-hole) pages.
func (t *Table) MappedPages() int { return t.mapped }

// RegionOf returns the region index containing vpn.
func (t *Table) RegionOf(vpn VPN) int { return int(vpn) / t.perRegion }

// RegionStart returns the first VPN of region r.
func (t *Table) RegionStart(r int) VPN { return VPN(r * t.perRegion) }

// PTE returns the entry for vpn. The pointer stays valid for the table's
// lifetime; callers must go through Table methods for state transitions
// that affect counters.
func (t *Table) PTE(vpn VPN) *PTE { return &t.ptes[vpn] }

// MapRange marks n pages starting at start as valid addresses (anonymous
// by default); file marks them file-backed.
func (t *Table) MapRange(start VPN, n int, file bool) {
	for i := 0; i < n; i++ {
		p := &t.ptes[start+VPN(i)]
		if p.Bits&BitMapped == 0 {
			t.mapped++
		}
		p.Bits |= BitMapped
		if file {
			p.Bits |= BitFile
		}
	}
}

// Walk simulates a hardware page walk for vpn: if the page is present it
// sets the Accessed bit (and Dirty on writes) and returns its frame with
// ok=true; otherwise it returns ok=false (a fault). Walking an unmapped
// address panics — that is a workload bug, not a simulated condition.
func (t *Table) Walk(vpn VPN, write bool) (f mem.FrameID, ok bool) {
	p := &t.ptes[vpn]
	if p.Bits&BitMapped == 0 {
		panic("pagetable: access to unmapped address")
	}
	if p.Bits&BitPresent == 0 {
		return mem.NilFrame, false
	}
	p.Bits |= BitAccessed
	if write {
		p.Bits |= BitDirty
	}
	return p.Frame, true
}

// Insert makes vpn resident in frame f. Any swap-slot association is
// preserved (the swap-cache copy stays valid until the page is dirtied),
// so clean re-evictions need no writeback. The new PTE starts with the
// Accessed bit set (the faulting access) and Dirty if write.
func (t *Table) Insert(vpn VPN, f mem.FrameID, write bool) {
	p := &t.ptes[vpn]
	if p.Bits&BitMapped == 0 {
		panic("pagetable: inserting into unmapped address")
	}
	if p.Bits&BitPresent != 0 {
		panic("pagetable: double insert")
	}
	p.Frame = f
	p.Bits |= BitPresent | BitAccessed
	if write {
		p.Bits |= BitDirty
	}
	t.present++
	t.regionPresent[t.RegionOf(vpn)]++
}

// InsertPrefetch makes vpn resident without an access: the Accessed and
// Dirty bits stay clear, as for pages pulled in by swap readahead. The
// swap association is preserved (the swap copy remains valid).
func (t *Table) InsertPrefetch(vpn VPN, f mem.FrameID) {
	p := &t.ptes[vpn]
	if p.Bits&BitMapped == 0 {
		panic("pagetable: inserting into unmapped address")
	}
	if p.Bits&BitPresent != 0 {
		panic("pagetable: double insert")
	}
	p.Frame = f
	p.Bits |= BitPresent
	t.present++
	t.regionPresent[t.RegionOf(vpn)]++
}

// Evict clears residency for vpn, recording the swap slot it now lives in,
// and returns whether the page was dirty (needing a writeback).
func (t *Table) Evict(vpn VPN, swapSlot int32) (dirty bool) {
	p := &t.ptes[vpn]
	if p.Bits&BitPresent == 0 {
		panic("pagetable: evicting non-present page")
	}
	dirty = p.Bits&BitDirty != 0
	p.Frame = mem.NilFrame
	p.Swap = swapSlot
	p.Bits &^= BitPresent | BitAccessed | BitDirty
	t.present--
	t.regionPresent[t.RegionOf(vpn)]--
	return dirty
}

// TestAndClearAccessed clears the A bit for vpn and reports whether it was
// set — the primitive both policies' scans are built on.
func (t *Table) TestAndClearAccessed(vpn VPN) bool {
	p := &t.ptes[vpn]
	was := p.Bits&BitAccessed != 0
	p.Bits &^= BitAccessed
	return was
}

// RegionPresent reports how many pages of region r are resident; linear
// scans use it to skip empty regions cheaply.
func (t *Table) RegionPresent(r int) int { return int(t.regionPresent[r]) }

// ScanRegion calls fn for every PTE in region r, passing the VPN and the
// entry. fn must not insert or evict pages.
func (t *Table) ScanRegion(r int, fn func(VPN, *PTE)) {
	start, ptes := t.RegionSlice(r)
	for i := range ptes {
		fn(start+VPN(i), &ptes[i])
	}
}

// RegionSlice exposes region r's PTEs directly for hot linear scans that
// cannot afford a per-PTE indirect call. The slice aliases the table;
// callers may flip A/D bits in place but must go through Table methods for
// transitions that affect residency counters (Insert/Evict).
func (t *Table) RegionSlice(r int) (start VPN, ptes []PTE) {
	lo := r * t.perRegion
	return VPN(lo), t.ptes[lo : lo+t.perRegion]
}

// AccessedDensity scans region r counting present and accessed PTEs.
// Policies use it for the bloom-filter density rule ("at least one
// accessed PTE per cache line").
func (t *Table) AccessedDensity(r int) (present, accessed int) {
	_, ptes := t.RegionSlice(r)
	for i := range ptes {
		b := ptes[i].Bits
		if b&BitPresent != 0 {
			present++
			if b&BitAccessed != 0 {
				accessed++
			}
		}
	}
	return present, accessed
}
