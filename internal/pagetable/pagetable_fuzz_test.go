package pagetable

import (
	"testing"

	"mglrusim/internal/mem"
)

// fuzzRegions/fuzzPerRegion keep the fuzz table small enough that random
// byte streams reach every region, while still packed-eligible (fanout a
// multiple of 64).
const (
	fuzzRegions   = 4
	fuzzPerRegion = 64
)

// applyFuzzOp decodes one operation from (op, a, b) and applies it to t.
// The legacy table decides validity — both tables get the identical call
// sequence, so guards read the same either way. Returns a small result
// fingerprint so the caller can diff observable behaviour per-op.
func applyFuzzOp(t *Table, op, a, b byte, slot int32) (r1, r2 int64) {
	pages := VPN(t.Pages())
	vpn := VPN(a) % pages
	region := int(a) % t.Regions()
	switch op % 10 {
	case 0: // map a short run (possibly re-mapping, possibly file-backed)
		n := int(b)%8 + 1
		if int(vpn)+n > int(pages) {
			n = int(pages - vpn)
		}
		t.MapRange(vpn, n, b&1 != 0)
	case 1: // hardware walk
		if t.PTE(vpn).Mapped() {
			f, ok := t.Walk(vpn, b&1 != 0)
			r1 = int64(f)
			if ok {
				r2 = 1
			}
		}
	case 2: // demand fault-in
		p := t.PTE(vpn)
		if p.Mapped() && !p.Present() {
			t.Insert(vpn, mem.FrameID(b), b&1 != 0)
		}
	case 3: // readahead fault-in
		p := t.PTE(vpn)
		if p.Mapped() && !p.Present() {
			t.InsertPrefetch(vpn, mem.FrameID(b))
		}
	case 4: // evict, alternating real slots and slotless drops
		if t.PTE(vpn).Present() {
			s := slot
			if b&1 != 0 {
				s = NilSwap
			}
			if t.Evict(vpn, s) {
				r1 = 1
			}
		}
	case 5: // A-bit harvest primitive
		if t.TestAndClearAccessed(vpn) {
			r1 = 1
		}
	case 6: // aging-walk inner loop: order and payload must match
		var sum int64
		present, accessed := t.HarvestRegion(region, func(v VPN, f mem.FrameID) {
			sum = sum*1000003 + int64(v)*31 + int64(f)
		})
		r1 = int64(present)*100000 + int64(accessed)
		r2 = sum
	case 7: // OOM-reaper loop: order and dropped slots must match
		var sum int64
		n := t.ReapRegion(region, func(v VPN, s int32) {
			sum = sum*1000003 + int64(v)*31 + int64(s)
		})
		r1 = int64(n)
		r2 = sum
	case 8: // bloom density rule inputs
		present, accessed := t.AccessedDensity(region)
		r1 = int64(present)
		r2 = int64(accessed)
	case 9: // region counters
		r1 = int64(t.RegionPresent(region))
		r2 = int64(t.RegionSwapped(region))
	}
	return r1, r2
}

// diffTables fails the test at the first observable divergence between the
// legacy and packed tables: global counters, then every PTE snapshot and
// live accessor, then the per-region counters.
func diffTables(t *testing.T, legacy, packed *Table, step int) {
	t.Helper()
	if legacy.PresentPages() != packed.PresentPages() || legacy.MappedPages() != packed.MappedPages() {
		t.Fatalf("step %d: global counters diverge: legacy present=%d mapped=%d, packed present=%d mapped=%d",
			step, legacy.PresentPages(), legacy.MappedPages(), packed.PresentPages(), packed.MappedPages())
	}
	for vpn := VPN(0); vpn < VPN(legacy.Pages()); vpn++ {
		lp, pp := legacy.PTE(vpn), packed.PTE(vpn)
		if lp != pp {
			t.Fatalf("step %d: PTE(%d) diverges: legacy %+v, packed %+v", step, vpn, lp, pp)
		}
		if legacy.IsPresent(vpn) != packed.IsPresent(vpn) ||
			legacy.SwapOf(vpn) != packed.SwapOf(vpn) ||
			legacy.FileBacked(vpn) != packed.FileBacked(vpn) ||
			legacy.FrameOf(vpn) != packed.FrameOf(vpn) {
			t.Fatalf("step %d: accessors diverge at vpn %d", step, vpn)
		}
	}
	for r := 0; r < legacy.Regions(); r++ {
		if legacy.RegionPresent(r) != packed.RegionPresent(r) || legacy.RegionSwapped(r) != packed.RegionSwapped(r) {
			t.Fatalf("step %d: region %d counters diverge: legacy (%d,%d), packed (%d,%d)", step, r,
				legacy.RegionPresent(r), legacy.RegionSwapped(r), packed.RegionPresent(r), packed.RegionSwapped(r))
		}
	}
}

// FuzzPackedVsLegacy drives the identical operation stream — maps, walks,
// inserts, evictions, harvests, reaps — through a legacy AoS table and a
// packed SoA table and requires bit-exact agreement after every step: op
// results (including harvest/reap callback order), every PTE snapshot,
// every accessor, and all counters. The legacy layout is the reference
// model; any divergence is a packed bit-plane bug.
func FuzzPackedVsLegacy(f *testing.F) {
	f.Add([]byte{0, 0, 10, 1, 0, 0, 2, 0, 3, 1, 0, 1, 4, 0, 0, 6, 0, 0})
	f.Add([]byte{0, 128, 200, 2, 130, 7, 4, 130, 0, 7, 130, 0, 9, 2, 0})
	f.Add([]byte{0, 0, 255, 0, 64, 255, 2, 5, 1, 5, 5, 0, 8, 1, 0, 6, 0, 0, 7, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		legacy := NewWithLayout(fuzzRegions, fuzzPerRegion, LayoutLegacy)
		packed := NewWithLayout(fuzzRegions, fuzzPerRegion, LayoutPacked)
		slot := int32(1)
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			l1, l2 := applyFuzzOp(legacy, op, a, b, slot)
			p1, p2 := applyFuzzOp(packed, op, a, b, slot)
			slot++
			if l1 != p1 || l2 != p2 {
				t.Fatalf("step %d (op %d a %d b %d): results diverge: legacy (%d,%d), packed (%d,%d)",
					i/3, op%10, a, b, l1, l2, p1, p2)
			}
			diffTables(t, legacy, packed, i/3)
		}
	})
}
