package pagetable

import (
	"testing"
	"testing/quick"

	"mglrusim/internal/mem"
)

func newMapped(regions, pages int) *Table {
	t := New(regions)
	t.MapRange(0, pages, false)
	return t
}

func TestWalkFaultsOnNonPresent(t *testing.T) {
	tb := newMapped(1, 10)
	if _, ok := tb.Walk(3, false); ok {
		t.Fatal("walk of non-present page should fault")
	}
}

func TestWalkUnmappedPanics(t *testing.T) {
	tb := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unmapped access")
		}
	}()
	tb.Walk(5, false)
}

func TestInsertWalkSetsAccessedAndDirty(t *testing.T) {
	tb := newMapped(1, 10)
	tb.Insert(4, mem.FrameID(7), false)
	p := tb.PTE(4)
	if !p.Present() || !p.Accessed() || p.Dirty() {
		t.Fatalf("bits after read insert: %08b", p.Bits)
	}
	f, ok := tb.Walk(4, true)
	if !ok || f != 7 {
		t.Fatalf("walk = (%d, %v)", f, ok)
	}
	if !tb.PTE(4).Dirty() {
		t.Fatal("write walk should set dirty")
	}
	if tb.PresentPages() != 1 {
		t.Fatalf("present = %d", tb.PresentPages())
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	tb := newMapped(1, 4)
	tb.Insert(1, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double insert")
		}
	}()
	tb.Insert(1, 1, false)
}

func TestEvictReturnsDirtyAndStoresSlot(t *testing.T) {
	tb := newMapped(1, 4)
	tb.Insert(2, 5, true) // write fault -> dirty
	dirty := tb.Evict(2, 99)
	if !dirty {
		t.Fatal("evict should report dirty")
	}
	p := tb.PTE(2)
	if p.Present() || p.Swap != 99 || p.Accessed() || p.Dirty() {
		t.Fatalf("post-evict PTE: %+v", p)
	}
	if tb.PresentPages() != 0 {
		t.Fatal("present count not decremented")
	}
	// Clean reinsert then evict: not dirty.
	tb.Insert(2, 6, false)
	if tb.Evict(2, 100) {
		t.Fatal("clean page reported dirty")
	}
}

func TestTestAndClearAccessed(t *testing.T) {
	tb := newMapped(1, 4)
	tb.Insert(0, 1, false)
	if !tb.TestAndClearAccessed(0) {
		t.Fatal("first clear should report set")
	}
	if tb.TestAndClearAccessed(0) {
		t.Fatal("second clear should report clear")
	}
	tb.Walk(0, false)
	if !tb.TestAndClearAccessed(0) {
		t.Fatal("walk should have re-set A bit")
	}
}

func TestRegionBookkeeping(t *testing.T) {
	tb := New(3)
	tb.MapRange(0, 3*PTEsPerRegion, false)
	tb.Insert(VPN(PTEsPerRegion+5), 1, false)
	tb.Insert(VPN(PTEsPerRegion+6), 2, false)
	if tb.RegionPresent(0) != 0 || tb.RegionPresent(1) != 2 || tb.RegionPresent(2) != 0 {
		t.Fatalf("region counts: %d %d %d", tb.RegionPresent(0), tb.RegionPresent(1), tb.RegionPresent(2))
	}
	tb.Evict(VPN(PTEsPerRegion+5), 0)
	if tb.RegionPresent(1) != 1 {
		t.Fatal("region count not decremented on evict")
	}
}

func TestRegionOfAndStart(t *testing.T) {
	tb := New(3)
	if tb.RegionOf(0) != 0 || tb.RegionOf(511) != 0 || tb.RegionOf(512) != 1 {
		t.Fatal("RegionOf wrong")
	}
	if tb.RegionStart(2) != 1024 {
		t.Fatal("RegionStart wrong")
	}
}

func TestCustomRegionSize(t *testing.T) {
	tb := NewWithRegionSize(4, 64)
	if tb.RegionPTEs() != 64 || tb.Pages() != 256 {
		t.Fatalf("perRegion=%d pages=%d", tb.RegionPTEs(), tb.Pages())
	}
	if tb.RegionOf(63) != 0 || tb.RegionOf(64) != 1 {
		t.Fatal("RegionOf wrong for custom size")
	}
	tb.MapRange(0, 256, false)
	tb.Insert(130, 1, false)
	if tb.RegionPresent(2) != 1 {
		t.Fatal("region present tracking wrong for custom size")
	}
	n := 0
	tb.ScanRegion(2, func(VPN, PTE) { n++ })
	if n != 64 {
		t.Fatalf("scan visited %d, want 64", n)
	}
}

func TestAccessedDensity(t *testing.T) {
	tb := New(1)
	tb.MapRange(0, PTEsPerRegion, false)
	for i := 0; i < 16; i++ {
		tb.Insert(VPN(i), mem.FrameID(i), false) // insert sets A
	}
	for i := 8; i < 16; i++ {
		tb.TestAndClearAccessed(VPN(i))
	}
	present, accessed := tb.AccessedDensity(0)
	if present != 16 || accessed != 8 {
		t.Fatalf("density = (%d, %d), want (16, 8)", present, accessed)
	}
}

func TestScanRegionVisitsAll(t *testing.T) {
	tb := New(2)
	tb.MapRange(0, 2*PTEsPerRegion, false)
	n := 0
	var first, last VPN
	tb.ScanRegion(1, func(vpn VPN, p PTE) {
		if n == 0 {
			first = vpn
		}
		last = vpn
		n++
	})
	if n != PTEsPerRegion || first != 512 || last != 1023 {
		t.Fatalf("scan visited %d [%d..%d]", n, first, last)
	}
}

func TestFileMapping(t *testing.T) {
	tb := New(1)
	tb.MapRange(0, 8, true)
	if !tb.PTE(0).File() {
		t.Fatal("file bit not set")
	}
	tb.MapRange(8, 8, false)
	if tb.PTE(8).File() {
		t.Fatal("anon page marked file")
	}
	if tb.MappedPages() != 16 {
		t.Fatalf("mapped = %d", tb.MappedPages())
	}
}

// Property: present counter equals the number of PTEs with the present bit
// after arbitrary insert/evict sequences, and A/D bits are always clear on
// non-present pages.
func TestPresenceInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := New(2)
		tb.MapRange(0, 2*PTEsPerRegion, false)
		resident := map[VPN]bool{}
		nextFrame := mem.FrameID(0)
		for _, op := range ops {
			vpn := VPN(op % (2 * PTEsPerRegion))
			if resident[vpn] {
				if op&0x8000 != 0 {
					tb.Evict(vpn, int32(op))
					resident[vpn] = false
				} else {
					tb.Walk(vpn, op&0x4000 != 0)
				}
			} else {
				tb.Insert(vpn, nextFrame, false)
				nextFrame++
				resident[vpn] = true
			}
		}
		count := 0
		for v := VPN(0); v < 2*PTEsPerRegion; v++ {
			p := tb.PTE(v)
			if p.Present() {
				count++
				if !resident[v] {
					return false
				}
			} else if p.Accessed() || p.Dirty() {
				return false
			}
		}
		return count == tb.PresentPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
