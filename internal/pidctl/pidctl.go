// Package pidctl implements the proportional-integral-derivative control
// used by MG-LRU to balance refault rates across tiers (mm/vmscan.c's
// positive-feedback protection of file-backed tiers). The paper (§III-D)
// describes the mechanism: if the refault rate of a higher tier — which
// contains only pages accessed through file descriptors — exceeds that of
// the lowest tier, the controller protects the higher tier from eviction
// until the rates rebalance.
//
// Two layers are provided: a generic PID Controller, and the TierGain
// bookkeeping that mirrors the kernel's ctrl_pos/read_ctrl_pos comparison
// of refaulted/evicted ratios between tiers.
package pidctl

// Controller is a textbook discrete PID controller.
type Controller struct {
	// Gains. The kernel's tier protection is dominated by the
	// proportional term with a slow integral; derivative defaults to 0.
	Kp, Ki, Kd float64

	integral float64
	prevErr  float64
	primed   bool

	// IntegralClamp bounds the magnitude of the accumulated integral
	// term to prevent windup; 0 disables clamping.
	IntegralClamp float64
}

// Update advances the controller with error err over timestep dt (any
// consistent unit) and returns the control output.
func (c *Controller) Update(err, dt float64) float64 {
	if dt <= 0 {
		panic("pidctl: non-positive timestep")
	}
	c.integral += err * dt
	if c.IntegralClamp > 0 {
		if c.integral > c.IntegralClamp {
			c.integral = c.IntegralClamp
		} else if c.integral < -c.IntegralClamp {
			c.integral = -c.IntegralClamp
		}
	}
	deriv := 0.0
	if c.primed {
		deriv = (err - c.prevErr) / dt
	}
	c.prevErr = err
	c.primed = true
	return c.Kp*err + c.Ki*c.integral + c.Kd*deriv
}

// Reset clears accumulated state.
func (c *Controller) Reset() {
	c.integral = 0
	c.prevErr = 0
	c.primed = false
}

// Pos is a control position: evicted and refaulted page counts for one
// tier over a control interval, mirroring the kernel's struct ctrl_pos.
type Pos struct {
	Evicted   uint64
	Refaulted uint64
}

// Rate returns the refault rate with Laplace smoothing so empty tiers do
// not produce divide-by-zero or wild swings.
func (p Pos) Rate() float64 {
	return float64(p.Refaulted+1) / float64(p.Evicted+p.Refaulted+2)
}

// TierSet tracks refault positions for each tier and answers the
// protection question MG-LRU's eviction asks: up to which tier should
// pages be protected (promoted rather than evicted)?
type TierSet struct {
	tiers []Pos
	ctl   []Controller
}

// NewTierSet creates state for n tiers with the given proportional and
// integral gains on the rate imbalance.
func NewTierSet(n int, kp, ki float64) *TierSet {
	ts := &TierSet{
		tiers: make([]Pos, n),
		ctl:   make([]Controller, n),
	}
	for i := range ts.ctl {
		ts.ctl[i] = Controller{Kp: kp, Ki: ki, IntegralClamp: 10}
	}
	return ts
}

// Tiers reports the number of tiers tracked.
func (ts *TierSet) Tiers() int { return len(ts.tiers) }

// RecordEviction notes that a page from tier t was evicted.
func (ts *TierSet) RecordEviction(t int) { ts.tiers[t].Evicted++ }

// RecordRefault notes that a page evicted from tier t refaulted.
func (ts *TierSet) RecordRefault(t int) { ts.tiers[t].Refaulted++ }

// Snapshot returns the current position of tier t.
func (ts *TierSet) Snapshot(t int) Pos { return ts.tiers[t] }

// ProtectedTier computes, via the per-tier controllers, the highest tier
// index that should NOT be protected: eviction may take pages from tiers
// <= the returned value. Tiers above it have refault rates exceeding the
// base tier's and are shielded. dt is the control timestep.
func (ts *TierSet) ProtectedTier(dt float64) int {
	base := ts.tiers[0].Rate()
	allow := len(ts.tiers) - 1
	for t := 1; t < len(ts.tiers); t++ {
		imbalance := ts.tiers[t].Rate() - base
		out := ts.ctl[t].Update(imbalance, dt)
		if out > 0 {
			// Tier t refaults more than the base tier: protect it and
			// everything hotter.
			allow = t - 1
			break
		}
	}
	return allow
}

// Decay halves all counters, aging out stale history the way the kernel
// does between control periods.
func (ts *TierSet) Decay() {
	for i := range ts.tiers {
		ts.tiers[i].Evicted /= 2
		ts.tiers[i].Refaulted /= 2
	}
}
