package pidctl

import (
	"math"
	"testing"
)

func TestProportionalOnly(t *testing.T) {
	c := Controller{Kp: 2}
	if out := c.Update(3, 1); out != 6 {
		t.Fatalf("out = %v, want 6", out)
	}
}

func TestIntegralAccumulates(t *testing.T) {
	c := Controller{Ki: 1}
	c.Update(1, 1)
	c.Update(1, 1)
	if out := c.Update(1, 1); out != 3 {
		t.Fatalf("integral out = %v, want 3", out)
	}
}

func TestIntegralClamp(t *testing.T) {
	c := Controller{Ki: 1, IntegralClamp: 2}
	for i := 0; i < 10; i++ {
		c.Update(5, 1)
	}
	if out := c.Update(0, 1); out != 2 {
		t.Fatalf("clamped out = %v, want 2", out)
	}
}

func TestDerivativeRespondsToChange(t *testing.T) {
	c := Controller{Kd: 1}
	c.Update(0, 1)
	if out := c.Update(4, 1); out != 4 {
		t.Fatalf("derivative out = %v, want 4", out)
	}
}

func TestDerivativeNotPrimedFirstStep(t *testing.T) {
	c := Controller{Kd: 100}
	if out := c.Update(5, 1); out != 0 {
		t.Fatalf("first-step derivative should be 0, got %v", out)
	}
}

func TestNonPositiveTimestepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dt <= 0")
		}
	}()
	var c Controller
	c.Update(1, 0)
}

func TestReset(t *testing.T) {
	c := Controller{Ki: 1, Kd: 1}
	c.Update(3, 1)
	c.Reset()
	if out := c.Update(0, 1); out != 0 {
		t.Fatalf("after reset out = %v, want 0", out)
	}
}

// A PID loop driving a simple first-order plant should converge to the
// setpoint.
func TestClosedLoopConverges(t *testing.T) {
	c := Controller{Kp: 0.8, Ki: 0.3}
	state := 0.0
	target := 10.0
	for i := 0; i < 200; i++ {
		u := c.Update(target-state, 1)
		state += 0.5 * u
	}
	if math.Abs(state-target) > 0.1 {
		t.Fatalf("state = %v, want ~%v", state, target)
	}
}

func TestPosRateSmoothing(t *testing.T) {
	var p Pos
	if r := p.Rate(); r != 0.5 {
		t.Fatalf("empty rate = %v, want 0.5 (Laplace prior)", r)
	}
	p = Pos{Evicted: 98, Refaulted: 0}
	if r := p.Rate(); r >= 0.05 {
		t.Fatalf("rarely-refaulting rate = %v, want small", r)
	}
	p = Pos{Evicted: 0, Refaulted: 98}
	if r := p.Rate(); r <= 0.95 {
		t.Fatalf("always-refaulting rate = %v, want large", r)
	}
}

func TestTierSetNoImbalanceAllowsAllTiers(t *testing.T) {
	ts := NewTierSet(4, 1, 0)
	// Balanced refault rates: nothing protected.
	for tier := 0; tier < 4; tier++ {
		for i := 0; i < 50; i++ {
			ts.RecordEviction(tier)
		}
		for i := 0; i < 5; i++ {
			ts.RecordRefault(tier)
		}
	}
	if got := ts.ProtectedTier(1); got != 3 {
		t.Fatalf("allow tier = %d, want 3 (all evictable)", got)
	}
}

func TestTierSetProtectsHotUpperTier(t *testing.T) {
	ts := NewTierSet(4, 1, 0)
	// Base tier rarely refaults; tier 1 refaults constantly.
	for i := 0; i < 100; i++ {
		ts.RecordEviction(0)
	}
	for i := 0; i < 50; i++ {
		ts.RecordEviction(1)
		ts.RecordRefault(1)
	}
	if got := ts.ProtectedTier(1); got != 0 {
		t.Fatalf("allow tier = %d, want 0 (tier 1+ protected)", got)
	}
}

func TestTierSetDecayHalvesCounters(t *testing.T) {
	ts := NewTierSet(2, 1, 0)
	for i := 0; i < 10; i++ {
		ts.RecordEviction(1)
		ts.RecordRefault(1)
	}
	ts.Decay()
	p := ts.Snapshot(1)
	if p.Evicted != 5 || p.Refaulted != 5 {
		t.Fatalf("post-decay pos = %+v", p)
	}
}
