package pidctl

// TierGain is the file-vs-anon refault balancer: it tracks one control
// position per page kind and answers, through a PID controller over the
// refault-rate imbalance, whether file-backed pages should currently be
// protected from eviction. This is the second comparison the kernel's
// lru_gen_eval performs beside the per-tier one — anon and file grow or
// shrink against each other based on which kind is refaulting harder.
//
// The zero kind (anon) plays the role of TierSet's base tier: file pages
// are protected while their refault rate exceeds the anon rate, and the
// protection lifts once eviction pressure rebalances the two (or once
// Decay ages the imbalance out).
type TierGain struct {
	anon, file Pos
	ctl        Controller
	protecting bool
}

// NewTierGain creates a balancer with the given proportional and
// integral gains on the rate imbalance (the same knobs TierSet uses).
func NewTierGain(kp, ki float64) *TierGain {
	return &TierGain{ctl: Controller{Kp: kp, Ki: ki, IntegralClamp: 10}}
}

// RecordEviction notes that a page of the given kind was evicted.
func (g *TierGain) RecordEviction(file bool) {
	if file {
		g.file.Evicted++
	} else {
		g.anon.Evicted++
	}
}

// RecordRefault notes that an evicted page of the given kind refaulted.
func (g *TierGain) RecordRefault(file bool) {
	if file {
		g.file.Refaulted++
	} else {
		g.anon.Refaulted++
	}
}

// ProtectFile advances the controller over timestep dt and reports
// whether file pages should be shielded from eviction right now. A file
// side with no history yet (nothing evicted, nothing refaulted) is never
// protected: Laplace smoothing would otherwise report a phantom 0.5 rate
// for a page kind the workload does not even use, and the controller
// must stay inert for purely anonymous workloads.
func (g *TierGain) ProtectFile(dt float64) bool {
	if g.file.Evicted == 0 && g.file.Refaulted == 0 {
		g.protecting = false
		return false
	}
	imbalance := g.file.Rate() - g.anon.Rate()
	g.protecting = g.ctl.Update(imbalance, dt) > 0
	return g.protecting
}

// Protecting reports the outcome of the most recent ProtectFile call
// without advancing the controller — the telemetry-gauge accessor.
func (g *TierGain) Protecting() bool { return g.protecting }

// Snapshot returns the current anon and file positions.
func (g *TierGain) Snapshot() (anon, file Pos) { return g.anon, g.file }

// Decay halves all counters, aging out stale history between control
// periods.
func (g *TierGain) Decay() {
	g.anon.Evicted /= 2
	g.anon.Refaulted /= 2
	g.file.Evicted /= 2
	g.file.Refaulted /= 2
}
