package pidctl

import "testing"

func TestTierGainInertWithoutFileHistory(t *testing.T) {
	g := NewTierGain(1, 0)
	// Plenty of anon churn, zero file activity: a purely anonymous
	// workload must never see file protection engage.
	for i := 0; i < 100; i++ {
		g.RecordEviction(false)
	}
	for i := 0; i < 10; i++ {
		if g.ProtectFile(1) {
			t.Fatal("file protection engaged with no file history")
		}
	}
	if g.Protecting() {
		t.Fatal("Protecting() true after inert ProtectFile")
	}
}

func TestTierGainProtectsRefaultingFileSide(t *testing.T) {
	g := NewTierGain(1, 0)
	// Anon rarely refaults; file refaults on every eviction.
	for i := 0; i < 100; i++ {
		g.RecordEviction(false)
	}
	for i := 0; i < 50; i++ {
		g.RecordEviction(true)
		g.RecordRefault(true)
	}
	if !g.ProtectFile(1) {
		t.Fatal("file side refaulting hard, want protection")
	}
	if !g.Protecting() {
		t.Fatal("Protecting() should mirror the last decision")
	}
}

func TestTierGainLiftsWhenRatesRebalance(t *testing.T) {
	g := NewTierGain(1, 0)
	for i := 0; i < 50; i++ {
		g.RecordEviction(true)
		g.RecordRefault(true)
	}
	for i := 0; i < 10; i++ {
		g.RecordEviction(false)
	}
	if !g.ProtectFile(1) {
		t.Fatal("want initial protection under file refault imbalance")
	}
	// File evictions stop refaulting; anon starts refaulting instead.
	for i := 0; i < 500; i++ {
		g.RecordEviction(true)
		g.RecordRefault(false)
		g.RecordEviction(false)
	}
	if g.ProtectFile(1) {
		t.Fatal("protection should lift once anon refaults harder than file")
	}
}

func TestTierGainDecayHalvesBothSides(t *testing.T) {
	g := NewTierGain(1, 0)
	for i := 0; i < 10; i++ {
		g.RecordEviction(true)
		g.RecordRefault(true)
		g.RecordEviction(false)
		g.RecordRefault(false)
	}
	g.Decay()
	anon, file := g.Snapshot()
	if anon.Evicted != 5 || anon.Refaulted != 5 || file.Evicted != 5 || file.Refaulted != 5 {
		t.Fatalf("post-decay anon=%+v file=%+v", anon, file)
	}
}
