// Package clock implements the classic Clock-LRU (second chance / 2Q)
// replacement policy that the Linux kernel used for decades: an active
// list holding the presumed working set and an inactive list holding
// eviction candidates.
//
// Its defining cost characteristic, per the paper (§III-B, §V-B): every
// accessed-bit check starts from a physical frame on an LRU list and must
// walk the reverse map to find the PTE, paying the pointer-chase cost for
// every page individually — there is no spatial amortization.
package clock

import (
	"mglrusim/internal/mem"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
	"mglrusim/internal/telemetry"
)

// List identities.
const (
	listInactive int16 = 0
	listActive   int16 = 1
)

// Config parameterizes Clock.
type Config struct {
	// Costs is the shared scanning cost model.
	Costs policy.Costs
	// InactiveRatio is the active:inactive balance target — the balance
	// scan demotes active pages whenever inactive < active/InactiveRatio
	// (the kernel's inactive_is_low heuristic). Default 2.
	InactiveRatio int
	// ScanBatch bounds how many pages one balance pass examines per
	// needed eviction. Default 32.
	ScanBatch int
}

// DefaultConfig returns the kernel-like defaults.
func DefaultConfig() Config {
	return Config{Costs: policy.DefaultCosts(), InactiveRatio: 2, ScanBatch: 32}
}

// Clock is the two-list second-chance policy.
type Clock struct {
	cfg      Config
	k        policy.Kernel
	active   *mem.List
	inactive *mem.List
	lock     policy.LRULock
	stats    policy.Stats
}

// New creates a Clock policy.
func New(cfg Config) *Clock {
	if cfg.InactiveRatio <= 0 {
		cfg.InactiveRatio = 2
	}
	if cfg.ScanBatch <= 0 {
		cfg.ScanBatch = 32
	}
	return &Clock{cfg: cfg}
}

// Name implements policy.Policy.
func (c *Clock) Name() string { return "clock" }

// Attach implements policy.Policy.
func (c *Clock) Attach(k policy.Kernel) {
	c.k = k
	c.inactive = mem.NewList(k.Mem(), listInactive)
	c.active = mem.NewList(k.Mem(), listActive)
}

// RegisterTelemetry implements telemetry.Registrant: list occupancy
// becomes a pair of gauges so traced runs can watch the active:inactive
// balance evolve. Call after Attach.
func (c *Clock) RegisterTelemetry(tr *telemetry.Tracer) {
	if tr == nil {
		return
	}
	tr.Gauge("clock.active.len", func() int64 { return int64(c.active.Len()) })
	tr.Gauge("clock.inactive.len", func() int64 { return int64(c.inactive.Len()) })
}

// ActiveLen and InactiveLen expose list occupancy for tests and the
// policyviz tool.
func (c *Clock) ActiveLen() int   { return c.active.Len() }
func (c *Clock) InactiveLen() int { return c.inactive.Len() }

// PageIn implements policy.Policy: new and refaulting pages enter the
// inactive list head and must prove themselves to reach the active list.
func (c *Clock) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	c.lock.Acquire(v)
	defer c.lock.Release(v)
	if sh != nil {
		c.stats.Refaults++
		c.k.Mem().Frame(f).Flags |= mem.FlagWorkingset
	}
	c.inactive.PushHead(f)
	c.charge(v, c.cfg.Costs.PageOp)
}

// charge accounts scan CPU.
func (c *Clock) charge(v *sim.Env, d sim.Duration) {
	c.stats.ScanCPU += d
	v.Charge(d)
}

// inactiveIsLow reports whether the balance scan should demote active
// pages.
func (c *Clock) inactiveIsLow() bool {
	return c.inactive.Len()*c.cfg.InactiveRatio < c.active.Len()
}

// balance scans the tail of the active list, demoting cold pages to the
// inactive list and rotating hot ones — the "periodic scan of the bottom
// of the active list". Each examined page costs one rmap walk.
func (c *Clock) balance(v *sim.Env, wanted int) {
	budget := wanted * c.cfg.ScanBatch
	for c.inactiveIsLow() && budget > 0 && !c.active.Empty() {
		// Isolate under the lruvec lock, walk the rmap without it, then
		// re-take it to apply the decision.
		c.lock.Acquire(v)
		f := c.active.PopTail()
		c.lock.Release(v)
		vpn, cost := c.k.RMap().Walk(f)
		c.stats.RMapWalks++
		c.charge(v, cost)
		budget--
		c.lock.Acquire(v)
		if c.k.Table().TestAndClearAccessed(vpn) {
			c.active.PushHead(f)
			c.stats.Rotated++
		} else {
			c.inactive.PushHead(f)
			c.stats.Demoted++
		}
		c.charge(v, c.cfg.Costs.PageOp)
		c.lock.Release(v)
	}
}

// Reclaim implements policy.Policy: second-chance shrink of the inactive
// list tail.
func (c *Clock) Reclaim(v *sim.Env, target int) int {
	if target <= 0 {
		return 0
	}
	c.balance(v, target)
	evicted := 0
	// Bound the pass: examine at most the current inactive population
	// plus a batch allowance, so a fully-hot list terminates.
	budget := c.inactive.Len() + c.cfg.ScanBatch
	for evicted < target && budget > 0 && !c.inactive.Empty() {
		c.lock.Acquire(v)
		f := c.inactive.PopTail()
		c.lock.Release(v)
		if f == mem.NilFrame {
			break
		}
		budget--
		vpn, cost := c.k.RMap().Walk(f)
		c.stats.RMapWalks++
		c.charge(v, cost)
		if c.k.Table().TestAndClearAccessed(vpn) {
			// Second chance: referenced while inactive -> activate.
			c.lock.Acquire(v)
			c.active.PushHead(f)
			c.charge(v, c.cfg.Costs.PageOp)
			c.lock.Release(v)
			c.stats.Promoted++
			continue
		}
		c.stats.Evicted++
		c.k.EvictPage(v, f, policy.Shadow{EvictedAt: v.Now()})
		evicted++
	}
	return evicted
}

// LockStats exposes lruvec-lock contention counters.
func (c *Clock) LockStats() (acquisitions, contended uint64, waitTime sim.Duration) {
	return c.lock.Acquisitions, c.lock.Contended, c.lock.WaitTime
}

// DebugLock implements policy.LockDebugger.
func (c *Clock) DebugLock() *policy.LRULock { return &c.lock }

// Age implements policy.Policy. Clock has no background aging thread; all
// its scanning happens in the reclaim path.
func (c *Clock) Age(v *sim.Env) bool { return false }

// NeedsAging implements policy.Policy.
func (c *Clock) NeedsAging() bool { return false }

// Stats implements policy.Policy.
func (c *Clock) Stats() policy.Stats { return c.stats }

var _ policy.Policy = (*Clock)(nil)
