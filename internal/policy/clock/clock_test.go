package clock

import (
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/policytest"
	"mglrusim/internal/sim"
)

func newClock(t *testing.T, frames int) (*Clock, *policytest.Kernel) {
	t.Helper()
	c := New(DefaultConfig())
	k := policytest.New(frames, 1, 42)
	c.Attach(k)
	return c, k
}

func TestPageInGoesToInactive(t *testing.T) {
	c, k := newClock(t, 16)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, c, 0, false, false)
		k.FaultIn(v, c, 1, false, false)
	})
	if c.InactiveLen() != 2 || c.ActiveLen() != 0 {
		t.Fatalf("inactive=%d active=%d", c.InactiveLen(), c.ActiveLen())
	}
}

func TestReclaimEvictsColdOldestFirst(t *testing.T) {
	c, k := newClock(t, 16)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 4; vpn++ {
			k.FaultIn(v, c, vpn, false, false)
			k.T.TestAndClearAccessed(vpn) // cool them all down
		}
		if n := c.Reclaim(v, 2); n != 2 {
			t.Errorf("reclaimed %d, want 2", n)
		}
	})
	if len(k.EvictOrder) != 2 || k.EvictOrder[0] != 0 || k.EvictOrder[1] != 1 {
		t.Fatalf("evict order = %v, want [0 1]", k.EvictOrder)
	}
}

func TestSecondChancePromotesAccessed(t *testing.T) {
	c, k := newClock(t, 16)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 3; vpn++ {
			k.FaultIn(v, c, vpn, false, false)
			k.T.TestAndClearAccessed(vpn)
		}
		k.Touch(0, false) // re-reference the oldest inactive page
		c.Reclaim(v, 1)
	})
	// Page 0 was accessed: it must have been activated, and page 1
	// evicted instead.
	if len(k.EvictOrder) != 1 || k.EvictOrder[0] != 1 {
		t.Fatalf("evict order = %v, want [1]", k.EvictOrder)
	}
	if c.ActiveLen() != 1 {
		t.Fatalf("active = %d, want 1 (second chance)", c.ActiveLen())
	}
	if c.Stats().Promoted != 1 {
		t.Fatalf("promoted = %d", c.Stats().Promoted)
	}
}

func TestBalanceDemotesColdActivePages(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	k := policytest.New(32, 1, 1)
	c.Attach(k)
	policytest.Run(func(v *sim.Env) {
		// Fill inactive, promote everything to active via second chance.
		for vpn := pagetable.VPN(0); vpn < 8; vpn++ {
			k.FaultIn(v, c, vpn, false, false)
		}
		// All pages have A set from fault-in: one reclaim pass activates
		// them all (second chance) and evicts nothing.
		if n := c.Reclaim(v, 1); n != 0 {
			t.Errorf("hot pass evicted %d, want 0", n)
		}
		if c.ActiveLen() != 8 {
			t.Fatalf("active = %d, want 8", c.ActiveLen())
		}
		// Now everything is cold (A cleared by the pass). The next
		// reclaim must first balance active -> inactive, then evict.
		if n := c.Reclaim(v, 2); n != 2 {
			t.Errorf("cold pass evicted %d, want 2", n)
		}
	})
	if c.Stats().Demoted == 0 {
		t.Fatal("balance never demoted pages")
	}
}

func TestEveryExaminedPageCostsAnRMapWalk(t *testing.T) {
	c, k := newClock(t, 16)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 6; vpn++ {
			k.FaultIn(v, c, vpn, false, false)
			k.T.TestAndClearAccessed(vpn)
		}
		c.Reclaim(v, 3)
	})
	st := c.Stats()
	if st.RMapWalks < 3 {
		t.Fatalf("rmap walks = %d, want >= evictions", st.RMapWalks)
	}
	if st.ScanCPU <= 0 {
		t.Fatal("scan CPU not accounted")
	}
	if k.R.Walks() != st.RMapWalks {
		t.Fatalf("rmap package walks %d != policy stat %d", k.R.Walks(), st.RMapWalks)
	}
}

func TestRefaultCountsAndWorkingset(t *testing.T) {
	c, k := newClock(t, 16)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, c, 5, false, false)
		k.T.TestAndClearAccessed(5)
		c.Reclaim(v, 1)
		if len(k.EvictOrder) != 1 {
			t.Errorf("page not evicted")
		}
		k.FaultIn(v, c, 5, false, false) // refault
	})
	if c.Stats().Refaults != 1 {
		t.Fatalf("refaults = %d, want 1", c.Stats().Refaults)
	}
}

func TestReclaimTerminatesWhenAllHot(t *testing.T) {
	c, k := newClock(t, 16)
	var n int
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 8; vpn++ {
			k.FaultIn(v, c, vpn, false, false) // all A bits set
		}
		n = c.Reclaim(v, 4)
	})
	// First pass gives everything a second chance; may evict 0. The
	// important property is termination (bounded budget) — reaching here
	// is the assertion — and no page lost.
	if n < 0 || c.ActiveLen()+c.InactiveLen() != 8 {
		t.Fatalf("n=%d active+inactive=%d", n, c.ActiveLen()+c.InactiveLen())
	}
}

func TestClockHasNoAging(t *testing.T) {
	c, _ := newClock(t, 8)
	if c.NeedsAging() {
		t.Fatal("clock should not request aging")
	}
	policytest.Run(func(v *sim.Env) {
		if c.Age(v) {
			t.Error("clock Age should be a no-op")
		}
	})
}

func TestShadowPassedToEvict(t *testing.T) {
	c, k := newClock(t, 8)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, c, 3, false, false)
		k.T.TestAndClearAccessed(3)
		c.Reclaim(v, 1)
	})
	sh, ok := k.Shadows[3]
	if !ok {
		t.Fatal("no shadow recorded")
	}
	var zero policy.Shadow
	if sh.Gen != zero.Gen || sh.Tier != zero.Tier {
		t.Fatalf("clock shadow should be zero-valued: %+v", sh)
	}
}
