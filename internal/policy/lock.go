package policy

import "mglrusim/internal/sim"

// LRULock models the kernel's per-lruvec lru_lock: every list mutation —
// fault-path insertion, eviction-candidate isolation, and the aging
// walk's batch promotions — serializes on it. Its contention is how
// scanning volume couples into fault latency: a policy that scans a lot
// holds the lock a lot, and every demand fault then queues behind the
// scanner to insert its page. This is the overhead channel behind the
// paper's Scan-All results and §VI-B's discussion of scanning overhead
// versus swap cost.
//
// The lock is reentrant per proc, because eviction can trigger aging
// inline.
type LRULock struct {
	owner *sim.Proc
	depth int
	cond  sim.Cond

	// Contention counters.
	Acquisitions uint64
	Contended    uint64
	WaitTime     sim.Duration
}

// Acquire takes the lock, blocking the proc while another proc holds it.
func (l *LRULock) Acquire(v *sim.Env) {
	p := v.Proc()
	if l.owner == p {
		l.depth++
		return
	}
	if l.owner != nil {
		l.Contended++
		start := v.Now()
		for l.owner != nil {
			v.Wait(&l.cond)
		}
		l.WaitTime += int64(v.Now() - start)
	}
	l.owner = p
	l.depth = 1
	l.Acquisitions++
}

// Release drops one level of the lock; the outermost release wakes one
// waiter.
func (l *LRULock) Release(v *sim.Env) {
	if l.owner != v.Proc() {
		panic("policy: releasing LRULock not held by caller")
	}
	l.depth--
	if l.depth == 0 {
		l.owner = nil
		l.cond.Signal(v.Engine())
	}
}

// Held reports whether the calling proc holds the lock.
func (l *LRULock) Held(v *sim.Env) bool { return l.owner == v.Proc() }

// DebugOwner reports the current owner (development aid).
func (l *LRULock) DebugOwner() *sim.Proc { return l.owner }

// LockDebugger is implemented by policies that expose their lruvec lock,
// letting the invariant auditor assert that every LRU-list mutation
// happens with the lock held by the acting proc.
type LockDebugger interface {
	DebugLock() *LRULock
}

// DebugWaiters reports how many procs are queued (development aid).
func (l *LRULock) DebugWaiters() int { return l.cond.Waiters() }
