package policy

import (
	"testing"

	"mglrusim/internal/sim"
)

func TestLockMutualExclusion(t *testing.T) {
	e := sim.NewEngine(4)
	var l LRULock
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", false, func(v *sim.Env) {
			for k := 0; k < 5; k++ {
				l.Acquire(v)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				v.Charge(100 * sim.Microsecond) // yield while holding
				inside--
				l.Release(v)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d inside", maxInside)
	}
	if l.Acquisitions != 20 {
		t.Fatalf("acquisitions = %d, want 20", l.Acquisitions)
	}
	if l.Contended == 0 {
		t.Fatal("expected contention with 4 procs on 1 lock")
	}
}

func TestLockReentrant(t *testing.T) {
	e := sim.NewEngine(1)
	var l LRULock
	e.Spawn("w", false, func(v *sim.Env) {
		l.Acquire(v)
		l.Acquire(v) // reentrant
		if !l.Held(v) {
			t.Error("lock not held")
		}
		l.Release(v)
		if !l.Held(v) {
			t.Error("outer level should still hold")
		}
		l.Release(v)
		if l.Held(v) {
			t.Error("lock should be free")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLockReleaseByNonOwnerPanics(t *testing.T) {
	e := sim.NewEngine(2)
	var l LRULock
	e.Spawn("owner", false, func(v *sim.Env) {
		l.Acquire(v)
		v.Sleep(1 * sim.Millisecond)
		l.Release(v)
	})
	e.Spawn("thief", false, func(v *sim.Env) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic releasing unheld lock")
			}
			panic("rethrow to end proc") // proc must end via panic path
		}()
		l.Release(v)
	})
	// The thief panics; Run reports the error.
	if err := e.Run(); err == nil {
		t.Fatal("expected error from panicking proc")
	}
}

func TestLockWaitTimeAccounted(t *testing.T) {
	e := sim.NewEngine(2)
	var l LRULock
	e.Spawn("holder", false, func(v *sim.Env) {
		l.Acquire(v)
		v.Charge(5 * sim.Millisecond)
		l.Release(v)
	})
	e.Spawn("waiter", false, func(v *sim.Env) {
		v.Sleep(1 * sim.Millisecond) // let holder take it first
		l.Acquire(v)
		l.Release(v)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if l.WaitTime <= 0 {
		t.Fatal("wait time not accounted")
	}
}

func TestLockFIFOHandover(t *testing.T) {
	e := sim.NewEngine(4)
	var l LRULock
	var order []int
	e.Spawn("holder", false, func(v *sim.Env) {
		l.Acquire(v)
		v.Charge(2 * sim.Millisecond)
		l.Release(v)
	})
	for i := 0; i < 3; i++ {
		i := i
		d := sim.Duration(i+1) * 100 * sim.Microsecond
		e.Spawn("w", false, func(v *sim.Env) {
			v.Sleep(d) // stagger arrival
			l.Acquire(v)
			order = append(order, i)
			l.Release(v)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("handover order = %v, want arrival order", order)
	}
}
