package mglru

import (
	"fmt"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
)

// Age implements policy.Policy: one aging pass. It walks the page table
// linearly, region by region, promoting pages whose accessed bits are set,
// then tries to open a new youngest generation.
//
// Which regions are scanned is the variant-defining decision:
//
//   - ModeBloom consults the filter built by the previous walk and the
//     eviction thread's spatial scans; an empty filter (first walk, or
//     nothing qualified) scans everything, as the kernel does.
//   - ModeAll scans every region regardless.
//   - ModeNone scans nothing — A bits are harvested only at eviction.
//   - ModeRand flips a coin per region.
//
// When the generation window is already at MaxGens, the walk still
// happens but promotes into the *current* youngest generation — the
// precision loss §V-B describes: "multiple consecutive scans promote
// pages all to the same generation".
func (g *MGLRU) Age(v *sim.Env) bool {
	// Serialize walks: a second caller (inline reclaim racing the aging
	// daemon) waits for the in-flight walk and reports whether it opened
	// a generation, rather than double-incrementing max_seq.
	if g.aging {
		before := g.maxSeq
		epoch := g.walkEpoch
		for g.walkEpoch == epoch {
			v.Wait(&g.agingDone)
		}
		return g.maxSeq != before
	}
	g.aging = true
	defer func() {
		g.aging = false
		g.walkEpoch++
		g.agingDone.Broadcast(v.Engine())
	}()

	g.stats.AgingRuns++

	room := g.nrGens() < g.cfg.MaxGens
	target := g.maxSeq
	if room {
		target = g.maxSeq + 1
	}

	table := g.k.Table()
	regions := table.Regions()
	for r := 0; r < regions; r++ {
		g.charge(v, g.cfg.Costs.RegionCheck)
		if table.RegionPresent(r) == 0 {
			g.stats.RegionsSkipped++
			continue
		}
		if !g.shouldScan(r) {
			g.stats.RegionsSkipped++
			continue
		}
		// The region's batch promotion holds the lruvec lock; fault-path
		// insertions and eviction isolation queue behind it. This is the
		// channel through which scan volume becomes fault latency.
		g.lock.Acquire(v)
		g.scanRegion(v, r, target)
		g.lock.Release(v)
	}

	if g.cfg.Mode == ModeBloom {
		// Swap filters: the one we just populated gates the next walk.
		g.cur, g.next = g.next, g.cur
		g.next.Clear()
	}
	if room {
		g.maxSeq++
		if g.nrGens() > g.cfg.MaxGens {
			panic("mglru: generation window exceeded MaxGens")
		}
		if g.tr != nil {
			g.tr.Instant(g.trTrack, "inc-max-seq", int64(g.maxSeq))
		}
		return true
	}
	return false
}

// shouldScan applies the variant's region filter.
func (g *MGLRU) shouldScan(r int) bool {
	switch g.cfg.Mode {
	case ModeAll:
		return true
	case ModeNone:
		return false
	case ModeRand:
		return g.rng.Bool(g.cfg.RandProb)
	default: // ModeBloom
		if g.cur.Adds() == 0 {
			return true // cold-start walk scans everything
		}
		return g.cur.MayContain(uint64(r))
	}
}

// scanRegion scans region r, clearing accessed bits and promoting the
// corresponding pages to generation target. It records the region in the
// next bloom filter when the accessed density meets the configured
// threshold (default: one accessed PTE per cache line of present PTEs).
// Shared by the aging walk and the eviction thread's spatial scan.
//
// The harvest itself is the table's HarvestRegion — a word-masked bitset
// iteration on the packed layout, a direct slice loop on the legacy one —
// which visits present-and-accessed pages in ascending VPN order, the
// order the historical PTE-slice loop promoted in.
func (g *MGLRU) scanRegion(v *sim.Env, r int, target uint64) {
	table := g.k.Table()
	present, accessed := table.HarvestRegion(r, func(_ pagetable.VPN, f mem.FrameID) {
		g.promote(f, target)
	})
	promoted := accessed
	perRegion := table.RegionPTEs()
	g.stats.RegionsScanned++
	g.stats.PTEScanned += uint64(perRegion)
	cost := g.cfg.Costs.PTEScan*sim.Duration(present) +
		g.cfg.Costs.HoleScan*sim.Duration(perRegion-present) +
		g.cfg.Costs.PageOp*sim.Duration(promoted)
	g.charge(v, cost)

	if g.cfg.Mode == ModeBloom && accessed > 0 &&
		accessed*g.cfg.BloomDensityDen >= present*g.cfg.BloomDensityNum {
		g.next.Add(uint64(r))
	}
}

// DebugState reports aging/lock internals (development aid).
func (g *MGLRU) DebugState() string {
	owner := "nil"
	if o := g.lock.DebugOwner(); o != nil {
		owner = o.Name()
	}
	return fmt.Sprintf("aging=%v lockOwner=%s waiters=%d agingDoneWaiters=%d min=%d max=%d",
		g.aging, owner, g.lock.DebugWaiters(), g.agingDone.Waiters(), g.minSeq, g.maxSeq)
}
