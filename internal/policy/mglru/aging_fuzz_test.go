package mglru

import (
	"fmt"
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy/policytest"
	"mglrusim/internal/sim"
)

// FuzzBloomWalkSoundness drives a random fault/touch/age stream through
// three scan variants and pins the walk soundness lattice around every
// aging pass:
//
//   - any variant: a region is either harvested whole (no accessed
//     present pages remain) or skipped untouched (its accessed count is
//     exactly what it was) — gating must never half-clear A bits;
//   - Scan-All: every region is harvested, so no accessed bits survive;
//   - Scan-None: no region is harvested, so every accessed bit survives;
//   - no variant's walk changes residency.
//
// Memory is sized to the full VA span so fault-ins never reclaim: the
// only thing moving A bits is the walk under test.
func FuzzBloomWalkSoundness(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 0, 40, 1, 40, 2, 0})
	f.Add([]byte{0, 10, 0, 200, 1, 10, 2, 0, 1, 200, 2, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, vc := range []struct {
			name string
			cfg  Config
		}{
			{"bloom", Default()},
			{"scan-all", ScanAll()},
			{"scan-none", ScanNone()},
		} {
			const regions = 8
			pages := regions * pagetable.PTEsPerRegion
			g, k := attach(vc.cfg, pages, regions, 7)
			var errs []string
			fail := func(format string, args ...any) {
				errs = append(errs, fmt.Sprintf(vc.name+": "+format, args...))
			}
			policytest.Run(func(v *sim.Env) {
				for i := 0; i+1 < len(data); i += 2 {
					op, a := data[i], data[i+1]
					vpn := pagetable.VPN((int(a)*17 + i*131) % pages)
					switch op % 4 {
					case 0:
						if !k.T.IsPresent(vpn) {
							k.FaultIn(v, g, vpn, false, false)
						}
					case 1:
						k.Touch(vpn, a&1 != 0)
					default:
						before := make([]int, regions)
						for r := 0; r < regions; r++ {
							_, before[r] = k.T.AccessedDensity(r)
						}
						resident := k.T.PresentPages()
						g.Age(v)
						if k.T.PresentPages() != resident {
							fail("aging changed residency: %d -> %d", resident, k.T.PresentPages())
							return
						}
						for r := 0; r < regions; r++ {
							_, after := k.T.AccessedDensity(r)
							if after != 0 && after != before[r] {
								fail("region %d half-harvested: accessed %d -> %d", r, before[r], after)
							}
							if vc.cfg.Mode == ModeAll && after != 0 {
								fail("scan-all left %d accessed pages in region %d", after, r)
							}
							if vc.cfg.Mode == ModeNone && after != before[r] {
								fail("scan-none touched region %d: accessed %d -> %d", r, before[r], after)
							}
						}
						if len(errs) > 0 {
							return
						}
					}
				}
			})
			if len(errs) > 0 {
				t.Fatalf("%v", errs)
			}
		}
	})
}
