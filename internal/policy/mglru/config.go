// Package mglru implements the Multi-Generational LRU replacement policy
// that the paper characterizes: multiple generation lists replacing the
// active/inactive pair, a background aging walk that scans page tables
// linearly (gated by a bloom filter over PMD regions), an eviction path
// that exploits page-table spatial locality around accessed pages, and a
// PID-controlled tier mechanism protecting frequently-refaulting
// file-backed pages.
//
// Every variant the paper evaluates is a Config of this package:
//
//	Default()   — kernel defaults: 4 generations, bloom-filtered aging
//	Gen14()     — 2^14 generations, so aging can always create a new
//	              youngest generation (§V-B)
//	ScanAll()   — aging scans every region (bloom disabled, always pass)
//	ScanNone()  — aging scans nothing; A bits are harvested only by the
//	              eviction thread's rmap + spatial scans
//	ScanRand(p) — aging scans each region with probability p
package mglru

import (
	"fmt"

	"mglrusim/internal/policy"
)

// ScanMode selects how the aging walk decides which PMD regions to scan.
type ScanMode int

const (
	// ModeBloom consults the bloom filter populated by the previous walk
	// and by the eviction thread (the kernel default).
	ModeBloom ScanMode = iota
	// ModeAll scans every region ("Scan-All").
	ModeAll
	// ModeNone scans no regions ("Scan-None").
	ModeNone
	// ModeRand scans each region with probability RandProb ("Scan-Rand").
	ModeRand
)

// String implements fmt.Stringer.
func (m ScanMode) String() string {
	switch m {
	case ModeBloom:
		return "bloom"
	case ModeAll:
		return "all"
	case ModeNone:
		return "none"
	case ModeRand:
		return "rand"
	}
	return fmt.Sprintf("ScanMode(%d)", int(m))
}

// Config parameterizes MG-LRU.
type Config struct {
	// VariantName labels this configuration in reports; empty derives a
	// name from the parameters.
	VariantName string
	// MaxGens is the maximum number of generations (kernel default 4,
	// "to double the number of lists used by Clock"). Gen-14 uses 2^14.
	MaxGens int
	// MinGens is the minimum generations eviction requires before it
	// forces aging (kernel MIN_NR_GENS = 2).
	MinGens int
	// Mode selects the aging scan filter.
	Mode ScanMode
	// RandProb is the per-region scan probability for ModeRand.
	RandProb float64
	// Tiers is the number of refault-tracking tiers (kernel: 4).
	Tiers int
	// SpatialScan enables the eviction thread's scan of PTEs surrounding
	// an accessed page found via the reverse map (§III-C). On by default;
	// the ablation benches switch it off.
	SpatialScan bool
	// TierProtection enables PID-controlled protection of higher tiers
	// (§III-D).
	TierProtection bool
	// NoFileGain disables the file-vs-anon gain controller while keeping
	// per-tier protection — the ablation arm that isolates the cross-type
	// balancer from the within-type tier shields. Zero value (file gain
	// on whenever TierProtection is) matches the kernel.
	NoFileGain bool
	// PIDKp and PIDKi are controller gains on tier refault imbalance.
	PIDKp, PIDKi float64
	// BloomDensityNum/Den: a scanned region is added to the next walk's
	// filter when accessed*Den >= present*Num — the default 1/8 encodes
	// "at least one accessed PTE per 8-PTE cache line" from §III-B.
	BloomDensityNum, BloomDensityDen int
	// ScanBatch bounds eviction-pass work per requested page.
	ScanBatch int
	// TrackRegions maintains per-generation region bitsets (with packed
	// intra-region occupancy counts) mirroring list membership. The
	// tracker is pure verification state — it never influences eviction
	// or aging decisions — and backs the auditor's generation/region
	// cross-check and the bloom-gated-walk soundness tests. Off by
	// default; dense per-generation state makes it unsuitable for Gen-14.
	TrackRegions bool
	// Costs is the shared scanning cost model.
	Costs policy.Costs
}

// Default returns the kernel-default MG-LRU configuration.
func Default() Config {
	return Config{
		VariantName:     "mglru",
		MaxGens:         4,
		MinGens:         2,
		Mode:            ModeBloom,
		Tiers:           4,
		SpatialScan:     true,
		TierProtection:  true,
		PIDKp:           1.0,
		PIDKi:           0.1,
		BloomDensityNum: 1,
		BloomDensityDen: 16,
		ScanBatch:       32,
		Costs:           policy.DefaultCosts(),
	}
}

// Gen14 returns the paper's Gen-14 variant: 2^14 generations, everything
// else default.
func Gen14() Config {
	c := Default()
	c.VariantName = "gen14"
	c.MaxGens = 1 << 14
	return c
}

// ScanAll returns the Scan-All variant.
func ScanAll() Config {
	c := Default()
	c.VariantName = "scan-all"
	c.Mode = ModeAll
	return c
}

// ScanNone returns the Scan-None variant.
func ScanNone() Config {
	c := Default()
	c.VariantName = "scan-none"
	c.Mode = ModeNone
	return c
}

// ScanRand returns the Scan-Rand variant with scan probability p
// (the paper uses 0.5).
func ScanRand(p float64) Config {
	c := Default()
	c.VariantName = "scan-rand"
	c.Mode = ModeRand
	c.RandProb = p
	return c
}

// normalize fills defaults and validates.
func (c *Config) normalize() {
	if c.MaxGens < 2 {
		panic("mglru: MaxGens must be at least 2")
	}
	if c.MaxGens > 1<<15 {
		panic("mglru: MaxGens too large for list identifiers")
	}
	if c.MinGens < 2 {
		c.MinGens = 2
	}
	if c.MinGens > c.MaxGens {
		panic("mglru: MinGens exceeds MaxGens")
	}
	if c.Tiers <= 0 {
		c.Tiers = 4
	}
	if c.ScanBatch <= 0 {
		c.ScanBatch = 32
	}
	if c.BloomDensityDen <= 0 {
		c.BloomDensityNum, c.BloomDensityDen = 1, 8
	}
	if c.Mode == ModeRand && (c.RandProb <= 0 || c.RandProb > 1) {
		c.RandProb = 0.5
	}
	if c.VariantName == "" {
		c.VariantName = "mglru-" + c.Mode.String()
	}
}
