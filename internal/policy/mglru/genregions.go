package mglru

import (
	"fmt"
	"math/bits"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
)

// genRegions mirrors generation membership at region granularity: for
// each live generation slot it keeps a region bitset plus a packed
// per-region page count (the intra-region cursor state), updated at every
// list transition. The structure is the bitset-backed view of the
// generation ring that the invariant auditor cross-checks against the
// intrusive lists, and the ground truth the bloom-gated-walk tests
// compare filters against: a region is in generation seq's set iff some
// page of that region is on seq's list.
type genRegions struct {
	regions int
	words   int
	counts  [][]uint16 // [slot][region] pages of region on the slot's list
	bits    [][]uint64 // [slot][word] summary bitset over regions
}

func newGenRegions(maxGens, regions int) *genRegions {
	words := (regions + 63) / 64
	gr := &genRegions{
		regions: regions,
		words:   words,
		counts:  make([][]uint16, maxGens),
		bits:    make([][]uint64, maxGens),
	}
	for i := range gr.counts {
		gr.counts[i] = make([]uint16, regions)
		gr.bits[i] = make([]uint64, words)
	}
	return gr
}

func (gr *genRegions) slot(seq uint64) int { return int(seq % uint64(len(gr.counts))) }

func (gr *genRegions) add(seq uint64, r int) {
	s := gr.slot(seq)
	gr.counts[s][r]++
	gr.bits[s][r/64] |= 1 << (uint(r) % 64)
}

func (gr *genRegions) remove(seq uint64, r int) {
	s := gr.slot(seq)
	if gr.counts[s][r] == 0 {
		panic("mglru: region tracker underflow")
	}
	gr.counts[s][r]--
	if gr.counts[s][r] == 0 {
		gr.bits[s][r/64] &^= 1 << (uint(r) % 64)
	}
}

// has reports whether any page of region r sits on generation seq's list.
func (gr *genRegions) has(seq uint64, r int) bool {
	return gr.bits[gr.slot(seq)][r/64]&(1<<(uint(r)%64)) != 0
}

// each iterates generation seq's regions in ascending order.
func (gr *genRegions) each(seq uint64, fn func(r int) bool) {
	b := gr.bits[gr.slot(seq)]
	for w := 0; w < gr.words; w++ {
		word := b[w]
		for word != 0 {
			r := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if !fn(r) {
				return
			}
		}
	}
}

// regionCount reports how many distinct regions generation seq occupies.
func (gr *genRegions) regionCount(seq uint64) int {
	n := 0
	for _, w := range gr.bits[gr.slot(seq)] {
		n += bits.OnesCount64(w)
	}
	return n
}

// --- MGLRU hooks -----------------------------------------------------

// trackAdd/trackRemove mirror a frame entering/leaving generation seq's
// list. Callers pass the frame while its VPN is still valid (resident or
// freshly isolated).
func (g *MGLRU) trackAdd(seq uint64, fr *mem.Frame) {
	if g.genRegs != nil {
		g.genRegs.add(seq, g.k.Table().RegionOf(pagetable.VPN(fr.VPN)))
	}
}

func (g *MGLRU) trackRemove(seq uint64, fr *mem.Frame) {
	if g.genRegs != nil {
		g.genRegs.remove(seq, g.k.Table().RegionOf(pagetable.VPN(fr.VPN)))
	}
}

// GenRegionCount reports how many distinct page-table regions hold pages
// of generation seq; zero when tracking is off.
func (g *MGLRU) GenRegionCount(seq uint64) int {
	if g.genRegs == nil {
		return 0
	}
	return g.genRegs.regionCount(seq)
}

// GenHasRegion reports whether generation seq holds any page of region r;
// false when tracking is off.
func (g *MGLRU) GenHasRegion(seq uint64, r int) bool {
	return g.genRegs != nil && g.genRegs.has(seq, r)
}

// CheckInvariants recomputes the region occupancy of every live
// generation from the intrusive lists and diffs it against the tracker.
// The invariant auditor registers it when auditing a tracking-enabled
// MG-LRU; it returns nil when tracking is off.
func (g *MGLRU) CheckInvariants() error {
	if g.genRegs == nil {
		return nil
	}
	table := g.k.Table()
	memry := g.k.Mem()
	for seq := g.minSeq; seq <= g.maxSeq; seq++ {
		want := make(map[int]int)
		g.genList(seq).Each(func(f mem.FrameID) bool {
			fr := memry.Frame(f)
			if fr.Gen != seq {
				return true // cross-checked by the auditor's generation scan
			}
			want[table.RegionOf(pagetable.VPN(fr.VPN))]++
			return true
		})
		got := 0
		var err error
		g.genRegs.each(seq, func(r int) bool {
			got++
			if int(g.genRegs.counts[g.genRegs.slot(seq)][r]) != want[r] {
				err = fmt.Errorf("gen %d region %d: tracker holds %d pages, lists hold %d",
					seq, r, g.genRegs.counts[g.genRegs.slot(seq)][r], want[r])
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if got != len(want) {
			return fmt.Errorf("gen %d: tracker covers %d regions, lists cover %d", seq, got, len(want))
		}
	}
	return nil
}
