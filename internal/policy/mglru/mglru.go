package mglru

import (
	"fmt"

	"mglrusim/internal/bloom"
	"mglrusim/internal/mem"
	"mglrusim/internal/pidctl"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
	"mglrusim/internal/telemetry"
)

// MGLRU is the Multi-Generational LRU policy.
type MGLRU struct {
	cfg Config
	k   policy.Kernel
	rng *sim.RNG

	// Generation ring: gens[seq % MaxGens] is the list for sequence seq.
	// Sequences in [minSeq, maxSeq] are live.
	gens   []*mem.List
	minSeq uint64
	maxSeq uint64

	tiers *pidctl.TierSet

	// fileGain, non-nil under TierProtection, watches the file-vs-anon
	// refault balance: when evicted file pages refault harder than anon
	// ones, eviction skips upper-tier file pages so the file tier is
	// protected under refault imbalance (§III-D applied across the
	// file/anon split, the way the kernel balances its two LRU types).
	fileGain *pidctl.TierGain

	// lock is the lruvec lock: list mutations from the fault path, the
	// eviction path, and the aging walk all serialize on it.
	lock policy.LRULock

	// aging guards the walk itself: only one max_seq increment can be in
	// flight (the kernel's try_to_inc_max_seq serialization). Concurrent
	// callers wait for the in-flight walk instead of double-incrementing.
	// walkEpoch counts completed walks so a waiter returns as soon as
	// the walk it raced with finishes, even if the aging daemon starts
	// the next walk back-to-back.
	aging     bool
	walkEpoch uint64
	agingDone sim.Cond

	// Split bloom filters: cur gates the current aging walk, next is
	// populated during the walk (and by the eviction thread's spatial
	// scans) for the following walk.
	cur, next *bloom.Filter

	// genRegs, when TrackRegions is set, mirrors generation membership as
	// per-generation region bitsets (verification only; see genregions.go).
	genRegs *genRegions

	// tr, when non-nil, receives generation-window instants; nil tracing
	// costs one pointer check at each site.
	tr      *telemetry.Tracer
	trTrack telemetry.TrackID

	stats policy.Stats
}

// New creates an MG-LRU policy from cfg.
func New(cfg Config) *MGLRU {
	cfg.normalize()
	return &MGLRU{cfg: cfg}
}

// Name implements policy.Policy.
func (g *MGLRU) Name() string { return g.cfg.VariantName }

// Attach implements policy.Policy.
func (g *MGLRU) Attach(k policy.Kernel) {
	g.k = k
	g.rng = k.Rand()
	g.gens = make([]*mem.List, g.cfg.MaxGens)
	for i := range g.gens {
		g.gens[i] = mem.NewList(k.Mem(), int16(i))
	}
	g.minSeq = 0
	g.maxSeq = uint64(g.cfg.MinGens - 1) // start with MinGens generations
	g.tiers = pidctl.NewTierSet(g.cfg.Tiers, g.cfg.PIDKp, g.cfg.PIDKi)
	if g.cfg.TierProtection && !g.cfg.NoFileGain {
		g.fileGain = pidctl.NewTierGain(g.cfg.PIDKp, g.cfg.PIDKi)
	}
	regions := k.Table().Regions()
	seed := g.rng.Uint64()
	g.cur = bloom.NewForItems(regions, seed)
	g.next = bloom.NewForItems(regions, seed^0xabcdef123456789)
	if g.cfg.TrackRegions {
		g.genRegs = newGenRegions(g.cfg.MaxGens, regions)
	}
}

// RegisterTelemetry implements telemetry.Registrant: the generation window
// and per-slot ring occupancy become gauges (the per-generation series
// policyviz renders), and window movements become instants on an "mglru"
// track. Call after Attach.
func (g *MGLRU) RegisterTelemetry(tr *telemetry.Tracer) {
	g.tr = tr
	if tr == nil {
		return
	}
	g.trTrack = tr.Track("mglru")
	tr.Gauge("mglru.min_seq", func() int64 { return int64(g.minSeq) })
	tr.Gauge("mglru.max_seq", func() int64 { return int64(g.maxSeq) })
	for i := range g.gens {
		l := g.gens[i]
		tr.Gauge(fmt.Sprintf("mglru.gen%d.len", i), func() int64 { return int64(l.Len()) })
	}
	if g.cfg.TierProtection {
		// Tier control positions: the raw evicted/refaulted counts behind
		// the PID decisions, so policyviz can plot per-tier refault ratios.
		for t := 0; t < g.cfg.Tiers; t++ {
			t := t
			tr.Gauge(fmt.Sprintf("mglru.tier%d.evicted", t),
				func() int64 { return int64(g.tiers.Snapshot(t).Evicted) })
			tr.Gauge(fmt.Sprintf("mglru.tier%d.refaulted", t),
				func() int64 { return int64(g.tiers.Snapshot(t).Refaulted) })
		}
	}
	if g.fileGain != nil {
		tr.Gauge("mglru.file_gain.anon_evicted", func() int64 { a, _ := g.fileGain.Snapshot(); return int64(a.Evicted) })
		tr.Gauge("mglru.file_gain.anon_refaulted", func() int64 { a, _ := g.fileGain.Snapshot(); return int64(a.Refaulted) })
		tr.Gauge("mglru.file_gain.file_evicted", func() int64 { _, f := g.fileGain.Snapshot(); return int64(f.Evicted) })
		tr.Gauge("mglru.file_gain.file_refaulted", func() int64 { _, f := g.fileGain.Snapshot(); return int64(f.Refaulted) })
		tr.Gauge("mglru.file_gain.protecting", func() int64 {
			if g.fileGain.Protecting() {
				return 1
			}
			return 0
		})
	}
}

// genList returns the list for sequence seq.
func (g *MGLRU) genList(seq uint64) *mem.List { return g.gens[seq%uint64(g.cfg.MaxGens)] }

// nrGens reports the live generation count.
func (g *MGLRU) nrGens() int { return int(g.maxSeq-g.minSeq) + 1 }

// MinSeq and MaxSeq expose the generation window for tests and policyviz.
func (g *MGLRU) MinSeq() uint64 { return g.minSeq }
func (g *MGLRU) MaxSeq() uint64 { return g.maxSeq }

// GenLen reports the population of generation seq.
func (g *MGLRU) GenLen(seq uint64) int { return g.genList(seq).Len() }

// tierOf maps an FD-reference count to a tier: log2(refs+1), capped.
func (g *MGLRU) tierOf(refs uint8) uint8 {
	t := 0
	for v := int(refs) + 1; v > 1 && t < g.cfg.Tiers-1; v >>= 1 {
		t++
	}
	return uint8(t)
}

func (g *MGLRU) charge(v *sim.Env, d sim.Duration) {
	g.stats.ScanCPU += d
	v.Charge(d)
}

// PageIn implements policy.Policy. Anonymous pages enter the youngest
// generation. File-backed pages enter an old generation and are promoted
// by tier as repeat FD accesses accumulate (§III-D), so single-use
// streaming reads never displace the working set.
func (g *MGLRU) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	g.lock.Acquire(v)
	defer g.lock.Release(v)
	fr := g.k.Mem().Frame(f)
	if sh != nil {
		g.stats.Refaults++
		fr.Flags |= mem.FlagWorkingset
		if g.cfg.TierProtection {
			t := sh.Tier
			if int(t) >= g.cfg.Tiers {
				t = uint8(g.cfg.Tiers - 1)
			}
			g.tiers.RecordRefault(int(t))
		}
		if g.fileGain != nil {
			g.fileGain.RecordRefault(fr.Flags&mem.FlagFile != 0)
		}
	}
	// Second-oldest generation when the window allows, else oldest.
	oldGen := g.minSeq
	if g.nrGens() > 2 {
		oldGen = g.minSeq + 1
	}
	switch {
	case fr.Flags&mem.FlagFile != 0:
		// First-use file pages never enter the youngest generation, so
		// single-use streaming reads cannot displace the working set;
		// repeat FD accesses climb tiers instead. A refault is the
		// exception: workingset_refault activates the folio, so the page
		// that came back enters the youngest generation directly.
		refs := uint8(0)
		if sh != nil && sh.Refs < 255 {
			refs = sh.Refs + 1
		}
		fr.Refs = refs
		fr.Tier = g.tierOf(refs)
		fr.Gen = oldGen
		if sh != nil {
			fr.Gen = g.maxSeq
		}
	case fr.Flags&mem.FlagPrefetch != 0:
		// Speculative readahead pages have not actually been accessed;
		// they must prove themselves from an old generation.
		fr.Gen = oldGen
		fr.Tier = 0
		fr.Refs = 0
	default:
		fr.Gen = g.maxSeq
		fr.Tier = 0
		fr.Refs = 0
	}
	g.genList(fr.Gen).PushHead(f)
	g.trackAdd(fr.Gen, fr)
	g.charge(v, g.cfg.Costs.PageOp)
}

// promote moves frame f to generation seq (head). A frame that is on no
// list has been isolated by a concurrent eviction pass and is skipped —
// the simulator's analogue of the kernel isolating pages under the LRU
// lock before working on them.
func (g *MGLRU) promote(f mem.FrameID, seq uint64) {
	fr := g.k.Mem().Frame(f)
	if fr.ListID == mem.ListNone {
		return
	}
	if fr.Gen == seq {
		// Refresh recency within the generation.
		g.genList(seq).MoveToHead(f)
		return
	}
	g.genList(fr.Gen).Remove(f)
	g.trackRemove(fr.Gen, fr)
	fr.Gen = seq
	g.genList(seq).PushHead(f)
	g.trackAdd(seq, fr)
	g.stats.Promoted++
}

// advanceMinSeq retires empty oldest generations, keeping at least
// MinGens live; each retirement is a tier control period boundary.
func (g *MGLRU) advanceMinSeq() {
	for g.nrGens() > g.cfg.MinGens && g.genList(g.minSeq).Empty() {
		g.minSeq++
		g.tiers.Decay()
		if g.fileGain != nil {
			g.fileGain.Decay()
		}
		if g.tr != nil {
			g.tr.Instant(g.trTrack, "inc-min-seq", int64(g.minSeq))
		}
	}
}

// NeedsAging implements policy.Policy: aging must run when eviction is
// about to eat into the minimum generation window, or when the oldest
// generation has drained.
func (g *MGLRU) NeedsAging() bool {
	if g.nrGens() < g.cfg.MinGens {
		return true
	}
	if g.nrGens() == g.cfg.MinGens && g.genList(g.minSeq).Empty() {
		return true
	}
	return false
}

// Reclaim implements policy.Policy: evict from the tail of the oldest
// generation, walking the reverse map to confirm each candidate's
// accessed bit, promoting accessed pages to the youngest generation and —
// unlike Clock — opportunistically scanning the surrounding PTEs (§III-C).
func (g *MGLRU) Reclaim(v *sim.Env, target int) int {
	if target <= 0 {
		return 0
	}
	evicted := 0
	budget := target*g.cfg.ScanBatch + g.cfg.ScanBatch

	allowTier := g.cfg.Tiers - 1
	if g.cfg.TierProtection && g.cfg.Tiers > 1 {
		allowTier = g.tiers.ProtectedTier(1)
	}
	// One file-gain decision per reclaim pass (a control period). When
	// active, eviction pressure is steered onto the anon side — the
	// kernel's get_type_to_scan picking the type whose evictions are NOT
	// coming back; the progress fallback below keeps reclaim live when
	// the tail holds nothing but file pages.
	protectFile := false
	if g.fileGain != nil {
		protectFile = g.fileGain.ProtectFile(1)
	}
	// shielded counts candidates tier protection or the file shield
	// turned away this pass — the progress-guarantee fallback below keys
	// off it.
	shielded := 0

scan:
	for evicted < target && budget > 0 {
		g.lock.Acquire(v)
		g.advanceMinSeq()
		oldest := g.genList(g.minSeq)
		if oldest.Empty() && g.k.Table().PresentPages() == 0 {
			g.lock.Release(v)
			break // nothing resident anywhere
		}
		if oldest.Empty() {
			// Everything younger is protected by the generation window;
			// force aging to open a new youngest generation, then retry.
			g.lock.Release(v)
			g.k.RequestAging()
			if !g.Age(v) {
				break
			}
			continue
		}
		if g.nrGens() < g.cfg.MinGens {
			g.lock.Release(v)
			g.k.RequestAging()
			g.Age(v)
			continue
		}

		// Isolate the candidate under the lock, so concurrent
		// aging/reclaim passes cannot move it.
		f := oldest.PopTail()
		fr := g.k.Mem().Frame(f)
		g.trackRemove(fr.Gen, fr)
		budget--

		// Tier protection: protected pages are moved to the youngest
		// generation instead of being considered for eviction (the
		// kernel's folio_inc_gen in sort_folio) — one rotation buys a
		// full generation window of protection, instead of the page
		// reappearing as a candidate on the very next pass.
		if int(fr.Tier) > allowTier ||
			(protectFile && fr.Flags&mem.FlagFile != 0) {
			shielded++
			if int(fr.Tier) <= allowTier {
				g.stats.FileProtected++
			}
			fr.Gen = g.maxSeq
			// Protection is a second chance, not a grant of tenure: the
			// kernel's folio_inc_gen clears LRU_REFS_MASK, so the page
			// must re-earn its tier through fresh accesses before the
			// next time it reaches the tail.
			fr.Refs = 0
			fr.Tier = 0
			g.genList(fr.Gen).PushHead(f)
			g.trackAdd(fr.Gen, fr)
			g.stats.TierProtected++
			g.charge(v, g.cfg.Costs.PageOp)
			g.lock.Release(v)
			continue
		}
		g.lock.Release(v)

		// The reverse-map confirmation happens without the lock, as in
		// the kernel (the folio is isolated).
		vpn, cost := g.k.RMap().Walk(f)
		g.stats.RMapWalks++
		g.charge(v, cost+g.cfg.Costs.PageOp)

		if g.k.Table().TestAndClearAccessed(vpn) {
			// Accessed since last scan: promote to youngest and exploit
			// spatial locality around the hot PTE.
			g.lock.Acquire(v)
			fr.Gen = g.maxSeq
			g.genList(fr.Gen).PushHead(f)
			g.trackAdd(fr.Gen, fr)
			g.stats.Rotated++
			if fr.Flags&mem.FlagFile != 0 && fr.Refs < 255 {
				fr.Refs++
				fr.Tier = g.tierOf(fr.Refs)
			}
			if g.cfg.SpatialScan {
				r := g.k.Table().RegionOf(vpn)
				g.scanRegion(v, r, g.maxSeq)
				// Feedback into the aging walk's next filter.
				if g.cfg.Mode == ModeBloom {
					g.next.Add(uint64(r))
				}
			}
			g.lock.Release(v)
			continue
		}

		// Cold: evict. The frame is already isolated; eviction I/O
		// happens without the lock.
		sh := policy.Shadow{Gen: fr.Gen, Tier: fr.Tier, Refs: fr.Refs, EvictedAt: v.Now()}
		if g.cfg.TierProtection {
			g.tiers.RecordEviction(int(fr.Tier))
		}
		if g.fileGain != nil {
			g.fileGain.RecordEviction(fr.Flags&mem.FlagFile != 0)
		}
		g.stats.Evicted++
		g.k.EvictPage(v, f, sh)
		evicted++
	}
	// Progress guarantee: a whole pass that evicts nothing while
	// protection turned candidates away means the oldest generations hold
	// only protected pages (hot-tier file pages under refault imbalance).
	// Memory pressure outranks tier balance — the kernel's equivalent is
	// scan-priority escalation ignoring protection — so drop every shield,
	// refill the scan budget, and retry once.
	if evicted == 0 && shielded > 0 && (allowTier < g.cfg.Tiers-1 || protectFile) {
		allowTier = g.cfg.Tiers - 1
		protectFile = false
		shielded = 0
		budget = target*g.cfg.ScanBatch + g.cfg.ScanBatch
		goto scan
	}
	return evicted
}

// FileGain exposes the file-vs-anon gain state, nil unless
// TierProtection is on (tests and visualization tools).
func (g *MGLRU) FileGain() *pidctl.TierGain { return g.fileGain }

// LockStats exposes lruvec-lock contention counters.
func (g *MGLRU) LockStats() (acquisitions, contended uint64, waitTime sim.Duration) {
	return g.lock.Acquisitions, g.lock.Contended, g.lock.WaitTime
}

// DebugLock implements policy.LockDebugger.
func (g *MGLRU) DebugLock() *policy.LRULock { return &g.lock }

// Stats implements policy.Policy.
func (g *MGLRU) Stats() policy.Stats { return g.stats }

var _ policy.Policy = (*MGLRU)(nil)
