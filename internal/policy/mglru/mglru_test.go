package mglru

import (
	"testing"
	"testing/quick"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy/policytest"
	"mglrusim/internal/sim"
)

func attach(cfg Config, frames, regions int, seed uint64) (*MGLRU, *policytest.Kernel) {
	g := New(cfg)
	k := policytest.New(frames, regions, seed)
	g.Attach(k)
	return g, k
}

func TestVariantNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Default(), "mglru"},
		{Gen14(), "gen14"},
		{ScanAll(), "scan-all"},
		{ScanNone(), "scan-none"},
		{ScanRand(0.5), "scan-rand"},
	}
	for _, c := range cases {
		if got := New(c.cfg).Name(); got != c.want {
			t.Errorf("name = %q, want %q", got, c.want)
		}
	}
}

func TestAnonPageInGoesToYoungest(t *testing.T) {
	g, k := attach(Default(), 32, 1, 1)
	policytest.Run(func(v *sim.Env) {
		f := k.FaultIn(v, g, 0, false, false)
		fr := k.M.Frame(f)
		if fr.Gen != g.MaxSeq() {
			t.Errorf("gen = %d, want youngest %d", fr.Gen, g.MaxSeq())
		}
	})
}

func TestFilePageInGoesToOldGeneration(t *testing.T) {
	g, k := attach(Default(), 32, 1, 1)
	policytest.Run(func(v *sim.Env) {
		f := k.FaultIn(v, g, 0, false, true)
		fr := k.M.Frame(f)
		if fr.Gen == g.MaxSeq() {
			t.Errorf("file page placed in youngest generation")
		}
		if fr.Gen != g.MinSeq() {
			t.Errorf("gen = %d, want oldest %d (window of 2)", fr.Gen, g.MinSeq())
		}
	})
}

func TestAgingCreatesNewGenerationAndPromotes(t *testing.T) {
	g, k := attach(Default(), 64, 2, 1)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 8; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
		}
		// Cool half, keep half hot (A bits set from fault-in).
		for vpn := pagetable.VPN(0); vpn < 4; vpn++ {
			k.T.TestAndClearAccessed(vpn)
		}
		before := g.MaxSeq()
		if !g.Age(v) {
			t.Error("aging with room should create a generation")
		}
		if g.MaxSeq() != before+1 {
			t.Errorf("maxSeq = %d, want %d", g.MaxSeq(), before+1)
		}
		// Hot pages should now be in the new youngest.
		for vpn := pagetable.VPN(4); vpn < 8; vpn++ {
			f, _ := k.T.Walk(vpn, false)
			if k.M.Frame(f).Gen != g.MaxSeq() {
				t.Errorf("hot page %d not promoted", vpn)
			}
		}
		// Cold pages stayed in the old generation.
		f, _ := k.T.Walk(0, false)
		if k.M.Frame(f).Gen == g.MaxSeq() {
			t.Error("cold page promoted")
		}
	})
}

func TestAgingAtMaxGensPromotesIntoSameGeneration(t *testing.T) {
	cfg := Default()
	cfg.MaxGens = 2 // window always full
	g, k := attach(cfg, 32, 1, 1)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, g, 0, false, false)
		before := g.MaxSeq()
		if g.Age(v) {
			t.Error("aging without room should report no new generation")
		}
		if g.MaxSeq() != before {
			t.Errorf("maxSeq advanced without room")
		}
	})
}

func TestGen14AlwaysHasRoom(t *testing.T) {
	g, k := attach(Gen14(), 32, 1, 1)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, g, 0, false, false)
		for i := 0; i < 100; i++ {
			k.Touch(0, false)
			if !g.Age(v) {
				t.Fatalf("gen14 ran out of room at iteration %d", i)
			}
		}
	})
	if g.MaxSeq()-g.MinSeq() < 100 {
		t.Fatalf("generation window too small: [%d, %d]", g.MinSeq(), g.MaxSeq())
	}
}

func TestScanNoneSkipsAllRegions(t *testing.T) {
	g, k := attach(ScanNone(), 64, 4, 1)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 16; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
		}
		g.Age(v)
	})
	st := g.Stats()
	if st.RegionsScanned != 0 {
		t.Fatalf("scan-none scanned %d regions", st.RegionsScanned)
	}
	if st.RegionsSkipped == 0 {
		t.Fatal("regions not accounted as skipped")
	}
}

func TestScanAllScansEveryPopulatedRegion(t *testing.T) {
	g, k := attach(ScanAll(), 3000, 4, 1)
	policytest.Run(func(v *sim.Env) {
		// Populate regions 0 and 2, leave 1 and 3 as holes.
		for i := 0; i < 10; i++ {
			k.FaultIn(v, g, pagetable.VPN(i), false, false)
			k.FaultIn(v, g, pagetable.VPN(2*pagetable.PTEsPerRegion+i), false, false)
		}
		g.Age(v)
	})
	st := g.Stats()
	if st.RegionsScanned != 2 {
		t.Fatalf("scanned %d regions, want 2 (populated only)", st.RegionsScanned)
	}
	if st.RegionsSkipped != 2 {
		t.Fatalf("skipped %d, want 2 (holes)", st.RegionsSkipped)
	}
}

func TestBloomColdStartScansEverything(t *testing.T) {
	g, k := attach(Default(), 3000, 4, 1)
	policytest.Run(func(v *sim.Env) {
		for i := 0; i < 10; i++ {
			k.FaultIn(v, g, pagetable.VPN(i), false, false)
		}
		g.Age(v)
	})
	if g.Stats().RegionsScanned != 1 {
		t.Fatalf("cold-start walk scanned %d populated regions, want 1", g.Stats().RegionsScanned)
	}
}

func TestBloomFiltersColdRegionsOnSecondWalk(t *testing.T) {
	g, k := attach(Default(), 3000, 4, 1)
	policytest.Run(func(v *sim.Env) {
		// Region 0: dense hot. Region 2: populated but will be cold.
		for i := 0; i < 64; i++ {
			k.FaultIn(v, g, pagetable.VPN(i), false, false)
			k.FaultIn(v, g, pagetable.VPN(2*pagetable.PTEsPerRegion+i), false, false)
		}
		// First walk (cold start): sees region 0 dense (A bits set) and
		// region 2 dense too. Cool region 2 afterwards and re-heat only
		// region 0.
		g.Age(v)
		for i := 0; i < 64; i++ {
			k.Touch(pagetable.VPN(i), false)
		}
		// Second walk: filter from walk 1 contains both; scans both, but
		// only region 0 qualifies for the next filter now.
		g.Age(v)
		scannedBefore := g.Stats().RegionsScanned
		// Third walk: only region 0 should pass the filter.
		for i := 0; i < 64; i++ {
			k.Touch(pagetable.VPN(i), false)
		}
		g.Age(v)
		if got := g.Stats().RegionsScanned - scannedBefore; got != 1 {
			t.Fatalf("third walk scanned %d regions, want 1 (bloom-filtered)", got)
		}
	})
}

func TestReclaimEvictsFromOldestGeneration(t *testing.T) {
	g, k := attach(Default(), 64, 1, 1)
	policytest.Run(func(v *sim.Env) {
		// Old pages 0..3, then age, then young pages 4..7.
		for vpn := pagetable.VPN(0); vpn < 4; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
			k.T.TestAndClearAccessed(vpn)
		}
		g.Age(v)
		for vpn := pagetable.VPN(4); vpn < 8; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
			k.T.TestAndClearAccessed(vpn)
		}
		n := g.Reclaim(v, 2)
		if n != 2 {
			t.Errorf("reclaimed %d, want 2", n)
		}
	})
	for _, vpn := range k.EvictOrder {
		if vpn >= 4 {
			t.Fatalf("young page %d evicted before old pages: %v", vpn, k.EvictOrder)
		}
	}
}

func TestEvictionPromotesAccessedToYoungest(t *testing.T) {
	// Scan-None keeps aging from harvesting the A bit first, so the
	// eviction-side rmap walk must find and promote the hot page.
	g, k := attach(ScanNone(), 64, 1, 1)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 4; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
			k.T.TestAndClearAccessed(vpn)
		}
		k.Touch(0, false) // page 0 hot again
		g.Reclaim(v, 1)
		f, ok := k.T.Walk(0, false)
		if !ok {
			t.Fatal("accessed page was evicted")
		}
		if k.M.Frame(f).Gen != g.MaxSeq() {
			t.Errorf("accessed page not promoted to youngest")
		}
	})
	if g.Stats().Rotated == 0 {
		t.Fatal("rotation not counted")
	}
}

func TestSpatialScanPromotesNeighbours(t *testing.T) {
	g, k := attach(Default(), 2000, 2, 1)
	policytest.Run(func(v *sim.Env) {
		// Many cold pages plus one hot page; its hot neighbours in the
		// same region should be promoted without individual rmap walks.
		for vpn := pagetable.VPN(0); vpn < 300; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
			k.T.TestAndClearAccessed(vpn)
		}
		// Heat page 0 (oldest tail region) and neighbours 1..9.
		for vpn := pagetable.VPN(0); vpn < 10; vpn++ {
			k.Touch(vpn, false)
		}
		before := g.Stats().RMapWalks
		g.Reclaim(v, 5)
		walks := g.Stats().RMapWalks - before
		// Spatial scan should have promoted neighbours in one region
		// scan; far fewer walks than 10 promotions + 5 evictions each
		// needing a walk individually is the point of the mechanism.
		if g.Stats().PTEScanned == 0 {
			t.Fatal("spatial scan never ran")
		}
		_ = walks
	})
	if g.Stats().Promoted == 0 {
		t.Fatal("no neighbours promoted")
	}
}

func TestSpatialScanDisabled(t *testing.T) {
	cfg := ScanNone() // aging scans nothing, so any PTE scan would be spatial
	cfg.SpatialScan = false
	g, k := attach(cfg, 256, 1, 1)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 20; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
			k.T.TestAndClearAccessed(vpn)
		}
		k.Touch(0, false)
		g.Reclaim(v, 2)
	})
	if g.Stats().PTEScanned != 0 {
		t.Fatalf("spatial scan ran despite being disabled: %d PTEs", g.Stats().PTEScanned)
	}
}

func TestTierProtectionSparesHotFileTier(t *testing.T) {
	g, k := attach(Default(), 256, 1, 1)
	policytest.Run(func(v *sim.Env) {
		// Build refault history: tier 1 refaults much more than tier 0.
		for i := 0; i < 40; i++ {
			g.tiers.RecordEviction(0)
		}
		for i := 0; i < 20; i++ {
			g.tiers.RecordEviction(1)
			g.tiers.RecordRefault(1)
		}
		// A cold file page in tier 1 at the oldest generation tail.
		f := k.FaultIn(v, g, 0, false, true)
		fr := k.M.Frame(f)
		fr.Refs = 1
		fr.Tier = 1
		k.T.TestAndClearAccessed(0)
		// And a cold anon page that is evictable.
		k.FaultIn(v, g, 1, false, false)
		k.T.TestAndClearAccessed(1)
		g.Reclaim(v, 1)
	})
	if _, evicted := k.Shadows[0]; evicted {
		t.Fatal("protected tier-1 page was evicted")
	}
	if g.Stats().TierProtected == 0 {
		t.Fatal("tier protection never engaged")
	}
}

func TestRefaultRecordsShadowGenAndTier(t *testing.T) {
	g, k := attach(Default(), 64, 1, 1)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, g, 7, false, false)
		k.T.TestAndClearAccessed(7)
		g.Reclaim(v, 1)
		sh, ok := k.Shadows[7]
		if !ok {
			t.Fatal("no shadow after eviction")
		}
		if sh.Gen != g.MinSeq() && sh.Gen > g.MaxSeq() {
			t.Errorf("shadow gen = %d outside window", sh.Gen)
		}
		k.FaultIn(v, g, 7, false, false)
	})
	if g.Stats().Refaults != 1 {
		t.Fatalf("refaults = %d", g.Stats().Refaults)
	}
}

func TestNeedsAgingWhenWindowShort(t *testing.T) {
	g, k := attach(Default(), 64, 1, 1)
	policytest.Run(func(v *sim.Env) {
		if g.NeedsAging() {
			// fresh policy with empty oldest gen and MinGens window
			// legitimately wants aging; fault some pages in.
		}
		for vpn := pagetable.VPN(0); vpn < 4; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
		}
		g.Age(v) // window now 3 gens
		if g.NeedsAging() {
			t.Error("window of 3 gens should not need aging")
		}
	})
}

func TestReclaimForcesAgingWhenOldestDrained(t *testing.T) {
	g, k := attach(Default(), 256, 1, 1)
	var reclaimed int
	policytest.Run(func(v *sim.Env) {
		// All pages land in the youngest generation; the oldest is empty,
		// so reclaim must age its way to progress.
		for vpn := pagetable.VPN(0); vpn < 8; vpn++ {
			k.FaultIn(v, g, vpn, false, false)
			k.T.TestAndClearAccessed(vpn)
		}
		reclaimed = g.Reclaim(v, 2)
	})
	if reclaimed != 2 {
		t.Fatalf("reclaimed %d, want 2", reclaimed)
	}
	if g.Stats().AgingRuns == 0 {
		t.Fatal("reclaim never aged")
	}
}

func TestReclaimOnEmptyMemory(t *testing.T) {
	g, _ := attach(Default(), 16, 1, 1)
	policytest.Run(func(v *sim.Env) {
		if n := g.Reclaim(v, 4); n != 0 {
			t.Errorf("reclaimed %d from empty memory", n)
		}
	})
}

func TestTierOfLog2(t *testing.T) {
	g, _ := attach(Default(), 8, 1, 1)
	cases := []struct {
		refs uint8
		want uint8
	}{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {6, 2}, {7, 3}, {200, 3}}
	for _, c := range cases {
		if got := g.tierOf(c.refs); got != c.want {
			t.Errorf("tierOf(%d) = %d, want %d", c.refs, got, c.want)
		}
	}
}

// Property: after arbitrary fault/touch/reclaim/age sequences, every
// resident page is on exactly one generation list within [minSeq, maxSeq],
// and list populations sum to the resident count.
func TestGenerationInvariantProperty(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		g, k := attach(Default(), 64, 1, seed)
		ok := true
		policytest.Run(func(v *sim.Env) {
			for _, op := range ops {
				vpn := pagetable.VPN(op % 48)
				switch op % 7 {
				case 0, 1, 2:
					if _, resident := k.T.Walk(vpn, false); !resident {
						if k.M.FreePages() <= 2 {
							g.Reclaim(v, 4)
						}
						if k.M.FreePages() > 0 {
							k.FaultIn(v, g, vpn, op%2 == 0, op%5 == 0)
						}
					}
				case 3:
					g.Age(v)
				case 4, 5:
					g.Reclaim(v, int(op%3)+1)
				case 6:
					k.T.Walk(vpn, false) // touch if resident (A bit)
				}
			}
			// Invariant check.
			total := 0
			for seq := g.MinSeq(); seq <= g.MaxSeq(); seq++ {
				n := g.GenLen(seq)
				total += n
				if !g.genList(seq).Validate() {
					ok = false
					return
				}
			}
			if total != k.T.PresentPages() {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScanRandScansProbabilisticSubset(t *testing.T) {
	g, k := attach(ScanRand(0.5), 6000, 12, 1)
	policytest.Run(func(v *sim.Env) {
		// Populate every region.
		for r := 0; r < 12; r++ {
			base := pagetable.VPN(r * pagetable.PTEsPerRegion)
			for i := 0; i < 8; i++ {
				k.FaultIn(v, g, base+pagetable.VPN(i), false, false)
			}
		}
		for i := 0; i < 10; i++ {
			g.Age(v)
		}
	})
	st := g.Stats()
	if st.RegionsScanned == 0 {
		t.Fatal("scan-rand never scanned")
	}
	// Skipped counts include holes; with 12 populated regions over 10
	// walks at p=0.5, both scanned and non-scanned populated regions
	// must occur.
	if st.RegionsScanned >= 120 {
		t.Fatal("scan-rand scanned everything")
	}
}

// Regression unit test for aging-walk waiter starvation: a waiter must
// return once the in-flight walk completes, even if the walker starts
// another walk back-to-back within the same engine turn.
func TestAgeWaiterNotStarvedByBackToBackWalks(t *testing.T) {
	g, k := attach(ScanAll(), 3000, 8, 1)
	e := sim.NewEngine(2)
	// Populate enough regions that a walk takes multiple charge chunks.
	setup := e.Spawn("setup", false, func(v *sim.Env) {
		for r := 0; r < 8; r++ {
			base := pagetable.VPN(r * pagetable.PTEsPerRegion)
			for i := 0; i < 64; i++ {
				k.FaultIn(v, g, base+pagetable.VPN(i), false, false)
			}
		}
	})
	_ = setup
	walkerDone := false
	e.Spawn("walker", true, func(v *sim.Env) {
		v.Sleep(1 * sim.Millisecond)
		for {
			g.Age(v) // back-to-back walks forever
			walkerDone = true
		}
	})
	waiterReturned := false
	e.Spawn("waiter", false, func(v *sim.Env) {
		v.Sleep(2 * sim.Millisecond) // let the walker be mid-walk
		g.Age(v)                     // must not hang
		waiterReturned = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !waiterReturned {
		t.Fatal("waiter starved")
	}
	_ = walkerDone
}
