// Package oracle provides clairvoyant and idealized replacement policies
// used as correctness yardsticks by the differential verification harness
// (package check): an exact LRU that sees every access rather than
// approximating recency from accessed bits, and Belady's OPT driven by a
// recorded first-pass trace. Neither is a realistic kernel policy — both
// need per-access information no hardware provides — which is exactly what
// makes them sharp bounds: no real policy may beat OPT, and exact LRU must
// match the Mattson stack-distance prediction from internal/trace
// bit-for-bit.
package oracle

import (
	"container/heap"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
)

// AccessObserver is the extra channel oracle policies need: the replay
// harness calls Observe for every access in program order — hits and
// misses alike, before the touch or fault is processed. Policies that can
// be driven by accessed bits alone do not implement it.
type AccessObserver interface {
	Observe(v *sim.Env, pos int, vpn pagetable.VPN)
}

// ExactLRU is true least-recently-used replacement: every access moves
// the page to the head of a single recency list, and eviction always
// takes the tail. Under strict demand paging at fixed capacity its fault
// count equals the Mattson miss count exactly.
type ExactLRU struct {
	k     policy.Kernel
	list  *mem.List
	lock  policy.LRULock
	stats policy.Stats
}

// NewExactLRU creates an exact-LRU oracle.
func NewExactLRU() *ExactLRU { return &ExactLRU{} }

// Name implements policy.Policy.
func (l *ExactLRU) Name() string { return "exact-lru" }

// Attach implements policy.Policy.
func (l *ExactLRU) Attach(k policy.Kernel) {
	l.k = k
	l.list = mem.NewList(k.Mem(), 0)
}

// Observe implements AccessObserver: refresh recency on every access to a
// resident page.
func (l *ExactLRU) Observe(v *sim.Env, pos int, vpn pagetable.VPN) {
	pte := l.k.Table().PTE(vpn)
	if !pte.Present() {
		return // the miss's PageIn will insert it at the head
	}
	l.lock.Acquire(v)
	if l.k.Mem().Frame(pte.Frame).ListID != mem.ListNone {
		l.list.MoveToHead(pte.Frame)
	}
	l.lock.Release(v)
}

// PageIn implements policy.Policy.
func (l *ExactLRU) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	l.lock.Acquire(v)
	defer l.lock.Release(v)
	if sh != nil {
		l.stats.Refaults++
	}
	l.list.PushHead(f)
}

// Reclaim implements policy.Policy: evict strictly from the recency tail.
func (l *ExactLRU) Reclaim(v *sim.Env, target int) int {
	evicted := 0
	for evicted < target {
		l.lock.Acquire(v)
		f := l.list.PopTail()
		l.lock.Release(v)
		if f == mem.NilFrame {
			break
		}
		l.stats.Evicted++
		l.k.EvictPage(v, f, policy.Shadow{EvictedAt: v.Now()})
		evicted++
	}
	return evicted
}

// Age implements policy.Policy (no background work).
func (l *ExactLRU) Age(v *sim.Env) bool { return false }

// NeedsAging implements policy.Policy.
func (l *ExactLRU) NeedsAging() bool { return false }

// Stats implements policy.Policy.
func (l *ExactLRU) Stats() policy.Stats { return l.stats }

// DebugLock implements policy.LockDebugger.
func (l *ExactLRU) DebugLock() *policy.LRULock { return &l.lock }

// Len reports the recency-list population (tests).
func (l *ExactLRU) Len() int { return l.list.Len() }

// neverAgain is the next-use position of a page with no future access.
const neverAgain = int(^uint(0) >> 1)

// OPT is Belady's clairvoyant optimal policy: on a miss it evicts the
// resident page whose next use lies farthest in the future. It is
// constructed from the full access trace (the recorded first pass), so it
// is only meaningful under the replay harness that feeds it Observe calls
// in trace order.
type OPT struct {
	k    policy.Kernel
	list *mem.List // membership only; selection uses the heap
	lock policy.LRULock

	// next[i] is the position of the next access to trace[i]'s page
	// after i, or neverAgain.
	next []int
	// nextUse[vpn] is the page's next access position as of the cursor.
	nextUse map[pagetable.VPN]int
	// cands is a lazy max-heap of (position, vpn) eviction candidates;
	// entries are validated against nextUse on pop.
	cands optHeap

	stats policy.Stats
}

// NewOPT creates a Belady-OPT oracle for the given access trace.
func NewOPT(trace []pagetable.VPN) *OPT {
	next := make([]int, len(trace))
	seen := make(map[pagetable.VPN]int, 1024)
	for i := len(trace) - 1; i >= 0; i-- {
		if j, ok := seen[trace[i]]; ok {
			next[i] = j
		} else {
			next[i] = neverAgain
		}
		seen[trace[i]] = i
	}
	return &OPT{next: next, nextUse: make(map[pagetable.VPN]int, len(seen))}
}

// Name implements policy.Policy.
func (o *OPT) Name() string { return "opt" }

// Attach implements policy.Policy.
func (o *OPT) Attach(k policy.Kernel) {
	o.k = k
	o.list = mem.NewList(k.Mem(), 0)
}

// Observe implements AccessObserver: advance the page's next-use knowledge
// to the occurrence after pos. Resident pages get a fresh heap entry so
// eviction ranks them by their updated distance.
func (o *OPT) Observe(v *sim.Env, pos int, vpn pagetable.VPN) {
	at := neverAgain
	if pos < len(o.next) {
		at = o.next[pos]
	}
	o.nextUse[vpn] = at
	if o.k.Table().PTE(vpn).Present() {
		heap.Push(&o.cands, optEntry{at: at, vpn: vpn})
	}
}

// PageIn implements policy.Policy.
func (o *OPT) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	o.lock.Acquire(v)
	defer o.lock.Release(v)
	if sh != nil {
		o.stats.Refaults++
	}
	o.list.PushHead(f)
	vpn := pagetable.VPN(o.k.Mem().Frame(f).VPN)
	at, ok := o.nextUse[vpn]
	if !ok {
		at = neverAgain
	}
	heap.Push(&o.cands, optEntry{at: at, vpn: vpn})
}

// Reclaim implements policy.Policy: evict the resident page whose next
// use is farthest in the future. Stale heap entries (superseded by a more
// recent Observe, or already evicted) are discarded on pop.
func (o *OPT) Reclaim(v *sim.Env, target int) int {
	evicted := 0
	for evicted < target {
		f := o.pickVictim()
		if f == mem.NilFrame {
			break
		}
		o.lock.Acquire(v)
		o.list.Remove(f)
		o.lock.Release(v)
		o.stats.Evicted++
		o.k.EvictPage(v, f, policy.Shadow{EvictedAt: v.Now()})
		evicted++
	}
	return evicted
}

// pickVictim pops heap entries until one reflects the current state.
func (o *OPT) pickVictim() mem.FrameID {
	for o.cands.Len() > 0 {
		e := heap.Pop(&o.cands).(optEntry)
		if cur, ok := o.nextUse[e.vpn]; ok && cur != e.at {
			continue // superseded by a later Observe
		}
		pte := o.k.Table().PTE(e.vpn)
		if !pte.Present() {
			continue // already evicted
		}
		if o.k.Mem().Frame(pte.Frame).ListID == mem.ListNone {
			continue // isolated by a concurrent pass
		}
		return pte.Frame
	}
	// Heap exhausted (every entry stale): fall back to list order so
	// reclaim still makes progress.
	return o.list.Tail()
}

// Age implements policy.Policy (no background work).
func (o *OPT) Age(v *sim.Env) bool { return false }

// NeedsAging implements policy.Policy.
func (o *OPT) NeedsAging() bool { return false }

// Stats implements policy.Policy.
func (o *OPT) Stats() policy.Stats { return o.stats }

// DebugLock implements policy.LockDebugger.
func (o *OPT) DebugLock() *policy.LRULock { return &o.lock }

// optEntry is one heap candidate: page vpn whose next use was at when the
// entry was pushed.
type optEntry struct {
	at  int
	vpn pagetable.VPN
}

// optHeap is a max-heap on next-use position (farthest first).
type optHeap []optEntry

func (h optHeap) Len() int { return len(h) }
func (h optHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at > h[j].at
	}
	return h[i].vpn > h[j].vpn // deterministic tie-break
}
func (h optHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x any)    { *h = append(*h, x.(optEntry)) }
func (h *optHeap) Pop() any      { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var (
	_ policy.Policy       = (*ExactLRU)(nil)
	_ policy.Policy       = (*OPT)(nil)
	_ AccessObserver      = (*ExactLRU)(nil)
	_ AccessObserver      = (*OPT)(nil)
	_ policy.LockDebugger = (*ExactLRU)(nil)
	_ policy.LockDebugger = (*OPT)(nil)
)
