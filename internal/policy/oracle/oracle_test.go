package oracle_test

import (
	"testing"

	"mglrusim/internal/check"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/oracle"
	"mglrusim/internal/policy/policytest"
	"mglrusim/internal/sim"
)

// beladyTrace is the classic reference string used in every OS textbook
// to demonstrate Belady's algorithm. At 3 frames the optimal fault count
// is 7 and true LRU takes 10 — both verifiable by hand.
var beladyTrace = []pagetable.VPN{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}

func smallTable(pages int) func() *pagetable.Table {
	return func() *pagetable.Table {
		regions := (pages + pagetable.PTEsPerRegion - 1) / pagetable.PTEsPerRegion
		t := pagetable.New(regions)
		t.MapRange(0, pages, false)
		return t
	}
}

func replayFaults(t *testing.T, pol policy.Policy, tr []pagetable.VPN, capacity int) int {
	t.Helper()
	faults, err := check.Replay(pol, tr, smallTable(16), capacity, true)
	if err != nil {
		t.Fatalf("replay %q: %v", pol.Name(), err)
	}
	return faults
}

func TestOPTMatchesHandComputedOptimum(t *testing.T) {
	if got := replayFaults(t, oracle.NewOPT(beladyTrace), beladyTrace, 3); got != 7 {
		t.Fatalf("OPT on Belady's reference string at 3 frames: got %d faults, textbook optimum is 7", got)
	}
}

func TestExactLRUMatchesHandComputedCount(t *testing.T) {
	if got := replayFaults(t, oracle.NewExactLRU(), beladyTrace, 3); got != 10 {
		t.Fatalf("exact LRU on Belady's reference string at 3 frames: got %d faults, hand simulation gives 10", got)
	}
}

func TestOraclesAgreeWithoutReuse(t *testing.T) {
	// With no reuse, clairvoyance buys nothing: every access is a cold
	// miss for any policy.
	tr := []pagetable.VPN{0, 1, 2, 3, 4, 5, 6, 7}
	for _, pol := range []policy.Policy{oracle.NewExactLRU(), oracle.NewOPT(tr)} {
		if got := replayFaults(t, pol, tr, 3); got != len(tr) {
			t.Fatalf("%s on reuse-free trace: got %d faults, want %d cold misses", pol.Name(), got, len(tr))
		}
	}
}

func TestDifferentialOnHandTrace(t *testing.T) {
	// The full differential assertions (exact-LRU == Mattson, nothing
	// beats OPT) on a trace small enough to audit every access.
	rep, err := check.RunDifferential(beladyTrace, smallTable(16), 3, nil, true)
	if err != nil {
		t.Fatalf("differential: %v\n%s", err, rep)
	}
	if rep.OPTFaults != 7 || rep.Faults["exact-lru"] != 10 {
		t.Fatalf("unexpected oracle counts:\n%s", rep)
	}
}

// TestExactLRUEvictionOrder drives the oracle by hand: after faulting in
// 0,1,2 at capacity 3, refreshing page 0 must make page 1 — not 0 — the
// reclaim victim.
func TestExactLRUEvictionOrder(t *testing.T) {
	pol := oracle.NewExactLRU()
	k := policytest.NewWithTable(3, smallTable(16)(), 1)
	pol.Attach(k)

	eng := sim.NewEngine(1)
	eng.Spawn("drive", false, func(v *sim.Env) {
		for _, vpn := range []pagetable.VPN{0, 1, 2} {
			k.FaultIn(v, pol, vpn, false, false)
		}
		pol.Observe(v, 0, 0) // hit: 0 becomes most recent; 1 is now LRU
		if n := pol.Reclaim(v, 1); n != 1 {
			t.Errorf("reclaim freed %d pages, want 1", n)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if len(k.EvictOrder) != 1 || k.EvictOrder[0] != 1 {
		t.Fatalf("evicted %v, want [1] (page 0 was refreshed, 1 is least recent)", k.EvictOrder)
	}
	if pol.Len() != 2 {
		t.Fatalf("recency list holds %d pages after one eviction, want 2", pol.Len())
	}
}
