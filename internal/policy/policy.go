// Package policy defines the contract between the memory manager and a
// page replacement policy, plus the cost model shared by all policies'
// accessed-bit scanning.
//
// A policy owns the LRU bookkeeping (which lists pages sit on, in what
// order) and decides which resident pages to evict; the memory manager
// (package vmm) owns frames, the page table, swap, and the fault path, and
// exposes them to the policy through the Kernel interface.
package policy

import (
	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/rmap"
	"mglrusim/internal/sim"
)

// Shadow is the information remembered about an evicted page, used for
// refault classification when the page comes back (the simulator's
// analogue of the kernel's shadow/workingset entries).
type Shadow struct {
	// Gen is the MG-LRU generation sequence the page belonged to when
	// evicted (0 for policies without generations).
	Gen uint64
	// Tier is the MG-LRU tier the page was evicted from.
	Tier uint8
	// Refs is the FD-access count at eviction.
	Refs uint8
	// EvictedAt is when the eviction happened.
	EvictedAt sim.Time
}

// Kernel is the memory-manager view a policy operates through.
type Kernel interface {
	// Mem exposes physical memory and frame metadata.
	Mem() *mem.Memory
	// Table exposes the process page table for accessed-bit harvesting.
	Table() *pagetable.Table
	// RMap exposes the reverse map (and its walk cost model).
	RMap() *rmap.Map
	// EvictPage unmaps the page held by frame f, writes it to swap as
	// needed, records sh for refault classification, and frees the frame.
	// The policy must have removed f from its lists first. May block on
	// writeback backpressure.
	EvictPage(v *sim.Env, f mem.FrameID, sh Shadow)
	// RequestAging asks the background aging task to run soon.
	RequestAging()
	// Rand returns the policy's dedicated RNG stream.
	Rand() *sim.RNG
}

// Policy is a page replacement policy.
type Policy interface {
	// Name identifies the policy in reports ("clock", "mglru", ...).
	Name() string
	// Attach binds the policy to a kernel before any other call.
	Attach(k Kernel)
	// PageIn registers a page that just became resident in frame f.
	// sh is non-nil when the page was previously evicted (a refault).
	PageIn(v *sim.Env, f mem.FrameID, sh *Shadow)
	// Reclaim attempts to evict up to target pages and returns how many
	// were evicted. Called from kswapd and from direct reclaim.
	Reclaim(v *sim.Env, target int) int
	// Age performs one background aging pass, charging its scan costs to
	// the calling proc. It reports whether it did useful work.
	Age(v *sim.Env) bool
	// NeedsAging reports whether the aging task has pending work.
	NeedsAging() bool
	// Stats returns cumulative counters.
	Stats() Stats
}

// Stats counts policy activity. All counters are cumulative per trial.
type Stats struct {
	PTEScanned     uint64 // PTEs examined by linear scans
	RegionsScanned uint64 // PMD regions linearly scanned
	RegionsSkipped uint64 // PMD regions filtered out of a scan
	RMapWalks      uint64 // reverse-map resolutions
	Promoted       uint64 // pages moved toward youngest/active
	Demoted        uint64 // pages moved toward eviction candidates
	Evicted        uint64 // pages evicted
	Rotated        uint64 // eviction candidates given a second chance
	AgingRuns      uint64 // background aging passes
	Refaults       uint64 // evicted pages faulted back in
	TierProtected  uint64 // pages spared by tier/PID protection
	FileProtected  uint64 // of TierProtected, spared by the file-vs-anon gain alone
	ScanCPU        sim.Duration
}

// Costs parameterizes scanning work, shared by all policies so that
// comparisons isolate algorithmic differences.
type Costs struct {
	// PTEScan is the per-present-entry cost of a linear page-table scan:
	// reading the PTE plus the folio lookup needed to classify/promote.
	// It is far below the rmap walk cost — that asymmetry is the heart
	// of the MG-LRU design argument — but a full-table walk still takes
	// real time, which is what makes Scan-All expensive.
	PTEScan sim.Duration
	// HoleScan is the per-entry cost of skipping a non-present PTE
	// (pure cache-speed streaming).
	HoleScan sim.Duration
	// RegionCheck is the cost of deciding whether to scan a region
	// (bloom lookup / metadata check).
	RegionCheck sim.Duration
	// PageOp is the bookkeeping cost of moving one page between lists.
	PageOp sim.Duration
}

// DefaultCosts returns the calibrated default scanning costs.
//
// Calibration note: the simulated footprints are ~1/1000 of the paper's
// 12–16 GB, so one simulated page stands for ~1000 real pages and every
// per-page cost is scaled up accordingly (a real linear PTE scan costs a
// few ns/entry; a real rmap walk costs a few hundred ns to µs with
// locking). This keeps the scan-cost-to-fault-cost ratio — the quantity
// the paper's §V-B/§VI-B analysis turns on — in the regime the paper
// measured.
func DefaultCosts() Costs {
	return Costs{
		PTEScan:     25 * sim.Microsecond,
		HoleScan:    300 * sim.Nanosecond,
		RegionCheck: 4 * sim.Microsecond,
		PageOp:      15 * sim.Microsecond,
	}
}
