package policytest

import (
	"testing"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
)

// Conformance is a table-driven contract suite every policy.Policy
// implementation must pass, run against the policytest kernel double.
// mk must return a fresh, unattached policy per call. It asserts:
//
//   - Reclaim never evicts more than its target, and its return value
//     equals the number of EvictPage calls it made.
//   - Counter coherence: Stats().Evicted matches total evictions, and
//     Stats().Refaults matches the number of PageIn calls that carried a
//     shadow.
//   - Every Stats counter is monotone non-decreasing across operations.
//   - Residency coherence: after any quiescent point, pages present in
//     the table equal frames in use.
//   - Reclaim makes progress under pressure (a full memory with cold
//     pages can always be shrunk).
func Conformance(t *testing.T, name string, mk func() policy.Policy) {
	ConformanceWithLayout(t, name, pagetable.LayoutAuto, mk)
}

// ConformanceWithLayout is Conformance against a kernel double whose page
// table uses the given storage layout; the layout-differential suite runs
// it once per layout so both the legacy AoS and packed SoA paths owe the
// identical contract.
func ConformanceWithLayout(t *testing.T, name string, layout pagetable.Layout, mk func() policy.Policy) {
	t.Run(name+"/reclaim-bounded", func(t *testing.T) { conformReclaimBounded(t, layout, mk) })
	t.Run(name+"/counter-coherence", func(t *testing.T) { conformCounters(t, layout, mk) })
	t.Run(name+"/stats-monotone", func(t *testing.T) { conformMonotone(t, layout, mk) })
	t.Run(name+"/residency", func(t *testing.T) { conformResidency(t, layout, mk) })
	t.Run(name+"/mixed-file-anon", func(t *testing.T) { conformMixedFileAnon(t, layout, mk) })
}

const confFrames = 64

// freeOne drives Reclaim until a frame is free, tolerating
// zero-progress passes (a pass that only rotates hot pages clears their
// accessed bits, so a later pass succeeds) up to a bound. Returns false
// if the policy made no progress within the bound.
func freeOne(v *sim.Env, k *Kernel, p policy.Policy) bool {
	maxStalls := 10*k.M.Size() + 100
	for stalls := 0; k.M.FreePages() == 0; {
		if p.Reclaim(v, 1) > 0 {
			continue
		}
		// The kernel double has no aging daemon; drive aging inline.
		p.Age(v)
		stalls++
		if stalls > maxStalls {
			return false
		}
	}
	return true
}

// workPattern faults pages in and touches a working set, forcing refaults
// once the footprint exceeds capacity. Returns total faults.
func workPattern(t *testing.T, v *sim.Env, k *Kernel, p policy.Policy, pages, rounds int) int {
	faults := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < pages; i++ {
			vpn := pagetable.VPN(i)
			if k.Touch(vpn, i%3 == 0) {
				continue
			}
			if !freeOne(v, k, p) {
				t.Fatal("no reclaim progress")
			}
			k.FaultIn(v, p, vpn, false, false)
			faults++
		}
	}
	return faults
}

// conformReclaimBounded: Reclaim(v, n) returns at most n and exactly the
// number of evictions it performed.
func conformReclaimBounded(t *testing.T, layout pagetable.Layout, mk func() policy.Policy) {
	k := NewWithLayout(confFrames, 2, layout, 7)
	p := mk()
	p.Attach(k)
	Run(func(v *sim.Env) {
		for i := 0; i < confFrames; i++ {
			k.FaultIn(v, p, pagetable.VPN(i), false, false)
		}
		for _, target := range []int{0, 1, 3, 8} {
			before := len(k.EvictOrder)
			got := p.Reclaim(v, target)
			did := len(k.EvictOrder) - before
			if got > target {
				t.Errorf("Reclaim(%d) returned %d > target", target, got)
			}
			if got != did {
				t.Errorf("Reclaim(%d) returned %d but made %d EvictPage calls", target, got, did)
			}
			if got < 0 {
				t.Errorf("Reclaim(%d) returned negative %d", target, got)
			}
		}
	})
}

// conformCounters: Evicted and Refaults reconcile with the kernel
// double's ground truth.
func conformCounters(t *testing.T, layout pagetable.Layout, mk func() policy.Policy) {
	k := NewWithLayout(confFrames, 2, layout, 7)
	p := mk()
	p.Attach(k)
	shadowedPageIns := 0
	Run(func(v *sim.Env) {
		pages := confFrames * 2
		for r := 0; r < 3; r++ {
			for i := 0; i < pages; i++ {
				vpn := pagetable.VPN(i)
				if k.Touch(vpn, false) {
					continue
				}
				if !freeOne(v, k, p) {
					t.Fatal("no reclaim progress")
				}
				if _, ok := k.Shadows[vpn]; ok {
					shadowedPageIns++
				}
				k.FaultIn(v, p, vpn, false, false)
			}
		}
	})
	st := p.Stats()
	if st.Evicted != uint64(len(k.EvictOrder)) {
		t.Errorf("Stats.Evicted = %d, kernel saw %d evictions", st.Evicted, len(k.EvictOrder))
	}
	if st.Refaults != uint64(shadowedPageIns) {
		t.Errorf("Stats.Refaults = %d, %d PageIns carried a shadow", st.Refaults, shadowedPageIns)
	}
}

// statsFields flattens a Stats for monotonicity comparison.
func statsFields(s policy.Stats) []uint64 {
	return []uint64{
		s.PTEScanned, s.RegionsScanned, s.RegionsSkipped, s.RMapWalks,
		s.Promoted, s.Demoted, s.Evicted, s.Rotated, s.AgingRuns,
		s.Refaults, s.TierProtected, s.FileProtected, uint64(s.ScanCPU),
	}
}

var statsFieldNames = []string{
	"PTEScanned", "RegionsScanned", "RegionsSkipped", "RMapWalks",
	"Promoted", "Demoted", "Evicted", "Rotated", "AgingRuns",
	"Refaults", "TierProtected", "FileProtected", "ScanCPU",
}

// conformMonotone: no Stats counter ever decreases.
func conformMonotone(t *testing.T, layout pagetable.Layout, mk func() policy.Policy) {
	k := NewWithLayout(confFrames, 2, layout, 7)
	p := mk()
	p.Attach(k)
	prev := statsFields(p.Stats())
	step := func(label string) {
		cur := statsFields(p.Stats())
		for i := range cur {
			if cur[i] < prev[i] {
				t.Errorf("after %s: Stats.%s decreased %d -> %d", label, statsFieldNames[i], prev[i], cur[i])
			}
		}
		prev = cur
	}
	Run(func(v *sim.Env) {
		for r := 0; r < 2; r++ {
			for i := 0; i < confFrames*2; i++ {
				vpn := pagetable.VPN(i)
				if k.Touch(vpn, false) {
					continue
				}
				if !freeOne(v, k, p) {
					t.Fatal("no reclaim progress")
				}
				k.FaultIn(v, p, vpn, false, false)
				step("fault")
			}
			p.Age(v)
			step("age")
			p.Reclaim(v, 4)
			step("reclaim")
		}
	})
}

// conformMixedFileAnon: a stream where half the address space is
// file-backed owes the same contract as a pure-anon one. The policy may
// steer eviction pressure between the types (MG-LRU's file shield does),
// but it must still make reclaim progress, reconcile its counters against
// the kernel's ground truth, eventually evict both types under uniform
// overcommit, and never corrupt the file flag on frames it shuffles
// between lists.
func conformMixedFileAnon(t *testing.T, layout pagetable.Layout, mk func() policy.Policy) {
	k := NewWithLayout(confFrames, 2, layout, 7)
	p := mk()
	p.Attach(k)
	pages := confFrames * 2
	fileHalf := func(i int) bool { return i >= pages/2 }
	shadowedPageIns := 0
	Run(func(v *sim.Env) {
		for r := 0; r < 3; r++ {
			for i := 0; i < pages; i++ {
				vpn := pagetable.VPN(i)
				if k.Touch(vpn, i%5 == 0) {
					continue
				}
				if !freeOne(v, k, p) {
					t.Fatal("no reclaim progress on mixed file+anon stream")
				}
				if _, ok := k.Shadows[vpn]; ok {
					shadowedPageIns++
				}
				k.FaultIn(v, p, vpn, false, fileHalf(i))
			}
		}
	})
	st := p.Stats()
	if st.Evicted != uint64(len(k.EvictOrder)) {
		t.Errorf("Stats.Evicted = %d, kernel saw %d evictions", st.Evicted, len(k.EvictOrder))
	}
	if st.Refaults != uint64(shadowedPageIns) {
		t.Errorf("Stats.Refaults = %d, %d PageIns carried a shadow", st.Refaults, shadowedPageIns)
	}
	var fileEv, anonEv int
	for _, vpn := range k.EvictOrder {
		if fileHalf(int(vpn)) {
			fileEv++
		} else {
			anonEv++
		}
	}
	if fileEv == 0 || anonEv == 0 {
		t.Errorf("uniform 2x overcommit evicted %d file / %d anon pages; both types must face pressure", fileEv, anonEv)
	}
	for f := 0; f < k.M.Size(); f++ {
		fr := k.M.Frame(mem.FrameID(f))
		if fr.VPN < 0 {
			continue
		}
		if got, want := fr.Flags&mem.FlagFile != 0, fileHalf(int(fr.VPN)); got != want {
			t.Errorf("frame %d (vpn %d): file flag = %v, want %v — policy corrupted frame flags", f, fr.VPN, got, want)
		}
	}
}

// conformResidency: frames in use always equal pages present.
func conformResidency(t *testing.T, layout pagetable.Layout, mk func() policy.Policy) {
	k := NewWithLayout(confFrames, 2, layout, 7)
	p := mk()
	p.Attach(k)
	Run(func(v *sim.Env) {
		faults := workPattern(t, v, k, p, confFrames*2, 2)
		if faults == 0 {
			t.Fatal("work pattern generated no faults")
		}
		if used, present := k.M.UsedPages(), k.T.PresentPages(); used != present {
			t.Errorf("frames in use %d != pages present %d", used, present)
		}
	})
}
