package policytest_test

import (
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/policy/oracle"
	"mglrusim/internal/policy/policytest"
	"mglrusim/internal/policy/simple"
)

// TestPolicyConformance runs the contract suite over every registered
// policy: Clock, all five MG-LRU variants, the scan-free baselines, and
// the exact-LRU oracle (which, as a policy.Policy, owes the same
// contract).
func TestPolicyConformance(t *testing.T) {
	cases := []struct {
		name string
		mk   func() policy.Policy
	}{
		{"clock", func() policy.Policy { return clock.New(clock.DefaultConfig()) }},
		{"mglru", func() policy.Policy { return mglru.New(mglru.Default()) }},
		{"gen14", func() policy.Policy { return mglru.New(mglru.Gen14()) }},
		{"scan-all", func() policy.Policy { return mglru.New(mglru.ScanAll()) }},
		{"scan-none", func() policy.Policy { return mglru.New(mglru.ScanNone()) }},
		{"scan-rand", func() policy.Policy { return mglru.New(mglru.ScanRand(0.5)) }},
		{"fifo", func() policy.Policy { return simple.NewFIFO() }},
		{"random", func() policy.Policy { return simple.NewRandom() }},
		{"exact-lru", func() policy.Policy { return oracle.NewExactLRU() }},
	}
	for _, c := range cases {
		policytest.Conformance(t, c.name, c.mk)
	}
}

// TestConformanceBothLayouts runs the contract suite over the policies
// that read page tables directly (the MG-LRU variants and Clock) against
// both page-table storage layouts explicitly, so neither the legacy AoS
// path nor the packed SoA bit-plane path can drift out of contract.
func TestConformanceBothLayouts(t *testing.T) {
	cases := []struct {
		name string
		mk   func() policy.Policy
	}{
		{"clock", func() policy.Policy { return clock.New(clock.DefaultConfig()) }},
		{"mglru", func() policy.Policy { return mglru.New(mglru.Default()) }},
		{"gen14", func() policy.Policy { return mglru.New(mglru.Gen14()) }},
		{"scan-all", func() policy.Policy { return mglru.New(mglru.ScanAll()) }},
		{"scan-none", func() policy.Policy { return mglru.New(mglru.ScanNone()) }},
	}
	for _, layout := range []pagetable.Layout{pagetable.LayoutLegacy, pagetable.LayoutPacked} {
		for _, c := range cases {
			policytest.ConformanceWithLayout(t, layout.String()+"/"+c.name, layout, c.mk)
		}
	}
}
