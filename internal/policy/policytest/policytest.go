// Package policytest provides a minimal in-memory Kernel implementation
// so replacement policies can be unit-tested without the full memory
// manager: evictions free the frame immediately and remember the shadow,
// and fault-ins can be simulated directly.
package policytest

import (
	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/rmap"
	"mglrusim/internal/sim"
)

// Kernel is a test double for policy.Kernel.
type Kernel struct {
	M   *mem.Memory
	T   *pagetable.Table
	R   *rmap.Map
	RNG *sim.RNG

	// Shadows records the shadow passed to each EvictPage call, keyed by
	// the evicted VPN.
	Shadows map[pagetable.VPN]policy.Shadow
	// EvictOrder records VPNs in eviction order.
	EvictOrder []pagetable.VPN
	// AgingRequests counts RequestAging calls.
	AgingRequests int

	// OnEvict, when set, is called for every EvictPage after the
	// bookkeeping completes (the replay harness hooks it to count faults
	// and drive auditors).
	OnEvict func(v *sim.Env, vpn pagetable.VPN, sh policy.Shadow)

	nextSlot int32
}

// New creates a test kernel with frames physical pages and a page table of
// regions PMD regions (all mapped as anonymous memory).
func New(frames, regions int, seed uint64) *Kernel {
	rng := sim.NewRNG(seed)
	m := mem.New(frames)
	t := pagetable.New(regions)
	t.MapRange(0, regions*pagetable.PTEsPerRegion, false)
	return &Kernel{
		M:       m,
		T:       t,
		R:       rmap.New(m, rmap.CostModel{Base: 100}, rng.Stream(1)),
		RNG:     rng.Stream(2),
		Shadows: map[pagetable.VPN]policy.Shadow{},
	}
}

// NewWithLayout is New with an explicit page-table storage layout, so
// contract suites can pin the legacy AoS and packed SoA layouts
// individually instead of taking whatever auto selects.
func NewWithLayout(frames, regions int, layout pagetable.Layout, seed uint64) *Kernel {
	t := pagetable.NewWithLayout(regions, pagetable.PTEsPerRegion, layout)
	t.MapRange(0, regions*pagetable.PTEsPerRegion, false)
	return NewWithTable(frames, t, seed)
}

// NewWithTable creates a test kernel over a caller-built page table (the
// replay harness sizes tables to match recorded traces).
func NewWithTable(frames int, t *pagetable.Table, seed uint64) *Kernel {
	rng := sim.NewRNG(seed)
	m := mem.New(frames)
	return &Kernel{
		M:       m,
		T:       t,
		R:       rmap.New(m, rmap.CostModel{Base: 100}, rng.Stream(1)),
		RNG:     rng.Stream(2),
		Shadows: map[pagetable.VPN]policy.Shadow{},
	}
}

// Mem implements policy.Kernel.
func (k *Kernel) Mem() *mem.Memory { return k.M }

// Table implements policy.Kernel.
func (k *Kernel) Table() *pagetable.Table { return k.T }

// RMap implements policy.Kernel.
func (k *Kernel) RMap() *rmap.Map { return k.R }

// Rand implements policy.Kernel.
func (k *Kernel) Rand() *sim.RNG { return k.RNG }

// RequestAging implements policy.Kernel.
func (k *Kernel) RequestAging() { k.AgingRequests++ }

// EvictPage implements policy.Kernel: instantly evicts to a fake swap.
func (k *Kernel) EvictPage(v *sim.Env, f mem.FrameID, sh policy.Shadow) {
	fr := k.M.Frame(f)
	vpn := pagetable.VPN(fr.VPN)
	k.nextSlot++
	k.T.Evict(vpn, k.nextSlot)
	k.Shadows[vpn] = sh
	k.EvictOrder = append(k.EvictOrder, vpn)
	fr.VPN = -1
	k.M.Free(f)
	if k.OnEvict != nil {
		k.OnEvict(v, vpn, sh)
	}
}

// FaultIn makes vpn resident (allocating a frame) and informs the policy,
// passing a shadow if the page was previously evicted. It returns the
// frame. Panics if memory is exhausted — tests should reclaim first.
func (k *Kernel) FaultIn(v *sim.Env, p policy.Policy, vpn pagetable.VPN, write, file bool) mem.FrameID {
	f := k.M.Alloc()
	if f == mem.NilFrame {
		panic("policytest: out of frames")
	}
	k.T.Insert(vpn, f, write)
	fr := k.M.Frame(f)
	fr.VPN = int64(vpn)
	if file {
		fr.Flags |= mem.FlagFile
	}
	var sh *policy.Shadow
	if s, ok := k.Shadows[vpn]; ok {
		sh = &s
		delete(k.Shadows, vpn)
	}
	p.PageIn(v, f, sh)
	return f
}

// Touch simulates a hardware access to a resident page (sets A/D bits).
// Returns false if the page is not resident.
func (k *Kernel) Touch(vpn pagetable.VPN, write bool) bool {
	_, ok := k.T.Walk(vpn, write)
	return ok
}

// Run executes fn inside a single simulated proc and returns the engine
// end time.
func Run(fn func(*sim.Env)) sim.Time {
	e := sim.NewEngine(4)
	e.Spawn("test", false, fn)
	if err := e.Run(); err != nil {
		panic(err)
	}
	return e.Now()
}

var _ policy.Kernel = (*Kernel)(nil)
