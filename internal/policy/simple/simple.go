// Package simple provides baseline replacement policies — FIFO and
// Random — that bracket the design space the paper explores. Neither
// scans accessed bits, so they pay zero tracking overhead; what they give
// up is exactly the recency signal Clock and MG-LRU buy with their scans.
// The paper's §V-B discussion (production key-value caches favouring
// FIFO variants over LRU under zipfian skew) is directly testable
// against these.
package simple

import (
	"mglrusim/internal/mem"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
)

// FIFO evicts pages strictly in fault-in order.
type FIFO struct {
	k     policy.Kernel
	queue *mem.List
	lock  policy.LRULock
	costs policy.Costs
	stats policy.Stats
}

// NewFIFO creates a FIFO policy.
func NewFIFO() *FIFO { return &FIFO{costs: policy.DefaultCosts()} }

// Name implements policy.Policy.
func (f *FIFO) Name() string { return "fifo" }

// Attach implements policy.Policy.
func (f *FIFO) Attach(k policy.Kernel) {
	f.k = k
	f.queue = mem.NewList(k.Mem(), 0)
}

// PageIn implements policy.Policy.
func (f *FIFO) PageIn(v *sim.Env, fr mem.FrameID, sh *policy.Shadow) {
	f.lock.Acquire(v)
	defer f.lock.Release(v)
	if sh != nil {
		f.stats.Refaults++
	}
	f.queue.PushHead(fr)
	f.stats.ScanCPU += f.costs.PageOp
	v.Charge(f.costs.PageOp)
}

// Reclaim implements policy.Policy: no accessed-bit checks, no rmap
// walks — pop the tail and evict.
func (f *FIFO) Reclaim(v *sim.Env, target int) int {
	evicted := 0
	for evicted < target {
		f.lock.Acquire(v)
		fr := f.queue.PopTail()
		f.lock.Release(v)
		if fr == mem.NilFrame {
			break
		}
		meta := f.k.Mem().Frame(fr)
		f.stats.Evicted++
		f.k.EvictPage(v, fr, policy.Shadow{Tier: meta.Tier, EvictedAt: v.Now()})
		evicted++
	}
	return evicted
}

// Age implements policy.Policy (no background work).
func (f *FIFO) Age(v *sim.Env) bool { return false }

// NeedsAging implements policy.Policy.
func (f *FIFO) NeedsAging() bool { return false }

// Stats implements policy.Policy.
func (f *FIFO) Stats() policy.Stats { return f.stats }

// DebugLock implements policy.LockDebugger.
func (f *FIFO) DebugLock() *policy.LRULock { return &f.lock }

// QueueLen reports the resident queue length (tests, viz).
func (f *FIFO) QueueLen() int { return f.queue.Len() }

// Random evicts uniformly random resident pages. It is the
// zero-information baseline: any policy paying for access tracking
// should beat it wherever recency carries signal.
type Random struct {
	k     policy.Kernel
	pool  *mem.List
	lock  policy.LRULock
	costs policy.Costs
	rng   *sim.RNG
	stats policy.Stats
}

// NewRandom creates a Random policy.
func NewRandom() *Random { return &Random{costs: policy.DefaultCosts()} }

// Name implements policy.Policy.
func (r *Random) Name() string { return "random" }

// Attach implements policy.Policy.
func (r *Random) Attach(k policy.Kernel) {
	r.k = k
	r.pool = mem.NewList(k.Mem(), 0)
	r.rng = k.Rand()
}

// PageIn implements policy.Policy.
func (r *Random) PageIn(v *sim.Env, fr mem.FrameID, sh *policy.Shadow) {
	r.lock.Acquire(v)
	defer r.lock.Release(v)
	if sh != nil {
		r.stats.Refaults++
	}
	r.pool.PushHead(fr)
	r.stats.ScanCPU += r.costs.PageOp
	v.Charge(r.costs.PageOp)
}

// Reclaim implements policy.Policy: pick a victim by walking a random
// number of steps from the tail (bounded, so the cost stays O(k)).
func (r *Random) Reclaim(v *sim.Env, target int) int {
	const maxWalk = 16
	evicted := 0
	for evicted < target {
		r.lock.Acquire(v)
		fr := r.pool.Tail()
		if fr == mem.NilFrame {
			r.lock.Release(v)
			break
		}
		steps := r.rng.Intn(maxWalk)
		for i := 0; i < steps; i++ {
			next := r.k.Mem().Frame(fr).Prev
			if next == mem.NilFrame {
				break
			}
			fr = next
		}
		r.pool.Remove(fr)
		r.lock.Release(v)
		meta := r.k.Mem().Frame(fr)
		r.stats.Evicted++
		r.k.EvictPage(v, fr, policy.Shadow{Tier: meta.Tier, EvictedAt: v.Now()})
		evicted++
	}
	return evicted
}

// Age implements policy.Policy (no background work).
func (r *Random) Age(v *sim.Env) bool { return false }

// NeedsAging implements policy.Policy.
func (r *Random) NeedsAging() bool { return false }

// Stats implements policy.Policy.
func (r *Random) Stats() policy.Stats { return r.stats }

// DebugLock implements policy.LockDebugger.
func (r *Random) DebugLock() *policy.LRULock { return &r.lock }

var (
	_ policy.Policy = (*FIFO)(nil)
	_ policy.Policy = (*Random)(nil)
)
