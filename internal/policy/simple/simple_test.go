package simple

import (
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy/policytest"
	"mglrusim/internal/sim"
)

func TestFIFOEvictsInArrivalOrder(t *testing.T) {
	f := NewFIFO()
	k := policytest.New(16, 1, 1)
	f.Attach(k)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 5; vpn++ {
			k.FaultIn(v, f, vpn, false, false)
			k.Touch(vpn, false) // FIFO must ignore accesses
		}
		if n := f.Reclaim(v, 3); n != 3 {
			t.Errorf("reclaimed %d", n)
		}
	})
	want := []pagetable.VPN{0, 1, 2}
	for i, vpn := range k.EvictOrder {
		if vpn != want[i] {
			t.Fatalf("evict order %v, want %v", k.EvictOrder, want)
		}
	}
}

func TestFIFONoRMapWalks(t *testing.T) {
	f := NewFIFO()
	k := policytest.New(16, 1, 1)
	f.Attach(k)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 8; vpn++ {
			k.FaultIn(v, f, vpn, false, false)
		}
		f.Reclaim(v, 4)
	})
	if k.R.Walks() != 0 {
		t.Fatalf("FIFO performed %d rmap walks", k.R.Walks())
	}
	if f.Stats().Evicted != 4 {
		t.Fatalf("evicted = %d", f.Stats().Evicted)
	}
}

func TestFIFORefaultsCounted(t *testing.T) {
	f := NewFIFO()
	k := policytest.New(16, 1, 1)
	f.Attach(k)
	policytest.Run(func(v *sim.Env) {
		k.FaultIn(v, f, 2, false, false)
		f.Reclaim(v, 1)
		k.FaultIn(v, f, 2, false, false)
	})
	if f.Stats().Refaults != 1 {
		t.Fatalf("refaults = %d", f.Stats().Refaults)
	}
}

func TestRandomEvictsAllEventually(t *testing.T) {
	r := NewRandom()
	k := policytest.New(32, 1, 7)
	r.Attach(k)
	policytest.Run(func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 10; vpn++ {
			k.FaultIn(v, r, vpn, false, false)
		}
		if n := r.Reclaim(v, 10); n != 10 {
			t.Errorf("reclaimed %d, want 10", n)
		}
	})
	if len(k.EvictOrder) != 10 {
		t.Fatalf("evictions = %d", len(k.EvictOrder))
	}
	seen := map[pagetable.VPN]bool{}
	for _, vpn := range k.EvictOrder {
		if seen[vpn] {
			t.Fatalf("double eviction of %d", vpn)
		}
		seen[vpn] = true
	}
}

func TestRandomOrderVariesWithSeed(t *testing.T) {
	order := func(seed uint64) []pagetable.VPN {
		r := NewRandom()
		k := policytest.New(64, 1, seed)
		r.Attach(k)
		policytest.Run(func(v *sim.Env) {
			for vpn := pagetable.VPN(0); vpn < 32; vpn++ {
				k.FaultIn(v, r, vpn, false, false)
			}
			r.Reclaim(v, 16)
		})
		return k.EvictOrder
	}
	a, b := order(1), order(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("random eviction identical across seeds")
	}
}

func TestRandomReclaimEmpty(t *testing.T) {
	r := NewRandom()
	k := policytest.New(8, 1, 1)
	r.Attach(k)
	policytest.Run(func(v *sim.Env) {
		if n := r.Reclaim(v, 4); n != 0 {
			t.Errorf("reclaimed %d from empty pool", n)
		}
	})
}

func TestBaselinesHaveNoAging(t *testing.T) {
	if NewFIFO().NeedsAging() || NewRandom().NeedsAging() {
		t.Fatal("baselines should not request aging")
	}
}
