// Package rmap models the kernel's reverse map: the physical-to-virtual
// translation that replacement policies must perform when they start from
// a frame (an LRU list entry) and need the owning PTE.
//
// The data itself is trivial in the simulator — frame metadata records the
// owning VPN — but the *cost* is the point. Walking the reverse map chases
// pointers through anon_vma / address_space structures, which the MG-LRU
// authors identify as the expensive part of Clock's scanning ("requires
// walking the reverse map, a pointer-based data structure that is
// expensive to access"). The paper's Scan-None analysis hinges on this
// asymmetry: rmap walks cost per page, while linear PTE scans amortize.
package rmap

import (
	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
)

// CostModel parameterizes the virtual-time cost of one reverse-map walk.
type CostModel struct {
	// Base is the typical pointer-chase cost of resolving one frame.
	Base sim.Duration
	// Jitter is the sigma of log-normal multiplicative noise, modelling
	// cache-miss variability. Zero disables noise.
	Jitter float64
}

// DefaultCostModel reflects dependent cache misses plus lock acquisition
// per walk, scaled to the simulator's page granularity (one simulated
// page ≈ 1000 real pages; see policy.DefaultCosts).
func DefaultCostModel() CostModel {
	return CostModel{Base: 350 * sim.Microsecond, Jitter: 0.35}
}

// Map resolves frames to their owning virtual pages, charging a modeled
// pointer-chase cost for each walk.
type Map struct {
	mem   *mem.Memory
	cost  CostModel
	rng   *sim.RNG
	walks uint64
}

// New creates a reverse map over m. rng drives cost jitter and must be a
// dedicated stream.
func New(m *mem.Memory, cost CostModel, rng *sim.RNG) *Map {
	return &Map{mem: m, cost: cost, rng: rng}
}

// Walk resolves frame f to its owning VPN and returns the virtual-time
// cost of the walk. It panics if the frame is free — policies must never
// rmap-walk an unowned frame.
//
// The resolve itself is flat: one indexed load from the frame-metadata
// arena (no chain chasing, no chunk materialization). The chain-chase
// expense the kernel pays lives entirely in the cost model.
func (r *Map) Walk(f mem.FrameID) (pagetable.VPN, sim.Duration) {
	vpn := r.mem.VPNOf(f)
	if vpn < 0 {
		panic("rmap: walk of unowned frame")
	}
	r.walks++
	return pagetable.VPN(vpn), r.WalkCost()
}

// Resolve is the costless indexed lookup (verification tooling); it
// returns -1 for a free frame and does not count as a walk.
func (r *Map) Resolve(f mem.FrameID) int64 { return r.mem.VPNOf(f) }

// WalkCost returns the cost of one walk without performing it; used when a
// policy batches accounting.
func (r *Map) WalkCost() sim.Duration {
	c := r.cost.Base
	if r.cost.Jitter > 0 {
		c = sim.Duration(float64(c) * r.rng.LogNormal(0, r.cost.Jitter))
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Walks reports the total number of reverse-map walks performed.
func (r *Map) Walks() uint64 { return r.walks }
