package rmap

import (
	"testing"

	"mglrusim/internal/mem"
	"mglrusim/internal/sim"
)

func TestWalkResolvesOwner(t *testing.T) {
	m := mem.New(8)
	f := m.Alloc()
	m.Frame(f).VPN = 1234
	r := New(m, CostModel{Base: 100}, sim.NewRNG(1))
	vpn, cost := r.Walk(f)
	if vpn != 1234 {
		t.Fatalf("vpn = %d, want 1234", vpn)
	}
	if cost != 100 {
		t.Fatalf("cost = %d, want 100 (no jitter)", cost)
	}
	if r.Walks() != 1 {
		t.Fatalf("walks = %d", r.Walks())
	}
}

func TestWalkUnownedPanics(t *testing.T) {
	m := mem.New(2)
	f := m.Alloc() // VPN is -1
	r := New(m, DefaultCostModel(), sim.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unowned frame")
		}
	}()
	r.Walk(f)
}

func TestJitterVariesCost(t *testing.T) {
	m := mem.New(2)
	r := New(m, CostModel{Base: 200, Jitter: 0.3}, sim.NewRNG(7))
	seen := map[sim.Duration]bool{}
	for i := 0; i < 50; i++ {
		c := r.WalkCost()
		if c < 1 {
			t.Fatalf("cost %d below floor", c)
		}
		seen[c] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jittered costs too uniform: %d distinct", len(seen))
	}
}

func TestCostDeterministicPerSeed(t *testing.T) {
	m := mem.New(2)
	a := New(m, DefaultCostModel(), sim.NewRNG(5))
	b := New(m, DefaultCostModel(), sim.NewRNG(5))
	for i := 0; i < 20; i++ {
		if a.WalkCost() != b.WalkCost() {
			t.Fatal("same seed should give identical cost streams")
		}
	}
}
