package server

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzSweepRequestParse: parsing never panics on arbitrary bytes, and
// every accepted request canonicalizes to a stable identity — the
// canonical form re-encodes and re-parses to exactly itself (idempotent)
// and the job key does not drift.
func FuzzSweepRequestParse(f *testing.F) {
	f.Add([]byte(smallSweep))
	f.Add([]byte(`{"workloads":["tpch","ycsb-a"],"policies":["mglru","clock"],"swaps":["zram","ssd"],"trials":5,"scale":0.3}`))
	f.Add([]byte(`{"workloads":["pagerank"],"policies":["gen14"],"system":{"cpus":4}}`))
	f.Add([]byte(`{"workloads":["ycsb-c","ycsb-c"],"policies":["fifo"],"ratios":[0.9,0.5,0.9]}`))
	f.Add([]byte(`{"workloads":[`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"workloads":["ycsb-c"],"policies":["fifo"],"ratios":[1.5000000000000002]}`))
	f.Add([]byte(`{"workloads":["ycsb-c"],"policies":["fifo"],"system":{"regionPTEs":512}}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))

	lim := Limits{}.withDefaults()
	f.Fuzz(func(t *testing.T, data []byte) {
		c, aerr := ParseSweepRequest(bytes.NewReader(data), lim)
		if aerr != nil {
			// Rejected: must be a structured 4xx, nothing else to hold.
			if aerr.Status < 400 || aerr.Status > 499 {
				t.Fatalf("rejection status %d, want 4xx", aerr.Status)
			}
			if aerr.Code == "" {
				t.Fatal("rejection with empty code")
			}
			return
		}
		// Accepted: the canonical form is a fixed point of validation.
		again, aerr2 := c.Reparse(lim)
		if aerr2 != nil {
			t.Fatalf("canonical form rejected on reparse: %v\ncanonical: %s", aerr2, c.Encode())
		}
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("canonicalization not idempotent:\nfirst:  %+v\nsecond: %+v", c, again)
		}
		if k1, k2 := c.JobKey(0x5EED), again.JobKey(0x5EED); k1 != k2 {
			t.Fatalf("job key drifted across reparse: %s vs %s", k1, k2)
		}
		if !bytes.Equal(c.Encode(), again.Encode()) {
			t.Fatal("canonical encoding not stable across reparse")
		}
	})
}
