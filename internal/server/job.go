package server

import (
	"sync"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/shard"
)

// CellView is the externally-visible state of one sweep cell.
type CellView struct {
	// CacheKey is the content-addressed artifact identity — the hash
	// GET /v1/results/{cachekey} serves.
	CacheKey string  `json:"cacheKey"`
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	Ratio    float64 `json:"ratio"`
	Swap     string  `json:"swap"`
	// Status: cached | queued | running | failed | done | quarantined.
	// "cached" is "done with provenance": the artifact predates this job.
	Status   string `json:"status"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Summary is the telemetry digest of the stored artifact, present
	// once the cell is done/cached.
	Summary *experiments.SeriesSummary `json:"summary,omitempty"`
}

// JobStatus is the GET /v1/sweeps/{id} response.
type JobStatus struct {
	ID      string         `json:"id"`
	State   string         `json:"state"` // running | done | draining
	Created time.Time      `json:"created"`
	Counts  map[string]int `json:"counts"`
	Cells   []CellView     `json:"cells"`
}

// Event is one SSE frame: a cell transition or a job-terminal marker.
type Event struct {
	Type   string         `json:"-"` // SSE event name: "cell" or "done"
	Job    string         `json:"job"`
	Cell   *CellView      `json:"cell,omitempty"`
	Counts map[string]int `json:"counts,omitempty"`
}

// job is one submitted sweep: its canonical identity, enumerated cells,
// executor batch, and subscriber fan-out.
type job struct {
	key       string
	canonical Canonical
	created   time.Time
	cells     []experiments.CellSpec
	queue     *shard.Queue
	batch     *shard.Batch
	// cachedAtSubmit marks cells whose artifacts predate the job — the
	// provenance split between "cached" and "done".
	cachedAtSubmit map[string]bool
	coldAtSubmit   int

	mu       sync.Mutex
	subs     map[chan Event]struct{}
	last     map[string]string // cell cache key -> last emitted status
	terminal bool
}

func newJob(key string, c Canonical, cells []experiments.CellSpec, cached map[string]bool) *job {
	return &job{
		key:            key,
		canonical:      c,
		created:        time.Now(),
		cells:          cells,
		cachedAtSubmit: cached,
		coldAtSubmit:   len(cells) - len(cached),
		subs:           map[chan Event]struct{}{},
		last:           map[string]string{},
	}
}

// inspect returns the cell states view derives from. Static jobs (no
// executor batch — the degraded read-only server admits only
// fully-cached sweeps) have no queue, so their states come straight from
// the store.
func (j *job) inspect(store *checkpoint.Store) []shard.CellInfo {
	if j.queue != nil {
		return j.queue.Inspect()
	}
	out := make([]shard.CellInfo, len(j.cells))
	for i, c := range j.cells {
		st := shard.CellQueued
		if store.Has(c.Key) {
			st = shard.CellDone
		}
		out[i] = shard.CellInfo{Cell: c, Status: st}
	}
	return out
}

// view derives the job's full status from the on-disk protocol. It is
// the single source every surface (status JSON, SSE diffs) renders from.
func (j *job) view(store *checkpoint.Store, draining bool) JobStatus {
	st := JobStatus{
		ID:      j.key,
		Created: j.created,
		Counts:  map[string]int{},
		Cells:   make([]CellView, 0, len(j.cells)),
	}
	terminal := 0
	for _, info := range j.inspect(store) {
		cv := CellView{
			CacheKey: checkpoint.KeyHash(info.Cell.Key),
			Workload: info.Cell.Workload,
			Policy:   info.Cell.Policy,
			Ratio:    info.Cell.System.Ratio,
			Swap:     info.Cell.System.Swap.String(),
			Attempts: info.Attempts,
			Error:    info.LastErr,
		}
		switch info.Status {
		case shard.CellDone:
			terminal++
			cv.Status = "done"
			if j.cachedAtSubmit[info.Cell.Key] {
				cv.Status = "cached"
			}
			if blob, ok := store.Get(info.Cell.Key); ok {
				if sum, ok := experiments.SummarizeSeriesBlob(blob); ok {
					cv.Summary = &sum
				}
			}
		case shard.CellQuarantined:
			terminal++
			cv.Status = "quarantined"
		default:
			cv.Status = string(info.Status)
		}
		st.Counts[cv.Status]++
		st.Cells = append(st.Cells, cv)
	}
	switch {
	case terminal == len(j.cells):
		st.State = "done"
	case draining:
		st.State = "draining"
	default:
		st.State = "running"
	}
	return st
}

// subscribe registers an SSE listener. The returned channel receives
// every subsequent event and is closed when the job reaches a terminal
// state (or the listener unsubscribes).
func (j *job) subscribe() chan Event {
	ch := make(chan Event, 256)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal {
		close(ch)
		return ch
	}
	j.subs[ch] = struct{}{}
	return ch
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
}

// publish diffs the current view against the last emitted statuses and
// fans out one event per changed cell; when the view is terminal it
// emits the done event and closes every subscriber.
func (j *job) publish(st JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal {
		return
	}
	for i := range st.Cells {
		cv := &st.Cells[i]
		if j.last[cv.CacheKey] == cv.Status {
			continue
		}
		j.last[cv.CacheKey] = cv.Status
		j.fanout(Event{Type: "cell", Job: j.key, Cell: cv})
	}
	if st.State == "done" {
		j.terminal = true
		j.fanout(Event{Type: "done", Job: j.key, Counts: st.Counts})
		for ch := range j.subs {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// fanout delivers to every subscriber without blocking: a listener that
// stopped draining its (generously buffered) channel loses events rather
// than stalling the monitor. Called with j.mu held.
func (j *job) fanout(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// done reports whether the job has reached (and published) its terminal
// state.
func (j *job) done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminal
}
