package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/shard"
	"mglrusim/internal/telemetry"
)

// Config shapes one sweep server.
type Config struct {
	// Store is the content-addressed result store — the cache every
	// submission is deduplicated against.
	Store *checkpoint.Store
	// Dir is the shard queue directory (leases, attempt records, poison).
	Dir string
	// Workers sizes the in-process executor pool (<=0: 4).
	Workers int
	// Seed is the methodology seed baked into every cell's cache key.
	// Default 0x5EED, matching batch pagebench.
	Seed uint64
	// Limits bound submissions and supply request defaults.
	Limits Limits
	// QueueBound caps outstanding cold cells across all live jobs; a
	// submission that would exceed it is rejected with 429 (<=0: 256).
	QueueBound int
	// RequestTimeout bounds non-streaming request handling (0: 30s).
	RequestTimeout time.Duration
	// MonitorPoll is the job monitor's status-derivation cadence (0: 50ms).
	MonitorPoll time.Duration
	// ShardTTL/ShardAttempts/ShardBackoff/ShardPoll tune the lease
	// executor (zero values: shard defaults).
	ShardTTL      time.Duration
	ShardAttempts int
	ShardBackoff  time.Duration
	ShardPoll     time.Duration
	// MaxSkew is the clock-skew grace granted to other machines' leases
	// before stealing (shard.Config.MaxSkew). Zero: single-machine
	// semantics.
	MaxSkew time.Duration
	// IORetry bounds retries of transient shared-filesystem blips on
	// store and lease operations (NFS fleets). Zero value: no retries.
	IORetry checkpoint.RetryPolicy
	// ReadOnly forces degraded mode: fully-cached sweeps are served from
	// the store, submissions needing execution get 503. It is also
	// entered automatically when the store or queue directory is not
	// writable at startup.
	ReadOnly bool
	// Counters receives server and executor counters. Required for stats;
	// created when nil.
	Counters *telemetry.CounterSet
	// Progress, when non-nil, receives one line per notable state change.
	Progress io.Writer
}

// Server is the sweep daemon: submissions in, cache-first scheduling onto
// the embedded shard executor, job status/SSE/result artifacts out.
type Server struct {
	cfg      Config
	lim      Limits
	shardCfg shard.Config
	exec     *shard.Executor

	mu         sync.Mutex
	jobs       map[string]*job
	activeCold int

	draining atomic.Bool
	readOnly atomic.Bool
	quit     chan struct{}
	wg       sync.WaitGroup
}

// probeWritable verifies a directory accepts writes by creating and
// removing a probe file — the startup check behind automatic degraded
// mode (a server pointed at a read-only NFS export of the fleet's store
// still serves cached artifacts instead of failing every job later).
func probeWritable(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// New starts a server (its executor pool starts immediately).
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: Config.Dir is required")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5EED
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 256
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MonitorPoll <= 0 {
		cfg.MonitorPoll = 50 * time.Millisecond
	}
	if cfg.Counters == nil {
		cfg.Counters = telemetry.NewCounterSet()
	}
	cfg.Limits = cfg.Limits.withDefaults()
	cfg.Store.SetIO(cfg.IORetry, nil)
	shardCfg := shard.Config{
		Dir:      cfg.Dir,
		Store:    cfg.Store,
		TTL:      cfg.ShardTTL,
		Attempts: cfg.ShardAttempts,
		Backoff:  cfg.ShardBackoff,
		Poll:     cfg.ShardPoll,
		MaxSkew:  cfg.MaxSkew,
		IORetry:  cfg.IORetry,
		Counters: cfg.Counters,
		Progress: cfg.Progress,
	}
	exec, err := shard.NewExecutor(shardCfg, cfg.Workers)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg:      cfg,
		lim:      cfg.Limits,
		shardCfg: shardCfg,
		exec:     exec,
		jobs:     map[string]*job{},
		quit:     make(chan struct{}),
	}
	readOnly := cfg.ReadOnly
	if !readOnly {
		if err := probeWritable(cfg.Dir); err != nil {
			readOnly = true
		} else if err := probeWritable(cfg.Store.Dir()); err != nil {
			readOnly = true
		}
		if readOnly && cfg.Progress != nil {
			fmt.Fprintln(cfg.Progress, "server: store or queue directory not writable; entering degraded read-only mode")
		}
	}
	if readOnly {
		srv.readOnly.Store(true)
		cfg.Counters.Add("server.degraded.readonly", 1)
	}
	return srv, nil
}

// Counters exposes the server's counter set.
func (s *Server) Counters() *telemetry.CounterSet { return s.cfg.Counters }

// Handler builds the API surface. Non-streaming endpoints run under the
// request timeout; the SSE stream manages its own lifetime.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	bounded := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, s.cfg.RequestTimeout, "request timed out\n")
	}
	mux.Handle("POST /v1/sweeps", bounded(s.handleSubmit))
	mux.Handle("GET /v1/sweeps/{id}", bounded(s.handleStatus))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.Handle("GET /v1/results/{cachekey}", bounded(s.handleResult))
	mux.Handle("GET /v1/stats", bounded(s.handleStats))
	mux.Handle("GET /v1/healthz", bounded(s.handleHealth))
	return mux
}

// Drain stops the server gracefully: new submissions get 503, the
// executor finishes in-flight cells and stops claiming, job monitors
// wind down. The store and queue directory are left consistent for the
// next process to resume. Idempotent.
func (s *Server) Drain() {
	if !s.draining.CompareAndSwap(false, true) {
		s.wg.Wait()
		return
	}
	if s.cfg.Progress != nil {
		fmt.Fprintln(s.cfg.Progress, "server: draining")
	}
	s.exec.Drain()
	close(s.quit)
	s.wg.Wait()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.Status, e)
}

// handleSubmit is POST /v1/sweeps: validate, canonicalize, dedup
// (content-addressed job identity = singleflight across clients),
// classify cells cached/cold, admit under the queue bound, enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeAPIError(w, &apiError{Status: http.StatusServiceUnavailable,
			Code: "draining", Message: "server is draining; resubmit elsewhere"})
		return
	}
	c, aerr := ParseSweepRequest(r.Body, s.lim)
	if aerr != nil {
		s.cfg.Counters.Add("server.rejected.invalid", 1)
		writeAPIError(w, aerr)
		return
	}
	key := c.JobKey(s.cfg.Seed)

	// Fast path: the job already exists (an identical submission, earlier
	// or concurrent) — share it.
	s.mu.Lock()
	if j, ok := s.jobs[key]; ok {
		s.mu.Unlock()
		s.cfg.Counters.Add("server.sweeps.deduped", 1)
		writeJSON(w, http.StatusOK, j.view(s.cfg.Store, s.draining.Load()))
		return
	}
	s.mu.Unlock()

	// Enumerate outside the lock (collector-mode, executes nothing).
	cells, err := experiments.SweepCells(c.Options(s.cfg.Seed), c.SweepSpec())
	if err != nil {
		s.cfg.Counters.Add("server.rejected.invalid", 1)
		writeAPIError(w, badRequest("bad-sweep", "%v", err))
		return
	}
	cached := map[string]bool{}
	for _, cell := range cells {
		if s.cfg.Store.Has(cell.Key) {
			cached[cell.Key] = true
		}
	}
	cold := len(cells) - len(cached)

	// Degraded read-only mode: the store cannot be written (or the
	// operator pinned -readonly), so this process can serve exactly what
	// the fleet already computed. Fully-cached sweeps resolve instantly
	// as static jobs; anything needing execution is refused with 503 so
	// the client retries against a writable peer.
	if s.readOnly.Load() {
		if cold > 0 {
			s.cfg.Counters.Add("server.rejected.readonly", 1)
			writeAPIError(w, &apiError{Status: http.StatusServiceUnavailable, Code: "degraded-read-only",
				Message: fmt.Sprintf("server is read-only and %d of %d cells are not cached; resubmit to a writable server",
					cold, len(cells))})
			return
		}
		s.mu.Lock()
		j, ok := s.jobs[key]
		if !ok {
			j = newJob(key, c, cells, cached)
			s.jobs[key] = j
		}
		s.mu.Unlock()
		if ok {
			s.cfg.Counters.Add("server.sweeps.deduped", 1)
		} else {
			s.cfg.Counters.Add("server.sweeps.submitted", 1)
			s.cfg.Counters.Add("server.cells.cached", int64(len(cached)))
			s.cfg.Counters.Add("server.sweeps.completed", 1)
			// All cells are terminal at creation: publish once so SSE
			// subscribers get an immediate snapshot + done.
			j.publish(j.view(s.cfg.Store, s.draining.Load()))
		}
		writeJSON(w, http.StatusOK, j.view(s.cfg.Store, s.draining.Load()))
		return
	}

	s.mu.Lock()
	if j, ok := s.jobs[key]; ok {
		// Lost the singleflight race to a concurrent identical submission.
		s.mu.Unlock()
		s.cfg.Counters.Add("server.sweeps.deduped", 1)
		writeJSON(w, http.StatusOK, j.view(s.cfg.Store, s.draining.Load()))
		return
	}
	if s.activeCold+cold > s.cfg.QueueBound {
		depth := s.activeCold
		s.mu.Unlock()
		s.cfg.Counters.Add("server.rejected.backpressure", 1)
		writeAPIError(w, &apiError{Status: http.StatusTooManyRequests, Code: "queue-full",
			Message: fmt.Sprintf("sweep needs %d cold cells but %d of %d queue slots are taken; retry later",
				cold, depth, s.cfg.QueueBound)})
		return
	}

	j := newJob(key, c, cells, cached)
	batch, err := s.exec.Submit(shard.BatchSpec{
		Cells: cells,
		NewRunner: func() *experiments.Runner {
			o := c.Options(s.cfg.Seed)
			o.Checkpoint = s.cfg.Store
			o.Progress = s.cfg.Progress
			return experiments.NewRunner(o)
		},
	})
	if err != nil {
		s.mu.Unlock()
		writeAPIError(w, &apiError{Status: http.StatusInternalServerError, Code: "enqueue-failed",
			Message: err.Error()})
		return
	}
	j.batch = batch
	j.queue = batch.Queue()
	s.jobs[key] = j
	s.activeCold += cold
	s.wg.Add(1)
	s.mu.Unlock()

	s.cfg.Counters.Add("server.sweeps.submitted", 1)
	s.cfg.Counters.Add("server.cells.cached", int64(len(cached)))
	s.cfg.Counters.Add("server.cells.cold", int64(cold))
	if s.cfg.Progress != nil {
		fmt.Fprintf(s.cfg.Progress, "server: job %s: %d cells (%d cached, %d cold)\n",
			key, len(cells), len(cached), cold)
	}
	go s.monitor(j)

	writeJSON(w, http.StatusAccepted, j.view(s.cfg.Store, s.draining.Load()))
}

// monitor derives and publishes a job's status until it is terminal (or
// the server shuts down), then releases the job's queue-bound slots.
func (s *Server) monitor(j *job) {
	defer s.wg.Done()
	for {
		j.publish(j.view(s.cfg.Store, s.draining.Load()))
		if j.done() {
			s.mu.Lock()
			s.activeCold -= j.coldAtSubmit
			s.mu.Unlock()
			s.cfg.Counters.Add("server.sweeps.completed", 1)
			return
		}
		select {
		case <-j.batch.Done():
			// Resolved: loop once more so the terminal view publishes.
		case <-time.After(s.cfg.MonitorPoll):
		case <-s.quit:
			return
		}
	}
}

func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// handleStatus is GET /v1/sweeps/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeAPIError(w, &apiError{Status: 404, Code: "unknown-job",
			Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.view(s.cfg.Store, s.draining.Load()))
}

// handleEvents is GET /v1/sweeps/{id}/events: an SSE stream of cell
// transitions ending in a "done" event. A snapshot of the current state
// is replayed first so late subscribers see every cell.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeAPIError(w, &apiError{Status: 404, Code: "unknown-job",
			Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeAPIError(w, &apiError{Status: 500, Code: "no-streaming",
			Message: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Subscribe before the snapshot so no transition falls between them;
	// a duplicate frame is harmless, a lost one is not.
	ch := j.subscribe()
	defer j.unsubscribe(ch)

	st := j.view(s.cfg.Store, s.draining.Load())
	writeSSE(w, "snapshot", st)
	if st.State == "done" {
		writeSSE(w, "done", Event{Job: j.key, Counts: st.Counts})
		fl.Flush()
		return
	}
	fl.Flush()

	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // job terminal: the "done" event was the last frame
			}
			writeSSE(w, ev.Type, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		}
	}
}

func writeSSE(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// handleResult is GET /v1/results/{cachekey}: the stored metrics
// artifact, by content-addressed entry hash.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("cachekey")
	blob, ok := s.cfg.Store.GetHash(hash)
	if !ok {
		s.cfg.Counters.Add("server.results.missed", 1)
		writeAPIError(w, &apiError{Status: 404, Code: "unknown-result",
			Message: fmt.Sprintf("no artifact %q", hash)})
		return
	}
	s.cfg.Counters.Add("server.results.served", 1)
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

// FleetStats is the worker-fleet section of GET /v1/stats: the
// coordination-layer health signals an operator watches when many
// machines share this server's store over a network filesystem.
type FleetStats struct {
	ReadOnly bool `json:"readOnly"`
	// MaxSkew is the configured clock-skew steal grace, as a duration
	// string.
	MaxSkew string `json:"maxSkew"`
	// LeasesStolen counts expired leases this process took over.
	LeasesStolen int64 `json:"leasesStolen"`
	// LeasesExpired counts crashed attempts charged on freshly-stolen
	// leases.
	LeasesExpired int64 `json:"leasesExpired"`
	// LeasesFastReclaimed counts same-host dead-pid reclaims that skipped
	// the TTL wait.
	LeasesFastReclaimed int64 `json:"leasesFastReclaimed"`
	// LeasesCorruptQuarantined counts torn/corrupt lease records moved
	// aside.
	LeasesCorruptQuarantined int64 `json:"leasesCorruptQuarantined"`
	// CellsFenced counts attempts voided because a newer lease epoch
	// superseded them; PublishFenced counts publications rejected at the
	// store by the fence.
	CellsFenced   int64 `json:"cellsFenced"`
	PublishFenced int64 `json:"publishFenced"`
	// IORetries counts transient shared-filesystem errors absorbed by
	// the retry policy.
	IORetries int64 `json:"ioRetries"`
}

// Stats is the GET /v1/stats response.
type Stats struct {
	Draining      bool             `json:"draining"`
	Jobs          int              `json:"jobs"`
	QueueDepth    int              `json:"queueDepth"`
	QueueBound    int              `json:"queueBound"`
	Workers       int              `json:"workers"`
	StoredResults int              `json:"storedResults"`
	Fleet         FleetStats       `json:"fleet"`
	Counters      map[string]int64 `json:"counters"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs, depth := len(s.jobs), s.activeCold
	s.mu.Unlock()
	names, values := s.cfg.Counters.Snapshot()
	counters := make(map[string]int64, len(names))
	for i, n := range names {
		counters[n] = values[i]
	}
	writeJSON(w, http.StatusOK, Stats{
		Draining:      s.draining.Load(),
		Jobs:          jobs,
		QueueDepth:    depth,
		QueueBound:    s.cfg.QueueBound,
		Workers:       s.exec.Workers(),
		StoredResults: s.cfg.Store.Len(),
		Fleet: FleetStats{
			ReadOnly:                 s.readOnly.Load(),
			MaxSkew:                  s.cfg.MaxSkew.String(),
			LeasesStolen:             counters["leases.stolen"],
			LeasesExpired:            counters["leases.expired"],
			LeasesFastReclaimed:      counters["leases.fast_reclaimed"],
			LeasesCorruptQuarantined: counters["leases.corrupt_quarantined"],
			CellsFenced:              counters["cells.fenced"],
			PublishFenced:            counters["publish.fenced"],
			IORetries:                counters["io.retries"],
		},
		Counters: counters,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.readOnly.Load():
		// Degraded but serving: cached artifacts and fully-cached sweeps
		// still work, so this is 200 with an explicit mode marker.
		writeJSON(w, http.StatusOK, map[string]string{"status": "degraded-read-only"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}
