package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/shard"
	"mglrusim/internal/telemetry"
)

// smallSweep is the gauntlet's standard submission: 1 workload × 2
// policies × 2 ratios = 4 cells, 1 trial at 0.1 scale, fast enough to
// execute cold in every test.
const smallSweep = `{"workloads":["ycsb-c"],"policies":["fifo","random"],"ratios":[0.5,0.9],"trials":1,"scale":0.1}`

const smallSweepCells = 4

const testSeed = 0xABC

func fastServerCfg(t *testing.T, store *checkpoint.Store, workers int) Config {
	t.Helper()
	// The 60s TTL keeps heartbeat starvation under full-suite load from
	// masquerading as a crashed worker — these tests assert exact
	// lease-expiry and completion counters.
	return Config{
		Store:        store,
		Dir:          filepath.Join(t.TempDir(), "queue"),
		Workers:      workers,
		Seed:         testSeed,
		ShardTTL:     60 * time.Second,
		ShardBackoff: 10 * time.Millisecond,
		ShardPoll:    10 * time.Millisecond,
		MonitorPoll:  10 * time.Millisecond,
		Counters:     telemetry.NewCounterSet(),
	}
}

func openStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	store, err := checkpoint.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		ts.Close()
	})
	return srv, ts
}

// postSweep submits a body and decodes the response, whatever its shape.
func postSweep(t *testing.T, ts *httptest.Server, body string) (int, JobStatus, *apiError) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode >= 400 {
		var ae apiError
		if err := json.Unmarshal(buf.Bytes(), &ae); err != nil {
			t.Fatalf("status %d with undecodable error body %q", resp.StatusCode, buf.String())
		}
		return resp.StatusCode, JobStatus{}, &ae
	}
	var st JobStatus
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatalf("status %d with undecodable job body %q", resp.StatusCode, buf.String())
	}
	return resp.StatusCode, st, nil
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := getJob(t, ts, id)
		if st.State == "done" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchArtifacts pulls every cell's artifact through the results
// endpoint, keyed by cache key.
func fetchArtifacts(t *testing.T, ts *httptest.Server, st JobStatus) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, cv := range st.Cells {
		resp, err := http.Get(ts.URL + "/v1/results/" + cv.CacheKey)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET result %s: status %d", cv.CacheKey, resp.StatusCode)
		}
		out[cv.CacheKey] = buf.Bytes()
	}
	return out
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerCacheVsCold is the acceptance e2e: the same sweep submitted
// cold on two independent servers produces byte-identical artifacts, and
// resubmitted against a warm store it answers entirely from cache (the
// hit counter proves >= 90% — here 100% — of cells never execute) with
// exactly the same bytes.
func TestServerCacheVsCold(t *testing.T) {
	store1 := openStore(t)
	_, ts1 := startServer(t, fastServerCfg(t, store1, 2))
	code, st, aerr := postSweep(t, ts1, smallSweep)
	if aerr != nil || code != http.StatusAccepted {
		t.Fatalf("cold submit: code %d err %v", code, aerr)
	}
	if len(st.Cells) != smallSweepCells {
		t.Fatalf("sweep expanded to %d cells, want %d", len(st.Cells), smallSweepCells)
	}
	done1 := waitJob(t, ts1, st.ID)
	cold1 := fetchArtifacts(t, ts1, done1)
	for _, cv := range done1.Cells {
		if cv.Status != "done" {
			t.Fatalf("cold cell %s/%s status %q, want done", cv.Workload, cv.Policy, cv.Status)
		}
		if cv.Summary == nil || cv.Summary.Trials != 1 {
			t.Fatalf("cold cell missing summary: %+v", cv)
		}
	}

	// An independent cold run on a second server: determinism means the
	// artifact bytes agree exactly.
	store2 := openStore(t)
	_, ts2 := startServer(t, fastServerCfg(t, store2, 3))
	_, st2, _ := postSweep(t, ts2, smallSweep)
	cold2 := fetchArtifacts(t, ts2, waitJob(t, ts2, st2.ID))
	if len(cold2) != len(cold1) {
		t.Fatalf("cold runs disagree on artifact count: %d vs %d", len(cold2), len(cold1))
	}
	for key, blob := range cold1 {
		if !bytes.Equal(cold2[key], blob) {
			t.Fatalf("cold runs diverge on artifact %s", key)
		}
	}

	// A third server over the warm store: the whole sweep is a cache hit.
	srv3, ts3 := startServer(t, fastServerCfg(t, store1, 2))
	code, st3, aerr := postSweep(t, ts3, smallSweep)
	if aerr != nil || code != http.StatusAccepted {
		t.Fatalf("warm submit: code %d err %v", code, aerr)
	}
	done3 := waitJob(t, ts3, st3.ID)
	for _, cv := range done3.Cells {
		if cv.Status != "cached" {
			t.Fatalf("warm cell %s/%s status %q, want cached", cv.Workload, cv.Policy, cv.Status)
		}
	}
	cachedCells := srv3.Counters().Get("server.cells.cached")
	coldCells := srv3.Counters().Get("server.cells.cold")
	if total := cachedCells + coldCells; total == 0 || cachedCells*10 < total*9 {
		t.Fatalf("warm submission cache rate %d/%d below 90%%", cachedCells, total)
	}
	if got := srv3.Counters().Get("cells.completed"); got != 0 {
		t.Fatalf("warm submission executed %d cells", got)
	}
	warm := fetchArtifacts(t, ts3, done3)
	for key, blob := range cold1 {
		if !bytes.Equal(warm[key], blob) {
			t.Fatalf("cached artifact %s differs from the cold bytes", key)
		}
	}
}

// TestServerSingleflight: 8 clients submitting the identical sweep
// concurrently share one job and one execution.
func TestServerSingleflight(t *testing.T) {
	store := openStore(t)
	srv, ts := startServer(t, fastServerCfg(t, store, 3))

	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(smallSweep))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("client %d got job %s, client 0 got %s", i, ids[i], ids[0])
		}
	}
	if got := srv.Counters().Get("server.sweeps.submitted"); got != 1 {
		t.Fatalf("server.sweeps.submitted = %d, want 1", got)
	}
	if got := srv.Counters().Get("server.sweeps.deduped"); got != clients-1 {
		t.Fatalf("server.sweeps.deduped = %d, want %d", got, clients-1)
	}

	waitJob(t, ts, ids[0])
	srv.Drain() // settle in-flight counter adds before asserting
	if got := srv.Counters().Get("cells.completed"); got != smallSweepCells {
		t.Fatalf("cells.completed = %d, want %d (one execution for %d clients)",
			got, smallSweepCells, clients)
	}
	if store.Len() != smallSweepCells {
		t.Fatalf("store holds %d artifacts, want %d", store.Len(), smallSweepCells)
	}
}

// TestServerCrashedWorkerRecovery: a cell whose previous attempt died
// mid-execution (running flag on disk, lease gone) is requeued and the
// job still completes with no lost or duplicated cells.
func TestServerCrashedWorkerRecovery(t *testing.T) {
	store := openStore(t)
	cfg := fastServerCfg(t, store, 2)

	// Enumerate exactly as the server will, and plant the crash residue in
	// its queue directory before it starts.
	c, aerr := ParseSweepRequest(strings.NewReader(smallSweep), cfg.Limits)
	if aerr != nil {
		t.Fatal(aerr)
	}
	cells, err := experiments.SweepCells(c.Options(testSeed), c.SweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := shard.SimulateCrashedAttempt(cfg.Dir, cells[0]); err != nil {
		t.Fatal(err)
	}

	srv, ts := startServer(t, cfg)
	_, st, aerr2 := postSweep(t, ts, smallSweep)
	if aerr2 != nil {
		t.Fatal(aerr2)
	}
	done := waitJob(t, ts, st.ID)
	srv.Drain() // settle in-flight counter adds before asserting
	for _, cv := range done.Cells {
		if cv.Status != "done" {
			t.Fatalf("cell %s/%s status %q after crash recovery", cv.Workload, cv.Policy, cv.Status)
		}
	}
	if got := srv.Counters().Get("leases.expired"); got != 1 {
		t.Fatalf("leases.expired = %d, want 1 (the planted crash)", got)
	}
	if got := srv.Counters().Get("cells.requeued"); got != 1 {
		t.Fatalf("cells.requeued = %d, want 1", got)
	}
	if got := srv.Counters().Get("cells.completed"); got != int64(len(cells)) {
		t.Fatalf("cells.completed = %d, want %d (no lost or duplicated cells)", got, len(cells))
	}
}

// TestServerDrainUnderLoad: SIGTERM semantics — draining mid-sweep
// finishes in-flight cells, rejects new submissions with 503, leaves the
// store consistent (every entry a complete, decodable artifact), and a
// fresh server over the same directories finishes the job.
func TestServerDrainUnderLoad(t *testing.T) {
	store := openStore(t)
	cfg := fastServerCfg(t, store, 1)
	srv1, ts1 := startServer(t, cfg)
	_, st, aerr := postSweep(t, ts1, smallSweep)
	if aerr != nil {
		t.Fatal(aerr)
	}
	time.Sleep(30 * time.Millisecond) // let execution start
	srv1.Drain()

	if code, _, ae := postSweep(t, ts1, smallSweep); code != http.StatusServiceUnavailable || ae == nil || ae.Code != "draining" {
		t.Fatalf("submit while draining: code %d err %+v, want 503/draining", code, ae)
	}
	if resp, err := http.Get(ts1.URL + "/v1/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
		}
	}
	// Store consistency at the drain point: nothing torn.
	for _, h := range store.Hashes() {
		blob, ok := store.GetHash(h)
		if !ok {
			t.Fatalf("listed artifact %s unreadable after drain", h)
		}
		if _, ok := experiments.SummarizeSeriesBlob(blob); !ok {
			t.Fatalf("artifact %s does not decode after drain", h)
		}
	}

	// A fresh server over the same store and queue directory resumes.
	srv2, ts2 := startServer(t, Config{
		Store: store, Dir: cfg.Dir, Workers: 2, Seed: testSeed,
		ShardTTL: cfg.ShardTTL, ShardBackoff: cfg.ShardBackoff, ShardPoll: cfg.ShardPoll,
		MonitorPoll: cfg.MonitorPoll, Counters: telemetry.NewCounterSet(),
	})
	_, st2, aerr2 := postSweep(t, ts2, smallSweep)
	if aerr2 != nil {
		t.Fatal(aerr2)
	}
	if st2.ID != st.ID {
		t.Fatalf("resumed job id %s, want %s (content-addressed identity)", st2.ID, st.ID)
	}
	waitJob(t, ts2, st2.ID)
	srv2.Drain()
	if store.Len() != smallSweepCells {
		t.Fatalf("store holds %d artifacts after resume, want %d", store.Len(), smallSweepCells)
	}
	executed := srv1.Counters().Get("cells.completed") + srv2.Counters().Get("cells.completed")
	if executed != smallSweepCells {
		t.Fatalf("cells executed across drain+resume = %d, want %d (none lost, none repeated)",
			executed, smallSweepCells)
	}
}

// TestServerSSE: the events stream opens with a snapshot, reports cell
// transitions, and terminates with a done event when the job resolves.
func TestServerSSE(t *testing.T) {
	store := openStore(t)
	_, ts := startServer(t, fastServerCfg(t, store, 1))
	_, st, aerr := postSweep(t, ts, smallSweep)
	if aerr != nil {
		t.Fatal(aerr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/sweeps/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
	}
	if len(events) == 0 {
		t.Fatal("no SSE events received")
	}
	if events[0] != "snapshot" {
		t.Fatalf("first event %q, want snapshot", events[0])
	}
	if events[len(events)-1] != "done" {
		t.Fatalf("last event %q, want done (got sequence %v)", events[len(events)-1], events)
	}
	for _, ev := range events[1 : len(events)-1] {
		if ev != "cell" {
			t.Fatalf("unexpected mid-stream event %q in %v", ev, events)
		}
	}
}

// TestServerLookupMisses: unknown job ids and artifact hashes are clean
// structured 404s, and stats reflects reality.
func TestServerLookupMisses(t *testing.T) {
	store := openStore(t)
	srv, ts := startServer(t, fastServerCfg(t, store, 1))

	for _, path := range []string{"/v1/sweeps/sw-nope", "/v1/results/feedfacefeedface"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var ae apiError
		err = json.NewDecoder(resp.Body).Decode(&ae)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 404 {
			t.Fatalf("GET %s: status %d decode err %v", path, resp.StatusCode, err)
		}
	}
	// Path traversal through the results endpoint never reaches the disk.
	resp, err := http.Get(ts.URL + "/v1/results/" + strings.Repeat("..%2f", 4) + "etc%2fpasswd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("traversal path served a 200")
	}
	if got := srv.Counters().Get("server.results.served"); got != 0 {
		t.Fatalf("server.results.served = %d, want 0", got)
	}

	stats := getStats(t, ts)
	if stats.Jobs != 0 || stats.QueueDepth != 0 || stats.Draining {
		t.Fatalf("idle stats = %+v", stats)
	}
	if stats.Workers != 1 {
		t.Fatalf("stats.Workers = %d, want 1", stats.Workers)
	}
}

// TestServerBackpressure: a sweep whose cold cells exceed the queue
// bound is rejected with 429 and never creates a job.
func TestServerBackpressure(t *testing.T) {
	store := openStore(t)
	cfg := fastServerCfg(t, store, 1)
	cfg.QueueBound = 2 // smaller than the 4-cell sweep
	srv, ts := startServer(t, cfg)

	code, _, ae := postSweep(t, ts, smallSweep)
	if code != http.StatusTooManyRequests || ae == nil || ae.Code != "queue-full" {
		t.Fatalf("over-bound submit: code %d err %+v, want 429/queue-full", code, ae)
	}
	if got := srv.Counters().Get("server.rejected.backpressure"); got != 1 {
		t.Fatalf("server.rejected.backpressure = %d, want 1", got)
	}
	if stats := getStats(t, ts); stats.Jobs != 0 {
		t.Fatalf("rejected sweep created a job: %+v", stats)
	}
	if store.Len() != 0 {
		t.Fatalf("rejected sweep executed cells: store has %d entries", store.Len())
	}
}

// TestReadOnlyDegradedMode: a read-only server serves fully-cached
// sweeps as instantly-done static jobs and refuses anything that would
// need execution with an actionable 503, while healthz and /v1/stats
// advertise the degraded mode.
func TestReadOnlyDegradedMode(t *testing.T) {
	// Warm a store with the sweep's cells via a normal writable server.
	store := openStore(t)
	_, warmTS := startServer(t, fastServerCfg(t, store, 2))
	code, st, aerr := postSweep(t, warmTS, smallSweep)
	if aerr != nil {
		t.Fatalf("warm submit: %d %v", code, aerr)
	}
	waitJob(t, warmTS, st.ID)

	// A read-only server over the same store.
	roCfg := fastServerCfg(t, store, 1)
	roCfg.ReadOnly = true
	roSrv, roTS := startServer(t, roCfg)

	// healthz: 200 but explicitly degraded.
	resp, err := http.Get(roTS.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != 200 || health["status"] != "degraded-read-only" {
		t.Fatalf("healthz = %d %v, want 200 degraded-read-only", resp.StatusCode, health)
	}

	// Fully-cached sweep: served, already done, every cell cached.
	code, st, aerr = postSweep(t, roTS, smallSweep)
	if aerr != nil || code != 200 {
		t.Fatalf("cached submit on read-only server: %d %v", code, aerr)
	}
	if st.State != "done" {
		t.Fatalf("read-only cached job state = %q, want done", st.State)
	}
	if st.Counts["cached"] != smallSweepCells {
		t.Fatalf("read-only cached counts = %v, want %d cached", st.Counts, smallSweepCells)
	}
	// Status and results endpoints work for the static job.
	got := getJob(t, roTS, st.ID)
	if got.State != "done" {
		t.Fatalf("static job status = %q, want done", got.State)
	}
	resp, err = http.Get(roTS.URL + "/v1/results/" + st.Cells[0].CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("result fetch on read-only server = %d, want 200", resp.StatusCode)
	}

	// A sweep with cold cells: refused with 503 degraded-read-only.
	cold := `{"workloads":["ycsb-c"],"policies":["clock"],"ratios":[0.5],"trials":1,"scale":0.1}`
	code, _, aerr = postSweep(t, roTS, cold)
	if code != http.StatusServiceUnavailable || aerr == nil || aerr.Code != "degraded-read-only" {
		t.Fatalf("cold submit on read-only server = %d %v, want 503 degraded-read-only", code, aerr)
	}
	if roSrv.Counters().Get("server.rejected.readonly") != 1 {
		t.Fatalf("server.rejected.readonly = %d, want 1", roSrv.Counters().Get("server.rejected.readonly"))
	}

	// Stats advertises the fleet section with the degraded flag.
	resp, err = http.Get(roTS.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if !stats.Fleet.ReadOnly {
		t.Fatalf("stats.fleet.readOnly = false, want true (stats %+v)", stats)
	}
}

// TestAutoDegradeUnwritableDir: a server pointed at an unwritable queue
// directory degrades to read-only automatically instead of failing every
// submission at claim time.
func TestAutoDegradeUnwritableDir(t *testing.T) {
	store := openStore(t)
	cfg := fastServerCfg(t, store, 1)
	if err := os.MkdirAll(cfg.Dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(cfg.Dir, 0o755) })
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions do not restrict writes")
	}
	srv, _ := startServer(t, cfg)
	if !srv.readOnly.Load() {
		t.Fatal("server did not auto-degrade on unwritable queue dir")
	}
}

// TestFleetStatsSurfacesCoordinationCounters: the /v1/stats fleet
// section reflects the shard executor's coordination counters.
func TestFleetStatsSurfacesCoordinationCounters(t *testing.T) {
	store := openStore(t)
	cfg := fastServerCfg(t, store, 2)
	cfg.MaxSkew = 5 * time.Second
	_, ts := startServer(t, cfg)
	code, st, aerr := postSweep(t, ts, smallSweep)
	if aerr != nil {
		t.Fatalf("submit: %d %v", code, aerr)
	}
	waitJob(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Fleet.MaxSkew != "5s" {
		t.Fatalf("stats.fleet.maxSkew = %q, want 5s", stats.Fleet.MaxSkew)
	}
	if stats.Fleet.ReadOnly {
		t.Fatal("writable server reports readOnly")
	}
	// A healthy single-process run steals and fences nothing.
	if stats.Fleet.LeasesStolen != 0 || stats.Fleet.CellsFenced != 0 {
		t.Fatalf("healthy run shows steals/fences: %+v", stats.Fleet)
	}
	if stats.Counters["cells.completed"] != smallSweepCells {
		t.Fatalf("cells.completed = %d, want %d", stats.Counters["cells.completed"], smallSweepCells)
	}
}
