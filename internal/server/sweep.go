// Package server is the simulation-as-a-service layer: a long-running
// HTTP daemon that accepts scenario sweeps (workloads × policies ×
// system axes), answers them mostly from the content-addressed
// checkpoint cache, and schedules cold cells onto the crash-tolerant
// shard executor. Jobs are first-class resources with per-cell state,
// an SSE progress stream, and content-addressed result artifacts.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
	"mglrusim/internal/fault"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/workload"
)

// SweepRequest is the wire form of one scenario submission: the axes of
// the sweep in registry vocabulary, plus optional methodology overrides.
// Unknown fields are rejected.
type SweepRequest struct {
	// Workloads and Policies are registry names (required, non-empty).
	Workloads []string `json:"workloads"`
	Policies  []string `json:"policies"`
	// Ratios is the capacity-ratio ladder. Empty means the default system
	// ratio (0.5).
	Ratios []float64 `json:"ratios,omitempty"`
	// Swaps is the swap-medium axis: "ssd" and/or "zram". Empty means ssd.
	Swaps []string `json:"swaps,omitempty"`
	// Trials per cell. 0 means the server default.
	Trials int `json:"trials,omitempty"`
	// Scale multiplies workload footprints. 0 means the server default.
	Scale float64 `json:"scale,omitempty"`
	// System optionally overrides system-config knobs for every cell.
	System *SystemOverride `json:"system,omitempty"`
}

// SystemOverride is the subset of core.SystemConfig a client may set.
type SystemOverride struct {
	// CPUs overrides the hardware-context count (default 12).
	CPUs int `json:"cpus,omitempty"`
	// RegionPTEs requests a page-table region fanout. It must match the
	// fanout the server lays workloads out with; a differing value is the
	// classic region-fanout mismatch and is rejected at validation time
	// (core.FanoutMismatchError) instead of failing every cell at
	// execution time.
	RegionPTEs int `json:"regionPTEs,omitempty"`
	// PageCache enables the file-backed page cache (default profile) for
	// every cell. Workloads that map no file segment run unchanged, so
	// mixing serve with anon-only workloads in one sweep is safe.
	PageCache bool `json:"pagecache,omitempty"`
	// Fault applies a named fault-injection preset to every cell ("mild",
	// "severe", "file-mild", "file-severe"; "", "off", and "none" inject
	// nothing). A file-targeted preset combined with PageCache switches
	// the cache to its degraded profile (hard dirty throttle armed) so
	// server cells share cache keys with the batch ext3 figure.
	Fault string `json:"fault,omitempty"`
}

// apiError is a structured 4xx/5xx response body.
type apiError struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{Status: 400, Code: code, Message: fmt.Sprintf(format, args...)}
}

// Limits bound what one submission may ask for.
type Limits struct {
	// MaxCells caps the sweep size (axis product after dedup).
	MaxCells int
	// MaxTrials caps per-cell trials.
	MaxTrials int
	// MaxScale caps the workload scale factor.
	MaxScale float64
	// DefaultTrials and DefaultScale fill zero request fields.
	DefaultTrials int
	DefaultScale  float64
	// RegionPTEs is the fanout the server lays workloads out with
	// (0 = workload.DefaultRegionPTEs).
	RegionPTEs int
}

func (l Limits) withDefaults() Limits {
	if l.MaxCells <= 0 {
		l.MaxCells = 64
	}
	if l.MaxTrials <= 0 {
		l.MaxTrials = 25
	}
	if l.MaxScale <= 0 {
		l.MaxScale = 2
	}
	if l.DefaultTrials <= 0 {
		l.DefaultTrials = 3
	}
	if l.DefaultScale <= 0 {
		l.DefaultScale = 0.2
	}
	return l
}

// effectiveFanout is the region fanout workloads are actually laid out
// with under these limits.
func (l Limits) effectiveFanout() int {
	if l.RegionPTEs > 0 {
		return l.RegionPTEs
	}
	return workload.DefaultRegionPTEs
}

// Canonical is a validated, canonicalized sweep: axes sorted and
// deduplicated, defaults applied, every name verified against the
// registry. Two submissions meaning the same sweep canonicalize to equal
// values — and therefore to the same JobKey — regardless of axis order,
// duplicates, or explicit-vs-defaulted fields.
type Canonical struct {
	Workloads  []string  `json:"workloads"`
	Policies   []string  `json:"policies"`
	Ratios     []float64 `json:"ratios"`
	Swaps      []string  `json:"swaps"`
	Trials     int       `json:"trials"`
	Scale      float64   `json:"scale"`
	CPUs       int       `json:"cpus"`
	RegionPTEs int       `json:"regionPTEs"`
	PageCache  bool      `json:"pagecache"`
	Fault      string    `json:"fault"`
}

// ParseSweepRequest decodes and validates one submission body against
// the limits, returning its canonical form. Every rejection is a typed
// *apiError; nothing is ever enqueued for an invalid request.
func ParseSweepRequest(r io.Reader, lim Limits) (Canonical, *apiError) {
	lim = lim.withDefaults()
	var c Canonical
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		return c, badRequest("bad-json", "malformed sweep request: %v", err)
	}
	if dec.More() {
		return c, badRequest("bad-json", "trailing data after sweep request")
	}
	return canonicalize(req, lim)
}

func canonicalize(req SweepRequest, lim Limits) (Canonical, *apiError) {
	var c Canonical

	var aerr *apiError
	c.Workloads, aerr = canonNames(req.Workloads, experiments.WorkloadNames(), "workload")
	if aerr != nil {
		return c, aerr
	}
	c.Policies, aerr = canonNames(req.Policies, experiments.PolicyNames(), "policy")
	if aerr != nil {
		return c, aerr
	}

	base := core.DefaultSystemConfig()
	c.Ratios = append([]float64(nil), req.Ratios...)
	if len(c.Ratios) == 0 {
		c.Ratios = []float64{base.Ratio}
	}
	sort.Float64s(c.Ratios)
	c.Ratios = dedupFloats(c.Ratios)
	for _, ratio := range c.Ratios {
		// The same plausibility band core.RunTrialOpts enforces, applied
		// before anything is enqueued.
		if ratio <= 0 || ratio > 1.5 {
			return c, badRequest("bad-ratio", "implausible capacity ratio %v (want 0 < ratio <= 1.5)", ratio)
		}
	}

	swaps := req.Swaps
	if len(swaps) == 0 {
		swaps = []string{core.SwapSSD.String()}
	}
	for _, sw := range swaps {
		if _, ok := swapByName(sw); !ok {
			return c, badRequest("bad-swap", "unknown swap medium %q (want ssd or zram)", sw)
		}
	}
	c.Swaps = dedupStrings(sortedCopy(swaps))

	c.Trials = req.Trials
	if c.Trials == 0 {
		c.Trials = lim.DefaultTrials
	}
	if c.Trials < 1 || c.Trials > lim.MaxTrials {
		return c, badRequest("bad-trials", "trials %d out of range [1, %d]", c.Trials, lim.MaxTrials)
	}

	c.Scale = req.Scale
	if c.Scale == 0 {
		c.Scale = lim.DefaultScale
	}
	if c.Scale < 0 || c.Scale > lim.MaxScale {
		return c, badRequest("bad-scale", "scale %g out of range (0, %g]", c.Scale, lim.MaxScale)
	}

	c.CPUs = base.CPUs
	c.RegionPTEs = lim.effectiveFanout()
	if req.System != nil {
		if req.System.CPUs != 0 {
			if req.System.CPUs < 1 || req.System.CPUs > 256 {
				return c, badRequest("bad-cpus", "cpus %d out of range [1, 256]", req.System.CPUs)
			}
			c.CPUs = req.System.CPUs
		}
		c.PageCache = req.System.PageCache
		if req.System.Fault != "" {
			plan, ok := fault.Preset(req.System.Fault)
			if !ok {
				return c, badRequest("bad-fault", "unknown fault preset %q (known: off, mild, severe, file-mild, file-severe)", req.System.Fault)
			}
			// Inert spellings ("off", "none") canonicalize to the empty
			// string so they share a JobKey with requests that omit the
			// field entirely.
			if plan.Enabled() {
				c.Fault = req.System.Fault
			}
		}
		if want := req.System.RegionPTEs; want != 0 && want != c.RegionPTEs {
			// The PR 6 typed mismatch, surfaced at validation time: the
			// system the client asks for could never run against the fanout
			// this server lays workloads out with.
			ferr := &core.FanoutMismatchError{Want: want, Have: c.RegionPTEs, Workload: "*"}
			return c, badRequest("fanout-mismatch", "%v", ferr)
		}
	}

	if n := len(c.Workloads) * len(c.Policies) * len(c.Ratios) * len(c.Swaps); n > lim.MaxCells {
		return c, badRequest("sweep-too-large", "sweep expands to %d cells, cap is %d", n, lim.MaxCells)
	}
	return c, nil
}

func canonNames(names, vocab []string, kind string) ([]string, *apiError) {
	if len(names) == 0 {
		return nil, badRequest("empty-axis", "at least one %s is required", kind)
	}
	known := map[string]bool{}
	for _, n := range vocab {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			return nil, badRequest("unknown-"+kind, "unknown %s %q (known: %v)", kind, n, vocab)
		}
	}
	return dedupStrings(sortedCopy(names)), nil
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func dedupStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func dedupFloats(sorted []float64) []float64 {
	out := sorted[:0]
	for i, f := range sorted {
		if i == 0 || f != sorted[i-1] {
			out = append(out, f)
		}
	}
	return out
}

func swapByName(name string) (core.SwapKind, bool) {
	switch name {
	case "ssd":
		return core.SwapSSD, true
	case "zram":
		return core.SwapZRAM, true
	}
	return 0, false
}

// JobKey derives the sweep's content-addressed job identity from its
// canonical form plus the server's methodology seed: same sweep, same
// job, across clients and submissions. The canonical JSON encoding is
// deterministic (fixed field order, sorted axes).
func (c Canonical) JobKey(seed uint64) string {
	data, err := json.Marshal(c)
	if err != nil {
		// Canonical contains only plain values; Marshal cannot fail.
		panic(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "sweep-v1|seed=%d|", seed)
	h.Write(data)
	return "sw-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// Encode renders the canonical form as its deterministic JSON.
func (c Canonical) Encode() []byte {
	data, err := json.Marshal(c)
	if err != nil {
		panic(err)
	}
	return data
}

// Reparse runs the canonical form back through validation — the
// idempotence check the fuzz target leans on: canonicalize(encode(c))
// must reproduce c exactly.
func (c Canonical) Reparse(lim Limits) (Canonical, *apiError) {
	return ParseSweepRequest(bytes.NewReader(c.reencodeAsRequest()), lim)
}

func (c Canonical) reencodeAsRequest() []byte {
	req := SweepRequest{
		Workloads: c.Workloads,
		Policies:  c.Policies,
		Ratios:    c.Ratios,
		Swaps:     c.Swaps,
		Trials:    c.Trials,
		Scale:     c.Scale,
		System:    &SystemOverride{CPUs: c.CPUs, RegionPTEs: c.RegionPTEs, PageCache: c.PageCache, Fault: c.Fault},
	}
	data, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return data
}

// SweepSpec expands the canonical sweep into the experiments vocabulary.
func (c Canonical) SweepSpec() experiments.SweepSpec {
	base := core.DefaultSystemConfig()
	base.CPUs = c.CPUs
	if c.PageCache {
		base.PageCache = pagecache.DefaultConfig()
	}
	if c.Fault != "" {
		plan, _ := fault.Preset(c.Fault)
		base.Fault = plan
		if c.PageCache && plan.TargetsFile() {
			// Degraded file device + page cache arms the hard dirty
			// throttle, exactly as the batch ext3 figure configures its
			// cells — so warmed stores answer both.
			base.PageCache = pagecache.DegradedConfig()
		}
	}
	swaps := make([]core.SwapKind, len(c.Swaps))
	for i, s := range c.Swaps {
		swaps[i], _ = swapByName(s)
	}
	return experiments.SweepSpec{
		Workloads: c.Workloads,
		Policies:  c.Policies,
		Base:      base,
		Ratios:    c.Ratios,
		Swaps:     swaps,
	}
}

// Options builds the experiment options every cell of this sweep runs
// under. Checkpoint/Veto/Progress are the caller's to attach; everything
// that enters the cache key (trials, scale, seed, fanout) comes from the
// canonical form and the server seed, so enumeration and execution agree
// on keys exactly.
func (c Canonical) Options(seed uint64) experiments.Options {
	return experiments.Options{
		Trials:      c.Trials,
		Scale:       c.Scale,
		Seed:        seed,
		RegionPTEs:  regionOrDefault(c.RegionPTEs),
		Parallelism: 1,
	}
}

// regionOrDefault maps the canonical (always-explicit) fanout back to
// the options encoding, where the workload default is expressed as 0 —
// keeping cache keys identical to batch pagebench runs that leave the
// knob unset.
func regionOrDefault(ptes int) int {
	if ptes == workload.DefaultRegionPTEs {
		return 0
	}
	return ptes
}
