package server

import (
	"strings"
	"testing"
)

// TestSweepRequestValidation is the satellite table: every malformed or
// out-of-range submission is a structured 4xx with the right code, and
// nothing reaches the executor.
func TestSweepRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		body string
		code string // expected apiError.Code
	}{
		{"malformed-json", `{"workloads": [`, "bad-json"},
		{"not-an-object", `[1,2,3]`, "bad-json"},
		{"unknown-field", `{"workloads":["ycsb-c"],"policies":["fifo"],"bogus":1}`, "bad-json"},
		{"trailing-data", `{"workloads":["ycsb-c"],"policies":["fifo"]} {"again":true}`, "bad-json"},
		{"wrong-type", `{"workloads":"ycsb-c","policies":["fifo"]}`, "bad-json"},
		{"no-workloads", `{"policies":["fifo"]}`, "empty-axis"},
		{"no-policies", `{"workloads":["ycsb-c"]}`, "empty-axis"},
		{"unknown-workload", `{"workloads":["tpcz"],"policies":["fifo"]}`, "unknown-workload"},
		{"unknown-policy", `{"workloads":["ycsb-c"],"policies":["marchetti"]}`, "unknown-policy"},
		{"zero-ratio", `{"workloads":["ycsb-c"],"policies":["fifo"],"ratios":[0]}`, "bad-ratio"},
		{"negative-ratio", `{"workloads":["ycsb-c"],"policies":["fifo"],"ratios":[-0.5]}`, "bad-ratio"},
		{"implausible-ratio", `{"workloads":["ycsb-c"],"policies":["fifo"],"ratios":[2.5]}`, "bad-ratio"},
		{"unknown-swap", `{"workloads":["ycsb-c"],"policies":["fifo"],"swaps":["tape"]}`, "bad-swap"},
		{"negative-trials", `{"workloads":["ycsb-c"],"policies":["fifo"],"trials":-1}`, "bad-trials"},
		{"excessive-trials", `{"workloads":["ycsb-c"],"policies":["fifo"],"trials":1000}`, "bad-trials"},
		{"negative-scale", `{"workloads":["ycsb-c"],"policies":["fifo"],"scale":-0.1}`, "bad-scale"},
		{"excessive-scale", `{"workloads":["ycsb-c"],"policies":["fifo"],"scale":100}`, "bad-scale"},
		{"zero-cpus", `{"workloads":["ycsb-c"],"policies":["fifo"],"system":{"cpus":-4}}`, "bad-cpus"},
		{"excessive-cpus", `{"workloads":["ycsb-c"],"policies":["fifo"],"system":{"cpus":1024}}`, "bad-cpus"},
		// The PR 6 typed region-fanout mismatch, caught at the door.
		{"fanout-mismatch", `{"workloads":["ycsb-c"],"policies":["fifo"],"system":{"regionPTEs":512}}`, "fanout-mismatch"},
		{"oversized-sweep", `{"workloads":["tpch","pagerank","ycsb-a","ycsb-b","ycsb-c"],` +
			`"policies":["clock","mglru","gen14","fifo","random"],` +
			`"ratios":[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9]}`, "sweep-too-large"},
	}

	// Unit layer: ParseSweepRequest classifies each case.
	for _, tc := range cases {
		t.Run("parse/"+tc.name, func(t *testing.T) {
			_, aerr := ParseSweepRequest(strings.NewReader(tc.body), Limits{})
			if aerr == nil {
				t.Fatalf("body accepted: %s", tc.body)
			}
			if aerr.Code != tc.code {
				t.Fatalf("code %q, want %q (message: %s)", aerr.Code, tc.code, aerr.Message)
			}
			if aerr.Status < 400 || aerr.Status > 499 {
				t.Fatalf("status %d, want 4xx", aerr.Status)
			}
		})
	}

	// HTTP layer: the same bodies through the endpoint — structured 4xx,
	// and the server never creates a job or executes a cell.
	store := openStore(t)
	srv, ts := startServer(t, fastServerCfg(t, store, 1))
	for _, tc := range cases {
		t.Run("http/"+tc.name, func(t *testing.T) {
			code, _, aerr := postSweep(t, ts, tc.body)
			if aerr == nil || code < 400 || code > 499 {
				t.Fatalf("status %d, want structured 4xx", code)
			}
			if aerr.Code != tc.code {
				t.Fatalf("code %q, want %q", aerr.Code, tc.code)
			}
		})
	}
	if got := srv.Counters().Get("server.rejected.invalid"); got != int64(len(cases)) {
		t.Fatalf("server.rejected.invalid = %d, want %d", got, len(cases))
	}
	if got := srv.Counters().Get("server.sweeps.submitted"); got != 0 {
		t.Fatalf("invalid submissions created jobs: submitted = %d", got)
	}
	if stats := getStats(t, ts); stats.Jobs != 0 || stats.QueueDepth != 0 {
		t.Fatalf("invalid submissions left state behind: %+v", stats)
	}
	if store.Len() != 0 {
		t.Fatalf("invalid submissions executed cells: store has %d entries", store.Len())
	}
}

// TestCanonicalizeNormalizes: axis order, duplicates, and defaulted
// fields never change the canonical form or the job identity.
func TestCanonicalizeNormalizes(t *testing.T) {
	a, aerr := ParseSweepRequest(strings.NewReader(
		`{"workloads":["ycsb-c","tpch","ycsb-c"],"policies":["random","fifo"],"ratios":[0.9,0.5,0.9]}`), Limits{})
	if aerr != nil {
		t.Fatal(aerr)
	}
	b, aerr := ParseSweepRequest(strings.NewReader(
		`{"workloads":["tpch","ycsb-c"],"policies":["fifo","random"],"ratios":[0.5,0.9],"trials":3,"scale":0.2}`), Limits{})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if ka, kb := a.JobKey(1), b.JobKey(1); ka != kb {
		t.Fatalf("equivalent sweeps got different job keys: %s vs %s\n%s\n%s",
			ka, kb, a.Encode(), b.Encode())
	}
	if ka, kb := a.JobKey(1), a.JobKey(2); ka == kb {
		t.Fatal("job key ignores the methodology seed")
	}
	if got, want := string(a.Encode()), string(b.Encode()); got != want {
		t.Fatalf("canonical encodings differ:\n%s\n%s", got, want)
	}
}

// TestPageCacheKnob: the pagecache override survives canonicalization,
// changes the job identity, round-trips through the reparse idempotence
// path, and threads into the sweep's base system config.
func TestPageCacheKnob(t *testing.T) {
	body := `{"workloads":["serve"],"policies":["mglru","mglru-nopid"],"ratios":[0.5],"system":{"pagecache":true}}`
	c, aerr := ParseSweepRequest(strings.NewReader(body), Limits{})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !c.PageCache {
		t.Fatal("pagecache override dropped during canonicalization")
	}
	if !c.SweepSpec().Base.PageCache.Enabled {
		t.Fatal("canonical pagecache not threaded into the sweep base config")
	}
	re, aerr := c.Reparse(Limits{})
	if aerr != nil {
		t.Fatalf("reparse: %v", aerr)
	}
	if string(re.Encode()) != string(c.Encode()) {
		t.Fatalf("reparse not idempotent:\n%s\n%s", re.Encode(), c.Encode())
	}

	plain, aerr := ParseSweepRequest(strings.NewReader(
		`{"workloads":["serve"],"policies":["mglru","mglru-nopid"],"ratios":[0.5]}`), Limits{})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if plain.SweepSpec().Base.PageCache.Enabled {
		t.Fatal("pagecache enabled without the override")
	}
	if c.JobKey(1) == plain.JobKey(1) {
		t.Fatal("pagecache override does not change the job identity")
	}
}

// TestValidationTimeout sanity-checks the bounded request handling: an
// oversized body is cut off by the limit reader, not read forever.
func TestValidationBodyLimit(t *testing.T) {
	huge := `{"workloads":["` + strings.Repeat("x", 2<<20) + `"],"policies":["fifo"]}`
	_, aerr := ParseSweepRequest(strings.NewReader(huge), Limits{})
	if aerr == nil {
		t.Fatal("oversized body accepted")
	}
	if aerr.Code != "bad-json" {
		t.Fatalf("code %q, want bad-json (truncated at the byte limit)", aerr.Code)
	}
}

// TestFaultPresetKnob: the fault override validates, canonicalizes
// (inert spellings normalize away), changes job identity, and threads
// the resolved plan — plus the degraded page-cache profile for
// file-targeted plans — into the sweep base config.
func TestFaultPresetKnob(t *testing.T) {
	parse := func(body string) Canonical {
		t.Helper()
		c, aerr := ParseSweepRequest(strings.NewReader(body), Limits{})
		if aerr != nil {
			t.Fatalf("%s: %v", body, aerr)
		}
		return c
	}
	mk := func(preset string) string {
		if preset == "" {
			return `{"workloads":["serve"],"policies":["mglru"],"ratios":[0.5],"system":{"pagecache":true}}`
		}
		return `{"workloads":["serve"],"policies":["mglru"],"ratios":[0.5],"system":{"pagecache":true,"fault":"` + preset + `"}}`
	}

	// Unknown presets are rejected at the door.
	if _, aerr := ParseSweepRequest(strings.NewReader(mk("volcanic")), Limits{}); aerr == nil || aerr.Code != "bad-fault" {
		t.Fatalf("unknown preset: %+v", aerr)
	}

	// Inert spellings ("off", "none") canonicalize to the empty string, so
	// they share a job identity with the unfaulted request.
	plain := parse(mk(""))
	for _, inert := range []string{"off", "none"} {
		c := parse(mk(inert))
		if c.Fault != "" {
			t.Fatalf("%q did not normalize away: %q", inert, c.Fault)
		}
		if c.JobKey(1) != plain.JobKey(1) {
			t.Fatalf("inert preset %q changed the job identity", inert)
		}
	}

	for _, preset := range []string{"mild", "severe", "file-mild", "file-severe"} {
		c := parse(mk(preset))
		if c.Fault != preset {
			t.Fatalf("preset %q canonicalized to %q", preset, c.Fault)
		}
		if c.JobKey(1) == plain.JobKey(1) {
			t.Fatalf("preset %q does not change the job identity", preset)
		}
		spec := c.SweepSpec()
		if !spec.Base.Fault.Enabled() {
			t.Fatalf("preset %q not threaded into the sweep base config", preset)
		}
		// File-targeted plans against the page cache must run the degraded
		// profile (hard dirty throttle) — the same coupling the batch ext3
		// figure uses, so server cells and batch cells share cache keys.
		wantHard := strings.HasPrefix(preset, "file-")
		if gotHard := spec.Base.PageCache.DirtyHardRatio > 0; gotHard != wantHard {
			t.Fatalf("preset %q: degraded profile = %v, want %v", preset, gotHard, wantHard)
		}
		re, aerr := c.Reparse(Limits{})
		if aerr != nil {
			t.Fatalf("reparse %q: %v", preset, aerr)
		}
		if string(re.Encode()) != string(c.Encode()) {
			t.Fatalf("reparse of %q not idempotent:\n%s\n%s", preset, re.Encode(), c.Encode())
		}
	}
}
