package shard

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/telemetry"
)

// chaosEnvDir, when set, turns this test binary into a shard worker over
// the given directory — the helper-process half of the kill-storm test.
const chaosEnvDir = "SHARD_CHAOS_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(chaosEnvDir); dir != "" {
		os.Exit(chaosWorkerMain(dir))
	}
	os.Exit(m.Run())
}

// chaosOpts are the fixed methodology knobs both the coordinator-side
// test and the helper workers derive the cell set from; they must agree
// or the keys would not line up (exactly the property pagebench gets by
// passing identical flags to its workers).
func chaosOpts() experiments.Options {
	return experiments.Options{Trials: 2, Scale: 0.2, Seed: 0xABC, Parallelism: 1}
}

func chaosCfg(dir string, store *checkpoint.Store) Config {
	return Config{
		Dir:     filepath.Join(dir, "queue"),
		Store:   store,
		TTL:     400 * time.Millisecond,
		Backoff: 20 * time.Millisecond,
		Poll:    20 * time.Millisecond,
	}
}

// chaosWorkerMain is the body of one spawned worker process: enumerate
// the same cells from the same knobs, join the on-disk queue, drain on
// SIGINT/SIGTERM, exit 0 when the queue is resolved.
func chaosWorkerMain(dir string) int {
	store, err := checkpoint.Open(filepath.Join(dir, "store"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cells, err := experiments.CellsFor(chaosOpts(), experiments.Figures["fig1"])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	q, err := NewQueue(chaosCfg(dir, store), cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var drain atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		drain.Store(true)
	}()
	opts := chaosOpts()
	opts.Checkpoint = store
	if err := q.RunWorker(WorkerConfig{Runner: experiments.NewRunner(opts), Drain: &drain}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// TestKillStormConvergesByteIdentical is the tentpole acceptance test:
// three worker processes chew through fig1's cells while a kill storm
// SIGKILLs live workers mid-run; the coordinator respawns them, expired
// leases are stolen, crashed attempts are requeued, and the run still
// converges with zero poisoned cells and a figure byte-identical to a
// fresh serial run.
func TestKillStormConvergesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	store, err := checkpoint.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := experiments.CellsFor(chaosOpts(), experiments.Figures["fig1"])
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosCfg(dir, store)
	cfg.Counters = telemetry.NewCounterSet()

	var mu sync.Mutex
	var procs []*os.Process
	spawn := func(slot int) (Handle, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), chaosEnvDir+"="+dir)
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		mu.Lock()
		procs = append(procs, cmd.Process)
		mu.Unlock()
		return NewCmdHandle(cmd), nil
	}

	co := &Coordinator{Cfg: cfg, Cells: cells, Workers: 3, Spawn: spawn}

	// Kill storm: SIGKILL two live workers mid-run. Process.Kill on an
	// already-exited worker errors and is not counted, so each delivered
	// kill really tore down a running worker without any cleanup.
	stop := make(chan struct{})
	var kills atomic.Int64
	var stormWG sync.WaitGroup
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		next := 0
		for delay := 150 * time.Millisecond; kills.Load() < 2; delay = 250 * time.Millisecond {
			select {
			case <-stop:
				return
			case <-time.After(delay):
			}
			mu.Lock()
			for ; next < len(procs); next++ {
				if procs[next].Kill() == nil {
					kills.Add(1)
					break
				}
			}
			mu.Unlock()
		}
	}()

	rep, err := co.Run()
	close(stop)
	stormWG.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v (report %+v)", err, rep)
	}
	if !rep.Progress.Resolved() {
		t.Fatalf("queue not resolved: %+v", rep.Progress)
	}
	if len(rep.Poisoned) != 0 {
		t.Fatalf("kill storm poisoned cells: %+v", rep.Poisoned)
	}
	// Requeue/expiry counters live in the worker processes' own sets; the
	// coordinator-side evidence of the storm is the restart count.
	t.Logf("kill storm: %d kills delivered, %d worker restarts", kills.Load(), rep.Restarts)
	for _, c := range cells {
		if !store.Has(c.Key) {
			t.Fatalf("cell %s/%s missing from the store after convergence", c.Workload, c.Policy)
		}
	}

	shardOpts := chaosOpts()
	shardOpts.Checkpoint = store
	shardOpts.Veto = Veto(cfg.Dir)
	sharded := renderFig1(t, shardOpts)
	serial := renderFig1(t, chaosOpts())
	if sharded != serial {
		t.Fatalf("kill-storm figure differs from a fresh serial run:\n--- serial ---\n%s\n--- sharded ---\n%s", serial, sharded)
	}
}
