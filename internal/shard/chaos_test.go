package shard

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/telemetry"
)

// chaosEnvDir, when set, turns this test binary into a shard worker over
// the given directory — the helper-process half of the kill-storm and
// SIGSTOP-fence tests.
const chaosEnvDir = "SHARD_CHAOS_DIR"

// chaosEnvSingle, when "1", restricts the helper worker to the first
// enumerated cell — the SIGSTOP-fence test wants exactly one cell so the
// paused worker and the stealing parent contend on the same lease.
const chaosEnvSingle = "SHARD_CHAOS_SINGLE"

// chaosEnvCounters, when set, makes the helper worker dump its counter
// set ("name value" lines) to the given path on clean exit, so the
// parent can assert on fence counters observed inside the worker.
const chaosEnvCounters = "SHARD_CHAOS_COUNTERS"

func TestMain(m *testing.M) {
	if dir := os.Getenv(chaosEnvDir); dir != "" {
		os.Exit(chaosWorkerMain(dir))
	}
	os.Exit(m.Run())
}

// chaosOpts are the fixed methodology knobs both the coordinator-side
// test and the helper workers derive the cell set from; they must agree
// or the keys would not line up (exactly the property pagebench gets by
// passing identical flags to its workers).
func chaosOpts() experiments.Options {
	return experiments.Options{Trials: 2, Scale: 0.2, Seed: 0xABC, Parallelism: 1}
}

func chaosCfg(dir string, store *checkpoint.Store) Config {
	return Config{
		Dir:     filepath.Join(dir, "queue"),
		Store:   store,
		TTL:     400 * time.Millisecond,
		MaxSkew: 100 * time.Millisecond,
		Backoff: 20 * time.Millisecond,
		Poll:    20 * time.Millisecond,
	}
}

// chaosWorkerMain is the body of one spawned worker process: enumerate
// the same cells from the same knobs, join the on-disk queue, drain on
// SIGINT/SIGTERM, exit 0 when the queue is resolved.
func chaosWorkerMain(dir string) int {
	store, err := checkpoint.Open(filepath.Join(dir, "store"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cells, err := experiments.CellsFor(chaosOpts(), experiments.Figures["fig1"])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if os.Getenv(chaosEnvSingle) == "1" {
		cells = cells[:1]
	}
	cfg := chaosCfg(dir, store)
	cfg.Counters = telemetry.NewCounterSet()
	q, err := NewQueue(cfg, cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var drain atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		drain.Store(true)
	}()
	opts := chaosOpts()
	opts.Checkpoint = store
	if err := q.RunWorker(WorkerConfig{Runner: experiments.NewRunner(opts), Drain: &drain}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if path := os.Getenv(chaosEnvCounters); path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := cfg.Counters.WriteText(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// TestKillStormConvergesByteIdentical is the tentpole acceptance test:
// three worker processes chew through fig1's cells while a kill storm
// SIGKILLs live workers mid-run; the coordinator respawns them, expired
// leases are stolen, crashed attempts are requeued, and the run still
// converges with zero poisoned cells and a figure byte-identical to a
// fresh serial run.
func TestKillStormConvergesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	store, err := checkpoint.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := experiments.CellsFor(chaosOpts(), experiments.Figures["fig1"])
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosCfg(dir, store)
	cfg.Counters = telemetry.NewCounterSet()

	var mu sync.Mutex
	var procs []*os.Process
	spawn := func(slot int) (Handle, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), chaosEnvDir+"="+dir)
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		mu.Lock()
		procs = append(procs, cmd.Process)
		mu.Unlock()
		return NewCmdHandle(cmd), nil
	}

	co := &Coordinator{Cfg: cfg, Cells: cells, Workers: 3, Spawn: spawn}

	// Kill storm: SIGKILL two live workers mid-run. Process.Kill on an
	// already-exited worker errors and is not counted, so each delivered
	// kill really tore down a running worker without any cleanup.
	stop := make(chan struct{})
	var kills atomic.Int64
	var stormWG sync.WaitGroup
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		next := 0
		for delay := 150 * time.Millisecond; kills.Load() < 2; delay = 250 * time.Millisecond {
			select {
			case <-stop:
				return
			case <-time.After(delay):
			}
			mu.Lock()
			for ; next < len(procs); next++ {
				if procs[next].Kill() == nil {
					kills.Add(1)
					break
				}
			}
			mu.Unlock()
		}
	}()

	rep, err := co.Run()
	close(stop)
	stormWG.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v (report %+v)", err, rep)
	}
	if !rep.Progress.Resolved() {
		t.Fatalf("queue not resolved: %+v", rep.Progress)
	}
	if len(rep.Poisoned) != 0 {
		t.Fatalf("kill storm poisoned cells: %+v", rep.Poisoned)
	}
	// Requeue/expiry counters live in the worker processes' own sets; the
	// coordinator-side evidence of the storm is the restart count.
	t.Logf("kill storm: %d kills delivered, %d worker restarts", kills.Load(), rep.Restarts)
	for _, c := range cells {
		if !store.Has(c.Key) {
			t.Fatalf("cell %s/%s missing from the store after convergence", c.Workload, c.Policy)
		}
	}

	shardOpts := chaosOpts()
	shardOpts.Checkpoint = store
	shardOpts.Veto = Veto(cfg.Dir)
	sharded := renderFig1(t, shardOpts)
	serial := renderFig1(t, chaosOpts())
	if sharded != serial {
		t.Fatalf("kill-storm figure differs from a fresh serial run:\n--- serial ---\n%s\n--- sharded ---\n%s", serial, sharded)
	}
}

// readCounterDump parses a CounterSet.WriteText dump ("name value"
// lines) written by a helper worker process.
func readCounterDump(t *testing.T, path string) map[string]int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading worker counter dump: %v", err)
	}
	out := map[string]int64{}
	for _, line := range strings.Split(string(data), "\n") {
		var name string
		var val int64
		if _, err := fmt.Sscanf(line, "%s %d", &name, &val); err == nil {
			out[name] = val
		}
	}
	return out
}

// TestSigstopZombieFencedAcrossProcesses is the multi-process half of the
// fencing story: a real worker process is SIGSTOPped mid-attempt (the
// harshest zombie — no Go-level cooperation, the whole process freezes,
// heartbeats included), its lease expires and is stolen by the parent,
// and when the process is SIGCONTed it finishes computing but its
// publication is fenced by epoch: the store keeps exactly the thief's
// bytes, no conflict sidecars appear, and the worker itself observes the
// fence in its own counters before exiting cleanly.
func TestSigstopZombieFencedAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	store, err := checkpoint.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := experiments.CellsFor(chaosOpts(), experiments.Figures["fig1"])
	if err != nil {
		t.Fatal(err)
	}
	cells = cells[:1] // same restriction the helper applies under chaosEnvSingle
	cfg := chaosCfg(dir, store)
	cfg.Counters = telemetry.NewCounterSet()
	countersPath := filepath.Join(dir, "worker-counters.txt")

	var stderr strings.Builder
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		chaosEnvDir+"="+dir, chaosEnvSingle+"=1", chaosEnvCounters+"="+countersPath)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until the worker has recorded its attempt and is executing the
	// trial, so the SIGSTOP lands mid-computation.
	q, err := NewQueue(cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		info := q.Inspect()[0]
		if info.Status == CellRunning && info.Attempts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never started executing (status %s, stderr: %s)", info.Status, stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let it get into the trial proper
	if err := cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}

	// The frozen worker stops heartbeating; once real time passes
	// TTL+MaxSkew the parent steals the lease, charges the crashed
	// attempt, requeues, and completes the cell itself.
	opts := chaosOpts()
	opts.Checkpoint = store
	wc := WorkerConfig{Owner: "parent-thief", Runner: experiments.NewRunner(opts)}
	deadline = time.Now().Add(30 * time.Second)
	for !store.Has(cells[0].Key) {
		if time.Now().After(deadline) {
			t.Fatal("parent failed to steal and complete the cell")
		}
		if _, _, err := q.Pass(wc); err != nil {
			t.Fatalf("parent pass: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := cfg.Counters.Get("leases.stolen"); got != 1 {
		t.Fatalf("parent leases.stolen = %d, want 1", got)
	}
	want, _ := store.Get(cells[0].Key)

	// Thaw the zombie. It finishes the stalled trial, is fenced at
	// publication, observes the store entry, and exits 0.
	if err := cmd.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()
	select {
	case err := <-waitc:
		if err != nil {
			t.Fatalf("worker exit after fence: %v (stderr: %s)", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("resumed worker did not exit")
	}

	workerCounters := readCounterDump(t, countersPath)
	if workerCounters["cells.fenced"] < 1 {
		t.Fatalf("worker cells.fenced = %d, want >= 1 (counters: %v)", workerCounters["cells.fenced"], workerCounters)
	}
	t.Logf("worker fence counters: cells.fenced=%d publish.fenced=%d leases.lost=%d",
		workerCounters["cells.fenced"], workerCounters["publish.fenced"], workerCounters["leases.lost"])

	got, _ := store.Get(cells[0].Key)
	if string(got) != string(want) {
		t.Fatal("resumed zombie altered the published bytes")
	}
	if m, _ := filepath.Glob(filepath.Join(store.Dir(), "*.conflict")); len(m) != 0 {
		t.Fatalf("fence let a conflict sidecar through: %v", m)
	}
	if m, _ := filepath.Glob(filepath.Join(cfg.Dir, "*.poison.json")); len(m) != 0 {
		t.Fatalf("SIGSTOP zombie poisoned the cell: %v", m)
	}
	if info := q.Inspect()[0]; info.Status != CellDone {
		t.Fatalf("cell status = %s, want done", info.Status)
	}
}
