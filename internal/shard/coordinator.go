package shard

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"mglrusim/internal/experiments"
)

// Handle supervises one spawned worker.
type Handle interface {
	// Signal delivers a signal to the worker (drain requests).
	Signal(sig os.Signal) error
	// Wait blocks until the worker exits, returning its exit error.
	Wait() error
}

// Coordinator runs a cell set to completion across N supervised worker
// processes. It executes no cells itself: workers self-schedule through
// the on-disk queue, and the coordinator's jobs are spawning, restarting
// crashed workers (bounded per slot), progress reporting, and drain.
type Coordinator struct {
	Cfg   Config
	Cells []experiments.CellSpec
	// Workers is the number of concurrently supervised worker slots.
	Workers int
	// Spawn launches the worker for a slot (normally CmdSpawner re-invoking
	// pagebench -worker).
	Spawn func(slot int) (Handle, error)
	// MaxRestarts bounds respawns per slot. Default 8.
	MaxRestarts int

	mu       sync.Mutex
	handles  map[int]Handle
	draining bool
}

// Report summarizes a coordinator run.
type Report struct {
	Progress Progress
	Poisoned []PoisonRecord
	Restarts int64
}

// Drain asks every live worker to finish its in-flight cell and exit
// (SIGTERM), and stops respawning. Safe from a signal handler goroutine.
func (co *Coordinator) Drain() {
	co.mu.Lock()
	co.draining = true
	for _, h := range co.handles {
		h.Signal(os.Interrupt)
	}
	co.mu.Unlock()
}

func (co *Coordinator) isDraining() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.draining
}

// Run supervises the fleet until the queue is fully resolved (or drained).
// The returned error is non-nil only when the queue cannot be resolved:
// every slot exhausted its restart budget with cells still pending.
func (co *Coordinator) Run() (Report, error) {
	if co.Spawn == nil {
		return Report{}, fmt.Errorf("shard: Coordinator.Spawn is required")
	}
	cfg := co.Cfg.withDefaults()
	q, err := NewQueue(cfg, co.Cells)
	if err != nil {
		return Report{}, err
	}
	workers := co.Workers
	if workers <= 0 {
		workers = 1
	}
	maxRestarts := co.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 8
	}
	co.mu.Lock()
	co.handles = make(map[int]Handle, workers)
	co.mu.Unlock()

	var wg sync.WaitGroup
	var restarts int64
	for slot := 0; slot < workers; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spawned := 0; ; spawned++ {
				if co.isDraining() || q.Snapshot().Resolved() {
					return
				}
				if spawned > maxRestarts {
					if cfg.Progress != nil {
						fmt.Fprintf(cfg.Progress, "shard: worker slot %d exceeded %d restarts, giving up the slot\n", slot, maxRestarts)
					}
					return
				}
				h, err := co.Spawn(slot)
				if err != nil {
					if cfg.Progress != nil {
						fmt.Fprintf(cfg.Progress, "shard: spawn worker %d: %v\n", slot, err)
					}
					time.Sleep(cfg.Poll)
					continue
				}
				co.mu.Lock()
				co.handles[slot] = h
				draining := co.draining
				co.mu.Unlock()
				if draining {
					h.Signal(os.Interrupt)
				}
				if spawned > 0 {
					cfg.Counters.Add("workers.restarted", 1)
					co.mu.Lock()
					restarts++
					co.mu.Unlock()
				}
				err = h.Wait()
				co.mu.Lock()
				delete(co.handles, slot)
				co.mu.Unlock()
				if err == nil {
					// Clean exit: the worker saw the queue resolved (or
					// drained). Stop supervising this slot.
					return
				}
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "shard: worker %d died (%v), respawning\n", slot, err)
				}
			}
		}()
	}

	// Progress monitor: one census line per poll period while workers run.
	monitorStop := make(chan struct{})
	var monitorWG sync.WaitGroup
	if cfg.Progress != nil {
		monitorWG.Add(1)
		go func() {
			defer monitorWG.Done()
			t := time.NewTicker(5 * cfg.Poll)
			defer t.Stop()
			last := Progress{Done: -1}
			for {
				select {
				case <-monitorStop:
					return
				case <-t.C:
					if p := q.Snapshot(); p != last {
						fmt.Fprintf(cfg.Progress, "shard: %d/%d cells done, %d poisoned\n", p.Done, p.Total, p.Poisoned)
						last = p
					}
				}
			}
		}()
	}

	wg.Wait()
	close(monitorStop)
	monitorWG.Wait()

	rep := Report{Progress: q.Snapshot(), Poisoned: q.Poisoned(), Restarts: restarts}
	if !rep.Progress.Resolved() && !co.isDraining() {
		return rep, fmt.Errorf("shard: queue unresolved after every worker slot gave up (%d/%d done, %d poisoned)",
			rep.Progress.Done, rep.Progress.Total, rep.Progress.Poisoned)
	}
	return rep, nil
}

// cmdHandle adapts exec.Cmd to Handle.
type cmdHandle struct{ cmd *exec.Cmd }

func (h cmdHandle) Signal(sig os.Signal) error { return h.cmd.Process.Signal(sig) }
func (h cmdHandle) Wait() error                { return h.cmd.Wait() }

// NewCmdHandle wraps a started exec.Cmd as a Handle (exported for tests
// that spawn helper processes themselves).
func NewCmdHandle(cmd *exec.Cmd) Handle { return cmdHandle{cmd: cmd} }

// CmdSpawner returns a Spawn function that launches `bin args...` per
// slot with the given stderr sink — pagebench uses it to re-invoke itself
// in -worker mode.
func CmdSpawner(bin string, args []string, stderr io.Writer) func(slot int) (Handle, error) {
	return func(slot int) (Handle, error) {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return cmdHandle{cmd: cmd}, nil
	}
}
