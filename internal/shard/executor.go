package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
)

// BatchSpec describes one batch of cells submitted to an Executor.
type BatchSpec struct {
	// Cells is the batch's cell set (re-sorted into claim order).
	Cells []experiments.CellSpec
	// NewRunner builds one worker slot's private Runner for this batch.
	// It must set Options.Checkpoint to the executor's store, and its
	// options must reproduce the cells' cache keys (same trials, scale,
	// seed). Called lazily, at most once per worker slot.
	NewRunner func() *experiments.Runner
	// Resolve optionally overrides registry cell resolution.
	Resolve func(cell experiments.CellSpec) (experiments.WorkloadSpec, experiments.PolicySpec, error)
}

// Batch is one submitted batch: a live queue view plus a completion
// signal.
type Batch struct {
	spec  BatchSpec
	queue *Queue

	done     chan struct{}
	doneOnce sync.Once

	// runners holds the per-worker-slot lazily-built runners, so each
	// slot keeps its workload memoization across cells of the batch while
	// slots never share a runner (the Runner is goroutine-safe, but
	// slot-private runners mirror the multi-process executor's
	// shared-nothing discipline).
	runnerMu sync.Mutex
	runners  map[int]*experiments.Runner
}

// Done is closed when every cell of the batch is terminal (done in the
// store, or quarantined). An executor drained before the batch resolves
// never closes it.
func (b *Batch) Done() <-chan struct{} { return b.done }

// Queue exposes the batch's queue view for inspection (Inspect, Snapshot,
// Poisoned).
func (b *Batch) Queue() *Queue { return b.queue }

func (b *Batch) runner(slot int) *experiments.Runner {
	b.runnerMu.Lock()
	defer b.runnerMu.Unlock()
	r, ok := b.runners[slot]
	if !ok {
		r = b.spec.NewRunner()
		b.runners[slot] = r
	}
	return r
}

// Executor is the embeddable in-process execution strategy for serving:
// a long-lived pool of N worker goroutines multiplexed over dynamically
// submitted batches. Where Pool runs one fixed cell set to completion and
// returns, an Executor accepts batches for as long as it lives — the
// sweep server's scheduling substrate. Workers speak the full on-disk
// queue protocol (leases, attempt records, poison quarantine), so
// executors in different processes sharing a store and queue directory
// cooperate exactly like pagebench worker processes do, and cells shared
// between concurrently submitted batches are executed once (the first
// claimant wins; everyone else observes the store entry).
type Executor struct {
	cfg     Config
	workers int

	mu      sync.Mutex
	batches []*Batch

	wake  chan struct{}
	quit  chan struct{}
	drain atomic.Bool
	wg    sync.WaitGroup
}

// NewExecutor starts an executor with the given worker count (<=0 means
// 4, matching Pool).
func NewExecutor(cfg Config, workers int) (*Executor, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("shard: Config.Store is required")
	}
	if workers <= 0 {
		workers = 4
	}
	e := &Executor{
		cfg:     cfg.withDefaults(),
		workers: workers,
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e, nil
}

// Workers reports the pool size.
func (e *Executor) Workers() int { return e.workers }

// Submit enqueues a batch and wakes the pool. A batch whose cells are all
// already terminal resolves immediately (its Done channel is closed
// before Submit returns) without waking anyone. Submitting to a drained
// executor still returns a live queue view, but nothing will execute.
func (e *Executor) Submit(spec BatchSpec) (*Batch, error) {
	if spec.NewRunner == nil {
		return nil, fmt.Errorf("shard: BatchSpec.NewRunner is required")
	}
	q, err := NewQueue(e.cfg, spec.Cells)
	if err != nil {
		return nil, err
	}
	b := &Batch{spec: spec, queue: q, done: make(chan struct{}), runners: map[int]*experiments.Runner{}}
	if q.Snapshot().Resolved() {
		b.doneOnce.Do(func() { close(b.done) })
		return b, nil
	}
	e.mu.Lock()
	e.batches = append(e.batches, b)
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
	return b, nil
}

// live returns the current batch list, reaping resolved batches (closing
// their Done channels) along the way.
func (e *Executor) live() []*Batch {
	e.mu.Lock()
	defer e.mu.Unlock()
	kept := e.batches[:0]
	for _, b := range e.batches {
		if b.queue.Snapshot().Resolved() {
			b.doneOnce.Do(func() { close(b.done) })
			continue
		}
		kept = append(kept, b)
	}
	e.batches = kept
	out := make([]*Batch, len(kept))
	copy(out, kept)
	return out
}

// worker is one pool slot: round-robin single scans (Queue.Pass) over
// every live batch, sleeping only when no batch made progress.
func (e *Executor) worker(slot int) {
	defer e.wg.Done()
	// One parseable host/pid/nonce identity per slot: unique within the
	// process, and eligible for same-host fast reclaim if we die.
	owner := checkpoint.NewOwner().String()
	for {
		select {
		case <-e.quit:
			return
		default:
		}
		progressed := false
		var earliest time.Time
		for _, b := range e.live() {
			if e.drain.Load() {
				return
			}
			prog, eb, err := b.queue.Pass(WorkerConfig{
				Owner:   owner,
				Runner:  b.runner(slot),
				Resolve: b.spec.Resolve,
				Drain:   &e.drain,
			})
			if err != nil && e.cfg.Progress != nil {
				fmt.Fprintf(e.cfg.Progress, "shard: executor worker %s: %v\n", owner, err)
			}
			progressed = progressed || prog
			if !eb.IsZero() && (earliest.IsZero() || eb.Before(earliest)) {
				earliest = eb
			}
		}
		// Reap batches the scan completed so waiters unblock promptly.
		e.live()
		if progressed {
			continue
		}
		d := e.cfg.Poll
		if !earliest.IsZero() {
			if until := time.Until(earliest); until > 0 && until < d {
				d = until
			}
		}
		t := time.NewTimer(d)
		select {
		case <-e.quit:
			t.Stop()
			return
		case <-e.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// Drain stops the pool gracefully: no new cells are claimed, in-flight
// cells finish (their results land in the store through the normal
// verified-publication path), and Drain returns once every worker has
// exited. The on-disk queue state stays consistent — a fresh executor
// (or worker process) over the same store and directory resumes exactly
// where this one stopped. Idempotent.
func (e *Executor) Drain() {
	if e.drain.CompareAndSwap(false, true) {
		close(e.quit)
	}
	e.wg.Wait()
	// Reap anything the final passes resolved.
	e.live()
}
