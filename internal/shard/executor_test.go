package shard

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
)

func sweepCells(t *testing.T, opts experiments.Options) []experiments.CellSpec {
	t.Helper()
	cells, err := experiments.SweepCells(opts, experiments.SweepSpec{
		Workloads: []string{"ycsb-c"},
		Policies:  []string{experiments.PolFIFO, experiments.PolRandom, experiments.PolClock},
		Base:      core.DefaultSystemConfig(),
		Ratios:    []float64{0.5, 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// calmCfg is fastCfg with a lease TTL far above any scheduling stall.
// Executor tests assert exact lease-expiry and completion counters, so a
// heartbeat goroutine starved past the TTL by full-suite load must not
// masquerade as a crashed worker (a genuine steal double-counts both
// leases.expired and, via the harmless stalled finisher, cells.completed).
func calmCfg(t *testing.T, store *checkpoint.Store) Config {
	t.Helper()
	cfg := fastCfg(t, store)
	cfg.TTL = 60 * time.Second
	return cfg
}

func newRunnerFn(opts experiments.Options, store *checkpoint.Store) func() *experiments.Runner {
	return func() *experiments.Runner {
		o := opts
		o.Checkpoint = store
		return experiments.NewRunner(o)
	}
}

func waitBatch(t *testing.T, b *Batch) {
	t.Helper()
	select {
	case <-b.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("batch did not resolve")
	}
}

// TestExecutorRunsBatch: a submitted batch runs to completion, the store
// holds every cell, and a second submission of the same cells resolves
// immediately from the store without executing anything.
func TestExecutorRunsBatch(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := calmCfg(t, store)
	cells := sweepCells(t, opts)

	e, err := NewExecutor(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Submit(BatchSpec{Cells: cells, NewRunner: newRunnerFn(opts, store)})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)
	// Counters are only coherent once in-flight workers have finished:
	// the Done signal fires on the store entry, which lands a beat before
	// the executing worker's counter add.
	e.Drain()
	for _, c := range cells {
		if !store.Has(c.Key) {
			t.Fatalf("cell %s missing after batch resolved", c.SeedKey)
		}
	}
	if got := cfg.Counters.Get("cells.completed"); got != int64(len(cells)) {
		t.Fatalf("cells.completed = %d, want %d", got, len(cells))
	}

	// Resubmit (works even drained): everything is terminal, Done closes
	// synchronously and no new executions are charged.
	b2, err := e.Submit(BatchSpec{Cells: cells, NewRunner: newRunnerFn(opts, store)})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-b2.Done():
	default:
		t.Fatal("fully-cached batch not resolved at submit")
	}
	if got := cfg.Counters.Get("cells.completed"); got != int64(len(cells)) {
		t.Fatalf("resubmission executed cells: completed = %d", got)
	}
}

// TestExecutorPackingPreservesCellSet is the satellite property test for
// the enumeration/LPT-packing seam: across worker counts 1, 3, 8 the
// executed cell set is exactly the enumerated set — no cell dropped, no
// cell executed twice (cells.completed equals the set size), stores
// byte-identical — and the enumeration itself is in LPT claim order.
func TestExecutorPackingPreservesCellSet(t *testing.T) {
	opts := fastOpts()
	enum := sweepCells(t, opts)
	for i := 1; i < len(enum); i++ {
		if enum[i-1].Cost < enum[i].Cost {
			t.Fatalf("enumeration not LPT-ordered at %d: %g then %g", i, enum[i-1].Cost, enum[i].Cost)
		}
	}
	seen := map[string]bool{}
	for _, c := range enum {
		if seen[c.Key] {
			t.Fatalf("enumeration duplicates key %s", c.Key)
		}
		seen[c.Key] = true
	}

	var refHashes []string
	var refBytes = map[string][]byte{}
	for _, workers := range []int{1, 3, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			store := openStore(t)
			cfg := calmCfg(t, store)
			e, err := NewExecutor(cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			b, err := e.Submit(BatchSpec{Cells: enum, NewRunner: newRunnerFn(opts, store)})
			if err != nil {
				t.Fatal(err)
			}
			waitBatch(t, b)
			e.Drain() // settle in-flight counter adds before asserting

			// No drop: every enumerated cell is in the store.
			for _, c := range enum {
				if !store.Has(c.Key) {
					t.Fatalf("workers=%d dropped cell %s", workers, c.SeedKey)
				}
			}
			// No dup: exactly one completion per cell, and the store holds
			// nothing beyond the enumerated set.
			if got := cfg.Counters.Get("cells.completed"); got != int64(len(enum)) {
				t.Fatalf("workers=%d: cells.completed = %d, want %d", workers, got, len(enum))
			}
			hashes := store.Hashes()
			if len(hashes) != len(enum) {
				t.Fatalf("workers=%d: store holds %d entries, want %d", workers, len(hashes), len(enum))
			}
			if refHashes == nil {
				refHashes = hashes
				for _, h := range hashes {
					blob, ok := store.GetHash(h)
					if !ok {
						t.Fatalf("listed hash %s unreadable", h)
					}
					refBytes[h] = blob
				}
				return
			}
			// Identical artifact set across worker counts, byte for byte.
			for i, h := range hashes {
				if refHashes[i] != h {
					t.Fatalf("workers=%d: hash set differs at %d: %s vs %s", workers, i, h, refHashes[i])
				}
				blob, _ := store.GetHash(h)
				if !bytes.Equal(blob, refBytes[h]) {
					t.Fatalf("workers=%d: artifact %s differs from 1-worker run", workers, h)
				}
			}
		})
	}
}

// TestExecutorCrashedAttemptRecovery: a batch containing a cell whose
// previous attempt crashed (running flag set, lease gone — planted via
// the exported SimulateCrashedAttempt) still resolves: the executor
// charges the crashed attempt, requeues, and completes every cell.
func TestExecutorCrashedAttemptRecovery(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := calmCfg(t, store)
	cells := sweepCells(t, opts)
	if err := SimulateCrashedAttempt(cfg.Dir, cells[0]); err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Submit(BatchSpec{Cells: cells, NewRunner: newRunnerFn(opts, store)})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)
	e.Drain() // settle in-flight counter adds before asserting
	for _, c := range cells {
		if !store.Has(c.Key) {
			t.Fatalf("cell %s missing after crash recovery", c.SeedKey)
		}
	}
	if got := cfg.Counters.Get("leases.expired"); got != 1 {
		t.Fatalf("leases.expired = %d, want 1 (the planted crash)", got)
	}
	if got := cfg.Counters.Get("cells.requeued"); got != 1 {
		t.Fatalf("cells.requeued = %d, want 1", got)
	}
	if got := cfg.Counters.Get("cells.completed"); got != int64(len(cells)) {
		t.Fatalf("cells.completed = %d, want %d (no lost or duplicated cells)", got, len(cells))
	}
}

// TestExecutorDrainResume: draining mid-batch stops cleanly, leaves the
// on-disk state consistent, and a fresh executor over the same store and
// queue directory finishes the batch — the serving-layer SIGTERM story.
func TestExecutorDrainResume(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := calmCfg(t, store)
	cells := sweepCells(t, opts)

	e1, err := NewExecutor(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Submit(BatchSpec{Cells: cells, NewRunner: newRunnerFn(opts, store)}); err != nil {
		t.Fatal(err)
	}
	// Let it start, then drain mid-flight.
	time.Sleep(20 * time.Millisecond)
	e1.Drain()
	done := store.Len()

	// Consistency: every stored entry decodes (PutVerify committed it
	// whole) and no cell is stuck running with a live lease.
	for _, info := range mustQueue(t, cfg, cells).Inspect() {
		if info.Status == CellRunning {
			t.Fatalf("cell %s still running after drain", info.Cell.SeedKey)
		}
	}

	e2, err := NewExecutor(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Drain()
	b, err := e2.Submit(BatchSpec{Cells: cells, NewRunner: newRunnerFn(opts, store)})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)
	if store.Len() != len(cells) {
		t.Fatalf("store holds %d entries after resume, want %d (had %d at drain)",
			store.Len(), len(cells), done)
	}
}

// TestExecutorInspect: the derived cell statuses move queued → done, and
// a planted poison record reads back quarantined.
func TestExecutorInspect(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := calmCfg(t, store)
	cells := sweepCells(t, opts)
	q := mustQueue(t, cfg, cells)

	for _, info := range q.Inspect() {
		if info.Status != CellQueued {
			t.Fatalf("fresh cell %s status = %s, want queued", info.Cell.SeedKey, info.Status)
		}
	}

	ordered := q.Cells()
	q.writePoison(0, PoisonRecord{Key: ordered[0].Key, SeedKey: ordered[0].SeedKey,
		Attempts: 3, Err: "planted"})
	if err := store.Put(ordered[1].Key, []byte("done-marker")); err != nil {
		t.Fatal(err)
	}
	infos := q.Inspect()
	if infos[0].Status != CellQuarantined || infos[0].Attempts != 3 || infos[0].LastErr != "planted" {
		t.Fatalf("poisoned cell inspect = %+v", infos[0])
	}
	if infos[1].Status != CellDone {
		t.Fatalf("done cell inspect = %+v", infos[1])
	}
	for _, info := range infos[2:] {
		if info.Status != CellQueued {
			t.Fatalf("untouched cell %s status = %s", info.Cell.SeedKey, info.Status)
		}
	}
}

func mustQueue(t *testing.T, cfg Config, cells []experiments.CellSpec) *Queue {
	t.Helper()
	q, err := NewQueue(cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
