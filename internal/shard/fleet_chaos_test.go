package shard

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
	"mglrusim/internal/mem"
	"mglrusim/internal/policy"
	"mglrusim/internal/sim"
	"mglrusim/internal/telemetry"
)

// This file is the in-process half of the fleet chaos gauntlet: every
// failure mode a shared filesystem exhibits — a paused worker resuming
// after its lease was stolen, skewed clocks, torn lease records,
// transient ESTALE/EIO blips — reproduced deterministically with an
// injected clock and fault hooks, and in every case the store converges
// to the bytes a serial run produces. The multi-process half (real
// SIGSTOP/SIGKILL against worker processes) lives in chaos_test.go.

// testClock is a settable clock shared by every queue in a scenario.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1_700_000_000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// stallingPolicy wraps a real policy and blocks on its first PageIn until
// released — the in-process equivalent of SIGSTOPping a worker in the
// middle of a trial, after the checkpoint-resume probe but before
// publication.
type stallingPolicy struct {
	policy.Policy
	once    sync.Once
	entered chan<- struct{}
	release <-chan struct{}
}

func (s *stallingPolicy) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	s.once.Do(func() {
		close(s.entered)
		<-s.release
	})
	s.Policy.PageIn(v, f, sh)
}

// oneCell enumerates the single FIFO/ycsb-c cell every fleet scenario
// runs, through a runner carrying the given store so keys match worker
// runners.
func oneCell(t *testing.T, opts experiments.Options, store *checkpoint.Store) []experiments.CellSpec {
	t.Helper()
	o := opts
	o.Checkpoint = store
	cells := experiments.NewRunner(o).MatrixCells(
		[]experiments.WorkloadSpec{experiments.WorkloadByName("ycsb-c", opts.Scale)},
		experiments.Policies(experiments.PolFIFO),
		experiments.SystemAt(0.5, core.SwapSSD),
	)
	if len(cells) != 1 {
		t.Fatalf("cell enumeration = %d cells, want 1", len(cells))
	}
	return cells
}

func assertNoCorruptArtifacts(t *testing.T, storeDir, queueDir string) {
	t.Helper()
	for _, pat := range []string{
		filepath.Join(storeDir, "*.conflict"),
		filepath.Join(queueDir, "*.poison.json"),
		filepath.Join(queueDir, "*.corrupt-*"),
	} {
		if m, _ := filepath.Glob(pat); len(m) != 0 {
			t.Fatalf("corrupt artifacts after chaos: %v", m)
		}
	}
}

// TestFencedZombieCannotPublish is the tentpole fencing scenario, fully
// deterministic: worker A claims the cell and stalls mid-trial (as a
// SIGSTOPped process would), the clock steps past TTL+MaxSkew, worker B
// steals the lease at a higher epoch, charges the crashed attempt,
// re-executes, and publishes. When A resumes, its publication is fenced
// by epoch at the store — it cannot clobber, double-publish, or write
// any queue state — and the store still holds exactly B's bytes.
func TestFencedZombieCannotPublish(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	opts := fastOpts()
	cells := oneCell(t, opts, store)
	mkCfg := func(counters *telemetry.CounterSet) Config {
		return Config{
			Dir:      filepath.Join(dir, "queue"),
			Store:    store,
			TTL:      time.Hour, // heartbeat interval (TTL/3) never fires in-test
			MaxSkew:  time.Minute,
			Backoff:  time.Millisecond,
			Poll:     time.Millisecond,
			Now:      clk.Now,
			Counters: counters,
		}
	}
	newRunner := func() *experiments.Runner {
		o := opts
		o.Checkpoint = store
		return experiments.NewRunner(o)
	}

	// Worker A: stalls on its first PageIn, i.e. mid-trial.
	countersA := telemetry.NewCounterSet()
	qA, err := NewQueue(mkCfg(countersA), cells)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	stallResolve := func(cell experiments.CellSpec) (experiments.WorkloadSpec, experiments.PolicySpec, error) {
		w, p, err := RegistryResolve(cell, opts.Scale)
		if err != nil {
			return w, p, err
		}
		mk := p.Make
		p = experiments.PolicySpec{Name: p.Name, Make: func() policy.Policy {
			return &stallingPolicy{Policy: mk(), entered: entered, release: release}
		}}
		return w, p, nil
	}
	passDone := make(chan error, 1)
	go func() {
		_, _, err := qA.Pass(WorkerConfig{Owner: "zombie-A", Runner: newRunner(), Resolve: stallResolve})
		passDone <- err
	}()
	<-entered // A holds the lease, stalled inside its attempt

	// The fleet's view: A stopped heartbeating long past TTL+MaxSkew.
	clk.Advance(2 * time.Hour)

	// Worker B: steals, charges the crashed attempt, requeues, executes.
	countersB := telemetry.NewCounterSet()
	qB, err := NewQueue(mkCfg(countersB), cells)
	if err != nil {
		t.Fatal(err)
	}
	wcB := WorkerConfig{Owner: "thief-B", Runner: newRunner()}
	for i := 0; i < 8 && !store.Has(cells[0].Key); i++ {
		if _, _, err := qB.Pass(wcB); err != nil {
			t.Fatalf("thief pass: %v", err)
		}
		clk.Advance(time.Second) // clear backoff gates
	}
	if !store.Has(cells[0].Key) {
		t.Fatal("thief did not complete the stolen cell")
	}
	if got := countersB.Get("leases.stolen"); got != 1 {
		t.Fatalf("thief leases.stolen = %d, want 1", got)
	}
	if got := countersB.Get("cells.completed"); got != 1 {
		t.Fatalf("thief cells.completed = %d, want 1", got)
	}
	want, _ := store.Get(cells[0].Key)

	// Resume the zombie: it finishes computing, then must be fenced.
	close(release)
	if err := <-passDone; err != nil {
		t.Fatalf("zombie pass returned infrastructure error: %v", err)
	}
	if got := countersA.Get("cells.fenced"); got != 1 {
		t.Fatalf("zombie cells.fenced = %d, want 1", got)
	}
	if got := countersA.Get("publish.fenced"); got < 1 {
		t.Fatalf("zombie publish.fenced = %d, want >= 1 (fence must fire at the store)", got)
	}
	got, _ := store.Get(cells[0].Key)
	if string(got) != string(want) {
		t.Fatal("zombie publication altered the store")
	}
	assertNoCorruptArtifacts(t, store.Dir(), filepath.Join(dir, "queue"))
	for _, info := range qB.Inspect() {
		if info.Status != CellDone {
			t.Fatalf("cell status after zombie resume = %s, want done", info.Status)
		}
	}
}

// TestSkewGraceProtectsRemoteHolder: a worker whose clock runs 90s ahead
// must not steal a remote machine's live lease when MaxSkew covers the
// divergence — and the same worker with no grace demonstrates the
// premature steal the grace exists to prevent.
func TestSkewGraceProtectsRemoteHolder(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	cells := oneCell(t, opts, store)
	hash := checkpoint.KeyHash(cells[0].Key)
	queueDir := filepath.Join(dir, "queue")

	// A "remote machine" holds the cell: claimed at base time, 1min TTL,
	// free-form owner (unparseable on purpose — no fast-reclaim shortcut).
	baseClk := newTestClock()
	remote, err := checkpoint.OpenClaimsWith(queueDir, checkpoint.ClaimOptions{Clock: baseClk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := remote.TryClaim(hash, "remote-machine-worker", time.Minute); err != nil || !ok {
		t.Fatalf("remote claim = %v, %v", ok, err)
	}

	aheadClk := newTestClock()
	aheadClk.Advance(90 * time.Second) // this machine's clock runs ahead
	newRunner := func() *experiments.Runner {
		o := opts
		o.Checkpoint = store
		return experiments.NewRunner(o)
	}
	mkCfg := func(skew time.Duration, counters *telemetry.CounterSet) Config {
		return Config{
			Dir: queueDir, Store: store,
			TTL: time.Minute, MaxSkew: skew,
			Backoff: time.Millisecond, Poll: time.Millisecond,
			Now: aheadClk.Now, Counters: counters,
		}
	}

	// With grace: the live remote lease is respected.
	protected := telemetry.NewCounterSet()
	qProtected, err := NewQueue(mkCfg(2*time.Minute, protected), cells)
	if err != nil {
		t.Fatal(err)
	}
	progressed, _, err := qProtected.Pass(WorkerConfig{Owner: "skewed-worker", Runner: newRunner()})
	if err != nil {
		t.Fatal(err)
	}
	if progressed || store.Has(cells[0].Key) || protected.Get("leases.stolen") != 0 {
		t.Fatalf("skew-protected worker stole a live lease (progressed=%v stolen=%d)",
			progressed, protected.Get("leases.stolen"))
	}

	// Without grace: the same skewed clock steals prematurely — the
	// hazard MaxSkew exists for.
	unprotected := telemetry.NewCounterSet()
	qUnprotected, err := NewQueue(mkCfg(0, unprotected), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8 && !store.Has(cells[0].Key); i++ {
		if _, _, err := qUnprotected.Pass(WorkerConfig{Owner: "skewed-worker", Runner: newRunner()}); err != nil {
			t.Fatal(err)
		}
		aheadClk.Advance(time.Second)
	}
	if unprotected.Get("leases.stolen") != 1 {
		t.Fatalf("zero-skew worker leases.stolen = %d, want 1", unprotected.Get("leases.stolen"))
	}
	if !store.Has(cells[0].Key) {
		t.Fatal("zero-skew worker did not complete after stealing")
	}
}

// TestTransientIOBlipsConvergeByteIdentical: seeded ESTALE/EIO injection
// across lease and store operations is absorbed by the bounded retry
// policy — the matrix converges with zero poisoned cells and blobs
// byte-identical to an uninjected serial run.
func TestTransientIOBlipsConvergeByteIdentical(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	var calls atomic64
	hook := func(op, path string) error {
		n := calls.inc()
		switch {
		case n%5 == 3:
			return syscall.ESTALE
		case n%11 == 7:
			return syscall.EIO
		}
		return nil
	}
	retry := checkpoint.RetryPolicy{Attempts: 4, Backoff: time.Microsecond, Seed: 0xF1EE7}
	store.SetIO(retry, hook)
	cfg := fastCfg(t, store)
	cfg.IORetry = retry
	cfg.FaultHook = hook

	ws := []experiments.WorkloadSpec{experiments.WorkloadByName("ycsb-c", opts.Scale)}
	ps := experiments.Policies(experiments.PolClock, experiments.PolFIFO)
	sys := experiments.SystemAt(0.5, core.SwapSSD)
	pool := &Pool{Cfg: cfg, Workers: 2, NewRunner: func() *experiments.Runner {
		o := opts
		o.Checkpoint = store
		return experiments.NewRunner(o)
	}}
	sweepOpts := opts
	sweepOpts.Checkpoint = store
	sweepOpts.Veto = Veto(cfg.Dir)
	r := experiments.NewRunner(sweepOpts)
	res, err := r.RunMatrixSharded(pool, ws, ps, sys)
	if err != nil {
		t.Fatalf("RunMatrixSharded under I/O blips: %v", err)
	}
	if !res.Complete() {
		t.Fatalf("matrix incomplete under transient blips: %+v", res.Failed)
	}
	if got := cfg.Counters.Get("io.retries"); got < 1 {
		t.Fatalf("io.retries = %d, want >= 1 (injection did not exercise retry)", got)
	}

	// Byte-identity: a pristine store populated with no fault injection
	// holds the same blobs under the same keys.
	cleanStore := openStore(t)
	cleanOpts := opts
	cleanOpts.Checkpoint = cleanStore
	if _, err := experiments.NewRunner(cleanOpts).RunMatrix(ws, ps, sys); err != nil {
		t.Fatal(err)
	}
	cells := r.MatrixCells(ws, ps, sys)
	for _, c := range cells {
		got, ok1 := store.Get(c.Key)
		want, ok2 := cleanStore.Get(c.Key)
		if !ok1 || !ok2 || !reflect.DeepEqual(got, want) {
			t.Fatalf("cell %s/%s blob differs from clean serial run (have=%v clean=%v)",
				c.Workload, c.Policy, ok1, ok2)
		}
	}
}

// atomic64 is a tiny atomic counter for concurrency-safe fault hooks.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) inc() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	return a.n
}

// TestTornLeaseFilesQuarantinedAndConverge: garbage lease records
// pre-seeded for every cell (torn writes from a dead fleet) are
// quarantined to observable .corrupt-* sidecars, counted, and the run
// still converges byte-identically.
func TestTornLeaseFilesQuarantinedAndConverge(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := fastCfg(t, store)
	ws := []experiments.WorkloadSpec{experiments.WorkloadByName("ycsb-c", opts.Scale)}
	ps := experiments.Policies(experiments.PolClock, experiments.PolFIFO)
	sys := experiments.SystemAt(0.5, core.SwapSSD)
	o := opts
	o.Checkpoint = store
	cells := experiments.NewRunner(o).MatrixCells(ws, ps, sys)

	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		torn := filepath.Join(cfg.Dir, checkpoint.KeyHash(c.Key)+".lease")
		if err := os.WriteFile(torn, []byte(`{"owner":"dead-fleet","dead`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pool := &Pool{Cfg: cfg, Workers: 2, NewRunner: func() *experiments.Runner {
		o := opts
		o.Checkpoint = store
		return experiments.NewRunner(o)
	}}
	if err := pool.Prefill(cells); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if !store.Has(c.Key) {
			t.Fatalf("cell %s/%s unexecuted behind torn lease", c.Workload, c.Policy)
		}
	}
	if got := cfg.Counters.Get("leases.corrupt_quarantined"); got != int64(len(cells)) {
		t.Fatalf("leases.corrupt_quarantined = %d, want %d", got, len(cells))
	}
	quarantined, _ := filepath.Glob(filepath.Join(cfg.Dir, "*.lease.corrupt-*"))
	if len(quarantined) != len(cells) {
		t.Fatalf("quarantine sidecars = %d, want %d", len(quarantined), len(cells))
	}
	if m, _ := filepath.Glob(filepath.Join(cfg.Dir, "*.poison.json")); len(m) != 0 {
		t.Fatalf("torn leases poisoned cells: %v", m)
	}
}
