package shard

import (
	"fmt"
	"sync"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
)

// Pool is the in-process sharded execution strategy: N worker goroutines,
// each with its own Runner, speaking the full on-disk queue protocol
// (leases, attempts, poison records) against a shared store. It shares no
// in-memory state between workers — deliberately, so it exercises and
// validates exactly the coordination the multi-process executor relies
// on — and implements experiments.Prefiller for RunMatrixSharded.
type Pool struct {
	Cfg     Config
	Workers int
	// NewRunner builds one worker's private Runner. It must set
	// Options.Checkpoint to Cfg.Store.
	NewRunner func() *experiments.Runner
	// Resolve optionally overrides registry cell resolution (tests inject
	// non-registry policies this way).
	Resolve func(cell experiments.CellSpec) (experiments.WorkloadSpec, experiments.PolicySpec, error)
}

// Prefill implements experiments.Prefiller: it drives every cell to a
// terminal state (done in the store, or poisoned). Cell failures become
// poison records, not errors; only infrastructure failures are returned.
func (p *Pool) Prefill(cells []experiments.CellSpec) error {
	if p.NewRunner == nil {
		return fmt.Errorf("shard: Pool.NewRunner is required")
	}
	n := p.Workers
	if n <= 0 {
		n = 4
	}
	q, err := NewQueue(p.Cfg, cells)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = q.RunWorker(WorkerConfig{
				Owner:   checkpoint.NewOwner().String(),
				Runner:  p.NewRunner(),
				Resolve: p.Resolve,
			})
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
