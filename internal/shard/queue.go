package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/telemetry"
)

// Queue is one shard work queue: an ordered cell list over a shared
// store + lease directory. Queues are cheap, stateless views — every
// process (and every worker goroutine) builds its own from the same
// Config and cell enumeration; all coordination lives on disk.
type Queue struct {
	cfg    Config
	claims *checkpoint.ClaimDir
	cells  []experiments.CellSpec
	hashes []string
}

// NewQueue opens a queue over cells (re-sorted into claim order so every
// process agrees regardless of input order).
func NewQueue(cfg Config, cells []experiments.CellSpec) (*Queue, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("shard: Config.Store is required")
	}
	claims, err := checkpoint.OpenClaimsWith(cfg.Dir, checkpoint.ClaimOptions{
		Clock:   cfg.Now,
		MaxSkew: cfg.MaxSkew,
		Retry:   cfg.IORetry,
		Hook:    cfg.FaultHook,
		Observe: leaseObserver(cfg.Counters),
	})
	if err != nil {
		return nil, err
	}
	sorted := make([]experiments.CellSpec, len(cells))
	copy(sorted, cells)
	experiments.SortCells(sorted)
	hashes := make([]string, len(sorted))
	for i, c := range sorted {
		hashes[i] = checkpoint.KeyHash(c.Key)
	}
	return &Queue{cfg: cfg, claims: claims, cells: sorted, hashes: hashes}, nil
}

// leaseObserver maps coordination-layer events onto the shard telemetry
// counters operators read from /v1/stats and pagebench summaries.
func leaseObserver(counters *telemetry.CounterSet) func(event string) {
	return func(event string) {
		switch event {
		case checkpoint.EvSteal:
			counters.Add("leases.stolen", 1)
		case checkpoint.EvFastReclaim:
			counters.Add("leases.fast_reclaimed", 1)
		case checkpoint.EvCorrupt:
			counters.Add("leases.corrupt_quarantined", 1)
		case checkpoint.EvReleaseLost:
			counters.Add("leases.release_lost", 1)
		case checkpoint.EvIORetry:
			counters.Add("io.retries", 1)
		}
	}
}

// Cells returns the queue's cell list in claim order.
func (q *Queue) Cells() []experiments.CellSpec { return q.cells }

// now reads the queue's (possibly injected) clock.
func (q *Queue) now() time.Time { return q.cfg.Now() }

// Progress is a point-in-time queue census.
type Progress struct {
	Done, Poisoned, Total int
}

// Resolved reports whether every cell has reached a terminal state.
func (p Progress) Resolved() bool { return p.Done+p.Poisoned == p.Total }

// Snapshot counts terminal cells by probing the store and poison records.
func (q *Queue) Snapshot() Progress {
	p := Progress{Total: len(q.cells)}
	for i, c := range q.cells {
		if q.cfg.Store.Has(c.Key) {
			p.Done++
		} else if _, ok := readPoison(q.cfg.Dir, q.hashes[i]); ok {
			p.Poisoned++
		}
	}
	return p
}

// Poisoned lists this queue's quarantine records.
func (q *Queue) Poisoned() []PoisonRecord { return Poisoned(q.cfg.Dir, q.cells) }

// VetoFunc adapts the queue's poison records to experiments.Options.Veto.
func (q *Queue) VetoFunc() func(key string) error { return Veto(q.cfg.Dir) }

func (q *Queue) readState(i int) cellState {
	st := cellState{Key: q.cells[i].Key, SeedKey: q.cells[i].SeedKey}
	data, err := os.ReadFile(cellStatePath(q.cfg.Dir, q.hashes[i]))
	if err != nil {
		return st
	}
	var read cellState
	if json.Unmarshal(data, &read) == nil && read.Key == st.Key {
		return read
	}
	return st
}

func (q *Queue) writeState(i int, st cellState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return checkpoint.WriteFileDurable(cellStatePath(q.cfg.Dir, q.hashes[i]), data)
}

func (q *Queue) writePoison(i int, rec PoisonRecord) {
	data, err := json.Marshal(rec)
	if err == nil {
		err = checkpoint.WriteFileDurable(poisonPath(q.cfg.Dir, q.hashes[i]), data)
	}
	if err != nil && q.cfg.Progress != nil {
		fmt.Fprintf(q.cfg.Progress, "shard: poison record for %s failed: %v\n", rec.SeedKey, err)
	}
	q.cfg.Counters.Add("cells.poisoned", 1)
	if q.cfg.Progress != nil {
		fmt.Fprintf(q.cfg.Progress, "shard: quarantined %-40s after %d attempt(s): %s\n",
			rec.SeedKey, rec.Attempts, rec.Err)
	}
}

// backoff returns the requeue delay after the given number of recorded
// attempts: Backoff * 2^(attempts-1), capped at 32x.
func (q *Queue) backoff(attempts int) time.Duration {
	d := q.cfg.Backoff
	for i := 1; i < attempts && d < 32*q.cfg.Backoff; i++ {
		d *= 2
	}
	return d
}

// CellStatus is the externally-visible lifecycle state of one queue cell,
// derived entirely from the on-disk protocol (store entry, poison record,
// lease, attempt record) — every process observing the queue derives the
// same answer.
type CellStatus string

// Cell lifecycle states, roughly in progression order.
const (
	// CellQueued: no terminal state, no attempts recorded, not claimed.
	CellQueued CellStatus = "queued"
	// CellRunning: a live lease holder is executing an attempt.
	CellRunning CellStatus = "running"
	// CellFailed: at least one attempt failed or crashed; the cell is
	// awaiting its backoff gate and will be retried.
	CellFailed CellStatus = "failed"
	// CellDone: the result is in the store.
	CellDone CellStatus = "done"
	// CellQuarantined: the attempt budget is spent (or determinism was
	// violated); a poison record blocks re-execution.
	CellQuarantined CellStatus = "quarantined"
)

// CellInfo is one cell's inspection snapshot.
type CellInfo struct {
	Cell     experiments.CellSpec
	Status   CellStatus
	Attempts int
	// Owner is the live lease holder while running.
	Owner string
	// LastErr is the most recent attempt failure (or the quarantine
	// reason).
	LastErr string
}

// Inspect derives every cell's current status from the on-disk protocol,
// in claim order. It is a read-only census: safe to call from any process
// at any time, including while workers execute.
func (q *Queue) Inspect() []CellInfo {
	out := make([]CellInfo, len(q.cells))
	for i, c := range q.cells {
		info := CellInfo{Cell: c, Status: CellQueued}
		switch {
		case q.cfg.Store.Has(c.Key):
			info.Status = CellDone
		default:
			if rec, ok := readPoison(q.cfg.Dir, q.hashes[i]); ok {
				info.Status = CellQuarantined
				info.Attempts = rec.Attempts
				info.LastErr = rec.Err
				break
			}
			st := q.readState(i)
			info.Attempts = st.Attempts
			info.LastErr = st.LastErr
			if owner, live, ok := q.claims.Holder(q.hashes[i]); ok && live {
				info.Status = CellRunning
				info.Owner = owner
			} else if st.Attempts > 0 {
				info.Status = CellFailed
			}
		}
		out[i] = info
	}
	return out
}

// SimulateCrashedAttempt writes the on-disk state a worker SIGKILLed
// mid-execution leaves behind once its lease expires: an attempt record
// still marked running with no live lease. The next claimant charges the
// crashed attempt (leases.expired), requeues the cell with backoff
// (cells.requeued), and re-executes it — the exact recovery path a real
// crash takes. Test helper for crash-recovery end-to-end suites.
func SimulateCrashedAttempt(dir string, cell experiments.CellSpec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	st := cellState{Key: cell.Key, SeedKey: cell.SeedKey, Attempts: 1, Running: true}
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return checkpoint.WriteFileDurable(cellStatePath(dir, checkpoint.KeyHash(cell.Key)), data)
}

// WorkerConfig identifies one executing worker.
type WorkerConfig struct {
	// Owner is the lease-holder identity (must be unique per worker;
	// default a fresh checkpoint.NewOwner "host/pid/nonce" identity,
	// which also enables same-host fast reclaim when this process dies).
	Owner string
	// Runner executes cells. It must share the queue's Store via
	// Options.Checkpoint — the runner's normal checkpoint path is how
	// results are published.
	Runner *experiments.Runner
	// Resolve maps a cell back to runnable specs. Defaults to the
	// registry (WorkloadByName/PolicyByName at the runner's scale).
	Resolve func(cell experiments.CellSpec) (experiments.WorkloadSpec, experiments.PolicySpec, error)
	// Drain, when non-nil and set, stops the worker from claiming new
	// cells; RunWorker returns after the in-flight cell (the
	// SIGTERM/SIGINT drain flag).
	Drain *atomic.Bool
}

func (wc WorkerConfig) withDefaults(scale float64) WorkerConfig {
	if wc.Owner == "" {
		wc.Owner = checkpoint.NewOwner().String()
	}
	if wc.Resolve == nil {
		wc.Resolve = func(cell experiments.CellSpec) (experiments.WorkloadSpec, experiments.PolicySpec, error) {
			return RegistryResolve(cell, scale)
		}
	}
	return wc
}

// RegistryResolve maps a cell to specs via the experiments registry — the
// default for cells enumerated from registered figures. The workload is
// laid out with the cell's own region fanout so the spec matches the
// system config the cell will run under.
func RegistryResolve(cell experiments.CellSpec, scale float64) (w experiments.WorkloadSpec, p experiments.PolicySpec, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard: cell %s not resolvable from the registry: %v", cell.SeedKey, r)
		}
	}()
	return experiments.WorkloadByNameAt(cell.Workload, scale, cell.System.RegionPTEs),
		experiments.PolicyByName(cell.Policy), nil
}

// RunWorker processes the queue until every cell is terminal (done or
// poisoned) or the drain flag is raised. It is the body of a `pagebench
// -worker` process, and equally runnable as a goroutine (Pool). The
// returned error covers infrastructure failures only (unreachable queue
// directory); cell failures are recorded in the queue, never returned.
func (q *Queue) RunWorker(wc WorkerConfig) error {
	if wc.Runner == nil {
		return fmt.Errorf("shard: WorkerConfig.Runner is required")
	}
	wc = wc.withDefaults(wc.Runner.Options().Scale)
	for {
		if wc.Drain != nil && wc.Drain.Load() {
			return nil
		}
		progressed, earliest, err := q.pass(wc)
		if err != nil {
			return err
		}
		if q.Snapshot().Resolved() {
			return nil
		}
		if progressed {
			continue
		}
		// Nothing runnable: someone else holds the remaining cells, or
		// they are backing off. Sleep until the earliest backoff gate (or
		// one poll interval) and rescan.
		d := q.cfg.Poll
		if !earliest.IsZero() {
			if until := time.Until(earliest); until > 0 && until < d {
				d = until
			}
		}
		time.Sleep(d)
	}
}

// Pass makes one scan over the cell list as the given worker, executing
// at most every runnable cell once, and returns — the single-scan
// building block for embedding the queue in a long-lived pool that
// multiplexes workers over many queues (Executor). It reports whether any
// cell changed state and the earliest backoff gate observed. Unlike
// RunWorker it never sleeps and never loops.
func (q *Queue) Pass(wc WorkerConfig) (progressed bool, earliest time.Time, err error) {
	if wc.Runner == nil {
		return false, time.Time{}, fmt.Errorf("shard: WorkerConfig.Runner is required")
	}
	return q.pass(wc.withDefaults(wc.Runner.Options().Scale))
}

// pass makes one scan over the cell list, executing at most every
// runnable cell once. It reports whether any cell changed state and the
// earliest backoff gate observed.
func (q *Queue) pass(wc WorkerConfig) (progressed bool, earliest time.Time, err error) {
	for i := range q.cells {
		if wc.Drain != nil && wc.Drain.Load() {
			return progressed, earliest, nil
		}
		cell := q.cells[i]
		if q.cfg.Store.Has(cell.Key) {
			continue
		}
		if _, ok := readPoison(q.cfg.Dir, q.hashes[i]); ok {
			continue
		}
		// Cheap pre-claim gate; re-read authoritatively under the lease.
		if st := q.readState(i); !st.Running && st.NotBefore > 0 {
			if nb := time.Unix(0, st.NotBefore); q.now().Before(nb) {
				if earliest.IsZero() || nb.Before(earliest) {
					earliest = nb
				}
				continue
			}
		}
		lease, ok, cerr := q.claims.TryClaim(q.hashes[i], wc.Owner, q.cfg.TTL)
		if cerr != nil {
			return progressed, earliest, cerr
		}
		if !ok {
			continue // held by a live worker
		}
		changed := q.runCell(wc, i, lease)
		lease.Release()
		progressed = progressed || changed
	}
	return progressed, earliest, nil
}

// runCell handles one claimed cell: crash accounting, backoff gating,
// execution, and terminal-state writes. Returns whether the cell's state
// changed.
func (q *Queue) runCell(wc WorkerConfig, i int, lease *checkpoint.Lease) bool {
	cell := q.cells[i]
	// Re-check terminal states now that we hold the lease: another worker
	// may have finished or poisoned the cell between our scan and claim.
	if q.cfg.Store.Has(cell.Key) {
		return false
	}
	if _, ok := readPoison(q.cfg.Dir, q.hashes[i]); ok {
		return false
	}
	st := q.readState(i)
	if st.Running {
		// The previous holder died mid-attempt: its lease expired with the
		// running flag still set. Charge the crashed attempt and requeue
		// with backoff — or quarantine when the budget is spent.
		q.cfg.Counters.Add("leases.expired", 1)
		lastErr := st.LastErr
		if lastErr == "" {
			lastErr = "worker crashed or stopped heartbeating mid-attempt"
		}
		if st.Attempts >= q.cfg.Attempts {
			q.writePoison(i, PoisonRecord{Key: cell.Key, SeedKey: cell.SeedKey,
				Attempts: st.Attempts, Err: lastErr})
			return true
		}
		st.Running = false
		st.NotBefore = q.now().Add(q.backoff(st.Attempts)).UnixNano()
		if err := q.writeState(i, st); err == nil {
			q.cfg.Counters.Add("cells.requeued", 1)
			if q.cfg.Progress != nil {
				fmt.Fprintf(q.cfg.Progress, "shard: requeued %-40s (attempt %d crashed)\n", cell.SeedKey, st.Attempts)
			}
		}
		return true
	}
	if st.NotBefore > 0 && q.now().Before(time.Unix(0, st.NotBefore)) {
		return false // still backing off; earliest-gate handled by the scan
	}
	if st.Attempts >= q.cfg.Attempts {
		// Budget exhausted by clean failures (poisoning normally happens at
		// failure time; this is the belt-and-suspenders path for a worker
		// that died exactly between the state write and the poison write).
		q.writePoison(i, PoisonRecord{Key: cell.Key, SeedKey: cell.SeedKey,
			Attempts: st.Attempts, Err: st.LastErr})
		return true
	}

	// Execute one attempt under the lease, with heartbeats.
	st.Attempts++
	st.Running = true
	if err := q.writeState(i, st); err != nil {
		return false // cannot record the attempt; leave the cell for others
	}
	q.cfg.Counters.Add("leases.held", 1)
	if q.cfg.Progress != nil {
		fmt.Fprintf(q.cfg.Progress, "shard: %s executing %-40s (attempt %d, cost %.1f)\n",
			wc.Owner, cell.SeedKey, st.Attempts, cell.Cost)
	}
	runErr := q.execute(wc, cell, lease)

	// A fenced outcome — rejected at publication, or a lease found
	// superseded now — means a newer claim owns this cell and its
	// records: make no state writes, no poison, no requeue. The
	// successor does its own accounting; our attempt is void. (A lease
	// whose Verify fails on plain I/O errors lands here too, on purpose:
	// when we cannot prove we still own the records, not touching them
	// is the only safe move.)
	if errors.Is(runErr, checkpoint.ErrFenced) || lease.Verify() != nil {
		q.cfg.Counters.Add("cells.fenced", 1)
		if q.cfg.Progress != nil {
			fmt.Fprintf(q.cfg.Progress, "shard: %s fenced on %-40s (lease superseded mid-attempt)\n",
				wc.Owner, cell.SeedKey)
		}
		return false
	}

	if runErr == nil {
		st.Running = false
		st.LastErr = ""
		st.NotBefore = 0
		q.writeState(i, st)
		q.cfg.Counters.Add("cells.completed", 1)
		return true
	}
	var conflict *checkpoint.ConflictError
	switch {
	case errors.As(runErr, &conflict):
		// Determinism violation: immediate quarantine, both payloads kept.
		q.cfg.Counters.Add("determinism.violations", 1)
		q.writePoison(i, PoisonRecord{Key: cell.Key, SeedKey: cell.SeedKey,
			Attempts: st.Attempts, Err: runErr.Error(),
			Artifacts: []string{conflict.Path, conflict.ConflictPath}})
	case st.Attempts >= q.cfg.Attempts:
		q.writePoison(i, PoisonRecord{Key: cell.Key, SeedKey: cell.SeedKey,
			Attempts: st.Attempts, Err: runErr.Error()})
	default:
		st.Running = false
		st.LastErr = runErr.Error()
		st.NotBefore = q.now().Add(q.backoff(st.Attempts)).UnixNano()
		q.writeState(i, st)
		q.cfg.Counters.Add("cells.requeued", 1)
		if q.cfg.Progress != nil {
			fmt.Fprintf(q.cfg.Progress, "shard: %-40s attempt %d failed, backing off: %v\n",
				cell.SeedKey, st.Attempts, runErr)
		}
	}
	return true
}

// execute runs one cell through the worker's runner while a heartbeat
// goroutine renews the lease at TTL/3, with the runner's checkpoint
// publication fenced on the lease epoch: a worker that stalls past its
// TTL and is stolen from can finish computing (the simulation has no
// cancellation point, and the waste is bounded by one cell), but its
// result is rejected at the store by Lease.Verify — it can neither
// clobber nor double-publish, regardless of what bytes it produced.
func (q *Queue) execute(wc WorkerConfig, cell experiments.CellSpec, lease *checkpoint.Lease) error {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hb := q.cfg.TTL / 3
		if hb < 10*time.Millisecond {
			hb = 10 * time.Millisecond
		}
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := lease.Renew(q.cfg.TTL); err != nil {
					q.cfg.Counters.Add("leases.lost", 1)
					return
				}
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	w, p, err := wc.Resolve(cell)
	if err != nil {
		return err
	}
	// Bind this cell's publication to our claim epoch. The fence is
	// scoped by key so the runner's other series (shared caches, nested
	// figure reruns) publish unfenced; it is cleared before the lease is
	// released. Safe because each worker slot owns its runner and
	// executes one cell at a time.
	key := cell.Key
	wc.Runner.SetFence(func(k string) error {
		if k != key {
			return nil
		}
		if verr := lease.Verify(); verr != nil {
			if errors.Is(verr, checkpoint.ErrFenced) {
				q.cfg.Counters.Add("publish.fenced", 1)
			}
			return verr
		}
		return nil
	})
	defer wc.Runner.SetFence(nil)
	_, err = wc.Runner.Run(w, p, cell.System)
	return err
}
