// Package shard is the crash-tolerant multi-process executor for the
// experiment matrix: a supervised work queue that runs figure/extension
// cells across N worker processes coordinated purely through the shared
// filesystem — the internal/checkpoint content-addressed store plus a
// small on-disk lease directory. No network, no daemon.
//
// Protocol. Every cell (one (workload, policy, system) series) is
// identified by its checkpoint key; its hash names three sidecar files
// in the queue directory:
//
//	<hash>.lease       atomically-claimed wall-clock lease (checkpoint.ClaimDir)
//	<hash>.cell.json   attempt record, written only under the lease
//	<hash>.poison.json quarantine record for cells past their budget
//
// (plus the lease layer's own epoch-floor and heartbeat sidecars), and
// the store entry itself is the "done" marker. A worker scans the cell
// list in claim order (cost-descending LPT bin packing), claims the
// first runnable cell, heartbeats the lease while executing, and writes
// the result through the runner's normal checkpoint path. A worker that
// crashes, is SIGKILLed, or stops heartbeating simply stops renewing: the
// lease expires, the next claimant observes the attempt record still
// marked running, charges the crashed attempt, and requeues the cell with
// exponential backoff — or quarantines it once the attempt budget is
// spent. Execution is at-least-once; it is safe because every claim
// carries a monotonic fencing epoch that publication re-checks
// (checkpoint.PutVerifyFenced over Lease.Verify): a worker resumed after
// its lease was stolen is fenced at the store, and the cells it thought
// it owned are accounted by the successor. Results are additionally
// byte-deterministic and content-addressed, so legitimate duplicate
// completions are verified identical and a mismatch surfaces as a
// determinism violation with both payloads preserved. For fleets of
// machines over one shared filesystem, Config.MaxSkew grants expiring
// leases a clock-skew grace, owner identities are host/pid/nonce (dead
// same-host holders are reclaimed fast), and Config.IORetry absorbs
// transient NFS blips (ESTALE/EINTR/EIO) with bounded seeded-jitter
// backoff.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/experiments"
	"mglrusim/internal/telemetry"
)

// Config shapes one shard queue. Store and Dir must be shared by every
// participating process (coordinator and workers); everything else is
// per-process.
type Config struct {
	// Dir is the lease/queue directory. Keep it on the same filesystem as
	// the store (pagebench uses <checkpoint>/shard).
	Dir string
	// Store is the shared content-addressed result store.
	Store *checkpoint.Store
	// TTL is the lease time-to-live. A worker heartbeats at TTL/3, so TTL
	// bounds how long a crashed worker's cell stays stuck. Default 10s.
	TTL time.Duration
	// Attempts is the per-cell execution budget before quarantine.
	// Default 5.
	Attempts int
	// Backoff is the base requeue delay, doubled per recorded attempt.
	// Default 250ms.
	Backoff time.Duration
	// Poll is the idle rescan interval when no cell is runnable.
	// Default 200ms.
	Poll time.Duration
	// MaxSkew is the clock-skew grace for lease stealing: an expired
	// lease is only stolen once the local clock reads deadline+MaxSkew,
	// tolerating holders on machines whose clocks run up to MaxSkew
	// behind this one. Zero (the default) preserves single-machine
	// semantics; set it when workers span machines over a shared
	// filesystem (pagebench -max-skew).
	MaxSkew time.Duration
	// Now, when non-nil, overrides the wall clock for lease deadlines,
	// steal decisions, and backoff gates — tests step through expiry
	// deterministically. Nil means time.Now.
	Now func() time.Time
	// IORetry bounds retries of transient shared-filesystem blips
	// (ESTALE/EINTR/EIO) on lease operations. Zero value: no retries.
	IORetry checkpoint.RetryPolicy
	// FaultHook, when non-nil, intercepts lease filesystem operations for
	// deterministic fault injection (see checkpoint.FaultHook).
	FaultHook checkpoint.FaultHook
	// Counters, when non-nil, receives executor counters (leases.held,
	// leases.expired, leases.stolen, cells.fenced, io.retries, ...).
	// Process-local.
	Counters *telemetry.CounterSet
	// Progress, when non-nil, receives one line per queue state change.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 10 * time.Second
	}
	if c.Attempts <= 0 {
		c.Attempts = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = 200 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// cellState is the on-disk attempt record for one cell. It is only ever
// written while holding the cell's lease, so there is exactly one writer
// at a time.
type cellState struct {
	Key      string `json:"key"`
	SeedKey  string `json:"seed_key"`
	Attempts int    `json:"attempts"`
	// Running marks an attempt in flight. A claimant that finds the flag
	// set on a freshly-acquired lease knows the previous holder died
	// mid-attempt (a clean failure clears it before releasing).
	Running   bool   `json:"running"`
	NotBefore int64  `json:"not_before_unix_ns,omitempty"`
	LastErr   string `json:"last_err,omitempty"`
}

// PoisonRecord quarantines a cell that exhausted its attempt budget (or
// violated determinism). The record carries enough to render the per-cell
// error and to find the preserved artifacts.
type PoisonRecord struct {
	Key       string   `json:"key"`
	SeedKey   string   `json:"seed_key"`
	Attempts  int      `json:"attempts"`
	Err       string   `json:"err"`
	Artifacts []string `json:"artifacts,omitempty"`
}

// QuarantinedError is what a vetoed (poisoned) cell fails with in the
// final sweep.
type QuarantinedError struct {
	Record PoisonRecord
}

func (e *QuarantinedError) Error() string {
	msg := fmt.Sprintf("shard: cell %s quarantined after %d attempt(s): %s",
		e.Record.SeedKey, e.Record.Attempts, e.Record.Err)
	if len(e.Record.Artifacts) > 0 {
		msg += fmt.Sprintf(" (artifacts: %v)", e.Record.Artifacts)
	}
	return msg
}

func cellStatePath(dir, hash string) string {
	return filepath.Join(dir, hash+".cell.json")
}

func poisonPath(dir, hash string) string {
	return filepath.Join(dir, hash+".poison.json")
}

func readPoison(dir, hash string) (PoisonRecord, bool) {
	var rec PoisonRecord
	data, err := os.ReadFile(poisonPath(dir, hash))
	if err != nil || json.Unmarshal(data, &rec) != nil {
		return rec, false
	}
	return rec, true
}

// Veto returns an experiments.Options.Veto function over a queue
// directory: a quarantined cell fails immediately with a
// *QuarantinedError instead of re-executing a known failure serially.
// The poison file is consulted per call, so quarantines appearing
// mid-run take effect.
func Veto(dir string) func(key string) error {
	return func(key string) error {
		if rec, ok := readPoison(dir, checkpoint.KeyHash(key)); ok {
			return &QuarantinedError{Record: rec}
		}
		return nil
	}
}

// Poisoned lists the quarantine records for the given cells, in cell
// order.
func Poisoned(dir string, cells []experiments.CellSpec) []PoisonRecord {
	var out []PoisonRecord
	for _, c := range cells {
		if rec, ok := readPoison(dir, checkpoint.KeyHash(c.Key)); ok {
			out = append(out, rec)
		}
	}
	return out
}
