package shard

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"mglrusim/internal/checkpoint"
	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
	"mglrusim/internal/mem"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/sim"
	"mglrusim/internal/telemetry"
)

func fastOpts() experiments.Options {
	return experiments.Options{Trials: 1, Scale: 0.1, Seed: 0xABC, Parallelism: 1}
}

func fastCfg(t *testing.T, store *checkpoint.Store) Config {
	t.Helper()
	return Config{
		Dir:      filepath.Join(t.TempDir(), "queue"),
		Store:    store,
		TTL:      2 * time.Second,
		Backoff:  10 * time.Millisecond,
		Poll:     10 * time.Millisecond,
		Counters: telemetry.NewCounterSet(),
	}
}

func openStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	store, err := checkpoint.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func renderFig1(t *testing.T, opts experiments.Options) string {
	t.Helper()
	res, err := experiments.Figures["fig1"](experiments.NewRunner(opts))
	if err != nil {
		t.Fatal(err)
	}
	return res.Render()
}

// TestShardedEquivalence is the strategy-equivalence property from the
// paper-reproduction contract: a figure produced serially, with
// in-process trial parallelism, and by a 4-worker sharded prefill
// resuming from the shared store must render byte-identically.
func TestShardedEquivalence(t *testing.T) {
	opts := fastOpts()
	opts.Trials = 2

	serialOpts := opts
	serial := renderFig1(t, serialOpts)

	parOpts := opts
	parOpts.Parallelism = 4
	parallel := renderFig1(t, parOpts)
	if serial != parallel {
		t.Fatalf("in-process parallel render differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}

	store := openStore(t)
	cfg := fastCfg(t, store)
	cells, err := experiments.CellsFor(opts, experiments.Figures["fig1"])
	if err != nil {
		t.Fatal(err)
	}
	pool := &Pool{Cfg: cfg, Workers: 4, NewRunner: func() *experiments.Runner {
		o := opts
		o.Checkpoint = store
		return experiments.NewRunner(o)
	}}
	if err := pool.Prefill(cells); err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if !store.Has(c.Key) {
			t.Fatalf("prefill left cell %s/%s unexecuted", c.Workload, c.Policy)
		}
	}
	if got := cfg.Counters.Get("cells.completed"); got != int64(len(cells)) {
		t.Fatalf("cells.completed = %d, want %d", got, len(cells))
	}

	shardedOpts := opts
	shardedOpts.Checkpoint = store
	shardedOpts.Veto = Veto(cfg.Dir)
	sharded := renderFig1(t, shardedOpts)
	if sharded != serial {
		t.Fatalf("sharded render differs from serial:\n--- serial ---\n%s\n--- sharded ---\n%s", serial, sharded)
	}
}

// crashingPolicy fails deterministically partway into every trial.
type crashingPolicy struct {
	policy.Policy
	ins int
}

func (c *crashingPolicy) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	c.ins++
	if c.ins == 10 {
		panic("injected poison-cell failure")
	}
	c.Policy.PageIn(v, f, sh)
}

// failingResolve resolves cells through the registry but swaps the named
// policy's constructor for a deterministically-crashing one.
func failingResolve(poisonPolicy string, scale float64) func(experiments.CellSpec) (experiments.WorkloadSpec, experiments.PolicySpec, error) {
	return func(cell experiments.CellSpec) (experiments.WorkloadSpec, experiments.PolicySpec, error) {
		w, p, err := RegistryResolve(cell, scale)
		if err != nil {
			return w, p, err
		}
		if cell.Policy == poisonPolicy {
			p = experiments.PolicySpec{Name: p.Name, Make: func() policy.Policy {
				return &crashingPolicy{Policy: mglru.New(mglru.Default())}
			}}
		}
		return w, p, nil
	}
}

// TestPoisonCellQuarantined: a cell that fails every attempt is
// quarantined after exactly the attempt budget, the rest of the matrix
// completes, and the final veto-aware sweep surfaces the quarantine as a
// per-cell *QuarantinedError without re-executing or hanging.
func TestPoisonCellQuarantined(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := fastCfg(t, store)
	cfg.Attempts = 2

	ws := []experiments.WorkloadSpec{experiments.WorkloadByName("ycsb-c", opts.Scale)}
	ps := experiments.Policies(experiments.PolClock, experiments.PolFIFO)
	sys := experiments.SystemAt(0.5, core.SwapSSD)

	pool := &Pool{
		Cfg:     cfg,
		Workers: 2,
		NewRunner: func() *experiments.Runner {
			o := opts
			o.Checkpoint = store
			return experiments.NewRunner(o)
		},
		Resolve: failingResolve(experiments.PolClock, opts.Scale),
	}

	sweepOpts := opts
	sweepOpts.Checkpoint = store
	sweepOpts.Veto = Veto(cfg.Dir)
	r := experiments.NewRunner(sweepOpts)

	done := make(chan struct{})
	var res *experiments.MatrixResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = r.RunMatrixSharded(pool, ws, ps, sys)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("sharded matrix with a poison cell hung")
	}
	if runErr != nil {
		t.Fatalf("RunMatrixSharded: %v", runErr)
	}

	if res.Complete() {
		t.Fatal("matrix with a poisoned cell reported complete")
	}
	if len(res.Failed) != 1 || res.Failed[0].Policy != experiments.PolClock {
		t.Fatalf("Failed = %+v, want exactly the clock cell", res.Failed)
	}
	var q *QuarantinedError
	if !errors.As(res.Failed[0].Err, &q) {
		t.Fatalf("failed cell error is %T (%v), want *QuarantinedError", res.Failed[0].Err, res.Failed[0].Err)
	}
	if q.Record.Attempts != cfg.Attempts {
		t.Fatalf("quarantined after %d attempts, want the budget %d", q.Record.Attempts, cfg.Attempts)
	}
	if res.Get("ycsb-c", experiments.PolFIFO) == nil {
		t.Fatal("healthy cell missing from the sharded matrix")
	}

	cells := r.MatrixCells(ws, ps, sys)
	recs := Poisoned(cfg.Dir, cells)
	if len(recs) != 1 {
		t.Fatalf("Poisoned() = %d records, want 1", len(recs))
	}
	if got := cfg.Counters.Get("cells.poisoned"); got != 1 {
		t.Fatalf("cells.poisoned = %d, want 1", got)
	}
	if got := cfg.Counters.Get("cells.requeued"); got != int64(cfg.Attempts-1) {
		t.Fatalf("cells.requeued = %d, want %d (budget-1 clean failures requeue)", got, cfg.Attempts-1)
	}
}

// tamperingPolicy plants a different payload under its own cell's store
// key mid-run, forcing the runner's verified publish to detect a
// duplicate completion with different bytes.
type tamperingPolicy struct {
	policy.Policy
	store *checkpoint.Store
	key   string
	done  bool
}

func (c *tamperingPolicy) PageIn(v *sim.Env, f mem.FrameID, sh *policy.Shadow) {
	if !c.done {
		c.done = true
		if err := c.store.Put(c.key, []byte("not the real series bytes")); err != nil {
			panic(err)
		}
	}
	c.Policy.PageIn(v, f, sh)
}

// TestDeterminismViolationQuarantinedWithArtifacts: a duplicate
// completion with different bytes is an immediate quarantine (no
// retries) whose poison record points at both preserved payloads.
func TestDeterminismViolationQuarantinedWithArtifacts(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := fastCfg(t, store)

	ws := []experiments.WorkloadSpec{experiments.WorkloadByName("ycsb-c", opts.Scale)}
	ps := experiments.Policies(experiments.PolMGLRU)
	sys := experiments.SystemAt(0.5, core.SwapSSD)

	pool := &Pool{
		Cfg:     cfg,
		Workers: 1,
		NewRunner: func() *experiments.Runner {
			o := opts
			o.Checkpoint = store
			return experiments.NewRunner(o)
		},
		Resolve: func(cell experiments.CellSpec) (experiments.WorkloadSpec, experiments.PolicySpec, error) {
			w, p, err := RegistryResolve(cell, opts.Scale)
			if err != nil {
				return w, p, err
			}
			key := cell.Key
			p = experiments.PolicySpec{Name: p.Name, Make: func() policy.Policy {
				return &tamperingPolicy{Policy: mglru.New(mglru.Default()), store: store, key: key}
			}}
			return w, p, nil
		},
	}

	sweepOpts := opts
	sweepOpts.Checkpoint = store
	r := experiments.NewRunner(sweepOpts)
	if err := pool.Prefill(r.MatrixCells(ws, ps, sys)); err != nil {
		t.Fatal(err)
	}

	recs := Poisoned(cfg.Dir, r.MatrixCells(ws, ps, sys))
	if len(recs) != 1 {
		t.Fatalf("Poisoned() = %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Attempts != 1 {
		t.Fatalf("determinism violation retried: %d attempts recorded", rec.Attempts)
	}
	if len(rec.Artifacts) != 2 {
		t.Fatalf("poison record artifacts = %v, want both payload paths", rec.Artifacts)
	}
	for _, a := range rec.Artifacts {
		if _, err := os.Stat(a); err != nil {
			t.Fatalf("preserved artifact missing: %v", err)
		}
	}
	if got := cfg.Counters.Get("determinism.violations"); got != 1 {
		t.Fatalf("determinism.violations = %d, want 1", got)
	}
}

// TestWorkerDrainStopsPromptly: a raised drain flag stops the worker
// before it claims anything.
func TestWorkerDrainStopsPromptly(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := fastCfg(t, store)
	cells, err := experiments.CellsFor(opts, experiments.Figures["fig1"])
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	var drain atomic.Bool
	drain.Store(true)
	o := opts
	o.Checkpoint = store
	if err := q.RunWorker(WorkerConfig{Runner: experiments.NewRunner(o), Drain: &drain}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("drained worker executed %d cells", store.Len())
	}
	if p := q.Snapshot(); p.Resolved() {
		t.Fatal("drained queue cannot be resolved")
	}
}

// TestCrashedAttemptChargedAndRequeued pins the crash-accounting
// protocol deterministically (the kill-storm test exercises it under
// real SIGKILL timing): a cell whose on-disk state is still marked
// running with no live lease means the previous holder died mid-attempt.
// The next claimant must charge that attempt, requeue with backoff, and
// then complete the cell normally.
func TestCrashedAttemptChargedAndRequeued(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := fastCfg(t, store)
	r := experiments.NewRunner(opts)
	cells := r.MatrixCells(
		[]experiments.WorkloadSpec{experiments.WorkloadByName("ycsb-c", opts.Scale)},
		experiments.Policies(experiments.PolFIFO),
		experiments.SystemAt(0.5, core.SwapSSD))
	q, err := NewQueue(cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the dead holder: attempt 1 recorded as in flight, lease
	// already expired (absent — same observable state once reaped).
	if err := q.writeState(0, cellState{Key: cells[0].Key, SeedKey: cells[0].SeedKey,
		Attempts: 1, Running: true}); err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Checkpoint = store
	if err := q.RunWorker(WorkerConfig{Runner: experiments.NewRunner(o)}); err != nil {
		t.Fatal(err)
	}
	if !store.Has(cells[0].Key) {
		t.Fatal("cell not completed after crash recovery")
	}
	if got := cfg.Counters.Get("leases.expired"); got != 1 {
		t.Fatalf("leases.expired = %d, want 1 (the crashed attempt)", got)
	}
	if got := cfg.Counters.Get("cells.requeued"); got != 1 {
		t.Fatalf("cells.requeued = %d, want 1", got)
	}
	if got := cfg.Counters.Get("cells.completed"); got != 1 {
		t.Fatalf("cells.completed = %d, want 1", got)
	}
	if st := q.readState(0); st.Attempts != 2 || st.Running {
		t.Fatalf("final state = %+v, want 2 attempts, not running", st)
	}
}

// TestCrashAtBudgetPoisons: a worker that dies mid-attempt with the
// budget already spent is quarantined by the next claimant without
// another execution.
func TestCrashAtBudgetPoisons(t *testing.T) {
	opts := fastOpts()
	store := openStore(t)
	cfg := fastCfg(t, store)
	cfg.Attempts = 2
	r := experiments.NewRunner(opts)
	cells := r.MatrixCells(
		[]experiments.WorkloadSpec{experiments.WorkloadByName("ycsb-c", opts.Scale)},
		experiments.Policies(experiments.PolFIFO),
		experiments.SystemAt(0.5, core.SwapSSD))
	q, err := NewQueue(cfg, cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.writeState(0, cellState{Key: cells[0].Key, SeedKey: cells[0].SeedKey,
		Attempts: cfg.Attempts, Running: true}); err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Checkpoint = store
	if err := q.RunWorker(WorkerConfig{Runner: experiments.NewRunner(o)}); err != nil {
		t.Fatal(err)
	}
	if store.Has(cells[0].Key) {
		t.Fatal("poisoned cell was executed anyway")
	}
	recs := Poisoned(cfg.Dir, cells)
	if len(recs) != 1 || recs[0].Attempts != cfg.Attempts {
		t.Fatalf("Poisoned() = %+v, want one record at the budget", recs)
	}
	if !q.Snapshot().Resolved() {
		t.Fatal("queue with only a poisoned cell must be resolved")
	}
}
