package sim

// Cond is a condition variable for procs. The zero value is ready to use.
// Signalled procs are scheduled as events at the current virtual time, so
// wakeup order is deterministic (FIFO among waiters).
type Cond struct {
	waiters []*Proc
}

// Signal wakes the longest-waiting proc, if any, and reports whether a proc
// was woken. Must be called with engine control (from a proc or callback).
func (c *Cond) Signal(e *Engine) bool {
	for len(c.waiters) > 0 {
		p := c.waiters[0]
		c.waiters = c.waiters[1:]
		if p.state != stateWaiting {
			continue
		}
		p.state = stateReady
		e.pushProc(e.now, p)
		return true
	}
	return false
}

// Broadcast wakes every waiting proc and returns how many were woken.
func (c *Cond) Broadcast(e *Engine) int {
	n := 0
	for c.Signal(e) {
		n++
	}
	return n
}

// broadcastLocked is Broadcast for engine-internal use (proc completion).
func (c *Cond) broadcastLocked(e *Engine) { c.Broadcast(e) }

// Waiters reports how many procs are currently blocked on the cond.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Barrier synchronizes a fixed group of procs: each arrival blocks until
// the Nth proc arrives, which releases the whole group. Reusable across
// rounds, like a cyclic barrier.
type Barrier struct {
	n       int
	arrived int
	round   int
	cond    Cond
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{n: n}
}

// Await blocks the calling proc until all n parties have arrived.
// It returns the barrier round index that was completed.
func (b *Barrier) Await(v *Env) int {
	round := b.round
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.round++
		b.cond.Broadcast(v.engine)
		return round
	}
	for b.round == round {
		v.Wait(&b.cond)
	}
	return round
}

// WaitGroup counts outstanding work items across procs.
type WaitGroup struct {
	count int
	cond  Cond
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
}

// DoneOne decrements the counter and wakes waiters at zero.
func (w *WaitGroup) DoneOne(e *Engine) {
	w.Add(-1)
	if w.count == 0 {
		w.cond.Broadcast(e)
	}
}

// Wait blocks the proc until the counter reaches zero.
func (w *WaitGroup) Wait(v *Env) {
	for w.count > 0 {
		v.Wait(&w.cond)
	}
}
