package sim

import (
	"container/heap"
	"fmt"
)

// DefaultQuantum is the CPU accounting quantum. Charged CPU work is split
// into chunks of at most this size so that the processor-sharing dilation
// factor tracks changes in the runnable set.
const DefaultQuantum Duration = 250 * Microsecond

// Engine is a deterministic discrete-event simulator. Create one with
// NewEngine, spawn procs, then call Run. An Engine must not be shared
// between host goroutines.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	cpus    int
	quantum Duration

	procs    []*Proc
	live     int // procs not yet finished, excluding daemons
	runnable int // procs currently consuming CPU

	running *Proc // proc holding control right now, nil when engine runs
	stopped bool
	failure error
}

// NewEngine returns an engine modelling cpus hardware contexts.
func NewEngine(cpus int) *Engine {
	if cpus <= 0 {
		panic("sim: NewEngine requires at least one CPU")
	}
	return &Engine{cpus: cpus, quantum: DefaultQuantum}
}

// SetQuantum overrides the CPU accounting quantum (useful in tests).
func (e *Engine) SetQuantum(q Duration) {
	if q <= 0 {
		panic("sim: quantum must be positive")
	}
	e.quantum = q
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Current reports the proc holding control right now, or nil when the
// engine itself (or an After callback) is running. Verification hooks use
// it to assert lock-discipline invariants against the acting proc.
func (e *Engine) Current() *Proc { return e.running }

// CPUs reports the number of hardware contexts.
func (e *Engine) CPUs() int { return e.cpus }

// Runnable reports how many procs currently compete for CPU. Exposed for
// tests and for components that want to observe contention.
func (e *Engine) Runnable() int { return e.runnable }

// dilation returns the processor-sharing slowdown for one unit of CPU work
// given the current runnable set: max(1, runnable/cpus), as a rational
// applied to a duration.
func (e *Engine) dilate(d Duration) Duration {
	if e.runnable <= e.cpus {
		return d
	}
	return d * int64(e.runnable) / int64(e.cpus)
}

type event struct {
	at   Time
	seq  uint64
	proc *Proc  // resume this proc, or
	fn   func() // run this callback in engine context
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (e *Engine) push(ev event) uint64 {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
	return ev.seq
}

// pushProc schedules a wakeup for p and records its identity so that stale
// wakeups (from superseded sleeps) are ignored.
func (e *Engine) pushProc(t Time, p *Proc) {
	p.eventSeq = e.push(event{at: t, proc: p})
}

// After schedules fn to run in engine context at now+d. fn must not block;
// it may signal conds and spawn procs. Use procs for anything stateful.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic("sim: After with negative delay")
	}
	e.push(event{at: e.now + Time(d), fn: fn})
}

// Spawn creates a proc running fn and schedules it to start at the current
// time. Daemon procs do not keep Run alive; they are terminated when all
// non-daemon procs have finished.
func (e *Engine) Spawn(name string, daemon bool, fn func(*Env)) *Proc {
	p := &Proc{
		name:   name,
		daemon: daemon,
		engine: e,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		state:  stateReady,
	}
	e.procs = append(e.procs, p)
	if !daemon {
		e.live++
	}
	go p.top(fn)
	// Procs contribute to CPU contention only while charging CPU work;
	// a freshly spawned proc is scheduled but not yet consuming CPU.
	e.pushProc(e.now, p)
	return p
}

// setRunnable updates the contention accounting for p.
func (e *Engine) setRunnable(p *Proc, r bool) {
	if p.countsCPU == r {
		return
	}
	p.countsCPU = r
	if r {
		e.runnable++
	} else {
		e.runnable--
	}
}

// Run executes events until every non-daemon proc has finished, then
// terminates daemons. It returns a non-nil error if a proc panicked or if
// the simulation deadlocked (no events pending while procs still live).
func (e *Engine) Run() error {
	for !e.stopped {
		if e.live == 0 {
			break
		}
		if e.events.Len() == 0 {
			e.failure = e.deadlockError()
			break
		}
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			panic("sim: event scheduled in the past")
		}
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.proc.state == stateDone || ev.proc.eventSeq != ev.seq {
			continue // stale wakeup
		}
		e.step(ev.proc)
	}
	e.shutdown()
	return e.failure
}

// Stop ends the simulation at the current time. Pending procs are killed by
// Run's shutdown phase. Safe to call from engine callbacks and procs.
func (e *Engine) Stop() { e.stopped = true }

// step hands control to p until it yields back.
func (e *Engine) step(p *Proc) {
	e.running = p
	p.state = stateRunning
	p.resume <- struct{}{}
	<-p.yield
	e.running = nil
	if p.state == stateDone {
		e.setRunnable(p, false)
		if !p.daemon {
			e.live--
		}
		if p.err != nil && e.failure == nil {
			e.failure = p.err
			e.stopped = true
		}
		p.done.broadcastLocked(e)
	}
}

// shutdown terminates all unfinished procs after Run's main loop exits.
func (e *Engine) shutdown() {
	for _, p := range e.procs {
		if p.state == stateDone {
			continue
		}
		p.killed = true
		e.step(p)
	}
}

func (e *Engine) deadlockError() error {
	msg := "sim: deadlock —"
	for _, p := range e.procs {
		if p.state != stateDone && !p.daemon {
			msg += " " + p.name + "(" + p.state.String() + ")"
		}
	}
	return fmt.Errorf("%s with no pending events at %v", msg, e.now)
}
