package sim

import "fmt"

// DefaultQuantum is the CPU accounting quantum. Charged CPU work is split
// into chunks of at most this size so that the processor-sharing dilation
// factor tracks changes in the runnable set.
const DefaultQuantum Duration = 250 * Microsecond

// Engine is a deterministic discrete-event simulator. Create one with
// NewEngine, spawn procs, then call Run. An Engine must not be shared
// between host goroutines.
//
// Control transfer is baton-passing: exactly one goroutine — the host
// inside Run, or one proc — holds control at any time. A proc that parks
// runs the dispatch loop itself and wakes the next schedulable proc
// directly, so a context switch costs one channel send plus one receive
// instead of a round trip through a central scheduler goroutine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	cpus    int
	quantum Duration

	procs    []*Proc
	live     int // procs not yet finished, excluding daemons
	runnable int // procs currently consuming CPU

	running *Proc // proc holding control right now, nil when engine runs
	stopped bool
	failure error

	// mainCh returns the baton to Run when the simulation is over
	// (finished, stopped, or deadlocked). Buffered so dispatch can hand
	// the baton back before Run has reached its receive.
	mainCh chan struct{}
	// shuttingDown redirects proc-completion batons to mainCh while
	// shutdown unwinds killed procs one at a time.
	shuttingDown bool
}

// NewEngine returns an engine modelling cpus hardware contexts.
func NewEngine(cpus int) *Engine {
	if cpus <= 0 {
		panic("sim: NewEngine requires at least one CPU")
	}
	return &Engine{cpus: cpus, quantum: DefaultQuantum, mainCh: make(chan struct{}, 1)}
}

// SetQuantum overrides the CPU accounting quantum (useful in tests).
func (e *Engine) SetQuantum(q Duration) {
	if q <= 0 {
		panic("sim: quantum must be positive")
	}
	e.quantum = q
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Current reports the proc holding control right now, or nil when the
// engine itself (or an After callback) is running. Verification hooks use
// it to assert lock-discipline invariants against the acting proc.
func (e *Engine) Current() *Proc { return e.running }

// CPUs reports the number of hardware contexts.
func (e *Engine) CPUs() int { return e.cpus }

// Runnable reports how many procs currently compete for CPU. Exposed for
// tests and for components that want to observe contention.
func (e *Engine) Runnable() int { return e.runnable }

// dilation returns the processor-sharing slowdown for one unit of CPU work
// given the current runnable set: max(1, runnable/cpus), as a rational
// applied to a duration.
func (e *Engine) dilate(d Duration) Duration {
	if e.runnable <= e.cpus {
		return d
	}
	return d * int64(e.runnable) / int64(e.cpus)
}

type event struct {
	at   Time
	seq  uint64
	proc *Proc  // resume this proc, or
	fn   func() // run this callback in engine context
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq).
// container/heap is deliberately not used: its interface methods box every
// event into an `any`, which made the event queue the simulator's dominant
// allocation site (push and pop together accounted for ~99% of all heap
// objects in a trial).
type eventHeap []event

// eventLess orders events by time, ties broken by push sequence (FIFO).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting a hole up instead of swapping (one write per
// level instead of three).
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&ev, &s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = ev
}

// pop removes the minimum, sifting a hole down for the displaced last
// element.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = event{} // drop the callback/proc references
	*h = s[:n]
	s = s[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && eventLess(&s[r], &s[c]) {
				c = r
			}
			if !eventLess(&s[c], &last) {
				break
			}
			s[i] = s[c]
			i = c
		}
		s[i] = last
	}
	return top
}

func (e *Engine) push(ev event) uint64 {
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
	return ev.seq
}

// pushProc schedules a wakeup for p and records its identity so that stale
// wakeups (from superseded sleeps) are ignored.
func (e *Engine) pushProc(t Time, p *Proc) {
	p.eventSeq = e.push(event{at: t, proc: p})
}

// canAdvanceTo reports whether the running proc may move virtual time
// straight to t without yielding: the engine is not stopped and no pending
// event is due at or before t. When it holds, a scheduler round trip would
// pop only the caller's own wakeup, so Charge/SleepUntil skip the event
// push and channel handoff and advance e.now in place. An event due exactly
// at t forces the slow path — it was pushed earlier, carries a smaller
// sequence number, and must run first for event order to stay identical.
func (e *Engine) canAdvanceTo(t Time) bool {
	return !e.stopped && (len(e.events) == 0 || e.events[0].at > t)
}

// After schedules fn to run in engine context at now+d. fn must not block;
// it may signal conds and spawn procs. Use procs for anything stateful.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic("sim: After with negative delay")
	}
	e.push(event{at: e.now + Time(d), fn: fn})
}

// Spawn creates a proc running fn and schedules it to start at the current
// time. Daemon procs do not keep Run alive; they are terminated when all
// non-daemon procs have finished.
func (e *Engine) Spawn(name string, daemon bool, fn func(*Env)) *Proc {
	p := &Proc{
		name:   name,
		daemon: daemon,
		engine: e,
		// Buffered: the waker may be the proc itself (a dispatch run from
		// this proc's own handoff can pop this proc's next wakeup), so the
		// send must complete before the receive is reached.
		resume: make(chan struct{}, 1),
		state:  stateReady,
	}
	e.procs = append(e.procs, p)
	if !daemon {
		e.live++
	}
	go p.top(fn)
	// Procs contribute to CPU contention only while charging CPU work;
	// a freshly spawned proc is scheduled but not yet consuming CPU.
	e.pushProc(e.now, p)
	return p
}

// setRunnable updates the contention accounting for p.
func (e *Engine) setRunnable(p *Proc, r bool) {
	if p.countsCPU == r {
		return
	}
	p.countsCPU = r
	if r {
		e.runnable++
	} else {
		e.runnable--
	}
}

// Run executes events until every non-daemon proc has finished, then
// terminates daemons. It returns a non-nil error if a proc panicked or if
// the simulation deadlocked (no events pending while procs still live).
func (e *Engine) Run() error {
	e.dispatch()
	<-e.mainCh
	e.shutdown()
	return e.failure
}

// Stop ends the simulation at the current time. Pending procs are killed by
// Run's shutdown phase. Safe to call from engine callbacks and procs.
func (e *Engine) Stop() { e.stopped = true }

// dispatch passes the baton to the next schedulable entity. The caller
// must have fully recorded its own state first (parked, finished, or — for
// the host — not yet started). Inline callbacks run in the caller's
// goroutine; when a proc's wakeup pops, dispatch sends it the baton and
// returns so the caller can park itself. When the simulation is over the
// baton goes back to Run via mainCh.
func (e *Engine) dispatch() { e.dispatchFrom(nil) }

// dispatchFrom is dispatch with a self-wake fast path: when the next
// wakeup belongs to self (the proc currently parking), it reports true
// and self simply keeps the baton — no channel operations at all. This
// is common when inline After callbacks interleave with a proc that is
// otherwise the earliest sleeper.
func (e *Engine) dispatchFrom(self *Proc) bool {
	e.running = nil
	for {
		if e.stopped || e.live == 0 {
			e.mainCh <- struct{}{}
			return false
		}
		if len(e.events) == 0 {
			e.failure = e.deadlockError()
			e.mainCh <- struct{}{}
			return false
		}
		ev := e.events.pop()
		if ev.at < e.now {
			panic("sim: event scheduled in the past")
		}
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.proc.state == stateDone || ev.proc.eventSeq != ev.seq {
			continue // stale wakeup
		}
		e.running = ev.proc
		ev.proc.state = stateRunning
		if ev.proc == self {
			return true
		}
		ev.proc.resume <- struct{}{}
		return false
	}
}

// finish records proc completion and passes the baton on. Runs in the
// finishing proc's goroutine (this is the bookkeeping the central
// scheduler used to do after each yield).
func (e *Engine) finish(p *Proc) {
	e.setRunnable(p, false)
	if !p.daemon {
		e.live--
	}
	if p.err != nil && e.failure == nil {
		e.failure = p.err
		e.stopped = true
	}
	p.done.broadcastLocked(e)
	if e.shuttingDown {
		e.mainCh <- struct{}{}
		return
	}
	e.dispatch()
}

// shutdown terminates all unfinished procs after the main phase exits.
// Each killed proc unwinds in its own goroutine and hands the baton back
// through mainCh before the next one is resumed.
func (e *Engine) shutdown() {
	e.shuttingDown = true
	for _, p := range e.procs {
		if p.state == stateDone {
			continue
		}
		p.killed = true
		e.running = p
		p.resume <- struct{}{}
		<-e.mainCh
	}
	e.running = nil
}

func (e *Engine) deadlockError() error {
	msg := "sim: deadlock —"
	for _, p := range e.procs {
		if p.state != stateDone && !p.daemon {
			msg += " " + p.name + "(" + p.state.String() + ")"
		}
	}
	return fmt.Errorf("%s with no pending events at %v", msg, e.now)
}
