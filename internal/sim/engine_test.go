package sim

import (
	"testing"
	"testing/quick"
)

func TestSingleProcChargeAdvancesTime(t *testing.T) {
	e := NewEngine(4)
	var end Time
	e.Spawn("worker", false, func(v *Env) {
		v.Charge(3 * Millisecond)
		end = v.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(3*Millisecond) {
		t.Fatalf("end = %v, want 3ms", end)
	}
}

func TestSleepDoesNotConsumeCPU(t *testing.T) {
	e := NewEngine(1)
	var cpu Duration
	p := e.Spawn("sleeper", false, func(v *Env) {
		v.Sleep(10 * Millisecond)
		v.Charge(1 * Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	cpu = p.CPUTime()
	if cpu != 1*Millisecond {
		t.Fatalf("cpu = %v, want 1ms", cpu)
	}
	if e.Now() != Time(11*Millisecond) {
		t.Fatalf("now = %v, want 11ms", e.Now())
	}
}

// Two CPU-bound procs on one CPU should each take twice as long.
func TestProcessorSharingDilation(t *testing.T) {
	e := NewEngine(1)
	var ends [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("w", false, func(v *Env) {
			v.Charge(10 * Millisecond)
			ends[i] = v.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Allow one quantum of slack: the first chunk of the first proc runs
	// before the second proc begins charging, so it is undilated.
	lo, hi := Time(20*Millisecond-DefaultQuantum), Time(20*Millisecond)
	for i, end := range ends {
		if end < lo || end > hi {
			t.Fatalf("proc %d ended at %v, want ~20ms", i, end)
		}
	}
}

// With as many CPUs as procs there is no dilation.
func TestNoDilationUnderCapacity(t *testing.T) {
	e := NewEngine(2)
	var ends [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("w", false, func(v *Env) {
			v.Charge(10 * Millisecond)
			ends[i] = v.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		if end != Time(10*Millisecond) {
			t.Fatalf("proc %d ended at %v, want 10ms", i, end)
		}
	}
}

// A proc that blocks on I/O stops contributing to contention.
func TestBlockedProcReleasesCPU(t *testing.T) {
	e := NewEngine(1)
	var end Time
	e.Spawn("io", false, func(v *Env) {
		v.Sleep(100 * Millisecond) // blocked, no CPU use
	})
	e.Spawn("cpu", false, func(v *Env) {
		v.Charge(10 * Millisecond)
		end = v.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(10*Millisecond) {
		t.Fatalf("cpu proc ended at %v, want 10ms (no contention from sleeper)", end)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	e := NewEngine(4)
	var c Cond
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("waiter", false, func(v *Env) {
			v.Wait(&c)
			order = append(order, i)
		})
	}
	e.Spawn("signaller", false, func(v *Env) {
		v.Sleep(1 * Millisecond)
		c.Broadcast(v.Engine())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order = %v, want [0 1 2]", order)
	}
}

func TestBarrierReleasesAllParties(t *testing.T) {
	e := NewEngine(4)
	b := NewBarrier(3)
	var after []Time
	for i := 0; i < 3; i++ {
		d := Duration(i+1) * Millisecond
		e.Spawn("party", false, func(v *Env) {
			v.Charge(d)
			b.Await(v)
			after = append(after, v.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(after) != 3 {
		t.Fatalf("parties released = %d, want 3", len(after))
	}
	for _, ts := range after {
		if ts != Time(3*Millisecond) {
			t.Fatalf("release at %v, want 3ms (slowest party)", ts)
		}
	}
}

func TestBarrierIsReusable(t *testing.T) {
	e := NewEngine(4)
	b := NewBarrier(2)
	rounds := make([][]int, 2)
	for i := 0; i < 2; i++ {
		e.Spawn("party", false, func(v *Env) {
			for r := 0; r < 2; r++ {
				v.Charge(1 * Millisecond)
				got := b.Await(v)
				rounds[r] = append(rounds[r], got)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if len(rounds[r]) != 2 {
			t.Fatalf("round %d released %d parties, want 2", r, len(rounds[r]))
		}
		for _, got := range rounds[r] {
			if got != r {
				t.Fatalf("round index = %d, want %d", got, r)
			}
		}
	}
}

func TestDaemonIsTerminatedAfterWorkloadEnds(t *testing.T) {
	e := NewEngine(2)
	daemonRan := false
	e.Spawn("daemon", true, func(v *Env) {
		for {
			daemonRan = true
			v.Sleep(1 * Millisecond)
		}
	})
	e.Spawn("work", false, func(v *Env) {
		v.Charge(5 * Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !daemonRan {
		t.Fatal("daemon never ran")
	}
	if e.Now() != Time(5*Millisecond) {
		t.Fatalf("engine stopped at %v, want 5ms", e.Now())
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine(1)
	var c Cond
	e.Spawn("stuck", false, func(v *Env) {
		v.Wait(&c) // never signalled
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", false, func(v *Env) {
		panic("boom")
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected error from panicking proc")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(4)
	var wg WaitGroup
	wg.Add(3)
	sum := 0
	for i := 0; i < 3; i++ {
		d := Duration(i+1) * Millisecond
		e.Spawn("w", false, func(v *Env) {
			v.Charge(d)
			sum++
			wg.DoneOne(v.Engine())
		})
	}
	var joined Time
	e.Spawn("join", false, func(v *Env) {
		wg.Wait(v)
		joined = v.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 3 {
		t.Fatalf("sum = %d, want 3", sum)
	}
	if joined != Time(3*Millisecond) {
		t.Fatalf("join at %v, want 3ms", joined)
	}
}

func TestAfterCallbackRuns(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Spawn("w", false, func(v *Env) { v.Sleep(10 * Millisecond) })
	e.After(4*Millisecond, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(4*Millisecond) {
		t.Fatalf("callback at %v, want 4ms", at)
	}
}

func TestStopEndsRunEarly(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("w", false, func(v *Env) {
		for {
			v.Charge(1 * Millisecond)
			if v.Now() >= Time(5*Millisecond) {
				v.Engine().Stop()
				v.Yield()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() < Time(5*Millisecond) || e.Now() > Time(6*Millisecond) {
		t.Fatalf("engine stopped at %v, want ~5ms", e.Now())
	}
}

// runScenario runs a fixed mixed scenario and returns a fingerprint of
// simulated timestamps; used to assert determinism.
func runScenario(seed uint64) []Time {
	e := NewEngine(3)
	rng := NewRNG(seed)
	var stamps []Time
	b := NewBarrier(4)
	for i := 0; i < 4; i++ {
		r := rng.Stream(uint64(i))
		e.Spawn("w", false, func(v *Env) {
			for it := 0; it < 5; it++ {
				v.Charge(Duration(r.Intn(1000)+1) * Microsecond)
				if r.Bool(0.3) {
					v.Sleep(Duration(r.Intn(500)) * Microsecond)
				}
				b.Await(v)
				stamps = append(stamps, v.Now())
			}
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return stamps
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a := runScenario(42)
	b := runScenario(42)
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timestamp %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := runScenario(1)
	b := runScenario(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDoneCondSignalsWaiters(t *testing.T) {
	e := NewEngine(2)
	worker := e.Spawn("worker", false, func(v *Env) {
		v.Charge(2 * Millisecond)
	})
	var sawDone bool
	e.Spawn("watcher", false, func(v *Env) {
		for !worker.Finished() {
			v.Wait(worker.Done())
		}
		sawDone = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("watcher never observed completion")
	}
}

// Property: RNG.Float64 is always in [0,1) and Intn in range.
func TestRNGRangesProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		r := NewRNG(seed)
		n := int(nRaw%1000) + 1
		for i := 0; i < 50; i++ {
			if v := r.Float64(); v < 0 || v >= 1 {
				return false
			}
			if k := r.Intn(n); k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: derived streams are independent of parent draws and reproducible.
func TestRNGStreamReproducibleProperty(t *testing.T) {
	f := func(seed, id uint64) bool {
		a := NewRNG(seed).Stream(id).Uint64()
		parent := NewRNG(seed)
		parent.Uint64() // perturb parent
		b := parent.Stream(id).Uint64()
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(7)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGMeanRoughlyHalf(t *testing.T) {
	r := NewRNG(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %f, want ~0.5", mean)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{Time(5), "5ns"},
		{Time(2 * Microsecond), "2.000µs"},
		{Time(3 * Millisecond), "3.000ms"},
		{Time(7 * Second), "7.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestChargeQuantumSplitsWork(t *testing.T) {
	// A second proc arriving mid-charge should dilate the remainder only.
	e := NewEngine(1)
	e.SetQuantum(1 * Millisecond)
	var end1 Time
	e.Spawn("first", false, func(v *Env) {
		v.Charge(10 * Millisecond)
		end1 = v.Now()
	})
	e.Spawn("late", false, func(v *Env) {
		v.Sleep(5 * Millisecond) // arrive after first has done 5ms
		v.Charge(10 * Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// first: 5ms alone + 5ms dilated 2x = 15ms total.
	if end1 != Time(15*Millisecond) {
		t.Fatalf("first ended at %v, want 15ms", end1)
	}
}

func TestAfterNegativePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.After(-1, func() {})
}

func TestChargeNegativePanicsInsideProc(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", false, func(v *Env) {
		v.Charge(-5)
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected error from negative charge")
	}
}

func TestZeroChargeIsInstant(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("w", false, func(v *Env) {
		v.Charge(0)
		if v.Now() != 0 {
			t.Errorf("zero charge advanced time to %v", v.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnFromWithinProc(t *testing.T) {
	e := NewEngine(2)
	var childEnd Time
	e.Spawn("parent", false, func(v *Env) {
		v.Charge(1 * Millisecond)
		v.Engine().Spawn("child", false, func(cv *Env) {
			cv.Charge(2 * Millisecond)
			childEnd = cv.Now()
		})
		v.Charge(1 * Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != Time(3*Millisecond) {
		t.Fatalf("child ended at %v, want 3ms", childEnd)
	}
}

func TestSignalOnEmptyCondIsNoop(t *testing.T) {
	e := NewEngine(1)
	var c Cond
	e.Spawn("w", false, func(v *Env) {
		if c.Signal(v.Engine()) {
			t.Error("signal on empty cond reported a wakeup")
		}
		if c.Broadcast(v.Engine()) != 0 {
			t.Error("broadcast on empty cond woke procs")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("lognormal produced %v", v)
		}
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, x := range xs {
		if seen[x] {
			t.Fatal("shuffle duplicated elements")
		}
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Fatal("shuffle lost elements")
	}
}
