package sim

import "fmt"

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateSleeping // waiting for a scheduled wakeup (CPU chunk or I/O)
	stateWaiting  // waiting on a Cond, no event pending
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateWaiting:
		return "waiting"
	case stateDone:
		return "done"
	}
	return "unknown"
}

// killSignal is panicked inside a proc goroutine to unwind it when the
// engine shuts down; the proc wrapper recovers it.
type killSignalType struct{}

var killSignal = killSignalType{}

// IsKillSignal reports whether a recovered panic value is the engine's
// shutdown signal. Procs that install their own recover (to convert panics
// into classified errors) must re-panic kill signals untouched so the
// engine can unwind them normally.
func IsKillSignal(r any) bool {
	_, ok := r.(killSignalType)
	return ok
}

// Proc is a simulated task: a goroutine that runs only while the engine has
// handed it control, making execution fully deterministic.
type Proc struct {
	name   string
	daemon bool
	engine *Engine

	// resume delivers the baton (buffered, capacity 1: the sender may be
	// this proc's own handoff-dispatch).
	resume chan struct{}

	state     procState
	countsCPU bool   // contributes to CPU contention right now
	eventSeq  uint64 // identity of the pending wakeup event
	killed    bool
	err       error

	done Cond // broadcast when the proc finishes

	// cpuTime accumulates the proc's charged (undilated) CPU work.
	cpuTime Duration
}

// Name reports the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// CPUTime reports total CPU work charged by the proc, before dilation.
func (p *Proc) CPUTime() Duration { return p.cpuTime }

// Done exposes a Cond broadcast when the proc finishes; procs can Wait on it.
func (p *Proc) Done() *Cond { return &p.done }

// Finished reports whether the proc has completed.
func (p *Proc) Finished() bool { return p.state == stateDone }

// top is the goroutine body wrapping the user function.
func (p *Proc) top(fn func(*Env)) {
	<-p.resume // wait for the first schedule
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case killSignalType:
				// Engine shutdown; not a failure.
			case error:
				// Preserve typed panics (fault.HardError, vmm.OOMError,
				// core.LivelockError) so callers can errors.As-classify
				// transient trial failures.
				p.err = fmt.Errorf("sim: proc %q panicked: %w", p.name, e)
			default:
				p.err = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
			}
		}
		p.state = stateDone
		p.engine.finish(p)
	}()
	if p.killed {
		return
	}
	fn(&Env{engine: p.engine, proc: p})
}

// handoff passes the baton on (running the dispatch loop in this
// goroutine) and blocks until resumed. The caller must have recorded the
// proc's parked state and any wakeup event before calling. On resume
// during shutdown it unwinds via killSignal.
func (p *Proc) handoff() {
	if p.engine.dispatchFrom(p) {
		return // our own wakeup was next; baton never left this goroutine
	}
	<-p.resume
	if p.killed {
		panic(killSignal)
	}
	p.state = stateRunning
}

// Env is the interface a proc body uses to interact with virtual time.
// It is only valid within the proc it was created for.
type Env struct {
	engine *Engine
	proc   *Proc
}

// Now reports the current virtual time.
func (v *Env) Now() Time { return v.engine.now }

// Engine exposes the engine, e.g. to spawn further procs or signal conds.
func (v *Env) Engine() *Engine { return v.engine }

// Proc reports the proc this Env belongs to.
func (v *Env) Proc() *Proc { return v.proc }

// Charge consumes d nanoseconds of CPU work under processor-sharing
// contention. The work is split into quanta so dilation follows changes in
// the runnable set. Virtual time advances by at least d.
func (v *Env) Charge(d Duration) {
	if d < 0 {
		panic("sim: Charge with negative duration")
	}
	e, p := v.engine, v.proc
	p.cpuTime += d
	q := e.quantum
	for d > 0 {
		chunk := d
		if chunk > q {
			chunk = q
		}
		d -= chunk
		e.setRunnable(p, true)
		wall := e.dilate(chunk)
		deadline := e.now + Time(wall)
		if e.canAdvanceTo(deadline) {
			// Nothing can run before this quantum completes (the runnable
			// set, and with it the dilation, cannot change without an
			// event): advance time in place instead of a scheduler round
			// trip through the event heap and two channel operations.
			e.now = deadline
			continue
		}
		p.state = stateSleeping
		e.pushProc(deadline, p)
		p.handoff()
	}
}

// Sleep blocks the proc for d nanoseconds without consuming CPU
// (for example, waiting on device I/O).
func (v *Env) Sleep(d Duration) {
	if d < 0 {
		panic("sim: Sleep with negative duration")
	}
	v.SleepUntil(v.engine.now + Time(d))
}

// SleepUntil blocks the proc, not consuming CPU, until virtual time t.
func (v *Env) SleepUntil(t Time) {
	e, p := v.engine, v.proc
	if t < e.now {
		t = e.now
	}
	e.setRunnable(p, false)
	if e.canAdvanceTo(t) {
		// No event is due before the wakeup: skip the scheduler round trip
		// and advance time in place (see Engine.canAdvanceTo).
		e.now = t
		return
	}
	p.state = stateSleeping
	e.pushProc(t, p)
	p.handoff()
}

// Yield reschedules the proc at the current time, letting any already
// pending same-time events run first.
func (v *Env) Yield() {
	e, p := v.engine, v.proc
	p.state = stateReady
	e.pushProc(e.now, p)
	p.handoff()
}

// Wait blocks the proc until c is signalled. The proc does not consume CPU
// while waiting.
func (v *Env) Wait(c *Cond) {
	e, p := v.engine, v.proc
	e.setRunnable(p, false)
	p.state = stateWaiting
	c.waiters = append(c.waiters, p)
	p.handoff()
}

// WaitFor blocks until pred() is true, re-checking each time c is
// signalled. The predicate is evaluated with the proc holding control.
func (v *Env) WaitFor(c *Cond, pred func() bool) {
	for !pred() {
		v.Wait(c)
	}
}
