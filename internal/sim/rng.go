package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). Every source of randomness in the
// simulator draws from an RNG stream derived from the trial seed, so a
// trial is exactly reproducible from its seed.
//
// RNG is not safe for concurrent use; derive per-component streams with
// Stream instead of sharing one generator.
type RNG struct {
	seed uint64 // immutable; basis for derived streams
	s    [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, so that
// nearby seeds still produce well-separated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{seed: seed}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state, which xoshiro cannot leave.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Stream derives an independent child generator identified by id.
// Streams with distinct ids are statistically independent, and the parent
// stream is not perturbed.
func (r *RNG) Stream(id uint64) *RNG {
	return NewRNG(r.seed ^ (id+1)*0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias is negligible for simulator-scale n
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Box–Muller, one branch).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u <= 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// LogNormal returns exp(N(mu, sigma)). Used for device-latency jitter.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// ExpFloat64 returns an exponential variate with mean 1. Used for
// Poisson-process event scheduling (fault-storm arrivals).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
