// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine models a small multiprocessor: a fixed number of hardware CPU
// contexts shared by an arbitrary number of simulated tasks ("procs"). Time
// is virtual, measured in nanoseconds, and never coupled to the wall clock.
// Procs run as real goroutines, but control is handed to exactly one proc at
// a time, so execution order — and therefore every simulated timestamp — is
// fully determined by the event heap and the seeds supplied by the caller.
//
// CPU contention uses a fluid processor-sharing model: when R procs are
// runnable on C contexts, charged CPU work is dilated by max(1, R/C). Work
// is charged in bounded quanta so that dilation tracks changes in the
// runnable set (for example, a kernel scanning thread waking up mid-stage).
//
// Blocking operations (device I/O, condition waits, barriers) remove a proc
// from the runnable set and are woken by events or explicit signals.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = int64

// Common durations, mirroring time package conventions but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// String renders a Time with adaptive units for logs and debugging.
func (t Time) String() string {
	switch {
	case t >= Time(Second):
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Time(Millisecond):
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Time(Microsecond):
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }
