package sim

import "fmt"

// Debug tracing (development aid): when TraceEnabled, the engine records
// recent scheduler operations in a ring buffer for post-mortem dumps.
var (
	TraceEnabled bool
	traceRing    [256]string
	tracePos     int
)

func trace(format string, args ...any) {
	if !TraceEnabled {
		return
	}
	traceRing[tracePos%len(traceRing)] = fmt.Sprintf(format, args...)
	tracePos++
}

// DumpTrace returns the most recent trace entries, oldest first.
func DumpTrace() []string {
	if tracePos == 0 {
		return nil
	}
	var out []string
	start := tracePos - len(traceRing)
	if start < 0 {
		start = 0
	}
	for i := start; i < tracePos; i++ {
		out = append(out, traceRing[i%len(traceRing)])
	}
	return out
}

// Trace records a formatted entry in the debug ring (no-op unless
// TraceEnabled).
func Trace(format string, args ...any) { trace(format, args...) }

// DebugProcs reports each proc's name and state (development aid).
func (e *Engine) DebugProcs() []string {
	var out []string
	for _, p := range e.procs {
		out = append(out, fmt.Sprintf("%s=%v cpu=%v", p.name, p.state, p.cpuTime))
	}
	return out
}
