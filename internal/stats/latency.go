package stats

import "slices"

// TailPoints are the percentiles reported in the paper's tail-latency
// figures (Figs. 3, 8, 12).
var TailPoints = []float64{50, 90, 99, 99.9, 99.99}

// LatencyRecorder accumulates per-request latencies (virtual nanoseconds)
// and produces tail distributions. It stores raw samples: the experiment
// scales are small enough that exact percentiles are affordable, and
// exactness matters at p99.99.
type LatencyRecorder struct {
	samples []int64
	sorted  bool
}

// NewLatencyRecorder returns a recorder with capacity hint n.
func NewLatencyRecorder(n int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]int64, 0, n)}
}

// Record adds one latency observation.
func (l *LatencyRecorder) Record(ns int64) {
	l.samples = append(l.samples, ns)
	l.sorted = false
}

// Count reports the number of recorded observations.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Mean returns the mean latency in nanoseconds, or 0 if empty.
func (l *LatencyRecorder) Mean() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range l.samples {
		s += float64(v)
	}
	return s / float64(len(l.samples))
}

func (l *LatencyRecorder) sort() {
	if !l.sorted {
		// slices.Sort specializes on int64 — no per-comparison closure call.
		// Percentile results are unaffected: values sort identically.
		slices.Sort(l.samples)
		l.sorted = true
	}
}

// Percentile returns the p-th percentile latency in nanoseconds.
// It returns 0 when no samples have been recorded.
func (l *LatencyRecorder) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	if len(l.samples) == 1 {
		return float64(l.samples[0])
	}
	rank := p / 100 * float64(len(l.samples)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(l.samples) {
		return float64(l.samples[len(l.samples)-1])
	}
	return float64(l.samples[lo])*(1-frac) + float64(l.samples[lo+1])*frac
}

// Tail returns the latencies at each of TailPoints.
func (l *LatencyRecorder) Tail() []float64 {
	out := make([]float64, len(TailPoints))
	for i, p := range TailPoints {
		out[i] = l.Percentile(p)
	}
	return out
}

// Samples exposes the raw observations (unsorted order not guaranteed).
func (l *LatencyRecorder) Samples() []int64 { return l.samples }

// Merge appends all observations from other.
func (l *LatencyRecorder) Merge(other *LatencyRecorder) {
	l.samples = append(l.samples, other.samples...)
	l.sorted = false
}
