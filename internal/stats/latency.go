package stats

import "slices"

// TailPoints are the percentiles reported in the paper's tail-latency
// figures (Figs. 3, 8, 12).
var TailPoints = []float64{50, 90, 99, 99.9, 99.99}

// LatencyRecorder accumulates per-request latencies (virtual nanoseconds)
// and produces tail distributions. It stores raw samples: the experiment
// scales are small enough that exact percentiles are affordable, and
// exactness matters at p99.99.
type LatencyRecorder struct {
	// samples stays in insertion order for the recorder's lifetime —
	// Samples() and everything persisted from it (checkpoint envelopes)
	// must not depend on whether a percentile was queried first.
	samples []int64
	// sorted is a lazily-built sorted copy serving percentile queries,
	// invalidated by Record/Merge.
	sorted []int64
}

// NewLatencyRecorder returns a recorder with capacity hint n.
func NewLatencyRecorder(n int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]int64, 0, n)}
}

// Record adds one latency observation.
func (l *LatencyRecorder) Record(ns int64) {
	l.samples = append(l.samples, ns)
	l.sorted = nil
}

// Count reports the number of recorded observations.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Mean returns the mean latency in nanoseconds, or 0 if empty.
func (l *LatencyRecorder) Mean() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range l.samples {
		s += float64(v)
	}
	return s / float64(len(l.samples))
}

func (l *LatencyRecorder) sort() []int64 {
	if l.sorted == nil {
		// slices.Sort specializes on int64 — no per-comparison closure call.
		// Sorting a copy keeps l.samples in insertion order: an earlier
		// version sorted in place, silently reordering what Samples()
		// exposed (and the checkpoint layer persisted) depending on whether
		// a percentile had been queried first.
		l.sorted = append(make([]int64, 0, len(l.samples)), l.samples...)
		slices.Sort(l.sorted)
	}
	return l.sorted
}

// Percentile returns the p-th percentile latency in nanoseconds.
// It returns 0 when no samples have been recorded.
func (l *LatencyRecorder) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	s := l.sort()
	if len(s) == 1 {
		return float64(s[0])
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return float64(s[len(s)-1])
	}
	return float64(s[lo])*(1-frac) + float64(s[lo+1])*frac
}

// Tail returns the latencies at each of TailPoints.
func (l *LatencyRecorder) Tail() []float64 {
	out := make([]float64, len(TailPoints))
	for i, p := range TailPoints {
		out[i] = l.Percentile(p)
	}
	return out
}

// Samples returns a copy of the raw observations in insertion order. The
// order is stable regardless of percentile queries, so persisted sample
// sets are byte-identical however the recorder was used.
func (l *LatencyRecorder) Samples() []int64 {
	return append(make([]int64, 0, len(l.samples)), l.samples...)
}

// Merge appends all observations from other.
func (l *LatencyRecorder) Merge(other *LatencyRecorder) {
	l.samples = append(l.samples, other.samples...)
	l.sorted = nil
}
