package stats

import (
	"math"
	"testing"
)

// Table-driven edge cases for LatencyRecorder: empty recorders and
// merges, single samples, and extreme values near the int64 range.
func TestLatencyRecorderEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		p       float64
		want    float64
	}{
		{"empty-percentile", nil, 99, 0},
		{"empty-p0", nil, 0, 0},
		{"single-sample-p50", []int64{42}, 50, 42},
		{"single-sample-p9999", []int64{42}, 99.99, 42},
		{"two-sample-tail", []int64{10, 20}, 99.99, 19.999},
		{"huge-values", []int64{math.MaxInt64 - 1, math.MaxInt64}, 0, float64(math.MaxInt64 - 1)},
		{"negative-and-positive", []int64{-5, 5}, 50, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			l := NewLatencyRecorder(0)
			for _, s := range c.samples {
				l.Record(s)
			}
			if got := l.Percentile(c.p); !almost(got, c.want, math.Abs(c.want)*1e-12+1e-9) {
				t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
			}
			if l.Count() != len(c.samples) {
				t.Fatalf("Count = %d, want %d", l.Count(), len(c.samples))
			}
		})
	}
}

func TestLatencyRecorderEmptyMerge(t *testing.T) {
	a := NewLatencyRecorder(0)
	b := NewLatencyRecorder(0)

	// empty <- empty stays empty.
	a.Merge(b)
	if a.Count() != 0 || a.Mean() != 0 || a.Percentile(99) != 0 {
		t.Fatal("merging two empty recorders must stay empty")
	}
	for _, v := range a.Tail() {
		if v != 0 {
			t.Fatal("empty tail must be all zeros")
		}
	}

	// non-empty <- empty is a no-op.
	a.Record(7)
	a.Merge(b)
	if a.Count() != 1 || a.Percentile(50) != 7 {
		t.Fatalf("merge with empty changed data: count=%d", a.Count())
	}

	// empty <- non-empty adopts the samples.
	b.Merge(a)
	if b.Count() != 1 || b.Percentile(100) != 7 {
		t.Fatalf("empty recorder did not adopt merged samples")
	}
}

func TestLatencyRecorderMergeAfterSortStaysCorrect(t *testing.T) {
	a := NewLatencyRecorder(0)
	for _, v := range []int64{30, 10} {
		a.Record(v)
	}
	if got := a.Percentile(0); got != 10 {
		t.Fatalf("P0 = %v", got)
	}
	// The recorder sorted internally; merging afterwards must invalidate
	// the sorted flag, not append out of order silently.
	b := NewLatencyRecorder(0)
	b.Record(1)
	a.Merge(b)
	if got := a.Percentile(0); got != 1 {
		t.Fatalf("P0 after merge = %v, want 1", got)
	}
	if got := a.Percentile(100); got != 30 {
		t.Fatalf("P100 after merge = %v, want 30", got)
	}
}

// TestSamplesOrderStableAcrossQueries is the regression test for the
// Samples() aliasing bug: the returned slice used to be the internal one,
// which the lazy percentile sort reordered in place — so anything that
// persisted Samples() (the experiment checkpoint layer) produced different
// bytes depending on whether a percentile had been computed first.
func TestSamplesOrderStableAcrossQueries(t *testing.T) {
	in := []int64{30, 10, 20, 50, 40}
	l := NewLatencyRecorder(0)
	for _, s := range in {
		l.Record(s)
	}
	before := l.Samples()
	l.Percentile(99) // triggers the lazy sort
	l.Tail()
	after := l.Samples()
	for i := range in {
		if before[i] != in[i] {
			t.Fatalf("Samples()[%d] = %d before queries, want insertion order %d", i, before[i], in[i])
		}
		if after[i] != in[i] {
			t.Fatalf("Samples()[%d] = %d after percentile queries, want insertion order %d", i, after[i], in[i])
		}
	}
	// The returned slice must be caller-owned: mutating it cannot corrupt
	// the recorder.
	after[0] = -999
	if got := l.Samples()[0]; got != in[0] {
		t.Fatalf("mutating a returned slice leaked into the recorder: got %d", got)
	}
	// And queries after more records still see every sample.
	l.Record(5)
	if got := l.Percentile(0); got != 5 {
		t.Fatalf("P0 after post-query Record = %v, want 5", got)
	}
}
