// Package stats provides the statistical machinery used by the
// characterization harness: summary statistics, interpolated percentiles up
// to the p99.99 tails reported in the paper, ordinary least-squares
// regression with r² (for the fault↔runtime linearity analysis), and
// Welch's t-test (for the significance claims at higher memory capacities).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (σ/μ), or 0 when the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest element; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. xs need not be sorted. It panics on
// an empty slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// PercentilesSorted computes several percentiles from one sort. xs is
// sorted in place.
func PercentilesSorted(xs []float64, ps []float64) []float64 {
	if len(xs) == 0 {
		panic("stats: PercentilesSorted of empty slice")
	}
	sort.Float64s(xs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(xs, p)
	}
	return out
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is a five-number summary plus mean and deviation, matching the
// box-and-whisker presentation of the paper's fault-distribution figures.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs. It panics on an empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		StdDev: StdDev(s),
		Min:    s[0],
		Q1:     percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		Q3:     percentileSorted(s, 75),
		Max:    s[len(s)-1],
	}
}

// IQR returns the interquartile range of the summary.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// Spread returns max/min, the paper's "factor between fastest and slowest
// executions". Returns +Inf when min is zero.
func (s Summary) Spread() float64 {
	if s.Min == 0 {
		return math.Inf(1)
	}
	return s.Max / s.Min
}

// Regression holds an ordinary least-squares fit y = Slope*x + Intercept.
type Regression struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// LinearFit fits y against x by OLS and reports the coefficient of
// determination. Slices must be the same non-zero length.
func LinearFit(x, y []float64) Regression {
	if len(x) != len(y) || len(x) == 0 {
		panic("stats: LinearFit requires equal, non-empty slices")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	r := Regression{N: len(x)}
	if sxx == 0 {
		r.Intercept = my
		return r
	}
	r.Slope = sxy / sxx
	r.Intercept = my - r.Slope*mx
	if syy == 0 {
		r.R2 = 1
		return r
	}
	r.R2 = (sxy * sxy) / (sxx * syy)
	return r
}

// TTest holds the result of Welch's unequal-variance t-test.
type TTest struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs Welch's two-sample t-test on a and b and returns the
// two-sided p-value. Each sample needs at least two observations.
func WelchTTest(a, b []float64) TTest {
	if len(a) < 2 || len(b) < 2 {
		panic("stats: WelchTTest requires at least two observations per sample")
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		// Identical constant samples: no evidence of difference.
		if ma == mb {
			return TTest{T: 0, DF: na + nb - 2, P: 1}
		}
		return TTest{T: math.Inf(1), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * studentTCDFUpper(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTest{T: t, DF: df, P: p}
}

// studentTCDFUpper returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTCDFUpper(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a + math.Log(1-x)*b + lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Normalize returns xs scaled so that base maps to 1.0. Panics if base is 0.
func Normalize(xs []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: Normalize by zero base")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Histogram bins xs into n equal-width buckets over [min, max] and returns
// the bucket counts and edges. Useful for the ASCII visualizations.
func Histogram(xs []float64, n int) (counts []int, edges []float64) {
	if n <= 0 {
		panic("stats: Histogram needs at least one bucket")
	}
	if len(xs) == 0 {
		return make([]int, n), make([]float64, n+1)
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + w*float64(i)
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}
