package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4.571428571, 1e-6) {
		t.Fatalf("Variance = %v, want ~4.571", v)
	}
	if s := StdDev(xs); !almost(s, 2.13809, 1e-4) {
		t.Fatalf("StdDev = %v", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("Variance of single value should be 0")
	}
}

func TestCV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if CV(xs) != 0 {
		t.Fatal("CV of constant data should be 0")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Fatal("CV with zero mean should be 0")
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {25, 20}, {50, 35}, {75, 40}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 50); got != 15 {
		t.Fatalf("P50 = %v, want 15", got)
	}
}

func TestPercentileSingleValue(t *testing.T) {
	if got := Percentile([]float64{7}, 99.99); got != 7 {
		t.Fatalf("P99.99 of single = %v, want 7", got)
	}
}

// Property: percentiles are monotonically non-decreasing in p and bounded
// by min/max of the data.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb && pa >= Min(xs) && pb <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	s := Summarize(xs)
	if s.N != 9 || s.Min != 1 || s.Max != 9 || s.Median != 5 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.Q1 != 3 || s.Q3 != 7 {
		t.Fatalf("quartiles wrong: Q1=%v Q3=%v", s.Q1, s.Q3)
	}
	if s.IQR() != 4 {
		t.Fatalf("IQR = %v, want 4", s.IQR())
	}
	if s.Spread() != 9 {
		t.Fatalf("Spread = %v, want 9", s.Spread())
	}
}

func TestSpreadInfiniteOnZeroMin(t *testing.T) {
	s := Summarize([]float64{0, 5})
	if !math.IsInf(s.Spread(), 1) {
		t.Fatal("Spread with zero min should be +Inf")
	}
}

func TestLinearFitPerfectLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	r := LinearFit(x, y)
	if !almost(r.Slope, 2, 1e-12) || !almost(r.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", r)
	}
	if !almost(r.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", r.R2)
	}
}

func TestLinearFitNoCorrelation(t *testing.T) {
	// Symmetric data: y identical for mirrored x values -> slope ~ 0.
	x := []float64{-2, -1, 0, 1, 2}
	y := []float64{4, 1, 0, 1, 4}
	r := LinearFit(x, y)
	if !almost(r.Slope, 0, 1e-12) {
		t.Fatalf("slope = %v, want 0", r.Slope)
	}
	if r.R2 > 0.01 {
		t.Fatalf("R2 = %v, want ~0", r.R2)
	}
}

func TestLinearFitConstantX(t *testing.T) {
	r := LinearFit([]float64{2, 2, 2}, []float64{1, 5, 9})
	if r.Slope != 0 || r.Intercept != 5 {
		t.Fatalf("degenerate fit = %+v", r)
	}
}

// Property: R2 is always within [0, 1] for finite inputs.
func TestR2BoundedProperty(t *testing.T) {
	f := func(pairs []struct{ X, Y int16 }) bool {
		if len(pairs) < 2 {
			return true
		}
		x := make([]float64, len(pairs))
		y := make([]float64, len(pairs))
		for i, p := range pairs {
			x[i], y[i] = float64(p.X), float64(p.Y)
		}
		r := LinearFit(x, y)
		return r.R2 >= -1e-9 && r.R2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTTestIdenticalSamples(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	b := []float64{5, 5, 5, 5}
	res := WelchTTest(a, b)
	if res.P != 1 {
		t.Fatalf("p = %v, want 1 for identical constant samples", res.P)
	}
}

func TestWelchTTestClearlyDifferent(t *testing.T) {
	a := []float64{1, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.01}
	b := []float64{5, 5.1, 4.9, 5.05, 4.95, 5.02, 4.98, 5.01}
	res := WelchTTest(a, b)
	if res.P > 1e-6 {
		t.Fatalf("p = %v, want tiny for separated samples", res.P)
	}
}

func TestWelchTTestOverlappingSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{2, 3, 4, 5, 6, 7, 8, 9}
	res := WelchTTest(a, b)
	if res.P < 0.2 {
		t.Fatalf("p = %v, want large for overlapping samples", res.P)
	}
}

// Cross-check the t-distribution tail against known critical values:
// P(T > 2.228) ≈ 0.025 for df=10.
func TestStudentTKnownCriticalValue(t *testing.T) {
	p := studentTCDFUpper(2.228, 10)
	if !almost(p, 0.025, 0.001) {
		t.Fatalf("upper tail = %v, want ~0.025", p)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("incomplete beta endpoint values wrong")
	}
	// I_{0.5}(a, a) = 0.5 by symmetry.
	if got := regIncBeta(4, 4, 0.5); !almost(got, 0.5, 1e-9) {
		t.Fatalf("I_0.5(4,4) = %v, want 0.5", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v", got)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts, edges := Histogram(xs, 5)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram total = %d, want %d", total, len(xs))
	}
	if len(edges) != 6 {
		t.Fatalf("edges = %d, want 6", len(edges))
	}
	if edges[0] != 0 || edges[5] != 9 {
		t.Fatalf("edge range = [%v, %v]", edges[0], edges[5])
	}
}

func TestHistogramEmpty(t *testing.T) {
	counts, _ := Histogram(nil, 4)
	for _, c := range counts {
		if c != 0 {
			t.Fatal("empty histogram should have zero counts")
		}
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	l := NewLatencyRecorder(0)
	for i := int64(1); i <= 100; i++ {
		l.Record(i * 1000)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if p := l.Percentile(0); p != 1000 {
		t.Fatalf("P0 = %v", p)
	}
	if p := l.Percentile(100); p != 100000 {
		t.Fatalf("P100 = %v", p)
	}
	p50 := l.Percentile(50)
	if p50 < 50000 || p50 > 51000 {
		t.Fatalf("P50 = %v", p50)
	}
	if m := l.Mean(); !almost(m, 50500, 1e-9) {
		t.Fatalf("mean = %v", m)
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	l := NewLatencyRecorder(0)
	if l.Percentile(99) != 0 || l.Mean() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
}

func TestLatencyRecorderTailMonotone(t *testing.T) {
	l := NewLatencyRecorder(0)
	r := uint64(12345)
	for i := 0; i < 5000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		l.Record(int64(r % 1000000))
	}
	tail := l.Tail()
	if len(tail) != len(TailPoints) {
		t.Fatalf("tail has %d points", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i] < tail[i-1] {
			t.Fatalf("tail not monotone: %v", tail)
		}
	}
}

func TestLatencyRecorderMerge(t *testing.T) {
	a := NewLatencyRecorder(0)
	b := NewLatencyRecorder(0)
	a.Record(1)
	b.Record(2)
	b.Record(3)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
}

// Property: recorder percentile agrees with the package-level Percentile.
func TestLatencyRecorderMatchesPercentileProperty(t *testing.T) {
	f := func(raw []uint32, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		l := NewLatencyRecorder(len(raw))
		xs := make([]float64, len(raw))
		for i, v := range raw {
			l.Record(int64(v))
			xs[i] = float64(v)
		}
		p := float64(pRaw) / 255 * 100
		got := l.Percentile(p)
		want := Percentile(xs, p)
		return math.Abs(got-want) <= 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatal("Min/Max wrong")
	}
}

func TestPercentilesSortedSharedSort(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	got := PercentilesSorted(xs, []float64{0, 50, 100})
	if got[0] != 1 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("got %v", got)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("input should be sorted in place")
	}
}
