// Package swap models swap space and the two swap media the paper
// evaluates: an SSD (millisecond-class block device with bounded queue
// depth and asynchronous writeback) and ZRAM (a compressed in-memory block
// device whose I/O is synchronous CPU work on the requesting thread).
//
// The asymmetry between the two is central to the paper's §V-D findings:
// with a slow medium, application threads spend long stretches blocked on
// faults, which gives the scanning threads time to make good decisions;
// with a fast medium the application outruns the scans and fault counts
// rise. Both behaviours emerge from these device models.
package swap

import (
	"fmt"

	"mglrusim/internal/sim"
	"mglrusim/internal/telemetry"
	"mglrusim/internal/zram"
)

// Slot identifies one page-sized unit of swap space.
type Slot = int32

// NilSlot means "no slot".
const NilSlot Slot = -1

// Area allocates swap slots.
type Area struct {
	free  []Slot
	alloc []bool // per-slot allocation state, guards Free
	cap   int
}

// NewArea creates an area with capacity slots.
func NewArea(capacity int) *Area {
	a := &Area{cap: capacity, free: make([]Slot, 0, capacity), alloc: make([]bool, capacity)}
	for i := capacity - 1; i >= 0; i-- {
		a.free = append(a.free, Slot(i))
	}
	return a
}

// Alloc returns a free slot, or NilSlot if the area is full.
func (a *Area) Alloc() Slot {
	if len(a.free) == 0 {
		return NilSlot
	}
	s := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.alloc[s] = true
	return s
}

// Free returns slot s to the area. An out-of-range or already-free slot
// would corrupt the free list (the same slot handed to two owners), so
// both panic instead of being silently accepted.
func (a *Area) Free(s Slot) {
	if s < 0 || int(s) >= a.cap {
		panic(fmt.Sprintf("swap: Free of out-of-range slot %d (capacity %d)", s, a.cap))
	}
	if !a.alloc[s] {
		panic(fmt.Sprintf("swap: double free of slot %d", s))
	}
	a.alloc[s] = false
	a.free = append(a.free, s)
}

// Allocated reports whether s is currently allocated. Out-of-range slots
// report false.
func (a *Area) Allocated(s Slot) bool {
	return s >= 0 && int(s) < a.cap && a.alloc[s]
}

// InUse reports allocated slots.
func (a *Area) InUse() int { return a.cap - len(a.free) }

// Capacity reports total slots.
func (a *Area) Capacity() int { return a.cap }

// Stats aggregates device activity.
type Stats struct {
	Reads, Writes         uint64
	ReadTime, WriteTime   sim.Duration // summed service time
	WriteStalls           uint64       // writers blocked on queue saturation
	CompressedBytes       int64        // zram only: bytes currently stored
	LifetimeCompressRatio float64      // zram only
}

// TracerSetter is implemented by devices (and wrappers) that accept a
// telemetry tracer for swap I/O spans. A nil tracer must be accepted and
// restore the untraced fast path.
type TracerSetter interface {
	SetTracer(tr *telemetry.Tracer)
}

// Device is a swap medium. ReadPage is the demand-fault path and always
// blocks the calling proc for the device's service time. WritePage is the
// reclaim path; depending on the medium it may be asynchronous (SSD
// writeback) or synchronous CPU work (ZRAM compression).
type Device interface {
	Name() string
	ReadPage(v *sim.Env, slot Slot, vpn int64, version uint32)
	WritePage(v *sim.Env, slot Slot, vpn int64, version uint32)
	// PrefetchPage reads slot as part of a readahead cluster anchored at
	// a blocking demand read: on a block device the transfer is amortized
	// into the cluster I/O, on ZRAM each page still pays decompression
	// CPU.
	PrefetchPage(v *sim.Env, slot Slot, vpn int64, version uint32)
	// FreeSlot releases any backing resources for slot (zram pool space).
	FreeSlot(slot Slot)
	// Drain blocks until all in-flight asynchronous writes have completed.
	Drain(v *sim.Env)
	Stats() Stats
}

// SSDConfig parameterizes an SSD device.
type SSDConfig struct {
	// ReadLatency / WriteLatency are 4 KB service times.
	ReadLatency, WriteLatency sim.Duration
	// Jitter is log-normal sigma applied to each service time.
	Jitter float64
	// QueueDepth is the number of requests the device services in
	// parallel.
	QueueDepth int
	// MaxDirtyWrites caps in-flight asynchronous writebacks; reclaim
	// blocks once the cap is reached (writeback backpressure).
	MaxDirtyWrites int
}

// DefaultSSDConfig matches the paper's measured device: ~7.5 ms 4 KB
// reads and writes.
func DefaultSSDConfig() SSDConfig {
	return SSDConfig{
		ReadLatency:    7500 * sim.Microsecond,
		WriteLatency:   7500 * sim.Microsecond,
		Jitter:         0.35,
		QueueDepth:     10,
		MaxDirtyWrites: 48,
	}
}

// SSD is a block swap device with bounded parallelism.
type SSD struct {
	cfg     SSDConfig
	eng     *sim.Engine
	rng     *sim.RNG
	servers []sim.Time // busy-until, one per queue-depth channel
	inWrite int
	wcond   sim.Cond
	stats   Stats
	tr      *telemetry.Tracer
	trTrack telemetry.TrackID // the device's own lane
}

// SetTracer implements TracerSetter: reads, writes, and writeback stalls
// become spans on an "ssd" track (service windows) and the stalled proc's
// own track.
func (d *SSD) SetTracer(tr *telemetry.Tracer) {
	d.tr = tr
	if tr != nil {
		d.trTrack = tr.Track("ssd")
	}
}

// NewSSD creates an SSD attached to eng with a dedicated RNG stream.
func NewSSD(cfg SSDConfig, eng *sim.Engine, rng *sim.RNG) *SSD {
	if cfg.QueueDepth <= 0 {
		panic("swap: SSD queue depth must be positive")
	}
	if cfg.MaxDirtyWrites <= 0 {
		cfg.MaxDirtyWrites = 1
	}
	return &SSD{cfg: cfg, eng: eng, rng: rng, servers: make([]sim.Time, cfg.QueueDepth)}
}

// Name implements Device.
func (d *SSD) Name() string { return "ssd" }

// service books a request on the earliest-free channel and returns its
// completion time.
func (d *SSD) service(base sim.Duration) sim.Time {
	best := 0
	for i, t := range d.servers {
		if t < d.servers[best] {
			best = i
		}
	}
	start := d.eng.Now()
	if d.servers[best] > start {
		start = d.servers[best]
	}
	lat := base
	if d.cfg.Jitter > 0 {
		lat = sim.Duration(float64(lat) * d.rng.LogNormal(0, d.cfg.Jitter))
	}
	done := start + sim.Time(lat)
	d.servers[best] = done
	return done
}

// ReadPage implements Device: the calling proc blocks for the full queueing
// plus service time.
func (d *SSD) ReadPage(v *sim.Env, slot Slot, vpn int64, version uint32) {
	done := d.service(d.cfg.ReadLatency)
	d.stats.Reads++
	d.stats.ReadTime += int64(done - v.Now())
	if d.tr != nil {
		d.tr.Emit(d.trTrack, "ssd-read", v.Now(), int64(done-v.Now()), int64(slot))
	}
	v.SleepUntil(done)
}

// WritePage implements Device: the write is submitted asynchronously, but
// the caller blocks first if too many writebacks are already in flight —
// this is the reclaim backpressure that can stall eviction under thrash.
func (d *SSD) WritePage(v *sim.Env, slot Slot, vpn int64, version uint32) {
	var stall telemetry.Span
	if d.tr != nil && d.inWrite >= d.cfg.MaxDirtyWrites {
		stall = d.tr.Begin(d.tr.Track(v.Proc().Name()), "writeback-stall")
	}
	for d.inWrite >= d.cfg.MaxDirtyWrites {
		d.stats.WriteStalls++
		v.Wait(&d.wcond)
	}
	stall.End()
	done := d.service(d.cfg.WriteLatency)
	d.inWrite++
	d.stats.Writes++
	d.stats.WriteTime += int64(done - v.Now())
	if d.tr != nil {
		d.tr.Emit(d.trTrack, "ssd-write", v.Now(), int64(done-v.Now()), int64(slot))
	}
	d.eng.After(int64(done-v.Now()), func() {
		d.inWrite--
		d.wcond.Broadcast(d.eng)
	})
}

// PrefetchPage implements Device: the page rides the cluster I/O of the
// anchoring demand read; only a small per-page completion cost applies.
func (d *SSD) PrefetchPage(v *sim.Env, slot Slot, vpn int64, version uint32) {
	d.stats.Reads++
	v.Charge(20 * sim.Microsecond)
}

// FreeSlot implements Device; SSD space needs no bookkeeping.
func (d *SSD) FreeSlot(slot Slot) {}

// Drain implements Device.
func (d *SSD) Drain(v *sim.Env) {
	for d.inWrite > 0 {
		v.Wait(&d.wcond)
	}
}

// Stats implements Device.
func (d *SSD) Stats() Stats { return d.stats }

// ZRAMConfig parameterizes a compressed in-memory swap device.
type ZRAMConfig struct {
	// ReadLatency / WriteLatency are the end-to-end 4 KB service times
	// (dominated by [de]compression), charged as CPU work on the
	// requesting thread.
	ReadLatency, WriteLatency sim.Duration
	// Jitter is log-normal sigma on each operation.
	Jitter float64
	// PageSize in bytes, for the compression pool.
	PageSize int
}

// DefaultZRAMConfig matches the paper's measurement: 20 µs reads, 35 µs
// writes with LZO-RLE.
func DefaultZRAMConfig() ZRAMConfig {
	return ZRAMConfig{
		ReadLatency:  20 * sim.Microsecond,
		WriteLatency: 35 * sim.Microsecond,
		Jitter:       0.10,
		PageSize:     4096,
	}
}

// ClassFn maps a virtual page to its synthetic content class, so different
// workloads exhibit different compression ratios.
type ClassFn func(vpn int64) zram.ContentClass

// ZRAM is a compressed in-memory swap device. All its I/O is synchronous
// CPU work: a fault-in decompresses on the faulting thread, an eviction
// compresses on the reclaiming thread. This is what couples swap speed to
// CPU contention for this medium.
type ZRAM struct {
	cfg   ZRAMConfig
	rng   *sim.RNG
	store *zram.Store
	class ClassFn
	stats Stats
	tr    *telemetry.Tracer
}

// SetTracer implements TracerSetter: [de]compression windows become spans
// on the requesting proc's track, since ZRAM I/O *is* CPU work there.
func (d *ZRAM) SetTracer(tr *telemetry.Tracer) { d.tr = tr }

// NewZRAM creates a ZRAM device. class may be nil, defaulting everything
// to structured content.
func NewZRAM(cfg ZRAMConfig, rng *sim.RNG, class ClassFn) *ZRAM {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if class == nil {
		class = func(int64) zram.ContentClass { return zram.ClassStructured }
	}
	return &ZRAM{cfg: cfg, rng: rng, store: zram.NewStore(cfg.PageSize), class: class}
}

// Name implements Device.
func (d *ZRAM) Name() string { return "zram" }

func (d *ZRAM) jittered(base sim.Duration) sim.Duration {
	if d.cfg.Jitter > 0 {
		base = sim.Duration(float64(base) * d.rng.LogNormal(0, d.cfg.Jitter))
	}
	if base < 1 {
		base = 1
	}
	return base
}

// ReadPage implements Device: decompression burns CPU on the caller.
func (d *ZRAM) ReadPage(v *sim.Env, slot Slot, vpn int64, version uint32) {
	lat := d.jittered(d.cfg.ReadLatency)
	d.stats.Reads++
	d.stats.ReadTime += lat
	if d.tr != nil {
		d.tr.Emit(d.tr.Track(v.Proc().Name()), "zram-read", v.Now(), lat, int64(slot))
	}
	v.Charge(lat)
}

// WritePage implements Device: compression burns CPU on the caller and the
// compressed size is measured with the real compressor.
func (d *ZRAM) WritePage(v *sim.Env, slot Slot, vpn int64, version uint32) {
	lat := d.jittered(d.cfg.WriteLatency)
	d.stats.Writes++
	d.stats.WriteTime += lat
	d.store.Write(slot, vpn, version, d.class(vpn))
	if d.tr != nil {
		d.tr.Emit(d.tr.Track(v.Proc().Name()), "zram-write", v.Now(), lat, int64(slot))
	}
	v.Charge(lat)
}

// PrefetchPage implements Device: ZRAM readahead still decompresses every
// page on the faulting CPU.
func (d *ZRAM) PrefetchPage(v *sim.Env, slot Slot, vpn int64, version uint32) {
	d.ReadPage(v, slot, vpn, version)
}

// FreeSlot implements Device.
func (d *ZRAM) FreeSlot(slot Slot) { d.store.Free(slot) }

// Drain implements Device; ZRAM writes are synchronous so it returns
// immediately.
func (d *ZRAM) Drain(v *sim.Env) {}

// Stats implements Device.
func (d *ZRAM) Stats() Stats {
	s := d.stats
	s.CompressedBytes = d.store.CompressedBytes()
	s.LifetimeCompressRatio = d.store.Ratio()
	return s
}

// Compile-time interface checks.
var (
	_ Device = (*SSD)(nil)
	_ Device = (*ZRAM)(nil)
)
