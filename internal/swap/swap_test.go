package swap

import (
	"testing"
	"testing/quick"

	"mglrusim/internal/sim"
	"mglrusim/internal/zram"
)

func TestAreaAllocFree(t *testing.T) {
	a := NewArea(4)
	seen := map[Slot]bool{}
	for i := 0; i < 4; i++ {
		s := a.Alloc()
		if s == NilSlot || seen[s] {
			t.Fatalf("bad slot %d", s)
		}
		seen[s] = true
	}
	if a.Alloc() != NilSlot {
		t.Fatal("exhausted area should return NilSlot")
	}
	if a.InUse() != 4 {
		t.Fatalf("in use = %d", a.InUse())
	}
	for s := range seen {
		a.Free(s)
	}
	if a.InUse() != 0 {
		t.Fatal("free accounting wrong")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestFreeGuards: Free used to silently accept double-frees and
// out-of-range slots, corrupting the free count. Both now panic, and
// Allocated exposes ownership for the auditor's cross-check.
func TestFreeGuards(t *testing.T) {
	a := NewArea(4)
	s := a.Alloc()
	if !a.Allocated(s) {
		t.Fatal("Allocated(live slot) = false")
	}
	a.Free(s)
	if a.Allocated(s) {
		t.Fatal("Allocated(freed slot) = true")
	}
	mustPanic(t, "double free", func() { a.Free(s) })
	mustPanic(t, "out-of-range free", func() { a.Free(Slot(99)) })
	mustPanic(t, "negative free", func() { a.Free(Slot(-1)) })
	if a.Allocated(Slot(99)) || a.Allocated(Slot(-1)) {
		t.Fatal("Allocated must be false out of range, not panic")
	}
	// The guard must not break legitimate reuse.
	s2 := a.Alloc()
	a.Free(s2)
	if a.InUse() != 0 {
		t.Fatalf("in use = %d after balanced alloc/free", a.InUse())
	}
}

// Property: alloc never double-hands-out a slot under random interleaving.
func TestAreaUniqueProperty(t *testing.T) {
	f := func(ops []bool) bool {
		a := NewArea(16)
		held := map[Slot]bool{}
		for _, alloc := range ops {
			if alloc {
				s := a.Alloc()
				if s == NilSlot {
					continue
				}
				if held[s] {
					return false
				}
				held[s] = true
			} else {
				for s := range held {
					delete(held, s)
					a.Free(s)
					break
				}
			}
		}
		return a.InUse() == len(held)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSSDReadBlocksForLatency(t *testing.T) {
	e := sim.NewEngine(2)
	cfg := SSDConfig{ReadLatency: 5 * sim.Millisecond, WriteLatency: 5 * sim.Millisecond, QueueDepth: 4, MaxDirtyWrites: 8}
	d := NewSSD(cfg, e, sim.NewRNG(1))
	var end sim.Time
	e.Spawn("reader", false, func(v *sim.Env) {
		d.ReadPage(v, 0, 1, 0)
		end = v.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(5*sim.Millisecond) {
		t.Fatalf("read completed at %v, want 5ms", end)
	}
	if d.Stats().Reads != 1 {
		t.Fatal("read not counted")
	}
}

func TestSSDQueueDepthSerializes(t *testing.T) {
	e := sim.NewEngine(4)
	cfg := SSDConfig{ReadLatency: 10 * sim.Millisecond, WriteLatency: 10 * sim.Millisecond, QueueDepth: 1, MaxDirtyWrites: 8}
	d := NewSSD(cfg, e, sim.NewRNG(1))
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		e.Spawn("reader", false, func(v *sim.Env) {
			d.ReadPage(v, 0, 1, 0)
			ends = append(ends, v.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// With depth 1, three reads complete at 10, 20, 30ms.
	want := []sim.Time{sim.Time(10 * sim.Millisecond), sim.Time(20 * sim.Millisecond), sim.Time(30 * sim.Millisecond)}
	if len(ends) != 3 {
		t.Fatalf("ends = %v", ends)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestSSDParallelQueueOverlaps(t *testing.T) {
	e := sim.NewEngine(4)
	cfg := SSDConfig{ReadLatency: 10 * sim.Millisecond, WriteLatency: 10 * sim.Millisecond, QueueDepth: 3, MaxDirtyWrites: 8}
	d := NewSSD(cfg, e, sim.NewRNG(1))
	var latest sim.Time
	for i := 0; i < 3; i++ {
		e.Spawn("reader", false, func(v *sim.Env) {
			d.ReadPage(v, 0, 1, 0)
			if v.Now() > latest {
				latest = v.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if latest != sim.Time(10*sim.Millisecond) {
		t.Fatalf("parallel reads finished at %v, want 10ms", latest)
	}
}

func TestSSDWriteIsAsynchronous(t *testing.T) {
	e := sim.NewEngine(2)
	cfg := SSDConfig{ReadLatency: 10 * sim.Millisecond, WriteLatency: 10 * sim.Millisecond, QueueDepth: 4, MaxDirtyWrites: 8}
	d := NewSSD(cfg, e, sim.NewRNG(1))
	var afterSubmit, afterDrain sim.Time
	e.Spawn("writer", false, func(v *sim.Env) {
		d.WritePage(v, 0, 1, 0)
		afterSubmit = v.Now()
		d.Drain(v)
		afterDrain = v.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if afterSubmit != 0 {
		t.Fatalf("submit blocked until %v, want 0", afterSubmit)
	}
	if afterDrain != sim.Time(10*sim.Millisecond) {
		t.Fatalf("drain completed at %v, want 10ms", afterDrain)
	}
}

func TestSSDWriteBackpressure(t *testing.T) {
	e := sim.NewEngine(2)
	cfg := SSDConfig{ReadLatency: 10 * sim.Millisecond, WriteLatency: 10 * sim.Millisecond, QueueDepth: 1, MaxDirtyWrites: 1}
	d := NewSSD(cfg, e, sim.NewRNG(1))
	var second sim.Time
	e.Spawn("writer", false, func(v *sim.Env) {
		d.WritePage(v, 0, 1, 0) // fills the writeback window
		d.WritePage(v, 1, 2, 0) // must wait for first completion
		second = v.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if second != sim.Time(10*sim.Millisecond) {
		t.Fatalf("second write submitted at %v, want 10ms", second)
	}
	if d.Stats().WriteStalls == 0 {
		t.Fatal("stall not recorded")
	}
}

func TestZRAMReadChargesCPU(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := ZRAMConfig{ReadLatency: 20 * sim.Microsecond, WriteLatency: 35 * sim.Microsecond, PageSize: 4096}
	d := NewZRAM(cfg, sim.NewRNG(1), nil)
	var cpu sim.Duration
	p := e.Spawn("reader", false, func(v *sim.Env) {
		d.ReadPage(v, 0, 1, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	cpu = p.CPUTime()
	if cpu != 20*sim.Microsecond {
		t.Fatalf("cpu = %v, want 20µs (CPU-synchronous read)", cpu)
	}
}

func TestZRAMWriteStoresCompressed(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewZRAM(ZRAMConfig{ReadLatency: 20 * sim.Microsecond, WriteLatency: 35 * sim.Microsecond, PageSize: 4096}, sim.NewRNG(1),
		func(vpn int64) zram.ContentClass { return zram.ClassZeroHeavy })
	e.Spawn("writer", false, func(v *sim.Env) {
		d.WritePage(v, 3, 100, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 1 || st.CompressedBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LifetimeCompressRatio < 5 {
		t.Fatalf("ratio = %v, want high for zero-heavy content", st.LifetimeCompressRatio)
	}
	d.FreeSlot(3)
	if d.Stats().CompressedBytes != 0 {
		t.Fatal("free did not release pool space")
	}
}

func TestZRAMContentionCouplesToCPU(t *testing.T) {
	// Two threads doing zram I/O on one CPU should take twice as long as
	// one thread — swap speed couples to CPU contention.
	run := func(threads int) sim.Time {
		e := sim.NewEngine(1)
		d := NewZRAM(ZRAMConfig{ReadLatency: 100 * sim.Microsecond, WriteLatency: 100 * sim.Microsecond, PageSize: 4096}, sim.NewRNG(1), nil)
		for i := 0; i < threads; i++ {
			e.Spawn("t", false, func(v *sim.Env) {
				for k := 0; k < 50; k++ {
					d.ReadPage(v, 0, 1, 0)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	one := run(1)
	two := run(2)
	if two < one*3/2 {
		t.Fatalf("contention not modeled: 1 thread %v, 2 threads %v", one, two)
	}
}

func TestSSDPrefetchDoesNotBlockOnQueue(t *testing.T) {
	e := sim.NewEngine(2)
	cfg := SSDConfig{ReadLatency: 10 * sim.Millisecond, WriteLatency: 10 * sim.Millisecond, QueueDepth: 1, MaxDirtyWrites: 4}
	d := NewSSD(cfg, e, sim.NewRNG(1))
	var prefetchTime sim.Time
	e.Spawn("reader", false, func(v *sim.Env) {
		d.ReadPage(v, 0, 1, 0) // occupies the single queue slot
		before := v.Now()
		d.PrefetchPage(v, 1, 2, 0) // rides the cluster: near-free
		prefetchTime = v.Now() - before
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if prefetchTime > sim.Time(1*sim.Millisecond) {
		t.Fatalf("prefetch took %v, should be amortized", prefetchTime)
	}
	if d.Stats().Reads != 2 {
		t.Fatalf("reads = %d, want 2", d.Stats().Reads)
	}
}

func TestZRAMPrefetchPaysDecompressionCPU(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewZRAM(ZRAMConfig{ReadLatency: 20 * sim.Microsecond, WriteLatency: 35 * sim.Microsecond, PageSize: 4096}, sim.NewRNG(1), nil)
	p := e.Spawn("reader", false, func(v *sim.Env) {
		d.PrefetchPage(v, 0, 1, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if p.CPUTime() != 20*sim.Microsecond {
		t.Fatalf("cpu = %v, want full decompression cost", p.CPUTime())
	}
}

func TestSSDJitterVariesServiceTimes(t *testing.T) {
	e := sim.NewEngine(2)
	cfg := SSDConfig{ReadLatency: 5 * sim.Millisecond, WriteLatency: 5 * sim.Millisecond, Jitter: 0.4, QueueDepth: 64, MaxDirtyWrites: 64}
	d := NewSSD(cfg, e, sim.NewRNG(7))
	durations := map[sim.Time]bool{}
	e.Spawn("reader", false, func(v *sim.Env) {
		for i := 0; i < 20; i++ {
			start := v.Now()
			d.ReadPage(v, 0, 1, 0)
			durations[v.Now()-start] = true
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(durations) < 10 {
		t.Fatalf("jittered latencies too uniform: %d distinct", len(durations))
	}
}
