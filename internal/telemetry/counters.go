package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
)

// CounterSet is a concurrency-safe registry of named monotonic counters
// for the *wall-clock* side of the harness. The virtual-time Tracer
// deliberately does not apply there: the shard coordinator and its
// workers live outside simulated time (leases expire on real clocks,
// processes crash at real instants), and they are multi-threaded, so
// they need the mutex the single-threaded Tracer refuses to pay for.
//
// A nil *CounterSet is valid everywhere, mirroring the nil-Tracer
// contract: counters off must cost one pointer test.
type CounterSet struct {
	mu   sync.Mutex
	vals map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{vals: make(map[string]int64)}
}

// Add increments a named counter, registering it on first use.
func (c *CounterSet) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.vals[name] += delta
	c.mu.Unlock()
}

// Get reads a counter (0 when unregistered or on nil).
func (c *CounterSet) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Snapshot returns the counters as parallel name/value slices, sorted by
// name so output is deterministic regardless of increment interleaving.
func (c *CounterSet) Snapshot() ([]string, []int64) {
	if c == nil {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.vals))
	for n := range c.vals {
		names = append(names, n)
	}
	sort.Strings(names)
	vals := make([]int64, len(names))
	for i, n := range names {
		vals[i] = c.vals[n]
	}
	return names, vals
}

// WriteText renders the counters one per line as "name value", sorted by
// name — the coordinator's end-of-run summary format.
func (c *CounterSet) WriteText(w io.Writer) error {
	names, vals := c.Snapshot()
	bw := bufio.NewWriter(w)
	for i, n := range names {
		bw.WriteString(n)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(vals[i], 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
