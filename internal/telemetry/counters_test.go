package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSetConcurrentAdds(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("leases.held", 1)
				c.Add("cells.requeued", 2)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("leases.held"); got != 8000 {
		t.Fatalf("leases.held = %d, want 8000", got)
	}
	if got := c.Get("cells.requeued"); got != 16000 {
		t.Fatalf("cells.requeued = %d, want 16000", got)
	}
	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	// Sorted by name: cells before leases.
	if sb.String() != "cells.requeued 16000\nleases.held 8000\n" {
		t.Fatalf("WriteText = %q", sb.String())
	}
}

func TestCounterSetNilSafe(t *testing.T) {
	var c *CounterSet
	c.Add("x", 1)
	if c.Get("x") != 0 {
		t.Fatal("nil Get != 0")
	}
	names, vals := c.Snapshot()
	if names != nil || vals != nil {
		t.Fatal("nil Snapshot not empty")
	}
}

func TestFlightDumpIncludesNotes(t *testing.T) {
	tr := New(Config{})
	tr.Note("invariant: frame 3 owned by two VPNs")
	tr.Note("second line")
	var sb strings.Builder
	if err := tr.WriteFlight(&sb, "audit failure"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"reason: audit failure",
		"notes (2, dropped 0):",
		"  invariant: frame 3 owned by two VPNs",
		"  second line",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("flight dump missing %q:\n%s", want, out)
		}
	}
}

func TestNotesBounded(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < MaxNotes+10; i++ {
		tr.Note("n")
	}
	notes, dropped := tr.Notes()
	if len(notes) != MaxNotes || dropped != 10 {
		t.Fatalf("notes = %d dropped = %d, want %d/10", len(notes), dropped, MaxNotes)
	}
}
